package tpch

import "fmt"

// queryMeta carries the human-readable identity of each query and the
// structural facts tests pin down.
type queryMeta struct {
	name string
	// tables lists the base tables the query touches.
	tables []Table
}

var queryMetadata = map[int]queryMeta{
	1:  {"Pricing Summary Report", []Table{Lineitem}},
	2:  {"Minimum Cost Supplier", []Table{Part, Supplier, Partsupp, Nation, Region}},
	3:  {"Shipping Priority", []Table{Customer, Orders, Lineitem}},
	4:  {"Order Priority Checking", []Table{Orders, Lineitem}},
	5:  {"Local Supplier Volume", []Table{Customer, Orders, Lineitem, Supplier, Nation, Region}},
	6:  {"Forecasting Revenue Change", []Table{Lineitem}},
	7:  {"Volume Shipping", []Table{Supplier, Lineitem, Orders, Customer, Nation}},
	8:  {"National Market Share", []Table{Part, Supplier, Lineitem, Orders, Customer, Nation, Region}},
	9:  {"Product Type Profit Measure", []Table{Part, Supplier, Lineitem, Partsupp, Orders, Nation}},
	10: {"Returned Item Reporting", []Table{Customer, Orders, Lineitem, Nation}},
	11: {"Important Stock Identification", []Table{Partsupp, Supplier, Nation}},
	12: {"Shipping Modes and Order Priority", []Table{Orders, Lineitem}},
	13: {"Customer Distribution", []Table{Customer, Orders}},
	14: {"Promotion Effect", []Table{Lineitem, Part}},
	15: {"Top Supplier", []Table{Supplier, Lineitem}},
	16: {"Parts/Supplier Relationship", []Table{Partsupp, Part, Supplier}},
	17: {"Small-Quantity-Order Revenue", []Table{Lineitem, Part}},
	18: {"Large Volume Customer", []Table{Customer, Orders, Lineitem}},
	19: {"Discounted Revenue", []Table{Lineitem, Part}},
	20: {"Potential Part Promotion", []Table{Supplier, Nation, Partsupp, Part, Lineitem}},
	21: {"Suppliers Who Kept Orders Waiting", []Table{Supplier, Lineitem, Orders, Nation}},
	22: {"Global Sales Opportunity", []Table{Customer, Orders}},
}

// QueryName returns the query's official TPC-H title, e.g. QueryName(21)
// = "Suppliers Who Kept Orders Waiting".
func QueryName(q int) (string, error) {
	m, ok := queryMetadata[q]
	if !ok {
		return "", fmt.Errorf("tpch: no such query Q%d", q)
	}
	return m.name, nil
}

// QueryTables returns the base tables query q touches, in plan order.
func QueryTables(q int) ([]Table, error) {
	m, ok := queryMetadata[q]
	if !ok {
		return nil, fmt.Errorf("tpch: no such query Q%d", q)
	}
	return append([]Table(nil), m.tables...), nil
}
