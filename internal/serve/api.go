package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/perfledger"
	"boedag/internal/statemodel"
)

// This file is the daemon's wire contract: the JSON request and response
// shapes of /v1/estimate and /v1/batch, the strict decoder behind them,
// and the typed error envelope every non-200 response carries. The byte
// output of the encoders is pinned by the golden files in testdata/ (see
// testdata/SCHEMA.md for the schema prose).

// APIError is a typed request-handling failure. It doubles as the JSON
// error body: every non-200 response is {"error": {"code", "message"}}.
type APIError struct {
	// Status is the HTTP status the error maps to (not serialized; the
	// status line already carries it).
	Status int `json:"-"`
	// Code is a stable machine-readable discriminator.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error implements error.
func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Error codes. Tests and clients switch on these, never on messages.
const (
	CodeBadRequest       = "bad_request"      // malformed JSON, invalid field values
	CodeUnknownWorkflow  = "unknown_workflow" // registry name not found
	CodeBodyTooLarge     = "body_too_large"   // request exceeded the body limit
	CodeMethodNotAllowed = "method_not_allowed"
	CodeOverloaded       = "overloaded" // admission queue full
	CodeDraining         = "draining"   // server is shutting down
	CodeTimeout          = "timeout"    // request deadline expired
	CodeInternal         = "internal"   // panic or other server-side failure
)

func badRequest(format string, args ...any) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: CodeBadRequest,
		Message: fmt.Sprintf(format, args...)}
}

// errorEnvelope is the JSON wrapper of an APIError.
type errorEnvelope struct {
	Error *APIError `json:"error"`
}

// EstimateOptions tune one prediction scenario. All fields are optional;
// zero values mean the server defaults (the paper's configuration).
type EstimateOptions struct {
	// Mode selects skew handling: "mean" (default), "median", "normal".
	Mode string `json:"mode,omitempty"`
	// MicroGB overrides the Word Count / TeraSort input size in GB for
	// registry workflows (default 100).
	MicroGB float64 `json:"micro_gb,omitempty"`
	// TPCHScale overrides the TPC-H scale factor (default 80).
	TPCHScale float64 `json:"tpch_scale,omitempty"`
	// PerNode caps tasks per node (0 = the cluster's slots).
	PerNode int `json:"pernode,omitempty"`
	// TimeoutMS tightens this request's deadline below the server ceiling.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// EstimateRequest is the body of POST /v1/estimate and one scenario of
// POST /v1/batch. Exactly one of Workflow and Spec must be set.
type EstimateRequest struct {
	// Workflow names a registry workflow (GET /v1/workflows lists them).
	Workflow string `json:"workflow,omitempty"`
	// Spec is an inline workflow specification in the dagsim -spec JSON
	// format (mutually exclusive with Workflow).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Cluster overrides the serving cluster spec for this scenario, in the
	// calibrate -spec-out JSON format.
	Cluster json.RawMessage `json:"cluster,omitempty"`
	// Options tune the scenario.
	Options EstimateOptions `json:"options,omitempty"`

	// Parsed forms, populated by DecodeEstimateRequest / validate.
	flow *dag.Workflow // non-nil when Spec was inline
	spec *cluster.Spec // non-nil when Cluster was set
	mode statemodel.SkewMode
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Scenarios are evaluated through the server's worker pool; results
	// come back in input order regardless of the worker count.
	Scenarios []EstimateRequest `json:"scenarios"`
}

// StageBody is one predicted job stage on the wire.
type StageBody struct {
	Job         string  `json:"job"`
	Stage       string  `json:"stage"`
	StartS      float64 `json:"start_s"`
	EndS        float64 `json:"end_s"`
	TaskTimeS   float64 `json:"task_time_s"`
	Parallelism int     `json:"parallelism"`
	Bottleneck  string  `json:"bottleneck"`
}

// StateBody is one predicted workflow state on the wire.
type StateBody struct {
	Seq         int            `json:"seq"`
	StartS      float64        `json:"start_s"`
	EndS        float64        `json:"end_s"`
	Running     []string       `json:"running"`
	Parallelism map[string]int `json:"parallelism"`
}

// EstimateResponse is the 200 body of /v1/estimate.
type EstimateResponse struct {
	Workflow  string      `json:"workflow"`
	MakespanS float64     `json:"makespan_s"`
	Stages    []StageBody `json:"stages"`
	States    []StateBody `json:"states"`
}

// BatchResult is one scenario's outcome inside a BatchResponse: exactly
// one of Estimate and Error is set.
type BatchResult struct {
	Estimate json.RawMessage `json:"estimate,omitempty"`
	Error    *APIError       `json:"error,omitempty"`
}

// BatchResponse is the 200 body of /v1/batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// WorkflowsResponse is the 200 body of GET /v1/workflows.
type WorkflowsResponse struct {
	Workflows []string `json:"workflows"`
}

// VersionResponse is the 200 body of GET /version: the running daemon's
// build identity in the perfledger interchange shape, so boedagbench can
// copy it verbatim into a ledger's service.target_build.
type VersionResponse struct {
	Build   perfledger.BuildInfo `json:"build"`
	UptimeS float64              `json:"uptime_s"`
}

// DecodeEstimateRequest strictly parses one estimate request: unknown
// fields (at any nesting level) are rejected, trailing bytes after the
// JSON value are rejected, inline workflow and cluster specs are parsed
// and validated by their own strict loaders, and the option fields are
// range-checked. It never panics on any input (FuzzDecodeEstimateRequest
// holds that line) and every failure is a typed *APIError.
func DecodeEstimateRequest(r io.Reader) (*EstimateRequest, *APIError) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req EstimateRequest
	if err := dec.Decode(&req); err != nil {
		return nil, decodeError(err)
	}
	if err := trailingData(dec); err != nil {
		return nil, err
	}
	if apiErr := req.validate(); apiErr != nil {
		return nil, apiErr
	}
	return &req, nil
}

// DecodeBatchRequest strictly parses a batch request and validates every
// scenario, reporting the first invalid one by index.
func DecodeBatchRequest(r io.Reader, maxScenarios int) (*BatchRequest, *APIError) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, decodeError(err)
	}
	if err := trailingData(dec); err != nil {
		return nil, err
	}
	if len(req.Scenarios) == 0 {
		return nil, badRequest("batch needs at least one scenario")
	}
	if maxScenarios > 0 && len(req.Scenarios) > maxScenarios {
		return nil, badRequest("batch holds %d scenarios, limit is %d",
			len(req.Scenarios), maxScenarios)
	}
	for i := range req.Scenarios {
		if apiErr := req.Scenarios[i].validate(); apiErr != nil {
			return nil, badRequest("scenario %d: %s", i, apiErr.Message)
		}
	}
	return &req, nil
}

// validate range-checks the request and parses its nested specs.
func (req *EstimateRequest) validate() *APIError {
	hasSpec := len(req.Spec) > 0 && !bytes.Equal(req.Spec, []byte("null"))
	switch {
	case req.Workflow == "" && !hasSpec:
		return badRequest("one of \"workflow\" or \"spec\" is required")
	case req.Workflow != "" && hasSpec:
		return badRequest("\"workflow\" and \"spec\" are mutually exclusive")
	}
	if hasSpec {
		flow, err := dag.LoadWorkflow(bytes.NewReader(req.Spec))
		if err != nil {
			return badRequest("inline spec: %v", err)
		}
		req.flow = flow
	}
	if len(req.Cluster) > 0 && !bytes.Equal(req.Cluster, []byte("null")) {
		spec, err := cluster.ReadSpec(bytes.NewReader(req.Cluster))
		if err != nil {
			return badRequest("cluster: %v", err)
		}
		req.spec = &spec
	}
	switch req.Options.Mode {
	case "", "mean":
		req.mode = statemodel.MeanMode
	case "median", "mid":
		req.mode = statemodel.MedianMode
	case "normal":
		req.mode = statemodel.NormalMode
	default:
		return badRequest("unknown skew mode %q (mean | median | normal)", req.Options.Mode)
	}
	if req.Options.MicroGB < 0 {
		return badRequest("micro_gb must be non-negative")
	}
	if req.Options.TPCHScale < 0 {
		return badRequest("tpch_scale must be non-negative")
	}
	if req.Options.PerNode < 0 {
		return badRequest("pernode must be non-negative")
	}
	if req.Options.TimeoutMS < 0 {
		return badRequest("timeout_ms must be non-negative")
	}
	return nil
}

// decodeError maps a json/body failure to its typed form.
func decodeError(err error) *APIError {
	var maxBytes *http.MaxBytesError
	if errors.As(err, &maxBytes) {
		return &APIError{Status: http.StatusRequestEntityTooLarge,
			Code: CodeBodyTooLarge, Message: err.Error()}
	}
	return badRequest("parse request: %v", err)
}

// trailingData rejects bytes after the first JSON value, so "{}garbage"
// does not silently pass.
func trailingData(dec *json.Decoder) *APIError {
	if _, err := dec.Token(); err != io.EOF {
		return badRequest("trailing data after request body")
	}
	return nil
}

// encodeEstimateResponse renders a plan as the wire response. The output
// is byte-deterministic: struct field order is fixed and the one map
// (state parallelism) marshals in encoding/json's sorted-key order.
func encodeEstimateResponse(plan *statemodel.Plan) ([]byte, error) {
	return marshalBody(buildEstimateResponse(plan))
}

// buildEstimateResponse shapes a plan into the wire struct; the SSE
// stream marshals it compactly while /v1/estimate indents it.
func buildEstimateResponse(plan *statemodel.Plan) EstimateResponse {
	resp := EstimateResponse{
		Workflow:  plan.Workflow,
		MakespanS: plan.Makespan.Seconds(),
		Stages:    make([]StageBody, 0, len(plan.Stages)),
		States:    make([]StateBody, 0, len(plan.States)),
	}
	for _, s := range plan.Stages {
		resp.Stages = append(resp.Stages, StageBody{
			Job:         s.Job,
			Stage:       s.Stage.String(),
			StartS:      s.Start.Seconds(),
			EndS:        s.End.Seconds(),
			TaskTimeS:   s.TaskTime.Seconds(),
			Parallelism: s.Parallelism,
			Bottleneck:  s.Bottleneck.String(),
		})
	}
	for _, st := range plan.States {
		resp.States = append(resp.States, StateBody{
			Seq:         st.Seq,
			StartS:      st.Start.Seconds(),
			EndS:        st.End.Seconds(),
			Running:     st.Running,
			Parallelism: st.Parallelism,
		})
	}
	return resp
}

// marshalBody renders a response body: indented for curl-friendliness,
// newline-terminated, byte-deterministic for deterministic inputs.
func marshalBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
