package hibench

import (
	"boedag/internal/dag"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// This file adds the remaining HiBench suites beyond the paper's KMeans
// and PageRank: the micro Sort, the SQL analytics Aggregation and Join
// (Hive-backed in HiBench), and the Bayes classification workload. They
// extend the workload registry so the models can be exercised across the
// full CPU-vs-IO spectrum HiBench was designed to cover.

// Sort returns the HiBench Sort micro-benchmark: an identity
// shuffle-everything job like TeraSort but over text records with
// compression on (HiBench's default), making it CPU/network mixed.
func Sort(input units.Bytes) workload.JobProfile {
	if input <= 0 {
		input = 30 * units.GB // HiBench huge
	}
	return workload.JobProfile{
		Name:              "HB-Sort",
		InputBytes:        input,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       66,
		MapSelectivity:    1.0,
		ReduceSelectivity: 1.0,
		MapCPUCost:        1.2,
		ReduceCPUCost:     1.0,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.45, CPUOverhead: 0.5},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.07,
	}
}

// Aggregation returns the HiBench SQL Aggregation scan: group uservisits
// by key with a combiner — scan-heavy map, tiny shuffle.
func Aggregation(input units.Bytes) workload.JobProfile {
	if input <= 0 {
		input = 30 * units.GB
	}
	return workload.JobProfile{
		Name:              "HB-Aggregation",
		InputBytes:        input,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       33,
		MapSelectivity:    0.05,
		ReduceSelectivity: 0.6,
		MapCPUCost:        2.2,
		ReduceCPUCost:     1.4,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.3},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.15,
	}
}

// Join returns the HiBench SQL Join as a two-job workflow: the rankings ⋈
// uservisits repartition join followed by the grouped aggregation over
// the join output — the same two-shuffle plan Hive produces for it.
func Join(rankings, uservisits units.Bytes) *dag.Workflow {
	if rankings <= 0 {
		rankings = 2 * units.GB
	}
	if uservisits <= 0 {
		uservisits = 30 * units.GB
	}
	join := workload.JobProfile{
		Name:              "HB-Join-j1",
		InputBytes:        rankings + uservisits,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       66,
		MapSelectivity:    0.8, // project join columns
		ReduceSelectivity: 0.3, // matching tuples
		MapCPUCost:        1.7,
		ReduceCPUCost:     2.0,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.3},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.2,
	}
	agg := workload.JobProfile{
		Name:              "HB-Join-j2",
		InputBytes:        join.OutputBytes(),
		SplitBytes:        128 * units.MB,
		ReduceTasks:       17,
		MapSelectivity:    1.0,
		ReduceSelectivity: 0.01,
		MapCPUCost:        1.4,
		ReduceCPUCost:     1.6,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.3},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.15,
	}
	return &dag.Workflow{
		Name: "HB-Join",
		Jobs: []dag.Job{
			{ID: "join", Profile: join},
			{ID: "agg", Profile: agg, Deps: []string{"join"}},
		},
	}
}

// BayesConfig sizes the Bayes classification workflow.
type BayesConfig struct {
	// InputBytes is the document corpus size (HiBench huge ≈ 15 GB).
	InputBytes units.Bytes
	// Classes is the label count; it shapes the model-sizing jobs.
	Classes int
}

// DefaultBayes matches HiBench's huge profile.
func DefaultBayes() BayesConfig {
	return BayesConfig{InputBytes: 15 * units.GB, Classes: 100}
}

// Bayes builds the naive-Bayes training workflow the way Mahout compiles
// it onto MapReduce: term counting over the corpus, per-class weight
// summation, and the model-normalization pass — a three-job chain that
// starts CPU-heavy and ends tiny.
func Bayes(cfg BayesConfig) *dag.Workflow {
	if cfg.InputBytes <= 0 {
		cfg.InputBytes = DefaultBayes().InputBytes
	}
	if cfg.Classes <= 0 {
		cfg.Classes = DefaultBayes().Classes
	}
	termCount := workload.JobProfile{
		Name:              "Bayes-terms",
		InputBytes:        cfg.InputBytes,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       33,
		MapSelectivity:    0.3, // tokenized (term, class) pairs after combiner
		ReduceSelectivity: 0.4,
		MapCPUCost:        3.5, // tokenization dominates
		ReduceCPUCost:     1.3,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.35, CPUOverhead: 0.4},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.18, // term frequencies are Zipfian
	}
	weightsJob := workload.JobProfile{
		Name:              "Bayes-weights",
		InputBytes:        termCount.OutputBytes(),
		SplitBytes:        128 * units.MB,
		ReduceTasks:       min(cfg.Classes, 33),
		MapSelectivity:    1.0,
		ReduceSelectivity: 0.5,
		MapCPUCost:        1.6,
		ReduceCPUCost:     1.8,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.3},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.12,
	}
	normalize := workload.JobProfile{
		Name:              "Bayes-normalize",
		InputBytes:        weightsJob.OutputBytes(),
		SplitBytes:        128 * units.MB,
		ReduceTasks:       4,
		MapSelectivity:    1.0,
		ReduceSelectivity: 0.9,
		MapCPUCost:        1.3,
		ReduceCPUCost:     1.4,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.3},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.1,
	}
	return &dag.Workflow{
		Name: "Bayes",
		Jobs: []dag.Job{
			{ID: "terms", Profile: termCount},
			{ID: "weights", Profile: weightsJob, Deps: []string{"terms"}},
			{ID: "normalize", Profile: normalize, Deps: []string{"weights"}},
		},
	}
}
