// Package evalpool is the parallel evaluation engine behind every batch
// consumer of the cost models: the Figure 6 sweep, Tables I–III, the
// extension studies, the coordinate-descent tuner, and the calibration
// probe suite. All of them run many independent estimator/simulator
// invocations; the paper's own pitch is that analytic models are cheap
// enough to evaluate *many* configurations, so batch evaluation should be
// embarrassingly parallel.
//
// The engine has two halves:
//
//   - Run / RunObserved: a bounded worker pool that executes a slice of
//     jobs concurrently and returns their results in input order, with
//     aggregated errors and optional per-job observability (EvPoolJob
//     trace spans plus pool counters in the metrics registry). Output is
//     deterministic for deterministic jobs at any worker count — only
//     wall-clock interleaving varies.
//   - Cache: a memoizing single-flight table keyed by the canonical
//     signatures of signature.go, so repeated configurations (the tuner
//     re-scores overlapping candidates; sweeps share baselines) are
//     computed exactly once even when requested concurrently.
package evalpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"boedag/internal/obs"
)

// Options tune an observed pool run.
type Options struct {
	// Workers bounds the number of concurrently executing jobs; values
	// below 1 mean GOMAXPROCS.
	Workers int
	// Label names the pool in trace events and error messages (default
	// "evalpool").
	Label string
	// Observe attaches the observability layer: one EvPoolJob span per
	// job plus pool_jobs / pool_errors counters and a pool_job_duration_s
	// histogram in the metrics registry. Zero value = off.
	Observe obs.Options
}

// Workers normalizes a requested worker count: anything below 1 becomes
// GOMAXPROCS, the "use the hardware" default of the CLI flags.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes jobs on at most workers goroutines and returns the
// results in input order. Every job runs (unless ctx is cancelled first);
// all failures are aggregated into the returned error, each annotated
// with its job index. Results of failed jobs are the zero value.
func Run[T any](ctx context.Context, jobs []func() (T, error), workers int) ([]T, error) {
	return RunObserved(ctx, jobs, Options{Workers: workers})
}

// RunObserved is Run with observability and a pool label. See Options.
func RunObserved[T any](ctx context.Context, jobs []func() (T, error), opt Options) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	label := opt.Label
	if label == "" {
		label = "evalpool"
	}
	workers := Workers(opt.Workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}

	trOn := opt.Observe.TracerOn()
	var jobCount, errCount *obs.Counter
	var jobDur *obs.Histogram
	if reg := opt.Observe.Metrics; reg != nil {
		jobCount = reg.Counter("pool_jobs")
		errCount = reg.Counter("pool_errors")
		jobDur = reg.Histogram("pool_job_duration_s")
	}
	start := time.Now()

	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				results[i], errs[i] = jobs[i]()
				if jobCount != nil {
					jobCount.Inc()
					jobDur.Observe(time.Since(t0).Seconds())
					if errs[i] != nil {
						errCount.Inc()
					}
				}
				if trOn {
					failed := 0.0
					if errs[i] != nil {
						failed = 1
					}
					opt.Observe.Tracer.Emit(obs.Event{
						Type: obs.EvPoolJob,
						Time: t0.Sub(start).Seconds(), Dur: time.Since(t0).Seconds(),
						Task: -1, Seq: i, Detail: label, Value: failed,
					})
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			// Mark every job not yet handed out as cancelled.
			for j := i; j < len(jobs); j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(next)
	wg.Wait()

	var bad []error
	for i, err := range errs {
		if err != nil {
			bad = append(bad, fmt.Errorf("%s job %d: %w", label, i, err))
		}
	}
	if len(bad) > 0 {
		return results, errors.Join(bad...)
	}
	return results, nil
}
