package experiments

import (
	"fmt"
	"strings"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/simulator"
	"boedag/internal/workload"
)

// Table1Row is one row of the paper's Table I workload overview: the
// workload's compression and replication settings and the bottleneck
// resources its stages exhibit — measured in the simulator and identified
// independently by the BOE model.
type Table1Row struct {
	Group       string
	Workload    string
	Compression bool
	Replicas    string
	// MeasuredBottlenecks are the distinct per-stage bottlenecks the
	// simulator observed, in stage order.
	MeasuredBottlenecks []cluster.Resource
}

// BottleneckString formats the measured bottlenecks like the paper's
// "CPU, Network" column.
func (r Table1Row) BottleneckString() string {
	var parts []string
	seen := map[cluster.Resource]bool{}
	for _, b := range r.MeasuredBottlenecks {
		if !seen[b] {
			seen[b] = true
			parts = append(parts, b.String())
		}
	}
	return strings.Join(parts, ", ")
}

// Table1 reproduces Table I for the micro and multi-job workloads: it
// runs each alone on the simulated cluster — one pool job per row — and
// records the bottleneck resources of its stages.
func Table1(cfg Config) ([]Table1Row, error) {
	micro := []workload.JobProfile{
		workload.WordCount(cfg.MicroInput),
		workload.TeraSortCompressed(cfg.MicroInput),
		workload.TeraSort(cfg.MicroInput),
		workload.TeraSort3R(cfg.MicroInput),
	}
	multi := []struct {
		label string
		a, b  workload.JobProfile
	}{
		{"WC+TS", workload.WordCount(cfg.MicroInput), workload.TeraSort(cfg.MicroInput)},
		{"WC+TS3R", workload.WordCount(cfg.MicroInput), workload.TeraSort3R(cfg.MicroInput)},
	}

	jobs := make([]func() (Table1Row, error), 0, len(micro)+len(multi))
	for _, p := range micro {
		p := p
		jobs = append(jobs, func() (Table1Row, error) {
			row, err := measureTable1Row("Micro Single-Job", p.Name, dag.Single(p), cfg)
			if err != nil {
				return Table1Row{}, err
			}
			row.Compression = p.Compression.Enabled
			row.Replicas = fmt.Sprint(effectiveReplicas(p))
			return *row, nil
		})
	}
	for _, m := range multi {
		m := m
		jobs = append(jobs, func() (Table1Row, error) {
			flow := dag.Parallel(m.label, dag.Single(m.a), dag.Single(m.b))
			row, err := measureTable1Row("Micro Multi-Jobs", m.label, flow, cfg)
			if err != nil {
				return Table1Row{}, err
			}
			row.Compression = m.a.Compression.Enabled && m.b.Compression.Enabled
			row.Replicas = fmt.Sprintf("%d, %d", effectiveReplicas(m.a), effectiveReplicas(m.b))
			return *row, nil
		})
	}
	return runJobs(cfg, "table1", jobs)
}

func measureTable1Row(group, label string, flow *dag.Workflow, cfg Config) (*Table1Row, error) {
	sim := simulator.New(cfg.Spec, cfg.simOptions())
	res, err := sim.Run(flow)
	if err != nil {
		return nil, fmt.Errorf("experiments: table1 %s: %w", label, err)
	}
	row := &Table1Row{Group: group, Workload: label}
	for _, s := range res.Stages {
		row.MeasuredBottlenecks = append(row.MeasuredBottlenecks, s.Bottleneck)
	}
	return row, nil
}

func effectiveReplicas(p workload.JobProfile) int {
	if p.Replicas == 0 {
		return 3
	}
	return p.Replicas
}
