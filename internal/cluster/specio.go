package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteSpec marshals a cluster specification as indented JSON — the
// interchange format between `calibrate -spec-out` (which recovers a
// spec from probe runs or recorded traces) and `dagsim -cluster` (which
// simulates against it).
func WriteSpec(w io.Writer, s Spec) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("cluster: refusing to write invalid spec: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("cluster: write spec: %w", err)
	}
	return nil
}

// ReadSpec parses a JSON cluster specification and validates it, so a
// hand-edited or machine-recovered file fails loudly at load time rather
// than as nonsense simulation output. Unknown fields are rejected to
// catch typos like "DiskReadRat".
func ReadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("cluster: read spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("cluster: read spec: %w", err)
	}
	return s, nil
}

// WriteSpecFile writes the spec to a file (0644).
func WriteSpecFile(path string, s Spec) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer f.Close()
	if err := WriteSpec(f, s); err != nil {
		return err
	}
	return f.Close()
}

// ReadSpecFile reads and validates a spec from a file.
func ReadSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("cluster: %w", err)
	}
	defer f.Close()
	s, err := ReadSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}
