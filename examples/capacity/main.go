// Capacity demonstrates the cost models as a what-if tool — the
// "capacity planning on the cloud" application the paper's introduction
// motivates. Given a deadline for the WC+TS hybrid workload, it sweeps
// cluster sizes with the state-based BOE estimator (milliseconds per
// evaluation, no cluster needed) and reports the smallest cluster that
// meets the deadline, then validates that choice in the simulator.
//
// Run it with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"time"

	"boedag"
)

func main() {
	deadline := 5 * time.Minute
	base := boedag.PaperCluster()

	flow := boedag.ParallelFlows("WC+TS",
		boedag.Single(boedag.WordCount(100*boedag.GB)),
		boedag.Single(boedag.TeraSort(100*boedag.GB)))

	fmt.Printf("finding the smallest cluster that runs WC+TS (200 GB total) under %v\n\n", deadline)
	fmt.Println("nodes  predicted makespan")

	chosen := 0
	var predicted time.Duration
	for nodes := 4; nodes <= 40; nodes += 2 {
		spec := base
		spec.Nodes = nodes
		timer := &boedag.BOETimer{Model: boedag.NewBOE(spec), TaskStartOverhead: time.Second}
		est := boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: boedag.NormalMode})
		plan, err := est.Estimate(flow)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if chosen == 0 && plan.Makespan <= deadline {
			chosen, predicted = nodes, plan.Makespan
			marker = "  ← first within deadline"
		}
		fmt.Printf("%5d  %8.1fs%s\n", nodes, plan.Makespan.Seconds(), marker)
		if chosen != 0 && nodes >= chosen+6 {
			break
		}
	}
	if chosen == 0 {
		log.Fatal("no cluster size met the deadline in the sweep")
	}

	// Validate the recommendation against the simulator.
	spec := base
	spec.Nodes = chosen
	res, err := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 1}).Run(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommendation: %d nodes (predicted %.1fs)\n", chosen, predicted.Seconds())
	fmt.Printf("simulated check: %.1fs — %s, prediction accuracy %.1f%%\n",
		res.Makespan.Seconds(),
		verdict(res.Makespan <= deadline),
		100*boedag.Accuracy(predicted, res.Makespan))
}

func verdict(ok bool) string {
	if ok {
		return "within the deadline"
	}
	return "MISSED the deadline"
}
