// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) against the simulated cluster: the Table I workload
// overview, the Figure 6 single-job sweeps, the Table II parallel-job
// task-level accuracy, the Table III 51-workflow end-to-end accuracy, and
// the estimation-overhead measurement. Each experiment returns plain data
// structs; Render* helpers print them in the paper's layout.
package experiments

import (
	"time"

	"boedag/internal/cluster"
	"boedag/internal/obs"
	"boedag/internal/simulator"
	"boedag/internal/units"
)

// Config fixes the environment an experiment runs in.
type Config struct {
	// Spec is the cluster; defaults to the paper's eleven nodes.
	Spec cluster.Spec
	// Seed drives the deterministic skew in the simulator.
	Seed int64
	// MicroInput is the Word Count / TeraSort input size (paper: 100 GB).
	MicroInput units.Bytes
	// TPCHScale is the TPC-H scale factor (paper: 80).
	TPCHScale float64
	// TaskStartOverhead and JobSubmitOverhead mirror the simulator's
	// latencies in the estimators.
	TaskStartOverhead time.Duration
	JobSubmitOverhead time.Duration
	// Observe attaches observability sinks to every simulation an
	// experiment runs (zero value = off, the allocation-free path).
	Observe obs.Options
	// Workers bounds how many independent evaluations (sweep points, table
	// rows, study probes) run concurrently. 0 or 1 is serial — the default,
	// which also keeps the observability event stream in a deterministic
	// order; results and rendered tables are identical at any value.
	Workers int
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		Spec:              cluster.PaperCluster(),
		Seed:              1,
		MicroInput:        100 * units.GB,
		TPCHScale:         80,
		TaskStartOverhead: time.Second,
		JobSubmitOverhead: 2 * time.Second,
	}
}

// Scaled returns a configuration shrunk by factor (for fast tests):
// inputs divide by factor, the cluster stays the paper's.
func Scaled(factor float64) Config {
	cfg := Default()
	if factor > 1 {
		cfg.MicroInput = cfg.MicroInput.Scale(1 / factor)
		cfg.TPCHScale /= factor
	}
	return cfg
}

func (c Config) simOptions() simulator.Options {
	return c.SimOptions(c.Seed)
}

// SimOptions returns simulator options matching the configuration's
// overheads, with an explicit seed (benchmarks vary the seed per
// iteration to defeat caching without changing the workload).
func (c Config) SimOptions(seed int64) simulator.Options {
	return simulator.Options{
		Seed:              seed,
		TaskStartOverhead: c.TaskStartOverhead,
		JobSubmitOverhead: c.JobSubmitOverhead,
		Observe:           c.Observe,
	}
}
