package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAccuracy(t *testing.T) {
	cases := []struct {
		est, act time.Duration
		want     float64
	}{
		{100 * time.Second, 100 * time.Second, 1.0},
		{90 * time.Second, 100 * time.Second, 0.9},
		{110 * time.Second, 100 * time.Second, 0.9},
		{200 * time.Second, 100 * time.Second, 0.0}, // 100% off
		{300 * time.Second, 100 * time.Second, 0.0}, // clamped
		{0, 0, 1.0},           // both zero: perfect
		{time.Second, 0, 0.0}, // actual zero, est not
	}
	for _, c := range cases {
		if got := Accuracy(c.est, c.act); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Accuracy(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestError(t *testing.T) {
	if got := Error(90*time.Second, 100*time.Second); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Error = %v, want 0.1", got)
	}
	if got := Error(300*time.Second, 100*time.Second); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("Error unclamped = %v, want 2.0", got)
	}
	if got := Error(0, 0); got != 0 {
		t.Errorf("Error(0,0) = %v, want 0", got)
	}
	if got := Error(time.Second, 0); !math.IsInf(got, 1) {
		t.Errorf("Error(x,0) = %v, want +Inf", got)
	}
}

// TestAccuracyErrorEdgeCases pins the degenerate-input contract both
// functions document: zero and negative durations, and estimates past
// the 2×actual clamp point.
func TestAccuracyErrorEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		est, act time.Duration
		wantAcc  float64
		wantErr  float64
	}{
		{"half the truth scores one half", 50 * time.Second, 100 * time.Second, 0.5, 0.5},
		{"exactly 2x hits the clamp", 200 * time.Second, 100 * time.Second, 0, 1},
		{"past 2x stays clamped, error keeps growing", 500 * time.Second, 100 * time.Second, 0, 4},
		{"negative estimate clamps, error unbounded", -100 * time.Second, 50 * time.Second, 0, 3},
		{"zero estimate of positive actual", 0, 100 * time.Second, 0, 1},
		{"both zero is a perfect instant", 0, 0, 1, 0},
		{"both negative counts as instant", -time.Second, -2 * time.Second, 1, 0},
		{"negative actual, positive estimate", time.Second, -time.Second, 0, math.Inf(1)},
		{"zero actual, positive estimate", time.Second, 0, 0, math.Inf(1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Accuracy(c.est, c.act); math.Abs(got-c.wantAcc) > 1e-9 {
				t.Errorf("Accuracy(%v, %v) = %v, want %v", c.est, c.act, got, c.wantAcc)
			}
			got := Error(c.est, c.act)
			if math.IsInf(c.wantErr, 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("Error(%v, %v) = %v, want +Inf", c.est, c.act, got)
				}
			} else if math.Abs(got-c.wantErr) > 1e-9 {
				t.Errorf("Error(%v, %v) = %v, want %v", c.est, c.act, got, c.wantErr)
			}
		})
	}
}

func TestImprovementFactor(t *testing.T) {
	if got := ImprovementFactor(0.5, 0.1); math.Abs(got-5) > 1e-9 {
		t.Errorf("factor = %v, want 5", got)
	}
	if got := ImprovementFactor(0.5, 0); !math.IsInf(got, 1) {
		t.Errorf("factor with zero candidate error = %v, want +Inf", got)
	}
	if got := ImprovementFactor(0, 0); got != 1 {
		t.Errorf("factor 0/0 = %v, want 1", got)
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 4 {
		t.Errorf("Max = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v", got)
	}
	// Sample std of {1,2,3,4} = sqrt(5/3).
	if got := StdDev(xs); math.Abs(got-math.Sqrt(5.0/3)) > 1e-9 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestAggregatesEmpty(t *testing.T) {
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty aggregates not all zero")
	}
	if StdDev([]float64{7}) != 0 {
		t.Error("single-value std not zero")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

// Property: accuracy is in [0,1] and symmetric in over/under estimation
// of the same magnitude.
func TestAccuracyProperties(t *testing.T) {
	f := func(actSec uint16, errPct uint8) bool {
		act := time.Duration(actSec+1) * time.Second
		frac := float64(errPct%100) / 100
		over := act + time.Duration(frac*float64(act))
		under := act - time.Duration(frac*float64(act))
		a, b := Accuracy(over, act), Accuracy(under, act)
		if a < 0 || a > 1 || b < 0 || b > 1 {
			return false
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mean lies within [Min, Max] for magnitudes that do not
// overflow the running sum.
func TestMeanBounded(t *testing.T) {
	f := func(raw []int32) bool {
		var xs []float64
		for _, x := range raw {
			xs = append(xs, float64(x))
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9*math.Abs(Min(xs))-1e-9 &&
			m <= Max(xs)+1e-9*math.Abs(Max(xs))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
