// Command boedagd is the prediction daemon: a long-running HTTP/JSON
// service answering DAG makespan queries with the state-based BOE
// estimator. Identical concurrent requests coalesce onto one estimator
// run; a bounded admission queue sheds overload with 503 + Retry-After;
// SIGTERM drains gracefully.
//
// Usage:
//
//	boedagd                               # serve :8080, paper cluster
//	boedagd -addr :9000 -cluster spec.json  # serve a calibrated cluster
//	boedagd -max-concurrent 16 -queue 64  # tighter admission control
//	boedagd -quiet                        # suppress per-request log lines
//	boedagd -debug-pprof                  # live profiles at /debug/pprof/
//
//	curl -s localhost:8080/v1/estimate -d '{"workflow":"wc+ts"}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"boedag/internal/cliobs"
	"boedag/internal/cluster"
	"boedag/internal/obs"
	"boedag/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		clusterIn = flag.String("cluster", "", "serve this cluster spec JSON (e.g. from `calibrate -spec-out`) instead of the paper cluster")
		workers   = flag.Int("workers", 0, "evalpool fan-out per batch request (0 = GOMAXPROCS)")
		maxConc   = flag.Int("max-concurrent", 0, "max concurrently executing /v1 requests (0 = default 64)")
		queue     = flag.Int("queue", 0, "admission queue depth before 503 (0 = default 128)")
		maxBatch  = flag.Int("max-batch", 0, "max scenarios per batch request (0 = default 256)")
		timeout   = flag.Duration("timeout", 0, "per-request deadline ceiling (0 = default 30s)")
		drain     = flag.Duration("drain-timeout", 0, "graceful drain deadline on SIGTERM (0 = default 10s)")
		maxBody   = flag.Int64("max-body", 0, "request body limit in bytes (0 = default 1 MiB)")
		quiet     = flag.Bool("quiet", false, "suppress per-request log lines")
		debugProf = flag.Bool("debug-pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving mux (bypasses admission control)")
	)
	var ob cliobs.Flags
	ob.Register(nil)
	flag.Parse()

	observe, err := ob.Options()
	if err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Workers:        *workers,
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		MaxBatch:       *maxBatch,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		MaxBodyBytes:   *maxBody,
		EnablePprof:    *debugProf,
		// Share the cliobs registry when one exists so -metrics-out /
		// -otlp-out snapshots written at shutdown include the server's
		// runtime counters.
		Observe: obs.Options{Metrics: ob.Registry()},
	}
	if *clusterIn != "" {
		spec, err := cluster.ReadSpecFile(*clusterIn)
		if err != nil {
			fatal(err)
		}
		cfg.Spec = spec
	}

	// Structured request logging: the server emits one EvRequest event per
	// served request into a stream; a subscriber prints them. The stream
	// tees with any tracer the observability flags configured.
	var logDone chan struct{}
	if !*quiet {
		stream := obs.NewStream()
		sub := stream.Subscribe(0)
		logDone = make(chan struct{})
		go func() {
			defer close(logDone)
			for ev := range sub.Events() {
				if ev.Type != obs.EvRequest {
					continue
				}
				fmt.Printf("%s %s %d %.1fms\n",
					time.Now().Format(time.RFC3339), ev.Detail, int(ev.Value), ev.Dur*1000)
			}
		}()
		cfg.Observe.Tracer = obs.Tee(observe.Tracer, stream)
		defer func() {
			stream.Close()
			<-logDone
		}()
	} else {
		cfg.Observe.Tracer = observe.Tracer
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}

	// SIGTERM/SIGINT cancels the serving context; Serve then drains
	// in-flight requests (readiness flips, new requests get 503) before
	// closing the listener.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	fmt.Printf("boedagd listening on %s\n", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fatal(err)
	}
	fmt.Println("boedagd drained cleanly")
	if err := ob.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boedagd:", err)
	os.Exit(1)
}
