package experiments

import (
	"fmt"

	"boedag/internal/dag"
	"boedag/internal/hibench"
	"boedag/internal/tpch"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// WebAnalytics builds the paper's Figure 1 motivating DAG: four jobs over
// a page-view event log. Job 1 pre-aggregates visit durations; job 2
// counts views per page (Word Count-like, CPU-bound); job 3 sorts pages
// by visit duration (Sort-like, shuffle-heavy); job 4 joins both into the
// min/median/max report. Jobs 2 and 3 run in parallel — the source of the
// task-time variation the paper opens with.
func WebAnalytics(logBytes units.Bytes) *dag.Workflow {
	if logBytes <= 0 {
		logBytes = 50 * units.GB
	}
	preagg := workload.JobProfile{
		Name:              "j1-preagg",
		InputBytes:        logBytes,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       33,
		MapSelectivity:    0.6, // page, IP, duration triples
		ReduceSelectivity: 0.5, // one record per visit
		MapCPUCost:        1.8,
		ReduceCPUCost:     1.4,
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.1,
	}
	agg := preagg.OutputBytes()
	count := workload.JobProfile{ // Word Count-like: views per page
		Name:              "j2-count",
		InputBytes:        agg,
		SplitBytes:        64 * units.MB, // fine splits: maps span job 3's states
		ReduceTasks:       17,
		MapSelectivity:    0.3,
		ReduceSelectivity: 0.5,
		MapCPUCost:        6.0, // tokenise + sessionise: heavily CPU-bound
		ReduceCPUCost:     1.3,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.35, CPUOverhead: 0.4},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.1,
	}
	sortJob := workload.JobProfile{ // Sort-like: pages by duration
		Name:              "j3-sort",
		InputBytes:        agg,
		SplitBytes:        256 * units.MB, // coarse splits: one fast map wave,
		ReduceTasks:       17,             // then a long shuffle over j2's maps
		MapSelectivity:    1.0,
		ReduceSelectivity: 1.0,
		MapCPUCost:        0.5,
		ReduceCPUCost:     1.0,
		Replicas:          1,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.08,
	}
	report := workload.JobProfile{ // join both outputs into the report
		Name:              "j4-report",
		InputBytes:        count.OutputBytes() + sortJob.OutputBytes(),
		SplitBytes:        128 * units.MB,
		ReduceTasks:       8,
		MapSelectivity:    1.0,
		ReduceSelectivity: 0.2,
		MapCPUCost:        1.5,
		ReduceCPUCost:     1.8,
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.1,
	}
	return &dag.Workflow{
		Name: "web-analytics",
		Jobs: []dag.Job{
			{ID: "j1", Profile: preagg},
			{ID: "j2", Profile: count, Deps: []string{"j1"}},
			{ID: "j3", Profile: sortJob, Deps: []string{"j1"}},
			{ID: "j4", Profile: report, Deps: []string{"j2", "j3"}},
		},
	}
}

// NamedWorkflow pairs a Table III column label with its DAG.
type NamedWorkflow struct {
	Label string
	Flow  *dag.Workflow
}

// TableIIIWorkflows builds the paper's 51 evaluation workflows:
// TS-Q1..Q22 and WC-Q1..Q22 (a 100 GB micro job in parallel with each
// TPC-H query), WC-TS, WC-TS2R, WC-TS3R, and the four HiBench hybrids
// WC-KM, WC-PR, TS-KM, TS-PR.
func TableIIIWorkflows(cfg Config) ([]NamedWorkflow, error) {
	schema := tpch.Schema{ScaleFactor: cfg.TPCHScale}
	var out []NamedWorkflow

	micro := map[string]func(units.Bytes) workload.JobProfile{
		"TS": workload.TeraSort,
		"WC": workload.WordCount,
	}
	for _, name := range []string{"TS", "WC"} {
		gen := micro[name]
		for q := 1; q <= tpch.NumQueries; q++ {
			query, err := tpch.Query(q, schema)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s-Q%d: %w", name, q, err)
			}
			label := fmt.Sprintf("%s-Q%d", name, q)
			flow := dag.Parallel(label, dag.Single(gen(cfg.MicroInput)), query)
			out = append(out, NamedWorkflow{Label: label, Flow: flow})
		}
	}

	scaleHB := func(b units.Bytes) units.Bytes {
		// HiBench inputs scale with the micro input so Scaled configs keep
		// the workloads balanced.
		return b.Scale(float64(cfg.MicroInput) / float64(100*units.GB))
	}
	km := func() *dag.Workflow {
		c := hibench.DefaultKMeans()
		c.InputBytes = scaleHB(c.InputBytes)
		return hibench.KMeans(c)
	}
	pr := func() *dag.Workflow {
		c := hibench.DefaultPageRank()
		c.EdgeBytes = scaleHB(c.EdgeBytes)
		return hibench.PageRank(c)
	}

	out = append(out,
		NamedWorkflow{"WC-TS", dag.Parallel("WC-TS",
			dag.Single(workload.WordCount(cfg.MicroInput)),
			dag.Single(workload.TeraSort(cfg.MicroInput)))},
		NamedWorkflow{"WC-TS2R", dag.Parallel("WC-TS2R",
			dag.Single(workload.WordCount(cfg.MicroInput)),
			dag.Single(workload.TeraSort2R(cfg.MicroInput)))},
		NamedWorkflow{"WC-TS3R", dag.Parallel("WC-TS3R",
			dag.Single(workload.WordCount(cfg.MicroInput)),
			dag.Single(workload.TeraSort3R(cfg.MicroInput)))},
		NamedWorkflow{"WC-KM", dag.Parallel("WC-KM",
			dag.Single(workload.WordCount(cfg.MicroInput)), km())},
		NamedWorkflow{"WC-PR", dag.Parallel("WC-PR",
			dag.Single(workload.WordCount(cfg.MicroInput)), pr())},
		NamedWorkflow{"TS-KM", dag.Parallel("TS-KM",
			dag.Single(workload.TeraSort(cfg.MicroInput)), km())},
		NamedWorkflow{"TS-PR", dag.Parallel("TS-PR",
			dag.Single(workload.TeraSort(cfg.MicroInput)), pr())},
	)
	return out, nil
}
