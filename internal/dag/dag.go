// Package dag defines DAG workflows of MapReduce jobs (Definition 1 of
// the paper): a set of jobs connected by precedence edges, where a job
// starts if and only if all its parents have finished, and independent
// jobs run in parallel. It provides validation, topological ordering,
// and composition helpers for building the hybrid workloads of the
// evaluation.
package dag

import (
	"fmt"
	"sort"

	"boedag/internal/units"
	"boedag/internal/workload"
)

// Job is one vertex of a workflow: a MapReduce job plus the IDs of the
// jobs whose completion it waits for.
type Job struct {
	// ID is unique within the workflow, e.g. "j1" or "q5-join2".
	ID string
	// Profile describes the job's data volumes and costs.
	Profile workload.JobProfile
	// Deps lists parent job IDs; the job starts only when all have
	// completed.
	Deps []string
}

// Workflow is a named DAG of jobs.
type Workflow struct {
	Name string
	Jobs []Job
}

// Validate checks ID uniqueness, dependency resolution, per-job profile
// validity, and acyclicity. It returns the first problem found.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("dag: workflow needs a name")
	}
	if len(w.Jobs) == 0 {
		return fmt.Errorf("dag: workflow %q has no jobs", w.Name)
	}
	seen := make(map[string]bool, len(w.Jobs))
	for _, j := range w.Jobs {
		if j.ID == "" {
			return fmt.Errorf("dag: workflow %q: job with empty ID", w.Name)
		}
		if seen[j.ID] {
			return fmt.Errorf("dag: workflow %q: duplicate job ID %q", w.Name, j.ID)
		}
		seen[j.ID] = true
		if err := j.Profile.Validate(); err != nil {
			return fmt.Errorf("dag: workflow %q: job %q: %w", w.Name, j.ID, err)
		}
	}
	for _, j := range w.Jobs {
		for _, d := range j.Deps {
			if !seen[d] {
				return fmt.Errorf("dag: workflow %q: job %q depends on unknown job %q",
					w.Name, j.ID, d)
			}
			if d == j.ID {
				return fmt.Errorf("dag: workflow %q: job %q depends on itself", w.Name, j.ID)
			}
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Job returns the job with the given ID, or nil.
func (w *Workflow) Job(id string) *Job {
	for i := range w.Jobs {
		if w.Jobs[i].ID == id {
			return &w.Jobs[i]
		}
	}
	return nil
}

// Children returns a map from job ID to the IDs of jobs that depend on it.
func (w *Workflow) Children() map[string][]string {
	ch := make(map[string][]string, len(w.Jobs))
	for _, j := range w.Jobs {
		for _, d := range j.Deps {
			ch[d] = append(ch[d], j.ID)
		}
	}
	return ch
}

// Roots returns the IDs of jobs with no dependencies, in declaration
// order.
func (w *Workflow) Roots() []string {
	var roots []string
	for _, j := range w.Jobs {
		if len(j.Deps) == 0 {
			roots = append(roots, j.ID)
		}
	}
	return roots
}

// TopoOrder returns job IDs in a dependency-respecting order, or an error
// naming a job on a cycle. Ties break by declaration order, so the result
// is deterministic.
func (w *Workflow) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(w.Jobs))
	pos := make(map[string]int, len(w.Jobs))
	for i, j := range w.Jobs {
		indeg[j.ID] = len(j.Deps)
		pos[j.ID] = i
	}
	children := w.Children()

	ready := make([]string, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		if indeg[j.ID] == 0 {
			ready = append(ready, j.ID)
		}
	}
	order := make([]string, 0, len(w.Jobs))
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return pos[ready[a]] < pos[ready[b]] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, c := range children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != len(w.Jobs) {
		for _, j := range w.Jobs {
			if indeg[j.ID] > 0 {
				return nil, fmt.Errorf("dag: workflow %q: cycle involving job %q", w.Name, j.ID)
			}
		}
	}
	return order, nil
}

// TotalInput sums the input bytes of all jobs (a rough size indicator for
// reports; intermediate jobs read other jobs' output, also counted here).
func (w *Workflow) TotalInput() units.Bytes {
	var sum units.Bytes
	for _, j := range w.Jobs {
		sum += j.Profile.InputBytes
	}
	return sum
}

// Single wraps one job profile into a one-job workflow named after it.
func Single(p workload.JobProfile) *Workflow {
	return &Workflow{Name: p.Name, Jobs: []Job{{ID: p.Name, Profile: p}}}
}

// Chain builds a linear workflow j1 → j2 → … from the given profiles,
// assigning IDs "j1", "j2", …
func Chain(name string, profiles ...workload.JobProfile) *Workflow {
	w := &Workflow{Name: name}
	for i, p := range profiles {
		j := Job{ID: fmt.Sprintf("j%d", i+1), Profile: p}
		if i > 0 {
			j.Deps = []string{fmt.Sprintf("j%d", i)}
		}
		w.Jobs = append(w.Jobs, j)
	}
	return w
}

// Parallel merges workflows into one that runs them side by side — the
// paper's "hybrid" workloads (e.g. WC + TPC-H Q5). Job IDs are prefixed
// with the source workflow's name to stay unique.
func Parallel(name string, flows ...*Workflow) *Workflow {
	out := &Workflow{Name: name}
	for _, f := range flows {
		prefix := f.Name + "/"
		for _, j := range f.Jobs {
			nj := Job{ID: prefix + j.ID, Profile: j.Profile}
			for _, d := range j.Deps {
				nj.Deps = append(nj.Deps, prefix+d)
			}
			out.Jobs = append(out.Jobs, nj)
		}
	}
	return out
}

// CriticalPath returns the job IDs on the longest root-to-leaf path,
// weighting each job by weight(job), along with the path's total weight.
// It assumes a valid (acyclic) workflow.
func (w *Workflow) CriticalPath(weight func(Job) float64) ([]string, float64) {
	order, err := w.TopoOrder()
	if err != nil || len(order) == 0 {
		return nil, 0
	}
	best := make(map[string]float64, len(order))
	prev := make(map[string]string, len(order))
	for _, id := range order {
		j := w.Job(id)
		w0 := weight(*j)
		bestDep, bestDepID := 0.0, ""
		for _, d := range j.Deps {
			if best[d] > bestDep || bestDepID == "" {
				bestDep, bestDepID = best[d], d
			}
		}
		best[id] = w0 + bestDep
		if bestDepID != "" {
			prev[id] = bestDepID
		}
	}
	endID, endW := "", -1.0
	for id, v := range best {
		if v > endW {
			endID, endW = id, v
		}
	}
	var path []string
	for id := endID; id != ""; id = prev[id] {
		path = append(path, id)
		if _, ok := prev[id]; !ok {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, endW
}
