package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The /v1/schedule contract rides the same conformance machinery as the
// estimate endpoints: canned requests in testdata, byte-pinned goldens
// (regenerate with -update), typed errors, and the shared admission/
// drain/timeout middleware exercised under -race.

func TestScheduleConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	cases := []struct {
		name     string
		status   int
		wantCode string
	}{
		{"schedule_flat", http.StatusOK, ""},
		{"schedule_hierarchy", http.StatusOK, ""},
		{"schedule_reject", http.StatusOK, ""},
		{"schedule_bad_queue", http.StatusBadRequest, CodeBadRequest},
		{"schedule_bad_policy", http.StatusBadRequest, CodeBadRequest},
		{"schedule_empty", http.StatusBadRequest, CodeBadRequest},
		{"schedule_dup_job", http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, hdr := post(t, ts.URL+"/v1/schedule", readRequest(t, tc.name))
			if status != tc.status {
				t.Fatalf("status = %d, want %d; body: %s", status, tc.status, body)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if tc.wantCode != "" {
				var env errorEnvelope
				if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
					t.Fatalf("error body does not parse: %s", body)
				}
				if env.Error.Code != tc.wantCode {
					t.Errorf("error code = %q, want %q", env.Error.Code, tc.wantCode)
				}
			}
			checkGolden(t, tc.name, body)
		})
	}
}

// TestScheduleMatchesLibrary ties the wire numbers to the library: the
// served response must equal a direct RunStream replay field for field.
func TestScheduleMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw := readRequest(t, "schedule_hierarchy")
	status, body, _ := post(t, ts.URL+"/v1/schedule", raw)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var got ScheduleResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("parse: %v", err)
	}
	req, apiErr := DecodeScheduleRequest(bytes.NewReader(raw))
	if apiErr != nil {
		t.Fatalf("decode: %v", apiErr)
	}
	want, err := encodeScheduleResponse(req.policy.String(), req.replay(Config{}.withDefaults().Spec))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("served bytes diverge from library replay:\ngot:\n%s\nwant:\n%s", body, want)
	}
	if got.Preemptions == 0 {
		t.Error("hierarchy fixture reclaimed nothing — quota preemption is not reaching the wire")
	}
}

// TestScheduleRejectionsOnWire pins the 503-style admission refusal: the
// response carries the machine-readable rejection reason while the HTTP
// status stays 200 (the replay succeeded; the job was refused).
func TestScheduleRejectionsOnWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts.URL+"/v1/schedule", readRequest(t, "schedule_reject"))
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var got ScheduleResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Rejected == 0 || len(got.Rejections) == 0 {
		t.Fatalf("no rejection surfaced: %s", body)
	}
	rej := got.Rejections[0]
	if rej.Code != http.StatusServiceUnavailable {
		t.Errorf("rejection code = %d, want 503", rej.Code)
	}
	if rej.Reason == "" || rej.Detail == "" {
		t.Errorf("rejection missing reason/detail: %+v", rej)
	}
	for _, j := range got.Jobs {
		if j.Rejected && (j.Reason == "" || j.FinishS != j.SubmitS) {
			t.Errorf("rejected job %s: reason %q, finish_s %v (want the rejection instant %v)",
				j.ID, j.Reason, j.FinishS, j.SubmitS)
		}
	}
}

// TestScheduleConcurrent hammers /v1/schedule from many goroutines under
// -race: identical and distinct requests interleave and every response
// must be well-formed with deterministic bytes per request body.
func TestScheduleConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bodies := [][]byte{
		readRequest(t, "schedule_flat"),
		readRequest(t, "schedule_hierarchy"),
		readRequest(t, "schedule_reject"),
	}
	first := make([][]byte, len(bodies))
	for i, b := range bodies {
		status, resp, _ := post(t, ts.URL+"/v1/schedule", b)
		if status != http.StatusOK {
			t.Fatalf("seed request %d: status %d", i, status)
		}
		first[i] = resp
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				i := (g + k) % len(bodies)
				status, resp, _, err := tryPost(ts.URL+"/v1/schedule", bodies[i])
				if err != nil || status != http.StatusOK {
					errs <- "request failed"
					return
				}
				if !bytes.Equal(resp, first[i]) {
					errs <- "nondeterministic response bytes"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestScheduleTimeout drives the per-request deadline through the test
// seam: a schedule replay that outlives its budget answers 504/timeout.
func TestScheduleTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	s.testHookEstimate = func() { time.Sleep(100 * time.Millisecond) }
	status, body, _ := post(t, ts.URL+"/v1/schedule", readRequest(t, "schedule_flat"))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body: %s", status, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != CodeTimeout {
		t.Errorf("error body = %s", body)
	}
}

// TestScheduleDraining verifies the shared drain gate covers the new
// endpoint: once Shutdown starts, /v1/schedule refuses with 503/draining.
func TestScheduleDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	status, body, hdr := post(t, ts.URL+"/v1/schedule", readRequest(t, "schedule_flat"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body: %s", status, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != CodeDraining {
		t.Errorf("error body = %s", body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// FuzzDecodeScheduleRequest holds the schedule decoder's safety line,
// seeded from the canned schedule requests plus adversarial shapes.
func FuzzDecodeScheduleRequest(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "schedule_*.req.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v", err)
	}
	for _, path := range seeds {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"jobs":[{"id":"a","work_slot_s":1e308,"submit_s":1e308}]}`))
	f.Add([]byte(`{"jobs":[{"id":"a","work_slot_s":1}],"queues":[{"name":"q","parent":"q"}]}`))
	f.Add([]byte(`{"jobs":[{"id":"a","work_slot_s":1}]}{"jobs":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, apiErr := DecodeScheduleRequest(bytes.NewReader(data))
		switch {
		case req == nil && apiErr == nil:
			t.Fatal("neither request nor error returned")
		case req != nil && apiErr != nil:
			t.Fatal("both request and error returned")
		case apiErr != nil:
			if apiErr.Status < 400 || apiErr.Status > 599 {
				t.Fatalf("error status %d out of range", apiErr.Status)
			}
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("untyped error: %+v", apiErr)
			}
			if _, err := json.Marshal(errorEnvelope{Error: apiErr}); err != nil {
				t.Fatalf("error envelope does not marshal: %v", err)
			}
		default:
			if len(req.Jobs) == 0 {
				t.Fatal("accepted request with no jobs")
			}
			for _, j := range req.Jobs {
				if j.Queue != "" && req.hierarchy == nil {
					t.Fatalf("accepted queue %q without hierarchy", j.Queue)
				}
			}
		}
	})
}
