package boedag_test

import (
	"fmt"
	"math/rand"
	"testing"

	"boedag"
	"boedag/internal/dag"
	"boedag/internal/metrics"
	"boedag/internal/profile"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// randomProfile draws a plausible MapReduce job: selectivities, CPU
// costs, compression and replication across the ranges real workloads
// cover.
func randomProfile(rng *rand.Rand, name string) workload.JobProfile {
	p := workload.JobProfile{
		Name:              name,
		InputBytes:        units.Bytes(rng.Intn(28)+3) * units.GB,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       rng.Intn(66) + 1,
		MapSelectivity:    0.05 + rng.Float64()*1.2,
		ReduceSelectivity: 0.05 + rng.Float64()*1.2,
		MapCPUCost:        0.5 + rng.Float64()*4,
		ReduceCPUCost:     0.5 + rng.Float64()*2,
		Replicas:          rng.Intn(3) + 1,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            rng.Float64() * 0.2,
	}
	if rng.Intn(2) == 0 {
		p.Compression = workload.Compression{
			Enabled: true, Ratio: 0.3 + rng.Float64()*0.5, CPUOverhead: rng.Float64() * 0.5,
		}
	}
	return p
}

// randomWorkflow builds a 1-4 job DAG with random precedence edges.
func randomWorkflow(rng *rand.Rand, seed int64) *dag.Workflow {
	n := rng.Intn(4) + 1
	w := &dag.Workflow{Name: fmt.Sprintf("rand-%d", seed)}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r%d", i)
		j := dag.Job{ID: id, Profile: randomProfile(rng, id)}
		for k := 0; k < i; k++ {
			if rng.Intn(3) == 0 {
				j.Deps = append(j.Deps, fmt.Sprintf("r%d", k))
			}
		}
		w.Jobs = append(w.Jobs, j)
	}
	return w
}

// TestEstimatorTracksSimulatorOnRandomWorkflows is the repository's
// strongest end-to-end property: for arbitrary random DAGs of plausible
// jobs, the profile-driven state-based estimator (the Table III
// methodology) must track the simulator. Individual outliers are
// tolerated; the average must stay high and nothing may be grossly wrong.
func TestEstimatorTracksSimulatorOnRandomWorkflows(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation sweep")
	}
	spec := boedag.PaperCluster()
	const trials = 25
	var accs []float64
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		flow := randomWorkflow(rng, seed)
		if err := flow.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := simulator.New(spec, simulator.Options{Seed: seed}).Run(flow)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		timer := &statemodel.ProfileTimer{Profiles: profile.Capture(res)}
		plan, err := statemodel.New(spec, timer,
			statemodel.Options{Mode: statemodel.NormalMode}).Estimate(flow)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		acc := metrics.Accuracy(plan.Makespan, res.Makespan)
		if acc < 0.55 {
			t.Errorf("seed %d (%d jobs): accuracy %.2f — grossly wrong (est %v, actual %v)",
				seed, len(flow.Jobs), acc, plan.Makespan, res.Makespan)
		}
		accs = append(accs, acc)
	}
	if mean := metrics.Mean(accs); mean < 0.85 {
		t.Errorf("mean accuracy over %d random workflows = %.3f, want ≥ 0.85", trials, mean)
	}
}

// TestBOETracksSimulatorOnRandomSingleJobs checks the pure-model path
// (no profiles at all) on random single jobs.
func TestBOETracksSimulatorOnRandomSingleJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation sweep")
	}
	spec := boedag.PaperCluster()
	timer := &statemodel.BOETimer{Model: boedag.NewBOE(spec), TaskStartOverhead: 1e9}
	const trials = 20
	var accs []float64
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		flow := dag.Single(randomProfile(rng, fmt.Sprintf("solo-%d", seed)))
		res, err := simulator.New(spec, simulator.Options{Seed: seed}).Run(flow)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan, err := statemodel.New(spec, timer,
			statemodel.Options{Mode: statemodel.NormalMode}).Estimate(flow)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		acc := metrics.Accuracy(plan.Makespan, res.Makespan)
		if acc < 0.5 {
			t.Errorf("seed %d: model accuracy %.2f (est %v, actual %v)",
				seed, acc, plan.Makespan, res.Makespan)
		}
		accs = append(accs, acc)
	}
	if mean := metrics.Mean(accs); mean < 0.80 {
		t.Errorf("mean model-only accuracy = %.3f, want ≥ 0.80", mean)
	}
}

// TestSimulatorEnergyConservation: across random workloads, every job's
// stages run exactly its task counts, no matter the DAG shape, skew,
// failures or policies.
func TestSimulatorEnergyConservation(t *testing.T) {
	spec := boedag.PaperCluster()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		flow := randomWorkflow(rng, seed)
		opts := simulator.Options{
			Seed:            seed,
			TaskFailureProb: rng.Float64() * 0.3,
			NodeAware:       rng.Intn(2) == 0,
		}
		res, err := simulator.New(spec, opts).Run(flow)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, j := range flow.Jobs {
			if got := len(res.TasksOf(j.ID, workload.Map)); got != j.Profile.MapTasks() {
				t.Errorf("seed %d job %s: %d map tasks, want %d", seed, j.ID, got, j.Profile.MapTasks())
			}
			if got := len(res.TasksOf(j.ID, workload.Reduce)); got != j.Profile.ReduceTasks {
				t.Errorf("seed %d job %s: %d reduce tasks, want %d", seed, j.ID, got, j.Profile.ReduceTasks)
			}
		}
	}
}
