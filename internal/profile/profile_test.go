package profile

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func sampleProfile() StageProfile {
	return StageProfile{
		Job:         "wc",
		Stage:       workload.Map,
		Parallelism: 8,
		TaskTimes: []time.Duration{
			10 * time.Second, 12 * time.Second, 8 * time.Second,
			11 * time.Second, 9 * time.Second,
		},
		Bottleneck: cluster.CPU,
	}
}

func TestStatistics(t *testing.T) {
	p := sampleProfile()
	if got := p.Median(); got != 10*time.Second {
		t.Errorf("Median = %v, want 10s", got)
	}
	if got := p.Mean(); got != 10*time.Second {
		t.Errorf("Mean = %v, want 10s", got)
	}
	// Sample std of {8,9,10,11,12} s = sqrt(2.5) ≈ 1.5811 s.
	want := math.Sqrt(2.5)
	if got := p.StdDev().Seconds(); math.Abs(got-want) > 1e-6 {
		t.Errorf("StdDev = %vs, want %vs", got, want)
	}
}

func TestStatisticsEmptyAndSingle(t *testing.T) {
	var empty StageProfile
	if empty.Median() != 0 || empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Error("empty profile stats not zero")
	}
	one := StageProfile{TaskTimes: []time.Duration{5 * time.Second}}
	if one.Median() != 5*time.Second || one.Mean() != 5*time.Second {
		t.Error("single-task stats wrong")
	}
	if one.StdDev() != 0 {
		t.Error("single-task std should be 0")
	}
}

func TestMedianEvenCount(t *testing.T) {
	p := StageProfile{TaskTimes: []time.Duration{
		4 * time.Second, 1 * time.Second, 3 * time.Second, 2 * time.Second,
	}}
	if got := p.Median(); got != 2500*time.Millisecond {
		t.Errorf("even-count median = %v, want 2.5s", got)
	}
}

func TestQuantile(t *testing.T) {
	p := StageProfile{TaskTimes: []time.Duration{
		1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second,
	}}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, time.Second},
		{1, 5 * time.Second},
		{-1, time.Second},
		{2, 5 * time.Second},
		{0.5, 3 * time.Second},
		{0.25, 2 * time.Second},
	}
	for _, c := range cases {
		if got := p.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	var empty StageProfile
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile not zero")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	p := StageProfile{TaskTimes: []time.Duration{3 * time.Second, 1 * time.Second, 2 * time.Second}}
	before := append([]time.Duration(nil), p.TaskTimes...)
	p.Quantile(0.5)
	p.Median()
	if !reflect.DeepEqual(before, p.TaskTimes) {
		t.Error("quantile computation reordered the profile")
	}
}

func TestCaptureFromSimulation(t *testing.T) {
	p := workload.WordCount(5 * units.GB)
	res, err := simulator.New(cluster.PaperCluster(), simulator.Options{Seed: 1}).Run(dag.Single(p))
	if err != nil {
		t.Fatal(err)
	}
	set := Capture(res)
	if set.Workflow != "WC" {
		t.Errorf("workflow = %q", set.Workflow)
	}
	mp, ok := set.Stage("WC", workload.Map)
	if !ok {
		t.Fatal("map profile missing")
	}
	if len(mp.TaskTimes) != p.MapTasks() {
		t.Errorf("map profile has %d tasks, want %d", len(mp.TaskTimes), p.MapTasks())
	}
	if mp.Parallelism <= 0 {
		t.Error("no profiling parallelism recorded")
	}
	if _, ok := set.Stage("WC", workload.Reduce); !ok {
		t.Error("reduce profile missing")
	}
	if _, ok := set.Stage("nope", workload.Map); ok {
		t.Error("found a profile for an unknown job")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	set := &Set{
		Workflow: "test",
		Stages: map[string][]StageProfile{
			"wc": {sampleProfile()},
		},
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "task_times") {
		t.Error("JSON missing task_times field")
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", set, back)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMergeReplacesAndAppends(t *testing.T) {
	base := &Set{Stages: map[string][]StageProfile{
		"wc": {sampleProfile()},
	}}
	newer := sampleProfile()
	newer.TaskTimes = []time.Duration{42 * time.Second}
	other := &Set{Stages: map[string][]StageProfile{
		"wc": {newer, {Job: "wc", Stage: workload.Reduce, TaskTimes: []time.Duration{time.Second}}},
		"ts": {{Job: "ts", Stage: workload.Map, TaskTimes: []time.Duration{2 * time.Second}}},
	}}
	base.Merge(other)
	got, _ := base.Stage("wc", workload.Map)
	if got.Median() != 42*time.Second {
		t.Errorf("merge did not replace: median %v", got.Median())
	}
	if _, ok := base.Stage("wc", workload.Reduce); !ok {
		t.Error("merge did not append new stage")
	}
	if _, ok := base.Stage("ts", workload.Map); !ok {
		t.Error("merge did not add new job")
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var base Set
	base.Merge(&Set{Stages: map[string][]StageProfile{"x": {sampleProfile()}}})
	if _, ok := base.Stage("x", workload.Map); !ok {
		t.Error("merge into zero-value set failed")
	}
}
