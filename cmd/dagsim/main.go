// Command dagsim executes a named DAG workflow on the simulated cluster
// and prints the measured task execution plan — the ground-truth side of
// every experiment in this repository.
//
// Usage:
//
//	dagsim -workflow wc                 # 100 GB Word Count alone
//	dagsim -workflow wc+ts              # the paper's parallel micro DAG
//	dagsim -workflow q21 -scale 80      # TPC-H Q21 (9 jobs)
//	dagsim -workflow webanalytics       # the paper's Figure 1 DAG
//	dagsim -workflow wc -pernode 4      # cap parallelism at 4 tasks/node
//	dagsim -workflow wc+q5 -trace-out t.json  # Chrome trace for chrome://tracing
//	dagsim -workflow wc+ts -live-progress     # online remaining-time estimates
//	dagsim -workflow q21 -otlp-out o.json     # OTLP/JSON spans + metrics
//	dagsim -list                        # show every known workflow name
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cliobs"
	"boedag/internal/dag"
	"boedag/internal/experiments"
	"boedag/internal/progress"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/trace"
	"boedag/internal/units"
)

func main() {
	var (
		name      = flag.String("workflow", "wc+ts", "workflow name (see -list)")
		specFile  = flag.String("spec", "", "load the workflow from this JSON spec instead of -workflow")
		list      = flag.Bool("list", false, "list available workflow names")
		scale     = flag.Float64("scale", 80, "TPC-H scale factor (GB)")
		microGB   = flag.Float64("micro-gb", 100, "Word Count / TeraSort input size in GB")
		perNode   = flag.Int("pernode", 0, "cap tasks per node (0 = cluster slots)")
		seed      = flag.Int64("seed", 1, "skew RNG seed")
		tasks     = flag.Bool("tasks", false, "also print per-task wave timings")
		tasksCSV  = flag.String("tasks-csv", "", "write per-task records to this CSV file")
		stagesCSV = flag.String("stages-csv", "", "write per-stage records to this CSV file")
		jsonOut   = flag.String("json", "", "write the run summary to this JSON file")
	)
	var ob cliobs.Flags
	ob.RegisterLive(nil)
	flag.Parse()

	if *list {
		for _, n := range experiments.WorkflowNames() {
			fmt.Println(n)
		}
		return
	}

	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.TPCHScale = *scale
	cfg.MicroInput = units.Bytes(*microGB) * units.GB

	flow, err := loadFlow(*specFile, *name, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
	opt := simulator.Options{Seed: cfg.Seed}
	if *perNode > 0 {
		opt.SlotLimit = *perNode * cfg.Spec.Nodes
	}
	if opt.Observe, err = ob.Options(); err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
	// The live estimator re-runs Algorithm 1 from streamed events while the
	// simulation executes. It must be subscribed before Run: the simulator
	// snapshots Tracer.Enabled at startup.
	var liveDone chan struct{}
	if stream := ob.Stream(); stream != nil {
		in := &progress.Indicator{
			Estimator: statemodel.New(cfg.Spec,
				&statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead},
				statemodel.Options{JobSubmitOverhead: cfg.JobSubmitOverhead}),
			Flow: flow,
		}
		points := progress.Follow(stream, in, progress.LiveOptions{})
		liveDone = make(chan struct{})
		go func() {
			defer close(liveDone)
			for p := range points {
				if p.Err != nil {
					fmt.Fprintln(os.Stderr, "dagsim: live estimate:", p.Err)
					continue
				}
				fmt.Printf("live: t=%8.1fs  %5.1f%% done  ~%v remaining\n",
					p.Elapsed.Seconds(), p.PercentComplete,
					p.PredictedRemaining.Round(100*time.Millisecond))
			}
		}()
	}
	res, err := simulator.New(cfg.Spec, opt).Run(flow)
	// Close the stream (and wait out the printer) before the Gantt chart so
	// live lines never interleave with the post-run report.
	ob.CloseStream()
	if liveDone != nil {
		<-liveDone
		fmt.Println()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
	trace.Gantt(os.Stdout, res)
	if *tasks {
		fmt.Println()
		for _, s := range res.Stages {
			trace.TaskWaves(os.Stdout, res, s.Job, s.Stage)
		}
	}
	type export struct {
		path  string
		write func(*os.File) error
	}
	for _, e := range []export{
		{*tasksCSV, func(f *os.File) error { return trace.ExportTasksCSV(f, res) }},
		{*stagesCSV, func(f *os.File) error { return trace.ExportStagesCSV(f, res) }},
		{*jsonOut, func(f *os.File) error { return trace.ExportResultJSON(f, res) }},
	} {
		if e.path == "" {
			continue
		}
		f, err := os.Create(e.path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		if err := e.write(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", e.path)
	}
	if err := ob.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
}

// loadFlow builds the workflow from a JSON spec file when given, or from
// the named registry otherwise.
func loadFlow(specFile, name string, cfg experiments.Config) (*dag.Workflow, error) {
	if specFile == "" {
		return experiments.BuildNamed(name, cfg)
	}
	f, err := os.Open(specFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dag.LoadWorkflow(f)
}
