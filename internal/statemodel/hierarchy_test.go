package statemodel

import (
	"reflect"
	"strings"
	"testing"

	"boedag/internal/dag"
	"boedag/internal/sched"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// The estimator models hierarchical scheduling with the same pure
// allocator the simulator executes, so the contract splits in two: a
// hierarchy that declares nothing must leave the flat plan byte-identical,
// and one that declares quotas/limits must visibly shape the predicted
// parallelism.

func twoRoots() *dag.Workflow {
	a := workload.WordCount(10 * units.GB)
	a.Name = "A"
	b := workload.TeraSort(10 * units.GB)
	b.Name = "B"
	return &dag.Workflow{Name: "pair", Jobs: []dag.Job{
		{ID: "A", Profile: a},
		{ID: "B", Profile: b},
	}}
}

func TestEstimatorNeuteredHierarchyMatchesFlat(t *testing.T) {
	flow := twoRoots()
	flat := estimate(t, flow, Options{})

	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "qa", Weight: 1},
		{Name: "qb", Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	hier := estimate(t, flow, Options{
		Hierarchy: h,
		Queues:    map[string]string{"A": "qa", "B": "qb"},
	})
	if !reflect.DeepEqual(flat, hier) {
		t.Fatalf("neutered hierarchy changed the plan:\nflat %v\nhier %v",
			flat.Makespan, hier.Makespan)
	}
}

func TestEstimatorHierarchyLimitCapsParallelism(t *testing.T) {
	flow := twoRoots()
	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "capped", Limit: sched.QueueLimit{Slots: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := estimate(t, flow, Options{
		Hierarchy: h,
		Queues:    map[string]string{"A": "capped"},
	})
	for _, st := range plan.States {
		if d := st.Parallelism["A"]; d > 4 {
			t.Fatalf("state %d: A granted %d > limit 4", st.Seq, d)
		}
	}
	// The cap must cost wall-clock time relative to the flat plan.
	flat := estimate(t, flow, Options{})
	if plan.Makespan < flat.Makespan {
		t.Fatalf("capped plan (%v) faster than flat (%v)", plan.Makespan, flat.Makespan)
	}
}

func TestEstimatorHierarchyQuotaGuaranteesShare(t *testing.T) {
	flow := twoRoots()
	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "prod", Quota: sched.QueueLimit{Slots: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := estimate(t, flow, Options{
		Hierarchy: h,
		Queues:    map[string]string{"A": "prod"},
	})
	// While both jobs contend, A's guarantee must hold: it gets at least
	// its demand or its quota's worth before B shares the rest.
	for _, st := range plan.States {
		da, ok := st.Parallelism["A"]
		if !ok || len(st.Parallelism) < 2 {
			continue
		}
		if da < st.Parallelism["B"] {
			t.Fatalf("state %d: quota'd A (%d) below unguaranteed B (%d)",
				st.Seq, da, st.Parallelism["B"])
		}
	}
}

func TestEstimatorHierarchyStarvationDetected(t *testing.T) {
	flow := dag.Single(workload.WordCount(5 * units.GB))
	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "narrow", Limit: sched.QueueLimit{Slots: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(spec(), boeTimer(), Options{
		Hierarchy: h,
		Queues:    map[string]string{flow.Jobs[0].ID: "narrow"},
		Gangs:     map[string]int{flow.Jobs[0].ID: 5},
	}).Estimate(flow)
	if err == nil || !strings.Contains(err.Error(), "starved") {
		t.Fatalf("gang wider than its queue limit: err = %v, want starvation", err)
	}
}
