// Package cliobs wires the observability layer into command-line tools:
// one flag set covering event tracing, metrics export, and Go profiling,
// shared by dagsim and boepredict.
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof server
	"os"
	"runtime"
	"runtime/pprof"

	"boedag/internal/obs"
)

// Flags carries the observability command-line options.
type Flags struct {
	TraceOut   string // Chrome trace_event JSON output path
	MetricsOut string // metrics snapshot JSON output path
	Summary    bool   // print a plain-text event digest to stdout
	PprofAddr  string // serve net/http/pprof on this address
	CPUProfile string // write a CPU profile here
	MemProfile string // write a heap profile here

	recorder *obs.Recorder
	registry *obs.Registry
	cpuFile  *os.File
}

// Register installs the flags on fs (the default command-line set when
// nil).
func (f *Flags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON file (chrome://tracing)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a run-metrics JSON snapshot")
	fs.BoolVar(&f.Summary, "obs-summary", false, "print an event summary after the run")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file")
}

// Options starts any requested profiling and returns the obs.Options to
// hand to the simulator or estimator. The tracer and registry are only
// allocated when an output that needs them was requested, so plain runs
// keep the zero-cost disabled path.
func (f *Flags) Options() (obs.Options, error) {
	var o obs.Options
	if f.TraceOut != "" || f.Summary {
		f.recorder = obs.NewRecorder()
		o.Tracer = f.recorder
	}
	if f.MetricsOut != "" {
		f.registry = obs.NewRegistry()
		o.Metrics = f.registry
	}
	if f.PprofAddr != "" {
		ln := f.PprofAddr
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", ln)
	}
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return o, err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return o, err
		}
		f.cpuFile = cf
	}
	return o, nil
}

// Finish stops profiling and writes every requested artifact, printing
// the path of each file it creates.
func (f *Flags) Finish() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", f.CPUProfile)
	}
	if f.MemProfile != "" {
		mf, err := os.Create(f.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(mf)
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", f.MemProfile)
	}
	if f.recorder != nil && f.TraceOut != "" {
		if err := writeFile(f.TraceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, f.recorder.Events())
		}); err != nil {
			return err
		}
	}
	if f.registry != nil && f.MetricsOut != "" {
		if err := writeFile(f.MetricsOut, f.registry.WriteJSON); err != nil {
			return err
		}
	}
	if f.recorder != nil && f.Summary {
		fmt.Println()
		obs.WriteSummary(os.Stdout, f.recorder.Events())
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(w); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
