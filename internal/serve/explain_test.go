package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"boedag/internal/explain"
)

// TestExplainCoalescing: N identical concurrent /v1/explain requests run
// the explanation exactly once and share the same bytes.
func TestExplainCoalescing(t *testing.T) {
	const n = 16
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxConcurrent: n, QueueDepth: n})
	s.testHookEstimate = func() { <-release }

	body := readRequest(t, "explain_wc_ts")
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i], _, errs[i] = tryPost(ts.URL+"/v1/explain", body)
		}(i)
	}
	pollUntil(t, "all requests in the cache", func() bool {
		hits, misses := s.CacheStats()
		return hits+misses == n
	})
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d observed different bytes than request 0", i)
		}
	}
	if got := counter(t, s, "explains_computed"); got != 1 {
		t.Errorf("explanation ran %d times, want exactly 1", got)
	}
	if got := counter(t, s, "estimates_coalesced"); got != n-1 {
		t.Errorf("estimates_coalesced = %d, want %d", got, n-1)
	}
}

// TestExplainMatchesLibrary ties the wire bytes to the library: the
// served explanation must be byte-identical to a direct explain.Explain
// run of the same scenario (plus the response newline framing), and its
// critical path must telescope from 0 to the makespan on the wire.
func TestExplainMatchesLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	status, body, _ := post(t, ts.URL+"/v1/explain", readRequest(t, "explain_wc_ts"))
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}

	req, apiErr := DecodeEstimateRequest(bytes.NewReader(readRequest(t, "explain_wc_ts")))
	if apiErr != nil {
		t.Fatalf("decode: %v", apiErr)
	}
	flow, est, apiErr := s.scenario(req)
	if apiErr != nil {
		t.Fatalf("scenario: %v", apiErr)
	}
	e, err := explain.Explain(t.Context(), est, flow, explain.Options{Workers: 4})
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	want, err := marshalBody(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("served explanation diverges from the library:\ngot:\n%s\nwant:\n%s", body, want)
	}

	var got explain.Explanation
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got.CriticalPath) == 0 || len(got.Sensitivity) != 4 {
		t.Fatalf("explanation shape: %d intervals, %d sensitivity rows",
			len(got.CriticalPath), len(got.Sensitivity))
	}
	if got.CriticalPath[0].StartS != 0 {
		t.Errorf("critical path starts at %v, want 0", got.CriticalPath[0].StartS)
	}
	if last := got.CriticalPath[len(got.CriticalPath)-1]; last.EndS != got.MakespanS {
		t.Errorf("critical path ends at %v, want makespan %v", last.EndS, got.MakespanS)
	}
	for i := 1; i < len(got.CriticalPath); i++ {
		if got.CriticalPath[i].StartS != got.CriticalPath[i-1].EndS {
			t.Errorf("wire gap before interval %d", i)
		}
	}
}

// TestExplainReusesPlanCache: explaining two scenarios that share θ
// perturbations only re-runs what is new, and a repeat explanation of
// the first scenario (after the response cache is bypassed with a
// distinct-but-equivalent request) hits the plan cache.
func TestExplainPlanCacheAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	body := readRequest(t, "explain_wc_ts")
	if status, b, _ := post(t, ts.URL+"/v1/explain", body); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, b)
	}
	hits0, misses0 := s.plans.Stats()
	if misses0 == 0 {
		t.Fatal("first explanation did not populate the plan cache")
	}
	// The same scenario again: the response cache answers, the plan cache
	// sees nothing new.
	if status, b, _ := post(t, ts.URL+"/v1/explain", body); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, b)
	}
	if hits, misses := s.plans.Stats(); hits != hits0 || misses != misses0 {
		t.Errorf("repeat explanation touched the plan cache: %d/%d -> %d/%d",
			hits0, misses0, hits, misses)
	}
}
