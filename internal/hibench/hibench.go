// Package hibench builds the HiBench-style analytics DAG workflows of the
// paper's evaluation: KMeans (machine learning) and PageRank (graph
// analysis), both sized after HiBench's "huge" data sets. Each is a chain
// of MapReduce jobs — one per iteration — matching how HiBench's Mahout
// KMeans and Pegasus-style PageRank compile onto MapReduce.
package hibench

import (
	"fmt"

	"boedag/internal/dag"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// KMeansConfig sizes a KMeans workflow.
type KMeansConfig struct {
	// InputBytes is the sample data volume (HiBench huge ≈ 20 GB).
	InputBytes units.Bytes
	// Iterations is the number of Lloyd iterations before the final
	// classification pass.
	Iterations int
}

// DefaultKMeans matches HiBench's huge profile: 20 GB of samples, five
// iterations.
func DefaultKMeans() KMeansConfig {
	return KMeansConfig{InputBytes: 20 * units.GB, Iterations: 5}
}

// KMeans builds the workflow: Iterations chained jobs that each scan the
// full sample set, compute distances to every centroid (CPU-heavy map),
// and emit per-cluster partial sums (tiny shuffle; combiner-collapsed),
// followed by a classification job that writes the labelled samples.
func KMeans(cfg KMeansConfig) *dag.Workflow {
	if cfg.InputBytes <= 0 {
		cfg.InputBytes = DefaultKMeans().InputBytes
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = DefaultKMeans().Iterations
	}
	w := &dag.Workflow{Name: "KM"}
	prev := ""
	for i := 1; i <= cfg.Iterations; i++ {
		id := fmt.Sprintf("iter%d", i)
		j := dag.Job{ID: id, Profile: kmeansIteration(cfg.InputBytes, i)}
		if prev != "" {
			j.Deps = []string{prev}
		}
		w.Jobs = append(w.Jobs, j)
		prev = id
	}
	w.Jobs = append(w.Jobs, dag.Job{
		ID:      "classify",
		Deps:    []string{prev},
		Profile: kmeansClassify(cfg.InputBytes),
	})
	return w
}

// kmeansIteration: distance computation dominates; the combiner collapses
// the map output to per-cluster sums, so the shuffle is negligible.
func kmeansIteration(input units.Bytes, iter int) workload.JobProfile {
	return workload.JobProfile{
		Name:              fmt.Sprintf("KM-iter%d", iter),
		InputBytes:        input,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       8,
		MapSelectivity:    0.001, // per-cluster partial sums only
		ReduceSelectivity: 1.0,
		MapCPUCost:        6.0, // k distance computations per sample
		ReduceCPUCost:     2.0,
		Compression:       workload.Compression{Enabled: true, Ratio: 0.5, CPUOverhead: 0.2},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.05,
	}
}

// kmeansClassify: one more scan that labels each sample; map-only with
// output about the input's size.
func kmeansClassify(input units.Bytes) workload.JobProfile {
	return workload.JobProfile{
		Name:            "KM-classify",
		InputBytes:      input,
		SplitBytes:      128 * units.MB,
		ReduceTasks:     0,
		MapSelectivity:  1.02, // sample + label
		MapCPUCost:      3.0,
		Replicas:        3,
		SortBufferBytes: 100 * units.MB,
		SkewCV:          0.05,
	}
}

// PageRankConfig sizes a PageRank workflow.
type PageRankConfig struct {
	// EdgeBytes is the edge-list volume (HiBench huge ≈ 5 GB).
	EdgeBytes units.Bytes
	// Iterations is the number of rank-propagation rounds.
	Iterations int
}

// DefaultPageRank matches HiBench's huge profile: 5 GB of edges, three
// iterations.
func DefaultPageRank() PageRankConfig {
	return PageRankConfig{EdgeBytes: 5 * units.GB, Iterations: 3}
}

// PageRank builds the workflow: a rank-initialization job followed by
// Iterations chained propagate-and-aggregate jobs. Each iteration joins
// ranks with the adjacency list and shuffles a full copy of the edge
// contributions — shuffle-heavy with near-unit selectivity, the opposite
// profile of KMeans.
func PageRank(cfg PageRankConfig) *dag.Workflow {
	if cfg.EdgeBytes <= 0 {
		cfg.EdgeBytes = DefaultPageRank().EdgeBytes
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = DefaultPageRank().Iterations
	}
	w := &dag.Workflow{Name: "PR"}
	w.Jobs = append(w.Jobs, dag.Job{ID: "init", Profile: pageRankInit(cfg.EdgeBytes)})
	prev := "init"
	for i := 1; i <= cfg.Iterations; i++ {
		id := fmt.Sprintf("iter%d", i)
		w.Jobs = append(w.Jobs, dag.Job{
			ID:      id,
			Deps:    []string{prev},
			Profile: pageRankIteration(cfg.EdgeBytes, i),
		})
		prev = id
	}
	return w
}

// pageRankInit parses the raw edge list into (node, ranks+adjacency)
// records.
func pageRankInit(edges units.Bytes) workload.JobProfile {
	return workload.JobProfile{
		Name:              "PR-init",
		InputBytes:        edges,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       33,
		MapSelectivity:    1.0,
		ReduceSelectivity: 1.1, // adjacency + initial rank
		MapCPUCost:        1.5,
		ReduceCPUCost:     1.2,
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.25, // power-law vertex degrees
	}
}

// pageRankIteration propagates contributions along every edge.
func pageRankIteration(edges units.Bytes, iter int) workload.JobProfile {
	return workload.JobProfile{
		Name:              fmt.Sprintf("PR-iter%d", iter),
		InputBytes:        edges.Scale(1.1),
		SplitBytes:        128 * units.MB,
		ReduceTasks:       33,
		MapSelectivity:    1.0, // one contribution per edge
		ReduceSelectivity: 1.0,
		MapCPUCost:        1.3,
		ReduceCPUCost:     1.5,
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.25,
	}
}
