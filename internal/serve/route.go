package serve

import (
	"bytes"

	"boedag/internal/evalpool"
)

// RouteKey maps a request (endpoint path + body) to its canonical shard
// key — the same evalpool signature the response cache uses — so a fleet
// of replicas can route every scenario to the node that owns its cache
// line. The second result is false when the request does not shard: a
// body that fails validation (any node answers the 4xx identically), an
// unkeyable scenario, or a path with no per-scenario state (/v1/batch
// fans out internally; health and metadata endpoints are node-local).
//
// Keys are exactly the cache keys: an /v1/estimate and an /v1/explain of
// the same scenario land on the same owner, so the explain run reuses the
// plans its estimate already computed.
func (s *Server) RouteKey(path string, body []byte) (string, bool) {
	switch path {
	case "/v1/estimate", "/v1/explain":
		req, apiErr := DecodeEstimateRequest(bytes.NewReader(body))
		if apiErr != nil {
			return "", false
		}
		flow, est, apiErr := s.scenario(req)
		if apiErr != nil {
			return "", false
		}
		return evalpool.PlanKey(est, flow)
	case "/v1/schedule":
		if _, apiErr := DecodeScheduleRequest(bytes.NewReader(body)); apiErr != nil {
			return "", false
		}
		// Schedule replays are pure (no cache), so any consistent key
		// works; hashing the raw body keeps identical streams together.
		h := evalpool.NewHasher()
		h.Str("schedule")
		h.Str(string(body))
		return h.Key(), true
	default:
		return "", false
	}
}
