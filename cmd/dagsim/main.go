// Command dagsim executes a named DAG workflow on the simulated cluster
// and prints the measured task execution plan — the ground-truth side of
// every experiment in this repository.
//
// Usage:
//
//	dagsim -workflow wc                 # 100 GB Word Count alone
//	dagsim -workflow wc+ts              # the paper's parallel micro DAG
//	dagsim -workflow q21 -scale 80      # TPC-H Q21 (9 jobs)
//	dagsim -workflow webanalytics       # the paper's Figure 1 DAG
//	dagsim -workflow wc -pernode 4      # cap parallelism at 4 tasks/node
//	dagsim -workflow wc,ts,q5 -workers 3  # simulate several workflows concurrently
//	dagsim -workflow wc+q5 -trace-out t.json  # Chrome trace for chrome://tracing
//	dagsim -workflow wc+ts -live-progress     # online remaining-time estimates
//	dagsim -workflow q21 -otlp-out o.json     # OTLP/JSON spans + metrics
//	dagsim -workflow wc+ts -explain           # explain the model's prediction
//	dagsim -workflow synth-l5-w8-f2-s7  # seeded synthetic layered DAG (40 jobs)
//	dagsim -workflow wc+ts -policy fifo # schedule containers FIFO instead of DRF
//	dagsim -sched-study -seed 7         # policy-vs-policy arrival-stream comparison
//	dagsim -list                        # show every known workflow name
//
// The synthetic family scales to estimator stress tests: synth-1k and
// synth-10k are the canonical 1 000- and 10 000-job points (simulating
// them takes correspondingly long; the incremental estimator handles
// them in seconds — see BenchmarkEstimate10kJobs).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cliobs"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/evalpool"
	"boedag/internal/experiments"
	"boedag/internal/explain"
	"boedag/internal/progress"
	"boedag/internal/sched"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/trace"
	"boedag/internal/units"
)

func main() {
	var (
		name      = flag.String("workflow", "wc+ts", "workflow name, or comma-separated names to run concurrently (see -list)")
		specFile  = flag.String("spec", "", "load the workflow from this JSON spec instead of -workflow")
		list      = flag.Bool("list", false, "list available workflow names")
		scale     = flag.Float64("scale", 80, "TPC-H scale factor (GB)")
		microGB   = flag.Float64("micro-gb", 100, "Word Count / TeraSort input size in GB")
		perNode   = flag.Int("pernode", 0, "cap tasks per node (0 = cluster slots)")
		seed      = flag.Int64("seed", 1, "skew RNG seed")
		tasks     = flag.Bool("tasks", false, "also print per-task wave timings")
		tasksCSV  = flag.String("tasks-csv", "", "write per-task records to this CSV file")
		stagesCSV = flag.String("stages-csv", "", "write per-stage records to this CSV file")
		jsonOut   = flag.String("json", "", "write the run summary to this JSON file")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations for a multi-workflow run (1 = serial)")
		clusterIn = flag.String("cluster", "", "simulate this cluster spec JSON (e.g. from `calibrate -spec-out`) instead of the paper cluster")
		policy    = flag.String("policy", "drf", "container scheduling policy: drf, fifo, fair, or spjf")
		study     = flag.Bool("sched-study", false, "replay the seeded arrival scenarios under every policy and print the comparison table")
	)
	var ob cliobs.Flags
	ob.RegisterLive(nil)
	ob.RegisterExplain(nil)
	flag.Parse()

	if *list {
		for _, n := range experiments.WorkflowNames() {
			fmt.Println(n)
		}
		return
	}

	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.TPCHScale = *scale
	cfg.MicroInput = units.Bytes(*microGB) * units.GB
	if *clusterIn != "" {
		spec, err := cluster.ReadSpecFile(*clusterIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		cfg.Spec = spec
	}

	// -sched-study is the estimator-in-the-loop policy comparison: the
	// registry workflows become a seeded arrival stream, replayed under
	// every policy (FIFO/DRF/Fair vs the prediction-guided pair).
	if *study {
		rows, err := experiments.SchedPolicyStudy(cfg, cfg.Seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		experiments.RenderSchedPolicy(os.Stdout, rows)
		return
	}

	opt := simulator.Options{Seed: cfg.Seed}
	if pol, err := sched.ParsePolicy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	} else {
		opt.Policy = pol
	}
	if *perNode > 0 {
		opt.SlotLimit = *perNode * cfg.Spec.Nodes
	}
	var err error
	if opt.Observe, err = ob.Options(); err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}

	// Comma-separated names run every workflow concurrently through the
	// evaluation pool, then print the reports sequentially in input order.
	if names := strings.Split(*name, ","); *specFile == "" && len(names) > 1 {
		if *tasksCSV != "" || *stagesCSV != "" || *jsonOut != "" {
			fmt.Fprintln(os.Stderr, "dagsim: CSV/JSON exports support a single workflow")
			os.Exit(1)
		}
		if ob.Stream() != nil {
			fmt.Fprintln(os.Stderr, "dagsim: -live-progress supports a single workflow")
			os.Exit(1)
		}
		if ob.ExplainRequested() {
			fmt.Fprintln(os.Stderr, "dagsim: -explain supports a single workflow")
			os.Exit(1)
		}
		if err := runMulti(names, cfg, opt, *workers, *tasks, &ob); err != nil {
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		return
	}

	flow, err := loadFlow(*specFile, *name, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
	// The live estimator re-runs Algorithm 1 from streamed events while the
	// simulation executes. It must be subscribed before Run: the simulator
	// snapshots Tracer.Enabled at startup.
	var liveDone chan struct{}
	if stream := ob.Stream(); stream != nil {
		in := &progress.Indicator{
			Estimator: statemodel.New(cfg.Spec,
				&statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead},
				statemodel.Options{JobSubmitOverhead: cfg.JobSubmitOverhead}),
			Flow: flow,
		}
		points := progress.Follow(stream, in, progress.LiveOptions{})
		liveDone = make(chan struct{})
		go func() {
			defer close(liveDone)
			for p := range points {
				if p.Err != nil {
					fmt.Fprintln(os.Stderr, "dagsim: live estimate:", p.Err)
					continue
				}
				fmt.Printf("live: t=%8.1fs  %5.1f%% done  ~%v remaining\n",
					p.Elapsed.Seconds(), p.PercentComplete,
					p.PredictedRemaining.Round(100*time.Millisecond))
			}
		}()
	}
	res, err := simulator.New(cfg.Spec, opt).Run(flow)
	// Close the stream (and wait out the printer) before the Gantt chart so
	// live lines never interleave with the post-run report.
	ob.CloseStream()
	if liveDone != nil {
		<-liveDone
		fmt.Println()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
	trace.Gantt(os.Stdout, res)
	if *tasks {
		fmt.Println()
		for _, s := range res.Stages {
			trace.TaskWaves(os.Stdout, res, s.Job, s.Stage)
		}
	}
	type export struct {
		path  string
		write func(*os.File) error
	}
	for _, e := range []export{
		{*tasksCSV, func(f *os.File) error { return trace.ExportTasksCSV(f, res) }},
		{*stagesCSV, func(f *os.File) error { return trace.ExportStagesCSV(f, res) }},
		{*jsonOut, func(f *os.File) error { return trace.ExportResultJSON(f, res) }},
	} {
		if e.path == "" {
			continue
		}
		f, err := os.Create(e.path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		if err := e.write(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", e.path)
	}
	// -explain runs the paper's estimator for the measured scenario and
	// explains its prediction: critical path, per-resource bottleneck
	// attribution, and θ-sensitivity, next to the simulated ground truth.
	if ob.ExplainRequested() {
		est := statemodel.New(cfg.Spec,
			&statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead},
			statemodel.Options{JobSubmitOverhead: cfg.JobSubmitOverhead})
		expl, err := explain.Explain(context.Background(), est, flow,
			explain.Options{Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
		if err := ob.WriteExplanation(expl); err != nil {
			fmt.Fprintln(os.Stderr, "dagsim:", err)
			os.Exit(1)
		}
	}
	if err := ob.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "dagsim:", err)
		os.Exit(1)
	}
}

// runMulti simulates every named workflow through the evaluation pool —
// each with its own simulator instance, all feeding the shared
// observability sinks — and prints the Gantt reports sequentially in
// input order, so the output is identical at any worker count.
func runMulti(names []string, cfg experiments.Config, opt simulator.Options, workers int, tasks bool, ob *cliobs.Flags) error {
	flows := make([]*dag.Workflow, len(names))
	for i, n := range names {
		flow, err := experiments.BuildNamed(strings.TrimSpace(n), cfg)
		if err != nil {
			return err
		}
		flows[i] = flow
	}
	jobs := make([]func() (*simulator.Result, error), len(flows))
	for i, flow := range flows {
		flow := flow
		jobs[i] = func() (*simulator.Result, error) {
			return simulator.New(cfg.Spec, opt).Run(flow)
		}
	}
	if workers < 1 {
		workers = 1
	}
	results, err := evalpool.RunObserved(context.Background(), jobs, evalpool.Options{
		Workers: workers,
		Label:   "dagsim",
		Observe: opt.Observe,
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", flows[i].Name)
		trace.Gantt(os.Stdout, res)
		if tasks {
			fmt.Println()
			for _, s := range res.Stages {
				trace.TaskWaves(os.Stdout, res, s.Job, s.Stage)
			}
		}
	}
	return ob.Finish()
}

// loadFlow builds the workflow from a JSON spec file when given, or from
// the named registry otherwise.
func loadFlow(specFile, name string, cfg experiments.Config) (*dag.Workflow, error) {
	if specFile == "" {
		return experiments.BuildNamed(name, cfg)
	}
	f, err := os.Open(specFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dag.LoadWorkflow(f)
}
