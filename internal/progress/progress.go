// Package progress builds an online progress indicator on top of the
// state-based cost model — the ParaTimer-style application the paper's
// introduction lists ("progress estimation") and its related-work section
// contrasts against. Given a running workflow's observed state (which
// tasks finished, which are in flight), it re-estimates the remaining
// execution time with Algorithm 1 starting from that state.
//
// Against the simulator it also provides the evaluation harness: snapshot
// a simulated run at chosen instants and compare the predicted remaining
// time with the true remaining time.
package progress

import (
	"fmt"
	"sort"
	"time"

	"boedag/internal/dag"
	"boedag/internal/metrics"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/workload"
)

// SnapshotAt reconstructs the workflow's observed state at instant t of a
// simulation run: finished / in-flight task counts per job and each job's
// phase. It is what a progress indicator would read from the resource
// manager's counters on a live cluster.
func SnapshotAt(res *simulator.Result, t time.Duration) statemodel.Snapshot {
	snap := statemodel.Snapshot{
		Elapsed: t,
		Jobs:    make(map[string]statemodel.JobSnapshot),
	}
	// First pass: which jobs have entered their reduce stage by t.
	perJob := make(map[string]*statemodel.JobSnapshot)
	redSeen := make(map[string]bool)
	for _, task := range res.Tasks {
		if perJob[task.Job] == nil {
			perJob[task.Job] = &statemodel.JobSnapshot{}
		}
		if task.Stage == workload.Reduce && task.Start <= t {
			redSeen[task.Job] = true
		}
	}

	// Second pass with the phase known: count done/running of the current
	// stage.
	for job := range perJob {
		stage := workload.Map
		if redSeen[job] {
			stage = workload.Reduce
		}
		done, running, future := 0, 0, 0
		var runProg float64
		for _, task := range res.Tasks {
			if task.Job != job || task.Stage != stage {
				continue
			}
			switch {
			case task.End <= t:
				done++
			case task.Start <= t:
				running++
				// The per-task progress counters a resource manager exposes.
				runProg += float64(t-task.Start) / float64(task.End-task.Start)
			default:
				future++
			}
		}
		js := perJob[job]
		js.TasksDone = done
		js.TasksRunning = running
		if running > 0 {
			js.RunningProgress = runProg / float64(running)
		}
		switch {
		case stage == workload.Reduce && future == 0 && running == 0:
			js.Phase = statemodel.JobFinished
		case stage == workload.Reduce:
			js.Phase = statemodel.JobReducing
		case done == 0 && running == 0:
			js.Phase = statemodel.JobPending
		default:
			js.Phase = statemodel.JobMapping
		}
		// A map-only job is finished when its maps are.
		if stage == workload.Map && future == 0 && running == 0 && done > 0 {
			if red := res.StageOf(job, workload.Reduce); red == nil {
				js.Phase = statemodel.JobFinished
			}
		}
		snap.Jobs[job] = *js
	}
	return snap
}

// Indicator estimates remaining time for a workflow from snapshots. It
// keeps a private estimator scratch across ticks: consecutive snapshots
// of the same run differ in a handful of jobs, so the warm dist cache
// re-solves only the states the snapshot delta touched.
type Indicator struct {
	Estimator *statemodel.Estimator
	Flow      *dag.Workflow

	scratch *statemodel.Scratch
}

// Remaining predicts the time left from the snapshot.
func (in *Indicator) Remaining(snap statemodel.Snapshot) (time.Duration, error) {
	if in.scratch == nil {
		in.scratch = statemodel.NewScratch()
	}
	left, _, err := in.Estimator.EstimateRemainingWith(in.scratch, in.Flow, snap)
	return left, err
}

// Point is one sample of a progress curve.
type Point struct {
	// At is the snapshot instant.
	At time.Duration
	// PercentComplete is measured task-completion progress at the instant.
	PercentComplete float64
	// PredictedRemaining and ActualRemaining compare the indicator against
	// the simulated truth.
	PredictedRemaining time.Duration
	ActualRemaining    time.Duration
}

// Accuracy is the paper's metric applied to the remaining time.
func (p Point) Accuracy() float64 {
	return metrics.Accuracy(p.PredictedRemaining, p.ActualRemaining)
}

// Curve snapshots the simulated run at the given fractions of its
// makespan and evaluates the indicator at each.
func Curve(in *Indicator, res *simulator.Result, fractions []float64) ([]Point, error) {
	var out []Point
	total := len(res.Tasks)
	if total == 0 {
		return nil, fmt.Errorf("progress: result has no tasks")
	}
	sort.Float64s(append([]float64(nil), fractions...))
	for _, f := range fractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("progress: fraction %v outside [0,1)", f)
		}
		at := time.Duration(f * float64(res.Makespan))
		snap := SnapshotAt(res, at)
		pred, err := in.Remaining(snap)
		if err != nil {
			return nil, err
		}
		done := 0
		for _, task := range res.Tasks {
			if task.End <= at {
				done++
			}
		}
		out = append(out, Point{
			At:                 at,
			PercentComplete:    100 * float64(done) / float64(total),
			PredictedRemaining: pred,
			ActualRemaining:    res.Makespan - at,
		})
	}
	return out, nil
}
