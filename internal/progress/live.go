package progress

import (
	"time"

	"boedag/internal/obs"
	"boedag/internal/statemodel"
	"boedag/internal/workload"
)

// LiveOptions tunes the online tracker.
type LiveOptions struct {
	// MinInterval throttles task-finish re-estimates in model time:
	// structural events (stage starts/finishes, state transitions) always
	// re-estimate, individual task finishes only after this much model time
	// has passed since the last estimate. ≤ 0 means the 5 s default.
	MinInterval time.Duration
	// Buffer is the subscriber channel capacity Follow uses. Size it to
	// the expected event count of the run to avoid drops (a dropped event
	// skews the live task counts until the next stage boundary resets
	// them). ≤ 0 means 65536.
	Buffer int
}

func (o LiveOptions) minInterval() float64 {
	if o.MinInterval <= 0 {
		return 5.0
	}
	return o.MinInterval.Seconds()
}

func (o LiveOptions) buffer() int {
	if o.Buffer <= 0 {
		return 1 << 16
	}
	return o.Buffer
}

// LivePoint is one online progress sample: at model instant Elapsed the
// indicator predicted PredictedRemaining more time. Unlike Point there is
// no ActualRemaining — the run is still in flight.
type LivePoint struct {
	Elapsed            time.Duration
	PredictedRemaining time.Duration
	// PercentComplete is measured task completion (finished / total tasks).
	PercentComplete float64
	// Err reports an estimation failure for this sample; the fold state
	// itself stays consistent and later samples may succeed.
	Err error
}

// liveJob is the fold state for one job: its phase plus done/running
// counts of the current stage, exactly the JobSnapshot fields.
type liveJob struct {
	phase     statemodel.JobPhase
	stage     workload.Stage
	done      int
	running   int
	hasReduce bool
}

// Tracker folds the simulator's observation events into a live
// statemodel.Snapshot and re-runs Algorithm 1 from that state — the
// online half of the progress indicator. Feed it events in emission
// order via Observe; it is a synchronous state machine (deterministic,
// no goroutines) so replayed event logs estimate identically to live
// streams. Use Follow for the streaming wrapper.
//
// The tracker must only see events from the real execution: estimator
// tracers re-emit predicted EvStageFinish events that would corrupt the
// fold, so the Indicator's estimator must not share the observed stream.
type Tracker struct {
	in      *Indicator
	opt     LiveOptions
	jobs    map[string]*liveJob
	total   int // tasks across all jobs and stages
	done    int // tasks finished so far
	elapsed float64
	lastEst float64
}

// NewTracker builds a tracker for the indicator's workflow. All jobs
// start pending.
func NewTracker(in *Indicator, opt LiveOptions) *Tracker {
	t := &Tracker{in: in, opt: opt, jobs: make(map[string]*liveJob, len(in.Flow.Jobs))}
	for _, j := range in.Flow.Jobs {
		t.jobs[j.ID] = &liveJob{hasReduce: j.Profile.ReduceTasks > 0}
		t.total += j.Profile.Tasks(workload.Map) + j.Profile.Tasks(workload.Reduce)
	}
	return t
}

// Observe folds one event. When the event warrants a re-estimate it
// returns the fresh sample and true; bookkeeping-only events return
// false. Elapsed advances monotonically to the latest instant any event
// has touched.
func (t *Tracker) Observe(ev obs.Event) (LivePoint, bool) {
	if end := ev.Time + ev.Dur; end > t.elapsed {
		t.elapsed = end
	}
	j := t.jobs[ev.Job]
	trigger := false
	switch ev.Type {
	case obs.EvStageStart:
		if j == nil {
			return LivePoint{}, false
		}
		j.done, j.running = 0, 0
		if ev.Stage == workload.Reduce.String() {
			j.stage, j.phase = workload.Reduce, statemodel.JobReducing
		} else {
			j.stage, j.phase = workload.Map, statemodel.JobMapping
		}
		trigger = true
	case obs.EvTaskStart:
		if j == nil {
			return LivePoint{}, false
		}
		j.running++
	case obs.EvTaskFinish:
		if j == nil {
			return LivePoint{}, false
		}
		if j.running > 0 {
			j.running--
		}
		j.done++
		t.done++
		trigger = t.elapsed-t.lastEst >= t.opt.minInterval()
	case obs.EvStageFinish:
		if j == nil {
			return LivePoint{}, false
		}
		// The map-stage finish of a two-stage job keeps the job in
		// JobMapping with every map done — the same convention SnapshotAt
		// uses; the reduce EvStageStart moves it on.
		if j.stage == workload.Reduce || !j.hasReduce {
			j.phase = statemodel.JobFinished
		}
		trigger = true
	case obs.EvStateOpen:
		trigger = true
	default:
		return LivePoint{}, false
	}
	if !trigger {
		return LivePoint{}, false
	}
	return t.estimate(), true
}

// Snapshot exports the current fold state in the estimator's input form.
func (t *Tracker) Snapshot() statemodel.Snapshot {
	snap := statemodel.Snapshot{
		Elapsed: seconds(t.elapsed),
		Jobs:    make(map[string]statemodel.JobSnapshot, len(t.jobs)),
	}
	for id, j := range t.jobs {
		snap.Jobs[id] = statemodel.JobSnapshot{
			Phase:        j.phase,
			TasksDone:    j.done,
			TasksRunning: j.running,
			// RunningProgress stays zero: the event stream carries task
			// boundaries, not per-task completion fractions, so the
			// estimator's half-done default applies.
		}
	}
	return snap
}

// estimate runs Algorithm 1 from the current fold state.
func (t *Tracker) estimate() LivePoint {
	t.lastEst = t.elapsed
	p := LivePoint{Elapsed: seconds(t.elapsed)}
	if t.total > 0 {
		p.PercentComplete = 100 * float64(t.done) / float64(t.total)
	}
	p.PredictedRemaining, p.Err = t.in.Remaining(t.Snapshot())
	return p
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Follow subscribes to the stream and runs a Tracker over it in a
// goroutine, delivering one LivePoint per re-estimate. The returned
// channel closes once the stream does (after its buffered tail is
// drained), so `for p := range Follow(...)` terminates when the observed
// run finishes and the producer closes the stream.
//
// The subscriber uses the DropNewest policy: under overload the early
// structural events survive and the fold degrades by undercounting
// recent finishes rather than by losing stage boundaries.
func Follow(stream *obs.Stream, in *Indicator, opt LiveOptions) <-chan LivePoint {
	sub := stream.SubscribeWith(opt.buffer(), obs.DropNewest)
	out := make(chan LivePoint, 16)
	tr := NewTracker(in, opt)
	go func() {
		defer close(out)
		for ev := range sub.Events() {
			if p, ok := tr.Observe(ev); ok {
				out <- p
			}
		}
	}()
	return out
}
