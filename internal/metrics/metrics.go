// Package metrics provides the evaluation arithmetic used throughout the
// paper's §V: estimation accuracy, error factors between models, and
// simple aggregations over experiment rows.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Accuracy is the paper's metric: 1 − |estimated − actual| / actual,
// clamped to [0, 1]. The clamp engages once the estimate reaches twice
// the truth (or overshoots by more in either direction past 2×actual);
// an estimate of half the truth scores 0.5, not 0, because relative
// error is measured against the actual value. Degenerate inputs are
// defined explicitly: a non-positive actual scores 1 when the estimate
// is also non-positive (both "instant") and 0 otherwise, so negative
// durations never produce accuracies outside [0, 1].
func Accuracy(estimated, actual time.Duration) float64 {
	a := actual.Seconds()
	if a <= 0 {
		if estimated <= 0 {
			return 1
		}
		return 0
	}
	acc := 1 - math.Abs(estimated.Seconds()-a)/a
	if acc < 0 {
		return 0
	}
	return acc
}

// Error is the complementary relative error |est − actual| / actual.
// Unlike Accuracy it is unclamped, so gross mispredictions (estimate
// beyond 2× actual) remain comparable between models instead of all
// collapsing to the same score. For a non-positive actual it returns 0
// when the estimate is also non-positive and +Inf otherwise.
func Error(estimated, actual time.Duration) float64 {
	a := actual.Seconds()
	if a <= 0 {
		if estimated <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimated.Seconds()-a) / a
}

// ImprovementFactor reports how many times smaller the candidate's error
// is than the baseline's — the paper's "outperforms by a factor of N".
// A zero candidate error with a non-zero baseline error returns +Inf.
func ImprovementFactor(baselineErr, candidateErr float64) float64 {
	if candidateErr == 0 {
		if baselineErr == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return baselineErr / candidateErr
}

// Mean returns the arithmetic mean of xs (zero for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest value (zero for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (zero for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (zero for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// StdDev returns the sample standard deviation (zero for fewer than two
// values).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}
