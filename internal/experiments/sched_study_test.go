package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// The study's acceptance bar (ISSUE 9): at least one prediction-guided
// policy must beat BOTH classic baselines (FIFO and DRF) on p95 slowdown
// AND SLO-miss rate, aggregated over the flat arrival scenarios.

func schedRows(t *testing.T) []StreamPolicyRow {
	t.Helper()
	rows, err := SchedPolicyStudy(Scaled(16), 7)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// aggregate averages a metric per policy over the flat (non-hierarchy)
// scenarios.
func aggregate(rows []StreamPolicyRow, metric func(StreamPolicyRow) float64) map[string]float64 {
	sum, n := map[string]float64{}, map[string]int{}
	for _, r := range rows {
		if r.Scenario == "multitenant" {
			continue
		}
		sum[r.Policy] += metric(r)
		n[r.Policy]++
	}
	for k := range sum {
		sum[k] /= float64(n[k])
	}
	return sum
}

func TestSchedPolicyStudyPredictiveBeatsBaselines(t *testing.T) {
	rows := schedRows(t)
	p95 := aggregate(rows, func(r StreamPolicyRow) float64 { return r.P95Slowdown })
	miss := aggregate(rows, func(r StreamPolicyRow) float64 { return r.SLOMissRate })

	winner := "spjf+slo"
	for _, base := range []string{"fifo", "drf"} {
		if !(p95[winner] < p95[base]) {
			t.Errorf("p95 slowdown: %s (%.2f) does not beat %s (%.2f)",
				winner, p95[winner], base, p95[base])
		}
		if !(miss[winner] < miss[base]) {
			t.Errorf("SLO-miss rate: %s (%.3f) does not beat %s (%.3f)",
				winner, miss[winner], base, miss[base])
		}
	}
	if t.Failed() {
		t.Logf("aggregate p95 slowdown: %v", p95)
		t.Logf("aggregate SLO-miss rate: %v", miss)
	}
}

func TestSchedPolicyStudyShape(t *testing.T) {
	rows := schedRows(t)
	want := 4 * len(SchedPolicies())
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Makespan <= 0 {
			t.Errorf("%s/%s: non-positive makespan %v", r.Scenario, r.Policy, r.Makespan)
		}
		if r.P95Slowdown < 1 && r.Admitted > 0 {
			t.Errorf("%s/%s: p95 slowdown %.2f < 1", r.Scenario, r.Policy, r.P95Slowdown)
		}
		// Flat share-based policies reclaim containers as fair shares
		// shift, but FIFO grants never shrink.
		if r.Policy == "fifo" && r.Scenario != "multitenant" && r.Preemptions != 0 {
			t.Errorf("%s/%s: FIFO reclaimed %d containers", r.Scenario, r.Policy, r.Preemptions)
		}
		if r.Policy != "spjf+slo" && r.Rejected != 0 {
			t.Errorf("%s/%s: rejected %d without admission control", r.Scenario, r.Policy, r.Rejected)
		}
	}
}

func TestSchedPolicyStudyDeterministic(t *testing.T) {
	a := schedRows(t)
	b := schedRows(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, seed) produced different study rows")
	}
}

func TestArrivalScenariosSeeded(t *testing.T) {
	cfg := Scaled(16)
	a, err := ArrivalScenarios(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ArrivalScenarios(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a[0].Jobs, b[0].Jobs) {
		t.Fatal("different seeds produced identical arrival streams")
	}
	for _, sc := range a {
		if len(sc.Jobs) == 0 {
			t.Fatalf("scenario %s has no jobs", sc.Name)
		}
		seen := map[string]bool{}
		last := 0.0
		for _, j := range sc.Jobs {
			if seen[j.ID] {
				t.Fatalf("%s: duplicate job ID %s", sc.Name, j.ID)
			}
			seen[j.ID] = true
			if j.Submit < last {
				t.Fatalf("%s: submits out of order (%f after %f)", sc.Name, j.Submit, last)
			}
			last = j.Submit
			if j.Work <= 0 || j.MaxParallelism < 1 || j.Predicted <= 0 {
				t.Fatalf("%s/%s: degenerate template %+v", sc.Name, j.ID, j)
			}
			if (sc.Name == "multitenant") != (j.Queue != "") {
				t.Fatalf("%s/%s: queue %q", sc.Name, j.ID, j.Queue)
			}
		}
	}
}

func TestLogApproxMatchesMathLog(t *testing.T) {
	for _, x := range []float64{1e-6, 0.001, 0.1, 0.25, 0.5, 0.7, 0.999, 1} {
		got, want := logApprox(x), math.Log(x)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("logApprox(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestRenderSchedPolicy(t *testing.T) {
	rows := schedRows(t)
	var sb strings.Builder
	RenderSchedPolicy(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Scenario", "p95 slowdown", "multitenant", "spjf+slo"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
