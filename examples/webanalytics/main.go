// Webanalytics reproduces the paper's Figure 1: a four-job web-site
// analytics DAG over a page-view event log. Job 1 pre-aggregates visit
// durations; job 2 counts views per page (Word Count-like) while job 3
// sorts pages by duration (Sort-like) — the two run in parallel — and
// job 4 joins both into the final report.
//
// The point of the figure is that the execution time of the *same* map
// task of job 2 varies from state to state (27 s → 24 s → 20 s in the
// paper) because the cluster's bottleneck moves as job 3 transitions from
// its map stage into its network-bound shuffle and then finishes. This
// program simulates the DAG, prints the task execution plan with its
// workflow states, and shows the per-state drift of job 2's map times.
//
// Run it with:
//
//	go run ./examples/webanalytics
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"boedag"
)

func main() {
	spec := boedag.PaperCluster()
	flow := boedag.WebAnalytics(50 * boedag.GB)

	// Record the run's events so the four-job DAG — including the state
	// transitions Figure 1 is about — can be inspected in chrome://tracing.
	rec := boedag.NewTraceRecorder()
	sim := boedag.NewSimulator(spec, boedag.WithTracer(boedag.SimOptions{Seed: 1}, rec))
	res, err := sim.Run(flow)
	if err != nil {
		log.Fatal(err)
	}
	boedag.RenderGantt(os.Stdout, res)

	// The Figure 1 drift: the same map task of job 2 runs at different
	// speeds depending on what job 3 is doing. Group job 2's maps by the
	// contention regime they started under.
	j3MapEnd := res.StageOf("j3", boedag.Map).End
	j3End := res.StageOf("j3", boedag.Reduce).End
	regimes := []struct {
		label string
		in    func(boedag.TaskRecord) bool
	}{
		{"while j3 maps run (disk+CPU contention)", func(tk boedag.TaskRecord) bool {
			return tk.Start < j3MapEnd
		}},
		{"while j3 shuffles/reduces (CPU freed) ", func(tk boedag.TaskRecord) bool {
			return tk.Start >= j3MapEnd && tk.Start < j3End
		}},
		{"after j3 finished (alone)             ", func(tk boedag.TaskRecord) bool {
			return tk.Start >= j3End
		}},
	}
	fmt.Println("\njob 2 (page-view count) map task times by contention regime:")
	for _, r := range regimes {
		var sum time.Duration
		n := 0
		for _, task := range res.Tasks {
			if task.Job == "j2" && task.Stage == boedag.Map && r.in(task) {
				sum += task.Duration()
				n++
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  %s: %3d tasks, mean %.1fs\n", r.label, n, (sum / time.Duration(n)).Seconds())
	}

	// And the model predicts the same plan without running anything.
	timer := &boedag.BOETimer{Model: boedag.NewBOE(spec), TaskStartOverhead: time.Second}
	est := boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: boedag.NormalMode})
	plan, err := est.Estimate(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstate-based estimate: %.1fs vs simulated %.1fs (accuracy %.1f%%)\n",
		plan.Makespan.Seconds(), res.Makespan.Seconds(),
		100*boedag.Accuracy(plan.Makespan, res.Makespan))

	tf, err := os.CreateTemp("", "boedag-webanalytics-*.trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := boedag.ExportChromeTrace(tf, rec.Events()); err != nil {
		log.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Chrome trace written to %s — open chrome://tracing or https://ui.perfetto.dev\n", tf.Name())
}
