// Package fleettest is the deterministic in-process multi-node harness
// behind the fleet conformance, fault-injection, and byte-identity
// suites: N real serve.Servers, each fronted by fleet routing, wired into
// one ring over httptest listeners. Everything runs in one process under
// one -race run, and nodes can be killed and restarted (keeping their
// CacheDir) to exercise degraded routing and warm restarts.
package fleettest

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"boedag/internal/fleet"
	"boedag/internal/serve"
)

// Options tunes a test cluster.
type Options struct {
	// ServeConfig seeds every node's serve.Server. Observe.Metrics is
	// cleared per node so each node gets its own registry; set CacheDir
	// per node via CacheDirs instead of here.
	ServeConfig serve.Config
	// CacheDirs, when non-nil, maps node index to that node's CacheDir.
	CacheDirs map[int]string
	// MaxHops and RetryBackoff pass through to fleet.Config.
	MaxHops      int
	RetryBackoff time.Duration
}

// Cluster is a running in-process fleet.
type Cluster struct {
	t     testing.TB
	opts  Options
	dir   *fleet.MutableDirectory
	peers []string
	Nodes []*TestNode
}

// TestNode is one member: the underlying prediction server, its fleet
// wrapper, and the HTTP front end tests talk to.
type TestNode struct {
	ID     string
	Server *serve.Server
	Node   *fleet.Node
	HTTP   *httptest.Server
	alive  bool
}

// New starts a fleet of n nodes and registers cleanup with t.
func New(t testing.TB, n int, opts Options) *Cluster {
	t.Helper()
	if n < 1 {
		t.Fatalf("fleettest: need at least one node")
	}
	c := &Cluster{t: t, opts: opts, dir: fleet.NewMutableDirectory()}
	for i := 0; i < n; i++ {
		c.peers = append(c.peers, nodeID(i))
	}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, c.startNode(i))
	}
	t.Cleanup(c.Close)
	return c
}

func nodeID(i int) string { return fmt.Sprintf("node%d", i) }

// startNode builds one node and publishes its address in the directory.
func (c *Cluster) startNode(i int) *TestNode {
	c.t.Helper()
	cfg := c.opts.ServeConfig
	cfg.Observe.Metrics = nil // each node gets a private registry
	cfg.CacheDir = ""
	if dir, ok := c.opts.CacheDirs[i]; ok {
		cfg.CacheDir = dir
	}
	srv, err := serve.New(cfg)
	if err != nil {
		c.t.Fatalf("fleettest: serve.New(node %d): %v", i, err)
	}
	node, err := fleet.NewNode(srv, fleet.Config{
		NodeID:       nodeID(i),
		Peers:        c.peers,
		Directory:    c.dir,
		MaxHops:      c.opts.MaxHops,
		RetryBackoff: c.opts.RetryBackoff,
	})
	if err != nil {
		c.t.Fatalf("fleettest: fleet.NewNode(node %d): %v", i, err)
	}
	ts := httptest.NewServer(node.Handler())
	c.dir.Set(nodeID(i), ts.URL)
	return &TestNode{ID: nodeID(i), Server: srv, Node: node, HTTP: ts, alive: true}
}

// URL returns node i's base URL.
func (c *Cluster) URL(i int) string { return c.Nodes[i].HTTP.URL }

// URLs returns every live node's base URL.
func (c *Cluster) URLs() []string {
	var out []string
	for _, n := range c.Nodes {
		if n.alive {
			out = append(out, n.HTTP.URL)
		}
	}
	return out
}

// Kill stops node i abruptly: in-flight and future connections fail at
// the transport level, exactly like a crashed peer. The directory still
// points at the dead address, so forwards to it error and take the
// fallback path.
func (c *Cluster) Kill(i int) {
	n := c.Nodes[i]
	if !n.alive {
		return
	}
	n.HTTP.CloseClientConnections()
	n.HTTP.Close()
	n.alive = false
}

// Stop drains node i gracefully — snapshotting its cache when it has a
// CacheDir — then closes its front end. Use before Restart to model a
// clean rolling restart.
func (c *Cluster) Stop(i int) {
	c.t.Helper()
	n := c.Nodes[i]
	if !n.alive {
		return
	}
	if err := n.Server.SaveCacheSnapshot(); err != nil {
		c.t.Fatalf("fleettest: snapshot node %d: %v", i, err)
	}
	n.HTTP.Close()
	n.alive = false
}

// Restart brings node i back: a fresh serve.Server (restoring its
// CacheDir when one was configured), fresh fleet wrapper, and a new
// listener published to the shared directory. Peers reach it again
// without reconfiguration — the Directory indirection is the point.
func (c *Cluster) Restart(i int) *TestNode {
	c.t.Helper()
	if c.Nodes[i].alive {
		c.t.Fatalf("fleettest: node %d is still running", i)
	}
	c.Nodes[i] = c.startNode(i)
	return c.Nodes[i]
}

// Close shuts every live node down.
func (c *Cluster) Close() {
	for i, n := range c.Nodes {
		if n.alive {
			n.HTTP.Close()
			c.Nodes[i].alive = false
		}
	}
}

// Do posts body to node i's path and returns status, response bytes, and
// headers — no testing assertions, so fault tests can expect failures.
func (c *Cluster) Do(i int, path string, body []byte) (int, []byte, http.Header, error) {
	return post(c.URL(i)+path, body)
}
