package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"boedag/internal/cluster"
	"boedag/internal/units"
)

func validProfile() JobProfile {
	return JobProfile{
		Name:              "test",
		InputBytes:        10 * units.GB,
		SplitBytes:        128 * units.MB,
		ReduceTasks:       16,
		MapSelectivity:    0.5,
		ReduceSelectivity: 0.8,
		MapCPUCost:        2.0,
		ReduceCPUCost:     1.0,
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
	}
}

func paperSpec() cluster.Spec { return cluster.PaperCluster() }

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobProfile)
		want   string
	}{
		{"empty name", func(p *JobProfile) { p.Name = "" }, "name"},
		{"zero input", func(p *JobProfile) { p.InputBytes = 0 }, "input"},
		{"zero split", func(p *JobProfile) { p.SplitBytes = 0 }, "split"},
		{"negative reduces", func(p *JobProfile) { p.ReduceTasks = -1 }, "reduce tasks"},
		{"negative map sel", func(p *JobProfile) { p.MapSelectivity = -0.1 }, "selectivit"},
		{"negative reduce sel", func(p *JobProfile) { p.ReduceSelectivity = -0.1 }, "selectivit"},
		{"negative map cpu", func(p *JobProfile) { p.MapCPUCost = -1 }, "CPU"},
		{"negative replicas", func(p *JobProfile) { p.Replicas = -1 }, "replicas"},
		{"bad compression ratio", func(p *JobProfile) {
			p.Compression = Compression{Enabled: true, Ratio: 1.5}
		}, "compression"},
		{"zero compression ratio", func(p *JobProfile) {
			p.Compression = Compression{Enabled: true, Ratio: 0}
		}, "compression"},
		{"negative skew", func(p *JobProfile) { p.SkewCV = -0.5 }, "skew"},
	}
	for _, c := range cases {
		p := validProfile()
		c.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate() accepted invalid profile", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := validProfile().Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestMapTasksRoundsUp(t *testing.T) {
	p := validProfile()
	p.InputBytes = 129 * units.MB // just over one split
	if got := p.MapTasks(); got != 2 {
		t.Errorf("MapTasks = %d, want 2", got)
	}
	p.InputBytes = 128 * units.MB
	if got := p.MapTasks(); got != 1 {
		t.Errorf("MapTasks = %d, want 1", got)
	}
	p.InputBytes = 1
	if got := p.MapTasks(); got != 1 {
		t.Errorf("MapTasks(min) = %d, want 1", got)
	}
}

func TestTasksPerStage(t *testing.T) {
	p := validProfile()
	if got := p.Tasks(Map); got != p.MapTasks() {
		t.Errorf("Tasks(Map) = %d, want %d", got, p.MapTasks())
	}
	if got := p.Tasks(Reduce); got != 16 {
		t.Errorf("Tasks(Reduce) = %d, want 16", got)
	}
}

func TestOutputByteAlgebra(t *testing.T) {
	p := validProfile() // 10 GB in, map sel 0.5, reduce sel 0.8
	wantMapOut := 5 * units.GB
	if got := p.MapOutputBytes(); math.Abs(float64(got-wantMapOut)) > 1 {
		t.Errorf("MapOutputBytes = %v, want %v", got, wantMapOut)
	}
	wantOut := 4 * units.GB
	if got := p.OutputBytes(); math.Abs(float64(got-wantOut)) > 1 {
		t.Errorf("OutputBytes = %v, want %v", got, wantOut)
	}
	// Compression shrinks the map output but not the logical reduce output.
	p.Compression = Compression{Enabled: true, Ratio: 0.4}
	if got := p.MapOutputBytes(); math.Abs(float64(got-2*units.GB)) > 1 {
		t.Errorf("compressed MapOutputBytes = %v, want 2GB", got)
	}
	if got := p.OutputBytes(); math.Abs(float64(got-wantOut)) > 1 {
		t.Errorf("OutputBytes with compression = %v, want %v (logical)", got, wantOut)
	}
}

func TestMapOnlyOutput(t *testing.T) {
	p := validProfile()
	p.ReduceTasks = 0
	want := p.InputBytes.Scale(p.MapSelectivity)
	if got := p.OutputBytes(); got != want {
		t.Errorf("map-only OutputBytes = %v, want %v", got, want)
	}
	if got := p.ReduceTaskInput(); got != 0 {
		t.Errorf("map-only ReduceTaskInput = %v, want 0", got)
	}
	if got := p.ReduceSubStages(paperSpec()); got != nil {
		t.Errorf("map-only ReduceSubStages = %v, want nil", got)
	}
}

func TestContainerDefaults(t *testing.T) {
	p := validProfile()
	if got := p.MemoryMB(Map); got != 1024 {
		t.Errorf("default MemoryMB = %d, want 1024", got)
	}
	if got := p.VCores(Reduce); got != 1 {
		t.Errorf("default VCores = %d, want 1", got)
	}
	p.MapMemoryMB, p.ReduceMemoryMB = 2048, 4096
	p.MapVCores, p.ReduceVCores = 2, 4
	if got := p.MemoryMB(Map); got != 2048 {
		t.Errorf("MemoryMB(Map) = %d, want 2048", got)
	}
	if got := p.MemoryMB(Reduce); got != 4096 {
		t.Errorf("MemoryMB(Reduce) = %d, want 4096", got)
	}
	if got := p.VCores(Map); got != 2 {
		t.Errorf("VCores(Map) = %d, want 2", got)
	}
	if got := p.VCores(Reduce); got != 4 {
		t.Errorf("VCores(Reduce) = %d, want 4", got)
	}
}

func TestMapSubStagesShape(t *testing.T) {
	p := validProfile()
	p.SortBufferBytes = 1000 * units.GB // never spill
	subs := p.MapSubStages(paperSpec())
	if len(subs) != 1 {
		t.Fatalf("map sub-stages = %d, want 1 (no spill)", len(subs))
	}
	ss := subs[0]
	in := p.MapTaskInput()
	if got := ss.Demand(cluster.DiskRead); got != in {
		t.Errorf("map read demand = %v, want split %v", got, in)
	}
	if got := ss.Demand(cluster.CPU); math.Abs(float64(got-in.Scale(2.0))) > 1 {
		t.Errorf("map cpu demand = %v, want %v", got, in.Scale(2.0))
	}
	if got := ss.Demand(cluster.DiskWrite); math.Abs(float64(got-in.Scale(0.5))) > 1 {
		t.Errorf("map write demand = %v, want %v", got, in.Scale(0.5))
	}
	if got := ss.Demand(cluster.Network); got != 0 {
		t.Errorf("map network demand = %v, want 0 (local write)", got)
	}
}

func TestMapSpillSubStage(t *testing.T) {
	p := validProfile()
	p.MapSelectivity = 1.0
	p.SortBufferBytes = 10 * units.MB // force a spill: 128 MB output
	subs := p.MapSubStages(paperSpec())
	if len(subs) != 2 {
		t.Fatalf("map sub-stages = %d, want 2 (spill merge)", len(subs))
	}
	if subs[1].Name != "spill-merge" {
		t.Errorf("second sub-stage = %q, want spill-merge", subs[1].Name)
	}
	out := p.MapTaskInput()
	if got := subs[1].Demand(cluster.DiskRead); math.Abs(float64(got-out)) > 1 {
		t.Errorf("spill read = %v, want %v", got, out)
	}
}

func TestCompressionAddsCPUAndShrinksOutput(t *testing.T) {
	base := validProfile()
	comp := base
	comp.Compression = Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.5}

	b := base.MapSubStages(paperSpec())[0]
	c := comp.MapSubStages(paperSpec())[0]
	if c.Demand(cluster.DiskWrite) >= b.Demand(cluster.DiskWrite) {
		t.Error("compression did not shrink map output write")
	}
	if c.Demand(cluster.CPU) <= b.Demand(cluster.CPU) {
		t.Error("compression did not add CPU cost")
	}
}

func TestReduceSubStagesShape(t *testing.T) {
	p := validProfile()
	spec := paperSpec()
	subs := p.ReduceSubStages(spec)
	if len(subs) != 2 {
		t.Fatalf("reduce sub-stages = %d, want 2 (shuffle + reduce)", len(subs))
	}
	shuffle, reduce := subs[0], subs[1]
	if shuffle.Name != "shuffle" || reduce.Name != "reduce" {
		t.Fatalf("sub-stage names = %q, %q", shuffle.Name, reduce.Name)
	}
	in := p.ReduceTaskInput()
	// The shuffle reads nothing from disk (OS buffer cache on the map side)
	// and materializes its input once.
	if got := shuffle.Demand(cluster.DiskRead); got != 0 {
		t.Errorf("shuffle disk read = %v, want 0", got)
	}
	if got := shuffle.Demand(cluster.DiskWrite); math.Abs(float64(got-in)) > 1 {
		t.Errorf("shuffle disk write = %v, want %v", got, in)
	}
	// 10 of 11 nodes' worth of input crosses the network.
	wantNet := in.Scale(1 - 1.0/11)
	if got := shuffle.Demand(cluster.Network); math.Abs(float64(got-wantNet)) > 1 {
		t.Errorf("shuffle network = %v, want %v", got, wantNet)
	}
	// Replication: 3 disk writes and 2 network copies of the output.
	out := in.Scale(p.ReduceSelectivity)
	if got := reduce.Demand(cluster.DiskWrite); math.Abs(float64(got-out.Scale(3))) > 1 {
		t.Errorf("reduce disk write = %v, want 3 replicas %v", got, out.Scale(3))
	}
	if got := reduce.Demand(cluster.Network); math.Abs(float64(got-out.Scale(2))) > 1 {
		t.Errorf("reduce network = %v, want 2 remote replicas %v", got, out.Scale(2))
	}
}

func TestSingleReplicaHasNoReplicaTraffic(t *testing.T) {
	p := validProfile()
	p.Replicas = 1
	reduce := p.ReduceSubStages(paperSpec())[1]
	out := p.ReduceTaskInput().Scale(p.ReduceSelectivity)
	if got := reduce.Demand(cluster.DiskWrite); math.Abs(float64(got-out)) > 1 {
		t.Errorf("1-replica disk write = %v, want %v", got, out)
	}
	if got := reduce.Demand(cluster.Network); got != 0 {
		t.Errorf("1-replica network = %v, want 0", got)
	}
}

func TestSingleNodeClusterKeepsEverythingLocal(t *testing.T) {
	p := validProfile()
	spec := cluster.SingleNode(cluster.ExampleNode())
	shuffle := p.ReduceSubStages(spec)[0]
	if got := shuffle.Demand(cluster.Network); got != 0 {
		t.Errorf("single-node shuffle network = %v, want 0", got)
	}
	reduce := p.ReduceSubStages(spec)[1]
	if got := reduce.Demand(cluster.Network); got != 0 {
		t.Errorf("single-node replica network = %v, want 0", got)
	}
}

func TestStageString(t *testing.T) {
	if Map.String() != "map" || Reduce.String() != "reduce" {
		t.Errorf("Stage strings = %q, %q", Map, Reduce)
	}
}

func TestSubStageDemandMissingResource(t *testing.T) {
	ss := SubStage{Name: "x", Ops: []OpDemand{{Resource: cluster.CPU, Bytes: 5}}}
	if got := ss.Demand(cluster.Network); got != 0 {
		t.Errorf("Demand(missing) = %v, want 0", got)
	}
}

func TestTotalDemand(t *testing.T) {
	subs := []SubStage{
		{Ops: []OpDemand{{Resource: cluster.CPU, Bytes: 5}}},
		{Ops: []OpDemand{{Resource: cluster.CPU, Bytes: 7}, {Resource: cluster.Network, Bytes: 3}}},
	}
	if got := TotalDemand(subs, cluster.CPU); got != 12 {
		t.Errorf("TotalDemand(CPU) = %v, want 12", got)
	}
	if got := TotalDemand(subs, cluster.Network); got != 3 {
		t.Errorf("TotalDemand(Network) = %v, want 3", got)
	}
}

// Property: sub-stage demands scale linearly with input size.
func TestDemandLinearity(t *testing.T) {
	f := func(gb uint8) bool {
		in := units.Bytes(gb%32+1) * units.GB
		p := validProfile()
		p.InputBytes = in
		p.SplitBytes = in // one map task, so demands track the whole input
		p2 := p
		p2.InputBytes = in * 2
		p2.SplitBytes = in * 2
		a := p.MapSubStages(paperSpec())[0]
		b := p2.MapSubStages(paperSpec())[0]
		for _, r := range cluster.Resources() {
			x, y := float64(a.Demand(r)), float64(b.Demand(r))
			if math.Abs(y-2*x) > math.Max(1, x*1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: demands are never negative, whatever the selectivities.
func TestDemandsNonNegative(t *testing.T) {
	f := func(sel, rsel uint8, reduces uint8) bool {
		p := validProfile()
		p.MapSelectivity = float64(sel) / 64
		p.ReduceSelectivity = float64(rsel) / 64
		p.ReduceTasks = int(reduces)
		spec := paperSpec()
		for _, st := range []Stage{Map, Reduce} {
			for _, ss := range p.SubStages(st, spec) {
				for _, op := range ss.Ops {
					if op.Bytes < 0 {
						return false
					}
					if op.Bytes == 0 {
						return false // trimOps must drop zero ops
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMicroProfilesMatchTableI(t *testing.T) {
	in := 100 * units.GB
	wc := WordCount(in)
	if !wc.Compression.Enabled || wc.Replicas != 3 {
		t.Errorf("WC should be C=Y R=3, got C=%v R=%d", wc.Compression.Enabled, wc.Replicas)
	}
	tsc := TeraSortCompressed(in)
	if !tsc.Compression.Enabled || tsc.Replicas != 1 {
		t.Errorf("TSC should be C=Y R=1, got C=%v R=%d", tsc.Compression.Enabled, tsc.Replicas)
	}
	ts := TeraSort(in)
	if ts.Compression.Enabled || ts.Replicas != 1 {
		t.Errorf("TS should be C=N R=1, got C=%v R=%d", ts.Compression.Enabled, ts.Replicas)
	}
	ts3 := TeraSort3R(in)
	if ts3.Compression.Enabled || ts3.Replicas != 3 {
		t.Errorf("TS3R should be C=N R=3, got C=%v R=%d", ts3.Compression.Enabled, ts3.Replicas)
	}
	ts2 := TeraSort2R(in)
	if ts2.Replicas != 2 {
		t.Errorf("TS2R replicas = %d, want 2", ts2.Replicas)
	}
	for _, p := range []JobProfile{wc, tsc, ts, ts3, ts2} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.InputBytes != in {
			t.Errorf("%s input = %v, want %v", p.Name, p.InputBytes, in)
		}
	}
	if MicroInput() != in {
		t.Errorf("MicroInput = %v, want 100GB", MicroInput())
	}
}
