package progress

import (
	"testing"
	"time"

	"boedag/internal/obs"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
)

// recordedRun re-runs the setup workflow with a Recorder attached and
// returns the event log alongside the indicator.
func recordedRun(t *testing.T) ([]obs.Event, *Indicator) {
	t.Helper()
	flow, res, in := setup(t)
	rec := obs.NewRecorder()
	spec := in.Estimator.Spec
	_, err := simulator.New(spec, simulator.Options{
		Seed:    1,
		Observe: obs.Options{Tracer: rec},
	}).Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	return rec.Events(), in
}

func TestTrackerReplay(t *testing.T) {
	events, in := recordedRun(t)
	tr := NewTracker(in, LiveOptions{MinInterval: time.Nanosecond})
	var points []LivePoint
	for _, ev := range events {
		if p, ok := tr.Observe(ev); ok {
			if p.Err != nil {
				t.Fatalf("estimate at %v failed: %v", p.Elapsed, p.Err)
			}
			points = append(points, p)
		}
	}
	if len(points) < 10 {
		t.Fatalf("replay produced only %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Elapsed < points[i-1].Elapsed {
			t.Fatalf("elapsed went backwards: %v after %v",
				points[i].Elapsed, points[i-1].Elapsed)
		}
		if points[i].PercentComplete+1e-9 < points[i-1].PercentComplete {
			t.Fatalf("percent complete went backwards: %.2f after %.2f",
				points[i].PercentComplete, points[i-1].PercentComplete)
		}
	}
	last := points[len(points)-1]
	if last.PredictedRemaining != 0 {
		t.Errorf("final predicted remaining = %v, want 0", last.PredictedRemaining)
	}
	if last.PercentComplete != 100 {
		t.Errorf("final percent complete = %.2f, want 100", last.PercentComplete)
	}
	if first := points[0]; first.PredictedRemaining <= 0 {
		t.Errorf("first predicted remaining = %v, want > 0", first.PredictedRemaining)
	}
}

func TestTrackerReplayDeterministic(t *testing.T) {
	events, in := recordedRun(t)
	fold := func() []LivePoint {
		tr := NewTracker(in, LiveOptions{MinInterval: time.Second})
		var out []LivePoint
		for _, ev := range events {
			if p, ok := tr.Observe(ev); ok {
				out = append(out, p)
			}
		}
		return out
	}
	a, b := fold(), fold()
	if len(a) != len(b) {
		t.Fatalf("replays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTrackerFinalSnapshotAllFinished(t *testing.T) {
	events, in := recordedRun(t)
	tr := NewTracker(in, LiveOptions{})
	for _, ev := range events {
		tr.Observe(ev)
	}
	snap := tr.Snapshot()
	if len(snap.Jobs) != len(in.Flow.Jobs) {
		t.Fatalf("snapshot has %d jobs, want %d", len(snap.Jobs), len(in.Flow.Jobs))
	}
	for id, js := range snap.Jobs {
		if js.Phase != statemodel.JobFinished {
			t.Errorf("%s phase = %s after full replay, want finished", id, js.Phase)
		}
		if js.TasksRunning != 0 {
			t.Errorf("%s still has %d tasks running", id, js.TasksRunning)
		}
	}
	if snap.Elapsed <= 0 {
		t.Error("snapshot elapsed not advanced")
	}
}

func TestTrackerIgnoresForeignEvents(t *testing.T) {
	_, _, in := setup(t)
	tr := NewTracker(in, LiveOptions{})
	foreign := []obs.Event{
		{Type: obs.EvTaskStart, Job: "not-a-job", Task: 0, Time: 1},
		{Type: obs.EvTaskFinish, Job: "not-a-job", Task: 0, Time: 1, Dur: 2},
		{Type: obs.EvStageStart, Job: "not-a-job", Stage: "map", Time: 1},
		{Type: obs.EvEstimatorIter, Time: 3},
	}
	for _, ev := range foreign {
		if _, ok := tr.Observe(ev); ok {
			t.Errorf("foreign event %v triggered an estimate", ev.Type)
		}
	}
	for id, js := range tr.Snapshot().Jobs {
		if js.Phase != statemodel.JobPending || js.TasksDone != 0 {
			t.Errorf("%s perturbed by foreign events: %+v", id, js)
		}
	}
}

// TestFollowLiveStream drives the real simulator with a Stream tracer
// and consumes Follow's points concurrently — the dagsim -live-progress
// wiring in miniature. Run under -race this also exercises the bus.
func TestFollowLiveStream(t *testing.T) {
	flow, _, in := setup(t)
	stream := obs.NewStream()
	// Subscribe before the run: the simulator snapshots Tracer.Enabled at
	// start, so a subscriber-less stream keeps the whole run dark.
	live := Follow(stream, in, LiveOptions{MinInterval: time.Nanosecond})
	points := make(chan []LivePoint, 1)
	go func() {
		var got []LivePoint
		for p := range live {
			got = append(got, p)
		}
		points <- got
	}()
	_, err := simulator.New(in.Estimator.Spec, simulator.Options{
		Seed:    1,
		Observe: obs.Options{Tracer: stream},
	}).Run(flow)
	stream.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := <-points
	if len(got) < 10 {
		t.Fatalf("live stream produced only %d points", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Elapsed < got[i-1].Elapsed {
			t.Fatalf("live elapsed went backwards at %d", i)
		}
	}
	if last := got[len(got)-1]; last.PredictedRemaining != 0 {
		t.Errorf("final live remaining = %v, want 0", last.PredictedRemaining)
	}
}
