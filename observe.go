package boedag

import (
	"io"

	"boedag/internal/obs"
)

// Observability. The simulator and the state-based estimator can stream
// structured events to a Tracer and update a MetricsRegistry as they run;
// both are off by default and cost nothing when unset. Collected events
// export to Chrome's trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) or to a plain-text summary.
type (
	// Tracer receives structured events from a run. Implementations must
	// be safe for concurrent use; Enabled reports whether Emit does
	// anything, letting instrumented code skip building events entirely.
	Tracer = obs.Tracer
	// TraceEvent is one structured observation (task finish, state
	// transition, allocation decision, estimator iteration, ...).
	TraceEvent = obs.Event
	// TraceEventType discriminates TraceEvent kinds.
	TraceEventType = obs.EventType
	// TraceRecorder is a Tracer that buffers events in memory.
	TraceRecorder = obs.Recorder
	// MetricsRegistry holds named counters, gauges, and histograms.
	MetricsRegistry = obs.Registry
	// ObserveOptions bundles a Tracer and a MetricsRegistry.
	ObserveOptions = obs.Options
	// TraceStream is a fan-out Tracer: events are forwarded to every
	// subscriber's bounded channel without ever blocking the producer.
	TraceStream = obs.Stream
	// TraceSubscriber is one bounded consumer of a TraceStream.
	TraceSubscriber = obs.Subscriber
	// TraceDropPolicy decides what a full subscriber buffer drops.
	TraceDropPolicy = obs.DropPolicy
	// OTLPOptions configure the OpenTelemetry OTLP/JSON exporters.
	OTLPOptions = obs.OTLPOptions
	// TraceAnnotations carries derived per-stage / per-state / run-level
	// args (e.g. an Explanation's critical-path markers) that the trace
	// exporters merge into their output; on a key collision the recorded
	// arg always wins.
	TraceAnnotations = obs.TraceAnnotations
)

// Subscriber drop policies.
const (
	// TraceDropNewest keeps the oldest buffered window under overload.
	TraceDropNewest = obs.DropNewest
	// TraceDropOldest keeps the freshest buffered window under overload.
	TraceDropOldest = obs.DropOldest
)

// NewTraceRecorder returns an empty in-memory event recorder.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// NewTraceStream returns a subscription bus with no subscribers. A
// stream with no subscribers reports Enabled() == false, so attaching
// one to a simulator costs nothing until somebody subscribes — but
// subscribers must attach before the run starts (producers snapshot
// Enabled at startup). Close the stream when the run ends so consumers
// ranging over a subscriber's Events() terminate.
func NewTraceStream() *TraceStream { return obs.NewStream() }

// TeeTracers fans events out to several tracers (e.g. a recorder plus a
// live stream). Nil and no-op entries are skipped.
func TeeTracers(tracers ...Tracer) Tracer { return obs.Tee(tracers...) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithTracer returns opt with tr attached, so the simulator emits
// structured events as it runs:
//
//	rec := boedag.NewTraceRecorder()
//	res, _ := boedag.NewSimulator(spec, boedag.WithTracer(opt, rec)).Run(flow)
//	boedag.ExportChromeTrace(f, rec.Events())
func WithTracer(opt SimOptions, tr Tracer) SimOptions {
	opt.Observe.Tracer = tr
	return opt
}

// WithMetrics returns opt with reg attached, so the simulator updates
// run-level counters, gauges, and histograms as it runs.
func WithMetrics(opt SimOptions, reg *MetricsRegistry) SimOptions {
	opt.Observe.Metrics = reg
	return opt
}

// Trace exporters.
var (
	// ExportChromeTrace writes events as Chrome trace_event JSON.
	ExportChromeTrace = obs.WriteChromeTrace
	// ExportChromeTraceAnnotated writes events as Chrome trace_event JSON
	// with TraceAnnotations merged into the stage, state, and run args.
	ExportChromeTraceAnnotated = obs.WriteChromeTraceAnnotated
	// WriteTraceSummary writes a plain-text digest of events.
	WriteTraceSummary = obs.WriteSummary
)

// WriteMetricsJSON dumps a registry snapshot as JSON.
func WriteMetricsJSON(w io.Writer, reg *MetricsRegistry) error { return reg.WriteJSON(w) }

// WriteMetricsPrometheus dumps a registry snapshot in the Prometheus
// text exposition format (version 0.0.4), histograms as cumulative
// `_bucket`/`_sum`/`_count` series.
func WriteMetricsPrometheus(w io.Writer, reg *MetricsRegistry) error {
	return reg.WritePrometheus(w)
}

// OTLP export — hand-rolled OTLP/JSON (OpenTelemetry protocol over
// HTTP/JSON), no external dependencies. Span-shaped events become spans
// with stage→task→sub-stage parent links; the metrics registry maps to
// OTLP sums, gauges, and histograms.
var (
	// ExportOTLP writes one JSON document holding both resourceSpans and
	// resourceMetrics (either may be omitted when empty/nil).
	ExportOTLP = obs.WriteOTLP
	// ExportOTLPTraces writes just the spans; returns the span count.
	ExportOTLPTraces = obs.WriteOTLPTraces
	// ExportOTLPMetrics writes just the metrics.
	ExportOTLPMetrics = obs.WriteOTLPMetrics
	// PostOTLP POSTs traces and metrics to an OTLP/HTTP collector's
	// /v1/traces and /v1/metrics endpoints.
	PostOTLP = obs.PostOTLP
	// OTLPSpanCount reports how many events of a run are span-shaped.
	OTLPSpanCount = obs.SpanCount
)
