// Package statemodel implements the workflow-level cost model of the
// paper (§IV): the state-based approach that breaks a DAG workflow into
// states at every map/reduce transition and iteratively estimates each
// state's duration (Algorithm 1). Task-level times come from a pluggable
// TaskTimer: the BOE model (contention-aware prediction from first
// principles) or measured profiles (the §V-C configuration that isolates
// the state-model's own error). Skew is handled by three interchangeable
// stage-duration rules: mean, median, and a fitted normal distribution
// with an expected-maximum straggler correction (the paper's Alg1-Mean,
// Alg1-Mid and Alg2-Normal variants).
package statemodel

import (
	"math"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/profile"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// SkewMode selects how a task-time distribution is collapsed into stage
// durations.
type SkewMode int

const (
	// MeanMode uses the mean task time (paper's Alg1-Mean).
	MeanMode SkewMode = iota
	// MedianMode uses the median task time (paper's Alg1-Mid).
	MedianMode
	// NormalMode fits a normal distribution and corrects the final wave by
	// the expected maximum of Δ draws (paper's Alg2-Normal).
	NormalMode
	// EmpiricalMode is this repository's extension of the paper's
	// skew-aware future work: stage durations come from list-scheduling
	// the measured task-time sample itself (package skew), which stays
	// correct where the normal fit of Alg2-Normal breaks down
	// (multimodal or heavy-tailed task times). It needs a TaskTimer that
	// supplies Sample — ProfileTimer does; BOETimer falls back to
	// NormalMode behaviour.
	EmpiricalMode
)

// String names the mode as the paper's tables do.
func (m SkewMode) String() string {
	switch m {
	case MeanMode:
		return "Alg1-Mean"
	case MedianMode:
		return "Alg1-Mid"
	case NormalMode:
		return "Alg2-Normal"
	case EmpiricalMode:
		return "Ext-Empirical"
	}
	return "SkewMode(?)"
}

// Modes lists the paper's three skew modes in Table III order.
func Modes() []SkewMode { return []SkewMode{MeanMode, MedianMode, NormalMode} }

// AllModes adds the repository's empirical extension to the paper's
// three.
func AllModes() []SkewMode { return append(Modes(), EmpiricalMode) }

// TaskTimeDist summarizes the predicted distribution of task times for
// one job stage in one workflow state.
type TaskTimeDist struct {
	Mean   time.Duration
	Median time.Duration
	Std    time.Duration
	// Sample optionally carries the raw task-time observations backing
	// the summary; EmpiricalMode consumes it.
	Sample []time.Duration
	// Bottleneck is the resource the predicted task spends the most time
	// bound by — the time-weighted dominant sub-stage bottleneck. Timers
	// without resource knowledge (bare profiles) leave it at the zero
	// value (CPU).
	Bottleneck cluster.Resource
	// Util[r] is the predicted cluster-wide utilization of resource r
	// while this task's state runs, time-weighted across sub-stages.
	// Zero for timers without resource knowledge.
	Util [cluster.NumResources]float64
}

// ByMode returns the representative task time for the skew mode.
func (d TaskTimeDist) ByMode(m SkewMode) time.Duration {
	switch m {
	case MedianMode:
		return d.Median
	default:
		return d.Mean
	}
}

// TaskTimer predicts the task-time distribution of one job's current
// stage given every concurrently running group (the contention
// environment). self is the index of the job's own group within groups.
type TaskTimer interface {
	TaskDist(jobID string, groups []boe.TaskGroup, self int) TaskTimeDist
}

// DistCacheable is implemented by TaskTimer implementations whose
// TaskDist is a pure function of its visible inputs (jobID, the group
// sequence, self) and the fingerprinted parameters. The estimator only
// memoizes task-time solves for timers that vouch for their purity this
// way; opaque timers are never cached (correctness over speed).
type DistCacheable interface {
	// DistFingerprint hashes every parameter the timer reads beyond the
	// TaskDist arguments. jobSensitive reports whether the result depends
	// on jobID (forcing per-job cache keys); ok=false disables caching.
	DistFingerprint() (fp uint64, jobSensitive, ok bool)
}

// BOETimer predicts task times with the BOE model, adding the per-task
// container-start overhead and deriving the spread from the workload's
// declared skew.
type BOETimer struct {
	Model *boe.Model
	// TaskStartOverhead is added to every task (container launch latency);
	// it must match the simulated system's overhead to compare fairly.
	TaskStartOverhead time.Duration
}

// TaskDist implements TaskTimer.
func (t *BOETimer) TaskDist(jobID string, groups []boe.TaskGroup, self int) TaskTimeDist {
	g := groups[self]
	est := t.Model.TaskTimeAt(groups, self)
	mean := est.Duration + t.TaskStartOverhead
	// The task-size skew translates linearly into task-time skew for
	// data-bound tasks.
	std := units.Seconds(est.Duration.Seconds() * g.Profile.SkewCV)
	dist := TaskTimeDist{Mean: mean, Median: mean, Std: std}
	dist.Bottleneck, dist.Util = resolveBottleneck(est)
	return dist
}

// DistFingerprint implements DistCacheable: the BOE model is a pure
// function of the cluster spec, the split discipline and the start
// overhead, and it never reads jobID.
func (t *BOETimer) DistFingerprint() (uint64, bool, bool) {
	s := t.Model.Spec
	h := mixStr(fnvOffset, "timer:boe")
	h = mix64(h, uint64(s.Nodes))
	h = mix64(h, uint64(s.SlotsPerNode))
	h = mix64(h, uint64(s.Node.Cores))
	h = mixFloat(h, float64(s.Node.CoreThroughput))
	h = mix64(h, uint64(s.Node.Disks))
	h = mixFloat(h, float64(s.Node.DiskReadRate))
	h = mixFloat(h, float64(s.Node.DiskWriteRate))
	h = mixFloat(h, float64(s.Node.NetworkRate))
	h = mix64(h, uint64(s.Node.MemoryMB))
	if t.Model.EqualSplit {
		h = mix64(h, 1)
	} else {
		h = mix64(h, 0)
	}
	h = mix64(h, uint64(t.TaskStartOverhead))
	return h, false, true
}

// resolveBottleneck folds a BOE task estimate into the task's dominant
// resource (the bottleneck holding the most sub-stage time, ties to the
// lowest resource index) and the time-weighted cluster utilization over
// the task's sub-stages.
func resolveBottleneck(est boe.TaskEstimate) (cluster.Resource, [cluster.NumResources]float64) {
	var busy [cluster.NumResources]float64
	var util [cluster.NumResources]float64
	total := 0.0
	for _, ss := range est.SubStages {
		d := ss.Duration.Seconds()
		if d <= 0 {
			continue
		}
		busy[ss.Bottleneck] += d
		total += d
		for r := 0; r < cluster.NumResources; r++ {
			util[r] += ss.Utilization[r] * d
		}
	}
	dominant := cluster.CPU
	for _, r := range cluster.Resources() {
		if busy[r] > busy[dominant] {
			dominant = r
		}
	}
	if total > 0 {
		for r := 0; r < cluster.NumResources; r++ {
			util[r] /= total
		}
	}
	return dominant, util
}

// ProfileTimer replays measured task-time distributions, ignoring the
// contention environment (the profiles were captured at the matching
// degree of parallelism, per §V-C). It deliberately does not implement
// DistCacheable: a profile lookup is already O(1), so memoizing it would
// only add key-hashing overhead to the hot loop.
type ProfileTimer struct {
	Profiles *profile.Set
	// Fallback, if non-nil, covers stages absent from the profiles.
	Fallback TaskTimer
}

// TaskDist implements TaskTimer.
func (t *ProfileTimer) TaskDist(jobID string, groups []boe.TaskGroup, self int) TaskTimeDist {
	g := groups[self]
	if p, ok := t.Profiles.Stage(jobID, g.Stage); ok && len(p.TaskTimes) > 0 {
		return TaskTimeDist{
			Mean:   p.Mean(),
			Median: p.Median(),
			Std:    p.StdDev(),
			Sample: p.TaskTimes,
		}
	}
	if t.Fallback != nil {
		return t.Fallback.TaskDist(jobID, groups, self)
	}
	return TaskTimeDist{}
}

// ExpectedMaxNormal returns E[max of n i.i.d. N(mean, std) draws], using
// the asymptotic extreme-value expansion for n ≥ 5 and exact/tabulated
// constants for small n. It is the straggler correction of NormalMode:
// a stage's final wave ends when its slowest task does.
func ExpectedMaxNormal(mean, std time.Duration, n int) time.Duration {
	if n <= 1 || std <= 0 {
		return mean
	}
	return mean + time.Duration(expectedMaxStdNormal(n)*float64(std))
}

// expectedMaxStdNormal is E[max of n standard normal draws].
func expectedMaxStdNormal(n int) float64 {
	// Exact values for tiny n (Harter 1961).
	switch n {
	case 2:
		return 0.5642
	case 3:
		return 0.8463
	case 4:
		return 1.0294
	}
	ln := math.Log(float64(n))
	a := math.Sqrt(2 * ln)
	return a - (math.Log(ln)+math.Log(4*math.Pi))/(2*a) + 0.5772/a
}

// groupFor builds the boe.TaskGroup describing a running job stage with
// the steady-state aggregate sub-stage view.
func groupFor(p workload.JobProfile, st workload.Stage, parallelism int) boe.TaskGroup {
	return boe.TaskGroup{
		Profile:     p,
		Stage:       st,
		SubStage:    boe.AggregateSubStage,
		Parallelism: parallelism,
	}
}
