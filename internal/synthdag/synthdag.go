// Package synthdag generates seeded layered random DAG workflows — the
// scale corpus behind the estimator's 10k-job target and the
// incremental-vs-from-scratch equivalence suite. A generated workflow
// has Layers layers of Width jobs; every non-root job depends on FanIn
// distinct jobs of the previous layer, so depth, width and wiring are
// independently tunable. Job profiles are drawn from a small bucketed
// catalog (two micro-benchmark shapes × four input sizes), which makes
// many jobs per layer share an identical profile class — exactly the
// shape a production DAG of templated stages has, and what lets the
// estimator's dist cache collapse a layer's task-time solves.
//
// Job IDs are "lLLL.NNNN": they sort layer-major with each layer
// contiguous, so identical-class jobs sit adjacent in the estimator's
// running order. Generation is fully deterministic in Config.
package synthdag

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"boedag/internal/dag"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Config sizes one synthetic workflow.
type Config struct {
	// Layers is the DAG depth (default 10).
	Layers int
	// Width is the number of jobs per layer (default 10).
	Width int
	// FanIn is the number of previous-layer dependencies per non-root
	// job, capped at Width (default 3).
	FanIn int
	// Seed drives profile choice and dependency wiring (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Layers <= 0 {
		c.Layers = 10
	}
	if c.Width <= 0 {
		c.Width = 10
	}
	if c.FanIn <= 0 {
		c.FanIn = 3
	}
	if c.FanIn > c.Width {
		c.FanIn = c.Width
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Jobs is the total job count, Layers × Width.
func (c Config) Jobs() int {
	c = c.withDefaults()
	return c.Layers * c.Width
}

// Name renders the canonical registry name, e.g. "synth-l100-w100-f3-s1".
func (c Config) Name() string {
	c = c.withDefaults()
	return fmt.Sprintf("synth-l%d-w%d-f%d-s%d", c.Layers, c.Width, c.FanIn, c.Seed)
}

// Parse inverts Name, accepting any field order and two convenience
// aliases: "synth-1k" (20×50) and "synth-10k" (100×100). ok is false
// for names outside the synth- namespace or with malformed fields.
func Parse(name string) (Config, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	rest, found := strings.CutPrefix(name, "synth-")
	if !found || rest == "" {
		return Config{}, false
	}
	switch rest {
	case "1k":
		return Config{Layers: 20, Width: 50, FanIn: 3, Seed: 1}, true
	case "10k":
		return Config{Layers: 100, Width: 100, FanIn: 3, Seed: 1}, true
	}
	var c Config
	for _, f := range strings.Split(rest, "-") {
		if len(f) < 2 {
			return Config{}, false
		}
		var v int
		if _, err := fmt.Sscanf(f[1:], "%d", &v); err != nil || v <= 0 {
			return Config{}, false
		}
		switch f[0] {
		case 'l':
			c.Layers = v
		case 'w':
			c.Width = v
		case 'f':
			c.FanIn = v
		case 's':
			c.Seed = int64(v)
		default:
			return Config{}, false
		}
	}
	if c.Layers == 0 || c.Width == 0 {
		return Config{}, false
	}
	return c.withDefaults(), true
}

// catalog is the bucketed profile classes jobs draw from. Buckets — not
// per-job sizes — so a layer holds many identical profiles.
func catalog() []workload.JobProfile {
	sizes := []units.Bytes{2 * units.GB, 8 * units.GB, 16 * units.GB, 32 * units.GB}
	out := make([]workload.JobProfile, 0, 2*len(sizes))
	for _, sz := range sizes {
		out = append(out, workload.WordCount(sz), workload.TeraSort(sz))
	}
	return out
}

// Generate builds the workflow for the config. The result is valid by
// construction (dependencies only point one layer up) and identical for
// identical configs.
func Generate(c Config) *dag.Workflow {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	classes := catalog()
	w := &dag.Workflow{Name: c.Name()}
	picks := make([]int, c.Width)
	for layer := 0; layer < c.Layers; layer++ {
		// Sorted class picks put identical classes at consecutive IDs, so
		// they sit adjacent in the estimator's running order — the layout
		// that lets its dist cache collapse a layer to one solve per
		// class. Templated production DAGs schedule the same way.
		for i := range picks {
			picks[i] = rng.Intn(len(classes))
		}
		sort.Ints(picks)
		for i := 0; i < c.Width; i++ {
			job := dag.Job{
				ID:      fmt.Sprintf("l%03d.%04d", layer, i),
				Profile: classes[picks[i]],
			}
			if layer > 0 {
				// FanIn distinct parents from the previous layer.
				for _, p := range rng.Perm(c.Width)[:c.FanIn] {
					job.Deps = append(job.Deps, fmt.Sprintf("l%03d.%04d", layer-1, p))
				}
			}
			w.Jobs = append(w.Jobs, job)
		}
	}
	return w
}
