package evalpool

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCacheDoContextReturnsResult(t *testing.T) {
	c := NewCache[int]()
	got, err := c.DoContext(context.Background(), "k", func() (int, error) { return 42, nil })
	if err != nil || got != 42 {
		t.Fatalf("DoContext = %d, %v", got, err)
	}
	// Second call hits the cache.
	got, err = c.DoContext(context.Background(), "k", func() (int, error) {
		t.Fatal("recomputed a cached key")
		return 0, nil
	})
	if err != nil || got != 42 {
		t.Fatalf("cached DoContext = %d, %v", got, err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1 / 1", hits, misses)
	}
}

func TestCacheDoContextPropagatesError(t *testing.T) {
	c := NewCache[int]()
	boom := errors.New("boom")
	if _, err := c.DoContext(context.Background(), "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Deterministic errors are cached like values.
	if _, err := c.DoContext(context.Background(), "k", func() (int, error) { return 1, nil }); !errors.Is(err, boom) {
		t.Fatalf("cached err = %v, want boom", err)
	}
}

func TestCacheDoContextExpiredContext(t *testing.T) {
	c := NewCache[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.DoContext(ctx, "k", func() (int, error) {
		t.Error("compute ran despite a dead context")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCacheDoContextAbandonsWait: when ctx expires mid-computation the
// caller gets the context error immediately, yet the computation still
// finishes in the background and lands in the cache.
func TestCacheDoContextAbandonsWait(t *testing.T) {
	c := NewCache[int]()
	release := make(chan struct{})
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.DoContext(ctx, "k", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DoContext did not return on context cancellation")
	}
	// The abandoned computation completes and is cached for the next call.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.DoContext(context.Background(), "k", func() (int, error) { return -1, nil })
		if err == nil && got == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned result never reached the cache: got %d, %v", got, err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCachePanic: a panicking computation re-throws to the caller that
// ran it, hands waiters an error, and leaves no poisoned entry behind.
func TestCachePanic(t *testing.T) {
	c := NewCache[int]()
	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Error("Do swallowed the panic")
			}
		}()
		c.Do("k", func() (int, error) { panic("kaboom") })
	}()
	// The entry was dropped: the key computes fresh.
	got, err := c.Do("k", func() (int, error) { return 9, nil })
	if err != nil || got != 9 {
		t.Fatalf("retry after panic = %d, %v", got, err)
	}
}

func TestCachePanicWaitersGetError(t *testing.T) {
	c := NewCache[int]()
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // the runner's re-thrown panic
		c.Do("k", func() (int, error) {
			close(started)
			<-release
			panic("kaboom")
		})
	}()
	<-started
	waitErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Do("k", func() (int, error) { return 1, nil })
		waitErr <- err
	}()
	// Wait for the waiter to join the in-flight entry (its Do counts a
	// hit before blocking), then trip the panic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hits, _ := c.Stats(); hits == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case err := <-waitErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter err = %v, want panic error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never returned")
	}
	wg.Wait()
}

func TestCacheDoContextPanicReachesCaller(t *testing.T) {
	c := NewCache[int]()
	defer func() {
		if p := recover(); p == nil {
			t.Error("DoContext swallowed the panic")
		}
	}()
	c.DoContext(context.Background(), "k", func() (int, error) { panic("kaboom") })
}
