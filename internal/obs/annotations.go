package obs

import "sort"

// TraceAnnotations attach derived analysis results — critical-path
// membership, bottleneck attribution, sensitivity winners (package
// explain) — onto exported traces, without the recorder having to know
// about them. Annotations compose with the recorded data: they never
// clobber an arg the event already carries (e.g. a sub-stage's "bytes"
// map or the run metadata the calibration parser reads back).
type TraceAnnotations struct {
	// Stage maps "job/stage" to extra args for that stage's span.
	Stage map[string]map[string]any
	// State maps a workflow state's Seq to extra args for its span.
	State map[int]map[string]any
	// Run holds extra args for the run-level metadata (the EvRunStart
	// instant in Chrome traces, resource attributes in OTLP).
	Run map[string]any
}

// stageArgs returns the annotations for job/stage, nil when absent.
func (a *TraceAnnotations) stageArgs(job, stage string) map[string]any {
	if a == nil {
		return nil
	}
	return a.Stage[job+"/"+stage]
}

// stateArgs returns the annotations for state seq, nil when absent.
func (a *TraceAnnotations) stateArgs(seq int) map[string]any {
	if a == nil {
		return nil
	}
	return a.State[seq]
}

// runArgs returns the run-level annotations, nil when absent.
func (a *TraceAnnotations) runArgs() map[string]any {
	if a == nil {
		return nil
	}
	return a.Run
}

// mergeArgs overlays extra onto base, recorded data winning: a key
// already present in base is never replaced. base is returned unchanged
// when extra is empty; it is extended in place otherwise (allocated
// first when nil).
func mergeArgs(base, extra map[string]any) map[string]any {
	if len(extra) == 0 {
		return base
	}
	if base == nil {
		base = make(map[string]any, len(extra))
	}
	for k, v := range extra {
		if _, ok := base[k]; !ok {
			base[k] = v
		}
	}
	return base
}

// sortedKeys returns m's keys in sorted order, for deterministic
// attribute emission.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
