package tpch

import (
	"fmt"

	"boedag/internal/dag"
)

// Query compiles TPC-H query q (1..22) against the schema into a DAG
// workflow of MapReduce jobs, the way Hive's planner would: one job per
// shuffle boundary, map-joins for dimension tables, a final single-reducer
// sort where the query orders its output. Data volumes derive from the
// schema statistics and the selectivity of each query's predicates.
func Query(q int, schema Schema) (*dag.Workflow, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	build, ok := queryBuilders[q]
	if !ok {
		return nil, fmt.Errorf("tpch: no such query Q%d (valid: 1..22)", q)
	}
	return build(schema)
}

// NumQueries is the count of TPC-H queries.
const NumQueries = 22

// JobCount returns how many MapReduce jobs query q compiles to.
func JobCount(q int, schema Schema) (int, error) {
	w, err := Query(q, schema)
	if err != nil {
		return 0, err
	}
	return len(w.Jobs), nil
}

var queryBuilders = map[int]func(Schema) (*dag.Workflow, error){
	1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8,
	9: q9, 10: q10, 11: q11, 12: q12, 13: q13, 14: q14, 15: q15,
	16: q16, 17: q17, 18: q18, 19: q19, 20: q20, 21: q21, 22: q22,
}

// Q1 — pricing summary report. One pass over lineitem (|l_shipdate <=
// cutoff| ≈ 98%) grouping into four rows, plus the trivial ORDER BY job
// Hive appends. 2 jobs.
func q1(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q1")
	agg := b.scanAgg(b.table(Lineitem), 0.98, 0.00001, 2.4)
	b.sortLimit(agg, 1.0)
	return b.build()
}

// Q2 — minimum cost supplier. The correlated MIN(ps_supplycost) subquery
// materializes first, then part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region
// with the subquery joined back, and a final sort. 8 jobs.
func q2(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q2")
	// Subquery: partsupp ⋈ supplier ⋈ nation ⋈ region → min cost per part.
	sup := b.join(b.table(Supplier), b.table(Nation), 1.0, 0.9)
	supR := b.mapJoin(sup, b.table(Region), 0.2) // region = 'EUROPE'
	psMin := b.join(b.table(Partsupp), supR, 1.0, 0.25)
	minCost := b.groupBy(psMin, 0.3)
	// Outer: part (type + size filters ≈ 1/125) ⋈ partsupp.
	partF := b.scanAgg(b.table(Part), 0.008, 1.0, 1.8)
	outer := b.join(partF, b.table(Partsupp), 1.0, 0.02)
	joined := b.join(outer, minCost, 1.0, 0.5)
	b.sortLimit(joined, 0.2)
	return b.build()
}

// Q3 — shipping priority. customer(mktsegment 1/5) ⋈ orders(date < X,
// ~48%) ⋈ lineitem(date > X, ~54%), aggregate by order, top-10 sort.
// 4 jobs.
func q3(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q3")
	co := b.join(b.table(Customer), b.table(Orders), 0.55, 0.45)
	col := b.join(co, b.table(Lineitem), 0.75, 0.3)
	agg := b.groupBy(col, 0.4)
	b.sortLimit(agg, 0.001)
	return b.build()
}

// Q4 — order priority checking. Semi-join of orders (quarter window,
// ~3.8%) against lineitem commit-date violations (~63%), group by
// priority, sort. 3 jobs.
func q4(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q4")
	sj := b.semiJoin(b.table(Orders), b.table(Lineitem), 0.025)
	agg := b.groupBy(sj, 0.0001)
	b.sortLimit(agg, 1.0)
	return b.build()
}

// Q5 — local supplier volume. Five-way join over customer, orders (one
// year, ~15%), lineitem, supplier, nation/region, grouped by nation.
// 7 jobs.
func q5(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q5")
	nr := b.mapJoin(b.table(Nation), b.table(Region), 0.2) // one region
	sn := b.mapJoin(b.table(Supplier), nr, 0.2)
	co := b.join(b.table(Customer), b.table(Orders), 0.6, 0.15)
	col := b.join(co, b.table(Lineitem), 0.8, 0.2)
	all := b.join(col, sn, 1.0, 0.04)
	agg := b.groupBy(all, 0.0001)
	b.sortLimit(agg, 1.0)
	return b.build()
}

// Q6 — forecasting revenue change. Pure scan-aggregate over lineitem
// with date/discount/quantity filters (~1.9%) into a single row. 1 job.
func q6(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q6")
	b.scanAgg(b.table(Lineitem), 0.019, 0.000001, 1.8)
	return b.build()
}

// Q7 — volume shipping between two nations. supplier⋈nation, customer⋈
// nation, joined through lineitem and orders with a two-year window,
// grouped by (nations, year), sorted. 7 jobs.
func q7(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q7")
	sn := b.mapJoin(b.table(Supplier), b.table(Nation), 0.08) // 2 of 25 nations
	cn := b.mapJoin(b.table(Customer), b.table(Nation), 0.08)
	sl := b.join(b.table(Lineitem), sn, 0.9, 0.1)
	slo := b.join(sl, b.table(Orders), 1.0, 0.3)
	all := b.join(slo, cn, 1.0, 0.1)
	agg := b.groupBy(all, 0.001)
	b.sortLimit(agg, 1.0)
	return b.build()
}

// Q8 — national market share. Eight-table join narrowed by part type
// (~0.13% of part), two-year orders window, grouped by year. 8 jobs.
func q8(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q8")
	partF := b.scanAgg(b.table(Part), 0.0013, 1.0, 1.6)
	pl := b.join(partF, b.table(Lineitem), 0.9, 0.002)
	plo := b.join(pl, b.table(Orders), 1.0, 0.35)
	cn := b.mapJoin(b.table(Customer), b.table(Nation), 0.2) // one region's nations
	ploc := b.join(plo, cn, 1.0, 0.2)
	sn := b.mapJoin(b.table(Supplier), b.table(Nation), 1.0)
	all := b.join(ploc, sn, 1.0, 0.9)
	b.groupBy(all, 0.01)
	return b.build()
}

// Q9 — product type profit. part(name like, ~5.4%) ⋈ lineitem ⋈ supplier
// ⋈ partsupp ⋈ orders ⋈ nation, grouped by (nation, year). 7 jobs.
func q9(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q9")
	partF := b.scanAgg(b.table(Part), 0.054, 1.0, 1.6)
	pl := b.join(partF, b.table(Lineitem), 0.95, 0.06)
	plps := b.join(pl, b.table(Partsupp), 1.0, 0.5)
	sn := b.mapJoin(b.table(Supplier), b.table(Nation), 1.0)
	plpss := b.join(plps, sn, 1.0, 0.9)
	all := b.join(plpss, b.table(Orders), 0.9, 0.4)
	b.groupBy(all, 0.002)
	return b.build()
}

// Q10 — returned item reporting. customer ⋈ orders (one quarter, ~3.8%)
// ⋈ lineitem (returnflag, ~25%), group by customer, top-20. 4 jobs.
func q10(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q10")
	co := b.join(b.table(Customer), b.table(Orders), 0.7, 0.08)
	col := b.join(co, b.table(Lineitem), 0.8, 0.05)
	agg := b.groupBy(col, 0.6)
	b.sortLimit(agg, 0.001)
	return b.build()
}

// Q11 — important stock identification. partsupp ⋈ supplier ⋈ nation
// (one nation, 4%), a grand-total aggregate, and the HAVING filter with
// sort. 4 jobs.
func q11(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q11")
	sn := b.mapJoin(b.table(Supplier), b.table(Nation), 0.04)
	pssn := b.join(b.table(Partsupp), sn, 1.0, 0.04)
	agg := b.groupBy(pssn, 0.8)
	b.sortLimit(agg, 0.05)
	return b.build()
}

// Q12 — shipping mode and order priority. lineitem (two ship modes +
// receipt window, ~1.7%) ⋈ orders, grouped by mode, sorted. 3 jobs.
func q12(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q12")
	lo := b.join(b.table(Lineitem), b.table(Orders), 0.3, 0.02)
	agg := b.groupBy(lo, 0.0001)
	b.sortLimit(agg, 1.0)
	return b.build()
}

// Q13 — customer distribution. Left outer join customer ⋈ orders (not
// like filter ~98%), count per customer, histogram, sort. 3 jobs.
func q13(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q13")
	co := b.join(b.table(Customer), b.table(Orders), 0.9, 0.25)
	agg := b.groupBy(co, 0.001)
	b.sortLimit(agg, 1.0)
	return b.build()
}

// Q14 — promotion effect. lineitem (one month, ~1.3%) map-joined with
// part, single aggregate. 2 jobs.
func q14(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q14")
	lp := b.join(b.table(Lineitem), b.table(Part), 0.35, 0.015)
	b.groupBy(lp, 0.00001)
	return b.build()
}

// Q15 — top supplier. Revenue view over lineitem (one quarter, ~3.8%),
// max aggregate, join back with supplier, sort. 4 jobs.
func q15(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q15")
	rev := b.scanAgg(b.table(Lineitem), 0.038, 0.02, 2.0)
	top := b.groupBy(rev, 1.0)
	joined := b.join(top, b.table(Supplier), 1.0, 0.01)
	b.sortLimit(joined, 1.0)
	return b.build()
}

// Q16 — parts/supplier relationship. part (filters ~95% pass on NOT
// predicates → ~48 size/brand combos) ⋈ partsupp, anti-join against
// complained suppliers, distinct count, sort. 4 jobs.
func q16(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q16")
	partF := b.scanAgg(b.table(Part), 0.2, 1.0, 1.6)
	pps := b.join(partF, b.table(Partsupp), 1.0, 0.2)
	anti := b.semiJoin(pps, b.table(Supplier), 0.95)
	b.sortLimit(anti, 0.05)
	return b.build()
}

// Q17 — small-quantity-order revenue. part (brand+container, ~0.1%) ⋈
// lineitem, the correlated AVG(quantity) subquery, join back, aggregate.
// 4 jobs.
func q17(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q17")
	partF := b.scanAgg(b.table(Part), 0.001, 1.0, 1.6)
	pl := b.join(partF, b.table(Lineitem), 0.9, 0.002)
	avg := b.groupBy(pl, 0.5)
	b.groupBy(avg, 0.00001)
	return b.build()
}

// Q18 — large volume customer. The HAVING subquery over lineitem
// (sum(quantity) per order, keeping ~0.004%), joined with orders and
// customer and lineitem again, top-100. 5 jobs.
func q18(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q18")
	big := b.scanAgg(b.table(Lineitem), 1.0, 0.0001, 1.8)
	lo := b.join(big, b.table(Orders), 1.0, 0.01)
	loc := b.join(lo, b.table(Customer), 0.8, 0.02)
	all := b.join(loc, b.table(Lineitem), 0.6, 0.001)
	b.sortLimit(all, 0.5)
	return b.build()
}

// Q19 — discounted revenue. lineitem map-joined with part under three
// disjunctive brand/container/quantity predicates (~0.02% survive), one
// aggregate. 2 jobs.
func q19(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q19")
	lp := b.join(b.table(Lineitem), b.table(Part), 0.3, 0.0005)
	b.groupBy(lp, 0.0001)
	return b.build()
}

// Q20 — potential part promotion. part name filter (~5.4%) feeding a
// partsupp semi-join, the lineitem availability subquery (one year,
// ~15%), supplier ⋈ nation (4%), final semi-join and sort. 7 jobs.
func q20(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q20")
	partF := b.scanAgg(b.table(Part), 0.054, 1.0, 1.6)
	lAvail := b.scanAgg(b.table(Lineitem), 0.15, 0.1, 1.8)
	ps := b.semiJoin(b.table(Partsupp), partF, 0.054)
	psl := b.join(ps, lAvail, 1.0, 0.3)
	sn := b.mapJoin(b.table(Supplier), b.table(Nation), 0.04)
	final := b.semiJoin(sn, psl, 0.5)
	b.sortLimit(final, 1.0)
	return b.build()
}

// Q21 — suppliers who kept orders waiting. The paper's example of a deep
// plan: it compiles to 9 MapReduce jobs — supplier ⋈ nation, the l1/l2/l3
// lineitem self-joins (EXISTS and NOT EXISTS), orders with status 'F'
// (~49%), group, and top-100 sort.
func q21(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q21")
	sn := b.mapJoin(b.table(Supplier), b.table(Nation), 0.04)
	l1 := b.scanAgg(b.table(Lineitem), 0.63, 1.0, 1.6) // receipt > commit
	l2 := b.scanAgg(b.table(Lineitem), 1.0, 0.3, 1.5)  // distinct suppliers per order
	l3 := b.scanAgg(b.table(Lineitem), 0.63, 0.3, 1.5) // late suppliers per order
	l1o := b.join(l1, b.table(Orders), 0.8, 0.3)       // status = 'F'
	exists := b.join(l1o, l2, 1.0, 0.4)                // EXISTS other supplier
	notExists := b.join(exists, l3, 1.0, 0.3)          // NOT EXISTS other late
	joined := b.join(notExists, sn, 1.0, 0.04)
	b.sortLimit(joined, 0.01)
	return b.build()
}

// Q22 — global sales opportunity. The AVG(acctbal) subquery over
// customer, the NOT EXISTS anti-join against orders, phone-prefix filter
// (~28%), group by country code, sort. 5 jobs.
func q22(s Schema) (*dag.Workflow, error) {
	b := newBuilder(s, "Q22")
	avg := b.scanAgg(b.table(Customer), 0.28, 0.00001, 1.6)
	custF := b.join(b.table(Customer), avg, 0.3, 0.5)
	anti := b.semiJoin(custF, b.table(Orders), 0.3)
	agg := b.groupBy(anti, 0.001)
	b.sortLimit(agg, 1.0)
	return b.build()
}
