package dag

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"boedag/internal/units"
	"boedag/internal/workload"
)

func prof(name string) workload.JobProfile {
	return workload.JobProfile{
		Name:       name,
		InputBytes: units.GB,
		SplitBytes: 128 * units.MB,
	}
}

func diamond() *Workflow {
	return &Workflow{
		Name: "diamond",
		Jobs: []Job{
			{ID: "a", Profile: prof("a")},
			{ID: "b", Profile: prof("b"), Deps: []string{"a"}},
			{ID: "c", Profile: prof("c"), Deps: []string{"a"}},
			{ID: "d", Profile: prof("d"), Deps: []string{"b", "c"}},
		},
	}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatalf("diamond rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		flow *Workflow
		want string
	}{
		{"no name", &Workflow{Jobs: []Job{{ID: "a", Profile: prof("a")}}}, "name"},
		{"no jobs", &Workflow{Name: "x"}, "no jobs"},
		{"empty job ID", &Workflow{Name: "x", Jobs: []Job{{Profile: prof("a")}}}, "empty ID"},
		{"duplicate ID", &Workflow{Name: "x", Jobs: []Job{
			{ID: "a", Profile: prof("a")}, {ID: "a", Profile: prof("a")},
		}}, "duplicate"},
		{"unknown dep", &Workflow{Name: "x", Jobs: []Job{
			{ID: "a", Profile: prof("a"), Deps: []string{"zzz"}},
		}}, "unknown"},
		{"self dep", &Workflow{Name: "x", Jobs: []Job{
			{ID: "a", Profile: prof("a"), Deps: []string{"a"}},
		}}, "itself"},
		{"bad profile", &Workflow{Name: "x", Jobs: []Job{
			{ID: "a", Profile: workload.JobProfile{Name: "a"}},
		}}, "input"},
		{"cycle", &Workflow{Name: "x", Jobs: []Job{
			{ID: "a", Profile: prof("a"), Deps: []string{"b"}},
			{ID: "b", Profile: prof("b"), Deps: []string{"a"}},
		}}, "cycle"},
	}
	for _, c := range cases {
		err := c.flow.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	order, err := diamond().TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	w := diamond()
	for _, j := range w.Jobs {
		for _, d := range j.Deps {
			if pos[d] >= pos[j.ID] {
				t.Errorf("dep %s not before %s in %v", d, j.ID, order)
			}
		}
	}
	// Deterministic: ties break by declaration order.
	if order[1] != "b" || order[2] != "c" {
		t.Errorf("tie-break order = %v, want b before c", order)
	}
}

func TestRootsAndChildren(t *testing.T) {
	w := diamond()
	if got := w.Roots(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Roots = %v, want [a]", got)
	}
	ch := w.Children()
	if !reflect.DeepEqual(ch["a"], []string{"b", "c"}) {
		t.Errorf("Children(a) = %v", ch["a"])
	}
	if !reflect.DeepEqual(ch["b"], []string{"d"}) {
		t.Errorf("Children(b) = %v", ch["b"])
	}
	if len(ch["d"]) != 0 {
		t.Errorf("Children(d) = %v, want none", ch["d"])
	}
}

func TestJobLookup(t *testing.T) {
	w := diamond()
	if j := w.Job("c"); j == nil || j.ID != "c" {
		t.Errorf("Job(c) = %v", j)
	}
	if j := w.Job("nope"); j != nil {
		t.Errorf("Job(nope) = %v, want nil", j)
	}
}

func TestSingle(t *testing.T) {
	w := Single(prof("solo"))
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || w.Jobs[0].ID != "solo" || w.Name != "solo" {
		t.Errorf("Single = %+v", w)
	}
}

func TestChain(t *testing.T) {
	w := Chain("pipe", prof("x"), prof("y"), prof("z"))
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 3 {
		t.Fatalf("Chain has %d jobs", len(w.Jobs))
	}
	if len(w.Jobs[0].Deps) != 0 {
		t.Errorf("first job has deps %v", w.Jobs[0].Deps)
	}
	if !reflect.DeepEqual(w.Jobs[2].Deps, []string{"j2"}) {
		t.Errorf("third job deps = %v, want [j2]", w.Jobs[2].Deps)
	}
}

func TestParallelPrefixesIDs(t *testing.T) {
	a := Chain("A", prof("x"), prof("y"))
	b := Single(prof("z"))
	w := Parallel("AB", a, b)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 3 {
		t.Fatalf("Parallel has %d jobs, want 3", len(w.Jobs))
	}
	if w.Jobs[0].ID != "A/j1" {
		t.Errorf("first job ID = %q, want A/j1", w.Jobs[0].ID)
	}
	if !reflect.DeepEqual(w.Jobs[1].Deps, []string{"A/j1"}) {
		t.Errorf("second job deps = %v, want [A/j1]", w.Jobs[1].Deps)
	}
	if got := len(w.Roots()); got != 2 {
		t.Errorf("Parallel roots = %d, want 2", got)
	}
}

func TestTotalInput(t *testing.T) {
	w := diamond()
	if got := w.TotalInput(); got != 4*units.GB {
		t.Errorf("TotalInput = %v, want 4GB", got)
	}
}

func TestCriticalPath(t *testing.T) {
	w := diamond()
	weights := map[string]float64{"a": 1, "b": 10, "c": 2, "d": 3}
	path, total := w.CriticalPath(func(j Job) float64 { return weights[j.ID] })
	if !reflect.DeepEqual(path, []string{"a", "b", "d"}) {
		t.Errorf("critical path = %v, want [a b d]", path)
	}
	if total != 14 {
		t.Errorf("critical weight = %v, want 14", total)
	}
}

func TestCriticalPathSingle(t *testing.T) {
	w := Single(prof("solo"))
	path, total := w.CriticalPath(func(Job) float64 { return 5 })
	if !reflect.DeepEqual(path, []string{"solo"}) || total != 5 {
		t.Errorf("path = %v (%v)", path, total)
	}
}

// Property: for random layered DAGs, TopoOrder is a permutation of all
// jobs that respects every edge.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		w := &Workflow{Name: "rand"}
		for i := 0; i < n; i++ {
			id := string(rune('a' + i))
			j := Job{ID: id, Profile: prof(id)}
			// Depend on a random subset of earlier jobs: acyclic by
			// construction.
			for k := 0; k < i; k++ {
				if rng.Intn(3) == 0 {
					j.Deps = append(j.Deps, string(rune('a'+k)))
				}
			}
			w.Jobs = append(w.Jobs, j)
		}
		if err := w.Validate(); err != nil {
			return false
		}
		order, err := w.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, j := range w.Jobs {
			for _, d := range j.Deps {
				if pos[d] >= pos[j.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
