package boedag

import (
	"io"
	"time"

	"boedag/internal/calibrate"
	"boedag/internal/dag"
	"boedag/internal/progress"
	"boedag/internal/sched"
	"boedag/internal/simulator"
	"boedag/internal/skew"
	"boedag/internal/spark"
	"boedag/internal/statemodel"
	"boedag/internal/tuning"
)

// This file exports the extensions beyond the paper's evaluation: the
// skew-aware empirical estimator mode (the paper's first named follow-up),
// the automatic-tuning application (its second), an online progress
// indicator, alternative scheduler policies, and the Spark lineage
// adapter backing the paper's generality claim.

// EmpiricalMode is the skew-aware extension of the three paper modes:
// stage durations come from list-scheduling the measured task-time sample
// (distribution-free straggler handling).
const EmpiricalMode = statemodel.EmpiricalMode

// AllSkewModes lists the paper's three modes plus EmpiricalMode.
func AllSkewModes() []SkewMode { return statemodel.AllModes() }

// Scheduling policies.
type SchedPolicy = sched.Policy

// The scheduler disciplines the simulator and estimator can model.
const (
	PolicyDRF  = sched.PolicyDRF
	PolicyFIFO = sched.PolicyFIFO
	PolicyFair = sched.PolicyFair
)

// SchedPolicies lists every discipline.
func SchedPolicies() []SchedPolicy { return sched.Policies() }

// Skew analysis.
var (
	// ZipfWeights draws partition weights under a Zipf law (reduce-key
	// skew).
	ZipfWeights = skew.Zipf
	// SkewCV computes the coefficient of variation of partition weights.
	SkewCV = skew.CV
	// EmpiricalStageDuration list-schedules measured task times onto
	// parallel slots.
	EmpiricalStageDuration = skew.EmpiricalStageDuration
	// StragglerIndex is the p99/median task-time ratio.
	StragglerIndex = skew.StragglerIndex
)

// Automatic tuning (the paper's "automatic tuning for DAG workflows").
type (
	// Tuner searches job configurations with the cost models.
	Tuner = tuning.Tuner
	// TunerOptions configure the search.
	TunerOptions = tuning.Options
	// TuningKnob identifies a tunable parameter.
	TuningKnob = tuning.Knob
	// TuningChange is one accepted adjustment.
	TuningChange = tuning.Change
	// TuningRecommendation is the tuner's output.
	TuningRecommendation = tuning.Recommendation
)

// Tuning knobs.
const (
	TuneReduceTasks = tuning.ReduceTasks
	TuneCompression = tuning.Compression
	TuneSortBuffer  = tuning.SortBuffer
)

// NewTuner returns an auto-tuner for the cluster.
func NewTuner(spec ClusterSpec, opt TunerOptions) *Tuner { return tuning.New(spec, opt) }

// Progress estimation (the ParaTimer-style application).
type (
	// ProgressIndicator re-estimates remaining time from snapshots.
	ProgressIndicator = progress.Indicator
	// ProgressPoint is one sample of a progress curve.
	ProgressPoint = progress.Point
	// WorkflowSnapshot captures a workflow mid-flight.
	WorkflowSnapshot = statemodel.Snapshot
	// JobSnapshot is one job's observed progress.
	JobSnapshot = statemodel.JobSnapshot
	// JobPhase is a job's phase within a snapshot.
	JobPhase = statemodel.JobPhase
)

// Snapshot phases.
const (
	JobPending  = statemodel.JobPending
	JobMapping  = statemodel.JobMapping
	JobReducing = statemodel.JobReducing
	JobFinished = statemodel.JobFinished
)

// SnapshotAt reconstructs the observed workflow state at instant t of a
// simulation result.
func SnapshotAt(res *simulator.Result, t time.Duration) WorkflowSnapshot {
	return progress.SnapshotAt(res, t)
}

// ProgressCurve evaluates a progress indicator against the simulated
// truth at the given completion fractions.
func ProgressCurve(in *ProgressIndicator, res *simulator.Result, fractions []float64) ([]ProgressPoint, error) {
	return progress.Curve(in, res, fractions)
}

// Online progress estimation over a live event stream.
type (
	// LiveProgressTracker folds observation events into a live snapshot
	// and re-runs Algorithm 1 incrementally.
	LiveProgressTracker = progress.Tracker
	// LiveProgressPoint is one (elapsed, predicted-remaining) sample.
	LiveProgressPoint = progress.LivePoint
	// LiveProgressOptions tune the online tracker.
	LiveProgressOptions = progress.LiveOptions
)

// NewLiveProgressTracker builds a synchronous online tracker; feed it
// events with Observe. Use FollowProgress for the channel-based wrapper.
func NewLiveProgressTracker(in *ProgressIndicator, opt LiveProgressOptions) *LiveProgressTracker {
	return progress.NewTracker(in, opt)
}

// FollowProgress subscribes to a trace stream and emits one
// LiveProgressPoint per re-estimate while the observed run executes.
// The indicator's estimator must not emit into the same stream.
func FollowProgress(stream *TraceStream, in *ProgressIndicator, opt LiveProgressOptions) <-chan LiveProgressPoint {
	return progress.Follow(stream, in, opt)
}

// Spark lineage adapter.
type (
	// SparkLineage is a Spark job as a DAG of shuffle-bounded stages.
	SparkLineage = spark.Lineage
	// SparkStage is one fused pipeline between shuffles.
	SparkStage = spark.Stage
	// SparkStageID names a stage.
	SparkStageID = spark.StageID
)

// TranslateSpark compiles a Spark lineage into a MapReduce workflow that
// runs on this repository's simulator and cost models.
func TranslateSpark(l *SparkLineage) (*dag.Workflow, error) { return spark.Translate(l) }

// SparkWordCount and SparkPageRank are canonical example lineages.
var (
	SparkWordCount = spark.WordCountLineage
	SparkPageRank  = spark.PageRankLineage
)

// Cluster calibration (the profiling step before using the models on new
// hardware).
type (
	// CalibrationEstimate holds recovered cluster throughputs.
	CalibrationEstimate = calibrate.Estimate
	// CalibrationRunner executes probe jobs on the cluster under test.
	CalibrationRunner = calibrate.Runner
)

// CalibrateCluster probes a cluster and recovers the θ_X throughputs the
// BOE model consumes.
func CalibrateCluster(run CalibrationRunner, slots, nodes int) (*CalibrationEstimate, error) {
	return calibrate.Cluster(run, slots, nodes)
}

// SimulatorCalibrationRunner backs calibration probes with the simulator.
func SimulatorCalibrationRunner(spec ClusterSpec) CalibrationRunner {
	return calibrate.SimulatorRunner(spec)
}

// Offline (trace-driven) calibration: recover θ_X from recorded Chrome
// traces of probe runs instead of a live cluster.
type (
	// TraceCalibration is an offline calibration result: the estimate
	// plus session facts and per-resource confidence.
	TraceCalibration = calibrate.Calibration
	// TraceSession is a parsed probe-session trace.
	TraceSession = calibrate.Session
)

// CalibrateFromTrace recovers cluster throughputs from one or more
// recorded Chrome trace files of a probe session (written by
// `dagsim -trace-out` or `calibrate -trace-out`).
func CalibrateFromTrace(paths ...string) (*TraceCalibration, error) {
	return calibrate.FromTraceFiles(paths...)
}

// ParseProbeTrace parses one Chrome trace_event JSON stream into a
// session that TraceCalibrationRunner or calibrate.FromSession consume.
func ParseProbeTrace(r io.Reader) (*TraceSession, error) {
	return calibrate.ParseChromeTrace(r)
}

// TraceCalibrationRunner serves a recorded session's measurements to the
// calibration arithmetic — the offline counterpart of
// SimulatorCalibrationRunner.
func TraceCalibrationRunner(s *TraceSession) CalibrationRunner {
	return calibrate.TraceRunner(s)
}

// OrderRecommendation is the FIFO submission-order optimizer's output.
type OrderRecommendation = tuning.OrderRecommendation
