package loadgen

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"boedag/internal/perfledger"
	"boedag/internal/serve"
)

var mixWorkflows = []string{"wc", "ts", "wc+ts"}
var mixSizes = []float64{10, 100}

// TestPickDeterministic pins the reproducibility contract: the request
// mix is a pure function of (seed, i), so two runs with the same seed
// issue the identical sequence no matter how far each gets.
func TestPickDeterministic(t *testing.T) {
	for i := int64(0); i < 1000; i++ {
		w1, s1 := Pick(42, i, mixWorkflows, mixSizes)
		w2, s2 := Pick(42, i, mixWorkflows, mixSizes)
		if w1 != w2 || s1 != s2 {
			t.Fatalf("Pick(42, %d) not pure: %s/%v vs %s/%v", i, w1, s1, w2, s2)
		}
	}
	diff := 0
	for i := int64(0); i < 1000; i++ {
		w1, _ := Pick(1, i, mixWorkflows, mixSizes)
		w2, _ := Pick(2, i, mixWorkflows, mixSizes)
		if w1 != w2 {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 1 and 2 generated the identical 1000-request mix")
	}
}

// TestPickCoversMix checks the hash spreads over both mix dimensions.
func TestPickCoversMix(t *testing.T) {
	workflows := make(map[string]int)
	sizes := make(map[float64]int)
	for i := int64(0); i < 1000; i++ {
		w, s := Pick(7, i, mixWorkflows, mixSizes)
		workflows[w]++
		sizes[s]++
	}
	for _, w := range mixWorkflows {
		if workflows[w] < 100 {
			t.Errorf("workflow %q drawn %d/1000 times — mix badly skewed", w, workflows[w])
		}
	}
	for _, s := range mixSizes {
		if sizes[s] < 100 {
			t.Errorf("size %v drawn %d/1000 times — mix badly skewed", s, sizes[s])
		}
	}
}

// TestBodyIsValidRequest round-trips generated bodies through the
// server's strict decoder: the harness can never drift from the wire
// contract it exercises.
func TestBodyIsValidRequest(t *testing.T) {
	for i := int64(0); i < 50; i++ {
		workflow, body := Body(3, i, mixWorkflows, mixSizes)
		req, apiErr := serve.DecodeEstimateRequest(bytes.NewReader(body))
		if apiErr != nil {
			t.Fatalf("request %d rejected: %v\n%s", i, apiErr, body)
		}
		if req.Workflow != workflow {
			t.Errorf("request %d: workflow %q, Body reported %q", i, req.Workflow, workflow)
		}
	}
}

// TestRunClosedLoop drives a stub server and checks the accounting
// invariants: every measured request has a latency sample and a status
// tally, errors are the non-2xx subset, and the summary validates as a
// ledger service run.
func TestRunClosedLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	cfg := Config{
		BaseURL:     ts.URL,
		Connections: 2,
		Warmup:      20 * time.Millisecond,
		Duration:    150 * time.Millisecond,
		Seed:        5,
		Workflows:   mixWorkflows,
		SizesGB:     mixSizes,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no measured requests against a local stub")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d against an always-200 stub (status %v)", res.Errors, res.StatusCounts)
	}
	if got := int64(len(res.Latencies)); got != res.Requests {
		t.Errorf("latency samples = %d, requests = %d", got, res.Requests)
	}
	var statusTotal, mixTotal int64
	for _, n := range res.StatusCounts {
		statusTotal += n
	}
	for _, n := range res.MixCounts {
		mixTotal += n
	}
	if statusTotal != res.Requests || mixTotal != res.Requests {
		t.Errorf("status/mix tallies = %d/%d, requests = %d", statusTotal, mixTotal, res.Requests)
	}
	if res.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", res.ThroughputRPS)
	}

	run := Summarize(cfg, res)
	ledger := perfledger.Ledger{
		Schema: perfledger.SchemaVersion, Source: "boedagbench",
		Build: perfledger.CurrentBuild(), Service: &run,
	}
	if err := perfledger.Validate(ledger); err != nil {
		t.Errorf("summarized run does not validate: %v", err)
	}
	if run.Latency.P50S > run.Latency.P99S || run.Latency.P99S > run.Latency.MaxS {
		t.Errorf("percentiles out of order: %+v", run.Latency)
	}
}

// TestRunCountsServerErrors: non-2xx responses are errors but still
// latency samples — a degraded server must not look fast by exclusion.
func TestRunCountsServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Connections: 1,
		Duration: 60 * time.Millisecond, Seed: 1, Workflows: []string{"wc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != res.Requests {
		t.Errorf("requests/errors = %d/%d, want all errors", res.Requests, res.Errors)
	}
	if int64(len(res.Latencies)) != res.Requests {
		t.Errorf("latency samples = %d, want %d (errors must be sampled too)",
			len(res.Latencies), res.Requests)
	}
}

// TestRunOpenLoop checks the rate-paced mode dispatches roughly at the
// configured rate against a fast stub.
func TestRunOpenLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Mode: "open", RatePerSec: 200,
		Duration: 200 * time.Millisecond, Seed: 1, Workflows: []string{"wc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 req/s over 200ms ≈ 40 arrivals; allow generous scheduling slack.
	if res.Requests < 10 || res.Requests > 80 {
		t.Errorf("open loop dispatched %d requests for a 40-arrival schedule", res.Requests)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{BaseURL: "http://x", Duration: time.Second, Workflows: []string{"wc"}}
	for name, mutate := range map[string]func(*Config){
		"no url":       func(c *Config) { c.BaseURL = "" },
		"no duration":  func(c *Config) { c.Duration = 0 },
		"no workflows": func(c *Config) { c.Workflows = nil },
		"bad mode":     func(c *Config) { c.Mode = "sideways" },
		"open no rate": func(c *Config) { c.Mode = "open" },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted the config", name)
		}
	}
}
