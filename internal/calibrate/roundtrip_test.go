package calibrate

import (
	"bytes"
	"math"
	"testing"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/obs"
	"boedag/internal/units"
)

// recordProbeTrace runs the full probe suite against the simulated spec
// with a tracer attached and returns the session exported as Chrome
// trace JSON — exactly what `dagsim -workflow cal-... -trace-out` or
// `calibrate -trace-out` writes to disk.
func recordProbeTrace(t testing.TB, spec cluster.Spec) []byte {
	t.Helper()
	rec := obs.NewRecorder()
	run := SimulatorRunner(spec, obs.Options{Tracer: rec})
	for _, pr := range ProbeSuite(spec.TotalSlots()) {
		if _, err := run(pr.Profile, pr.Slots); err != nil {
			t.Fatalf("probe %s: %v", pr.Profile.Name, err)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceRoundTrip is the PR's load-bearing property: simulate the
// probe suite on a known cluster, export the Chrome trace, calibrate
// offline from nothing but that trace, and recover the originating θ_X
// within 1%. Three specs guard against the paper cluster being a lucky
// special case; each perturbed spec keeps the probe suite's isolation
// preconditions (write pool ≤ read pool, NIC-bound shuffle, CPU-bound
// compute probe).
func TestTraceRoundTrip(t *testing.T) {
	dense := cluster.Spec{
		Nodes: 5, SlotsPerNode: 8,
		Node: cluster.NodeSpec{
			Cores: 4, CoreThroughput: 80 * units.MBps,
			Disks: 1, DiskReadRate: 150 * units.MBps, DiskWriteRate: 120 * units.MBps,
			NetworkRate: 90 * units.MBps, MemoryMB: 16 * 1024,
		},
	}
	wide := cluster.Spec{
		Nodes: 16, SlotsPerNode: 6,
		Node: cluster.NodeSpec{
			Cores: 6, CoreThroughput: 40 * units.MBps,
			Disks: 2, DiskReadRate: 120 * units.MBps, DiskWriteRate: 100 * units.MBps,
			NetworkRate: 110 * units.MBps, MemoryMB: 24 * 1024,
		},
	}
	cases := []struct {
		name string
		spec cluster.Spec
	}{
		{"paper", cluster.PaperCluster()},
		{"dense-small", dense},
		{"wide-slow-core", wide},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err != nil {
				t.Fatal(err)
			}
			raw := recordProbeTrace(t, tc.spec)

			sess, err := ParseChromeTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if sess.Nodes != tc.spec.Nodes {
				t.Fatalf("session nodes = %d, want %d", sess.Nodes, tc.spec.Nodes)
			}
			if sess.Slots != tc.spec.TotalSlots() {
				t.Fatalf("session slots = %d, want %d", sess.Slots, tc.spec.TotalSlots())
			}
			if sess.Skewed {
				t.Error("probe runs disable skew; session claims skewed")
			}

			cal, err := FromSession(sess)
			if err != nil {
				t.Fatal(err)
			}

			within := func(name string, got, want units.Rate, tol float64) {
				t.Helper()
				g, w := float64(got), float64(want)
				if math.Abs(g-w)/w > tol {
					t.Errorf("%s = %v, want %v (±%.1f%%)", name, got, want, 100*tol)
				}
			}
			within("core throughput", cal.CoreThroughput, tc.spec.Node.CoreThroughput, 0.01)
			within("disk read pool", cal.DiskReadPool, tc.spec.TotalCapacity(cluster.DiskRead), 0.01)
			within("disk write pool", cal.DiskWritePool, tc.spec.TotalCapacity(cluster.DiskWrite), 0.01)
			within("network pool", cal.NetworkPool, tc.spec.TotalCapacity(cluster.Network), 0.01)
			if d := cal.TaskOverhead - time.Second; d < -50*time.Millisecond || d > 50*time.Millisecond {
				t.Errorf("task overhead = %v, want ≈ 1s", cal.TaskOverhead)
			}

			// Offline must agree with live calibration on the same cluster:
			// identical arithmetic fed identical measurements, modulo the
			// microsecond granularity of the trace format.
			live, err := Cluster(SimulatorRunner(tc.spec), tc.spec.TotalSlots(), tc.spec.Nodes)
			if err != nil {
				t.Fatal(err)
			}
			within("trace vs live core", cal.CoreThroughput, live.CoreThroughput, 0.001)
			within("trace vs live read", cal.DiskReadPool, live.DiskReadPool, 0.001)
			within("trace vs live write", cal.DiskWritePool, live.DiskWritePool, 0.001)
			within("trace vs live net", cal.NetworkPool, live.NetworkPool, 0.001)

			// The recorded D_X byte counts independently imply the same
			// throughputs, with one sample per probe task and no dissent.
			slots := tc.spec.TotalSlots()
			wantSamples := [cluster.NumResources]int{
				cluster.CPU:       1,
				cluster.DiskRead:  slots,
				cluster.DiskWrite: slots,
				cluster.Network:   slots,
			}
			for _, r := range cluster.Resources() {
				cf := cal.Confidence[r]
				if cf.Samples != wantSamples[r] {
					t.Errorf("%s confidence samples = %d, want %d", r, cf.Samples, wantSamples[r])
				}
				if cf.Samples > 0 && cf.Spread > 0.01 {
					t.Errorf("%s confidence spread = %.4f, want ≈ 0", r, cf.Spread)
				}
			}
			within("implied cpu", cal.Confidence[cluster.CPU].Implied,
				tc.spec.Node.CoreThroughput, 0.01)
			within("implied network", cal.Confidence[cluster.Network].Implied,
				tc.spec.TotalCapacity(cluster.Network), 0.01)
		})
	}
}

// TestAnnotatedProbeTraceStillCalibrates is the arg-merge regression
// gate: exporting a probe session through the annotated Chrome writer —
// with hostile annotations colliding with the run metadata and stage
// args the calibration parser depends on — must leave the recorded args
// intact, so offline calibration from the annotated trace recovers the
// same θ_X as from the plain one.
func TestAnnotatedProbeTraceStillCalibrates(t *testing.T) {
	spec := cluster.PaperCluster()
	rec := obs.NewRecorder()
	run := SimulatorRunner(spec, obs.Options{Tracer: rec})
	for _, pr := range ProbeSuite(spec.TotalSlots()) {
		if _, err := run(pr.Profile, pr.Slots); err != nil {
			t.Fatalf("probe %s: %v", pr.Profile.Name, err)
		}
	}
	ann := &obs.TraceAnnotations{
		Stage: map[string]map[string]any{
			"cal-read/read": {"critical": true, "bottleneck": "EVIL"},
		},
		Run: map[string]any{
			"workflow": "EVIL", "nodes": -1, "slots": -1, "skew": true,
			"bottleneck": "network",
		},
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceAnnotated(&buf, rec.Events(), ann); err != nil {
		t.Fatal(err)
	}

	sess, err := ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Nodes != spec.Nodes || sess.Slots != spec.TotalSlots() || sess.Skewed {
		t.Fatalf("annotations clobbered run metadata: nodes=%d slots=%d skewed=%v",
			sess.Nodes, sess.Slots, sess.Skewed)
	}
	cal, err := FromSession(sess)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want units.Rate) {
		t.Helper()
		g, w := float64(got), float64(want)
		if math.Abs(g-w)/w > 0.01 {
			t.Errorf("%s = %v, want %v (±1%%)", name, got, want)
		}
	}
	within("core throughput", cal.CoreThroughput, spec.Node.CoreThroughput)
	within("disk read pool", cal.DiskReadPool, spec.TotalCapacity(cluster.DiskRead))
	within("disk write pool", cal.DiskWritePool, spec.TotalCapacity(cluster.DiskWrite))
	within("network pool", cal.NetworkPool, spec.TotalCapacity(cluster.Network))
}

// TestMergeMultiProbeSessions covers the multi-file path: two recordings
// of the same cluster merge into one session with doubled samples and an
// unchanged estimate.
func TestMergeMultiProbeSessions(t *testing.T) {
	spec := cluster.PaperCluster()
	raw := recordProbeTrace(t, spec)
	s1, err := ParseChromeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseChromeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := FromSession(merged)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cal.Confidence[cluster.DiskRead].Samples, 2*spec.TotalSlots(); got != want {
		t.Errorf("merged disk-read samples = %d, want %d", got, want)
	}
	single, err := FromSession(s1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(float64(cal.DiskReadPool)-float64(single.DiskReadPool)) /
		float64(single.DiskReadPool); diff > 0.001 {
		t.Errorf("merged estimate drifted %.4f%% from single-session", diff*100)
	}

	other := spec
	other.Nodes = 7
	rawOther := recordProbeTrace(t, other)
	s3, err := ParseChromeTrace(bytes.NewReader(rawOther))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(s1, s3); err == nil {
		t.Error("merging sessions from different clusters must fail")
	}
}
