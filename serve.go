package boedag

import (
	"context"

	"boedag/internal/serve"
)

// Prediction service. The serve engine turns the estimator into a
// long-running HTTP/JSON daemon (see cmd/boedagd): POST /v1/estimate and
// /v1/batch answer makespan queries, identical concurrent requests
// coalesce onto one single-flight estimator run, and a bounded admission
// queue sheds overload with 503 + Retry-After.
type (
	// PredictionServer is the HTTP prediction daemon.
	PredictionServer = serve.Server
	// ServerConfig tunes a PredictionServer; the zero value serves the
	// paper cluster with production defaults.
	ServerConfig = serve.Config
	// EstimateRequest is the JSON body of POST /v1/estimate.
	EstimateRequest = serve.EstimateRequest
	// EstimateResponse is the JSON body of a successful estimate.
	EstimateResponse = serve.EstimateResponse
	// BatchRequest is the JSON body of POST /v1/batch.
	BatchRequest = serve.BatchRequest
	// BatchResponse is the JSON body of a batch result.
	BatchResponse = serve.BatchResponse
)

// NewServer returns a prediction server ready to serve via its Handler
// or ListenAndServe.
func NewServer(cfg ServerConfig) (*PredictionServer, error) { return serve.New(cfg) }

// ListenAndServe runs a prediction server on addr until ctx is
// cancelled, then drains gracefully: in-flight requests finish (bounded
// by the configured drain timeout) while new ones are refused with 503.
func ListenAndServe(ctx context.Context, addr string, cfg ServerConfig) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx, addr)
}
