// Package tpch models the TPC-H benchmark as it appears in the paper's
// evaluation: the eight-table schema generated at 80 GB, and the 22
// queries compiled — the way Hive compiles HiveQL — into DAG workflows of
// MapReduce jobs with cardinality-derived data volumes. The job counts
// and DAG shapes follow the published Hive-on-MapReduce plans the paper
// used (e.g. Q21 compiles to 9 jobs); data volumes per job come from the
// schema statistics and per-operator selectivities below.
package tpch

import (
	"fmt"
	"sort"

	"boedag/internal/units"
)

// Table identifies one of the eight TPC-H base tables.
type Table string

// The TPC-H tables.
const (
	Lineitem Table = "lineitem"
	Orders   Table = "orders"
	Partsupp Table = "partsupp"
	Part     Table = "part"
	Customer Table = "customer"
	Supplier Table = "supplier"
	Nation   Table = "nation"
	Region   Table = "region"
)

// tableStats holds per-scale-factor statistics: bytes and rows of each
// table per unit scale factor (SF 1 ≈ 1 GB total), from the TPC-H
// specification's dbgen output sizes.
var tableStats = map[Table]struct {
	bytesPerSF units.Bytes
	rowsPerSF  int64
}{
	Lineitem: {759 * units.MB, 6_001_215},
	Orders:   {171 * units.MB, 1_500_000},
	Partsupp: {118 * units.MB, 800_000},
	Part:     {24 * units.MB, 200_000},
	Customer: {24 * units.MB, 150_000},
	Supplier: {1400 * units.KB, 10_000},
	Nation:   {2 * units.KB, 25},
	Region:   {1 * units.KB, 5},
}

// Tables lists the base tables from largest to smallest.
func Tables() []Table {
	out := make([]Table, 0, len(tableStats))
	for t := range tableStats {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return tableStats[out[i]].bytesPerSF > tableStats[out[j]].bytesPerSF
	})
	return out
}

// Schema is a TPC-H database instance at a given scale factor.
type Schema struct {
	// ScaleFactor is the dbgen -s value; total size ≈ ScaleFactor GB.
	ScaleFactor float64
}

// PaperSchema returns the paper's instance: "we generate 80 GB input for
// 8 input tables" (§V-A), i.e. scale factor 80.
func PaperSchema() Schema { return Schema{ScaleFactor: 80} }

// Bytes returns the on-disk size of a table at this scale factor.
// Nation and region do not scale with SF; everything else does.
func (s Schema) Bytes(t Table) units.Bytes {
	st, ok := tableStats[t]
	if !ok {
		return 0
	}
	if t == Nation || t == Region {
		return st.bytesPerSF
	}
	return st.bytesPerSF.Scale(s.ScaleFactor)
}

// Rows returns the row count of a table at this scale factor.
func (s Schema) Rows(t Table) int64 {
	st, ok := tableStats[t]
	if !ok {
		return 0
	}
	if t == Nation || t == Region {
		return st.rowsPerSF
	}
	return int64(float64(st.rowsPerSF) * s.ScaleFactor)
}

// TotalBytes is the size of the whole instance.
func (s Schema) TotalBytes() units.Bytes {
	var sum units.Bytes
	for t := range tableStats {
		sum += s.Bytes(t)
	}
	return sum
}

// Validate rejects nonsensical scale factors.
func (s Schema) Validate() error {
	if s.ScaleFactor <= 0 {
		return fmt.Errorf("tpch: scale factor must be positive, got %g", s.ScaleFactor)
	}
	return nil
}
