// Package tuning applies the cost models to automatic configuration
// tuning of DAG workflows — the second follow-up application the paper's
// conclusion names ("apply our cost models in automatic tuning for DAG
// workflows") and the Starfish/MRTuner use case that motivated MapReduce
// cost models in the first place.
//
// The tuner searches per-job configuration knobs (reduce-task count,
// map-output compression, sort-buffer size) by coordinate descent,
// scoring every candidate with the state-based BOE estimator. One scoring
// call costs about a millisecond, so exploring hundreds of candidates is
// cheap — the property the paper's "Execution time" experiment (§V-C)
// establishes to justify exactly this application.
package tuning

import (
	"context"
	"fmt"
	"sort"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/evalpool"
	"boedag/internal/obs"
	"boedag/internal/sched"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Knob identifies one tunable job parameter.
type Knob int

const (
	// ReduceTasks tunes the reduce-task count (0.5×, 1×, 2×, 4×).
	ReduceTasks Knob = iota
	// Compression toggles map-output compression.
	Compression
	// SortBuffer tunes the map-side sort buffer (none/100 MB/400 MB).
	SortBuffer
	numKnobs
)

// String names the knob.
func (k Knob) String() string {
	switch k {
	case ReduceTasks:
		return "reduce-tasks"
	case Compression:
		return "compression"
	case SortBuffer:
		return "sort-buffer"
	}
	return fmt.Sprintf("knob(%d)", int(k))
}

// AllKnobs lists every knob.
func AllKnobs() []Knob { return []Knob{ReduceTasks, Compression, SortBuffer} }

// Options configure the tuner.
type Options struct {
	// Knobs restricts the search; empty means all.
	Knobs []Knob
	// Mode is the estimator's skew handling (default NormalMode).
	Mode statemodel.SkewMode
	// MaxPasses bounds the coordinate-descent sweeps (default 3).
	MaxPasses int
	// MinGain stops when a full pass improves the estimate by less than
	// this fraction (default 0.5 %).
	MinGain float64
	// TaskStartOverhead mirrors the executing system's container latency.
	TaskStartOverhead time.Duration
	// Observe attaches observability sinks to the scoring estimator —
	// every candidate evaluation's iterations and states become events.
	Observe obs.Options
	// Workers bounds how many candidate configurations are scored
	// concurrently within one coordinate (0 or 1 = serial). The estimator
	// is safe for concurrent calls and each candidate scores its own
	// workflow clone, so the recommendation is identical at any value.
	Workers int
	// DisableIncremental scores candidates on the estimator's from-scratch
	// reference path. Recommendations are identical either way by the
	// estimator's equivalence contract; this exists to verify exactly that.
	DisableIncremental bool
}

func (o Options) withDefaults() Options {
	if len(o.Knobs) == 0 {
		o.Knobs = AllKnobs()
	}
	if o.Mode == 0 {
		o.Mode = statemodel.NormalMode
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 3
	}
	if o.MinGain == 0 {
		o.MinGain = 0.005
	}
	if o.TaskStartOverhead == 0 {
		o.TaskStartOverhead = time.Second
	}
	return o
}

// Change records one accepted knob adjustment.
type Change struct {
	Job  string
	Knob Knob
	// From and To render the old and new values.
	From, To string
	// Gain is the fractional makespan improvement this change alone
	// contributed at the moment it was accepted.
	Gain float64
}

// Recommendation is the tuner's output.
type Recommendation struct {
	// Tuned is the workflow with every accepted change applied.
	Tuned *dag.Workflow
	// Changes lists accepted adjustments in acceptance order.
	Changes []Change
	// Baseline and Estimate are the estimated makespans before and after.
	Baseline, Estimate time.Duration
	// Evaluations counts scoring calls spent searching; CacheHits says how
	// many of them the plan cache answered without running the estimator
	// (coordinate descent re-visits configurations across passes).
	Evaluations int
	CacheHits   int
}

// Improvement is the overall fractional gain.
func (r *Recommendation) Improvement() float64 {
	if r.Baseline <= 0 {
		return 0
	}
	return 1 - r.Estimate.Seconds()/r.Baseline.Seconds()
}

// Tuner searches job configurations with the cost models. The scoring
// estimator and FIFO-ordering estimator are built once and reused for
// every candidate; plans are memoized by canonical workflow signature,
// so re-visited configurations (coordinate descent circles back across
// passes) cost a cache lookup instead of an estimator run.
type Tuner struct {
	spec    cluster.Spec
	opt     Options
	est     *statemodel.Estimator
	fifoEst *statemodel.Estimator
	cache   *evalpool.PlanCache
	evals   int
}

// New returns a tuner for the cluster.
func New(spec cluster.Spec, opt Options) *Tuner {
	opt = opt.withDefaults()
	timer := &statemodel.BOETimer{
		Model:             boe.New(spec),
		TaskStartOverhead: opt.TaskStartOverhead,
	}
	return &Tuner{
		spec: spec,
		opt:  opt,
		est: statemodel.New(spec, timer, statemodel.Options{
			Mode:               opt.Mode,
			Observe:            opt.Observe,
			DisableIncremental: opt.DisableIncremental,
		}),
		fifoEst: statemodel.New(spec, timer, statemodel.Options{
			Mode:               opt.Mode,
			Policy:             sched.PolicyFIFO,
			DisableIncremental: opt.DisableIncremental,
		}),
		cache: evalpool.NewPlanCache().WithMetrics(opt.Observe.Metrics),
	}
}

// Tune searches knob settings for every job of the workflow by
// coordinate descent: sweep jobs × knobs × candidate values, accept the
// best value per coordinate, and repeat until a pass stops paying.
// The input workflow is not modified.
func (t *Tuner) Tune(flow *dag.Workflow) (*Recommendation, error) {
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	current := cloneFlow(flow)
	hits0, _ := t.cache.Stats()
	base, err := t.score(current)
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{Baseline: base, Estimate: base}

	for pass := 0; pass < t.opt.MaxPasses; pass++ {
		passStart := rec.Estimate
		for ji := range current.Jobs {
			for _, knob := range t.opt.Knobs {
				change, err := t.tuneCoordinate(current, ji, knob, rec)
				if err != nil {
					return nil, err
				}
				if change != nil {
					rec.Changes = append(rec.Changes, *change)
				}
			}
		}
		gain := 1 - rec.Estimate.Seconds()/passStart.Seconds()
		if gain < t.opt.MinGain {
			break
		}
	}
	rec.Tuned = current
	rec.Evaluations = t.evals
	hits1, _ := t.cache.Stats()
	rec.CacheHits = int(hits1 - hits0)
	return rec, nil
}

// tuneCoordinate tries every candidate value of one knob on one job,
// keeping the best. Candidates are independent, so they are scored
// through the evaluation pool — each against its own workflow clone —
// and compared in candidate order: the strictly best score wins and ties
// go to the earliest candidate, making the outcome identical at any
// worker count. It mutates current in place when it accepts.
func (t *Tuner) tuneCoordinate(current *dag.Workflow, ji int, knob Knob, rec *Recommendation) (*Change, error) {
	job := &current.Jobs[ji]
	original := job.Profile
	baseline := rec.Estimate

	cands := candidates(original, knob)
	if len(cands) == 0 {
		return nil, nil
	}
	jobs := make([]func() (time.Duration, error), len(cands))
	for i, cand := range cands {
		cand := cand
		jobs[i] = func() (time.Duration, error) {
			trial := cloneFlow(current)
			trial.Jobs[ji].Profile = cand.profile
			return t.scoreCached(trial)
		}
	}
	workers := t.opt.Workers
	if workers < 1 {
		workers = 1
	}
	scores, err := evalpool.RunObserved(context.Background(), jobs, evalpool.Options{
		Workers: workers,
		Label:   "tune",
		Observe: t.opt.Observe,
	})
	t.evals += len(cands)
	if err != nil {
		return nil, err
	}

	bestProfile := original
	bestScore := baseline
	bestDesc := ""
	for i, score := range scores {
		if score < bestScore {
			bestScore = score
			bestProfile = cands[i].profile
			bestDesc = cands[i].desc
		}
	}
	job.Profile = bestProfile
	if bestDesc == "" {
		return nil, nil
	}
	rec.Estimate = bestScore
	return &Change{
		Job:  job.ID,
		Knob: knob,
		From: describe(original, knob),
		To:   bestDesc,
		Gain: 1 - bestScore.Seconds()/baseline.Seconds(),
	}, nil
}

type candidate struct {
	profile workload.JobProfile
	desc    string
}

// candidates enumerates alternative values for a knob, excluding the
// current setting.
func candidates(p workload.JobProfile, knob Knob) []candidate {
	var out []candidate
	switch knob {
	case ReduceTasks:
		if p.ReduceTasks == 0 {
			return nil // map-only jobs have nothing to tune here
		}
		for _, f := range []float64{0.5, 2, 4} {
			n := int(float64(p.ReduceTasks) * f)
			if n < 1 || n == p.ReduceTasks || n > 999 {
				continue
			}
			c := p
			c.ReduceTasks = n
			out = append(out, candidate{c, fmt.Sprint(n)})
		}
	case Compression:
		c := p
		if p.Compression.Enabled {
			c.Compression = workload.Compression{}
			out = append(out, candidate{c, "off"})
		} else {
			c.Compression = workload.Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.4}
			out = append(out, candidate{c, "on(0.4)"})
		}
	case SortBuffer:
		for _, mb := range []units.Bytes{0, 100 * units.MB, 400 * units.MB} {
			if mb == p.SortBufferBytes {
				continue
			}
			c := p
			c.SortBufferBytes = mb
			out = append(out, candidate{c, mb.String()})
		}
	}
	return out
}

// describe renders a knob's current value.
func describe(p workload.JobProfile, knob Knob) string {
	switch knob {
	case ReduceTasks:
		return fmt.Sprint(p.ReduceTasks)
	case Compression:
		if p.Compression.Enabled {
			return fmt.Sprintf("on(%.1f)", p.Compression.Ratio)
		}
		return "off"
	case SortBuffer:
		return p.SortBufferBytes.String()
	}
	return "?"
}

// score estimates the workflow's makespan, counting the evaluation. Only
// serial call sites may use it; pool workers go through scoreCached.
func (t *Tuner) score(flow *dag.Workflow) (time.Duration, error) {
	t.evals++
	return t.scoreCached(flow)
}

// scoreCached estimates the workflow's makespan through the plan cache,
// so configurations the coordinate descent re-visits cost a lookup. It
// is safe for concurrent use; evaluation counting is the caller's job.
func (t *Tuner) scoreCached(flow *dag.Workflow) (time.Duration, error) {
	plan, err := t.cache.Estimate(t.est, flow)
	if err != nil {
		return 0, err
	}
	return plan.Makespan, nil
}

// cloneFlow deep-copies a workflow so tuning never mutates the caller's.
func cloneFlow(w *dag.Workflow) *dag.Workflow {
	out := &dag.Workflow{Name: w.Name, Jobs: make([]dag.Job, len(w.Jobs))}
	for i, j := range w.Jobs {
		nj := j
		nj.Deps = append([]string(nil), j.Deps...)
		out.Jobs[i] = nj
	}
	return out
}

// SortChangesByGain orders changes with the largest gains first, for
// reports.
func SortChangesByGain(changes []Change) {
	sort.Slice(changes, func(a, b int) bool { return changes[a].Gain > changes[b].Gain })
}
