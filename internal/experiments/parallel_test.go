package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// renderAll runs a representative experiment set at the given worker
// count and renders every table into one buffer. Wall-clock fields
// (Table III's estimation overhead) are stripped so runs compare
// byte-for-byte.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	cfg := testConfig()
	cfg.Workers = workers
	var buf bytes.Buffer

	rows1, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable1(&buf, rows1)

	series, err := Figure6(cfg, Figure6Options{MaxPerNode: 6})
	if err != nil {
		t.Fatal(err)
	}
	RenderFigure6(&buf, series)

	flows, err := TableIIIWorkflows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var subset []NamedWorkflow
	for _, f := range flows {
		switch f.Label {
		case "TS-Q6", "WC-Q1", "WC-TS":
			subset = append(subset, f)
		}
	}
	sum, err := Table3For(cfg, subset)
	if err != nil {
		t.Fatal(err)
	}
	RenderTable3(&buf, sum)

	srows, err := SkewSweep(cfg, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	RenderSkewSweep(&buf, srows)

	var out []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "max estimation overhead:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestParallelExperimentsDeterministic is the engine's core guarantee:
// rendered tables are byte-identical at every worker count, because pool
// results come back in input order and only event interleaving varies.
func TestParallelExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment suite three times")
	}
	serial := renderAll(t, 1)
	if serial == "" {
		t.Fatal("serial run rendered nothing")
	}
	for _, workers := range []int{2, 8} {
		if got := renderAll(t, workers); got != serial {
			t.Errorf("workers=%d rendered different bytes than serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

// BenchmarkSweepParallel measures the wall-clock of one Figure 6 sweep
// at 1 and 4 workers — the speedup the parallel engine exists for.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(b *testing.B) {
			cfg := testConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := Figure6(cfg, Figure6Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
