package simulator

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func spec() cluster.Spec { return cluster.PaperCluster() }

func wcFlow(gb int) *dag.Workflow {
	return dag.Single(workload.WordCount(units.Bytes(gb) * units.GB))
}

func run(t *testing.T, flow *dag.Workflow, opt Options) *Result {
	t.Helper()
	res, err := New(spec(), opt).Run(flow)
	if err != nil {
		t.Fatalf("Run(%s): %v", flow.Name, err)
	}
	return res
}

func TestRejectsInvalidWorkflow(t *testing.T) {
	_, err := New(spec(), Options{}).Run(&dag.Workflow{Name: "empty"})
	if err == nil {
		t.Fatal("empty workflow accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := run(t, wcFlow(5), Options{Seed: 7})
	b := run(t, wcFlow(5), Options{Seed: 7})
	if a.Makespan != b.Makespan {
		t.Errorf("same seed, different makespans: %v vs %v", a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Tasks, b.Tasks) {
		t.Error("same seed, different task records")
	}
	c := run(t, wcFlow(5), Options{Seed: 8})
	if reflect.DeepEqual(a.Tasks, c.Tasks) {
		t.Error("different seeds produced identical skew")
	}
}

func TestTaskCountsMatchProfile(t *testing.T) {
	p := workload.WordCount(5 * units.GB)
	res := run(t, dag.Single(p), Options{})
	if got := len(res.TasksOf(p.Name, workload.Map)); got != p.MapTasks() {
		t.Errorf("map tasks = %d, want %d", got, p.MapTasks())
	}
	if got := len(res.TasksOf(p.Name, workload.Reduce)); got != p.ReduceTasks {
		t.Errorf("reduce tasks = %d, want %d", got, p.ReduceTasks)
	}
}

func TestTaskRecordInvariants(t *testing.T) {
	res := run(t, wcFlow(5), Options{})
	overhead := time.Second // default TaskStartOverhead
	for _, task := range res.Tasks {
		if task.End <= task.Start {
			t.Fatalf("task %s/%d: End %v <= Start %v", task.Job, task.Index, task.End, task.Start)
		}
		var sub time.Duration
		for _, d := range task.SubStages {
			if d < 0 {
				t.Fatalf("task %s/%d: negative sub-stage %v", task.Job, task.Index, d)
			}
			sub += d
		}
		total := task.Duration()
		if diff := total - overhead - sub; diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("task %s/%d: sub-stages (%v) + overhead != duration (%v)",
				task.Job, task.Index, sub, total)
		}
		if task.SizeFactor <= 0 {
			t.Fatalf("task %s/%d: size factor %v", task.Job, task.Index, task.SizeFactor)
		}
	}
}

func TestReduceStartsAfterAllMaps(t *testing.T) {
	p := workload.WordCount(5 * units.GB)
	res := run(t, dag.Single(p), Options{})
	mapEnd := time.Duration(0)
	for _, task := range res.TasksOf(p.Name, workload.Map) {
		if task.End > mapEnd {
			mapEnd = task.End
		}
	}
	for _, task := range res.TasksOf(p.Name, workload.Reduce) {
		if task.Start < mapEnd {
			t.Fatalf("reduce task %d started %v before last map ended %v",
				task.Index, task.Start, mapEnd)
		}
	}
}

func TestDependenciesRespected(t *testing.T) {
	a := workload.WordCount(2 * units.GB)
	a.Name = "A"
	b := workload.TeraSort(2 * units.GB)
	b.Name = "B"
	flow := &dag.Workflow{Name: "chain", Jobs: []dag.Job{
		{ID: "A", Profile: a},
		{ID: "B", Profile: b, Deps: []string{"A"}},
	}}
	res := run(t, flow, Options{})
	_, aEnd, ok := res.JobSpan("A")
	if !ok {
		t.Fatal("job A missing")
	}
	bStart, _, ok := res.JobSpan("B")
	if !ok {
		t.Fatal("job B missing")
	}
	if bStart < aEnd {
		t.Errorf("B started at %v before A finished at %v", bStart, aEnd)
	}
	// The submit overhead must separate them.
	if gap := bStart - aEnd; gap < 1900*time.Millisecond {
		t.Errorf("A→B gap %v, want ≥ job submit overhead (2s)", gap)
	}
}

func TestParallelismCapRespected(t *testing.T) {
	p := workload.WordCount(10 * units.GB)
	res := run(t, dag.Single(p), Options{
		ParallelismCaps: map[string]int{p.Name: 9},
	})
	s := res.StageOf(p.Name, workload.Map)
	if s == nil {
		t.Fatal("no map stage")
	}
	if s.MaxParallelism > 9 {
		t.Errorf("peak parallelism %d exceeds cap 9", s.MaxParallelism)
	}
}

func TestSlotLimitRespected(t *testing.T) {
	res := run(t, wcFlow(10), Options{SlotLimit: 11})
	for _, s := range res.Stages {
		if s.MaxParallelism > 11 {
			t.Errorf("stage %s/%s peak %d exceeds slot limit 11", s.Job, s.Stage, s.MaxParallelism)
		}
	}
}

func TestDisableSkewEvensTasks(t *testing.T) {
	res := run(t, wcFlow(5), Options{DisableSkew: true})
	for _, task := range res.Tasks {
		if math.Abs(task.SizeFactor-1) > 1e-9 {
			t.Fatalf("task %s/%d size factor %v with skew disabled", task.Job, task.Index, task.SizeFactor)
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	p := workload.WordCount(2 * units.GB)
	p.ReduceTasks = 0
	res := run(t, dag.Single(p), Options{})
	if s := res.StageOf(p.Name, workload.Reduce); s != nil {
		t.Error("map-only job produced a reduce stage")
	}
	if s := res.StageOf(p.Name, workload.Map); s == nil || s.Duration() <= 0 {
		t.Error("map stage missing or empty")
	}
}

func TestStatesPartitionTheRun(t *testing.T) {
	res := run(t, wcFlow(5), Options{})
	if len(res.States) == 0 {
		t.Fatal("no states recorded")
	}
	for i, st := range res.States {
		if st.Duration() <= 0 {
			t.Errorf("state %d has non-positive duration", st.Seq)
		}
		if st.Seq != i+1 {
			t.Errorf("state seq %d at index %d", st.Seq, i)
		}
		if i > 0 && st.Start < res.States[i-1].End {
			t.Errorf("state %d overlaps previous", st.Seq)
		}
		if len(st.Running) == 0 {
			t.Errorf("state %d has no running stages", st.Seq)
		}
	}
	last := res.States[len(res.States)-1]
	if last.End != res.Makespan {
		t.Errorf("last state ends at %v, makespan %v", last.End, res.Makespan)
	}
}

func TestStageRecordsConsistent(t *testing.T) {
	res := run(t, wcFlow(5), Options{})
	for _, s := range res.Stages {
		if s.End <= s.Start {
			t.Errorf("stage %s/%s: End %v <= Start %v", s.Job, s.Stage, s.End, s.Start)
		}
		if len(s.TaskTimes) == 0 {
			t.Errorf("stage %s/%s: no task times", s.Job, s.Stage)
		}
		if s.MaxParallelism <= 0 {
			t.Errorf("stage %s/%s: no parallelism recorded", s.Job, s.Stage)
		}
		if s.MedianTaskTime() <= 0 || s.MeanTaskTime() <= 0 {
			t.Errorf("stage %s/%s: degenerate task stats", s.Job, s.Stage)
		}
	}
}

func TestMakespanIsLastTaskEnd(t *testing.T) {
	res := run(t, wcFlow(5), Options{})
	var last time.Duration
	for _, task := range res.Tasks {
		if task.End > last {
			last = task.End
		}
	}
	if res.Makespan != last {
		t.Errorf("makespan %v != last task end %v", res.Makespan, last)
	}
}

func TestHigherParallelismNeverSlower(t *testing.T) {
	slow := run(t, wcFlow(10), Options{SlotLimit: 22, DisableSkew: true})
	fast := run(t, wcFlow(10), Options{SlotLimit: 132, DisableSkew: true})
	if fast.Makespan > slow.Makespan {
		t.Errorf("more slots made the job slower: %v (132) vs %v (22)", fast.Makespan, slow.Makespan)
	}
}

func TestLargerInputTakesLonger(t *testing.T) {
	small := run(t, wcFlow(2), Options{DisableSkew: true})
	big := run(t, wcFlow(8), Options{DisableSkew: true})
	if big.Makespan <= small.Makespan {
		t.Errorf("4x input not slower: %v vs %v", big.Makespan, small.Makespan)
	}
}

func TestParallelJobsShareFairly(t *testing.T) {
	flow := dag.Parallel("pair",
		dag.Single(workload.WordCount(20*units.GB)),
		dag.Single(workload.TeraSort(20*units.GB)))
	res := run(t, flow, Options{})
	// During the joint map phase both jobs should reach roughly half the
	// slots.
	for _, job := range []string{"WC/WC", "TS/TS"} {
		s := res.StageOf(job, workload.Map)
		if s == nil {
			t.Fatalf("missing map stage for %s", job)
		}
		if s.MaxParallelism < 60 || s.MaxParallelism > 90 {
			t.Errorf("%s map peaked at %d, want ≈ 66 (fair split of 132)", job, s.MaxParallelism)
		}
	}
}

func TestResultStringMentionsEverything(t *testing.T) {
	res := run(t, wcFlow(2), Options{})
	s := res.String()
	if s == "" || res.Workflow != "WC" {
		t.Errorf("String() = %q", s)
	}
}

// Property: for any input size and seed, the simulator's per-stage task
// durations are positive, the stage windows nest inside the makespan, and
// total simulated time is finite.
func TestSimulationSanityProperty(t *testing.T) {
	f := func(gb, seed uint8) bool {
		p := workload.TeraSort(units.Bytes(gb%8+1) * units.GB)
		res, err := New(spec(), Options{Seed: int64(seed)}).Run(dag.Single(p))
		if err != nil {
			return false
		}
		for _, s := range res.Stages {
			if s.Start < 0 || s.End > res.Makespan {
				return false
			}
			for _, tt := range s.TaskTimes {
				if tt <= 0 {
					return false
				}
			}
		}
		return res.Makespan > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSizeFactors(t *testing.T) {
	fs := sizeFactors(100, 0.2, 42)
	sum := 0.0
	for _, f := range fs {
		if f < 0.2 || f > 3 {
			t.Fatalf("factor %v outside truncation bounds", f)
		}
		sum += f
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("factors sum to %v, want 100 (mass preserved)", sum)
	}
	flat := sizeFactors(10, 0, 42)
	for _, f := range flat {
		if f != 1 {
			t.Errorf("cv=0 factor %v, want 1", f)
		}
	}
	if got := sizeFactors(0, 0.5, 1); len(got) != 0 {
		t.Errorf("n=0 returned %v", got)
	}
}

func TestHashSeedStable(t *testing.T) {
	a := hashSeed(1, "job/map")
	b := hashSeed(1, "job/map")
	c := hashSeed(1, "job/reduce")
	d := hashSeed(2, "job/map")
	if a != b {
		t.Error("hashSeed not deterministic")
	}
	if a == c || a == d {
		t.Error("hashSeed collisions across labels/seeds")
	}
	if a < 0 {
		t.Error("hashSeed returned negative")
	}
}

func TestFailureInjection(t *testing.T) {
	clean := run(t, wcFlow(5), Options{Seed: 3})
	faulty := run(t, wcFlow(5), Options{Seed: 3, TaskFailureProb: 0.3})
	if clean.TotalRetries() != 0 {
		t.Errorf("clean run has %d retries", clean.TotalRetries())
	}
	if faulty.TotalRetries() == 0 {
		t.Fatal("30%% failure probability produced no retries")
	}
	if faulty.Makespan <= clean.Makespan {
		t.Errorf("failures did not slow the run: %v vs %v", faulty.Makespan, clean.Makespan)
	}
	// Roughly 30% of tasks should have retried (one attempt each).
	frac := float64(faulty.TotalRetries()) / float64(len(faulty.Tasks))
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("retry fraction %.2f, want ≈ 0.3", frac)
	}
	// Determinism under failures.
	again := run(t, wcFlow(5), Options{Seed: 3, TaskFailureProb: 0.3})
	if again.Makespan != faulty.Makespan || again.TotalRetries() != faulty.TotalRetries() {
		t.Error("failure injection not deterministic")
	}
}

func TestFailureInjectionAllStagesComplete(t *testing.T) {
	p := workload.TeraSort(3 * units.GB)
	res := run(t, dag.Single(p), Options{Seed: 5, TaskFailureProb: 0.5})
	if got := len(res.TasksOf(p.Name, workload.Map)); got != p.MapTasks() {
		t.Errorf("map tasks completed = %d, want %d despite failures", got, p.MapTasks())
	}
	if got := len(res.TasksOf(p.Name, workload.Reduce)); got != p.ReduceTasks {
		t.Errorf("reduce tasks completed = %d, want %d despite failures", got, p.ReduceTasks)
	}
}

func TestNodeAwareMode(t *testing.T) {
	agg := run(t, wcFlow(10), Options{Seed: 2})
	node := run(t, wcFlow(10), Options{Seed: 2, NodeAware: true})
	if node.Makespan <= 0 {
		t.Fatal("node-aware run produced nothing")
	}
	// Same workload, same physics in aggregate: the two modes should land
	// within ~25% of each other (placement imbalance is the difference).
	ratio := node.Makespan.Seconds() / agg.Makespan.Seconds()
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("node-aware makespan %v vs aggregate %v (ratio %.2f)",
			node.Makespan, agg.Makespan, ratio)
	}
	if got := len(node.Tasks); got != len(agg.Tasks) {
		t.Errorf("task counts differ: %d vs %d", got, len(agg.Tasks))
	}
	// Determinism.
	again := run(t, wcFlow(10), Options{Seed: 2, NodeAware: true})
	if again.Makespan != node.Makespan {
		t.Error("node-aware mode not deterministic")
	}
}

func TestLeastLoaded(t *testing.T) {
	if got := leastLoaded([]int{3, 1, 2}); got != 1 {
		t.Errorf("leastLoaded = %d, want 1", got)
	}
	if got := leastLoaded([]int{2, 2, 2}); got != 0 {
		t.Errorf("tie leastLoaded = %d, want 0", got)
	}
}

func TestStateUtilizationRecorded(t *testing.T) {
	res := run(t, wcFlow(10), Options{})
	if len(res.States) == 0 {
		t.Fatal("no states")
	}
	mapState := res.States[0]
	// The WC map phase saturates CPU on the oversubscribed cluster.
	if got := mapState.Utilization[cluster.CPU]; got < 0.8 {
		t.Errorf("map-state CPU utilization %.2f, want ≥ 0.8", got)
	}
	if mapState.DominantResource() != cluster.CPU {
		t.Errorf("map-state dominant resource = %s, want cpu", mapState.DominantResource())
	}
	for _, st := range res.States {
		for _, r := range cluster.Resources() {
			if u := st.Utilization[r]; u < 0 || u > 1.000001 {
				t.Errorf("state %d %s utilization %v out of range", st.Seq, r, u)
			}
		}
	}
}
