package schedtest

import (
	"strings"
	"testing"

	"boedag/internal/sched"
)

// The generators must be deterministic in the seed and must emit valid
// inputs; the checks must actually fail on violations (a checker that
// cannot fail protects nothing).

func TestGeneratorDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	sa, sb := a.Scenario(), b.Scenario()
	if FormatAllocation(sa.Held) != FormatAllocation(sb.Held) ||
		len(sa.Requests) != len(sb.Requests) || len(sa.Specs) != len(sb.Specs) {
		t.Fatal("same seed produced different scenarios")
	}
	if New(7).Uint64() == New(8).Uint64() {
		t.Fatal("different seeds collided on the first draw")
	}
}

func TestGeneratedScenariosAreValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := New(seed).Scenario()
		if len(s.Requests) == 0 {
			t.Fatalf("seed %d: empty request set", seed)
		}
		if s.Specs != nil {
			if _, err := sched.NewHierarchy(s.Specs); err != nil {
				t.Fatalf("seed %d: generator emitted invalid queue tree: %v", seed, err)
			}
		}
		// Held must be consistent with pool and caps by construction.
		if err := CheckGrants(s.Pool, s.Requests, s.Held, nil); err != nil {
			t.Fatalf("seed %d: generated held is inconsistent: %v", seed, err)
		}
	}
}

func TestChecksRejectViolations(t *testing.T) {
	pool := sched.Pool{MemoryMB: 4096, VCores: 4, Slots: 4}
	reqs := []sched.Request{{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 10, Cap: 2}}

	cases := []struct {
		name string
		err  error
		want string
	}{
		{"over pending", CheckGrants(pool, reqs, nil, sched.Allocation{"a": 11}), "exceeds pending"},
		{"over cap", CheckGrants(pool, reqs, sched.Allocation{"a": 1}, sched.Allocation{"a": 2}), "exceeds cap"},
		{"negative", CheckGrants(pool, reqs, nil, sched.Allocation{"a": -1}), "negative"},
		{"unknown job", CheckGrants(pool, reqs, nil, sched.Allocation{"ghost": 1}), "unknown job"},
		{"over slots", CheckGrants(pool, []sched.Request{{JobID: "a", MemoryMB: 1, VCores: 1, Pending: 10}},
			nil, sched.Allocation{"a": 5}), "over-committed"},
		{"idle capacity", CheckWorkConservation(pool, reqs, nil, sched.Allocation{"a": 1}), "capacity idles"},
	}
	for _, c := range cases {
		if c.err == nil || !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, c.err, c.want)
		}
	}
	if err := CheckGrants(pool, reqs, nil, sched.Allocation{"a": 2}); err != nil {
		t.Errorf("valid grant rejected: %v", err)
	}
	if err := CheckWorkConservation(pool, reqs, nil, sched.Allocation{"a": 2}); err != nil {
		t.Errorf("cap-satisfied job flagged: %v", err)
	}
}

func TestHierarchyChecksRejectViolations(t *testing.T) {
	pool := sched.Pool{MemoryMB: 8192, VCores: 8, Slots: 8}
	specs := []sched.QueueSpec{
		{Name: "q", Quota: sched.QueueLimit{Slots: 2}, Limit: sched.QueueLimit{Slots: 3}},
	}
	h, err := sched.NewHierarchy(specs)
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{
		Pool:      pool,
		Specs:     specs,
		Hierarchy: h,
		Requests:  []sched.Request{{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 10, Queue: "q"}},
		Held:      sched.Allocation{"a": 1},
	}
	if err := CheckHierarchy(s, sched.HierResult{Grants: sched.Allocation{"a": 4}}); err == nil ||
		!strings.Contains(err.Error(), "over limit") {
		t.Errorf("limit breach not caught: %v", err)
	}
	if err := CheckHierarchy(s, sched.HierResult{Evict: sched.Allocation{"a": 2}}); err == nil ||
		!strings.Contains(err.Error(), "evicted") {
		t.Errorf("over-eviction not caught: %v", err)
	}
	flat := s
	flat.Hierarchy = nil
	if err := CheckHierarchy(flat, sched.HierResult{Evict: sched.Allocation{"a": 1}}); err == nil ||
		!strings.Contains(err.Error(), "flat") {
		t.Errorf("flat eviction not caught: %v", err)
	}
	gang := s
	gang.Requests = []sched.Request{{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 10, Gang: 3, Queue: "q"}}
	gang.Held = nil
	if err := CheckHierarchy(gang, sched.HierResult{Grants: sched.Allocation{"a": 2}}); err == nil ||
		!strings.Contains(err.Error(), "gang") {
		t.Errorf("partial gang not caught: %v", err)
	}
	// Quota-safe eviction: evicting the only container of a fully
	// quota-protected job must be flagged.
	prot := s
	prot.Held = sched.Allocation{"a": 1}
	if err := CheckQuotaSafeEviction(prot, sched.HierResult{Evict: sched.Allocation{"a": 1}}); err == nil ||
		!strings.Contains(err.Error(), "quota") {
		t.Errorf("quota-cutting eviction not caught: %v", err)
	}
	if err := CheckHierarchy(s, sched.HierResult{Grants: sched.Allocation{"a": 2}}); err != nil {
		t.Errorf("valid hierarchical result rejected: %v", err)
	}
}

func TestStreamGenerator(t *testing.T) {
	r := New(3)
	pool := r.Pool()
	jobs := r.Stream(25, pool)
	if len(jobs) != 25 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	last := -1.0
	deadlines := 0
	for _, j := range jobs {
		if j.Submit < last {
			t.Fatal("arrivals not time-ordered")
		}
		last = j.Submit
		if j.Work <= 0 || j.MaxParallelism <= 0 || j.Predicted <= 0 {
			t.Fatalf("degenerate job: %+v", j)
		}
		if j.MaxParallelism > pool.Slots {
			t.Fatalf("job wider than the pool: %+v", j)
		}
		if j.Deadline > 0 {
			deadlines++
		}
	}
	if deadlines == 0 {
		t.Fatal("no deadlines in a 25-job stream: SLO metrics would be vacuous")
	}
	if p := r.Permute(nil); len(p) != 0 {
		t.Fatal("permute nil")
	}
}
