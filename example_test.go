package boedag_test

import (
	"fmt"
	"time"

	"boedag"
)

// ExampleBOEModel_TaskTime reproduces the paper's core observation: the
// same Word Count map task slows down once the cluster's six cores per
// node are oversubscribed, and the BOE model names the bottleneck.
func ExampleBOEModel_TaskTime() {
	spec := boedag.PaperCluster()
	model := boedag.NewBOE(spec)
	wc := boedag.WordCount(100 * boedag.GB)

	low := model.TaskTime(wc, boedag.Map, 6*spec.Nodes)
	high := model.TaskTime(wc, boedag.Map, 12*spec.Nodes)
	fmt.Printf("6 tasks/node:  %s\n", low)
	fmt.Printf("12 tasks/node: %s\n", high)
	// Output:
	// 6 tasks/node:  map 7.9s [cpu]
	// 12 tasks/node: map 15.8s [cpu]
}

// ExampleSimulator_deterministic shows that simulation runs are exactly
// reproducible for a given seed.
func ExampleSimulator_deterministic() {
	spec := boedag.PaperCluster()
	flow := boedag.Single(boedag.TeraSort(10 * boedag.GB))

	a, _ := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 7}).Run(flow)
	b, _ := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 7}).Run(flow)
	fmt.Println(a.Makespan == b.Makespan)
	// Output:
	// true
}

// ExampleTPCHQuery shows the Hive-style compilation of a TPC-H query
// into a DAG of MapReduce jobs — Q21 is the paper's nine-job example.
func ExampleTPCHQuery() {
	q21, err := boedag.TPCHQuery(21, boedag.PaperTPCHSchema())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Q21 compiles to %d jobs\n", len(q21.Jobs))
	roots := q21.Roots()
	fmt.Printf("%d jobs can start immediately\n", len(roots))
	// Output:
	// Q21 compiles to 9 jobs
	// 4 jobs can start immediately
}

// ExampleEstimator_Estimate predicts a workflow end to end and reports
// the paper's accuracy metric against a simulated run.
func ExampleEstimator_Estimate() {
	spec := boedag.PaperCluster()
	flow := boedag.Single(boedag.WordCount(20 * boedag.GB))

	timer := &boedag.BOETimer{Model: boedag.NewBOE(spec), TaskStartOverhead: time.Second}
	est := boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: boedag.NormalMode})
	plan, _ := est.Estimate(flow)
	res, _ := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 1}).Run(flow)

	fmt.Printf("accuracy ≥ 90%%: %v\n", boedag.Accuracy(plan.Makespan, res.Makespan) >= 0.9)
	// Output:
	// accuracy ≥ 90%: true
}

// ExampleTranslateSpark compiles a Spark-style lineage onto the same
// models, backing the paper's generality claim.
func ExampleTranslateSpark() {
	flow, err := boedag.TranslateSpark(boedag.SparkPageRank(5*boedag.GB, 3))
	if err != nil {
		fmt.Println(err)
		return
	}
	order, _ := flow.TopoOrder()
	fmt.Println(order)
	// Output:
	// [edges rank1 rank2 rank3]
}
