package sched_test

import (
	"fmt"
	"testing"

	"boedag/internal/sched"
	"boedag/internal/sched/schedtest"
)

// FuzzHierarchyAllocate drives AllocateHierarchy with a generator
// scenario (the property-suite corpus seeds it) plus a raw mutation
// stream that patches pools, quotas, limits, weights, gangs, holdings,
// and queue names — including nonsense values far outside the valid
// envelope. The contract under fuzz: never panic, never loop forever;
// and whenever the mutated input is still well-formed, the full
// hierarchical invariant suite must hold (grants ≤ pending, allocation
// ≤ capacity, limits, gangs, evictions ⊆ held).
func FuzzHierarchyAllocate(f *testing.F) {
	for seed := int64(0); seed < 24; seed++ {
		f.Add(seed, []byte(nil))
		f.Add(seed, []byte{byte(seed), 0xff, 0x03, 7, 9, 200, 1, 0, 0})
	}
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		r := schedtest.New(seed)
		s := r.Scenario()
		mutate(&s, raw)

		h := s.Hierarchy
		if s.Specs != nil {
			var err error
			h, err = sched.NewHierarchy(s.Specs)
			if err != nil {
				return // invalid trees are NewHierarchy's to reject, not ours to allocate
			}
			s.Hierarchy = h
		}
		res := sched.AllocateHierarchy(s.Pool, h, s.Requests, s.Held)
		if !sane(s) {
			return // garbage in: only the no-panic/termination contract applies
		}
		if err := schedtest.CheckHierarchy(s, res); err != nil {
			t.Fatalf("seed %d raw %x: %v", seed, raw, err)
		}
	})
}

// mutate applies the raw byte stream as patch ops over the scenario.
func mutate(s *schedtest.Scenario, raw []byte) {
	for i := 0; i+2 < len(raw); i += 3 {
		op, idx, val := raw[i], int(raw[i+1]), int(raw[i+2])
		switch op % 12 {
		case 0:
			s.Pool.Slots = val - 64
		case 1:
			s.Pool.MemoryMB = (val - 64) * 1024
		case 2:
			s.Pool.VCores = val - 64
		case 3:
			if len(s.Requests) > 0 {
				s.Requests[idx%len(s.Requests)].Pending = val - 64
			}
		case 4:
			if len(s.Requests) > 0 {
				s.Requests[idx%len(s.Requests)].Cap = val - 64
			}
		case 5:
			if len(s.Requests) > 0 {
				s.Requests[idx%len(s.Requests)].Gang = val - 64
			}
		case 6:
			if len(s.Requests) > 0 {
				s.Requests[idx%len(s.Requests)].Queue = fmt.Sprintf("q%d", val%8)
			}
		case 7:
			if len(s.Specs) > 0 {
				s.Specs[idx%len(s.Specs)].Quota.Slots = val - 64
			}
		case 8:
			if len(s.Specs) > 0 {
				s.Specs[idx%len(s.Specs)].Limit.Slots = val - 64
			}
		case 9:
			if len(s.Specs) > 0 {
				s.Specs[idx%len(s.Specs)].Weight = float64(val-64) / 8
			}
		case 10:
			if len(s.Requests) > 0 {
				id := s.Requests[idx%len(s.Requests)].JobID
				if s.Held == nil {
					s.Held = sched.Allocation{}
				}
				s.Held[id] = val - 64
			}
		case 11:
			if len(s.Requests) > 0 {
				s.Requests[idx%len(s.Requests)].Predicted = float64(val-64) * 3.5
			}
		}
	}
}

// sane reports whether the mutated scenario is still a well-formed
// allocator input (the envelope the invariant checks are stated over).
func sane(s schedtest.Scenario) bool {
	for _, q := range s.Requests {
		if q.MemoryMB < 0 || q.VCores < 0 || q.Pending < 0 || q.Cap < 0 || q.Gang < 0 {
			return false
		}
	}
	if s.Pool.MemoryMB < 0 || s.Pool.VCores < 0 || s.Pool.Slots < 0 {
		return false
	}
	for _, sp := range s.Specs {
		if sp.Quota.Slots < 0 || sp.Limit.Slots < 0 {
			return false
		}
	}
	// Held must be consistent: non-negative, within caps, within the pool.
	mem, cpu, slots := 0, 0, 0
	for _, q := range s.Requests {
		h := s.Held[q.JobID]
		if h < 0 || (q.Cap > 0 && h > q.Cap) {
			return false
		}
		mem += h * q.MemoryMB
		cpu += h * q.VCores
		slots += h
	}
	if s.Pool.MemoryMB > 0 && mem > s.Pool.MemoryMB ||
		s.Pool.VCores > 0 && cpu > s.Pool.VCores ||
		s.Pool.Slots > 0 && slots > s.Pool.Slots {
		return false
	}
	return true
}
