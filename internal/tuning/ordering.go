package tuning

import (
	"fmt"
	"time"

	"boedag/internal/dag"
)

// OrderRecommendation is the submission-order optimizer's output.
type OrderRecommendation struct {
	// Order lists root-job IDs in the recommended submission order.
	Order []string
	// Baseline and Estimate are the predicted makespans under the original
	// and recommended orders.
	Baseline, Estimate time.Duration
	// Evaluations counts estimator calls.
	Evaluations int
}

// Improvement is the fractional makespan gain.
func (r *OrderRecommendation) Improvement() float64 {
	if r.Baseline <= 0 {
		return 0
	}
	return 1 - r.Estimate.Seconds()/r.Baseline.Seconds()
}

// maxExhaustiveRoots bounds the factorial search; beyond it the optimizer
// greedily inserts jobs into the best position instead.
const maxExhaustiveRoots = 5

// OrderJobs finds a submission order for the workflow's root jobs that
// minimizes the estimated makespan under a FIFO scheduler — the paper's
// "runtime optimizations such as query re-writing" applied to job
// admission. Under DRF or Fair the order barely matters (shares are
// order-free); under FIFO it decides who waits, and the estimator is
// cheap enough (§V-C) to search outright: exhaustively for up to five
// roots, greedy best-insertion beyond.
func (t *Tuner) OrderJobs(flow *dag.Workflow) (*OrderRecommendation, error) {
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	roots := flow.Roots()
	if len(roots) < 2 {
		return nil, fmt.Errorf("tuning: workflow %q has %d root jobs; ordering needs at least 2",
			flow.Name, len(roots))
	}

	score := func(order []string) (time.Duration, error) {
		t.evals++
		plan, err := t.cache.Estimate(t.fifoEst, reorderRoots(flow, order))
		if err != nil {
			return 0, err
		}
		return plan.Makespan, nil
	}

	baseline, err := score(roots)
	if err != nil {
		return nil, err
	}
	rec := &OrderRecommendation{
		Order:    append([]string(nil), roots...),
		Baseline: baseline,
		Estimate: baseline,
	}

	try := func(order []string) error {
		m, err := score(order)
		if err != nil {
			return err
		}
		if m < rec.Estimate {
			rec.Estimate = m
			rec.Order = append(rec.Order[:0], order...)
		}
		return nil
	}

	if len(roots) <= maxExhaustiveRoots {
		if err := permute(append([]string(nil), roots...), 0, try); err != nil {
			return nil, err
		}
	} else {
		// Greedy best-insertion: place each job at the position that keeps
		// the running estimate smallest.
		order := []string{roots[0]}
		for _, id := range roots[1:] {
			bestPos, bestM := 0, time.Duration(1<<62)
			for pos := 0; pos <= len(order); pos++ {
				cand := insertAt(order, id, pos)
				// Score partial orders against the full workflow: absent
				// roots keep their original relative order at the end.
				full := append(append([]string(nil), cand...), remainder(roots, cand)...)
				m, err := score(full)
				if err != nil {
					return nil, err
				}
				if m < bestM {
					bestM, bestPos = m, pos
				}
			}
			order = insertAt(order, id, bestPos)
		}
		if err := try(order); err != nil {
			return nil, err
		}
	}
	rec.Evaluations = t.evals
	return rec, nil
}

// reorderRoots rewrites the workflow with root jobs declared in the given
// order (declaration order is submission order for simultaneous roots).
func reorderRoots(flow *dag.Workflow, order []string) *dag.Workflow {
	pos := make(map[string]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	out := &dag.Workflow{Name: flow.Name}
	// Roots first, in the requested order…
	for _, id := range order {
		if j := flow.Job(id); j != nil {
			out.Jobs = append(out.Jobs, *j)
		}
	}
	// …then everything else in original order.
	for _, j := range flow.Jobs {
		if _, isRoot := pos[j.ID]; !isRoot {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// permute enumerates permutations of s in place (Heap's algorithm),
// invoking visit on each.
func permute(s []string, k int, visit func([]string) error) error {
	if k == len(s)-1 {
		return visit(s)
	}
	for i := k; i < len(s); i++ {
		s[k], s[i] = s[i], s[k]
		if err := permute(s, k+1, visit); err != nil {
			return err
		}
		s[k], s[i] = s[i], s[k]
	}
	return nil
}

func insertAt(s []string, v string, pos int) []string {
	out := make([]string, 0, len(s)+1)
	out = append(out, s[:pos]...)
	out = append(out, v)
	return append(out, s[pos:]...)
}

func remainder(all, have []string) []string {
	seen := make(map[string]bool, len(have))
	for _, id := range have {
		seen[id] = true
	}
	var out []string
	for _, id := range all {
		if !seen[id] {
			out = append(out, id)
		}
	}
	return out
}
