package boedag_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"

	"boedag"
)

// ExampleNewServer runs the prediction daemon on an ephemeral port,
// submits a batch of what-if scenarios over plain HTTP, and prints the
// predicted makespans. This is the whole client protocol: one POST, JSON
// in, JSON out.
func ExampleNewServer() {
	srv, err := boedag.NewServer(boedag.ServerConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	batch := `{"scenarios": [
		{"workflow": "wc",    "options": {"micro_gb": 5}},
		{"workflow": "ts",    "options": {"micro_gb": 5}},
		{"workflow": "wc+ts", "options": {"micro_gb": 5}}
	]}`
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/batch",
		"application/json", strings.NewReader(batch))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()

	var out struct {
		Results []struct {
			Estimate struct {
				Workflow  string  `json:"workflow"`
				MakespanS float64 `json:"makespan_s"`
			} `json:"estimate"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range out.Results {
		fmt.Printf("%-5s %.3fs\n", r.Estimate.Workflow, r.Estimate.MakespanS)
	}

	cancel() // drain and stop
	if err := <-done; err != nil {
		fmt.Println(err)
	}
	// Output:
	// WC    12.903s
	// TS    14.856s
	// WC-TS 17.878s
}
