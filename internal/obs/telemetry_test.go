package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamDropAccountingConcurrent pins the drop-counter invariant
// under concurrent publishers for both policies: every emitted event is
// either received by the consumer or counted in Drops(), exactly once,
// so consumed + drops always equals emitted. Run under -race this also
// exercises the deliver/evict paths for data races.
func TestStreamDropAccountingConcurrent(t *testing.T) {
	for _, policy := range []DropPolicy{DropNewest, DropOldest} {
		t.Run(policy.String(), func(t *testing.T) {
			const producers, perProducer = 8, 5000
			s := NewStream()
			sub := s.SubscribeWith(8, policy)
			var consumed atomic.Int64
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range sub.Events() {
					consumed.Add(1)
				}
			}()
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						s.Emit(Event{Seq: p*perProducer + i})
					}
				}(p)
			}
			wg.Wait()
			s.Close()
			<-done
			total := int64(producers * perProducer)
			if got := consumed.Load() + sub.Drops(); got != total {
				t.Errorf("consumed (%d) + drops (%d) = %d, want %d emitted",
					consumed.Load(), sub.Drops(), got, total)
			}
			if sub.Drops() == 0 {
				t.Error("8 hot publishers into an 8-slot buffer dropped nothing — the contention path never ran")
			}
		})
	}
}

// TestStreamDropsWithoutConsumer checks the same invariant when nobody
// reads at all: the buffer fills once and everything past it drops.
func TestStreamDropsWithoutConsumer(t *testing.T) {
	for _, policy := range []DropPolicy{DropNewest, DropOldest} {
		t.Run(policy.String(), func(t *testing.T) {
			const buffer, emitted = 16, 4096
			s := NewStream()
			sub := s.SubscribeWith(buffer, policy)
			var wg sync.WaitGroup
			for p := 0; p < 4; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < emitted/4; i++ {
						s.Emit(Event{Seq: i})
					}
				}()
			}
			wg.Wait()
			if got := sub.Drops(); got != emitted-buffer {
				t.Errorf("drops = %d, want %d (emitted %d, buffer %d)",
					got, emitted-buffer, emitted, buffer)
			}
			s.Close()
		})
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewRegistry().Histogram("one")
	h.Observe(0.42)
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 0.42 {
			t.Errorf("Quantile(%v) = %v, want the single sample 0.42", q, got)
		}
	}
	if h.Min() != 0.42 || h.Max() != 0.42 || h.Count() != 1 {
		t.Errorf("min/max/count = %v/%v/%d, want 0.42/0.42/1", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramQuantileAllEqual(t *testing.T) {
	h := NewRegistry().Histogram("flat")
	for i := 0; i < 100; i++ {
		h.Observe(3.5)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3.5 {
			t.Errorf("Quantile(%v) = %v, want 3.5 for an all-equal distribution", q, got)
		}
	}
	if got := h.Mean(); got != 3.5 {
		t.Errorf("mean = %v, want 3.5", got)
	}
}

// requestTraceEvents is a minimal served-request event sequence: two
// phases nested under one request span, as the prediction daemon emits.
func requestTraceEvents() []Event {
	return []Event{
		{Type: EvRequestPhase, Time: 0.001, Dur: 0.0005, Detail: "decode", Seq: 1, Task: -1},
		{Type: EvRequestPhase, Time: 0.002, Dur: 0.010, Detail: "estimate", Seq: 1, Task: -1},
		{Type: EvRequest, Time: 0.001, Dur: 0.020, Detail: "POST /v1/estimate", Seq: 1, Task: -1, Value: 200},
	}
}

func TestChromeTraceRequestSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, requestTraceEvents()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	var spans, phases int
	var serviceTrack bool
	for _, ev := range trace.TraceEvents {
		switch {
		case ev.Cat == "request" && ev.Phase == "X":
			spans++
			if ev.Name != "POST /v1/estimate" || ev.Args["status"] != float64(200) {
				t.Errorf("request span = %+v", ev)
			}
		case ev.Cat == "reqphase" && ev.Phase == "X":
			phases++
		case ev.Name == "process_name":
			if name, _ := ev.Args["name"].(string); name == "service" {
				serviceTrack = true
			}
		}
	}
	if spans != 1 || phases != 2 {
		t.Errorf("spans/phases = %d/%d, want 1/2", spans, phases)
	}
	if !serviceTrack {
		t.Error("no \"service\" process track in the Chrome trace")
	}
}

func TestOTLPRequestSpans(t *testing.T) {
	events := requestTraceEvents()
	if got := SpanCount(events); got != 3 {
		t.Fatalf("SpanCount = %d, want 3 (request + 2 phases)", got)
	}
	var buf bytes.Buffer
	n, err := WriteOTLPTraces(&buf, events, OTLPOptions{Start: time.Unix(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("WriteOTLPTraces emitted %d spans, want 3", n)
	}
	out := buf.String()
	// The phase spans must resolve their parent to the request span's id.
	for _, want := range []string{"POST /v1/estimate", "decode", "estimate",
		"boedag.request", "http.response.status_code", "parentSpanId"} {
		if !strings.Contains(out, want) {
			t.Errorf("OTLP traces missing %q", want)
		}
	}
}
