package statemodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/obs"
	"boedag/internal/sched"
	"boedag/internal/skew"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Options tune the estimator. The overheads must mirror the executing
// system's (here: the simulator's) for a fair end-to-end comparison.
type Options struct {
	// Mode selects the skew handling (Alg1-Mean / Alg1-Mid / Alg2-Normal).
	Mode SkewMode
	// JobSubmitOverhead is the per-job submit/compile latency.
	JobSubmitOverhead time.Duration
	// ParallelismCaps optionally caps per-job container grants.
	ParallelismCaps map[string]int
	// SlotLimit overrides the cluster's total task slots when positive.
	SlotLimit int
	// Policy selects the modelled scheduler discipline (default DRF).
	Policy sched.Policy
	// Hierarchy, when non-nil, replaces the flat policy grant with
	// hierarchical queue scheduling (quotas, over-quota weights, limits,
	// gangs) — the same pure allocator the simulator runs, so both sides
	// schedule identically. Nil keeps flat scheduling byte-for-byte.
	Hierarchy *sched.Hierarchy
	// Queues maps job ID to its leaf queue; consulted only under
	// Hierarchy (absent jobs park at the root).
	Queues map[string]string
	// Gangs maps job ID to an all-or-nothing minimum parallelism;
	// consulted only under Hierarchy.
	Gangs map[string]int
	// Predictions maps job ID to its predicted runtime in seconds: the
	// SPJF policy's ordering key and the hierarchy's reclaim victim
	// ordering (longest-predicted evicted first).
	Predictions map[string]float64
	// TaskFailureProb models the execution's task-attempt failure rate:
	// each failed attempt dies uniformly at random through its work and is
	// re-executed, so the expected task time inflates by a factor of
	// (1 + p/2). Set it to match the simulator's TaskFailureProb.
	TaskFailureProb float64
	// DiscreteWaves switches the stage-duration rule from the fluid
	// tasksLeft/throughput form to explicit ⌈N/Δ⌉ waves (ablation).
	DiscreteWaves bool
	// DisableIncremental turns off the task-time distribution cache, so
	// every state solves every running job from scratch. Results are
	// byte-identical either way by contract; this is the reference path
	// the incremental-equivalence suite compares against (and an escape
	// hatch should an external timer misdeclare purity).
	DisableIncremental bool
	// Observe attaches the observability layer: per-iteration events of
	// Algorithm 1's state loop, predicted state/stage spans, scheduler
	// grants, and iteration counters. Zero value = off.
	Observe obs.Options
}

// StageEstimate is the predicted execution of one job stage.
type StageEstimate struct {
	Job         string
	Stage       workload.Stage
	Start, End  time.Duration
	TaskTime    time.Duration
	Parallelism int
	Bottleneck  cluster.Resource
}

// Duration is the stage's predicted wall-clock span.
func (s StageEstimate) Duration() time.Duration { return s.End - s.Start }

// StateEstimate is one predicted workflow state (paper Figure 5).
type StateEstimate struct {
	Seq        int
	Start, End time.Duration
	// Running lists "job/stage" labels active in the state, sorted.
	Running []string
	// Parallelism maps job ID to its Δ during the state.
	Parallelism map[string]int
	// Bottleneck maps job ID to the resource its tasks are predicted to be
	// bound by during the state (zero value CPU for timers without
	// resource knowledge).
	Bottleneck map[string]cluster.Resource
	// Utilization is the predicted cluster-wide utilization per resource
	// class during the state (element-wise maximum over the running jobs'
	// task-time views).
	Utilization [cluster.NumResources]float64
	// SlotShare is the fraction of the scheduling pool's task slots
	// granted during the state; ~1.0 means the workflow is slot-bound.
	SlotShare float64
}

// Duration is the state's predicted span.
func (s StateEstimate) Duration() time.Duration { return s.End - s.Start }

// Plan is the estimator's full output: the predicted execution plan of a
// DAG workflow.
type Plan struct {
	Workflow string
	Makespan time.Duration
	Stages   []StageEstimate
	States   []StateEstimate
}

// StageOf returns the estimate for (job, stage), or nil.
func (p *Plan) StageOf(job string, st workload.Stage) *StageEstimate {
	for i := range p.Stages {
		if p.Stages[i].Job == job && p.Stages[i].Stage == st {
			return &p.Stages[i]
		}
	}
	return nil
}

// Estimator predicts DAG workflow execution plans with the state-based
// approach of Algorithm 1.
type Estimator struct {
	Spec  cluster.Spec
	Timer TaskTimer
	Opt   Options
}

// New returns an estimator with the given task timer.
func New(spec cluster.Spec, timer TaskTimer, opt Options) *Estimator {
	if opt.JobSubmitOverhead == 0 {
		opt.JobSubmitOverhead = 2 * time.Second
	}
	return &Estimator{Spec: spec, Timer: timer, Opt: opt}
}

type estJob struct {
	id        string
	profile   workload.JobProfile
	waitingOn int
	phase     jobPhase
	readyAt   float64
	order     int
	stage     workload.Stage
	tasksLeft float64
	// fp caches the profile fingerprint for dist-cache keys (only
	// computed when the timer is cacheable).
	fp uint64
	// lastDelta is the parallelism granted in the previous state; running
	// tasks still hold their containers, so the job's demand cannot drop
	// below them (see pendingTasks).
	lastDelta int
	// busy accumulates, per resource class, the wall-clock time this
	// job's current stage spent bound by that resource; the argmax at
	// stage finish is the stage's recorded Bottleneck.
	busy [cluster.NumResources]float64
	// lastBottleneck is the job's task bottleneck in the current state,
	// the fallback when a stage finishes without accumulating busy time.
	lastBottleneck cluster.Resource

	// se holds the per-stage estimates in place (indexed by Map/Reduce);
	// seen marks the stages that opened. A fixed array instead of a map
	// keeps the estJob slab flat and allocation-free.
	se   [2]StageEstimate
	seen [2]bool
}

// pendingTasks is the job's container demand for DRF. The fluid progress
// model drains tasksLeft continuously, but a task that is halfway done
// still occupies a whole container: with Δ tasks in flight, the
// unfinished count exceeds the fluid remainder by about Δ/2. Without this
// correction a single synchronized wave (e.g. 66 reduce tasks finishing
// together) would appear to release containers mid-wave and the estimator
// would starve the stage of its own parallelism.
func (j *estJob) pendingTasks() int {
	fluid := j.tasksLeft + float64(j.lastDelta)/2
	n := int(math.Ceil(fluid))
	if total := j.profile.Tasks(j.stage); n > total {
		n = total
	}
	if n < 1 {
		n = 1
	}
	return n
}

type jobPhase int

const (
	phaseWaiting jobPhase = iota
	phaseSubmitted
	phaseRunning
	phaseDone
)

// Estimate runs Algorithm 1: iterate over workflow states; per state,
// estimate each running job's degree of parallelism with DRF, its task
// time with the TaskTimer under the state's full contention environment,
// the remaining time of each job's current stage, then advance to the
// nearest stage transition and update everyone's progress.
//
// Scratch memory comes from an internal pool; use EstimateWith to pin a
// caller-owned Scratch (deterministic warm-cache reuse across calls).
func (e *Estimator) Estimate(w *dag.Workflow) (*Plan, error) {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return e.EstimateWith(s, w)
}

// EstimateWith is Estimate running on the given scratch arena. The
// scratch must not be shared with a concurrent run; nil falls back to a
// fresh arena.
func (e *Estimator) EstimateWith(s *Scratch, w *dag.Workflow) (*Plan, error) {
	if s == nil {
		s = NewScratch()
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s.reset(len(w.Jobs))
	for _, j := range w.Jobs {
		s.newJob(j.ID, j.Profile, len(j.Deps))
	}
	for i, id := range w.Roots() {
		j := s.jobs[id]
		j.phase = phaseSubmitted
		j.readyAt = e.Opt.JobSubmitOverhead.Seconds()
		j.order = i // declaration order is submission order (FIFO)
	}
	return e.run(s, w, len(w.Jobs))
}

// distConf resolves whether task-time solves may be memoized and, if so,
// the configuration half of the cache key: the timer's fingerprint mixed
// with every option that shapes the distribution itself.
func (e *Estimator) distConf() (conf uint64, jobSensitive, cacheable bool) {
	if e.Opt.DisableIncremental {
		return 0, false, false
	}
	dc, ok := e.Timer.(DistCacheable)
	if !ok {
		return 0, false, false
	}
	fp, js, ok := dc.DistFingerprint()
	if !ok {
		return 0, false, false
	}
	h := mix64(fnvOffset, fp)
	h = mixFloat(h, e.Opt.TaskFailureProb)
	return h, js, true
}

// run drives the state iteration over pre-initialized jobs (used by both
// Estimate and EstimateRemaining); remaining counts jobs not yet done.
//
// The loop is Algorithm 1 with three structural changes that leave the
// arithmetic — and therefore the emitted plan bytes — untouched:
//
//   - Submitted jobs wait in a min-heap keyed by (readyAt, order), so
//     admission, the idle-gap jump and the next-submit bound on dt are
//     heap operations instead of O(jobs) scans.
//   - The running list is maintained incrementally (sorted insert on
//     admit, in-place compaction on finish) in the same sorted-by-ID
//     order the old per-iteration rebuild produced.
//   - Task-time solves are memoized in the scratch's dist cache keyed by
//     (timer config, own group, ordered contention environment): within a
//     run, identical adjacent groups collapse to one solve; across runs
//     on the same scratch, states the caller's delta did not touch are
//     carried forward. Jobs whose key misses are the dirty set.
func (e *Estimator) run(s *Scratch, w *dag.Workflow, remaining int) (*Plan, error) {
	children := w.Children()
	now := 0.0
	s.sortOrdered()

	conf, jobSensitive, cacheable := e.distConf()
	if cacheable {
		for _, j := range s.ordered {
			j.fp = profileFingerprint(j.profile)
		}
	}

	// Jobs pre-submitted by the caller keep their orders; later submits
	// continue the sequence. Pre-running jobs (EstimateRemaining) seed
	// the running list.
	submitSeq := 0
	for _, j := range s.ordered {
		if j.phase != phaseWaiting && j.order >= submitSeq {
			submitSeq = j.order + 1
		}
		if j.phase == phaseSubmitted {
			s.heapPush(j)
		}
		if j.phase == phaseRunning {
			s.running = append(s.running, j)
		}
	}
	submit := func(j *estJob) {
		j.phase = phaseSubmitted
		j.readyAt = now + e.Opt.JobSubmitOverhead.Seconds()
		j.order = submitSeq
		submitSeq++
		s.heapPush(j)
	}

	pool := sched.PoolOf(e.Spec).WithSlotLimit(e.Opt.SlotLimit)

	plan := &Plan{Workflow: w.Name}
	var prevSig stateSig
	sigDirty := true

	trOn := e.Opt.Observe.TracerOn()
	// Solver counters accumulate in locals and flush to the metrics
	// registry once per run: shared atomic counters touched per
	// iteration are measurable contention when concurrent requests
	// estimate in parallel (the prediction daemon's hot path).
	iters := int64(0)
	solves, reuses := int64(0), int64(0)

	for iter := 0; remaining > 0; iter++ {
		if iter > 10000*len(s.jobs)+10000 {
			return nil, fmt.Errorf("statemodel: workflow %q did not converge", w.Name)
		}
		iters++
		// Admit submitted jobs whose overhead elapsed.
		for len(s.heap) > 0 && s.heap[0].readyAt <= now+1e-9 {
			j := s.heapPop()
			e.openStage(j, workload.Map, now)
			s.insertRunning(j)
			sigDirty = true
		}
		running := s.running
		if trOn {
			e.Opt.Observe.Tracer.Emit(obs.Event{
				Type: obs.EvEstimatorIter, Time: now, Task: -1,
				Seq: iter, Value: float64(len(running)),
			})
		}
		if len(running) == 0 {
			// Idle gap: jump to the next submit event.
			if len(s.heap) == 0 {
				return nil, fmt.Errorf("statemodel: workflow %q deadlocked at t=%.2fs", w.Name, now)
			}
			now = s.heap[0].readyAt
			continue
		}
		n := len(running)

		// (1) Degree of parallelism per running job.
		reqs := s.reqs[:n]
		for i, j := range running {
			reqs[i] = sched.Request{
				JobID:     j.id,
				MemoryMB:  j.profile.MemoryMB(j.stage),
				VCores:    j.profile.VCores(j.stage),
				Pending:   j.pendingTasks(),
				Cap:       e.Opt.ParallelismCaps[j.id],
				Order:     j.order,
				Queue:     e.Opt.Queues[j.id],
				Gang:      e.Opt.Gangs[j.id],
				Predicted: e.Opt.Predictions[j.id],
			}
		}
		var grants sched.Allocation
		if e.Opt.Hierarchy != nil {
			grants = sched.AllocateHierarchyObserved(pool, e.Opt.Hierarchy, reqs, nil, e.Opt.Observe, now).Grants
		} else {
			grants = sched.GrantObserved(e.Opt.Policy, pool, reqs, nil, e.Opt.Observe, now)
		}

		delta := s.delta[:n]
		for i, j := range running {
			d := grants[j.id]
			if d < 1 {
				// The flat fluid model floors every running job at one
				// container so progress never stalls. Under a hierarchy the
				// floor would forge capacity a quota, limit, or failed gang
				// deliberately withheld — there a zero grant genuinely means
				// zero progress this state.
				if e.Opt.Hierarchy == nil {
					d = 1
				} else {
					d = 0
				}
			}
			delta[i] = d
			j.lastDelta = d
		}

		// (2) Task time per running job via the BOE model (or profiles).
		// Cacheable timers first look every job up in the dist cache; the
		// misses are the dirty set that actually re-solves.
		dists := s.dists[:n]
		elems := s.elems[:n]
		envs := s.envs[:n]
		keys := s.keys[:n]
		hit := s.hit[:n]
		anyMiss := !cacheable
		if cacheable {
			for i, j := range running {
				elems[i] = mix64(mix64(mix64(fnvOffset, j.fp), uint64(j.stage)), uint64(delta[i]))
			}
			for i, j := range running {
				if delta[i] == 0 {
					// Starved under the hierarchy: no containers, no task time
					// to solve. (A starved predecessor can never alias the next
					// job's elems — equal elems imply equal deltas.)
					dists[i] = TaskTimeDist{}
					hit[i] = true
					continue
				}
				if i > 0 && elems[i] == elems[i-1] {
					// Identical adjacent groups see the identical environment
					// sequence: removing either occurrence of an equal pair
					// leaves the same remainder.
					envs[i] = envs[i-1]
				} else {
					envs[i] = envHash(elems, i)
				}
				keys[i] = distKey{conf: conf, self: elems[i], env: envs[i], n: int32(n - 1)}
				if jobSensitive {
					keys[i].job = j.id
				}
				if d, ok := s.dc.get(keys[i]); ok {
					dists[i] = d
					hit[i] = true
					reuses++
				} else {
					hit[i] = false
					anyMiss = true
				}
			}
		}
		if anyMiss {
			groups := s.groups[:n]
			for i, j := range running {
				groups[i] = groupFor(j.profile, j.stage, delta[i])
			}
			for i, j := range running {
				if delta[i] == 0 {
					dists[i] = TaskTimeDist{}
					continue
				}
				if cacheable && hit[i] {
					continue
				}
				if cacheable {
					// An earlier index this iteration may have solved and
					// cached the same (class, delta, environment) key —
					// identical inputs, so its dist is bitwise reusable.
					// This is what collapses a layer of templated jobs to
					// one solve per profile class.
					if d, ok := s.dc.get(keys[i]); ok {
						dists[i] = d
						reuses++
						continue
					}
				}
				d := e.Timer.TaskDist(j.id, groups, i)
				if p := e.Opt.TaskFailureProb; p > 0 {
					// Fault-tolerance correction: a failed attempt wastes half
					// its work in expectation before the re-execution.
					f := 1 + p/2
					d.Mean = time.Duration(float64(d.Mean) * f)
					d.Median = time.Duration(float64(d.Median) * f)
				}
				dists[i] = d
				solves++
				if cacheable {
					s.dc.put(keys[i], d)
				}
			}
		}
		rates := s.rates[:n]
		rests := s.rests[:n]
		for i, j := range running {
			if delta[i] == 0 {
				// Starved this state: zero progress; the stage's remaining
				// time is unbounded until another state frees capacity.
				rates[i] = 0
				rests[i] = math.Inf(1)
				continue
			}
			tt := dists[i].ByMode(e.Opt.Mode).Seconds()
			if tt <= 0 {
				return nil, fmt.Errorf("statemodel: workflow %q: job %q %s: non-positive task time",
					w.Name, j.id, j.stage)
			}
			rates[i] = float64(delta[i]) / tt
			rests[i] = e.restTime(s, j, delta[i], dists[i], tt)
			j.lastBottleneck = dists[i].Bottleneck
			se := &j.se[j.stage]
			se.TaskTime = units.Seconds(tt)
			se.Parallelism = delta[i]
		}

		// Record the state if its signature changed. The signature only
		// covers (job, stage) membership, so it needs recomputing only
		// after a membership or stage change.
		if sigDirty {
			sigDirty = false
			if sig := stateSignature(running); sig != prevSig {
				closeState(plan, now)
				prevSig = sig
				st := StateEstimate{
					Seq:         len(plan.States) + 1,
					Start:       units.Seconds(now),
					Parallelism: make(map[string]int, len(running)),
					Bottleneck:  make(map[string]cluster.Resource, len(running)),
				}
				granted := 0
				for i, j := range running {
					st.Running = append(st.Running, j.id+"/"+j.stage.String())
					st.Parallelism[j.id] = delta[i]
					st.Bottleneck[j.id] = dists[i].Bottleneck
					granted += delta[i]
					for r := 0; r < cluster.NumResources; r++ {
						if u := dists[i].Util[r]; u > st.Utilization[r] {
							st.Utilization[r] = u
						}
					}
				}
				if pool.Slots > 0 {
					st.SlotShare = float64(granted) / float64(pool.Slots)
				}
				sort.Strings(st.Running)
				plan.States = append(plan.States, st)
				if trOn {
					e.Opt.Observe.Tracer.Emit(obs.Event{
						Type: obs.EvEstimatorState, Time: now, Task: -1,
						Seq: st.Seq, Detail: strings.Join(st.Running, ","),
					})
				}
			}
		}

		// (3)-(4) Find the job whose stage ends first (or the next submit
		// arrival, whichever is nearer).
		dt := math.Inf(1)
		for i := range running {
			if rests[i] < dt {
				dt = rests[i]
			}
		}
		if len(s.heap) > 0 {
			if r := s.heap[0].readyAt - now; r < dt {
				dt = r
			}
		}
		if math.IsInf(dt, 1) {
			// Every running job is starved and no submit can change that:
			// a quota/limit/gang configuration that never grants capacity.
			return nil, fmt.Errorf("statemodel: workflow %q starved at t=%.2fs (hierarchy grants no parallelism)",
				w.Name, now)
		}
		if dt < 0 {
			dt = 0
		}
		now += dt

		// (5) Update progress of every running job; transition finished
		// stages.
		finished := false
		for i, j := range running {
			j.tasksLeft -= rates[i] * dt
			if delta[i] > 0 {
				j.busy[dists[i].Bottleneck] += dt
			}
			if j.tasksLeft > 1e-9 && rests[i] > dt+1e-9 {
				continue
			}
			j.tasksLeft = 0
			sigDirty = true
			se := &j.se[j.stage]
			se.End = units.Seconds(now)
			se.Bottleneck = j.dominantResource()
			if trOn {
				e.Opt.Observe.Tracer.Emit(obs.Event{
					Type: obs.EvStageFinish,
					Time: se.Start.Seconds(), Dur: se.Duration().Seconds(),
					Job: j.id, Stage: j.stage.String(), Task: -1,
					Resource: se.Bottleneck.String(),
					Value:    float64(se.Parallelism),
				})
			}
			if j.stage == workload.Map && j.profile.ReduceTasks > 0 {
				e.openStage(j, workload.Reduce, now)
				continue
			}
			j.phase = phaseDone
			finished = true
			remaining--
			for _, c := range children[j.id] {
				cj := s.jobs[c]
				cj.waitingOn--
				if cj.waitingOn == 0 && cj.phase == phaseWaiting {
					submit(cj)
				}
			}
		}
		if finished {
			s.compactRunning()
		}
	}
	closeState(plan, now)
	if reg := e.Opt.Observe.Metrics; reg != nil {
		reg.Counter("est_iterations").Add(iters)
		reg.Counter("est_states").Add(int64(len(plan.States)))
		reg.Counter("est_dist_solves").Add(solves)
		reg.Counter("est_dist_reuse").Add(reuses)
		stateDur := reg.Histogram("est_state_duration_s")
		for _, st := range plan.States {
			if st.End > 0 {
				stateDur.Observe(st.Duration().Seconds())
			}
		}
	}
	plan.Makespan = units.Seconds(now)
	for _, j := range s.ordered {
		for _, st := range []workload.Stage{workload.Map, workload.Reduce} {
			if j.seen[st] {
				plan.Stages = append(plan.Stages, j.se[st])
			}
		}
	}
	return plan, nil
}

// restTime estimates the remaining wall-clock time of a job's current
// stage at the state's rate: fluid tasksLeft/rate by default, discrete
// waves if configured, plus the normal-mode straggler correction when the
// stage is in its final wave.
func (e *Estimator) restTime(s *Scratch, j *estJob, delta int, dist TaskTimeDist, taskTime float64) float64 {
	left := j.tasksLeft
	if left <= 0 {
		return 0
	}
	var base float64
	if e.Opt.DiscreteWaves {
		waves := math.Ceil(left / float64(delta))
		base = waves * taskTime
	} else {
		base = left / (float64(delta) / taskTime)
	}
	switch e.Opt.Mode {
	case NormalMode:
		lastWave := int(math.Min(left, float64(delta)))
		if lastWave >= 1 {
			mean := dist.ByMode(e.Opt.Mode)
			tail := ExpectedMaxNormal(mean, dist.Std, lastWave) - mean
			base += tail.Seconds()
		}
	case EmpiricalMode:
		if len(dist.Sample) > 0 {
			// List-schedule the remaining tasks with durations cycled from
			// the measured sample: a distribution-free stage duration.
			n := int(math.Ceil(left))
			if cap(s.tasks) < n {
				s.tasks = make([]time.Duration, n)
			}
			tasks := s.tasks[:n]
			for i := range tasks {
				tasks[i] = dist.Sample[i%len(dist.Sample)]
			}
			return skew.EmpiricalStageDuration(tasks, delta).Seconds()
		}
		// No sample (e.g. a model-driven timer): degrade to the normal fit.
		lastWave := int(math.Min(left, float64(delta)))
		if lastWave >= 1 {
			mean := dist.ByMode(e.Opt.Mode)
			tail := ExpectedMaxNormal(mean, dist.Std, lastWave) - mean
			base += tail.Seconds()
		}
	}
	return base
}

func (e *Estimator) openStage(j *estJob, st workload.Stage, now float64) {
	j.phase = phaseRunning
	j.stage = st
	j.tasksLeft = float64(j.profile.Tasks(st))
	j.lastDelta = 0
	j.busy = [cluster.NumResources]float64{}
	j.lastBottleneck = cluster.CPU

	j.se[st] = StageEstimate{Job: j.id, Stage: st, Start: units.Seconds(now)}
	j.seen[st] = true
}

// dominantResource is the resource the job's current stage spent the most
// time bound by — the argmax of busy, ties to the lowest resource index.
// A stage that finishes without accumulating wall-clock time (zero-length
// states) falls back to the final state's task bottleneck.
func (j *estJob) dominantResource() cluster.Resource {
	best := cluster.CPU
	seen := 0.0
	for _, r := range cluster.Resources() {
		seen += j.busy[r]
		if j.busy[r] > j.busy[best] {
			best = r
		}
	}
	if seen <= 0 {
		return j.lastBottleneck
	}
	return best
}

// stateSig identifies a workflow state without allocating: an FNV-1a
// hash over the running (job, stage) pairs plus their count. The count
// guards the (already negligible) hash-collision risk — two states can
// only alias if they also run the same number of jobs.
type stateSig struct {
	h uint64
	n int
}

func stateSignature(running []*estJob) stateSig {
	h := uint64(fnvOffset)
	for _, j := range running {
		for i := 0; i < len(j.id); i++ {
			h = (h ^ uint64(j.id[i])) * fnvPrime
		}
		h = (h ^ 0xff) * fnvPrime // separator: ids cannot bleed into each other
		h = (h ^ uint64(j.stage)) * fnvPrime
	}
	return stateSig{h: h, n: len(running)}
}

func closeState(plan *Plan, end float64) {
	if len(plan.States) == 0 {
		return
	}
	last := &plan.States[len(plan.States)-1]
	if last.End == 0 {
		last.End = units.Seconds(end)
	}
}

// CriticalPath returns the chain of stage estimates that determines the
// plan's makespan: starting from the stage that ends last, repeatedly
// step to the latest-ending stage that finishes at (or just before) the
// current one's start — the jobs an optimizer should attack first.
func (p *Plan) CriticalPath() []StageEstimate {
	if len(p.Stages) == 0 {
		return nil
	}
	// Latest-ending stage anchors the path.
	cur := p.Stages[0]
	for _, s := range p.Stages[1:] {
		if s.End > cur.End {
			cur = s
		}
	}
	path := []StageEstimate{cur}
	const slack = 3 * time.Second // submit overheads sit between stages
	for {
		var prev *StageEstimate
		for i := range p.Stages {
			s := p.Stages[i]
			if s.End > cur.Start+time.Millisecond || s == cur {
				continue
			}
			if s.End < cur.Start-slack {
				continue
			}
			if prev == nil || s.End > prev.End {
				prev = &p.Stages[i]
			}
		}
		if prev == nil {
			break
		}
		path = append(path, *prev)
		cur = *prev
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
