package cachestore

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot holds the reader's never-panic contract: any byte
// string either decodes to entries that re-encode losslessly, or is
// rejected with an error — never a panic, never a silent partial read.
func FuzzReadSnapshot(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(magic))
	f.Add(Encode(nil))
	f.Add(Encode([]Entry{{Key: "k", Val: []byte("v")}}))
	f.Add(Encode(sample()))
	damaged := Encode(sample())
	damaged[len(damaged)/2] ^= 0x55
	f.Add(damaged)
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := Decode(data)
		if err != nil {
			return
		}
		// A snapshot that decodes must round-trip byte-identically: the
		// format has no redundant encodings before the checksum.
		if !bytes.Equal(Encode(entries), data) {
			t.Fatalf("decoded snapshot does not re-encode to the same bytes")
		}
	})
}
