package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"boedag/internal/boe"
	"boedag/internal/dag"
	"boedag/internal/metrics"
	"boedag/internal/simulator"
	"boedag/internal/workload"
)

// Table2Cell is the task-level accuracy of the BOE model for one job in
// one workflow state.
type Table2Cell struct {
	State       int
	Job         string
	Stage       workload.Stage
	Parallelism int
	Actual      time.Duration
	Estimated   time.Duration
}

// Accuracy is the paper's 1 − |est−act|/act for this cell.
func (c Table2Cell) Accuracy() float64 { return metrics.Accuracy(c.Estimated, c.Actual) }

// Table2Row groups a job's per-state cells within one DAG.
type Table2Row struct {
	DAG   string
	Job   string
	Cells []Table2Cell
}

// Cell returns the cell for the given state, or nil.
func (r Table2Row) Cell(state int) *Table2Cell {
	for i := range r.Cells {
		if r.Cells[i].State == state {
			return &r.Cells[i]
		}
	}
	return nil
}

// Table2 reproduces the paper's Table II: the two-job DAGs WC+TS and
// WC+TS3R run in the simulator; in every workflow state, the BOE model —
// given only the state's observed degrees of parallelism — predicts each
// running job's task time, compared against the median measured duration
// of the tasks that completed in that state.
func Table2(cfg Config) ([]Table2Row, error) {
	dags := []struct {
		label string
		a, b  workload.JobProfile
	}{
		{"WC+TS", workload.WordCount(cfg.MicroInput), workload.TeraSort(cfg.MicroInput)},
		{"WC+TS3R", workload.WordCount(cfg.MicroInput), workload.TeraSort3R(cfg.MicroInput)},
	}
	jobs := make([]func() ([]Table2Row, error), len(dags))
	for i, d := range dags {
		d := d
		jobs[i] = func() ([]Table2Row, error) {
			flow := dag.Parallel(d.label, dag.Single(d.a), dag.Single(d.b))
			return table2ForDAG(cfg, d.label, flow)
		}
	}
	perDAG, err := runJobs(cfg, "table2", jobs)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, got := range perDAG {
		rows = append(rows, got...)
	}
	return rows, nil
}

func table2ForDAG(cfg Config, label string, flow *dag.Workflow) ([]Table2Row, error) {
	sim := simulator.New(cfg.Spec, cfg.simOptions())
	res, err := sim.Run(flow)
	if err != nil {
		return nil, fmt.Errorf("experiments: table2 %s: %w", label, err)
	}
	model := boe.New(cfg.Spec)

	profiles := make(map[string]workload.JobProfile, len(flow.Jobs))
	for _, j := range flow.Jobs {
		profiles[j.ID] = j.Profile
	}

	byJob := make(map[string]*Table2Row)
	for _, state := range res.States {
		occ := stateOccupancy(res, state)
		if len(occ) == 0 {
			continue
		}
		// Environment groups: every running (job, stage) at its observed Δ.
		keys := make([]string, 0, len(occ))
		for k := range occ {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		groups := make([]boe.TaskGroup, 0, len(keys))
		for _, k := range keys {
			job, stage := splitKey(k)
			groups = append(groups, boe.TaskGroup{
				Profile:     profiles[job],
				Stage:       stage,
				SubStage:    boe.AggregateSubStage,
				Parallelism: occ[k],
			})
		}
		for i, k := range keys {
			job, stage := splitKey(k)
			actual := stateMedianTaskTime(res, state, job, stage)
			if actual == 0 {
				continue // no task finished inside this state
			}
			env := make([]boe.TaskGroup, 0, len(groups)-1)
			for gi, g := range groups {
				if gi != i {
					env = append(env, g)
				}
			}
			est := model.TaskTimeWith(profiles[job], stage, occ[k], env)
			cell := Table2Cell{
				State:       state.Seq,
				Job:         job,
				Stage:       stage,
				Parallelism: occ[k],
				Actual:      actual,
				Estimated:   est.Duration + cfg.TaskStartOverhead,
			}
			row, ok := byJob[job]
			if !ok {
				row = &Table2Row{DAG: label, Job: job}
				byJob[job] = row
			}
			row.Cells = append(row.Cells, cell)
		}
	}
	jobs := make([]string, 0, len(byJob))
	for j := range byJob {
		jobs = append(jobs, j)
	}
	sort.Strings(jobs)
	var rows []Table2Row
	for _, j := range jobs {
		rows = append(rows, *byJob[j])
	}
	return rows, nil
}

// stateOccupancy returns the average concurrency of each running
// (job, stage) during the state, rounded to at least 1.
func stateOccupancy(res *simulator.Result, st simulator.StateRecord) map[string]int {
	dur := st.Duration().Seconds()
	if dur <= 0 {
		return nil
	}
	taskSecs := make(map[string]float64)
	for _, t := range res.Tasks {
		ov := overlap(t.Start, t.End, st.Start, st.End)
		if ov > 0 {
			taskSecs[t.Job+"\x00"+t.Stage.String()] += ov
		}
	}
	out := make(map[string]int, len(taskSecs))
	for k, secs := range taskSecs {
		n := int(math.Round(secs / dur))
		if n < 1 {
			n = 1
		}
		out[k] = n
	}
	return out
}

// stateMedianTaskTime is the median duration of (job, stage) tasks that
// finished within the state.
func stateMedianTaskTime(res *simulator.Result, st simulator.StateRecord, job string, stage workload.Stage) time.Duration {
	var xs []float64
	for _, t := range res.Tasks {
		if t.Job == job && t.Stage == stage && t.End > st.Start && t.End <= st.End {
			xs = append(xs, t.Duration().Seconds())
		}
	}
	return secondsMedian(xs)
}

func overlap(aStart, aEnd, bStart, bEnd time.Duration) float64 {
	start := aStart
	if bStart > start {
		start = bStart
	}
	end := aEnd
	if bEnd < end {
		end = bEnd
	}
	if end <= start {
		return 0
	}
	return (end - start).Seconds()
}

func splitKey(k string) (string, workload.Stage) {
	i := strings.IndexByte(k, 0)
	job, stageName := k[:i], k[i+1:]
	if stageName == workload.Map.String() {
		return job, workload.Map
	}
	return job, workload.Reduce
}
