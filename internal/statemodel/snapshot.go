package statemodel

import (
	"fmt"
	"math"
	"time"

	"boedag/internal/dag"
	"boedag/internal/workload"
)

// JobPhase describes where a job stands in a Snapshot.
type JobPhase int

const (
	// JobPending has not started (dependencies may still be running).
	JobPending JobPhase = iota
	// JobMapping is in its map stage.
	JobMapping
	// JobReducing is in its reduce stage.
	JobReducing
	// JobFinished has completed both stages.
	JobFinished
)

// String names the phase.
func (p JobPhase) String() string {
	switch p {
	case JobPending:
		return "pending"
	case JobMapping:
		return "mapping"
	case JobReducing:
		return "reducing"
	case JobFinished:
		return "finished"
	}
	return "phase(?)"
}

// JobSnapshot is one job's observed progress.
type JobSnapshot struct {
	Phase JobPhase
	// TasksDone counts finished tasks of the current stage.
	TasksDone int
	// TasksRunning counts tasks currently in flight.
	TasksRunning int
	// RunningProgress is the mean completion fraction of the in-flight
	// tasks, as resource managers report per task; zero means unknown and
	// defaults to one half.
	RunningProgress float64
}

// Snapshot captures a workflow mid-flight: the input of online progress
// estimation (the ParaTimer use case the paper's introduction lists as
// "progress estimation"). Jobs absent from the map are treated as
// pending.
type Snapshot struct {
	Elapsed time.Duration
	Jobs    map[string]JobSnapshot
}

// EstimateRemaining predicts how much longer the workflow will run from
// the snapshotted state, using the same state-based iteration as
// Estimate. In-flight tasks are assumed half done on average. The
// returned plan's clock starts at zero = the snapshot instant.
//
// Scratch memory comes from an internal pool; progress indicators that
// tick the same workflow should hold a Scratch of their own and call
// EstimateRemainingWith, so consecutive ticks are guaranteed to hit the
// same warm dist cache and re-solve only the states the snapshot delta
// touched.
func (e *Estimator) EstimateRemaining(w *dag.Workflow, snap Snapshot) (time.Duration, *Plan, error) {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return e.EstimateRemainingWith(s, w, snap)
}

// EstimateRemainingWith is EstimateRemaining running on the given
// scratch arena. The scratch must not be shared with a concurrent run;
// nil falls back to a fresh arena.
func (e *Estimator) EstimateRemainingWith(s *Scratch, w *dag.Workflow, snap Snapshot) (time.Duration, *Plan, error) {
	if s == nil {
		s = NewScratch()
	}
	if err := w.Validate(); err != nil {
		return 0, nil, err
	}
	doneJobs := make(map[string]bool)
	for _, j := range w.Jobs {
		if snap.Jobs[j.ID].Phase == JobFinished {
			doneJobs[j.ID] = true
		}
	}
	s.reset(len(w.Jobs))
	remaining := 0
	submitSeq := 0
	for _, j := range w.Jobs {
		js := snap.Jobs[j.ID]
		waiting := 0
		for _, d := range j.Deps {
			if !doneJobs[d] {
				waiting++
			}
		}
		ej := s.newJob(j.ID, j.Profile, waiting)
		if js.Phase != JobPending {
			ej.order = submitSeq // declaration order approximates history
			submitSeq++
		}
		switch js.Phase {
		case JobFinished:
			ej.phase = phaseDone
		case JobMapping, JobReducing:
			st := workload.Map
			if js.Phase == JobReducing {
				st = workload.Reduce
			}
			total := j.Profile.Tasks(st)
			if js.TasksDone > total {
				return 0, nil, fmt.Errorf("statemodel: snapshot: job %q has %d done of %d %s tasks",
					j.ID, js.TasksDone, total, st)
			}
			ej.phase = phaseRunning
			ej.stage = st
			prog := js.RunningProgress
			if prog <= 0 || prog > 1 {
				prog = 0.5 // unknown: assume half done on average
			}
			left := float64(total-js.TasksDone) - float64(js.TasksRunning)*prog
			ej.tasksLeft = math.Max(left, 0.25)
			ej.lastDelta = js.TasksRunning
			ej.se[st] = StageEstimate{Job: j.ID, Stage: st}
			ej.seen[st] = true
		default:
			if ej.waitingOn == 0 {
				// Dependencies satisfied but not yet observed running: it is
				// in the submit pipeline.
				ej.phase = phaseSubmitted
				ej.readyAt = e.Opt.JobSubmitOverhead.Seconds()
			} else {
				ej.phase = phaseWaiting
			}
		}
		if ej.phase != phaseDone {
			remaining++
		}
	}
	if remaining == 0 {
		return 0, &Plan{Workflow: w.Name}, nil
	}
	plan, err := e.run(s, w, remaining)
	if err != nil {
		return 0, nil, err
	}
	return plan.Makespan, plan, nil
}
