package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"boedag/internal/boe"
	"boedag/internal/sched"
	"boedag/internal/sched/schedtest"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// This file is the estimator-in-the-loop scheduling study: seeded
// multi-tenant arrival scenarios whose jobs are real registry workflows
// (HiBench, TPC-H, micro benchmarks) compressed to stream jobs by the
// BOE estimator — Work is the plan's slot-second area, Predicted its
// makespan — replayed under every scheduling policy and compared on
// makespan, p95 slowdown, SLO-miss rate, and preemption count.

// SchedRoster lists the registry workflows the arrival scenarios draw
// from: a deliberate mix of short and long, narrow and wide jobs, so
// size-aware policies have something to exploit.
func SchedRoster() []string {
	return []string{
		"wc", "ts", "webanalytics", "kmeans",
		"hbsort", "hbagg", "hbjoin",
		"q1", "q5", "q12",
	}
}

// streamTemplate is one roster workflow reduced to the stream scheduler's
// vocabulary by the BOE estimator.
type streamTemplate struct {
	name          string
	work          float64 // slot-seconds: Σ over plan states of Δ·duration
	maxPar        int     // peak total parallelism across plan states
	memMB, vcores int     // widest container shape in the workflow
	predicted     float64 // the estimator's standalone makespan, seconds
}

// streamTemplates estimates every roster workflow once and derives its
// template. This is the estimator-in-the-loop step: every number the
// predictive policies later consume originates here.
func streamTemplates(cfg Config) ([]streamTemplate, error) {
	timer := &statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead}
	est := statemodel.New(cfg.Spec, timer, statemodel.Options{JobSubmitOverhead: cfg.JobSubmitOverhead})
	roster := SchedRoster()
	out := make([]streamTemplate, 0, len(roster))
	for _, name := range roster {
		flow, err := BuildNamed(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: sched roster %q: %w", name, err)
		}
		plan, err := est.Estimate(flow)
		if err != nil {
			return nil, fmt.Errorf("experiments: sched roster %q: %w", name, err)
		}
		t := streamTemplate{name: name, predicted: plan.Makespan.Seconds()}
		for _, st := range plan.States {
			total := 0
			for _, d := range st.Parallelism {
				total += d
			}
			t.work += st.Duration().Seconds() * float64(total)
			if total > t.maxPar {
				t.maxPar = total
			}
		}
		for _, j := range flow.Jobs {
			for _, stg := range []workload.Stage{workload.Map, workload.Reduce} {
				if j.Profile.Tasks(stg) == 0 {
					continue
				}
				if m := j.Profile.MemoryMB(stg); m > t.memMB {
					t.memMB = m
				}
				if v := j.Profile.VCores(stg); v > t.vcores {
					t.vcores = v
				}
			}
		}
		if t.maxPar < 1 {
			t.maxPar = 1
		}
		if t.work <= 0 {
			t.work = t.predicted
		}
		out = append(out, t)
	}
	return out, nil
}

// ArrivalScenario is one seeded multi-tenant workload stream.
type ArrivalScenario struct {
	Name string
	Pool sched.Pool
	// Hierarchy is non-nil for the multi-tenant queue scenario (quotas,
	// weights, preemptive reclaim); nil scenarios compare flat policies.
	Hierarchy *sched.Hierarchy
	Jobs      []sched.StreamJob
}

// ArrivalScenarios builds the scenario family: a lightly loaded stream,
// an oversubscribed one, a bursty one (synchronized waves), and a
// hierarchical multi-tenant one. Deterministic in (cfg, seed).
func ArrivalScenarios(cfg Config, seed int64) ([]ArrivalScenario, error) {
	tmpl, err := streamTemplates(cfg)
	if err != nil {
		return nil, err
	}
	pool := sched.PoolOf(cfg.Spec)

	quota := pool.Slots * 2 / 5
	if quota < 1 {
		quota = 1
	}
	tenants, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "prod", Quota: sched.QueueLimit{Slots: quota}},
		{Name: "batch", Weight: 2},
		{Name: "adhoc", Weight: 1},
	})
	if err != nil {
		return nil, err
	}

	return []ArrivalScenario{
		{Name: "light", Pool: pool,
			Jobs: arrivals(tmpl, pool, seed, 30, 0.5, 1, nil)},
		{Name: "heavy", Pool: pool,
			Jobs: arrivals(tmpl, pool, seed+1, 40, 1.6, 1, nil)},
		{Name: "bursty", Pool: pool,
			Jobs: arrivals(tmpl, pool, seed+2, 40, 1.2, 8, nil)},
		{Name: "multitenant", Pool: pool, Hierarchy: tenants,
			Jobs: arrivals(tmpl, pool, seed+3, 40, 1.4, 1, []string{"prod", "batch", "adhoc"})},
	}, nil
}

// arrivals samples n jobs from the templates with exponential
// inter-arrival times tuned to the target offered load (Σwork over
// slots·horizon), batched into waves of burst arrivals sharing one
// submit instant. ~60% of jobs carry a deadline at a uniform slack of
// 1.2–4× their predicted runtime; queues cycle through the tenant list.
func arrivals(tmpl []streamTemplate, pool sched.Pool, seed int64, n int, load float64, burst int, queues []string) []sched.StreamJob {
	r := schedtest.New(seed)
	meanWork := 0.0
	for _, t := range tmpl {
		meanWork += t.work
	}
	meanWork /= float64(len(tmpl))
	slots := float64(pool.Slots)
	if slots <= 0 {
		slots = 1
	}
	if burst < 1 {
		burst = 1
	}
	// Offered load ρ = λ·w̄/slots ⇒ mean gap between arrivals 1/λ; a
	// burst of b jobs shares one instant, so gaps between bursts scale
	// by b to keep ρ.
	gap := meanWork / (load * slots) * float64(burst)

	jobs := make([]sched.StreamJob, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		if i%burst == 0 && i > 0 {
			u := r.Float64()
			if u >= 1 {
				u = 0.999999
			}
			now += -gap * logApprox(1-u)
		}
		t := tmpl[r.Intn(len(tmpl))]
		j := sched.StreamJob{
			ID:             fmt.Sprintf("%s-%03d", t.name, i),
			Submit:         now,
			Work:           t.work,
			MaxParallelism: t.maxPar,
			MemoryMB:       t.memMB,
			VCores:         t.vcores,
			Predicted:      t.predicted,
		}
		if len(queues) > 0 {
			j.Queue = queues[i%len(queues)]
		}
		if r.Float64() < 0.6 {
			j.Deadline = j.Submit + t.predicted*(1.2+2.8*r.Float64())
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// logApprox is ln(x) for x in (0, 1] — a dependency-light natural log
// (math.Log is fine too; this keeps the sampling arithmetic explicit and
// testable against it).
func logApprox(x float64) float64 {
	// Normalize into [0.5, 1) via halvings, then atanh series.
	const ln2 = 0.6931471805599453
	k := 0
	for x < 0.5 {
		x *= 2
		k++
	}
	y := (x - 1) / (x + 1)
	y2 := y * y
	term, sum := y, 0.0
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	return 2*sum - float64(k)*ln2
}

// SchedPolicy names one scheduling discipline under study.
type SchedPolicy struct {
	Name string
	Opt  sched.StreamOptions
}

// SchedPolicies returns the policy-vs-policy lineup: the classic
// baselines against the prediction-guided pair (SPJF ordering, and SPJF
// plus deadline-aware admission).
func SchedPolicies() []SchedPolicy {
	return []SchedPolicy{
		{Name: "fifo", Opt: sched.StreamOptions{Policy: sched.PolicyFIFO}},
		{Name: "drf", Opt: sched.StreamOptions{Policy: sched.PolicyDRF}},
		{Name: "fair", Opt: sched.StreamOptions{Policy: sched.PolicyFair}},
		{Name: "spjf", Opt: sched.StreamOptions{Policy: sched.PolicySPJF}},
		{Name: "spjf+slo", Opt: sched.StreamOptions{Policy: sched.PolicySPJF, DeadlineAdmission: true}},
	}
}

// StreamPolicyRow is one (scenario, policy) cell of the study.
type StreamPolicyRow struct {
	Scenario, Policy string
	Makespan         time.Duration
	P95Slowdown      float64
	MeanSlowdown     float64
	SLOMissRate      float64
	Admitted         int
	Rejected         int
	Missed           int
	Preemptions      int
}

// SchedPolicyStudy replays every arrival scenario under every policy.
// Rows come back scenario-major in SchedPolicies order; the whole thing
// is deterministic in (cfg, seed).
func SchedPolicyStudy(cfg Config, seed int64) ([]StreamPolicyRow, error) {
	scenarios, err := ArrivalScenarios(cfg, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]StreamPolicyRow, 0, len(scenarios)*len(SchedPolicies()))
	for _, sc := range scenarios {
		for _, p := range SchedPolicies() {
			opt := p.Opt
			opt.Hierarchy = sc.Hierarchy
			r := sched.RunStream(sc.Pool, sc.Jobs, opt)
			rows = append(rows, StreamPolicyRow{
				Scenario:     sc.Name,
				Policy:       p.Name,
				Makespan:     units.Seconds(r.Makespan),
				P95Slowdown:  r.P95Slowdown,
				MeanSlowdown: r.MeanSlowdown,
				SLOMissRate:  r.SLOMissRate,
				Admitted:     r.Admitted,
				Rejected:     r.Rejected,
				Missed:       r.Missed,
				Preemptions:  r.Preemptions,
			})
		}
	}
	return rows, nil
}

// RenderSchedPolicy prints the policy study as a table, one row per
// (scenario, policy).
func RenderSchedPolicy(w io.Writer, rows []StreamPolicyRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Scenario\tPolicy\tMakespan\tp95 slowdown\tmean slowdown\tSLO miss\tadmit\treject\tmiss\tpreempt")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0fs\t%.2f\t%.2f\t%.0f%%\t%d\t%d\t%d\t%d\n",
			r.Scenario, r.Policy, r.Makespan.Seconds(),
			r.P95Slowdown, r.MeanSlowdown, 100*r.SLOMissRate,
			r.Admitted, r.Rejected, r.Missed, r.Preemptions)
	}
	tw.Flush()
}
