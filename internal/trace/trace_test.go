package trace

import (
	"strings"
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func sampleResult(t *testing.T) *simulator.Result {
	t.Helper()
	flow := dag.Parallel("demo",
		dag.Single(workload.WordCount(3*units.GB)),
		dag.Single(workload.TeraSort(3*units.GB)))
	res, err := simulator.New(cluster.PaperCluster(), simulator.Options{Seed: 1}).Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGanttMentionsStagesAndStates(t *testing.T) {
	res := sampleResult(t)
	var sb strings.Builder
	Gantt(&sb, res)
	out := sb.String()
	for _, want := range []string{"demo", "WC/WC/map", "TS/TS/reduce", "state 1", "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "█") {
		t.Error("Gantt output has no bars")
	}
}

func TestGanttEmptyResult(t *testing.T) {
	var sb strings.Builder
	Gantt(&sb, &simulator.Result{Workflow: "x"})
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty result rendering = %q", sb.String())
	}
}

func TestPlanRendering(t *testing.T) {
	flow := dag.Single(workload.WordCount(3 * units.GB))
	timer := &statemodel.BOETimer{Model: boe.New(cluster.PaperCluster()), TaskStartOverhead: time.Second}
	plan, err := statemodel.New(cluster.PaperCluster(), timer, statemodel.Options{}).Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Plan(&sb, plan)
	out := sb.String()
	for _, want := range []string{"WC", "estimated makespan", "state 1", "░"} {
		if !strings.Contains(out, want) {
			t.Errorf("Plan output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanEmpty(t *testing.T) {
	var sb strings.Builder
	Plan(&sb, &statemodel.Plan{Workflow: "x"})
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty plan rendering = %q", sb.String())
	}
}

func TestTaskWaves(t *testing.T) {
	res := sampleResult(t)
	var sb strings.Builder
	TaskWaves(&sb, res, "WC/WC", workload.Map)
	out := sb.String()
	if !strings.Contains(out, "WC/WC/map tasks") {
		t.Errorf("TaskWaves header missing:\n%s", out)
	}
	if !strings.Contains(out, "task ") {
		t.Error("TaskWaves printed no tasks")
	}

	sb.Reset()
	TaskWaves(&sb, res, "nope", workload.Map)
	if !strings.Contains(sb.String(), "no tasks") {
		t.Errorf("missing-job rendering = %q", sb.String())
	}
}

func TestGanttBarsScaleWithDuration(t *testing.T) {
	res := sampleResult(t)
	var sb strings.Builder
	Gantt(&sb, res)
	// The longest stage must render more bar cells than the shortest.
	lines := strings.Split(sb.String(), "\n")
	longest, shortest := -1, 1<<30
	for _, l := range lines {
		n := strings.Count(l, "█")
		if n == 0 {
			continue
		}
		if n > longest {
			longest = n
		}
		if n < shortest {
			shortest = n
		}
	}
	if longest <= shortest {
		t.Errorf("bars undifferentiated: longest %d, shortest %d", longest, shortest)
	}
}
