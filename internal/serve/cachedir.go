package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"boedag/internal/cachestore"
)

// snapshotFile is the on-disk name of the warm cache inside CacheDir.
const snapshotFile = "estimate_cache.snap"

// SnapshotPath returns where the warm cache snapshot lives, or "" when no
// CacheDir is configured.
func (s *Server) SnapshotPath() string {
	if s.cfg.CacheDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.CacheDir, snapshotFile)
}

// restoreCache warms the response cache from the CacheDir snapshot during
// New. A missing snapshot is a clean cold start; a damaged one is counted
// in cache_restore_failed and otherwise ignored — a bad warm cache must
// never stop the daemon from booting. Only an unusable CacheDir (cannot
// be created) is a hard error, because the operator asked for durability
// the server cannot provide.
func (s *Server) restoreCache() error {
	path := s.SnapshotPath()
	if path == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.CacheDir, 0o755); err != nil {
		return fmt.Errorf("serve: cache dir: %w", err)
	}
	entries, err := cachestore.Read(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return nil // first boot: nothing to restore
	case err != nil:
		s.restoreFailed.Inc()
		return nil
	}
	for _, e := range entries {
		s.cache.Seed(e.Key, e.Val)
		s.restored.Inc()
	}
	return nil
}

// SaveCacheSnapshot persists the completed response-cache entries to the
// CacheDir snapshot (atomically — a crash mid-save keeps the previous
// snapshot). It is a no-op without a CacheDir. Serve calls it after the
// graceful drain; long-running deployments may also call it periodically.
func (s *Server) SaveCacheSnapshot() error {
	path := s.SnapshotPath()
	if path == "" {
		return nil
	}
	var entries []cachestore.Entry
	s.cache.Range(func(key string, val []byte) bool {
		entries = append(entries, cachestore.Entry{Key: key, Val: val})
		return true
	})
	return cachestore.Write(path, entries)
}
