// Package fleet shards the prediction service across replicated boedagd
// nodes. Each node owns a slice of PlanKey space via a consistent-hash
// ring; a request landing on a non-owner is forwarded — one hop, bounded
// retries with backoff along the fallback-owner sequence — to the node
// whose response cache owns the scenario, so a fleet of N nodes holds one
// logical cache instead of N overlapping ones. When every peer is
// unreachable the receiving node degrades to computing locally: fleet
// mode can only add availability, never remove it.
package fleet

import (
	"fmt"
	"sort"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	// DefaultVirtualNodes is how many ring points each node projects.
	// More points smooth the key distribution; 128 keeps the per-node
	// share within a few percent of uniform for small fleets.
	DefaultVirtualNodes = 128
)

func fnv64a(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// ringHash places a label on the circle: FNV-64a for the digest, then a
// splitmix64-style finalizer for avalanche — raw FNV of near-identical
// labels ("node0#1", "node0#2", …) clusters badly on the circle, and a
// clustered ring concentrates load on whichever node the gaps favor.
func ringHash(s string) uint64 {
	x := fnv64a(s)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ring is an immutable consistent-hash ring over node IDs. Every node
// projects vnodes points onto the 64-bit circle; a key belongs to the
// node owning the first point at or after the key's hash. Because a
// node's points depend only on its own ID, adding or removing a node
// moves only the keys adjacent to that node's points — the minimal-
// disruption property TestRingRebalance pins.
type Ring struct {
	nodes  []string
	points []point // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node IDs with vnodes points per
// node (DefaultVirtualNodes when <= 0). Node IDs must be unique and
// non-empty.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]point, 0, len(nodes)*vnodes),
	}
	for _, id := range nodes {
		if id == "" {
			return nil, fmt.Errorf("fleet: empty node ID")
		}
		if seen[id] {
			return nil, fmt.Errorf("fleet: duplicate node ID %q", id)
		}
		seen[id] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: ringHash(fmt.Sprintf("%s#%d", id, v)),
				node: id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (astronomically rare) tie-break by node ID so
		// every replica sorts the ring identically.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the ring's node IDs in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key.
func (r *Ring) Owner(key string) string { return r.points[r.search(key)].node }

// Owners returns up to n distinct nodes for key: the owner first, then
// the fallback sequence walking the ring clockwise — the same order every
// replica computes, so retries converge on the same fallback.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// search returns the index of the first point at or after key's hash,
// wrapping past the top of the circle.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
