package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/obs"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCompare checks got against testdata/<name>, rewriting the file
// when -update is set. The demo workflow is fully deterministic (fixed
// seed, fixed cluster), so renderer output is byte-stable.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; diff the output below against %s or rerun with -update\n%s",
			name, path, got)
	}
}

func TestGanttGolden(t *testing.T) {
	var buf bytes.Buffer
	Gantt(&buf, sampleResult(t))
	goldenCompare(t, "gantt.txt", buf.Bytes())
}

func TestPlanGolden(t *testing.T) {
	spec := cluster.PaperCluster()
	timer := &statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second}
	flow := dag.Parallel("demo",
		dag.Single(workload.WordCount(3*units.GB)),
		dag.Single(workload.TeraSort(3*units.GB)))
	plan, err := statemodel.New(spec, timer, statemodel.Options{}).Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Plan(&buf, plan)
	goldenCompare(t, "plan.txt", buf.Bytes())
}

func TestExportsGolden(t *testing.T) {
	res := sampleResult(t)
	for _, tc := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"tasks.csv", func(b *bytes.Buffer) error { return ExportTasksCSV(b, res) }},
		{"stages.csv", func(b *bytes.Buffer) error { return ExportStagesCSV(b, res) }},
		{"result.json", func(b *bytes.Buffer) error { return ExportResultJSON(b, res) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(&buf); err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, tc.name, buf.Bytes())
		})
	}
}

// TestObservabilityGolden pins the Chrome trace and text summary of the
// demo run, exercising the obs export paths end to end.
func TestObservabilityGolden(t *testing.T) {
	rec := obs.NewRecorder()
	flow := dag.Parallel("demo",
		dag.Single(workload.WordCount(3*units.GB)),
		dag.Single(workload.TeraSort(3*units.GB)))
	opt := simulator.Options{Seed: 1, Observe: obs.Options{Tracer: rec}}
	if _, err := simulator.New(cluster.PaperCluster(), opt).Run(flow); err != nil {
		t.Fatal(err)
	}
	var chrome bytes.Buffer
	if err := obs.WriteChromeTrace(&chrome, rec.Events()); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "chrome_trace.json", chrome.Bytes())

	var summary bytes.Buffer
	obs.WriteSummary(&summary, rec.Events())
	goldenCompare(t, "summary.txt", summary.Bytes())
}

// TestMetricsGolden pins the deterministic JSON metrics dump (sorted
// metric names, fixed demo run) and the OTLP/JSON export (fnv-derived
// ids, fixed wall-clock anchor) byte for byte.
func TestMetricsGolden(t *testing.T) {
	rec := obs.NewRecorder()
	reg := obs.NewRegistry()
	flow := dag.Parallel("demo",
		dag.Single(workload.WordCount(3*units.GB)),
		dag.Single(workload.TeraSort(3*units.GB)))
	opt := simulator.Options{Seed: 1, Observe: obs.Options{Tracer: rec, Metrics: reg}}
	if _, err := simulator.New(cluster.PaperCluster(), opt).Run(flow); err != nil {
		t.Fatal(err)
	}

	var metrics bytes.Buffer
	if err := reg.WriteJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "metrics.json", metrics.Bytes())

	var otlp bytes.Buffer
	if err := obs.WriteOTLP(&otlp, rec.Events(), reg,
		obs.OTLPOptions{Start: time.Unix(1700000000, 0)}); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "otlp.json", otlp.Bytes())
}
