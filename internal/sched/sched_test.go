package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"boedag/internal/cluster"
)

func pool() Pool { return Pool{MemoryMB: 352 * 1024, VCores: 132, Slots: 132} }

func TestDRFEqualJobsSplitEqually(t *testing.T) {
	reqs := []Request{
		{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 200},
		{JobID: "b", MemoryMB: 1024, VCores: 1, Pending: 200},
	}
	got := DRF(pool(), reqs, nil)
	if got["a"] != 66 || got["b"] != 66 {
		t.Errorf("equal jobs got %v, want 66/66", got)
	}
}

func TestDRFDominantResource(t *testing.T) {
	// Job a is memory-hungry, job b is CPU-hungry: DRF equalizes the
	// dominant shares, the canonical example of Ghodsi et al.
	p := Pool{MemoryMB: 100, VCores: 100, Slots: 1000}
	reqs := []Request{
		{JobID: "mem", MemoryMB: 4, VCores: 1, Pending: 1000},
		{JobID: "cpu", MemoryMB: 1, VCores: 4, Pending: 1000},
	}
	got := DRF(p, reqs, nil)
	// Equal dominant shares: mem job 4m/100 ≈ cpu job 4c/100 → 20 each
	// fills 80m+20c and 20m+80c.
	if got["mem"] != 20 || got["cpu"] != 20 {
		t.Errorf("DRF grants = %v, want 20/20", got)
	}
}

func TestDRFRespectsPending(t *testing.T) {
	reqs := []Request{
		{JobID: "small", MemoryMB: 1024, VCores: 1, Pending: 5},
		{JobID: "big", MemoryMB: 1024, VCores: 1, Pending: 1000},
	}
	got := DRF(pool(), reqs, nil)
	if got["small"] != 5 {
		t.Errorf("small job granted %d, want its full 5", got["small"])
	}
	if got["big"] != 127 {
		t.Errorf("big job granted %d, want the remaining 127", got["big"])
	}
}

func TestDRFRespectsCap(t *testing.T) {
	reqs := []Request{
		{JobID: "capped", MemoryMB: 1024, VCores: 1, Pending: 1000, Cap: 10},
		{JobID: "free", MemoryMB: 1024, VCores: 1, Pending: 1000},
	}
	got := DRF(pool(), reqs, nil)
	if got["capped"] != 10 {
		t.Errorf("capped job granted %d, want 10", got["capped"])
	}
	if got["free"] != 122 {
		t.Errorf("free job granted %d, want 122", got["free"])
	}
}

func TestDRFHeldCountsTowardShareAndPool(t *testing.T) {
	reqs := []Request{
		{JobID: "holder", MemoryMB: 1024, VCores: 1, Pending: 1000},
		{JobID: "fresh", MemoryMB: 1024, VCores: 1, Pending: 1000},
	}
	held := Allocation{"holder": 100}
	got := DRF(pool(), reqs, held)
	// 32 slots remain; the fresh job has the lower dominant share and
	// should take them all.
	if got["fresh"] != 32 {
		t.Errorf("fresh job granted %d, want 32", got["fresh"])
	}
	if got["holder"] != 0 {
		t.Errorf("holder granted %d more, want 0", got["holder"])
	}
}

func TestDRFHeldCapIncludesHeld(t *testing.T) {
	reqs := []Request{
		{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 1000, Cap: 10},
	}
	held := Allocation{"a": 10}
	got := DRF(pool(), reqs, held)
	if got["a"] != 0 {
		t.Errorf("granted %d beyond cap, want 0", got["a"])
	}
}

func TestDRFSlotsBind(t *testing.T) {
	p := Pool{MemoryMB: 1 << 30, VCores: 1 << 20, Slots: 7}
	reqs := []Request{{JobID: "a", MemoryMB: 1, VCores: 1, Pending: 100}}
	got := DRF(p, reqs, nil)
	if got["a"] != 7 {
		t.Errorf("granted %d, want slot-bound 7", got["a"])
	}
}

func TestDRFMemoryBinds(t *testing.T) {
	p := Pool{MemoryMB: 10 * 1024, VCores: 1000, Slots: 1000}
	reqs := []Request{{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 100}}
	got := DRF(p, reqs, nil)
	if got["a"] != 10 {
		t.Errorf("granted %d, want memory-bound 10", got["a"])
	}
}

func TestDRFDeterministicTieBreak(t *testing.T) {
	reqs := []Request{
		{JobID: "z", MemoryMB: 1024, VCores: 1, Pending: 1},
		{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 1},
	}
	p := Pool{MemoryMB: 1024, VCores: 1, Slots: 1}
	got := DRF(p, reqs, nil)
	if got["a"] != 1 || got["z"] != 0 {
		t.Errorf("tie should go to lexicographically first job: %v", got)
	}
}

func TestAllocationTotal(t *testing.T) {
	a := Allocation{"x": 3, "y": 4}
	if got := a.Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
}

func TestPoolOf(t *testing.T) {
	spec := cluster.PaperCluster()
	p := PoolOf(spec)
	if p.Slots != 132 {
		t.Errorf("Slots = %d, want 132", p.Slots)
	}
	if p.VCores != 132 {
		t.Errorf("VCores = %d, want 132 (follows slots, not physical cores)", p.VCores)
	}
	if p.MemoryMB != 11*32*1024 {
		t.Errorf("MemoryMB = %d", p.MemoryMB)
	}
}

func TestWithSlotLimit(t *testing.T) {
	p := pool().WithSlotLimit(22)
	if p.Slots != 22 || p.VCores != 22 {
		t.Errorf("WithSlotLimit = %+v, want slots and vcores 22", p)
	}
	q := pool().WithSlotLimit(0)
	if q.Slots != 132 {
		t.Errorf("WithSlotLimit(0) changed slots: %+v", q)
	}
}

func TestParallelismBoostsZeroPending(t *testing.T) {
	got := Parallelism(pool(), []Request{
		{JobID: "a", MemoryMB: 1024, VCores: 1}, // Pending 0 = unbounded
		{JobID: "b", MemoryMB: 1024, VCores: 1},
	})
	if got["a"] != 66 || got["b"] != 66 {
		t.Errorf("Parallelism = %v, want 66/66", got)
	}
}

func TestParallelismKeepsFinitePending(t *testing.T) {
	got := Parallelism(pool(), []Request{
		{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 4},
		{JobID: "b", MemoryMB: 1024, VCores: 1},
	})
	if got["a"] != 4 {
		t.Errorf("job a granted %d, want its 4 pending", got["a"])
	}
	if got["b"] != 128 {
		t.Errorf("job b granted %d, want 128", got["b"])
	}
}

// Property: DRF never over-commits memory, vcores, slots, pending or
// caps, for arbitrary request mixes.
func TestDRFNeverOvercommits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Pool{
			MemoryMB: rng.Intn(100000) + 1000,
			VCores:   rng.Intn(200) + 1,
			Slots:    rng.Intn(200) + 1,
		}
		n := rng.Intn(5) + 1
		reqs := make([]Request, n)
		held := Allocation{}
		for i := range reqs {
			reqs[i] = Request{
				JobID:    string(rune('a' + i)),
				MemoryMB: rng.Intn(4096) + 1,
				VCores:   rng.Intn(4) + 1,
				Pending:  rng.Intn(300),
				Cap:      rng.Intn(50),
			}
			if rng.Intn(2) == 0 {
				held[reqs[i].JobID] = rng.Intn(5)
			}
		}
		got := DRF(p, reqs, held)
		mem, cpu, slots := 0, 0, 0
		for _, r := range reqs {
			g := got[r.JobID]
			if g < 0 || g > r.Pending {
				return false
			}
			if r.Cap > 0 && held[r.JobID] <= r.Cap && g+held[r.JobID] > r.Cap {
				return false
			}
			total := g + held[r.JobID]
			mem += total * r.MemoryMB
			cpu += total * r.VCores
			slots += total
		}
		// Held containers may pre-exceed the pool (they were granted
		// earlier under different conditions); new grants must not push a
		// within-pool total over the top.
		heldMem, heldCPU, heldSlots := 0, 0, 0
		for _, r := range reqs {
			heldMem += held[r.JobID] * r.MemoryMB
			heldCPU += held[r.JobID] * r.VCores
			heldSlots += held[r.JobID]
		}
		if heldMem <= p.MemoryMB && mem > p.MemoryMB {
			return false
		}
		if heldCPU <= p.VCores && cpu > p.VCores {
			return false
		}
		if heldSlots <= p.Slots && slots > p.Slots {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
