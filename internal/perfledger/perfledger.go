// Package perfledger turns performance measurements into durable,
// comparable artifacts: the versioned BENCH_*.json ledger files this
// repository commits alongside code so the perf trajectory is recorded
// data rather than anecdotes in PR descriptions.
//
// A ledger captures one measurement session — who measured (build info:
// go version, GOMAXPROCS, VCS revision), what was measured (a
// boedagbench service load run and/or `go test -bench` micro-benchmark
// results), and the numbers themselves (throughput, exact nearest-rank
// latency percentiles, ns/op, allocs/op). Write/Read round-trip the
// file, Validate rejects malformed ledgers, and Compare diffs two
// ledgers against a tolerance band — the benchstat-style regression
// gate hack/verify.sh runs against hack/bench_baseline.json.
package perfledger

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
)

// SchemaVersion is the ledger schema this package writes. Read rejects
// files whose schema field does not match: a ledger is a long-lived
// artifact and silent reinterpretation would corrupt the trajectory.
const SchemaVersion = 1

// Ledger is one recorded measurement session — the top-level object of
// a BENCH_*.json file.
type Ledger struct {
	// Schema is the ledger format version (SchemaVersion).
	Schema int `json:"schema"`
	// Label names the session ("pr6-baseline", "smoke", …).
	Label string `json:"label,omitempty"`
	// CreatedAt is the RFC 3339 creation time, supplied by the producer.
	CreatedAt string `json:"created_at,omitempty"`
	// Source names the producing pipeline: "boedagbench" for service
	// load runs, "go-bench" for parsed `go test -bench` output, or
	// "boedagbench+go-bench" when one ledger holds both.
	Source string `json:"source"`
	// Build tags the run with the exact build that produced it.
	Build BuildInfo `json:"build"`
	// Service holds the load-harness results, when the session drove one.
	Service *ServiceRun `json:"service,omitempty"`
	// Benchmarks holds micro-benchmark results, when the session ran any.
	Benchmarks []Benchmark `json:"benchmarks,omitempty"`
}

// BuildInfo identifies the binary and machine behind a measurement. It
// doubles as the "build" object of the daemon's GET /version response,
// so ledgers recorded against a remote boedagd can tag the server's
// build rather than the harness's.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// CurrentBuild captures the running binary's build info via
// runtime/debug.ReadBuildInfo (module version, VCS stamp when built
// from a git checkout) plus the runtime facts every ledger needs.
func CurrentBuild() BuildInfo {
	b := BuildInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		b.Module = info.Main.Path
		b.Version = info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				b.VCSRevision = s.Value
			case "vcs.time":
				b.VCSTime = s.Value
			case "vcs.modified":
				b.VCSModified = s.Value == "true"
			}
		}
	}
	return b
}

// ServiceRun records one boedagbench load run against a prediction
// server: the generator configuration (enough to reproduce the exact
// request mix — the mix is a pure function of seed, workflows and
// sizes) and the measured outcome.
type ServiceRun struct {
	// Target is the URL driven, or "in-process".
	Target string `json:"target"`
	// TargetBuild is the server's GET /version build info, when reachable.
	TargetBuild *BuildInfo `json:"target_build,omitempty"`
	// Mode is "closed" (fixed connections, next request on completion)
	// or "open" (fixed arrival rate).
	Mode string `json:"mode"`
	// Seed is the request-mix seed: same seed, workflows and sizes →
	// byte-identical request sequence.
	Seed int64 `json:"seed"`
	// Workflows and SizesGB are the seeded mix dimensions.
	Workflows []string  `json:"workflows"`
	SizesGB   []float64 `json:"sizes_gb"`
	// Connections is the closed-loop concurrency; RatePerSec the
	// open-loop target arrival rate (0 when closed).
	Connections int     `json:"connections"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	// WarmupS requests are discarded before the DurationS measured window.
	WarmupS   float64 `json:"warmup_s"`
	DurationS float64 `json:"duration_s"`

	// Requests/Errors count the measured window; ThroughputRPS is
	// Requests over the actual elapsed window.
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency summarizes the measured request latencies with exact
	// nearest-rank percentiles (obs.Percentile over the raw samples).
	Latency LatencySummary `json:"latency"`
	// StatusCounts tallies responses by HTTP status code.
	StatusCounts map[string]int64 `json:"status_counts,omitempty"`
	// MixCounts tallies measured requests by workflow name.
	MixCounts map[string]int64 `json:"mix_counts,omitempty"`
}

// LatencySummary is an exact latency distribution summary in seconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	MeanS float64 `json:"mean_s"`
	P50S  float64 `json:"p50_s"`
	P90S  float64 `json:"p90_s"`
	P99S  float64 `json:"p99_s"`
	MaxS  float64 `json:"max_s"`
}

// Benchmark is one `go test -bench` result row, GOMAXPROCS suffix
// stripped from the name so ledgers compare across machines.
type Benchmark struct {
	Name string `json:"name"`
	// Iterations is the b.N the reported per-op numbers were averaged over.
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (accuracy-%, improvement-x).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Write marshals the ledger to path as indented, deterministic JSON.
func Write(path string, l Ledger) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perfledger: %w", err)
	}
	if err := WriteTo(f, l); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("perfledger: %w", err)
	}
	return nil
}

// WriteTo marshals the ledger to w.
func WriteTo(w io.Writer, l Ledger) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("perfledger: encode: %w", err)
	}
	return nil
}

// Read parses and validates a ledger file. Unknown fields are rejected —
// a typo'd field in a committed baseline must fail loudly, not silently
// weaken the gate.
func Read(path string) (Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return Ledger{}, fmt.Errorf("perfledger: %w", err)
	}
	defer f.Close()
	return ReadFrom(f)
}

// ReadFrom parses and validates a ledger from r.
func ReadFrom(r io.Reader) (Ledger, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var l Ledger
	if err := dec.Decode(&l); err != nil {
		return Ledger{}, fmt.Errorf("perfledger: parse: %w", err)
	}
	if err := Validate(l); err != nil {
		return Ledger{}, err
	}
	return l, nil
}

// Validate checks a ledger's internal consistency: schema version,
// required identification, and measured numbers that make sense
// (ordered percentiles, non-negative counts, positive per-op times).
func Validate(l Ledger) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("perfledger: invalid ledger: "+format, args...)
	}
	if l.Schema != SchemaVersion {
		return bad("schema %d, want %d", l.Schema, SchemaVersion)
	}
	if l.Source == "" {
		return bad("missing source")
	}
	if l.Build.GoVersion == "" {
		return bad("missing build.go_version")
	}
	if l.Build.GOMAXPROCS < 1 {
		return bad("build.gomaxprocs = %d", l.Build.GOMAXPROCS)
	}
	if l.Service == nil && len(l.Benchmarks) == 0 {
		return bad("neither service results nor benchmarks recorded")
	}
	if s := l.Service; s != nil {
		switch {
		case s.Mode != "closed" && s.Mode != "open":
			return bad("service.mode %q (closed | open)", s.Mode)
		case s.DurationS <= 0:
			return bad("service.duration_s = %v", s.DurationS)
		case s.Requests < 0 || s.Errors < 0 || s.Errors > s.Requests:
			return bad("service requests/errors = %d/%d", s.Requests, s.Errors)
		case s.Requests > 0 && s.ThroughputRPS <= 0:
			return bad("service.throughput_rps = %v with %d requests", s.ThroughputRPS, s.Requests)
		case len(s.Workflows) == 0:
			return bad("service.workflows empty")
		}
		lat := s.Latency
		if lat.Count < 0 || lat.Count > s.Requests {
			return bad("latency.count = %d of %d requests", lat.Count, s.Requests)
		}
		if lat.Count > 0 {
			if !(lat.P50S <= lat.P90S && lat.P90S <= lat.P99S && lat.P99S <= lat.MaxS) {
				return bad("latency percentiles out of order: p50=%v p90=%v p99=%v max=%v",
					lat.P50S, lat.P90S, lat.P99S, lat.MaxS)
			}
			if lat.P50S <= 0 {
				return bad("latency.p50_s = %v", lat.P50S)
			}
		}
	}
	seen := make(map[string]bool, len(l.Benchmarks))
	for _, b := range l.Benchmarks {
		if b.Name == "" {
			return bad("unnamed benchmark")
		}
		if seen[b.Name] {
			return bad("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Iterations < 1 {
			return bad("benchmark %s: iterations = %d", b.Name, b.Iterations)
		}
		if b.NsPerOp < 0 || b.AllocsPerOp < 0 || b.BytesPerOp < 0 {
			return bad("benchmark %s: negative per-op numbers", b.Name)
		}
	}
	return nil
}

// Delta is one compared quantity between two ledgers. Ratio is new/old;
// for all compared quantities except throughput, greater is worse.
type Delta struct {
	// Name locates the quantity: "service.latency.p50_s",
	// "bench.BenchmarkEstimatorAllocs.ns_per_op", …
	Name string
	Old  float64
	New  float64
	// Ratio is New/Old (0 when Old is 0).
	Ratio float64
	// Regressed marks deltas outside the tolerance band in the bad
	// direction.
	Regressed bool
	// Missing marks quantities present in the base but absent from the
	// fresh ledger — a gate cannot pass on vanished coverage.
	Missing bool
}

// Compare diffs fresh against base with a relative tolerance band:
// higher-is-worse quantities (latency percentiles, ns/op, allocs/op)
// regress when new > old·(1+tol), throughput regresses when
// new < old/(1+tol). Quantities only one side recorded are skipped,
// except base benchmarks missing from fresh, which are reported as
// Missing (and count as regressions — the trajectory lost a data
// point). Deltas come back in a stable order, regressions included and
// flagged, so gates can print the full picture.
func Compare(base, fresh Ledger, tol float64) []Delta {
	if tol < 0 {
		tol = 0
	}
	var deltas []Delta
	worse := func(name string, old, new float64) {
		if old <= 0 {
			return
		}
		d := Delta{Name: name, Old: old, New: new, Ratio: new / old}
		d.Regressed = new > old*(1+tol)
		deltas = append(deltas, d)
	}

	if base.Service != nil && fresh.Service != nil {
		ob, nb := base.Service, fresh.Service
		if ob.ThroughputRPS > 0 {
			d := Delta{Name: "service.throughput_rps",
				Old: ob.ThroughputRPS, New: nb.ThroughputRPS,
				Ratio: nb.ThroughputRPS / ob.ThroughputRPS}
			// Symmetric with the latency band in slowdown terms: a 1+tol ×
			// slowdown fails whether it shows up as latency or throughput.
			d.Regressed = nb.ThroughputRPS <= 0 ||
				nb.ThroughputRPS < ob.ThroughputRPS/(1+tol)
			deltas = append(deltas, d)
		}
		worse("service.latency.p50_s", ob.Latency.P50S, nb.Latency.P50S)
		worse("service.latency.p90_s", ob.Latency.P90S, nb.Latency.P90S)
		worse("service.latency.p99_s", ob.Latency.P99S, nb.Latency.P99S)
	}

	freshBench := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBench[b.Name] = b
	}
	names := make([]string, 0, len(base.Benchmarks))
	byName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		names = append(names, b.Name)
		byName[b.Name] = b
	}
	sort.Strings(names)
	for _, name := range names {
		ob := byName[name]
		nb, ok := freshBench[name]
		if !ok {
			deltas = append(deltas, Delta{Name: "bench." + name,
				Old: ob.NsPerOp, Regressed: true, Missing: true})
			continue
		}
		worse("bench."+name+".ns_per_op", ob.NsPerOp, nb.NsPerOp)
		worse("bench."+name+".allocs_per_op", ob.AllocsPerOp, nb.AllocsPerOp)
	}
	return deltas
}

// Regressions filters a Compare result down to the failing deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
