package obs

import (
	"sync"
	"sync/atomic"
)

// DropPolicy decides what a Stream does when a subscriber's buffer is
// full. Either way the producer never blocks: the simulator hot loop is
// isolated from slow consumers by construction.
type DropPolicy uint8

const (
	// DropNewest discards the incoming event when the buffer is full —
	// the subscriber keeps the oldest window of the stream.
	DropNewest DropPolicy = iota
	// DropOldest evicts the oldest buffered event to admit the incoming
	// one — the subscriber keeps the freshest window of the stream.
	DropOldest
)

// String names the policy.
func (p DropPolicy) String() string {
	if p == DropOldest {
		return "drop-oldest"
	}
	return "drop-newest"
}

// DefaultSubscriberBuffer is the per-subscriber channel capacity used by
// Subscribe. A full simulation of the paper's workloads emits tens of
// thousands of events; the default absorbs bursts without forcing
// consumers to keep pace event-by-event.
const DefaultSubscriberBuffer = 4096

// Stream is a fan-out Tracer: every emitted event is forwarded to each
// subscriber's bounded channel. Enabled reports true only while at least
// one subscriber is attached, so a Stream with no subscribers keeps the
// allocation-free disabled path — emit sites never even build the Event.
//
// Delivery is non-blocking under both drop policies; a slow consumer
// loses events (counted per subscriber via Drops) instead of stalling the
// producer. Safe for concurrent use by any number of producers,
// subscribers, and consumers.
type Stream struct {
	mu     sync.RWMutex
	subs   []*Subscriber
	closed bool
	// active mirrors len(subs) so Enabled is a single atomic load on the
	// hot path instead of an RLock.
	active atomic.Int32
}

// NewStream returns an empty stream with no subscribers.
func NewStream() *Stream { return &Stream{} }

// Enabled implements Tracer: true while at least one subscriber listens.
func (s *Stream) Enabled() bool { return s.active.Load() > 0 }

// Emit implements Tracer: forward ev to every subscriber, applying each
// subscriber's drop policy when its buffer is full. Never blocks.
func (s *Stream) Emit(ev Event) {
	s.mu.RLock()
	for _, sub := range s.subs {
		sub.deliver(ev)
	}
	s.mu.RUnlock()
}

// Subscribe attaches a new subscriber with the given buffer capacity
// (DefaultSubscriberBuffer when ≤ 0) and the DropNewest policy.
func (s *Stream) Subscribe(buffer int) *Subscriber {
	return s.SubscribeWith(buffer, DropNewest)
}

// SubscribeWith attaches a new subscriber with an explicit drop policy.
// Subscribing to a closed stream returns a subscriber whose channel is
// already closed.
func (s *Stream) SubscribeWith(buffer int, policy DropPolicy) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	sub := &Subscriber{ch: make(chan Event, buffer), policy: policy, stream: s}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(sub.ch)
		return sub
	}
	s.subs = append(s.subs, sub)
	s.active.Store(int32(len(s.subs)))
	s.mu.Unlock()
	return sub
}

// Close detaches every subscriber and closes their channels so consumers
// ranging over Events() terminate. Further Emits are dropped silently;
// Close is idempotent.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	subs := s.subs
	s.subs = nil
	s.active.Store(0)
	s.mu.Unlock()
	for _, sub := range subs {
		close(sub.ch)
	}
}

// detach removes one subscriber (Subscriber.Close). Reports whether the
// subscriber was still attached — the caller only closes the channel when
// it was, so a racing Stream.Close never double-closes.
func (s *Stream) detach(sub *Subscriber) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, cur := range s.subs {
		if cur == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			s.active.Store(int32(len(s.subs)))
			return true
		}
	}
	return false
}

// Subscriber is one bounded consumer of a Stream. Read events from
// Events(); the channel closes when either side calls Close.
type Subscriber struct {
	ch     chan Event
	policy DropPolicy
	stream *Stream
	drops  atomic.Int64
	once   sync.Once
}

// Events returns the subscriber's receive channel. It closes when the
// subscriber or its stream is closed; events buffered before the close
// are still delivered first (Go channel semantics), so closing the
// stream after a run flushes the tail of the event sequence.
func (u *Subscriber) Events() <-chan Event { return u.ch }

// Drops reports how many events were discarded because the buffer was
// full — the observable cost of being a slow consumer.
func (u *Subscriber) Drops() int64 { return u.drops.Load() }

// Policy returns the subscriber's drop policy.
func (u *Subscriber) Policy() DropPolicy { return u.policy }

// Close detaches the subscriber from its stream and closes the channel.
// Idempotent; safe to call concurrently with the stream's Emit/Close.
func (u *Subscriber) Close() {
	u.once.Do(func() {
		if u.stream.detach(u) {
			close(u.ch)
		}
	})
}

// deliver enqueues one event without ever blocking the producer. Called
// only while the subscriber is attached (under the stream's read lock),
// so the channel cannot be closed concurrently.
func (u *Subscriber) deliver(ev Event) {
	select {
	case u.ch <- ev:
		return
	default:
	}
	if u.policy == DropOldest {
		// Evict one buffered event, then retry once. A concurrent producer
		// may steal the freed slot, losing both the evicted event and ours;
		// counting the eviction separately keeps the global invariant exact:
		// events consumed + Drops() == events emitted, under any number of
		// concurrent producers and consumers.
		evicted := false
		select {
		case <-u.ch:
			evicted = true
		default:
		}
		select {
		case u.ch <- ev:
			if evicted {
				u.drops.Add(1) // the evicted oldest event
			}
			return
		default:
		}
		if evicted {
			u.drops.Add(2) // the evicted event and ours, both lost
			return
		}
	}
	u.drops.Add(1)
}

// Tee fans events out to several tracers: Enabled when any is, Emit
// forwards to each enabled one. Nil and Nop entries are skipped; Tee of
// zero or one live tracer collapses to Nop or the tracer itself.
func Tee(tracers ...Tracer) Tracer {
	live := make([]Tracer, 0, len(tracers))
	for _, tr := range tracers {
		if tr == nil || tr == Nop {
			continue
		}
		live = append(live, tr)
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Tracer

func (t tee) Enabled() bool {
	for _, tr := range t {
		if tr.Enabled() {
			return true
		}
	}
	return false
}

func (t tee) Emit(ev Event) {
	for _, tr := range t {
		if tr.Enabled() {
			tr.Emit(ev)
		}
	}
}
