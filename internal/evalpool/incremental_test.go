package evalpool

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/statemodel"
	"boedag/internal/synthdag"
)

// TestEstimateBytesInvariantAcrossWorkerCounts runs the same estimate
// fan-out serially and at full parallelism. The estimator's pooled
// scratches mean each worker may land on a differently-warmed dist
// cache; plans must come out byte-identical regardless.
func TestEstimateBytesInvariantAcrossWorkerCounts(t *testing.T) {
	spec := cluster.PaperCluster()
	est := statemodel.New(spec,
		&statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second},
		statemodel.Options{Mode: statemodel.NormalMode})

	var flows []*dag.Workflow
	for seed := int64(1); seed <= 6; seed++ {
		flows = append(flows,
			synthdag.Generate(synthdag.Config{Layers: 3, Width: 5, FanIn: 2, Seed: seed}),
			synthdag.Generate(synthdag.Config{Layers: 2, Width: 8, FanIn: 3, Seed: seed}))
	}
	jobs := make([]func() ([]byte, error), len(flows))
	for i, f := range flows {
		f := f
		jobs[i] = func() ([]byte, error) {
			p, err := est.Estimate(f)
			if err != nil {
				return nil, err
			}
			return json.Marshal(p)
		}
	}

	serial, err := Run(context.Background(), jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if !bytes.Equal(serial[i], wide[i]) {
			t.Errorf("%s: plan differs between workers=1 and workers=8", flows[i].Name)
		}
	}
}
