package obs

import (
	"sync"
	"testing"
)

// These tests pin the Stream shutdown-ordering contract: a subscriber's
// channel is closed only after the subscriber has left the stream's
// fan-out list, so a concurrent Emit can never deliver to (or race with)
// a closed channel. Emit holds the read lock while delivering; detach and
// Close take the write lock before any close(ch) — the happens-before
// edge the race detector verifies here.

// TestStreamNoDeliverAfterClose hammers Emit against Subscriber.Close and
// Stream.Close from many goroutines. Any deliver-after-close would panic
// ("send on closed channel") and any missing synchronization trips -race.
func TestStreamNoDeliverAfterClose(t *testing.T) {
	for round := 0; round < 200; round++ {
		s := NewStream()
		subs := make([]*Subscriber, 4)
		for i := range subs {
			subs[i] = s.SubscribeWith(4, DropPolicy(i%2))
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for p := 0; p < 2; p++ { // producers
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 64; i++ {
					s.Emit(Event{Type: EvEstimatorState, Seq: i})
				}
			}()
		}
		for i, sub := range subs { // consumers; half bail out early
			wg.Add(1)
			go func(i int, sub *Subscriber) {
				defer wg.Done()
				<-start
				if i%2 == 0 {
					sub.Close()
				}
				for range sub.Events() {
				}
			}(i, sub)
		}
		wg.Add(1)
		go func() { // the stream shuts down mid-traffic
			defer wg.Done()
			<-start
			s.Close()
		}()
		close(start)
		wg.Wait()
		// Post-close emits are silently dropped, never a panic.
		s.Emit(Event{Seq: -1})
		for _, sub := range subs {
			sub.Close() // idempotent after any interleaving
		}
	}
}

// TestStreamCloseFlushesBufferedTail pins the documented close semantics:
// events buffered before Close are still delivered, and nothing emitted
// after Close ever reaches a consumer.
func TestStreamCloseFlushesBufferedTail(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(8)
	for i := 0; i < 5; i++ {
		s.Emit(Event{Seq: i})
	}
	s.Close()
	s.Emit(Event{Seq: 999}) // after close: dropped
	var got []int
	for ev := range sub.Events() {
		got = append(got, ev.Seq)
	}
	if len(got) != 5 {
		t.Fatalf("drained %d events, want the 5 buffered before Close: %v", len(got), got)
	}
	for i, seq := range got {
		if seq != i {
			t.Errorf("event %d has seq %d, want %d", i, seq, i)
		}
	}
}

// TestSubscriberCloseDuringConcurrentEmit focuses the original audit
// question: Unsubscribe during a concurrent Publish. After Close returns,
// the channel is closed — so a successful receive can only be of an event
// delivered before the detach, and the producer never panics.
func TestSubscriberCloseDuringConcurrentEmit(t *testing.T) {
	for round := 0; round < 500; round++ {
		s := NewStream()
		sub := s.Subscribe(2)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 32; i++ {
				s.Emit(Event{Seq: i})
			}
		}()
		sub.Close()
		for range sub.Events() {
		}
		<-done
		if s.Enabled() {
			t.Fatal("stream still enabled after its only subscriber closed")
		}
	}
}
