package sched

import "boedag/internal/obs"

// GrantObserved is Grant with observability attached: allocation
// decisions are emitted as EvAllocGrant events (one per job that
// received containers, at model time now) and counted in the metrics
// registry. With observability disabled it is exactly Grant — the guard
// keeps the hot path allocation-free.
func GrantObserved(policy Policy, pool Pool, reqs []Request, held Allocation, o obs.Options, now float64) Allocation {
	grants := Grant(policy, pool, reqs, held)
	if o.TracerOn() {
		for _, r := range reqs {
			g := grants[r.JobID]
			if g <= 0 {
				continue
			}
			o.Tracer.Emit(obs.Event{
				Type:   obs.EvAllocGrant,
				Time:   now,
				Job:    r.JobID,
				Task:   -1,
				Value:  float64(g),
				Detail: policy.String(),
			})
		}
	}
	if o.MetricsOn() {
		if total := grants.Total(); total > 0 {
			o.Metrics.Counter("sched_containers_granted").Add(int64(total))
		}
		o.Metrics.Counter("sched_grant_rounds").Inc()
	}
	return grants
}

// AllocateHierarchyObserved is AllocateHierarchy with observability
// attached: grants are emitted as EvAllocGrant events (Detail "hier")
// and both grants and reclaim evictions are counted in the metrics
// registry. With observability disabled it is exactly
// AllocateHierarchy.
func AllocateHierarchyObserved(pool Pool, h *Hierarchy, reqs []Request, held Allocation, o obs.Options, now float64) HierResult {
	res := AllocateHierarchy(pool, h, reqs, held)
	if o.TracerOn() {
		for _, r := range reqs {
			g := res.Grants[r.JobID]
			if g <= 0 {
				continue
			}
			o.Tracer.Emit(obs.Event{
				Type:   obs.EvAllocGrant,
				Time:   now,
				Job:    r.JobID,
				Task:   -1,
				Value:  float64(g),
				Detail: "hier",
			})
		}
	}
	if o.MetricsOn() {
		if total := res.Grants.Total(); total > 0 {
			o.Metrics.Counter("sched_containers_granted").Add(int64(total))
		}
		if evicted := res.Evict.Total(); evicted > 0 {
			o.Metrics.Counter("sched_containers_evicted").Add(int64(evicted))
		}
		o.Metrics.Counter("sched_grant_rounds").Inc()
	}
	return res
}
