// Command boepredict predicts the execution plan of a named DAG workflow
// with the state-based BOE estimator, and optionally validates it against
// a ground-truth simulation — the paper's models as a tool.
//
// Usage:
//
//	boepredict -workflow wc+ts                  # predict with BOE, validate
//	boepredict -workflow ts+q21 -mode normal    # Alg2-Normal skew handling
//	boepredict -workflow wc+q5 -profiles p.json # predict from saved profiles
//	boepredict -workflow wc -save-profiles p.json  # profile a run for later
//	boepredict -workflow wc+ts -trace-out t.json   # estimator + sim Chrome trace
//	boepredict -workflow wc+ts -explain            # critical path + θ-sensitivity
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cliobs"
	"boedag/internal/dag"
	"boedag/internal/experiments"
	"boedag/internal/explain"
	"boedag/internal/metrics"
	"boedag/internal/profile"
	"boedag/internal/progress"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/trace"
	"boedag/internal/units"
)

func main() {
	var (
		name     = flag.String("workflow", "wc+ts", "workflow name (see dagsim -list)")
		specFile = flag.String("spec", "", "load the workflow from this JSON spec instead of -workflow")
		scale    = flag.Float64("scale", 80, "TPC-H scale factor (GB)")
		microGB  = flag.Float64("micro-gb", 100, "Word Count / TeraSort input size in GB")
		mode     = flag.String("mode", "mean", "skew mode: mean | median | normal")
		seed     = flag.Int64("seed", 1, "skew RNG seed for the validation run")
		validate = flag.Bool("validate", true, "also run the simulator and report accuracy")
		profIn   = flag.String("profiles", "", "predict from this saved profile JSON instead of the BOE model")
		profOut  = flag.String("save-profiles", "", "write the validation run's profiles to this JSON file")
	)
	var ob cliobs.Flags
	ob.RegisterLive(nil)
	ob.RegisterExplain(nil)
	flag.Parse()

	observe, err := ob.Options()
	if err != nil {
		fatal(err)
	}

	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.TPCHScale = *scale
	cfg.MicroInput = units.Bytes(*microGB) * units.GB

	skew, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	var flow *dag.Workflow
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			fatal(err)
		}
		flow, err = dag.LoadWorkflow(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		flow, err = experiments.BuildNamed(*name, cfg)
		if err != nil {
			fatal(err)
		}
	}

	var timer statemodel.TaskTimer
	switch {
	case *profIn != "":
		f, err := os.Open(*profIn)
		if err != nil {
			fatal(err)
		}
		profs, err := profile.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		timer = &statemodel.ProfileTimer{
			Profiles: profs,
			Fallback: &statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead},
		}
	default:
		timer = &statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead}
	}

	est := statemodel.New(cfg.Spec, timer, statemodel.Options{
		Mode:              skew,
		JobSubmitOverhead: cfg.JobSubmitOverhead,
		Observe:           observe,
	})
	start := time.Now()
	plan, err := est.Estimate(flow)
	if err != nil {
		fatal(err)
	}
	cost := time.Since(start)
	trace.Plan(os.Stdout, plan)
	fmt.Printf("estimation cost: %s\n", cost)

	// -explain reuses the plan just printed — no second base estimate —
	// and adds the critical path, attribution, and θ-sensitivity table
	// (empty when predicting from profiles: no θ to perturb).
	if ob.ExplainRequested() {
		expl, err := explain.ExplainPlan(context.Background(), est, flow, plan, explain.Options{})
		if err != nil {
			fatal(err)
		}
		if err := ob.WriteExplanation(expl); err != nil {
			fatal(err)
		}
	}

	if !*validate && *profOut == "" {
		if err := ob.Finish(); err != nil {
			fatal(err)
		}
		return
	}
	// Live progress over the validation run. The subscriber attaches only
	// now — after Estimate — so the estimator's own predicted-stage events
	// never reach the fold; its tracker runs a private estimator for the
	// same reason.
	var liveDone chan struct{}
	if stream := ob.Stream(); stream != nil {
		liveEst := statemodel.New(cfg.Spec, timer, statemodel.Options{
			Mode: skew, JobSubmitOverhead: cfg.JobSubmitOverhead,
		})
		points := progress.Follow(stream, &progress.Indicator{Estimator: liveEst, Flow: flow},
			progress.LiveOptions{})
		liveDone = make(chan struct{})
		go func() {
			defer close(liveDone)
			for p := range points {
				if p.Err != nil {
					fmt.Fprintln(os.Stderr, "boepredict: live estimate:", p.Err)
					continue
				}
				fmt.Printf("live: t=%8.1fs  %5.1f%% done  ~%v remaining\n",
					p.Elapsed.Seconds(), p.PercentComplete,
					p.PredictedRemaining.Round(100*time.Millisecond))
			}
		}()
	}
	res, err := simulator.New(cfg.Spec, simulator.Options{Seed: cfg.Seed, Observe: observe}).Run(flow)
	ob.CloseStream()
	if liveDone != nil {
		<-liveDone
		fmt.Println()
	}
	if err != nil {
		fatal(err)
	}
	if *validate {
		fmt.Println()
		trace.Gantt(os.Stdout, res)
		fmt.Printf("\nend-to-end accuracy (%s): %.2f%%\n",
			skew, 100*metrics.Accuracy(plan.Makespan, res.Makespan))
	}
	if *profOut != "" {
		f, err := os.Create(*profOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := profile.Capture(res).Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("profiles written to %s\n", *profOut)
	}
	if err := ob.Finish(); err != nil {
		fatal(err)
	}
}

func parseMode(s string) (statemodel.SkewMode, error) {
	switch s {
	case "mean":
		return statemodel.MeanMode, nil
	case "median", "mid":
		return statemodel.MedianMode, nil
	case "normal":
		return statemodel.NormalMode, nil
	}
	return 0, fmt.Errorf("unknown skew mode %q (mean | median | normal)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boepredict:", err)
	os.Exit(1)
}
