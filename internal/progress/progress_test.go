package progress

import (
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/obs"
	"boedag/internal/profile"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func setup(t *testing.T) (*dag.Workflow, *simulator.Result, *Indicator) {
	t.Helper()
	spec := cluster.PaperCluster()
	flow := dag.Parallel("WC+TS",
		dag.Single(workload.WordCount(20*units.GB)),
		dag.Single(workload.TeraSort(20*units.GB)))
	res, err := simulator.New(spec, simulator.Options{Seed: 1}).Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	timer := &statemodel.ProfileTimer{
		Profiles: profile.Capture(res),
		Fallback: &statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second},
	}
	est := statemodel.New(spec, timer, statemodel.Options{Mode: statemodel.MeanMode})
	return flow, res, &Indicator{Estimator: est, Flow: flow}
}

func TestSnapshotPhases(t *testing.T) {
	_, res, _ := setup(t)
	early := SnapshotAt(res, res.Makespan/10)
	late := SnapshotAt(res, res.Makespan*9/10)

	if len(early.Jobs) != 2 {
		t.Fatalf("early snapshot has %d jobs", len(early.Jobs))
	}
	for job, js := range early.Jobs {
		if js.Phase != statemodel.JobMapping {
			t.Errorf("early: %s phase = %s, want mapping", job, js.Phase)
		}
		if js.TasksRunning == 0 {
			t.Errorf("early: %s has no running tasks", job)
		}
	}
	anyLate := false
	for _, js := range late.Jobs {
		if js.Phase == statemodel.JobReducing || js.Phase == statemodel.JobFinished {
			anyLate = true
		}
	}
	if !anyLate {
		t.Error("late snapshot: nobody reducing or finished")
	}
}

func TestSnapshotAtZeroAllPending(t *testing.T) {
	_, res, _ := setup(t)
	snap := SnapshotAt(res, 0)
	if snap.Elapsed != 0 {
		t.Errorf("elapsed = %v, want 0", snap.Elapsed)
	}
	for job, js := range snap.Jobs {
		if js.Phase != statemodel.JobPending {
			t.Errorf("%s phase = %s at t=0, want pending", job, js.Phase)
		}
		if js.TasksDone != 0 || js.TasksRunning != 0 {
			t.Errorf("%s has work at t=0: %+v", job, js)
		}
	}
}

func TestSnapshotAtFarPastCompletion(t *testing.T) {
	_, res, in := setup(t)
	snap := SnapshotAt(res, res.Makespan*100)
	for job, js := range snap.Jobs {
		if js.Phase != statemodel.JobFinished {
			t.Errorf("%s phase = %s far past the end, want finished", job, js.Phase)
		}
		if js.TasksRunning != 0 {
			t.Errorf("%s still running tasks far past the end", job)
		}
	}
	left, err := in.Remaining(snap)
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Errorf("remaining far past completion = %v, want 0", left)
	}
}

// TestSnapshotAtMidShuffle pins the between-stages convention: with every
// map done and no reduce started yet, the job reads as JobMapping with
// all map tasks finished — not pending, not reducing.
func TestSnapshotAtMidShuffle(t *testing.T) {
	const maps = 4
	res := &simulator.Result{
		Workflow: "synthetic",
		Makespan: 40 * time.Second,
	}
	for i := 0; i < maps; i++ {
		res.Tasks = append(res.Tasks, simulator.TaskRecord{
			Job: "j1", Stage: workload.Map, Index: i,
			Start: time.Duration(i) * time.Second, End: 10 * time.Second,
		})
	}
	for i := 0; i < 2; i++ {
		res.Tasks = append(res.Tasks, simulator.TaskRecord{
			Job: "j1", Stage: workload.Reduce, Index: i,
			Start: 20 * time.Second, End: 40 * time.Second,
		})
	}
	res.Stages = []simulator.StageRecord{
		{Job: "j1", Stage: workload.Map, Start: 0, End: 10 * time.Second},
		{Job: "j1", Stage: workload.Reduce, Start: 20 * time.Second, End: 40 * time.Second},
	}

	snap := SnapshotAt(res, 15*time.Second) // between map end and reduce start
	js, ok := snap.Jobs["j1"]
	if !ok {
		t.Fatal("job missing from snapshot")
	}
	if js.Phase != statemodel.JobMapping {
		t.Errorf("mid-shuffle phase = %s, want mapping", js.Phase)
	}
	if js.TasksDone != maps {
		t.Errorf("mid-shuffle tasks done = %d, want %d", js.TasksDone, maps)
	}
	if js.TasksRunning != 0 {
		t.Errorf("mid-shuffle tasks running = %d, want 0", js.TasksRunning)
	}

	// Once a reduce task has started, the phase flips to reducing.
	during := SnapshotAt(res, 25*time.Second).Jobs["j1"]
	if during.Phase != statemodel.JobReducing {
		t.Errorf("during-reduce phase = %s, want reducing", during.Phase)
	}
	if during.TasksRunning != 2 {
		t.Errorf("during-reduce tasks running = %d, want 2", during.TasksRunning)
	}
	if during.RunningProgress <= 0 || during.RunningProgress >= 1 {
		t.Errorf("during-reduce running progress = %v, want in (0,1)", during.RunningProgress)
	}
}

func TestSnapshotAtEndAllFinished(t *testing.T) {
	_, res, _ := setup(t)
	snap := SnapshotAt(res, res.Makespan+time.Second)
	for job, js := range snap.Jobs {
		if js.Phase != statemodel.JobFinished {
			t.Errorf("%s phase = %s at the end, want finished", job, js.Phase)
		}
	}
}

func TestRemainingShrinksOverTime(t *testing.T) {
	_, res, in := setup(t)
	var prev time.Duration
	first := true
	for _, f := range []float64{0.1, 0.4, 0.7, 0.9} {
		at := time.Duration(f * float64(res.Makespan))
		left, err := in.Remaining(SnapshotAt(res, at))
		if err != nil {
			t.Fatal(err)
		}
		if left <= 0 {
			t.Fatalf("remaining at %.0f%% = %v", f*100, left)
		}
		if !first && left > prev+5*time.Second {
			t.Errorf("remaining grew over time: %v then %v", prev, left)
		}
		prev, first = left, false
	}
}

func TestRemainingZeroWhenDone(t *testing.T) {
	_, res, in := setup(t)
	left, err := in.Remaining(SnapshotAt(res, res.Makespan+time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Errorf("remaining after completion = %v, want 0", left)
	}
}

func TestCurveAccuracy(t *testing.T) {
	_, res, in := setup(t)
	points, err := Curve(in, res, []float64{0.2, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.PercentComplete < 0 || p.PercentComplete > 100 {
			t.Errorf("percent complete %v", p.PercentComplete)
		}
		if p.Accuracy() < 0.5 {
			t.Errorf("progress accuracy at %.0f%% complete: %.2f (pred %v, actual %v)",
				p.PercentComplete, p.Accuracy(), p.PredictedRemaining, p.ActualRemaining)
		}
	}
	// Later points cover more observed work, so the midpoint onwards
	// should be decently accurate.
	if points[1].Accuracy() < 0.6 {
		t.Errorf("mid-run accuracy %.2f", points[1].Accuracy())
	}
}

func TestCurveRejectsBadFractions(t *testing.T) {
	_, res, in := setup(t)
	if _, err := Curve(in, res, []float64{1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := Curve(in, res, []float64{-0.1}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Curve(in, &simulator.Result{}, []float64{0.5}); err == nil {
		t.Error("empty result accepted")
	}
}

func TestSnapshotRejectsOverDone(t *testing.T) {
	flow, _, in := setup(t)
	bad := statemodel.Snapshot{Jobs: map[string]statemodel.JobSnapshot{
		flow.Jobs[0].ID: {Phase: statemodel.JobMapping, TasksDone: 1 << 20},
	}}
	if _, err := in.Remaining(bad); err == nil {
		t.Error("snapshot with impossible task counts accepted")
	}
}

func TestJobPhaseStrings(t *testing.T) {
	want := map[statemodel.JobPhase]string{
		statemodel.JobPending:  "pending",
		statemodel.JobMapping:  "mapping",
		statemodel.JobReducing: "reducing",
		statemodel.JobFinished: "finished",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

// TestIndicatorAdvancingTicksReuseWork pins satellite behavior of the
// incremental core through the progress path: an indicator ticking the
// same run holds one warm scratch, so each re-estimate iterates only
// the remaining states and re-solves only task-time dists the snapshot
// delta dirtied.
func TestIndicatorAdvancingTicksReuseWork(t *testing.T) {
	sp := cluster.PaperCluster()
	flow := dag.Parallel("WC+TS",
		dag.Single(workload.WordCount(20*units.GB)),
		dag.Single(workload.TeraSort(20*units.GB)))
	res, err := simulator.New(sp, simulator.Options{Seed: 1}).Run(flow)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	est := statemodel.New(sp,
		&statemodel.BOETimer{Model: boe.New(sp), TaskStartOverhead: time.Second},
		statemodel.Options{Mode: statemodel.MeanMode, Observe: obs.Options{Metrics: reg}})
	in := &Indicator{Estimator: est, Flow: flow}

	iters := reg.Counter("est_iterations")
	solves := reg.Counter("est_dist_solves")
	reuse := reg.Counter("est_dist_reuse")
	tick := func(f float64) (dIters, dSolves, dReuse int64) {
		i0, s0, r0 := iters.Value(), solves.Value(), reuse.Value()
		if _, err := in.Remaining(SnapshotAt(res, time.Duration(f*float64(res.Makespan)))); err != nil {
			t.Fatal(err)
		}
		return iters.Value() - i0, solves.Value() - s0, reuse.Value() - r0
	}

	iters1, solves1, _ := tick(0.25)
	iters2, solves2, _ := tick(0.60)
	iters3, _, _ := tick(0.90)
	t.Logf("tick deltas: iters %d/%d/%d solves %d/%d", iters1, iters2, iters3, solves1, solves2)
	if !(iters3 < iters2 && iters2 < iters1) {
		t.Errorf("iterations should shrink as the run advances: %d, %d, %d", iters1, iters2, iters3)
	}
	if solves2 >= solves1 {
		t.Errorf("advanced tick solved %d dists, first tick %d; warm scratch should reduce solves", solves2, solves1)
	}

	// Re-estimating the identical snapshot is a pure replay: every dist
	// carried forward, nothing dirty.
	_, againSolves, againReuse := tick(0.90)
	if againSolves != 0 {
		t.Errorf("identical-snapshot re-estimate solved %d dists, want 0", againSolves)
	}
	if againReuse == 0 {
		t.Error("identical-snapshot re-estimate reported no reuse")
	}
}
