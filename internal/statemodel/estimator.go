package statemodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/obs"
	"boedag/internal/sched"
	"boedag/internal/skew"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Options tune the estimator. The overheads must mirror the executing
// system's (here: the simulator's) for a fair end-to-end comparison.
type Options struct {
	// Mode selects the skew handling (Alg1-Mean / Alg1-Mid / Alg2-Normal).
	Mode SkewMode
	// JobSubmitOverhead is the per-job submit/compile latency.
	JobSubmitOverhead time.Duration
	// ParallelismCaps optionally caps per-job container grants.
	ParallelismCaps map[string]int
	// SlotLimit overrides the cluster's total task slots when positive.
	SlotLimit int
	// Policy selects the modelled scheduler discipline (default DRF).
	Policy sched.Policy
	// TaskFailureProb models the execution's task-attempt failure rate:
	// each failed attempt dies uniformly at random through its work and is
	// re-executed, so the expected task time inflates by a factor of
	// (1 + p/2). Set it to match the simulator's TaskFailureProb.
	TaskFailureProb float64
	// DiscreteWaves switches the stage-duration rule from the fluid
	// tasksLeft/throughput form to explicit ⌈N/Δ⌉ waves (ablation).
	DiscreteWaves bool
	// Observe attaches the observability layer: per-iteration events of
	// Algorithm 1's state loop, predicted state/stage spans, scheduler
	// grants, and iteration counters. Zero value = off.
	Observe obs.Options
}

// StageEstimate is the predicted execution of one job stage.
type StageEstimate struct {
	Job         string
	Stage       workload.Stage
	Start, End  time.Duration
	TaskTime    time.Duration
	Parallelism int
	Bottleneck  cluster.Resource
}

// Duration is the stage's predicted wall-clock span.
func (s StageEstimate) Duration() time.Duration { return s.End - s.Start }

// StateEstimate is one predicted workflow state (paper Figure 5).
type StateEstimate struct {
	Seq        int
	Start, End time.Duration
	// Running lists "job/stage" labels active in the state, sorted.
	Running []string
	// Parallelism maps job ID to its Δ during the state.
	Parallelism map[string]int
	// Bottleneck maps job ID to the resource its tasks are predicted to be
	// bound by during the state (zero value CPU for timers without
	// resource knowledge).
	Bottleneck map[string]cluster.Resource
	// Utilization is the predicted cluster-wide utilization per resource
	// class during the state (element-wise maximum over the running jobs'
	// task-time views).
	Utilization [cluster.NumResources]float64
	// SlotShare is the fraction of the scheduling pool's task slots
	// granted during the state; ~1.0 means the workflow is slot-bound.
	SlotShare float64
}

// Duration is the state's predicted span.
func (s StateEstimate) Duration() time.Duration { return s.End - s.Start }

// Plan is the estimator's full output: the predicted execution plan of a
// DAG workflow.
type Plan struct {
	Workflow string
	Makespan time.Duration
	Stages   []StageEstimate
	States   []StateEstimate
}

// StageOf returns the estimate for (job, stage), or nil.
func (p *Plan) StageOf(job string, st workload.Stage) *StageEstimate {
	for i := range p.Stages {
		if p.Stages[i].Job == job && p.Stages[i].Stage == st {
			return &p.Stages[i]
		}
	}
	return nil
}

// Estimator predicts DAG workflow execution plans with the state-based
// approach of Algorithm 1.
type Estimator struct {
	Spec  cluster.Spec
	Timer TaskTimer
	Opt   Options
}

// New returns an estimator with the given task timer.
func New(spec cluster.Spec, timer TaskTimer, opt Options) *Estimator {
	if opt.JobSubmitOverhead == 0 {
		opt.JobSubmitOverhead = 2 * time.Second
	}
	return &Estimator{Spec: spec, Timer: timer, Opt: opt}
}

type estJob struct {
	id        string
	profile   workload.JobProfile
	waitingOn int
	phase     jobPhase
	readyAt   float64
	order     int
	stage     workload.Stage
	tasksLeft float64
	// lastDelta is the parallelism granted in the previous state; running
	// tasks still hold their containers, so the job's demand cannot drop
	// below them (see pendingTasks).
	lastDelta int
	// busy accumulates, per resource class, the wall-clock time this
	// job's current stage spent bound by that resource; the argmax at
	// stage finish is the stage's recorded Bottleneck.
	busy [cluster.NumResources]float64
	// lastBottleneck is the job's task bottleneck in the current state,
	// the fallback when a stage finishes without accumulating busy time.
	lastBottleneck cluster.Resource

	plan map[workload.Stage]*StageEstimate
}

// pendingTasks is the job's container demand for DRF. The fluid progress
// model drains tasksLeft continuously, but a task that is halfway done
// still occupies a whole container: with Δ tasks in flight, the
// unfinished count exceeds the fluid remainder by about Δ/2. Without this
// correction a single synchronized wave (e.g. 66 reduce tasks finishing
// together) would appear to release containers mid-wave and the estimator
// would starve the stage of its own parallelism.
func (j *estJob) pendingTasks() int {
	fluid := j.tasksLeft + float64(j.lastDelta)/2
	n := int(math.Ceil(fluid))
	if total := j.profile.Tasks(j.stage); n > total {
		n = total
	}
	if n < 1 {
		n = 1
	}
	return n
}

type jobPhase int

const (
	phaseWaiting jobPhase = iota
	phaseSubmitted
	phaseRunning
	phaseDone
)

// Estimate runs Algorithm 1: iterate over workflow states; per state,
// estimate each running job's degree of parallelism with DRF, its task
// time with the TaskTimer under the state's full contention environment,
// the remaining time of each job's current stage, then advance to the
// nearest stage transition and update everyone's progress.
func (e *Estimator) Estimate(w *dag.Workflow) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	jobs := make(map[string]*estJob, len(w.Jobs))
	for _, j := range w.Jobs {
		jobs[j.ID] = &estJob{
			id:        j.ID,
			profile:   j.Profile,
			waitingOn: len(j.Deps),
			plan:      make(map[workload.Stage]*StageEstimate),
		}
	}
	for i, id := range w.Roots() {
		jobs[id].phase = phaseSubmitted
		jobs[id].readyAt = e.Opt.JobSubmitOverhead.Seconds()
		jobs[id].order = i // declaration order is submission order (FIFO)
	}
	return e.run(w, jobs, len(jobs))
}

// run drives the state iteration over pre-initialized jobs (used by both
// Estimate and EstimateRemaining); remaining counts jobs not yet done.
func (e *Estimator) run(w *dag.Workflow, jobs map[string]*estJob, remaining int) (*Plan, error) {
	children := w.Children()
	now := 0.0
	// Jobs pre-submitted by the caller keep their orders; later submits
	// continue the sequence.
	submitSeq := 0
	for _, j := range jobs {
		if j.phase != phaseWaiting && j.order >= submitSeq {
			submitSeq = j.order + 1
		}
	}
	submit := func(j *estJob) {
		j.phase = phaseSubmitted
		j.readyAt = now + e.Opt.JobSubmitOverhead.Seconds()
		j.order = submitSeq
		submitSeq++
	}

	pool := sched.PoolOf(e.Spec).WithSlotLimit(e.Opt.SlotLimit)

	plan := &Plan{Workflow: w.Name}
	var prevSig stateSig

	// The job set is fixed for the whole run, so sort it once; scratch
	// buffers below are re-sliced every state iteration instead of
	// reallocated (this loop dominates batch-evaluation profiles). All
	// scratch is call-local, keeping Estimate safe for concurrent callers.
	ordered := orderedJobs(jobs)
	running := make([]*estJob, 0, len(ordered))
	reqs := make([]sched.Request, 0, len(ordered))
	groups := make([]boe.TaskGroup, 0, len(ordered))
	delta := make([]int, 0, len(ordered))
	dists := make([]TaskTimeDist, 0, len(ordered))
	rates := make([]float64, 0, len(ordered))
	rests := make([]float64, 0, len(ordered))

	trOn := e.Opt.Observe.TracerOn()
	var iterCount *obs.Counter
	var stateCount *obs.Counter
	var stateDur *obs.Histogram
	if reg := e.Opt.Observe.Metrics; reg != nil {
		iterCount = reg.Counter("est_iterations")
		stateCount = reg.Counter("est_states")
		stateDur = reg.Histogram("est_state_duration_s")
	}
	// observeClosed folds the just-closed predicted state into metrics.
	observeClosed := func() {
		if stateDur == nil || len(plan.States) == 0 {
			return
		}
		if last := plan.States[len(plan.States)-1]; last.End > 0 {
			stateDur.Observe(last.Duration().Seconds())
		}
	}

	for iter := 0; remaining > 0; iter++ {
		if iter > 10000*len(jobs)+10000 {
			return nil, fmt.Errorf("statemodel: workflow %q did not converge", w.Name)
		}
		if iterCount != nil {
			iterCount.Inc()
		}
		// Admit submitted jobs.
		for _, j := range ordered {
			if j.phase == phaseSubmitted && j.readyAt <= now+1e-9 {
				e.openStage(j, workload.Map, now)
			}
		}
		running = running[:0]
		for _, j := range ordered {
			if j.phase == phaseRunning && j.tasksLeft > 0 {
				running = append(running, j)
			}
		}
		if trOn {
			e.Opt.Observe.Tracer.Emit(obs.Event{
				Type: obs.EvEstimatorIter, Time: now, Task: -1,
				Seq: iter, Value: float64(len(running)),
			})
		}
		if len(running) == 0 {
			// Idle gap: jump to the next submit event.
			next := math.Inf(1)
			for _, j := range jobs {
				if j.phase == phaseSubmitted && j.readyAt < next {
					next = j.readyAt
				}
			}
			if math.IsInf(next, 1) {
				return nil, fmt.Errorf("statemodel: workflow %q deadlocked at t=%.2fs", w.Name, now)
			}
			now = next
			continue
		}

		// (1) Degree of parallelism per running job.
		reqs = reqs[:len(running)]
		for i, j := range running {
			reqs[i] = sched.Request{
				JobID:    j.id,
				MemoryMB: j.profile.MemoryMB(j.stage),
				VCores:   j.profile.VCores(j.stage),
				Pending:  j.pendingTasks(),
				Cap:      e.Opt.ParallelismCaps[j.id],
				Order:    j.order,
			}
		}
		grants := sched.GrantObserved(e.Opt.Policy, pool, reqs, nil, e.Opt.Observe, now)

		// (2) Task time per running job via the BOE model (or profiles).
		groups = groups[:len(running)]
		delta = delta[:len(running)]
		for i, j := range running {
			d := grants[j.id]
			if d < 1 {
				d = 1
			}
			delta[i] = d
			j.lastDelta = d
			groups[i] = groupFor(j.profile, j.stage, d)
		}
		dists = dists[:len(running)]
		rates = rates[:len(running)]
		rests = rests[:len(running)]
		for i, j := range running {
			dists[i] = e.Timer.TaskDist(j.id, groups, i)
			if p := e.Opt.TaskFailureProb; p > 0 {
				// Fault-tolerance correction: a failed attempt wastes half
				// its work in expectation before the re-execution.
				f := 1 + p/2
				dists[i].Mean = time.Duration(float64(dists[i].Mean) * f)
				dists[i].Median = time.Duration(float64(dists[i].Median) * f)
			}
			tt := dists[i].ByMode(e.Opt.Mode).Seconds()
			if tt <= 0 {
				return nil, fmt.Errorf("statemodel: workflow %q: job %q %s: non-positive task time",
					w.Name, j.id, j.stage)
			}
			rates[i] = float64(delta[i]) / tt
			rests[i] = e.restTime(j, delta[i], dists[i], tt)
			j.lastBottleneck = dists[i].Bottleneck
			se := j.plan[j.stage]
			se.TaskTime = units.Seconds(tt)
			se.Parallelism = delta[i]
		}

		// Record the state if its signature changed.
		sig := stateSignature(running)
		if sig != prevSig {
			closeState(plan, now)
			observeClosed()
			prevSig = sig
			st := StateEstimate{
				Seq:         len(plan.States) + 1,
				Start:       units.Seconds(now),
				Parallelism: make(map[string]int, len(running)),
				Bottleneck:  make(map[string]cluster.Resource, len(running)),
			}
			granted := 0
			for i, j := range running {
				st.Running = append(st.Running, j.id+"/"+j.stage.String())
				st.Parallelism[j.id] = delta[i]
				st.Bottleneck[j.id] = dists[i].Bottleneck
				granted += delta[i]
				for r := 0; r < cluster.NumResources; r++ {
					if u := dists[i].Util[r]; u > st.Utilization[r] {
						st.Utilization[r] = u
					}
				}
			}
			if pool.Slots > 0 {
				st.SlotShare = float64(granted) / float64(pool.Slots)
			}
			sort.Strings(st.Running)
			plan.States = append(plan.States, st)
			if stateCount != nil {
				stateCount.Inc()
			}
			if trOn {
				e.Opt.Observe.Tracer.Emit(obs.Event{
					Type: obs.EvEstimatorState, Time: now, Task: -1,
					Seq: st.Seq, Detail: strings.Join(st.Running, ","),
				})
			}
		}

		// (3)-(4) Find the job whose stage ends first.
		dt := math.Inf(1)
		for i := range running {
			if rests[i] < dt {
				dt = rests[i]
			}
		}
		for _, j := range jobs {
			if j.phase == phaseSubmitted && j.readyAt-now < dt {
				dt = j.readyAt - now
			}
		}
		if dt < 0 {
			dt = 0
		}
		now += dt

		// (5) Update progress of every running job; transition finished
		// stages.
		for i, j := range running {
			j.tasksLeft -= rates[i] * dt
			j.busy[dists[i].Bottleneck] += dt
			if j.tasksLeft > 1e-9 && rests[i] > dt+1e-9 {
				continue
			}
			j.tasksLeft = 0
			j.plan[j.stage].End = units.Seconds(now)
			j.plan[j.stage].Bottleneck = j.dominantResource()
			if trOn {
				se := j.plan[j.stage]
				e.Opt.Observe.Tracer.Emit(obs.Event{
					Type: obs.EvStageFinish,
					Time: se.Start.Seconds(), Dur: se.Duration().Seconds(),
					Job: j.id, Stage: j.stage.String(), Task: -1,
					Resource: se.Bottleneck.String(),
					Value:    float64(se.Parallelism),
				})
			}
			if j.stage == workload.Map && j.profile.ReduceTasks > 0 {
				e.openStage(j, workload.Reduce, now)
				continue
			}
			j.phase = phaseDone
			remaining--
			for _, c := range children[j.id] {
				cj := jobs[c]
				cj.waitingOn--
				if cj.waitingOn == 0 && cj.phase == phaseWaiting {
					submit(cj)
				}
			}
		}
	}
	closeState(plan, now)
	observeClosed()
	plan.Makespan = units.Seconds(now)
	for _, j := range ordered {
		for _, st := range []workload.Stage{workload.Map, workload.Reduce} {
			if se, ok := j.plan[st]; ok {
				plan.Stages = append(plan.Stages, *se)
			}
		}
	}
	return plan, nil
}

// restTime estimates the remaining wall-clock time of a job's current
// stage at the state's rate: fluid tasksLeft/rate by default, discrete
// waves if configured, plus the normal-mode straggler correction when the
// stage is in its final wave.
func (e *Estimator) restTime(j *estJob, delta int, dist TaskTimeDist, taskTime float64) float64 {
	left := j.tasksLeft
	if left <= 0 {
		return 0
	}
	var base float64
	if e.Opt.DiscreteWaves {
		waves := math.Ceil(left / float64(delta))
		base = waves * taskTime
	} else {
		base = left / (float64(delta) / taskTime)
	}
	switch e.Opt.Mode {
	case NormalMode:
		lastWave := int(math.Min(left, float64(delta)))
		if lastWave >= 1 {
			mean := dist.ByMode(e.Opt.Mode)
			tail := ExpectedMaxNormal(mean, dist.Std, lastWave) - mean
			base += tail.Seconds()
		}
	case EmpiricalMode:
		if len(dist.Sample) > 0 {
			// List-schedule the remaining tasks with durations cycled from
			// the measured sample: a distribution-free stage duration.
			n := int(math.Ceil(left))
			tasks := make([]time.Duration, n)
			for i := range tasks {
				tasks[i] = dist.Sample[i%len(dist.Sample)]
			}
			return skew.EmpiricalStageDuration(tasks, delta).Seconds()
		}
		// No sample (e.g. a model-driven timer): degrade to the normal fit.
		lastWave := int(math.Min(left, float64(delta)))
		if lastWave >= 1 {
			mean := dist.ByMode(e.Opt.Mode)
			tail := ExpectedMaxNormal(mean, dist.Std, lastWave) - mean
			base += tail.Seconds()
		}
	}
	return base
}

func (e *Estimator) openStage(j *estJob, st workload.Stage, now float64) {
	j.phase = phaseRunning
	j.stage = st
	j.tasksLeft = float64(j.profile.Tasks(st))
	j.lastDelta = 0
	j.busy = [cluster.NumResources]float64{}
	j.lastBottleneck = cluster.CPU

	j.plan[st] = &StageEstimate{Job: j.id, Stage: st, Start: units.Seconds(now)}
}

// dominantResource is the resource the job's current stage spent the most
// time bound by — the argmax of busy, ties to the lowest resource index.
// A stage that finishes without accumulating wall-clock time (zero-length
// states) falls back to the final state's task bottleneck.
func (j *estJob) dominantResource() cluster.Resource {
	best := cluster.CPU
	seen := 0.0
	for _, r := range cluster.Resources() {
		seen += j.busy[r]
		if j.busy[r] > j.busy[best] {
			best = r
		}
	}
	if seen <= 0 {
		return j.lastBottleneck
	}
	return best
}

func orderedJobs(jobs map[string]*estJob) []*estJob {
	out := make([]*estJob, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// stateSig identifies a workflow state without allocating: an FNV-1a
// hash over the running (job, stage) pairs plus their count. The count
// guards the (already negligible) hash-collision risk — two states can
// only alias if they also run the same number of jobs.
type stateSig struct {
	h uint64
	n int
}

func stateSignature(running []*estJob) stateSig {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, j := range running {
		for i := 0; i < len(j.id); i++ {
			h = (h ^ uint64(j.id[i])) * prime
		}
		h = (h ^ 0xff) * prime // separator: ids cannot bleed into each other
		h = (h ^ uint64(j.stage)) * prime
	}
	return stateSig{h: h, n: len(running)}
}

func closeState(plan *Plan, end float64) {
	if len(plan.States) == 0 {
		return
	}
	last := &plan.States[len(plan.States)-1]
	if last.End == 0 {
		last.End = units.Seconds(end)
	}
}

// CriticalPath returns the chain of stage estimates that determines the
// plan's makespan: starting from the stage that ends last, repeatedly
// step to the latest-ending stage that finishes at (or just before) the
// current one's start — the jobs an optimizer should attack first.
func (p *Plan) CriticalPath() []StageEstimate {
	if len(p.Stages) == 0 {
		return nil
	}
	// Latest-ending stage anchors the path.
	cur := p.Stages[0]
	for _, s := range p.Stages[1:] {
		if s.End > cur.End {
			cur = s
		}
	}
	path := []StageEstimate{cur}
	const slack = 3 * time.Second // submit overheads sit between stages
	for {
		var prev *StageEstimate
		for i := range p.Stages {
			s := p.Stages[i]
			if s.End > cur.Start+time.Millisecond || s == cur {
				continue
			}
			if s.End < cur.Start-slack {
				continue
			}
			if prev == nil || s.End > prev.End {
				prev = &p.Stages[i]
			}
		}
		if prev == nil {
			break
		}
		path = append(path, *prev)
		cur = *prev
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
