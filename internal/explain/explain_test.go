package explain

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/evalpool"
	"boedag/internal/experiments"
	"boedag/internal/profile"
	"boedag/internal/statemodel"
)

// testEstimator builds the standard BOE-backed estimator the CLIs use,
// over a scaled-down configuration so the full registry stays fast.
func testEstimator(cfg experiments.Config) *statemodel.Estimator {
	return statemodel.New(cfg.Spec,
		&statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead},
		statemodel.Options{Mode: statemodel.NormalMode, JobSubmitOverhead: cfg.JobSubmitOverhead})
}

// TestCriticalPathExactAcrossRegistry is the acceptance gate: for every
// registered workflow (TPC-H, HiBench, micro, hybrid, probes) the
// critical path is a contiguous chain from 0 to the makespan whose
// interval durations sum to it exactly, and both attributions cover
// 100% of the makespan, in integer time.Duration arithmetic.
func TestCriticalPathExactAcrossRegistry(t *testing.T) {
	cfg := experiments.Scaled(8)
	est := testEstimator(cfg)
	for _, name := range experiments.WorkflowNames() {
		if name == "synth-10k" {
			// A 10k-job estimate is ~a minute of CPU (tens of minutes
			// under -race) and exercises nothing this test doesn't already
			// cover at synth-1k; the 10k point is pinned by
			// BenchmarkEstimate10kJobs instead.
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			flow, err := experiments.BuildNamed(name, cfg)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			e, err := Explain(context.Background(), est, flow, Options{NoSensitivity: true})
			if err != nil {
				t.Fatalf("explain: %v", err)
			}
			if e.Makespan <= 0 {
				t.Fatalf("makespan = %v", e.Makespan)
			}
			if len(e.CriticalPath) == 0 {
				t.Fatal("empty critical path")
			}
			// Contiguity: starts at 0, ends at the makespan, no gaps.
			if got := e.CriticalPath[0].Start; got != 0 {
				t.Errorf("path starts at %v, want 0", got)
			}
			if got := e.CriticalPath[len(e.CriticalPath)-1].End; got != e.Makespan {
				t.Errorf("path ends at %v, want makespan %v", got, e.Makespan)
			}
			var sum time.Duration
			for i, iv := range e.CriticalPath {
				if iv.End <= iv.Start {
					t.Errorf("interval %d empty: %+v", i, iv)
				}
				if i > 0 && iv.Start != e.CriticalPath[i-1].End {
					t.Errorf("gap before interval %d: %v != %v",
						i, e.CriticalPath[i-1].End, iv.Start)
				}
				if iv.Resource == "" {
					t.Errorf("interval %d untagged: %+v", i, iv)
				}
				sum += iv.Duration()
			}
			if sum != e.Makespan {
				t.Errorf("critical path sums to %v, want exactly %v", sum, e.Makespan)
			}
			var res time.Duration
			for _, rs := range e.Resources {
				res += rs.Dur
			}
			if res != e.Makespan {
				t.Errorf("resource attribution covers %v of %v", res, e.Makespan)
			}
			var jobs time.Duration
			for _, js := range e.Jobs {
				jobs += js.Dur
			}
			if jobs != e.Makespan {
				t.Errorf("job attribution covers %v of %v", jobs, e.Makespan)
			}
		})
	}
}

// TestSensitivityTable checks the θ table: one row per resource class,
// perturbed makespans no slower than base (more throughput can't hurt a
// work-conserving model), the best flag on the largest saving, and the
// single-flight cache making the second explanation free.
func TestSensitivityTable(t *testing.T) {
	cfg := experiments.Scaled(8)
	est := testEstimator(cfg)
	flow, err := experiments.BuildNamed("wc+ts", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := evalpool.NewPlanCache()
	e, err := Explain(context.Background(), est, flow, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sensitivity) != 4 {
		t.Fatalf("got %d sensitivity rows, want 4", len(e.Sensitivity))
	}
	bestN, bestDelta := 0, 0.0
	for _, s := range e.Sensitivity {
		if s.Epsilon != 0.10 {
			t.Errorf("%s: epsilon %v, want default 0.10", s.Parameter, s.Epsilon)
		}
		if s.BaseS != e.MakespanS {
			t.Errorf("%s: base %v != makespan %v", s.Parameter, s.BaseS, e.MakespanS)
		}
		// More throughput is almost never slower, but the fluid state
		// stepping is not strictly monotone — allow sub-percent wiggle.
		if s.PerturbedS <= 0 || s.PerturbedS > s.BaseS*1.01 {
			t.Errorf("%s: perturbed %v vs base %v", s.Parameter, s.PerturbedS, s.BaseS)
		}
		if s.Best {
			bestN++
			bestDelta = s.DeltaS
		}
		if s.DeltaS > 0 && s.GradientS >= 0 {
			t.Errorf("%s: saving %v but gradient %v not negative", s.Parameter, s.DeltaS, s.GradientS)
		}
	}
	if bestN != 1 {
		t.Fatalf("got %d best flags, want 1", bestN)
	}
	for _, s := range e.Sensitivity {
		if s.DeltaS > bestDelta+1e-12 {
			t.Errorf("%s saves %v > flagged best %v", s.Parameter, s.DeltaS, bestDelta)
		}
	}

	_, misses0 := cache.Stats()
	if _, err := Explain(context.Background(), est, flow, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != misses0 {
		t.Errorf("second explanation recomputed plans: misses %d -> %d", misses0, misses)
	}
}

// TestExplainDeterministicAcrossWorkers pins the satellite contract:
// the JSON report is byte-identical at 1 and 8 workers.
func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	cfg := experiments.Scaled(8)
	est := testEstimator(cfg)
	for _, name := range []string{"wc+ts", "q5", "pagerank"} {
		flow, err := experiments.BuildNamed(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got [2]bytes.Buffer
		for i, workers := range []int{1, 8} {
			e, err := Explain(context.Background(), est, flow, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.WriteJSON(&got[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got[0].String() != got[1].String() {
			t.Errorf("%s: explain JSON differs between -workers 1 and 8", name)
		}
	}
}

// TestProfileTimerSkipsSensitivity: profiles carry no θ to perturb.
func TestProfileTimerSkipsSensitivity(t *testing.T) {
	cfg := experiments.Scaled(8)
	flow, err := experiments.BuildNamed("wc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	boeEst := testEstimator(cfg)
	est := statemodel.New(cfg.Spec,
		&statemodel.ProfileTimer{Profiles: &profile.Set{}, Fallback: boeEst.Timer},
		boeEst.Opt)
	e, err := Explain(context.Background(), est, flow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sensitivity) != 0 {
		t.Fatalf("profile-backed estimator produced a θ table: %+v", e.Sensitivity)
	}
	if len(e.CriticalPath) == 0 {
		t.Fatal("critical path should not depend on the timer kind")
	}
}

// TestReportText sanity-checks the human-readable rendering.
func TestReportText(t *testing.T) {
	cfg := experiments.Scaled(8)
	est := testEstimator(cfg)
	flow, err := experiments.BuildNamed("webanalytics", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Explain(context.Background(), est, flow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"critical path", "resource attribution", "job attribution",
		"θ-sensitivity", "← best",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestTraceAnnotations checks the exporter bridge: critical stages get
// args.critical=true, states their dominant tag, the run its overall
// bottleneck and best θ parameter.
func TestTraceAnnotations(t *testing.T) {
	cfg := experiments.Scaled(8)
	est := testEstimator(cfg)
	flow, err := experiments.BuildNamed("wc+ts", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Explain(context.Background(), est, flow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := e.TraceAnnotations()
	if len(a.Stage) == 0 {
		t.Fatal("no stage annotations")
	}
	for key, m := range a.Stage {
		if m["critical"] != true {
			t.Errorf("%s: critical arg = %v", key, m["critical"])
		}
		if s, ok := m["critical_s"].(float64); !ok || s <= 0 {
			t.Errorf("%s: critical_s = %v", key, m["critical_s"])
		}
		if r, ok := m["critical_resource"].(string); !ok || r == "" {
			t.Errorf("%s: critical_resource = %v", key, m["critical_resource"])
		}
	}
	if len(a.State) != len(e.States) {
		t.Errorf("annotated %d states, want %d", len(a.State), len(e.States))
	}
	if _, ok := a.Run["bottleneck"].(string); !ok {
		t.Errorf("run bottleneck = %v", a.Run["bottleneck"])
	}
	if _, ok := a.Run["best_parameter"].(string); !ok {
		t.Errorf("run best_parameter = %v", a.Run["best_parameter"])
	}
}
