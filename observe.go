package boedag

import (
	"io"

	"boedag/internal/obs"
)

// Observability. The simulator and the state-based estimator can stream
// structured events to a Tracer and update a MetricsRegistry as they run;
// both are off by default and cost nothing when unset. Collected events
// export to Chrome's trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) or to a plain-text summary.
type (
	// Tracer receives structured events from a run. Implementations must
	// be safe for concurrent use; Enabled reports whether Emit does
	// anything, letting instrumented code skip building events entirely.
	Tracer = obs.Tracer
	// TraceEvent is one structured observation (task finish, state
	// transition, allocation decision, estimator iteration, ...).
	TraceEvent = obs.Event
	// TraceEventType discriminates TraceEvent kinds.
	TraceEventType = obs.EventType
	// TraceRecorder is a Tracer that buffers events in memory.
	TraceRecorder = obs.Recorder
	// MetricsRegistry holds named counters, gauges, and histograms.
	MetricsRegistry = obs.Registry
	// ObserveOptions bundles a Tracer and a MetricsRegistry.
	ObserveOptions = obs.Options
)

// NewTraceRecorder returns an empty in-memory event recorder.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithTracer returns opt with tr attached, so the simulator emits
// structured events as it runs:
//
//	rec := boedag.NewTraceRecorder()
//	res, _ := boedag.NewSimulator(spec, boedag.WithTracer(opt, rec)).Run(flow)
//	boedag.ExportChromeTrace(f, rec.Events())
func WithTracer(opt SimOptions, tr Tracer) SimOptions {
	opt.Observe.Tracer = tr
	return opt
}

// WithMetrics returns opt with reg attached, so the simulator updates
// run-level counters, gauges, and histograms as it runs.
func WithMetrics(opt SimOptions, reg *MetricsRegistry) SimOptions {
	opt.Observe.Metrics = reg
	return opt
}

// Trace exporters.
var (
	// ExportChromeTrace writes events as Chrome trace_event JSON.
	ExportChromeTrace = obs.WriteChromeTrace
	// WriteTraceSummary writes a plain-text digest of events.
	WriteTraceSummary = obs.WriteSummary
)

// WriteMetricsJSON dumps a registry snapshot as JSON.
func WriteMetricsJSON(w io.Writer, reg *MetricsRegistry) error { return reg.WriteJSON(w) }
