package simulator

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/fairshare"
	"boedag/internal/obs"
	"boedag/internal/sched"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Options tune a simulation run.
type Options struct {
	// Seed drives the deterministic task-size skew; runs with the same
	// seed are bit-identical.
	Seed int64
	// TaskStartOverhead is the container launch latency every task pays
	// before processing (default 1 s, typical of YARN container spin-up).
	TaskStartOverhead time.Duration
	// JobSubmitOverhead is the latency between a job becoming eligible and
	// its tasks being schedulable (client submit + AM start; default 2 s).
	JobSubmitOverhead time.Duration
	// ParallelismCaps optionally caps the containers granted per job ID —
	// the knob behind the paper's degree-of-parallelism sweeps.
	ParallelismCaps map[string]int
	// SlotLimit overrides the cluster's total task slots when positive.
	SlotLimit int
	// Policy selects the scheduler discipline (default DRF, as the paper).
	Policy sched.Policy
	// Hierarchy, when non-nil, replaces the flat policy grant with
	// hierarchical queue scheduling (quotas, over-quota weights, limits,
	// gangs, reclaim) — the same pure allocator the estimator models, so
	// both sides schedule identically. Reclaim evictions preempt running
	// tasks: the container returns to the pool and the task restarts from
	// scratch when re-granted. Nil keeps flat scheduling byte-for-byte.
	Hierarchy *sched.Hierarchy
	// Queues maps job ID to its leaf queue; consulted only under
	// Hierarchy (absent jobs park at the root).
	Queues map[string]string
	// Gangs maps job ID to an all-or-nothing minimum parallelism;
	// consulted only under Hierarchy.
	Gangs map[string]int
	// Predictions maps job ID to its predicted runtime in seconds: the
	// SPJF policy's ordering key and the hierarchy's reclaim victim
	// ordering (longest-predicted evicted first).
	Predictions map[string]float64
	// TaskFailureProb is the probability that a task attempt fails once
	// mid-flight and is re-executed from scratch (MapReduce's standard
	// fault tolerance). Failures are drawn deterministically from Seed.
	TaskFailureProb float64
	// NodeAware switches resource sharing from cluster-aggregate pools to
	// per-node pools with least-loaded task placement: CPU and disks are
	// local to the node a task runs on, network to its NIC. The analytic
	// models stay aggregate, so this mode measures what the aggregate
	// assumption costs (see the node-awareness study in EXPERIMENTS.md).
	NodeAware bool
	// DisableSkew forces perfectly even task sizes.
	DisableSkew bool
	// MaxEvents guards against runaway simulations (default 10 million).
	MaxEvents int
	// Observe attaches the observability layer: a Tracer receiving
	// structured events (task lifecycle, sub-stage bottleneck resolution,
	// state transitions, allocation decisions) and a metrics Registry.
	// The zero value is fully off and costs one branch per emit site.
	Observe obs.Options
}

func (o Options) withDefaults() Options {
	if o.TaskStartOverhead == 0 {
		o.TaskStartOverhead = time.Second
	}
	if o.JobSubmitOverhead == 0 {
		o.JobSubmitOverhead = 2 * time.Second
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 10_000_000
	}
	return o
}

// Simulator executes DAG workflows on a simulated cluster.
type Simulator struct {
	spec cluster.Spec
	opt  Options
	// trOn caches Observe.TracerOn() so every emit site pays one branch;
	// m holds pre-resolved metric instruments (nil when metrics are off).
	trOn bool
	m    *simMetrics
}

// New returns a Simulator for the cluster with the given options.
func New(spec cluster.Spec, opt Options) *Simulator {
	opt = opt.withDefaults()
	return &Simulator{
		spec: spec,
		opt:  opt,
		trOn: opt.Observe.TracerOn(),
		m:    newSimMetrics(opt.Observe.Metrics),
	}
}

type jobPhase int

const (
	jobWaiting jobPhase = iota
	jobSubmitted
	jobMapping
	jobReducing
	jobDone
)

type simTask struct {
	job        *simJob
	stage      workload.Stage
	index      int
	subStages  []workload.SubStage
	cur        int
	remaining  float64 // fraction of current sub-stage left
	delay      float64 // container-launch seconds left before work begins
	start      float64
	subStart   float64
	subDurs    []float64
	sizeFactor float64
	boundTime  [cluster.NumResources]float64
	rate       float64 // progress rate from the last allocation
	bottleneck cluster.Resource
	// failAt schedules one attempt failure: when the task's current
	// sub-stage index equals failStage and its remaining fraction drops to
	// failAt, the attempt dies and the task restarts from scratch.
	failAt    float64
	failStage int
	willFail  bool
	retries   int
	// node is the task's placement in NodeAware mode (-1 = unplaced).
	node int
}

func (t *simTask) done() bool { return t.cur >= len(t.subStages) }

type simJob struct {
	id        string
	profile   workload.JobProfile
	waitingOn int
	phase     jobPhase
	readyAt   float64
	order     int
	pending   []*simTask
	running   map[*simTask]bool
	finished  int
	stageMeta map[workload.Stage]*StageRecord
	peak      map[workload.Stage]int
	// stageOpenAt is when the current stage materialized its tasks — the
	// baseline for the queue-wait metric.
	stageOpenAt float64
	// seenEpoch is the stateTracker's dedup mark (see observe).
	seenEpoch int
}

// Run simulates the workflow and returns its measurements.
func (s *Simulator) Run(w *dag.Workflow) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	jobs := make(map[string]*simJob, len(w.Jobs))
	children := w.Children()
	for _, j := range w.Jobs {
		jobs[j.ID] = &simJob{
			id:        j.ID,
			profile:   j.Profile,
			waitingOn: len(j.Deps),
			running:   make(map[*simTask]bool),
			stageMeta: make(map[workload.Stage]*StageRecord),
			peak:      make(map[workload.Stage]int),
		}
	}

	res := &Result{Workflow: w.Name}
	now := 0.0
	if s.trOn {
		// Run metadata makes the trace self-describing: offline consumers
		// (trace-driven calibration) read back the node count, the
		// effective slot capacity, and whether task-size skew was live.
		slots := s.spec.TotalSlots()
		if s.opt.SlotLimit > 0 {
			slots = s.opt.SlotLimit
		}
		skew := ""
		if !s.opt.DisableSkew {
			for _, j := range w.Jobs {
				if j.Profile.SkewCV > 0 {
					skew = "skew"
					break
				}
			}
		}
		s.opt.Observe.Tracer.Emit(obs.Event{
			Type: obs.EvRunStart, Time: now, Job: w.Name, Task: -1,
			Seq: s.spec.Nodes, Value: float64(slots), Detail: skew,
		})
	}
	submitSeq := 0
	eligible := func(j *simJob) {
		j.phase = jobSubmitted
		j.readyAt = now + s.opt.JobSubmitOverhead.Seconds()
		j.order = submitSeq
		submitSeq++
		if s.trOn {
			s.opt.Observe.Tracer.Emit(obs.Event{
				Type: obs.EvJobSubmit, Time: now, Job: j.id, Task: -1,
				Value: j.readyAt,
			})
		}
	}
	for _, id := range w.Roots() {
		eligible(jobs[id])
	}

	pool := sched.PoolOf(s.spec).WithSlotLimit(s.opt.SlotLimit)

	// The job set is fixed for the whole run: sort it once and reuse the
	// scheduling scratch buffers across event-loop iterations. All of this
	// is call-local, so concurrent Run calls on one Simulator stay safe.
	ordered := sortedJobs(jobs)
	scratch := &schedScratch{
		reqs:   make([]sched.Request, 0, len(ordered)),
		active: make([]*simJob, 0, len(ordered)),
		held:   make(sched.Allocation, len(ordered)),
	}

	var running []*simTask
	stateTracker := newStateTracker(s.opt.Observe, s.trOn, s.m)
	nodeLoad := make([]int, s.spec.Nodes)

	remainingJobs := len(jobs)
	for events := 0; remainingJobs > 0; events++ {
		if events > s.opt.MaxEvents {
			return nil, fmt.Errorf("simulator: workflow %q exceeded %d events (livelock?)",
				w.Name, s.opt.MaxEvents)
		}
		if s.m != nil {
			s.m.loopEvents.Inc()
		}

		// Admit jobs whose submit latency elapsed.
		for _, j := range ordered {
			if j.phase == jobSubmitted && j.readyAt <= now+timeEps {
				s.startStage(j, workload.Map, now)
			}
		}

		// Grant free containers via the configured discipline and launch
		// tasks; under a hierarchy, reclaim may first preempt running ones.
		res.Preemptions += s.schedule(pool, ordered, &running, now, nodeLoad, scratch)
		stateTracker.observe(now, running)

		// Allocate resources among working tasks and find the next event.
		var util [cluster.NumResources]float64
		if s.opt.NodeAware {
			util = s.allocateNodeAware(running)
		} else {
			util = s.allocate(running)
		}
		next := math.Inf(1)
		for _, t := range running {
			var eta float64
			switch {
			case t.delay > 0:
				eta = now + t.delay
			case t.rate > 0:
				eta = now + t.remaining/t.rate
				if t.willFail && t.cur == t.failStage && t.remaining > t.failAt {
					// The attempt dies before the sub-stage completes.
					eta = now + (t.remaining-t.failAt)/t.rate
				}
			default:
				continue // starved; another event must free resources
			}
			if eta < next {
				next = eta
			}
		}
		for _, j := range jobs {
			if j.phase == jobSubmitted && j.readyAt < next {
				next = j.readyAt
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("simulator: workflow %q deadlocked at t=%.2fs (%d jobs left)",
				w.Name, now, remainingJobs)
		}
		dt := next - now
		if dt < 0 {
			dt = 0
		}
		stateTracker.accumulate(util, dt)
		now = next

		// Advance every working task by dt.
		for _, t := range running {
			if t.delay > 0 {
				t.delay -= dt
				if t.delay <= timeEps {
					t.delay = 0
					t.subStart = now
				}
				continue
			}
			t.remaining -= t.rate * dt
			t.boundTime[t.bottleneck] += dt
		}

		// Retire finished sub-stages and tasks; failed attempts restart.
		completed := running[:0]
		var finishedTasks []*simTask
		for _, t := range running {
			if t.willFail && t.delay == 0 && t.cur == t.failStage &&
				t.remaining <= t.failAt+timeEps {
				// Attempt lost: the framework reruns the task from scratch
				// (container re-launch included).
				t.willFail = false
				t.retries++
				t.cur = 0
				t.remaining = 1
				t.delay = s.opt.TaskStartOverhead.Seconds()
				t.subDurs = t.subDurs[:0]
				t.subStart = now
				if s.trOn {
					s.opt.Observe.Tracer.Emit(obs.Event{
						Type: obs.EvTaskRetry, Time: now,
						Job: t.job.id, Stage: t.stage.String(), Task: t.index,
					})
				}
				if s.m != nil {
					s.m.taskRetries.Inc()
				}
				completed = append(completed, t)
				continue
			}
			if t.delay == 0 && t.remaining <= timeEps*math.Max(1, t.rate) {
				if s.trOn {
					ev := obs.Event{
						Type: obs.EvSubStageFinish,
						Time: t.subStart, Dur: now - t.subStart,
						Job: t.job.id, Stage: t.stage.String(),
						Sub: t.subStages[t.cur].Name, Task: t.index,
						Resource: t.bottleneck.String(),
					}
					// Carry the sub-stage's D_X byte counts (post skew
					// scaling) so the trace alone suffices to invert θ_X.
					for _, op := range t.subStages[t.cur].Ops {
						ev.Demand[op.Resource] = float64(op.Bytes)
					}
					s.opt.Observe.Tracer.Emit(ev)
				}
				t.subDurs = append(t.subDurs, now-t.subStart)
				t.cur++
				t.remaining = 1
				t.subStart = now
				if t.done() {
					finishedTasks = append(finishedTasks, t)
					continue
				}
			}
			completed = append(completed, t)
		}
		running = completed

		for _, t := range finishedTasks {
			s.finishTask(res, t, now)
			if t.node >= 0 {
				nodeLoad[t.node]--
			}
			j := t.job
			delete(j.running, t)
			j.finished++
			stageDone := j.finished == j.profile.Tasks(t.stage)
			if !stageDone {
				continue
			}
			meta := j.stageMeta[t.stage]
			meta.End = units.Seconds(now)
			if s.trOn {
				s.opt.Observe.Tracer.Emit(obs.Event{
					Type: obs.EvStageFinish,
					Time: meta.Start.Seconds(), Dur: (meta.End - meta.Start).Seconds(),
					Job: j.id, Stage: t.stage.String(), Task: -1,
					Resource: meta.Bottleneck.String(),
				})
			}
			if t.stage == workload.Map && j.profile.ReduceTasks > 0 {
				s.startStage(j, workload.Reduce, now)
				continue
			}
			j.phase = jobDone
			remainingJobs--
			for _, c := range children[j.id] {
				cj := jobs[c]
				cj.waitingOn--
				if cj.waitingOn == 0 && cj.phase == jobWaiting {
					eligible(cj)
				}
			}
		}
	}

	stateTracker.observe(now, nil)
	res.States = stateTracker.finish(now)
	res.Makespan = units.Seconds(now)
	if s.m != nil {
		s.m.recordFinalUtilization(res.States)
	}
	for _, j := range ordered {
		for _, st := range []workload.Stage{workload.Map, workload.Reduce} {
			if meta, ok := j.stageMeta[st]; ok {
				meta.MaxParallelism = j.peak[st]
				res.Stages = append(res.Stages, *meta)
			}
		}
	}
	sort.Slice(res.Tasks, func(a, b int) bool {
		ta, tb := res.Tasks[a], res.Tasks[b]
		if ta.Start != tb.Start {
			return ta.Start < tb.Start
		}
		if ta.Job != tb.Job {
			return ta.Job < tb.Job
		}
		return ta.Index < tb.Index
	})
	return res, nil
}

const timeEps = 1e-9

// startStage materializes the pending tasks of a job stage at model time
// now, applying the deterministic per-task size skew.
func (s *Simulator) startStage(j *simJob, st workload.Stage, now float64) {
	n := j.profile.Tasks(st)
	subs := j.profile.SubStages(st, s.spec)
	cv := j.profile.SkewCV
	if s.opt.DisableSkew {
		cv = 0
	}
	factors := sizeFactors(n, cv, hashSeed(s.opt.Seed, j.id+"/"+st.String()))
	failRng := rand.New(rand.NewSource(hashSeed(s.opt.Seed, "fail/"+j.id+"/"+st.String())))
	j.pending = j.pending[:0]
	j.finished = 0
	for i := 0; i < n; i++ {
		scaled := make([]workload.SubStage, len(subs))
		for k, ss := range subs {
			ops := make([]workload.OpDemand, len(ss.Ops))
			for o, op := range ss.Ops {
				ops[o] = workload.OpDemand{Resource: op.Resource, Bytes: op.Bytes.Scale(factors[i])}
			}
			scaled[k] = workload.SubStage{Name: ss.Name, Ops: ops}
		}
		task := &simTask{
			job: j, stage: st, index: i,
			subStages: scaled, remaining: 1, sizeFactor: factors[i],
		}
		if p := s.opt.TaskFailureProb; p > 0 && failRng.Float64() < p {
			task.willFail = true
			task.failStage = failRng.Intn(len(scaled))
			task.failAt = failRng.Float64() // remaining fraction at death
		}
		j.pending = append(j.pending, task)
	}
	if st == workload.Map {
		j.phase = jobMapping
	} else {
		j.phase = jobReducing
	}
	j.stageMeta[st] = &StageRecord{Job: j.id, Stage: st}
	j.stageOpenAt = now
	if s.trOn {
		s.opt.Observe.Tracer.Emit(obs.Event{
			Type: obs.EvStageStart, Time: now,
			Job: j.id, Stage: st.String(), Task: -1,
			Value: float64(n),
		})
	}
}

// schedScratch holds the per-event-loop buffers of schedule, reused
// across iterations to keep the hot loop allocation-free.
type schedScratch struct {
	reqs   []sched.Request
	active []*simJob
	held   sched.Allocation
}

// schedule grants containers under the configured policy and launches
// pending tasks; in NodeAware mode each launch is placed on the
// least-loaded node. jobs must be sorted by ID (the tie-break order).
// Under a hierarchy, reclaim evictions are applied first (the preempted
// tasks return to pending); the return value counts them.
func (s *Simulator) schedule(pool sched.Pool, jobs []*simJob, running *[]*simTask, now float64, nodeLoad []int, sc *schedScratch) int {
	reqs := sc.reqs[:0]
	active := sc.active[:0]
	clear(sc.held)
	held := sc.held
	for _, j := range jobs {
		if j.phase != jobMapping && j.phase != jobReducing {
			continue
		}
		st := workload.Map
		if j.phase == jobReducing {
			st = workload.Reduce
		}
		reqs = append(reqs, sched.Request{
			JobID:     j.id,
			MemoryMB:  j.profile.MemoryMB(st),
			VCores:    j.profile.VCores(st),
			Pending:   len(j.pending),
			Cap:       s.opt.ParallelismCaps[j.id],
			Order:     j.order,
			Queue:     s.opt.Queues[j.id],
			Gang:      s.opt.Gangs[j.id],
			Predicted: s.opt.Predictions[j.id],
		})
		active = append(active, j)
		held[j.id] = len(j.running)
	}
	sc.reqs, sc.active = reqs, active
	if len(reqs) == 0 {
		return 0
	}
	var grants sched.Allocation
	preempted := 0
	if s.opt.Hierarchy != nil {
		hr := sched.AllocateHierarchyObserved(pool, s.opt.Hierarchy, reqs, held, s.opt.Observe, now)
		grants = hr.Grants
		for ri := range reqs {
			if n := hr.Evict[reqs[ri].JobID]; n > 0 {
				preempted += s.preempt(active[ri], n, running, now, nodeLoad)
			}
		}
	} else {
		grants = sched.GrantObserved(s.opt.Policy, pool, reqs, held, s.opt.Observe, now)
	}
	for ri := range reqs {
		r, j := reqs[ri], active[ri]
		for g := grants[r.JobID]; g > 0 && len(j.pending) > 0; g-- {
			t := j.pending[0]
			j.pending = j.pending[1:]
			t.node = -1
			if s.opt.NodeAware {
				t.node = leastLoaded(nodeLoad)
				nodeLoad[t.node]++
			}
			t.start = now
			t.delay = s.opt.TaskStartOverhead.Seconds()
			t.subStart = now
			j.running[t] = true
			*running = append(*running, t)
			if s.trOn {
				s.opt.Observe.Tracer.Emit(obs.Event{
					Type: obs.EvTaskStart, Time: now,
					Job: j.id, Stage: t.stage.String(), Task: t.index,
					Value: now - j.stageOpenAt, // container queue wait
				})
			}
			if s.m != nil {
				s.m.tasksScheduled.Inc()
				s.m.queueWait.Observe(now - j.stageOpenAt)
			}
			meta := j.stageMeta[t.stage]
			if len(j.running)+0 > j.peak[t.stage] {
				j.peak[t.stage] = len(j.running)
			}
			if meta.Start == 0 && meta.End == 0 && len(meta.TaskTimes) == 0 {
				meta.Start = units.Seconds(now)
			}
		}
	}
	return preempted
}

// preempt evicts n of the job's running tasks back to the pending queue:
// the attempt's progress is lost and it restarts from scratch (container
// re-launch included) when next granted. Victims are the youngest
// attempts — latest start, highest index on ties — so the least sunk
// work is discarded; the order is deterministic.
func (s *Simulator) preempt(j *simJob, n int, running *[]*simTask, now float64, nodeLoad []int) int {
	victims := make([]*simTask, 0, len(j.running))
	for t := range j.running {
		victims = append(victims, t)
	}
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].start != victims[b].start {
			return victims[a].start > victims[b].start
		}
		return victims[a].index > victims[b].index
	})
	if n > len(victims) {
		n = len(victims)
	}
	victims = victims[:n]
	evicted := make(map[*simTask]bool, n)
	for _, t := range victims {
		evicted[t] = true
		delete(j.running, t)
		if t.node >= 0 {
			nodeLoad[t.node]--
			t.node = -1
		}
		t.cur = 0
		t.remaining = 1
		t.delay = 0
		t.rate = 0
		t.subDurs = t.subDurs[:0]
		if s.trOn {
			s.opt.Observe.Tracer.Emit(obs.Event{
				Type: obs.EvTaskPreempt, Time: now,
				Job: j.id, Stage: t.stage.String(), Task: t.index,
			})
		}
		if s.m != nil {
			s.m.taskPreempts.Inc()
		}
	}
	// Preempted tasks rejoin the head of the pending queue (youngest
	// first, as selected) and the running set is compacted in place.
	j.pending = append(victims, j.pending...)
	kept := (*running)[:0]
	for _, t := range *running {
		if !evicted[t] {
			kept = append(kept, t)
		}
	}
	*running = kept
	return n
}

// allocate shares the cluster's resource pools among working tasks,
// stores each task's progress rate and current bottleneck, and returns
// the cluster-wide utilization per resource class.
func (s *Simulator) allocate(running []*simTask) [cluster.NumResources]float64 {
	var caps [cluster.NumResources]units.Rate
	for _, r := range cluster.Resources() {
		caps[r] = s.spec.TotalCapacity(r)
	}
	var consumers []fairshare.Consumer
	var idx []int
	for i, t := range running {
		if t.delay > 0 || t.done() {
			continue
		}
		ss := t.subStages[t.cur]
		c := fairshare.Consumer{Count: 1, CapResource: cluster.CPU}
		for _, op := range ss.Ops {
			if op.Bytes <= 0 {
				continue
			}
			c.Demand[op.Resource] = float64(op.Bytes)
			// One task cannot exceed one node's device rates (see the BOE
			// model's consumerFor; model and simulator share the physics).
			r := float64(s.spec.Node.PerTaskCap(op.Resource)) / float64(op.Bytes)
			if c.MaxRate == 0 || r < c.MaxRate {
				c.MaxRate = r
				c.CapResource = op.Resource
			}
		}
		consumers = append(consumers, c)
		idx = append(idx, i)
	}
	if len(consumers) == 0 {
		return [cluster.NumResources]float64{}
	}
	alloc := fairshare.Allocate(caps, consumers)
	for k, i := range idx {
		running[i].rate = alloc.Rate[k]
		running[i].bottleneck = alloc.Bottleneck[k]
	}
	return alloc.Utilization
}

// finishTask converts a completed task into its record and folds its
// duration into the stage metadata.
func (s *Simulator) finishTask(res *Result, t *simTask, now float64) {
	rec := TaskRecord{
		Job:        t.job.id,
		Stage:      t.stage,
		Index:      t.index,
		Start:      units.Seconds(t.start),
		End:        units.Seconds(now),
		SizeFactor: t.sizeFactor,
		Retries:    t.retries,
	}
	for _, d := range t.subDurs {
		rec.SubStages = append(rec.SubStages, units.Seconds(d))
	}
	best, bestT := cluster.CPU, -1.0
	for r, bt := range t.boundTime {
		if bt > bestT {
			best, bestT = cluster.Resource(r), bt
		}
	}
	rec.Bottleneck = best
	res.Tasks = append(res.Tasks, rec)
	if s.trOn {
		s.opt.Observe.Tracer.Emit(obs.Event{
			Type: obs.EvTaskFinish,
			Time: t.start, Dur: now - t.start,
			Job: t.job.id, Stage: t.stage.String(), Task: t.index,
			Resource: best.String(), Value: float64(t.node),
		})
	}
	if s.m != nil {
		s.m.tasksFinished.Inc()
		s.m.taskDur.Observe(now - t.start)
	}

	meta := t.job.stageMeta[t.stage]
	meta.TaskTimes = append(meta.TaskTimes, rec.Duration())
	// Dominant stage bottleneck: majority vote weighted by bound time.
	meta.Bottleneck = stageBottleneck(res, t.job.id, t.stage, meta.Bottleneck, best)
}

// stageBottleneck keeps a simple running mode of task bottlenecks.
func stageBottleneck(res *Result, job string, st workload.Stage, prev, latest cluster.Resource) cluster.Resource {
	counts := make(map[cluster.Resource]int)
	for _, t := range res.Tasks {
		if t.Job == job && t.Stage == st {
			counts[t.Bottleneck]++
		}
	}
	best, bestN := latest, 0
	for r, n := range counts {
		if n > bestN || (n == bestN && r < best) {
			best, bestN = r, n
		}
	}
	_ = prev
	return best
}

func sortedJobs(jobs map[string]*simJob) []*simJob {
	out := make([]*simJob, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// stateTracker turns the evolving set of running (job, stage) pairs into
// the paper's workflow states: a new state opens whenever the set changes.
// observe is called every event-loop iteration, so the steady-state path
// (set unchanged) must not allocate: the running set is deduplicated with
// a per-call epoch mark on the jobs and compared structurally; label
// strings are only built when a state actually opens.
type stateTracker struct {
	cur      []jobStage
	scratch  []jobStage
	epoch    int
	virgin   bool
	start    float64
	labels   []string
	states   []StateRecord
	utilSum  [cluster.NumResources]float64
	utilTime float64
	// Observability sinks, shared with the owning Simulator.
	o    obs.Options
	trOn bool
	m    *simMetrics
}

// jobStage is one element of a workflow state's running set.
type jobStage struct {
	j  *simJob
	st workload.Stage
}

func newStateTracker(o obs.Options, trOn bool, m *simMetrics) *stateTracker {
	return &stateTracker{virgin: true, o: o, trOn: trOn, m: m}
}

func (st *stateTracker) observe(now float64, running []*simTask) {
	// A job runs one stage at a time, so deduplicating by job suffices.
	st.epoch++
	st.scratch = st.scratch[:0]
	for _, t := range running {
		if t.job.seenEpoch != st.epoch {
			t.job.seenEpoch = st.epoch
			st.scratch = append(st.scratch, jobStage{j: t.job, st: t.stage})
		}
	}
	// Insertion sort by job ID: the set is tiny and almost sorted, and
	// sort.Slice would allocate its closure every iteration.
	for i := 1; i < len(st.scratch); i++ {
		for k := i; k > 0 && st.scratch[k].j.id < st.scratch[k-1].j.id; k-- {
			st.scratch[k], st.scratch[k-1] = st.scratch[k-1], st.scratch[k]
		}
	}
	if !st.virgin && jobStagesEqual(st.scratch, st.cur) {
		return
	}
	st.virgin = false
	st.close(now)
	st.cur = append(st.cur[:0], st.scratch...)
	labels := make([]string, len(st.cur))
	for i, p := range st.cur {
		labels[i] = p.j.id + "/" + p.st.String()
	}
	st.start, st.labels = now, labels
	st.utilSum = [cluster.NumResources]float64{}
	st.utilTime = 0
	if st.trOn && len(labels) > 0 {
		st.o.Tracer.Emit(obs.Event{
			Type: obs.EvStateOpen, Time: now, Task: -1,
			Seq:    len(st.states) + 1, // tentative: transients are dropped at close
			Detail: strings.Join(labels, ","),
		})
	}
}

func jobStagesEqual(a, b []jobStage) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// accumulate adds a time-weighted utilization sample to the open state.
func (st *stateTracker) accumulate(util [cluster.NumResources]float64, dt float64) {
	if dt <= 0 {
		return
	}
	for r := 0; r < cluster.NumResources; r++ {
		st.utilSum[r] += util[r] * dt
	}
	st.utilTime += dt
}

func (st *stateTracker) close(now float64) {
	if len(st.labels) == 0 {
		return
	}
	if now-st.start < 1e-6 {
		return // zero-length state: scheduling transient, not a paper state
	}
	rec := StateRecord{
		Seq:     len(st.states) + 1,
		Start:   units.Seconds(st.start),
		End:     units.Seconds(now),
		Running: st.labels,
	}
	if st.utilTime > 0 {
		for r := 0; r < cluster.NumResources; r++ {
			rec.Utilization[r] = st.utilSum[r] / st.utilTime
		}
	}
	st.states = append(st.states, rec)
	if st.trOn {
		dom := rec.DominantResource()
		st.o.Tracer.Emit(obs.Event{
			Type: obs.EvStateClose,
			Time: st.start, Dur: now - st.start,
			Seq: rec.Seq, Task: -1,
			Detail:   strings.Join(st.labels, ","),
			Resource: dom.String(),
			Value:    rec.Utilization[dom],
		})
	}
	if st.m != nil {
		st.m.states.Inc()
		st.m.stateDur.Observe(now - st.start)
	}
}

func (st *stateTracker) finish(now float64) []StateRecord {
	st.close(now)
	return st.states
}

// leastLoaded returns the node with the fewest running tasks (lowest
// index on ties), the placement rule of NodeAware mode.
func leastLoaded(load []int) int {
	best := 0
	for i, l := range load {
		if l < load[best] {
			best = i
		}
	}
	return best
}

// allocateNodeAware shares per-node resource pools among working tasks:
// a task's CPU and disk demands hit the pools of the node it is placed
// on, its network demand hits that node's NIC. The resource index space
// is node*NumResources + resource.
func (s *Simulator) allocateNodeAware(running []*simTask) [cluster.NumResources]float64 {
	nRes := s.spec.Nodes * cluster.NumResources
	caps := make([]float64, nRes)
	for node := 0; node < s.spec.Nodes; node++ {
		for _, r := range cluster.Resources() {
			caps[node*cluster.NumResources+int(r)] = float64(s.spec.Node.Capacity(r))
		}
	}
	var consumers []fairshare.VecConsumer
	var idx []int
	for i, t := range running {
		if t.delay > 0 || t.done() || t.node < 0 {
			continue
		}
		ss := t.subStages[t.cur]
		c := fairshare.VecConsumer{Count: 1, Demand: make([]float64, nRes)}
		base := t.node * cluster.NumResources
		for _, op := range ss.Ops {
			c.Demand[base+int(op.Resource)] = float64(op.Bytes)
			if op.Resource == cluster.CPU && op.Bytes > 0 {
				c.MaxRate = float64(s.spec.Node.PerTaskCap(cluster.CPU)) / float64(op.Bytes)
			}
		}
		consumers = append(consumers, c)
		idx = append(idx, i)
	}
	var util [cluster.NumResources]float64
	if len(consumers) == 0 {
		return util
	}
	alloc := fairshare.AllocateVec(caps, consumers)
	for k, i := range idx {
		running[i].rate = alloc.Rate[k]
		if bn := alloc.Bottleneck[k]; bn >= 0 {
			running[i].bottleneck = cluster.Resource(bn % cluster.NumResources)
		} else {
			running[i].bottleneck = cluster.CPU
		}
	}
	// Average each class over the nodes: the cluster-wide view.
	for r := 0; r < cluster.NumResources; r++ {
		sum := 0.0
		for node := 0; node < s.spec.Nodes; node++ {
			sum += alloc.Utilization[node*cluster.NumResources+r]
		}
		util[r] = sum / float64(s.spec.Nodes)
	}
	return util
}
