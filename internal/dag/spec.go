package dag

import (
	"encoding/json"
	"fmt"
	"io"

	"boedag/internal/units"
	"boedag/internal/workload"
)

// The JSON workflow specification lets users describe their own DAGs for
// the commands (dagsim/boepredict -spec file.json) and for programmatic
// loading, without writing Go. Sizes are megabytes; everything else maps
// one-to-one onto workload.JobProfile.
//
//	{
//	  "name": "my-etl",
//	  "jobs": [
//	    {"id": "extract", "input_mb": 51200, "map_selectivity": 0.4,
//	     "map_cpu_cost": 1.5, "reduce_tasks": 33, "reduce_selectivity": 0.8},
//	    {"id": "load", "deps": ["extract"], "input_mb": 16384, ...}
//	  ]
//	}

// jobSpec is the JSON shape of one job.
type jobSpec struct {
	ID   string   `json:"id"`
	Deps []string `json:"deps,omitempty"`

	InputMB           float64 `json:"input_mb"`
	SplitMB           float64 `json:"split_mb,omitempty"`
	ReduceTasks       int     `json:"reduce_tasks,omitempty"`
	MapSelectivity    float64 `json:"map_selectivity,omitempty"`
	ReduceSelectivity float64 `json:"reduce_selectivity,omitempty"`
	MapCPUCost        float64 `json:"map_cpu_cost,omitempty"`
	ReduceCPUCost     float64 `json:"reduce_cpu_cost,omitempty"`
	Compress          bool    `json:"compress,omitempty"`
	CompressRatio     float64 `json:"compress_ratio,omitempty"`
	Replicas          int     `json:"replicas,omitempty"`
	SortBufferMB      float64 `json:"sort_buffer_mb,omitempty"`
	MemoryMB          int     `json:"memory_mb,omitempty"`
	VCores            int     `json:"vcores,omitempty"`
	SkewCV            float64 `json:"skew_cv,omitempty"`
}

// workflowSpec is the JSON shape of a workflow.
type workflowSpec struct {
	Name string    `json:"name"`
	Jobs []jobSpec `json:"jobs"`
}

// LoadWorkflow parses a JSON workflow specification and validates the
// resulting DAG. Defaults: 128 MB splits, unit selectivity and CPU cost,
// 3 replicas, a 100 MB sort buffer.
func LoadWorkflow(r io.Reader) (*Workflow, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec workflowSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("dag: parse workflow spec: %w", err)
	}
	w := &Workflow{Name: spec.Name}
	for _, js := range spec.Jobs {
		p := workload.JobProfile{
			Name:              js.ID,
			InputBytes:        units.Bytes(js.InputMB) * units.MB,
			SplitBytes:        128 * units.MB,
			ReduceTasks:       js.ReduceTasks,
			MapSelectivity:    defaultF(js.MapSelectivity, 1),
			ReduceSelectivity: defaultF(js.ReduceSelectivity, 1),
			MapCPUCost:        defaultF(js.MapCPUCost, 1),
			ReduceCPUCost:     defaultF(js.ReduceCPUCost, 1),
			Replicas:          js.Replicas,
			SortBufferBytes:   100 * units.MB,
			MapMemoryMB:       js.MemoryMB,
			ReduceMemoryMB:    js.MemoryMB,
			MapVCores:         js.VCores,
			ReduceVCores:      js.VCores,
			SkewCV:            js.SkewCV,
		}
		if js.SplitMB > 0 {
			p.SplitBytes = units.Bytes(js.SplitMB) * units.MB
		}
		if js.SortBufferMB > 0 {
			p.SortBufferBytes = units.Bytes(js.SortBufferMB) * units.MB
		}
		if js.Compress {
			ratio := js.CompressRatio
			if ratio <= 0 || ratio > 1 {
				ratio = 0.4
			}
			p.Compression = workload.Compression{Enabled: true, Ratio: ratio, CPUOverhead: 0.3}
		}
		w.Jobs = append(w.Jobs, Job{ID: js.ID, Profile: p, Deps: js.Deps})
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// SaveWorkflow writes the workflow as a JSON spec that LoadWorkflow
// round-trips (sizes are rounded to whole megabytes).
func SaveWorkflow(w io.Writer, flow *Workflow) error {
	if err := flow.Validate(); err != nil {
		return err
	}
	spec := workflowSpec{Name: flow.Name}
	for _, j := range flow.Jobs {
		p := j.Profile
		js := jobSpec{
			ID:                j.ID,
			Deps:              j.Deps,
			InputMB:           float64(p.InputBytes / units.MB),
			SplitMB:           float64(p.SplitBytes / units.MB),
			ReduceTasks:       p.ReduceTasks,
			MapSelectivity:    p.MapSelectivity,
			ReduceSelectivity: p.ReduceSelectivity,
			MapCPUCost:        p.MapCPUCost,
			ReduceCPUCost:     p.ReduceCPUCost,
			Compress:          p.Compression.Enabled,
			Replicas:          p.Replicas,
			SortBufferMB:      float64(p.SortBufferBytes / units.MB),
			MemoryMB:          p.MapMemoryMB,
			VCores:            p.MapVCores,
			SkewCV:            p.SkewCV,
		}
		if p.Compression.Enabled {
			js.CompressRatio = p.Compression.Ratio
		}
		spec.Jobs = append(spec.Jobs, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		return fmt.Errorf("dag: save workflow spec: %w", err)
	}
	return nil
}

func defaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
