package statemodel_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/experiments"
	"boedag/internal/obs"
	"boedag/internal/statemodel"
	"boedag/internal/synthdag"
	"boedag/internal/workload"
)

// newEstimator mirrors the serving path's construction: BOE timer on the
// paper cluster. disable selects the from-scratch reference path.
func newEstimator(mode statemodel.SkewMode, disable bool) *statemodel.Estimator {
	spec := cluster.PaperCluster()
	timer := &statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second}
	return statemodel.New(spec, timer, statemodel.Options{Mode: mode, DisableIncremental: disable})
}

func planJSON(t *testing.T, p *statemodel.Plan) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal plan: %v", err)
	}
	return b
}

// stageIndex indexes a plan's stages by (job, stage) for snapshot
// reconstruction without the O(stages) StageOf scan per job.
func stageIndex(p *statemodel.Plan) map[string][2]*statemodel.StageEstimate {
	idx := make(map[string][2]*statemodel.StageEstimate, len(p.Stages))
	for i := range p.Stages {
		se := &p.Stages[i]
		pair := idx[se.Job]
		pair[se.Stage] = se
		idx[se.Job] = pair
	}
	return idx
}

// snapshotFromPlan reconstructs the observed mid-flight state a resource
// manager would report at instant `at` of the plan's predicted run.
func snapshotFromPlan(flow *dag.Workflow, plan *statemodel.Plan, at time.Duration) statemodel.Snapshot {
	idx := stageIndex(plan)
	snap := statemodel.Snapshot{Elapsed: at, Jobs: make(map[string]statemodel.JobSnapshot, len(flow.Jobs))}
	frac := func(se *statemodel.StageEstimate) float64 {
		if se.End <= se.Start {
			return 0
		}
		return float64(at-se.Start) / float64(se.End-se.Start)
	}
	for _, j := range flow.Jobs {
		pair := idx[j.ID]
		ms, rs := pair[workload.Map], pair[workload.Reduce]
		js := statemodel.JobSnapshot{}
		switch {
		case ms == nil || ms.Start >= at:
			js.Phase = statemodel.JobPending
		case rs != nil && rs.End <= at, rs == nil && ms.End <= at:
			js.Phase = statemodel.JobFinished
		case rs != nil && rs.Start < at:
			js.Phase = statemodel.JobReducing
			js.TasksDone = int(frac(rs) * float64(j.Profile.Tasks(workload.Reduce)))
		default:
			js.Phase = statemodel.JobMapping
			js.TasksDone = int(frac(ms) * float64(j.Profile.Tasks(workload.Map)))
		}
		snap.Jobs[j.ID] = js
	}
	return snap
}

// TestIncrementalMatchesFromScratchRegistry holds the incremental path
// to byte-identical plan JSON against the from-scratch reference across
// the entire workflow registry in every estimate mode. The incremental
// side shares one warm scratch across all flows and modes — the
// worst case for cross-call cache pollution.
func TestIncrementalMatchesFromScratchRegistry(t *testing.T) {
	cfg := experiments.Default()
	scratch := statemodel.NewScratch()
	for _, name := range experiments.WorkflowNames() {
		if name == "synth-10k" {
			// The O(n²·iterations) from-scratch reference is minutes of CPU
			// at 10k jobs. Scale equivalence is covered at synth-1k here;
			// the 10k point runs the incremental path in
			// BenchmarkEstimate10kJobs.
			continue
		}
		flow, err := experiments.BuildNamed(name, cfg)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		modes := statemodel.AllModes()
		if name == "synth-1k" {
			modes = modes[:1] // one mode keeps the 1k point affordable
		}
		for _, mode := range modes {
			ref, err := newEstimator(mode, true).Estimate(flow)
			if err != nil {
				t.Fatalf("%s/%s from-scratch: %v", name, mode, err)
			}
			inc, err := newEstimator(mode, false).EstimateWith(scratch, flow)
			if err != nil {
				t.Fatalf("%s/%s incremental: %v", name, mode, err)
			}
			if !bytes.Equal(planJSON(t, ref), planJSON(t, inc)) {
				t.Errorf("%s/%s: incremental plan differs from from-scratch", name, mode)
			}
		}
	}
}

// TestIncrementalMatchesFromScratchSynthetic sweeps ≥20 seeded layered
// DAG shapes, checking Estimate and a mid-flight EstimateRemaining for
// byte equality in a rotating mode, all on one shared warm scratch.
func TestIncrementalMatchesFromScratchSynthetic(t *testing.T) {
	scratch := statemodel.NewScratch()
	modes := statemodel.AllModes()
	shapes := []synthdag.Config{
		{Layers: 2, Width: 3, FanIn: 1},
		{Layers: 4, Width: 6, FanIn: 2},
		{Layers: 6, Width: 4, FanIn: 3},
		{Layers: 3, Width: 12, FanIn: 4},
		{Layers: 8, Width: 2, FanIn: 2},
	}
	n := 0
	for _, shape := range shapes {
		for seed := int64(1); seed <= 4; seed++ {
			shape.Seed = seed
			flow := synthdag.Generate(shape)
			mode := modes[n%len(modes)]
			n++
			ref, err := newEstimator(mode, true).Estimate(flow)
			if err != nil {
				t.Fatalf("%s/%s from-scratch: %v", flow.Name, mode, err)
			}
			inc, err := newEstimator(mode, false).EstimateWith(scratch, flow)
			if err != nil {
				t.Fatalf("%s/%s incremental: %v", flow.Name, mode, err)
			}
			if !bytes.Equal(planJSON(t, ref), planJSON(t, inc)) {
				t.Errorf("%s/%s: incremental plan differs from from-scratch", flow.Name, mode)
			}

			snap := snapshotFromPlan(flow, ref, ref.Makespan/2)
			_, refRem, err := newEstimator(mode, true).EstimateRemaining(flow, snap)
			if err != nil {
				t.Fatalf("%s/%s remaining from-scratch: %v", flow.Name, mode, err)
			}
			_, incRem, err := newEstimator(mode, false).EstimateRemainingWith(scratch, flow, snap)
			if err != nil {
				t.Fatalf("%s/%s remaining incremental: %v", flow.Name, mode, err)
			}
			if !bytes.Equal(planJSON(t, refRem), planJSON(t, incRem)) {
				t.Errorf("%s/%s: incremental remaining-plan differs from from-scratch", flow.Name, mode)
			}
		}
	}
	if n < 20 {
		t.Fatalf("only %d synthetic DAGs exercised, want ≥20", n)
	}
}

// TestConcurrentEstimatesSharePool hammers the internal scratch pool
// from many goroutines (the evalpool / batch fan-out shape) and checks
// every result against its precomputed reference bytes. Meant to run
// under -race.
func TestConcurrentEstimatesSharePool(t *testing.T) {
	flows := []*dag.Workflow{
		synthdag.Generate(synthdag.Config{Layers: 3, Width: 4, FanIn: 2, Seed: 1}),
		synthdag.Generate(synthdag.Config{Layers: 2, Width: 6, FanIn: 3, Seed: 2}),
		synthdag.Generate(synthdag.Config{Layers: 5, Width: 2, FanIn: 1, Seed: 3}),
		dag.Single(workload.WordCount(20 * 1 << 30)),
	}
	est := newEstimator(statemodel.NormalMode, false)
	want := make([][]byte, len(flows))
	for i, f := range flows {
		p, err := newEstimator(statemodel.NormalMode, true).Estimate(f)
		if err != nil {
			t.Fatalf("reference %s: %v", f.Name, err)
		}
		want[i] = planJSON(t, p)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				i := (g + it) % len(flows)
				p, err := est.Estimate(flows[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				b, err := json.Marshal(p)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(b, want[i]) {
					errs <- fmt.Errorf("goroutine %d: %s: concurrent plan diverged", g, flows[i].Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRepeatEstimateSolvesNothing pins the incremental contract at the
// metrics level: re-estimating an unchanged workflow on a warm scratch
// must carry every task-time distribution forward (zero dirty solves),
// and a layer of identical profile classes must collapse to far fewer
// solves than running jobs even when cold.
func TestRepeatEstimateSolvesNothing(t *testing.T) {
	spec := cluster.PaperCluster()
	timer := &statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second}

	run := func(scratch *statemodel.Scratch, flow *dag.Workflow) (solves, reuse int64) {
		reg := obs.NewRegistry()
		est := statemodel.New(spec, timer, statemodel.Options{
			Mode:    statemodel.NormalMode,
			Observe: obs.Options{Metrics: reg},
		})
		if _, err := est.EstimateWith(scratch, flow); err != nil {
			t.Fatal(err)
		}
		return reg.Counter("est_dist_solves").Value(), reg.Counter("est_dist_reuse").Value()
	}

	scratch := statemodel.NewScratch()
	flow := synthdag.Generate(synthdag.Config{Layers: 4, Width: 10, FanIn: 2, Seed: 5})
	coldSolves, _ := run(scratch, flow)
	if coldSolves == 0 {
		t.Fatal("cold run reported zero solves")
	}
	warmSolves, warmReuse := run(scratch, flow)
	if warmSolves != 0 {
		t.Errorf("warm re-estimate solved %d dists, want 0 (all carried forward)", warmSolves)
	}
	if warmReuse == 0 {
		t.Error("warm re-estimate reported zero reuse")
	}

	// A single wide layer runs its jobs in lockstep, so every iteration
	// holds many jobs of the same (class, delta): one solve per class,
	// the rest reused even on a cold cache.
	wide := synthdag.Generate(synthdag.Config{Layers: 1, Width: 40, Seed: 3})
	wideSolves, wideReuse := run(statemodel.NewScratch(), wide)
	if wideReuse <= wideSolves {
		t.Errorf("wide layer: reuse %d ≤ solves %d; identical classes should collapse", wideReuse, wideSolves)
	}
}

// TestDisableIncrementalSolvesEverything checks the reference path
// really is from-scratch: no reuse ever.
func TestDisableIncrementalSolvesEverything(t *testing.T) {
	flow := synthdag.Generate(synthdag.Config{Layers: 3, Width: 6, FanIn: 2, Seed: 2})
	reg := obs.NewRegistry()
	spec := cluster.PaperCluster()
	est := statemodel.New(spec,
		&statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: time.Second},
		statemodel.Options{DisableIncremental: true, Observe: obs.Options{Metrics: reg}})
	scratch := statemodel.NewScratch()
	for i := 0; i < 2; i++ {
		if _, err := est.EstimateWith(scratch, flow); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("est_dist_reuse").Value(); v != 0 {
		t.Errorf("from-scratch path reused %d dists, want 0", v)
	}
	if v := reg.Counter("est_dist_solves").Value(); v == 0 {
		t.Error("from-scratch path reported zero solves")
	}
}
