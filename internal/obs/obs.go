// Package obs is the runtime observability layer of this repository: a
// zero-dependency (standard library only) instrumentation substrate
// shared by the discrete-event simulator, the state-based estimator and
// the scheduler model. It provides
//
//   - a Tracer interface receiving structured Events — task lifecycle,
//     per-sub-stage bottleneck resolution, workflow state transitions,
//     scheduler allocation decisions, estimator iterations — with an
//     in-memory Recorder and a no-op default;
//   - a metrics Registry of counters, gauges and histograms;
//   - exporters: Chrome trace_event JSON (loadable in chrome://tracing
//     or Perfetto), a plain-text summary report, and a JSON metrics dump.
//
// Instrumented code must stay allocation-free when tracing is off: every
// emit site is guarded behind an enabled check, e.g.
//
//	if o.TracerOn() {
//	    o.Tracer.Emit(obs.Event{...})
//	}
//
// so the Event literal is never materialized on the disabled path
// (BenchmarkSimulatorInstrumentationOff in internal/simulator holds the
// line at ≤5% overhead versus the uninstrumented seed path).
package obs

import (
	"fmt"
	"sync"
)

// EventType classifies an Event. The taxonomy covers both producers: the
// simulator (ground truth) and the state-based estimator (prediction).
type EventType uint8

const (
	// EvNone is the zero event type (never emitted).
	EvNone EventType = iota
	// EvJobSubmit marks a job becoming eligible (its DAG dependencies
	// cleared); Value carries the instant its submit overhead elapses.
	EvJobSubmit
	// EvStageStart marks a job stage materializing its pending tasks.
	EvStageStart
	// EvStageFinish spans a completed job stage (Time = start, Dur = span).
	EvStageFinish
	// EvTaskStart marks a task launching in a granted container.
	EvTaskStart
	// EvTaskFinish spans a completed task (Time = start, Dur = span);
	// Resource names the bottleneck the task was bound by longest, Value
	// the node it ran on in node-aware mode (-1 otherwise).
	EvTaskFinish
	// EvTaskRetry marks a failed task attempt being re-executed.
	EvTaskRetry
	// EvSubStageFinish spans one pipelined sub-stage of a task (Time =
	// start, Dur = span); Resource names the sub-stage's resolved
	// bottleneck at completion — the paper's per-sub-stage BOE view.
	EvSubStageFinish
	// EvStateOpen marks a workflow state opening (the running job/stage
	// set changed); Detail lists the set.
	EvStateOpen
	// EvStateClose spans a closed workflow state (Time = start, Dur =
	// span); Resource names the dominant resource, Value its utilization.
	EvStateClose
	// EvAllocGrant records a scheduler allocation decision: Job received
	// Value containers under the Detail policy.
	EvAllocGrant
	// EvEstimatorIter marks one iteration of Algorithm 1's state loop;
	// Seq is the iteration, Value the number of running jobs.
	EvEstimatorIter
	// EvEstimatorState marks the estimator opening a predicted workflow
	// state; Detail lists the running job/stage set.
	EvEstimatorState
	// EvPoolJob spans one job executed by the parallel evaluation engine
	// (Time = start, Dur = span, both wall clock relative to the pool's
	// start); Seq is the job's input index, Detail the pool label, and
	// Value 1 when the job returned an error, 0 otherwise.
	EvPoolJob
	// EvRunStart is emitted once when a producer begins a run, making the
	// trace self-describing for offline consumers (trace-driven
	// calibration reads it back): Job carries the workflow name, Seq the
	// cluster's node count, Value its effective total task slots, and
	// Detail is "skew" when task-size skew is active for the run.
	EvRunStart
	// EvRequest spans one HTTP request served by the prediction daemon
	// (Time = seconds since server start, Dur = handling span); Detail is
	// "METHOD /path", Value the response status code, and Seq the
	// server-assigned request ordinal tying the request to its
	// EvRequestPhase children.
	EvRequest
	// EvRequestPhase spans one phase of a served request — decode,
	// coalesce-wait, estimate, encode — (Time = seconds since server
	// start, Dur = phase span); Detail names the phase and Seq carries
	// the owning request's ordinal, so exporters can nest phases under
	// their request like sub-stages under a task.
	EvRequestPhase
	// EvTaskPreempt marks a running task evicted by the hierarchical
	// scheduler's reclaim phase (its container returns to the pool and the
	// task restarts from scratch when re-granted).
	EvTaskPreempt
)

// String names the event type as exporters print it.
func (t EventType) String() string {
	switch t {
	case EvJobSubmit:
		return "job_submit"
	case EvStageStart:
		return "stage_start"
	case EvStageFinish:
		return "stage_finish"
	case EvTaskStart:
		return "task_start"
	case EvTaskFinish:
		return "task_finish"
	case EvTaskRetry:
		return "task_retry"
	case EvSubStageFinish:
		return "substage_finish"
	case EvStateOpen:
		return "state_open"
	case EvStateClose:
		return "state_close"
	case EvAllocGrant:
		return "alloc_grant"
	case EvEstimatorIter:
		return "estimator_iter"
	case EvEstimatorState:
		return "estimator_state"
	case EvPoolJob:
		return "pool_job"
	case EvRunStart:
		return "run_start"
	case EvRequest:
		return "request"
	case EvRequestPhase:
		return "request_phase"
	case EvTaskPreempt:
		return "task_preempt"
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Event is one structured observation. It is a flat value type — no
// pointers, no maps — so constructing one on the enabled path costs a
// stack write and skipping one on the disabled path costs a single
// branch. Span-shaped events (Ev*Finish, EvStateClose) carry Time as the
// span's start and Dur as its length; instant events leave Dur zero.
type Event struct {
	Type EventType
	// Time is seconds since workflow submission (model time, not wall
	// clock) — the span start for *Finish/*Close events.
	Time float64
	// Dur is the span length in seconds for span-shaped events.
	Dur float64
	// Job and Stage locate the event in the workflow ("" when global).
	Job   string
	Stage string
	// Sub names the pipelined sub-stage for EvSubStageFinish.
	Sub string
	// Task is the task ordinal within its stage (-1 when not task-scoped).
	Task int
	// Seq numbers states and estimator iterations.
	Seq int
	// Resource names the resolved bottleneck for bottleneck-carrying
	// events (task, sub-stage, state).
	Resource string
	// Value is a generic numeric payload (granted containers, node index,
	// dominant utilization, running-job count — see each type's doc).
	Value float64
	// Detail is a generic string payload (state member sets, policy name).
	Detail string
	// Demand carries the bytes an EvSubStageFinish moved per resource
	// class — the D_X the sub-stage was derived from, post skew scaling.
	// Indices follow internal/cluster.Resource declaration order (see
	// DemandResourceNames); zero for events that move no data. Recording
	// demands alongside durations makes traces invertible: offline
	// calibration recovers θ_X = D_X/duration without rerunning anything.
	Demand [NumDemandResources]float64
}

// NumDemandResources sizes Event.Demand. It must equal
// internal/cluster.NumResources (asserted at compile time in
// internal/simulator); obs stays standard-library-only, so the constant
// is mirrored here rather than imported.
const NumDemandResources = 4

// DemandResourceNames names each Event.Demand slot, in index order,
// matching internal/cluster.Resource.String(). Exporters use these names
// so trace consumers can key byte counts by resource without importing
// the cluster package.
var DemandResourceNames = [NumDemandResources]string{
	"cpu", "disk-read", "disk-write", "network",
}

// Tracer receives structured events. Implementations must be safe for
// concurrent use; the simulator and estimator emit from a single
// goroutine but nothing stops callers from sharing one tracer across
// runs. Emit is only called after Enabled() returned true, so a
// permanently disabled tracer never sees events (and the caller never
// builds them).
type Tracer interface {
	// Enabled reports whether the tracer wants events at all. Callers
	// check it once per emit site — the allocation-free-when-disabled
	// contract.
	Enabled() bool
	// Emit delivers one event.
	Emit(Event)
}

// nop is the default tracer: disabled, drops everything.
type nop struct{}

func (nop) Enabled() bool { return false }
func (nop) Emit(Event)    {}

// Nop is the no-op Tracer: Enabled is false and Emit discards.
var Nop Tracer = nop{}

// Recorder is an in-memory Tracer: it appends every event to a slice,
// ready for export. Safe for concurrent emitters.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled implements Tracer (always true).
func (r *Recorder) Enabled() bool { return true }

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded, in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len reports how many events were recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset drops all recorded events, keeping capacity.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// ByType returns the recorded events of one type, in emission order.
func (r *Recorder) ByType(t EventType) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, ev := range r.events {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

// Options bundles the two observability sinks an instrumented component
// accepts. The zero value is fully disabled and costs one branch per
// emit site.
type Options struct {
	// Tracer receives structured events (nil or Nop = off).
	Tracer Tracer
	// Metrics receives counter/gauge/histogram updates (nil = off).
	Metrics *Registry
}

// TracerOn reports whether event emission is live. Call it before
// constructing an Event so the disabled path allocates nothing.
func (o Options) TracerOn() bool { return o.Tracer != nil && o.Tracer.Enabled() }

// MetricsOn reports whether metric recording is live.
func (o Options) MetricsOn() bool { return o.Metrics != nil }
