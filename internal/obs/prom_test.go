package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// buildPromRegistry populates a registry the way the service does —
// plain instruments plus labeled series — with a few hostile names to
// pin sanitization and escaping.
func buildPromRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("http_requests").Add(42)
	reg.Counter("estimates_computed").Add(7)
	reg.Gauge("requests_inflight").Set(3)
	reg.Gauge("cache_hit_ratio").Set(0.9375)
	reg.Histogram("request_duration_s").Observe(0.0008)
	reg.Histogram("request_duration_s").Observe(0.01)
	reg.Histogram("request_duration_s").Observe(0.25)
	reg.Histogram("request_duration_s{route=/v1/estimate}").Observe(0.01)
	reg.Histogram("request_duration_s{route=/v1/estimate}").Observe(0.25)
	reg.Histogram("request_duration_s{route=/healthz}").Observe(0.0008)
	// Hostile label value and metric name: quotes, backslashes, dashes.
	reg.Counter(`lookups{path=C:\temp,note="quoted"}`).Add(1)
	reg.Gauge("weird-name.pct").Set(50)
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	SetMetricHelp("http_requests", "Total HTTP requests served.")
	SetMetricHelp("request_duration_s", "End-to-end request latency in seconds.")
	reg := buildPromRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus exposition drifted from golden; rerun with -update if intended\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusShape checks the structural invariants a scraper
// depends on, independent of the golden bytes.
func TestWritePrometheusShape(t *testing.T) {
	reg := buildPromRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// One HELP and one TYPE per family, HELP immediately before TYPE.
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	helps := map[string]int{}
	types := map[string]int{}
	for i, l := range lines {
		if strings.HasPrefix(l, "# HELP ") {
			fam := strings.Fields(l)[2]
			helps[fam]++
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+fam+" ") {
				t.Errorf("HELP for %s not followed by its TYPE", fam)
			}
		}
		if strings.HasPrefix(l, "# TYPE ") {
			types[strings.Fields(l)[2]]++
		}
	}
	for fam, n := range helps {
		if n != 1 || types[fam] != 1 {
			t.Errorf("family %s: %d HELP, %d TYPE lines", fam, n, types[fam])
		}
	}

	// The labeled histogram expands into cumulative buckets + sum/count
	// with the route label preserved and escaped le merged in.
	for _, want := range []string{
		`request_duration_s_bucket{route="/v1/estimate",le="+Inf"} 2`,
		`request_duration_s_sum{route="/v1/estimate"} 0.26`,
		`request_duration_s_count{route="/v1/estimate"} 2`,
		`request_duration_s_bucket{le="+Inf"} 3`,
		`request_duration_s_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing series %q in:\n%s", want, out)
		}
	}

	// Cumulative buckets are monotone for every histogram series.
	var prev int64 = -1
	var prevSeries string
	for _, l := range lines {
		if !strings.Contains(l, "_bucket{") {
			continue
		}
		series := l[:strings.Index(l, ",le=")+1]
		if !strings.Contains(series, ",") {
			series = l[:strings.Index(l, "{le=")]
		}
		v, err := strconv.ParseInt(l[strings.LastIndexByte(l, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", l, err)
		}
		if series == prevSeries && v < prev {
			t.Errorf("non-monotone bucket series at %q", l)
		}
		prev, prevSeries = v, series
	}

	// Hostile label values are escaped, names sanitized.
	if !strings.Contains(out, `lookups{path="C:\\temp",note="\"quoted\""} 1`) {
		t.Errorf("label escaping broken:\n%s", out)
	}
	if !strings.Contains(out, "weird_name_pct 50") {
		t.Errorf("name sanitization broken:\n%s", out)
	}
}
