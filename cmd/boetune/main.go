// Command boetune auto-tunes a named DAG workflow's job configurations
// with the cost models — the automatic-tuning application the paper's
// conclusion names. It searches reduce-task counts, compression, and
// sort-buffer sizes by coordinate descent (each candidate scored by the
// state-based BOE estimator in about a millisecond) and validates the
// recommendation in the simulator.
//
// Usage:
//
//	boetune -workflow ts               # tune the 100 GB TeraSort
//	boetune -workflow wc+q5 -passes 2  # tune a hybrid, 2 search passes
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"boedag/internal/cliobs"
	"boedag/internal/experiments"
	"boedag/internal/metrics"
	"boedag/internal/simulator"
	"boedag/internal/tuning"
	"boedag/internal/units"
)

func main() {
	var (
		name     = flag.String("workflow", "ts", "workflow name (see dagsim -list)")
		scale    = flag.Float64("scale", 80, "TPC-H scale factor (GB)")
		microGB  = flag.Float64("micro-gb", 100, "Word Count / TeraSort input size in GB")
		passes   = flag.Int("passes", 3, "coordinate-descent passes")
		validate = flag.Bool("validate", true, "simulate before/after to verify the gain")
		order    = flag.Bool("order", false, "also optimize root-job submission order for FIFO clusters")
		seed     = flag.Int64("seed", 1, "skew RNG seed for validation")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent candidate scorings per coordinate (1 = serial)")
	)
	var ob cliobs.Flags
	ob.Register(nil)
	flag.Parse()

	observe, err := ob.Options()
	if err != nil {
		fatal(err)
	}

	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.TPCHScale = *scale
	cfg.MicroInput = units.Bytes(*microGB) * units.GB

	flow, err := experiments.BuildNamed(*name, cfg)
	if err != nil {
		fatal(err)
	}

	tuner := tuning.New(cfg.Spec, tuning.Options{MaxPasses: *passes, Observe: observe, Workers: *workers})
	start := time.Now()
	rec, err := tuner.Tune(flow)
	if err != nil {
		fatal(err)
	}
	searchTime := time.Since(start)

	fmt.Printf("%s: estimated %.1fs → %.1fs (%.1f%% better) after %d evaluations (%d cache hits) in %s\n",
		flow.Name, rec.Baseline.Seconds(), rec.Estimate.Seconds(),
		100*rec.Improvement(), rec.Evaluations, rec.CacheHits, searchTime.Round(time.Millisecond))
	if len(rec.Changes) == 0 {
		fmt.Println("no profitable changes found — the configuration is already sensible")
	}
	tuning.SortChangesByGain(rec.Changes)
	for _, c := range rec.Changes {
		fmt.Printf("  %-24s %-13s %s → %s  (%.1f%%)\n", c.Job, c.Knob, c.From, c.To, 100*c.Gain)
	}

	if *order {
		orec, err := tuner.OrderJobs(rec.Tuned)
		if err != nil {
			fmt.Printf("\nsubmission-order optimization skipped: %v\n", err)
		} else {
			fmt.Printf("\nFIFO submission order: %v (%.1f%% better than declared order, %d evaluations)\n",
				orec.Order, 100*orec.Improvement(), orec.Evaluations)
		}
	}

	if !*validate {
		if err := ob.Finish(); err != nil {
			fatal(err)
		}
		return
	}
	sim := simulator.New(cfg.Spec, simulator.Options{Seed: cfg.Seed, Observe: observe})
	before, err := sim.Run(flow)
	if err != nil {
		fatal(err)
	}
	after, err := sim.Run(rec.Tuned)
	if err != nil {
		fatal(err)
	}
	gain := 1 - after.Makespan.Seconds()/before.Makespan.Seconds()
	fmt.Printf("\nsimulated check: %.1fs → %.1fs (%.1f%% better); tuner estimate accuracy %.1f%%\n",
		before.Makespan.Seconds(), after.Makespan.Seconds(), 100*gain,
		100*metrics.Accuracy(rec.Estimate, after.Makespan))
	if err := ob.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boetune:", err)
	os.Exit(1)
}
