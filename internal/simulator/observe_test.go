package simulator

import (
	"testing"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/obs"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// obsFlow is the instrumentation test workload: two parallel jobs so the
// run crosses several workflow states.
func obsFlow() *dag.Workflow {
	return dag.Parallel("obs-demo",
		dag.Single(workload.WordCount(5*units.GB)),
		dag.Single(workload.TeraSort(5*units.GB)))
}

func TestSimulatorEmitsEvents(t *testing.T) {
	rec := obs.NewRecorder()
	reg := obs.NewRegistry()
	opt := Options{Seed: 1, Observe: obs.Options{Tracer: rec, Metrics: reg}}
	res, err := New(cluster.PaperCluster(), opt).Run(obsFlow())
	if err != nil {
		t.Fatal(err)
	}

	finishes := rec.ByType(obs.EvTaskFinish)
	if len(finishes) != len(res.Tasks) {
		t.Errorf("EvTaskFinish count = %d, want %d (one per task)", len(finishes), len(res.Tasks))
	}
	if got := len(rec.ByType(obs.EvStateClose)); got != len(res.States) {
		t.Errorf("EvStateClose count = %d, want %d", got, len(res.States))
	}
	if got := len(rec.ByType(obs.EvStageFinish)); got != len(res.Stages) {
		t.Errorf("EvStageFinish count = %d, want %d", got, len(res.Stages))
	}
	for _, want := range []obs.EventType{
		obs.EvJobSubmit, obs.EvStageStart, obs.EvTaskStart,
		obs.EvSubStageFinish, obs.EvStateOpen, obs.EvAllocGrant,
	} {
		if len(rec.ByType(want)) == 0 {
			t.Errorf("no %s events emitted", want)
		}
	}
	// Span events carry (start, duration) consistent with the records.
	for _, ev := range finishes {
		if ev.Dur <= 0 || ev.Time < 0 {
			t.Errorf("task finish span invalid: %+v", ev)
		}
		if ev.Resource == "" {
			t.Errorf("task finish missing bottleneck: %+v", ev)
		}
	}

	if got := reg.Counter("sim_tasks_finished").Value(); got != int64(len(res.Tasks)) {
		t.Errorf("sim_tasks_finished = %d, want %d", got, len(res.Tasks))
	}
	if got := reg.Counter("sim_tasks_scheduled").Value(); got < int64(len(res.Tasks)) {
		t.Errorf("sim_tasks_scheduled = %d, want ≥ %d", got, len(res.Tasks))
	}
	if reg.Histogram("sim_task_duration_s").Count() == 0 {
		t.Error("task duration histogram empty")
	}
	if reg.Gauge("sim_mean_utilization_cpu").Value() <= 0 {
		t.Error("cpu utilization gauge not set")
	}
	if reg.Counter("sched_grant_rounds").Value() == 0 {
		t.Error("scheduler grant rounds not counted")
	}
}

func TestSimulatorRetryEventsWithFailures(t *testing.T) {
	rec := obs.NewRecorder()
	opt := Options{Seed: 1, TaskFailureProb: 0.2, Observe: obs.Options{Tracer: rec}}
	res, err := New(cluster.PaperCluster(), opt).Run(dag.Single(workload.WordCount(5 * units.GB)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.ByType(obs.EvTaskRetry)); got != res.TotalRetries() {
		t.Errorf("EvTaskRetry count = %d, want %d", got, res.TotalRetries())
	}
}

// TestObservationDoesNotPerturb is the Heisenberg guard: attaching the
// full observability stack must not change a single simulated number.
func TestObservationDoesNotPerturb(t *testing.T) {
	base, err := New(cluster.PaperCluster(), Options{Seed: 7}).Run(obsFlow())
	if err != nil {
		t.Fatal(err)
	}
	obsOpt := Options{Seed: 7, Observe: obs.Options{Tracer: obs.NewRecorder(), Metrics: obs.NewRegistry()}}
	traced, err := New(cluster.PaperCluster(), obsOpt).Run(obsFlow())
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != traced.Makespan {
		t.Errorf("makespan drifted under observation: %v vs %v", base.Makespan, traced.Makespan)
	}
	if len(base.Tasks) != len(traced.Tasks) || len(base.States) != len(traced.States) {
		t.Errorf("record counts drifted: %d/%d tasks, %d/%d states",
			len(base.Tasks), len(traced.Tasks), len(base.States), len(traced.States))
	}
	for i := range base.Tasks {
		if base.Tasks[i].End != traced.Tasks[i].End {
			t.Fatalf("task %d end drifted", i)
		}
	}
}

// BenchmarkSimulatorInstrumentationOff measures the disabled-path cost of
// the observability layer: it must stay within 5% of the seed simulator
// (every emit site is one predictable branch; compare against
// BenchmarkSimulatorInstrumentationOn for the enabled cost).
func BenchmarkSimulatorInstrumentationOff(b *testing.B) {
	spec := cluster.PaperCluster()
	flow := obsFlow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(spec, Options{Seed: 1}).Run(flow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorInstrumentationOn is the enabled-path counterpart:
// full event recording plus metrics.
func BenchmarkSimulatorInstrumentationOn(b *testing.B) {
	spec := cluster.PaperCluster()
	flow := obsFlow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := Options{Seed: 1, Observe: obs.Options{
			Tracer:  obs.NewRecorder(),
			Metrics: obs.NewRegistry(),
		}}
		if _, err := New(spec, opt).Run(flow); err != nil {
			b.Fatal(err)
		}
	}
}
