package sched

import (
	"fmt"
	"sort"
	"strings"
)

// This file grows the flat DRF model into the hierarchical scheduler a
// production resource manager actually runs (YARN's Capacity Scheduler,
// KAI-Scheduler's queue controller): a tree of named queues, each with a
// quota (its deserved, guaranteed capacity), an over-quota weight (its
// share of whatever the guaranteed tiers leave idle), and an optional
// hard limit. Allocation proceeds in three phases:
//
//  1. In-quota: containers go one at a time to the lowest-dominant-share
//     job whose whole queue chain still has quota headroom — every
//     queue's guarantee is honored before anyone goes over.
//  2. Over-quota: remaining capacity goes to the lowest
//     weight-normalized dominant share, so idle capacity splits between
//     over-quota queues in proportion to their weights.
//  3. Reclaim: when held containers (running work) exhaust the pool and
//     an in-quota job is starved, over-quota holders are preempted —
//     victims ordered by longest predicted remaining time first (the
//     estimator-guided rule; without predictions, youngest submission
//     first). Intra-quota work is never evicted.
//
// Gang admission is enforced after every phase: a job that declares
// Gang=g either holds at least g containers or none, all-or-nothing.
//
// The whole thing is a pure deterministic function shared — like flat
// DRF before it — by the ground-truth simulator and the state-model
// estimator, so both sides of every experiment schedule identically.

// QueueLimit bounds one queue's resources. A zero component is
// unlimited; a zero value as a Quota means "no guarantee".
type QueueLimit struct {
	MemoryMB int
	VCores   int
	Slots    int
}

// zero reports whether no component is set.
func (q QueueLimit) zero() bool { return q.MemoryMB == 0 && q.VCores == 0 && q.Slots == 0 }

// QueueSpec declares one queue of the hierarchy.
type QueueSpec struct {
	// Name identifies the queue; requests reference it via Request.Queue.
	Name string
	// Parent names the enclosing queue ("" = directly under the root).
	Parent string
	// Quota is the queue's guaranteed capacity: demand inside the quota is
	// satisfied before any queue's over-quota demand, and running work
	// inside it is never preempted. Zero = no guarantee.
	Quota QueueLimit
	// Weight scales the queue's share of over-quota capacity relative to
	// its siblings (default 1).
	Weight float64
	// Limit hard-caps the queue subtree (zero components = unlimited).
	Limit QueueLimit
}

// queueNode is one resolved queue. Nodes carry no mutable state:
// usage accumulators live in the per-call hierState (indexed by id), so
// one Hierarchy may serve concurrent AllocateHierarchy calls — the
// estimator and simulator share hierarchies across evalpool workers.
type queueNode struct {
	spec   QueueSpec
	parent *queueNode
	// id indexes the per-call usage slices (root = 0; declared queues in
	// sorted-name order).
	id int
	// weight is the effective over-quota weight: the product of Weight
	// along the chain from the root.
	weight float64
}

// Hierarchy is a validated queue tree. Build one with NewHierarchy; nil
// means flat scheduling (every request in an unlimited root).
type Hierarchy struct {
	nodes map[string]*queueNode
	root  *queueNode
}

// NewHierarchy validates the queue specs into a tree: names must be
// unique and non-empty, parents must exist (declaration order is free),
// weights must be non-negative, and the parent links must be acyclic.
func NewHierarchy(specs []QueueSpec) (*Hierarchy, error) {
	root := &queueNode{weight: 1}
	h := &Hierarchy{nodes: map[string]*queueNode{"": root}, root: root}
	for _, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("sched: queue with empty name")
		}
		if _, dup := h.nodes[sp.Name]; dup {
			return nil, fmt.Errorf("sched: duplicate queue %q", sp.Name)
		}
		if sp.Weight < 0 {
			return nil, fmt.Errorf("sched: queue %q: negative weight", sp.Name)
		}
		h.nodes[sp.Name] = &queueNode{spec: sp}
	}
	for name, n := range h.nodes {
		if name == "" {
			continue
		}
		parent, ok := h.nodes[n.spec.Parent]
		if !ok {
			return nil, fmt.Errorf("sched: queue %q: unknown parent %q", name, n.spec.Parent)
		}
		n.parent = parent
	}
	// Cycle check + effective weights, walking each chain to the root.
	for name, n := range h.nodes {
		if name == "" {
			continue
		}
		seen := 0
		for p := n; p != nil; p = p.parent {
			if seen++; seen > len(h.nodes) {
				return nil, fmt.Errorf("sched: queue %q: parent cycle", name)
			}
		}
	}
	for _, n := range h.nodes {
		n.weight = effectiveWeight(n)
	}
	for i, name := range h.QueueNames() {
		h.nodes[name].id = i + 1
	}
	return h, nil
}

func effectiveWeight(n *queueNode) float64 {
	w := 1.0
	for p := n; p != nil; p = p.parent {
		pw := p.spec.Weight
		if pw == 0 {
			pw = 1
		}
		w *= pw
	}
	return w
}

// QueueNames lists the declared queues, sorted (the root is implicit).
func (h *Hierarchy) QueueNames() []string {
	names := make([]string, 0, len(h.nodes)-1)
	for name := range h.nodes {
		if name != "" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Specs returns the declared queue specs in sorted-name order — the
// canonical form cache keys and wire encodings hash (two hierarchies
// with equal Specs allocate identically).
func (h *Hierarchy) Specs() []QueueSpec {
	names := h.QueueNames()
	specs := make([]QueueSpec, len(names))
	for i, name := range names {
		specs[i] = h.nodes[name].spec
	}
	return specs
}

// String renders the tree compactly (diagnostics and test labels).
func (h *Hierarchy) String() string {
	var b strings.Builder
	for i, name := range h.QueueNames() {
		if i > 0 {
			b.WriteByte(' ')
		}
		n := h.nodes[name]
		fmt.Fprintf(&b, "%s(quota=%d,w=%g)", name, n.spec.Quota.Slots, n.spec.Weight)
	}
	return b.String()
}

// node resolves a request's queue; unknown names fall back to the root
// (an unguaranteed, unlimited tenant) so allocation is total over any
// input — the fuzz target's never-panic contract.
func (h *Hierarchy) node(name string) *queueNode {
	if n, ok := h.nodes[name]; ok {
		return n
	}
	return h.root
}

// HierResult is an AllocateHierarchy outcome.
type HierResult struct {
	// Grants maps JobID to newly granted containers (held excluded).
	Grants Allocation
	// Evict maps JobID to held containers the scheduler reclaims: the
	// caller (the simulator) must preempt that many of the job's running
	// tasks. Empty without held over-quota work.
	Evict Allocation
}

// hierState is the per-call working set of AllocateHierarchy.
type hierState struct {
	h     *Hierarchy
	pool  Pool
	reqs  []Request
	nodes []*queueNode // per request
	grant Allocation
	held  map[string]int // mutable copy: evictions shrink it
	evict Allocation
	idx   []int // request indices sorted by JobID (deterministic ties)
	// banned marks jobs zeroed by gang enforcement: once a gang fails,
	// the job sits out the rest of the call (termination guarantee).
	banned map[string]bool
	// qmem/qcpu/qslots accumulate per-queue subtree usage, indexed by
	// queueNode.id; mem/cpu/slots track the whole pool.
	qmem, qcpu, qslots []int
	mem, cpu, slots    int
}

// AllocateHierarchy grants containers under the queue hierarchy. A nil
// hierarchy degenerates to flat DRF over an unlimited root — the same
// grants DRF returns (gang enforcement aside). held lists containers
// jobs already hold; they count toward usage and may be reclaimed (see
// HierResult.Evict) when guaranteed queues are starved.
func AllocateHierarchy(pool Pool, h *Hierarchy, reqs []Request, held Allocation) HierResult {
	if h == nil {
		h = flatHierarchy
	}
	s := &hierState{
		h:     h,
		pool:  pool,
		reqs:  reqs,
		nodes: make([]*queueNode, len(reqs)),
		grant: make(Allocation, len(reqs)),
		held:  make(map[string]int, len(held)),
		evict: Allocation{},
		idx:   make([]int, len(reqs)),
	}
	s.qmem = make([]int, len(h.nodes))
	s.qcpu = make([]int, len(h.nodes))
	s.qslots = make([]int, len(h.nodes))
	for i, r := range reqs {
		s.nodes[i] = h.node(r.Queue)
		s.idx[i] = i
	}
	for i := 1; i < len(s.idx); i++ {
		for k := i; k > 0 && reqs[s.idx[k]].JobID < reqs[s.idx[k-1]].JobID; k-- {
			s.idx[k], s.idx[k-1] = s.idx[k-1], s.idx[k]
		}
	}
	for i, r := range reqs {
		hh := held[r.JobID]
		if hh == 0 {
			continue
		}
		s.held[r.JobID] = hh
		s.grant[r.JobID] = 0
		s.charge(s.nodes[i], r, hh)
	}

	// Fill in-quota guarantees, then over-quota by weight; when reclaim
	// preempts held over-quota containers it can free more capacity than
	// the starved job consumes (container shapes differ), so re-offer the
	// remainder through both fill phases and iterate. Terminates: every
	// extra round is paid for by at least one evicted held container.
	for {
		s.fill(true)
		s.fill(false)
		if !s.reclaim() {
			break
		}
	}
	s.enforceGangs()

	if len(s.evict) == 0 {
		s.evict = nil
	}
	return HierResult{Grants: s.grant, Evict: s.evict}
}

// flatHierarchy is the nil-hierarchy degenerate: one unlimited root.
var flatHierarchy = func() *Hierarchy {
	h, err := NewHierarchy(nil)
	if err != nil {
		panic(err)
	}
	return h
}()

// charge adds n containers of r's shape to the pool usage and every
// queue on the chain (negative n removes them).
func (s *hierState) charge(node *queueNode, r Request, n int) {
	s.mem += n * r.MemoryMB
	s.cpu += n * r.VCores
	s.slots += n
	for p := node; p != nil; p = p.parent {
		s.qmem[p.id] += n * r.MemoryMB
		s.qcpu[p.id] += n * r.VCores
		s.qslots[p.id] += n
	}
}

// have is the job's current container count (held + granted − evicted).
func (s *hierState) have(r Request) int {
	return s.grant[r.JobID] + s.held[r.JobID]
}

// wants reports whether the job still demands a container: pending
// unmet, cap unreached, and not banned by a failed gang.
func (s *hierState) wants(i int) bool {
	r := s.reqs[i]
	if s.banned[r.JobID] {
		return false
	}
	if s.grant[r.JobID] >= r.Pending {
		return false
	}
	if r.Cap > 0 && s.have(r) >= r.Cap {
		return false
	}
	return true
}

// poolFits reports whether one more container of r's shape fits the
// cluster pool.
func (s *hierState) poolFits(r Request) bool {
	if s.pool.MemoryMB > 0 && s.mem+r.MemoryMB > s.pool.MemoryMB {
		return false
	}
	if s.pool.VCores > 0 && s.cpu+r.VCores > s.pool.VCores {
		return false
	}
	if s.pool.Slots > 0 && s.slots+1 > s.pool.Slots {
		return false
	}
	return true
}

// limitFits reports whether one more container of r's shape respects
// every hard limit on the chain.
func (s *hierState) limitFits(node *queueNode, r Request) bool {
	for p := node; p != nil; p = p.parent {
		l := p.spec.Limit
		if l.MemoryMB > 0 && s.qmem[p.id]+r.MemoryMB > l.MemoryMB {
			return false
		}
		if l.VCores > 0 && s.qcpu[p.id]+r.VCores > l.VCores {
			return false
		}
		if l.Slots > 0 && s.qslots[p.id]+1 > l.Slots {
			return false
		}
	}
	return true
}

// quotaHeadroom reports whether one more container of r's shape stays
// inside every quota on the chain. Queues without a quota contribute no
// headroom (their demand is over-quota by definition), and root-parked
// requests have none either — flat work holds no guarantee, it competes
// in the weighted phase (where weight-1 arbitration is exactly DRF, so
// a nil hierarchy still reproduces flat DRF grant for grant).
func (s *hierState) quotaHeadroom(node *queueNode, r Request) bool {
	if node.parent == nil {
		return false
	}
	for p := node; p != nil && p.parent != nil; p = p.parent {
		q := p.spec.Quota
		if q.zero() {
			return false
		}
		if q.MemoryMB > 0 && s.qmem[p.id]+r.MemoryMB > q.MemoryMB {
			return false
		}
		if q.VCores > 0 && s.qcpu[p.id]+r.VCores > q.VCores {
			return false
		}
		if q.Slots > 0 && s.qslots[p.id]+1 > q.Slots {
			return false
		}
	}
	return true
}

// dominantShare is the job's maximum share across memory and vcores
// at count n — flat DRF's priority key.
func dominantShare(pool Pool, r Request, n int) float64 {
	memShare, cpuShare := 0.0, 0.0
	if pool.MemoryMB > 0 {
		memShare = float64(n*r.MemoryMB) / float64(pool.MemoryMB)
	}
	if pool.VCores > 0 {
		cpuShare = float64(n*r.VCores) / float64(pool.VCores)
	}
	if memShare > cpuShare {
		return memShare
	}
	return cpuShare
}

// fill grants containers one at a time to the best eligible job until
// nothing fits. inQuota restricts candidates to chains with quota
// headroom and ranks by plain dominant share; the over-quota phase
// admits everyone within limits and ranks by weight-normalized share.
func (s *hierState) fill(inQuota bool) {
	for {
		best, bestKey := -1, 0.0
		for _, i := range s.idx {
			r := s.reqs[i]
			if !s.wants(i) || !s.poolFits(r) || !s.limitFits(s.nodes[i], r) {
				continue
			}
			if inQuota && !s.quotaHeadroom(s.nodes[i], r) {
				continue
			}
			key := dominantShare(s.pool, r, s.have(r))
			if !inQuota {
				key /= s.nodes[i].weight
			}
			if best == -1 || key < bestKey {
				best, bestKey = i, key
			}
		}
		if best == -1 {
			return
		}
		r := s.reqs[best]
		s.grant[r.JobID]++
		s.charge(s.nodes[best], r, 1)
	}
}

// reclaim preempts held over-quota containers to unblock starved
// in-quota demand: while some job with quota headroom wants a container
// that only fails for pool capacity, evict one preemptible held
// container and grant in its place. Victims are jobs whose chain holds
// no quota headroom for the container being returned — i.e. over-quota
// (or unguaranteed) work — ordered by longest predicted remaining time,
// then youngest submission, then JobID. Reports whether anything was
// evicted (the caller re-offers leftover freed capacity).
func (s *hierState) reclaim() bool {
	evicted := false
	for {
		starved := -1
		for _, i := range s.idx {
			r := s.reqs[i]
			if s.wants(i) && hasGuarantee(s.nodes[i]) && s.limitFits(s.nodes[i], r) &&
				s.quotaHeadroom(s.nodes[i], r) && !s.poolFits(r) {
				starved = i
				break
			}
		}
		if starved == -1 {
			return evicted
		}
		victim := s.pickVictim(starved)
		if victim == -1 {
			return evicted
		}
		vr := s.reqs[victim]
		s.held[vr.JobID]--
		s.evict[vr.JobID]++
		evicted = true
		s.charge(s.nodes[victim], vr, -1)
		if s.poolFits(s.reqs[starved]) {
			r := s.reqs[starved]
			s.grant[r.JobID]++
			s.charge(s.nodes[starved], r, 1)
		}
	}
}

// pickVictim selects the held container to preempt for the starved
// request, or -1 when every holder is inside its guarantee.
func (s *hierState) pickVictim(starved int) int {
	best := -1
	for _, i := range s.idx {
		r := s.reqs[i]
		if i == starved || s.held[r.JobID] <= 0 {
			continue
		}
		// Releasing one container must not cut into guaranteed work: the
		// holder is preemptible only if, after hypothetically releasing
		// the container, its chain has no quota headroom to take it back
		// — i.e. the container sat above the guarantee. Requests parked
		// directly under the root (flat scheduling) always have vacuous
		// headroom and are therefore never preempted, which keeps flat
		// DRF's held containers untouchable, as before.
		s.charge(s.nodes[i], r, -1)
		over := s.nodes[i] != s.h.root && !s.quotaHeadroom(s.nodes[i], r)
		s.charge(s.nodes[i], r, 1)
		if !over {
			continue
		}
		if best == -1 || victimLess(s.reqs[best], r) {
			best = i
		}
	}
	return best
}

// victimLess reports whether b preempts before a: longer predicted
// remaining time first (the estimator-guided reclaim order — evicting
// the job that would run longest anyway delays the fleet least),
// youngest submission on ties, JobID as the final deterministic key.
func victimLess(a, b Request) bool {
	if a.Predicted != b.Predicted {
		return b.Predicted > a.Predicted
	}
	if a.Order != b.Order {
		return b.Order > a.Order
	}
	return b.JobID < a.JobID
}

// enforceGangs zeroes any job granted fewer total containers than its
// gang minimum, bans it for the rest of the call, and re-offers the
// freed capacity — iterating to a fixpoint (a zeroed gang can unblock
// another gang). The ban guarantees termination: each round either
// converges or permanently retires at least one job.
func (s *hierState) enforceGangs() {
	for {
		changed := false
		for _, i := range s.idx {
			r := s.reqs[i]
			if r.Gang <= 0 || s.grant[r.JobID] == 0 || s.have(r) >= r.Gang {
				continue
			}
			s.charge(s.nodes[i], r, -s.grant[r.JobID])
			s.grant[r.JobID] = 0
			if s.banned == nil {
				s.banned = make(map[string]bool)
			}
			s.banned[r.JobID] = true
			changed = true
		}
		if !changed {
			return
		}
		s.fill(true)
		s.fill(false)
	}
}

// hasGuarantee reports whether some queue on the chain (the root aside)
// declares a quota — only guaranteed demand may trigger reclaim.
func hasGuarantee(node *queueNode) bool {
	for p := node; p != nil && p.parent != nil; p = p.parent {
		if !p.spec.Quota.zero() {
			return true
		}
	}
	return false
}
