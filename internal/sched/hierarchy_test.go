package sched

import (
	"math"
	"strings"
	"testing"
)

func slotPool(n int) Pool { return Pool{MemoryMB: n * 1024, VCores: n, Slots: n} }

func slotReq(id, queue string, pending int) Request {
	return Request{JobID: id, MemoryMB: 1024, VCores: 1, Pending: pending, Queue: queue}
}

func mustHierarchy(t *testing.T, specs []QueueSpec) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(specs)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	cases := []struct {
		name  string
		specs []QueueSpec
		want  string
	}{
		{"empty name", []QueueSpec{{Name: ""}}, "empty name"},
		{"duplicate", []QueueSpec{{Name: "a"}, {Name: "a"}}, "duplicate"},
		{"unknown parent", []QueueSpec{{Name: "a", Parent: "ghost"}}, "unknown parent"},
		{"negative weight", []QueueSpec{{Name: "a", Weight: -1}}, "negative weight"},
		{"cycle", []QueueSpec{{Name: "a", Parent: "b"}, {Name: "b", Parent: "a"}}, "cycle"},
		{"self cycle", []QueueSpec{{Name: "a", Parent: "a"}}, "cycle"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewHierarchy(c.specs)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("NewHierarchy = %v, want error containing %q", err, c.want)
			}
		})
	}
	h := mustHierarchy(t, []QueueSpec{{Name: "b"}, {Name: "a", Parent: "b"}})
	if got := h.QueueNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("QueueNames = %v", got)
	}
	if s := h.String(); !strings.Contains(s, "a(") || !strings.Contains(s, "b(") {
		t.Fatalf("String = %q", s)
	}
}

func TestHierarchyQuotaGuarantee(t *testing.T) {
	// prod guarantees 6 of 10 slots; batch floods first by JobID order.
	h := mustHierarchy(t, []QueueSpec{
		{Name: "prod", Quota: QueueLimit{Slots: 6}},
		{Name: "batch"},
	})
	reqs := []Request{
		slotReq("a-batch", "batch", 100),
		slotReq("z-prod", "prod", 100),
	}
	res := AllocateHierarchy(slotPool(10), h, reqs, nil)
	if res.Grants["z-prod"] != 6 || res.Grants["a-batch"] != 4 {
		t.Fatalf("grants = %v, want prod=6 batch=4", res.Grants)
	}
	if res.Evict != nil {
		t.Fatalf("unexpected evictions: %v", res.Evict)
	}
}

func TestHierarchyOverQuotaWeights(t *testing.T) {
	// No quotas: 12 slots split between weight-4 and weight-1 tenants in
	// rough weight proportion (weighted dominant-share water-filling).
	h := mustHierarchy(t, []QueueSpec{
		{Name: "gold", Weight: 4},
		{Name: "bronze", Weight: 1},
	})
	reqs := []Request{
		slotReq("g", "gold", 100),
		slotReq("b", "bronze", 100),
	}
	res := AllocateHierarchy(slotPool(10), h, reqs, nil)
	if res.Grants["g"] != 8 || res.Grants["b"] != 2 {
		t.Fatalf("grants = %v, want g=8 b=2 (4:1 weights)", res.Grants)
	}
}

func TestHierarchyHardLimit(t *testing.T) {
	h := mustHierarchy(t, []QueueSpec{
		{Name: "capped", Limit: QueueLimit{Slots: 3}},
	})
	reqs := []Request{slotReq("j", "capped", 100)}
	res := AllocateHierarchy(slotPool(10), h, reqs, nil)
	if res.Grants["j"] != 3 {
		t.Fatalf("grants = %v, want j=3 (queue limit)", res.Grants)
	}
	// Parent limit binds the child subtree too.
	h2 := mustHierarchy(t, []QueueSpec{
		{Name: "org", Limit: QueueLimit{Slots: 4}},
		{Name: "org.team", Parent: "org"},
	})
	res2 := AllocateHierarchy(slotPool(10), h2, []Request{slotReq("j", "org.team", 100)}, nil)
	if res2.Grants["j"] != 4 {
		t.Fatalf("grants = %v, want j=4 (parent limit)", res2.Grants)
	}
}

func TestHierarchyReclaimPreemptsOverQuota(t *testing.T) {
	// batch holds the whole pool; prod's quota forces reclaim.
	h := mustHierarchy(t, []QueueSpec{
		{Name: "prod", Quota: QueueLimit{Slots: 4}},
		{Name: "batch"},
	})
	reqs := []Request{
		slotReq("batch-1", "batch", 100),
		slotReq("prod-1", "prod", 100),
	}
	held := Allocation{"batch-1": 10}
	res := AllocateHierarchy(slotPool(10), h, reqs, held)
	if res.Evict["batch-1"] != 4 {
		t.Fatalf("evict = %v, want batch-1=4", res.Evict)
	}
	if res.Grants["prod-1"] != 4 {
		t.Fatalf("grants = %v, want prod-1=4", res.Grants)
	}
}

func TestHierarchyReclaimVictimOrder(t *testing.T) {
	// Two over-quota holders: the longest-predicted one is evicted first.
	h := mustHierarchy(t, []QueueSpec{
		{Name: "prod", Quota: QueueLimit{Slots: 2}},
		{Name: "batch"},
	})
	reqs := []Request{
		{JobID: "long", MemoryMB: 1024, VCores: 1, Pending: 100, Queue: "batch", Predicted: 900},
		{JobID: "short", MemoryMB: 1024, VCores: 1, Pending: 100, Queue: "batch", Predicted: 30},
		slotReq("prod-1", "prod", 2),
	}
	held := Allocation{"long": 5, "short": 5}
	res := AllocateHierarchy(slotPool(10), h, reqs, held)
	if res.Evict["long"] != 2 || res.Evict["short"] != 0 {
		t.Fatalf("evict = %v, want long=2 short=0 (longest predicted first)", res.Evict)
	}
	if res.Grants["prod-1"] != 2 {
		t.Fatalf("grants = %v", res.Grants)
	}
}

func TestHierarchyReclaimNeverCutsQuota(t *testing.T) {
	// Both queues guaranteed; holder is inside its own quota → no victim.
	h := mustHierarchy(t, []QueueSpec{
		{Name: "a", Quota: QueueLimit{Slots: 5}},
		{Name: "b", Quota: QueueLimit{Slots: 5}},
	})
	reqs := []Request{
		slotReq("a-1", "a", 100),
		slotReq("b-1", "b", 100),
	}
	held := Allocation{"a-1": 5}
	res := AllocateHierarchy(slotPool(5), h, reqs, held)
	if len(res.Evict) != 0 {
		t.Fatalf("evicted intra-quota work: %v", res.Evict)
	}
}

func TestHierarchyFlatHeldNeverEvicted(t *testing.T) {
	// A guaranteed queue is starved, but the holder sits at the root
	// (flat work): never preempted.
	h := mustHierarchy(t, []QueueSpec{
		{Name: "prod", Quota: QueueLimit{Slots: 4}},
	})
	reqs := []Request{
		slotReq("flat", "", 100),
		slotReq("prod-1", "prod", 4),
	}
	held := Allocation{"flat": 10}
	res := AllocateHierarchy(slotPool(10), h, reqs, held)
	if len(res.Evict) != 0 {
		t.Fatalf("evicted root-held work: %v", res.Evict)
	}
}

func TestHierarchyGangAllOrNothing(t *testing.T) {
	h := mustHierarchy(t, []QueueSpec{{Name: "q"}})
	reqs := []Request{
		{JobID: "gang", MemoryMB: 1024, VCores: 1, Pending: 8, Gang: 8, Queue: "q"},
		{JobID: "solo", MemoryMB: 1024, VCores: 1, Pending: 100, Queue: "q"},
	}
	// 6 slots: the gang of 8 cannot form; solo absorbs everything.
	res := AllocateHierarchy(slotPool(6), h, reqs, nil)
	if res.Grants["gang"] != 0 {
		t.Fatalf("partial gang granted: %v", res.Grants)
	}
	if res.Grants["solo"] != 6 {
		t.Fatalf("freed gang capacity not re-offered: %v", res.Grants)
	}
	// 16 slots: the gang forms.
	res = AllocateHierarchy(slotPool(16), h, reqs, nil)
	if res.Grants["gang"] != 8 {
		t.Fatalf("gang should form at 16 slots: %v", res.Grants)
	}
}

func TestHierarchyUnknownQueueFallsToRoot(t *testing.T) {
	h := mustHierarchy(t, []QueueSpec{{Name: "known"}})
	res := AllocateHierarchy(slotPool(4), h, []Request{slotReq("j", "ghost", 10)}, nil)
	if res.Grants["j"] != 4 {
		t.Fatalf("grants = %v, want unknown queue treated as root", res.Grants)
	}
}

func TestHierarchyNilMatchesDRF(t *testing.T) {
	pool := Pool{MemoryMB: 64 * 1024, VCores: 32, Slots: 32}
	reqs := []Request{
		{JobID: "a", MemoryMB: 4096, VCores: 1, Pending: 20},
		{JobID: "b", MemoryMB: 1024, VCores: 2, Pending: 20},
		{JobID: "c", MemoryMB: 2048, VCores: 1, Pending: 5, Cap: 3},
	}
	held := Allocation{"b": 2}
	want := DRF(pool, reqs, held)
	res := AllocateHierarchy(pool, nil, reqs, held)
	if res.Evict != nil {
		t.Fatalf("flat mode evicted: %v", res.Evict)
	}
	for id, g := range want {
		if res.Grants[id] != g {
			t.Fatalf("flat hierarchy diverged from DRF: %v vs %v", res.Grants, want)
		}
	}
}

func TestStreamRejectionReasons(t *testing.T) {
	pool := slotPool(4)
	jobs := []StreamJob{
		{ID: "huge", Submit: 0, Work: 100, MaxParallelism: 2, MemoryMB: 8 * 1024, VCores: 1},
		{ID: "late", Submit: 0, Work: 400, MaxParallelism: 4, MemoryMB: 1024, VCores: 1,
			Predicted: 100, Deadline: 50},
		{ID: "ok", Submit: 0, Work: 40, MaxParallelism: 4, MemoryMB: 1024, VCores: 1,
			Predicted: 10, Deadline: 1e6},
	}
	res := RunStream(pool, jobs, StreamOptions{Policy: PolicySPJF, DeadlineAdmission: true})
	if res.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2 (%+v)", res.Rejected, res.Rejections)
	}
	byID := map[string]StreamJobResult{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	if byID["huge"].Reason != ReasonNeverFits {
		t.Fatalf("huge reason = %q", byID["huge"].Reason)
	}
	if byID["late"].Reason != ReasonSLOInfeasible {
		t.Fatalf("late reason = %q", byID["late"].Reason)
	}
	for _, rej := range res.Rejections {
		if rej.Code != 503 {
			t.Fatalf("rejection code = %d, want 503", rej.Code)
		}
	}
	if byID["ok"].Rejected || math.IsInf(byID["ok"].Finish, 1) {
		t.Fatalf("ok job should run: %+v", byID["ok"])
	}
	if res.SLOMissRate != 0 {
		t.Fatalf("SLO miss rate = %v, want 0 (infeasible job rejected, not missed)", res.SLOMissRate)
	}
}
