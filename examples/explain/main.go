// Explain walks the estimate-explainability API: one run of the
// state-based estimator is unfolded into an explained estimate —
//
//  1. the critical path through the predicted plan, a chain of intervals
//     whose durations sum exactly to the makespan, each tagged with the
//     dominant resource binding it;
//  2. bottleneck attribution: how much of the makespan each resource
//     class and each job is responsible for;
//  3. the θ-sensitivity table: which cluster throughput parameter
//     (CPU, disk read/write, network) buys the most makespan when
//     improved by 10% — the "what should we upgrade first" answer.
//
// Run it with:
//
//	go run ./examples/explain
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"boedag"
)

func main() {
	spec := boedag.PaperCluster()

	// The paper's parallel micro DAG: 100 GB Word Count and 100 GB
	// TeraSort submitted together, competing for the same cluster.
	flow := boedag.ParallelFlows("WC-TS",
		boedag.Single(boedag.WordCount(100*boedag.GB)),
		boedag.Single(boedag.TeraSort(100*boedag.GB)))

	timer := &boedag.BOETimer{Model: boedag.NewBOE(spec), TaskStartOverhead: time.Second}
	est := boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{})

	// --- 1. Explain the estimate --------------------------------------
	// Explain runs the estimator once, then re-runs it four more times
	// with each θ_X improved by ε (the sensitivity column). A PlanCache
	// makes repeated explanations of the same scenario free.
	cache := boedag.NewPlanCache()
	e, err := boedag.Explain(context.Background(), est, flow,
		boedag.ExplainOptions{Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	if err := e.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// --- 2. Read the structured form ----------------------------------
	// The same data is available as plain structs (and as deterministic
	// JSON via WriteJSON — the wire contract of POST /v1/explain).
	var total time.Duration
	for _, iv := range e.CriticalPath {
		total += iv.Duration()
	}
	fmt.Printf("\ncritical path: %d intervals, exact sum %v == makespan %v\n",
		len(e.CriticalPath), total, e.Makespan)
	for _, s := range e.Sensitivity {
		if s.Best {
			fmt.Printf("upgrade %s first: +10%% throughput saves %.1fs of makespan\n",
				s.Parameter, s.DeltaS)
		}
	}

	// --- 3. Annotate a trace with the explanation ---------------------
	// The explanation projects onto the observability layer: critical
	// stages get args.critical=true in the Chrome trace, so the critical
	// path lights up in chrome://tracing / Perfetto next to the recorded
	// spans. Recorded args always win over annotations.
	rec := boedag.NewTraceRecorder()
	res, err := boedag.NewSimulator(spec, boedag.WithTracer(boedag.SimOptions{Seed: 1}, rec)).Run(flow)
	if err != nil {
		log.Fatal(err)
	}
	tf, err := os.CreateTemp("", "boedag-explain-*.trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := boedag.ExportChromeTraceAnnotated(tf, rec.Events(), e.TraceAnnotations()); err != nil {
		log.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted %.1fs, simulated %.1fs — accuracy %.1f%%\n",
		e.MakespanS, res.Makespan.Seconds(),
		100*boedag.Accuracy(e.Makespan, res.Makespan))
	fmt.Printf("annotated Chrome trace written to %s\n", tf.Name())
}
