package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// otlpTestEvents is a small run slice covering every span-shaped type
// plus instant events the exporter must skip.
func otlpTestEvents() []Event {
	return []Event{
		{Type: EvJobSubmit, Job: "wc", Time: 0},
		{Type: EvStageStart, Job: "wc", Stage: "map", Time: 2, Value: 4},
		{Type: EvTaskStart, Job: "wc", Stage: "map", Task: 0, Time: 2},
		{Type: EvSubStageFinish, Job: "wc", Stage: "map", Sub: "read+map", Task: 0, Time: 3, Dur: 5, Resource: "disk_read"},
		{Type: EvTaskFinish, Job: "wc", Stage: "map", Task: 0, Time: 2, Dur: 7, Resource: "cpu", Value: -1},
		{Type: EvTaskFinish, Job: "wc", Stage: "map", Task: 1, Time: 2, Dur: 8, Resource: "cpu", Value: -1},
		{Type: EvStageFinish, Job: "wc", Stage: "map", Time: 2, Dur: 8, Resource: "cpu"},
		{Type: EvStateOpen, Seq: 1, Time: 2, Detail: "wc/map"},
		{Type: EvStateClose, Seq: 1, Time: 2, Dur: 8, Detail: "wc/map", Resource: "cpu", Value: 0.87},
	}
}

// otlpShape mirrors the OTLP JSON structure a consumer would decode.
type otlpShape struct {
	ResourceSpans []struct {
		Resource struct {
			Attributes []struct {
				Key   string `json:"key"`
				Value struct {
					StringValue string `json:"stringValue"`
				} `json:"value"`
			} `json:"attributes"`
		} `json:"resource"`
		ScopeSpans []struct {
			Scope struct {
				Name string `json:"name"`
			} `json:"scope"`
			Spans []struct {
				TraceID           string `json:"traceId"`
				SpanID            string `json:"spanId"`
				ParentSpanID      string `json:"parentSpanId"`
				Name              string `json:"name"`
				StartTimeUnixNano string `json:"startTimeUnixNano"`
				EndTimeUnixNano   string `json:"endTimeUnixNano"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
	ResourceMetrics []struct {
		ScopeMetrics []struct {
			Metrics []struct {
				Name string `json:"name"`
				Sum  *struct {
					DataPoints []struct {
						AsInt string `json:"asInt"`
					} `json:"dataPoints"`
					IsMonotonic bool `json:"isMonotonic"`
				} `json:"sum"`
				Gauge *struct {
					DataPoints []struct {
						AsDouble float64 `json:"asDouble"`
					} `json:"dataPoints"`
				} `json:"gauge"`
				Histogram *struct {
					DataPoints []struct {
						Count          string    `json:"count"`
						BucketCounts   []string  `json:"bucketCounts"`
						ExplicitBounds []float64 `json:"explicitBounds"`
					} `json:"dataPoints"`
				} `json:"histogram"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
}

func TestWriteOTLPTracesShape(t *testing.T) {
	events := otlpTestEvents()
	var buf bytes.Buffer
	n, err := WriteOTLPTraces(&buf, events, OTLPOptions{Start: time.Unix(1700000000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if want := SpanCount(events); n != want {
		t.Errorf("WriteOTLPTraces returned %d spans, SpanCount says %d", n, want)
	}

	var shape otlpShape
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatalf("export does not decode: %v", err)
	}
	if len(shape.ResourceSpans) != 1 || len(shape.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected envelope: %+v", shape.ResourceSpans)
	}
	rs := shape.ResourceSpans[0]
	foundService := false
	for _, a := range rs.Resource.Attributes {
		if a.Key == "service.name" && a.Value.StringValue == "boedag" {
			foundService = true
		}
	}
	if !foundService {
		t.Error("resource missing service.name=boedag")
	}
	spans := rs.ScopeSpans[0].Spans
	if len(spans) != SpanCount(events) {
		t.Fatalf("decoded %d spans, want %d", len(spans), SpanCount(events))
	}
	byName := map[string]int{}
	for _, sp := range spans {
		byName[sp.Name]++
		if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
			t.Errorf("span %q has malformed ids trace=%q span=%q", sp.Name, sp.TraceID, sp.SpanID)
		}
		if sp.StartTimeUnixNano == "" || sp.EndTimeUnixNano == "" {
			t.Errorf("span %q missing timestamps", sp.Name)
		}
	}
	for _, want := range []string{"wc/map[0]", "wc/map[1]", "read+map", "wc/map", "state 1"} {
		if byName[want] == 0 {
			t.Errorf("no span named %q (have %v)", want, byName)
		}
	}

	// Parent links: task → stage, sub-stage → task.
	spanID := map[string]string{}
	for _, sp := range spans {
		spanID[sp.Name] = sp.SpanID
	}
	for _, sp := range spans {
		switch sp.Name {
		case "wc/map[0]", "wc/map[1]":
			if sp.ParentSpanID != spanID["wc/map"] {
				t.Errorf("task span %q parent = %q, want stage span %q", sp.Name, sp.ParentSpanID, spanID["wc/map"])
			}
		case "read+map":
			if sp.ParentSpanID != spanID["wc/map[0]"] {
				t.Errorf("sub-stage parent = %q, want task span %q", sp.ParentSpanID, spanID["wc/map[0]"])
			}
		case "wc/map", "state 1":
			if sp.ParentSpanID != "" {
				t.Errorf("%q should be a root span, parent = %q", sp.Name, sp.ParentSpanID)
			}
		}
	}
}

func TestWriteOTLPTracesDeterministic(t *testing.T) {
	events := otlpTestEvents()
	opt := OTLPOptions{Start: time.Unix(1700000000, 0)}
	var a, b bytes.Buffer
	if _, err := WriteOTLPTraces(&a, events, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteOTLPTraces(&b, events, opt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same events differ")
	}
}

func TestWriteOTLPMetricsShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_tasks_finished").Add(42)
	reg.Gauge("sim_mean_utilization_cpu").Set(0.75)
	reg.Histogram("sim_task_duration_s").Observe(12.5)
	reg.Histogram("sim_task_duration_s").Observe(14.0)

	var buf bytes.Buffer
	if err := WriteOTLPMetrics(&buf, reg, OTLPOptions{Start: time.Unix(1700000000, 0)}); err != nil {
		t.Fatal(err)
	}
	var shape otlpShape
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatalf("export does not decode: %v", err)
	}
	if len(shape.ResourceMetrics) != 1 || len(shape.ResourceMetrics[0].ScopeMetrics) != 1 {
		t.Fatalf("unexpected envelope: %+v", shape.ResourceMetrics)
	}
	byName := map[string]int{}
	for _, m := range shape.ResourceMetrics[0].ScopeMetrics[0].Metrics {
		byName[m.Name]++
		switch m.Name {
		case "sim_tasks_finished":
			if m.Sum == nil || !m.Sum.IsMonotonic || m.Sum.DataPoints[0].AsInt != "42" {
				t.Errorf("counter mapped wrong: %+v", m)
			}
		case "sim_mean_utilization_cpu":
			if m.Gauge == nil || m.Gauge.DataPoints[0].AsDouble != 0.75 {
				t.Errorf("gauge mapped wrong: %+v", m)
			}
		case "sim_task_duration_s":
			if m.Histogram == nil {
				t.Fatalf("histogram missing: %+v", m)
			}
			dp := m.Histogram.DataPoints[0]
			if dp.Count != "2" {
				t.Errorf("histogram count = %s, want 2", dp.Count)
			}
			if len(dp.BucketCounts) != len(dp.ExplicitBounds)+1 {
				t.Errorf("bucketCounts/explicitBounds mismatch: %d vs %d",
					len(dp.BucketCounts), len(dp.ExplicitBounds))
			}
		}
	}
	if len(byName) != 3 {
		t.Errorf("metrics = %v, want 3 entries", byName)
	}
}

func TestWriteOTLPUnion(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	var buf bytes.Buffer
	if err := WriteOTLP(&buf, otlpTestEvents(), reg, OTLPOptions{Start: time.Unix(1700000000, 0)}); err != nil {
		t.Fatal(err)
	}
	var shape otlpShape
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatal(err)
	}
	if len(shape.ResourceSpans) == 0 || len(shape.ResourceMetrics) == 0 {
		t.Error("union export missing one half")
	}
}

func TestPostOTLP(t *testing.T) {
	var mu struct {
		paths []string
		spans int
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type %q", ct)
		}
		var shape otlpShape
		if err := json.NewDecoder(r.Body).Decode(&shape); err != nil {
			t.Errorf("body does not decode: %v", err)
		}
		mu.paths = append(mu.paths, r.URL.Path)
		for _, rs := range shape.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				mu.spans += len(ss.Spans)
			}
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	reg := NewRegistry()
	reg.Counter("c").Inc()
	events := otlpTestEvents()
	if err := PostOTLP(srv.URL, events, reg, OTLPOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(mu.paths, ",") != "/v1/traces,/v1/metrics" {
		t.Errorf("collector saw paths %v", mu.paths)
	}
	if mu.spans != SpanCount(events) {
		t.Errorf("collector received %d spans, want %d", mu.spans, SpanCount(events))
	}
}

func TestPostOTLPCollectorError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad payload", http.StatusBadRequest)
	}))
	defer srv.Close()
	err := PostOTLP(srv.URL, otlpTestEvents(), nil, OTLPOptions{})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("collector 400 not surfaced: %v", err)
	}
}

// TestWriteOTLPTracesAnnotated pins the OTLP side of the annotation
// contract: stage and state spans gain boedag.<key> attributes (every
// Go value type mapping to its OTLP form), the run annotations land as
// resource attributes, and a nil-annotation export stays byte-identical
// to the plain one.
func TestWriteOTLPTracesAnnotated(t *testing.T) {
	events := otlpTestEvents()
	ann := &TraceAnnotations{
		Stage: map[string]map[string]any{
			"wc/map": {
				"critical":          true,
				"critical_s":        7.5,
				"critical_resource": "cpu",
				"pieces":            int(2),
				"waves":             int64(3),
				"extra":             []int{1, 2}, // falls back to %v string
			},
		},
		State: map[int]map[string]any{
			1: {"explain_dominant": "slots"},
		},
		Run: map[string]any{
			"bottleneck":     "network",
			"best_parameter": "network",
		},
	}
	opt := OTLPOptions{Start: time.Unix(1700000000, 0), Annotations: ann}
	var buf bytes.Buffer
	if _, err := WriteOTLPTraces(&buf, events, opt); err != nil {
		t.Fatal(err)
	}

	type attr struct {
		Key   string `json:"key"`
		Value struct {
			StringValue *string  `json:"stringValue"`
			BoolValue   *bool    `json:"boolValue"`
			IntValue    *string  `json:"intValue"`
			DoubleValue *float64 `json:"doubleValue"`
		} `json:"value"`
	}
	var shape struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []attr `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					Name       string `json:"name"`
					Attributes []attr `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatalf("annotated export does not decode: %v", err)
	}
	index := func(attrs []attr) map[string]attr {
		m := make(map[string]attr, len(attrs))
		for _, a := range attrs {
			m[a.Key] = a
		}
		return m
	}

	res := index(shape.ResourceSpans[0].Resource.Attributes)
	if a, ok := res["boedag.bottleneck"]; !ok || a.Value.StringValue == nil || *a.Value.StringValue != "network" {
		t.Errorf("resource missing run annotation boedag.bottleneck: %+v", res)
	}
	var stage, state map[string]attr
	for _, sp := range shape.ResourceSpans[0].ScopeSpans[0].Spans {
		switch sp.Name {
		case "wc/map":
			stage = index(sp.Attributes)
		case "state 1":
			state = index(sp.Attributes)
		}
	}
	if a := stage["boedag.critical"]; a.Value.BoolValue == nil || !*a.Value.BoolValue {
		t.Errorf("stage span missing boolean boedag.critical: %+v", stage)
	}
	if a := stage["boedag.critical_s"]; a.Value.DoubleValue == nil || *a.Value.DoubleValue != 7.5 {
		t.Errorf("stage span missing double boedag.critical_s: %+v", stage)
	}
	if a := stage["boedag.pieces"]; a.Value.IntValue == nil || *a.Value.IntValue != "2" {
		t.Errorf("int annotation not an OTLP int: %+v", stage)
	}
	if a := stage["boedag.waves"]; a.Value.IntValue == nil || *a.Value.IntValue != "3" {
		t.Errorf("int64 annotation not an OTLP int: %+v", stage)
	}
	if a := stage["boedag.extra"]; a.Value.StringValue == nil || *a.Value.StringValue != "[1 2]" {
		t.Errorf("fallback annotation not stringified: %+v", stage)
	}
	// Recorded attributes survive next to the annotations.
	if a := stage["boedag.bottleneck"]; a.Value.StringValue == nil || *a.Value.StringValue != "cpu" {
		t.Errorf("recorded stage bottleneck lost: %+v", stage)
	}
	if a := state["boedag.explain_dominant"]; a.Value.StringValue == nil || *a.Value.StringValue != "slots" {
		t.Errorf("state span missing annotation: %+v", state)
	}

	// Nil annotations must not change a single byte.
	var plain, annNil bytes.Buffer
	if _, err := WriteOTLPTraces(&plain, events, OTLPOptions{Start: time.Unix(1700000000, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteOTLPTraces(&annNil, events, OTLPOptions{Start: time.Unix(1700000000, 0), Annotations: nil}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), annNil.Bytes()) {
		t.Error("nil-annotation OTLP export diverges from the plain one")
	}
}
