// Command boedagbench is the service load harness: it drives a
// prediction server — a live boedagd or an in-process instance — with a
// deterministic seeded request mix, measures throughput and exact
// latency percentiles, and writes the result as a versioned BENCH_*.json
// perf ledger (internal/perfledger) so the repository's performance
// trajectory is recorded data.
//
// The request mix is a pure function of (seed, workflows, sizes): two
// runs with the same seed issue the identical request sequence, so a
// committed ledger is reproducible — only the wall-clock numbers vary,
// and hack/verify.sh holds them inside a tolerance band. Any registry
// workflow name works in -mix, including the synthetic scale family
// (synth-1k, synth-10k, synth-lL-wW-fF-sS); the estimator-side scale
// benchmarks (BenchmarkEstimate10kJobs, BenchmarkIncrementalReestimate)
// enter the same ledger through -gobench.
//
// Usage:
//
//	boedagbench -inprocess -duration 5s              # no daemon needed
//	boedagbench -addr http://localhost:8080 -conns 8 -duration 30s
//	boedagbench -inprocess -rate 200 -duration 10s   # open loop
//	boedagbench -inprocess -out BENCH_today.json -label pr6
//	boedagbench -inprocess -fleet 3 -duration 5s     # 3-node sharded fleet
//	go test -bench . -run '^$' . | boedagbench -gobench - -out BENCH_micro.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"boedag/internal/fleet"
	"boedag/internal/loadgen"
	"boedag/internal/perfledger"
	"boedag/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target server base URL (e.g. http://localhost:8080)")
		inprocess = flag.Bool("inprocess", false, "serve in-process over a loopback listener instead of targeting -addr")
		fleetN    = flag.Int("fleet", 0, "with -inprocess: run N fleet nodes sharding by plan key, load round-robined across them")
		workers   = flag.Int("workers", 0, "in-process server worker pool (0 = GOMAXPROCS)")
		conns     = flag.Int("conns", 4, "closed-loop connections")
		rate      = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		duration  = flag.Duration("duration", 10*time.Second, "measured window (0 with -gobench = parse only, no load run)")
		warmup    = flag.Duration("warmup", time.Second, "unmeasured warmup before the window")
		seed      = flag.Int64("seed", 1, "request-mix seed")
		mix       = flag.String("mix", "wc,ts,wc+ts", "comma-separated workflow mix")
		sizes     = flag.String("sizes", "10,100", "comma-separated input sizes in GB (empty = server default)")
		gobench   = flag.String("gobench", "", "parse `go test -bench` output from this file (- = stdin) into the ledger")
		out       = flag.String("out", "", "write the BENCH_*.json ledger here")
		label     = flag.String("label", "", "ledger label (\"pr6-baseline\", …)")
	)
	flag.Parse()

	ledger := perfledger.Ledger{
		Schema:    perfledger.SchemaVersion,
		Label:     *label,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Build:     perfledger.CurrentBuild(),
	}

	var sources []string
	if *gobench != "" {
		benches, err := parseGoBenchArg(*gobench)
		if err != nil {
			fatal(err)
		}
		ledger.Benchmarks = benches
		sources = append(sources, "go-bench")
	}

	if *duration > 0 {
		run, err := loadRun(loadCfg{
			addr: *addr, inprocess: *inprocess, fleet: *fleetN, workers: *workers,
			conns: *conns, rate: *rate, duration: *duration, warmup: *warmup,
			seed: *seed, mix: *mix, sizes: *sizes,
		})
		if err != nil {
			fatal(err)
		}
		ledger.Service = run
		sources = append([]string{"boedagbench"}, sources...)
	}

	if len(sources) == 0 {
		fatal(fmt.Errorf("nothing to do: -duration 0 and no -gobench"))
	}
	ledger.Source = strings.Join(sources, "+")
	if err := perfledger.Validate(ledger); err != nil {
		fatal(err)
	}
	report(os.Stdout, ledger)
	if *out != "" {
		if err := perfledger.Write(*out, ledger); err != nil {
			fatal(err)
		}
		fmt.Printf("ledger written to %s\n", *out)
	}
}

type loadCfg struct {
	addr                  string
	inprocess             bool
	fleet, workers, conns int
	rate                  float64
	duration, warmup      time.Duration
	seed                  int64
	mix, sizes            string
}

// loadRun executes the service half: resolve the target (spinning up an
// in-process server — or an N-node fleet — when asked), tag it via
// GET /version, drive the seeded mix, and summarize.
func loadRun(c loadCfg) (*perfledger.ServiceRun, error) {
	targets := []string{c.addr}
	targetLabel := c.addr
	switch {
	case c.inprocess && c.fleet > 1:
		if c.addr != "" {
			return nil, fmt.Errorf("-inprocess and -addr are mutually exclusive")
		}
		// An in-process fleet: N servers behind fleet nodes on a shared
		// ring, every request routed to (or forwarded to) its shard owner.
		dir := fleet.NewMutableDirectory()
		peers := make([]string, c.fleet)
		for i := range peers {
			peers[i] = fmt.Sprintf("node%d", i)
		}
		targets = targets[:0]
		for _, id := range peers {
			s, err := serve.New(serve.Config{Workers: c.workers})
			if err != nil {
				return nil, err
			}
			node, err := fleet.NewNode(s, fleet.Config{
				NodeID: id, Peers: peers, Directory: dir,
			})
			if err != nil {
				return nil, err
			}
			ts := httptest.NewServer(node.Handler())
			defer ts.Close()
			dir.Set(id, ts.URL)
			targets = append(targets, ts.URL)
		}
		targetLabel = fmt.Sprintf("in-process fleet of %d", c.fleet)
	case c.inprocess:
		if c.addr != "" {
			return nil, fmt.Errorf("-inprocess and -addr are mutually exclusive")
		}
		s, err := serve.New(serve.Config{Workers: c.workers})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		targets = []string{ts.URL}
		targetLabel = "in-process"
	case c.fleet > 1:
		return nil, fmt.Errorf("-fleet requires -inprocess")
	case c.addr == "":
		return nil, fmt.Errorf("no target: set -addr or -inprocess")
	}

	workflows := splitList(c.mix)
	if len(workflows) == 0 {
		return nil, fmt.Errorf("empty -mix")
	}
	sizesGB, err := splitFloats(c.sizes)
	if err != nil {
		return nil, fmt.Errorf("bad -sizes: %w", err)
	}

	mode := "closed"
	if c.rate > 0 {
		mode = "open"
	}
	cfg := loadgen.Config{
		BaseURLs: targets, Mode: mode,
		Connections: c.conns, RatePerSec: c.rate,
		Warmup: c.warmup, Duration: c.duration,
		Seed: c.seed, Workflows: workflows, SizesGB: sizesGB,
	}
	fmt.Printf("driving %s: %s loop, %s mix seed %d, warmup %s, window %s\n",
		targetLabel, mode, c.mix, c.seed, c.warmup, c.duration)
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	run := loadgen.Summarize(cfg, res)
	run.Target = targetLabel
	run.TargetBuild = fetchBuild(targets[0])
	return &run, nil
}

// fetchBuild asks the target for its build identity; nil when the
// endpoint is missing (an older daemon) or unreachable.
func fetchBuild(base string) *perfledger.BuildInfo {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/version")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	defer resp.Body.Close()
	var v serve.VersionResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil
	}
	return &v.Build
}

func parseGoBenchArg(arg string) ([]perfledger.Benchmark, error) {
	var r io.Reader = os.Stdin
	if arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return perfledger.ParseGoBench(bufio.NewReader(r))
}

// report prints the human summary of everything the ledger records.
func report(w io.Writer, l perfledger.Ledger) {
	if s := l.Service; s != nil {
		fmt.Fprintf(w, "requests %d (%d errors) in %.1fs — %.1f req/s\n",
			s.Requests, s.Errors, s.DurationS, s.ThroughputRPS)
		lat := s.Latency
		fmt.Fprintf(w, "latency mean %s p50 %s p90 %s p99 %s max %s\n",
			ms(lat.MeanS), ms(lat.P50S), ms(lat.P90S), ms(lat.P99S), ms(lat.MaxS))
		names := make([]string, 0, len(s.MixCounts))
		for name := range s.MixCounts {
			names = append(names, name)
		}
		sort.Strings(names)
		var parts []string
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s×%d", name, s.MixCounts[name]))
		}
		if len(parts) > 0 {
			fmt.Fprintf(w, "mix %s\n", strings.Join(parts, " "))
		}
	}
	for _, b := range l.Benchmarks {
		fmt.Fprintf(w, "bench %-40s %12.0f ns/op %8.0f allocs/op\n",
			b.Name, b.NsPerOp, b.AllocsPerOp)
	}
}

func ms(s float64) string { return fmt.Sprintf("%.2fms", s*1000) }

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boedagbench:", err)
	os.Exit(1)
}
