package synthdag

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestGenerateValidAndSized(t *testing.T) {
	for _, c := range []Config{
		{},
		{Layers: 3, Width: 5, FanIn: 2, Seed: 42},
		{Layers: 20, Width: 50, FanIn: 3, Seed: 1},
		{Layers: 2, Width: 1, FanIn: 5, Seed: 9}, // fan-in capped at width
	} {
		w := Generate(c)
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: invalid workflow: %v", w.Name, err)
		}
		cd := c.withDefaults()
		if got, want := len(w.Jobs), cd.Layers*cd.Width; got != want {
			t.Fatalf("%s: %d jobs, want %d", w.Name, got, want)
		}
		if got := len(w.Roots()); got != cd.Width {
			t.Fatalf("%s: %d roots, want width %d", w.Name, got, cd.Width)
		}
		for _, j := range w.Jobs[cd.Width:] {
			if len(j.Deps) != cd.FanIn {
				t.Fatalf("%s: job %s has %d deps, want %d", w.Name, j.ID, len(j.Deps), cd.FanIn)
			}
			seen := map[string]bool{}
			for _, d := range j.Deps {
				if seen[d] {
					t.Fatalf("%s: job %s depends on %s twice", w.Name, j.ID, d)
				}
				seen[d] = true
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Layers: 5, Width: 8, FanIn: 2, Seed: 7})
	b := Generate(Config{Layers: 5, Width: 8, FanIn: 2, Seed: 7})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different workflows")
	}
	c := Generate(Config{Layers: 5, Width: 8, FanIn: 2, Seed: 8})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical workflows")
	}
}

// The estimator's dist cache shares solves only between adjacent
// identical groups, so layers must be contiguous runs in sorted ID
// order.
func TestIDsSortLayerContiguous(t *testing.T) {
	w := Generate(Config{Layers: 4, Width: 12, FanIn: 3, Seed: 3})
	ids := make([]string, len(w.Jobs))
	for i, j := range w.Jobs {
		ids[i] = j.ID
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(ids, sorted) {
		t.Fatal("declaration order is not sorted layer-major order")
	}
	layerOf := func(id string) string { return strings.SplitN(id, ".", 2)[0] }
	last := ""
	seen := map[string]bool{}
	for _, id := range sorted {
		l := layerOf(id)
		if l != last {
			if seen[l] {
				t.Fatalf("layer %s is not contiguous in sorted order", l)
			}
			seen[l] = true
			last = l
		}
	}
}

func TestNameParseRoundTrip(t *testing.T) {
	for _, c := range []Config{
		{},
		{Layers: 100, Width: 100, FanIn: 3, Seed: 1},
		{Layers: 7, Width: 13, FanIn: 4, Seed: 99},
	} {
		got, ok := Parse(c.Name())
		if !ok {
			t.Fatalf("Parse(%q) failed", c.Name())
		}
		if got != c.withDefaults() {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.Name(), got, c.withDefaults())
		}
	}
	if c, ok := Parse("synth-10k"); !ok || c.Jobs() != 10000 {
		t.Fatalf("synth-10k: ok=%v jobs=%d, want 10000", ok, c.Jobs())
	}
	if c, ok := Parse("synth-1k"); !ok || c.Jobs() != 1000 {
		t.Fatalf("synth-1k: ok=%v jobs=%d, want 1000", ok, c.Jobs())
	}
	for _, bad := range []string{"wc", "synth-", "synth-x3", "synth-l0-w5", "synth-l5-w0", "synth-lq", "synth-l", "tpch-q1"} {
		if _, ok := Parse(bad); ok {
			t.Fatalf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestProfilesAreBucketed(t *testing.T) {
	w := Generate(Config{Layers: 10, Width: 40, FanIn: 3, Seed: 1})
	classes := map[string]bool{}
	for _, j := range w.Jobs {
		classes[fmt.Sprintf("%s/%d", j.Profile.Name, int64(j.Profile.InputBytes))] = true
	}
	if len(classes) > len(catalog()) {
		t.Fatalf("%d profile classes exceed the catalog's %d", len(classes), len(catalog()))
	}
	if len(classes) < 2 {
		t.Fatal("generator degenerated to a single profile class")
	}
}
