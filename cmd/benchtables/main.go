// Command benchtables regenerates the tables and figures of the paper's
// evaluation section against the simulated cluster, printing each in the
// paper's layout. See EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	benchtables                  # everything (Table I, Figure 6, Tables II & III)
//	benchtables -table 1         # only Table I
//	benchtables -figure 6        # only Figure 6
//	benchtables -table 3 -shrink 10   # Table III at 1/10th data scale
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"boedag/internal/cliobs"
	"boedag/internal/experiments"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate only this table (1, 2 or 3)")
		figure  = flag.Int("figure", 0, "regenerate only this figure (6)")
		ext     = flag.Bool("ext", false, "also run the extension studies (skew sweep, scheduler policies)")
		shrink  = flag.Float64("shrink", 1, "divide all data sizes by this factor")
		seed    = flag.Int64("seed", 1, "skew RNG seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent evaluations per experiment (1 = serial)")
	)
	var ob cliobs.Flags
	ob.Register(nil)
	flag.Parse()

	cfg := experiments.Scaled(*shrink)
	cfg.Seed = *seed
	observe, err := ob.Options()
	if err != nil {
		fatal(err)
	}
	// Every simulation an experiment launches feeds the shared sinks, so
	// -obs-summary or -metrics-out aggregates a whole benchmark session.
	cfg.Observe = observe
	cfg.Workers = *workers

	all := *table == 0 && *figure == 0 && !*ext
	start := time.Now()

	if all || *table == 1 {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Table I — workload overview ==")
		experiments.RenderTable1(os.Stdout, rows)
		fmt.Println()
	}
	if all || *figure == 6 {
		series, err := experiments.Figure6(cfg, experiments.Figure6Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Figure 6 — task time vs degree of parallelism ==")
		experiments.RenderFigure6(os.Stdout, series)
		fmt.Println()
	}
	if all || *table == 2 {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Table II — task-level accuracy for parallel jobs ==")
		experiments.RenderTable2(os.Stdout, rows)
		fmt.Println()
	}
	if all || *table == 3 {
		sum, err := experiments.Table3(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Table III — estimation accuracy for 51 DAG workflows ==")
		experiments.RenderTable3(os.Stdout, sum)
		fmt.Println()
	}
	if all || *ext {
		rows, err := experiments.SkewSweep(cfg, []float64{0, 0.1, 0.2, 0.4})
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Extension — skew sensitivity (accuracy vs task-size CV) ==")
		experiments.RenderSkewSweep(os.Stdout, rows)
		fmt.Println()

		prows, err := experiments.PolicyStudy(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Extension — scheduler policy study ==")
		experiments.RenderPolicyStudy(os.Stdout, prows)
		fmt.Println()

		frows, err := experiments.FailureStudy(cfg, []float64{0, 0.1, 0.2, 0.4})
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Extension — fault tolerance study ==")
		experiments.RenderFailureStudy(os.Stdout, frows)
		fmt.Println()

		nrows, err := experiments.NodeAwareStudy(cfg, []string{"wc", "ts", "wc+ts"})
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Extension — node-awareness study ==")
		experiments.RenderNodeAwareStudy(os.Stdout, nrows)
		fmt.Println()
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
	if err := ob.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
