package evalpool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"boedag/internal/obs"
)

func TestRunOrderingDeterministic(t *testing.T) {
	jobs := make([]func() (int, error), 64)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) { return i * i, nil }
	}
	for _, workers := range []int{1, 2, 7, 64, 0} {
		got, err := Run(context.Background(), jobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunAggregatesAllErrors(t *testing.T) {
	boom := errors.New("boom")
	jobs := []func() (string, error){
		func() (string, error) { return "ok", nil },
		func() (string, error) { return "", fmt.Errorf("first: %w", boom) },
		func() (string, error) { return "", fmt.Errorf("second: %w", boom) },
	}
	got, err := Run(context.Background(), jobs, 3)
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("errors.Is(err, boom) = false: %v", err)
	}
	for _, want := range []string{"job 1", "job 2", "first", "second"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if got[0] != "ok" {
		t.Fatalf("successful result lost: %q", got[0])
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	jobs := make([]func() (struct{}, error), 50)
	for i := range jobs {
		jobs[i] = func() (struct{}, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		}
	}
	if _, err := Run(context.Background(), jobs, workers); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, worker bound is %d", p, workers)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]func() (int, error), 100)
	for i := range jobs {
		jobs[i] = func() (int, error) {
			ran.Add(1)
			cancel() // first job to run cancels everyone behind it
			time.Sleep(time.Millisecond)
			return 1, nil
		}
	}
	_, err := Run(ctx, jobs, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n == 100 {
		t.Fatal("cancellation did not stop the feed")
	}
}

func TestRunObservedEventsAndMetrics(t *testing.T) {
	rec := obs.NewRecorder()
	reg := obs.NewRegistry()
	jobs := []func() (int, error){
		func() (int, error) { return 1, nil },
		func() (int, error) { return 0, errors.New("bad") },
		func() (int, error) { return 3, nil },
	}
	_, err := RunObserved(context.Background(), jobs, Options{
		Workers: 2,
		Label:   "sweep",
		Observe: obs.Options{Tracer: rec, Metrics: reg},
	})
	if err == nil {
		t.Fatal("want error from job 1")
	}
	evs := rec.ByType(obs.EvPoolJob)
	if len(evs) != 3 {
		t.Fatalf("EvPoolJob events = %d, want 3", len(evs))
	}
	var failed int
	for _, ev := range evs {
		if ev.Detail != "sweep" {
			t.Fatalf("event label = %q, want sweep", ev.Detail)
		}
		if ev.Value > 0 {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failed spans = %d, want 1", failed)
	}
	if got := reg.Counter("pool_jobs").Value(); got != 3 {
		t.Fatalf("pool_jobs = %d, want 3", got)
	}
	if got := reg.Counter("pool_errors").Value(); got != 1 {
		t.Fatalf("pool_errors = %d, want 1", got)
	}
	if got := reg.Histogram("pool_job_duration_s").Count(); got != 3 {
		t.Fatalf("pool_job_duration_s count = %d, want 3", got)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache[int]()
	var computed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (int, error) {
				computed.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 31 {
		t.Fatalf("hits/misses = %d/%d, want 31/1", hits, misses)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache[int]()
	var calls int
	bad := errors.New("deterministic failure")
	for i := 0; i < 3; i++ {
		_, err := c.Do("k", func() (int, error) { calls++; return 0, bad })
		if !errors.Is(err, bad) {
			t.Fatalf("want cached error, got %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestCacheMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache[int]().WithMetrics(reg, "test_cache")
	c.Do("a", func() (int, error) { return 1, nil })
	c.Do("a", func() (int, error) { return 1, nil })
	c.Do("b", func() (int, error) { return 2, nil })
	if got := reg.Counter("test_cache_hits").Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := reg.Counter("test_cache_misses").Value(); got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
}
