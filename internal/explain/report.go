package explain

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON-free wire note: Explanation marshals with encoding/json
// directly — struct field order is fixed and maps use sorted keys, so the
// output is byte-deterministic for deterministic inputs. WriteJSON is the
// canonical indented form shared by the CLIs and POST /v1/explain.

// WriteJSON writes the explanation as indented JSON with a trailing
// newline (the CLI -explain-out / service wire form).
func (e *Explanation) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the human-readable report: critical path, resource
// and job attribution, per-state utilization, and the θ-sensitivity
// table.
func (e *Explanation) WriteText(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("explanation: %s  makespan %.1fs\n", e.Workflow, e.MakespanS)

	p("\ncritical path (durations sum to makespan):\n")
	for _, iv := range e.CriticalPath {
		what := iv.Job
		if iv.Stage != ResourceSubmit {
			what = iv.Job + "/" + iv.Stage
		} else {
			what += " (submit)"
		}
		p("  %9.1fs → %9.1fs  %8.1fs  %-11s %s\n",
			iv.StartS, iv.EndS, iv.DurationS, iv.Resource, what)
	}

	p("\nresource attribution (100%% of makespan):\n")
	for _, rs := range e.Resources {
		if rs.Dur == 0 && rs.Seconds == 0 {
			continue
		}
		p("  %-11s %9.1fs  %5.1f%%\n", rs.Resource, rs.Seconds, 100*rs.Fraction)
	}

	p("\njob attribution (critical path):\n")
	for _, js := range e.Jobs {
		p("  %-11s %9.1fs  %5.1f%%\n", js.Job, js.Seconds, 100*js.Fraction)
	}

	if len(e.States) > 0 {
		p("\nstates:\n")
		for _, st := range e.States {
			p("  #%-3d %9.1fs → %9.1fs  %-11s util %.2f  slots %3.0f%%\n",
				st.Seq, st.StartS, st.EndS, st.Dominant,
				maxUtil(st.Utilization), 100*st.SlotShare)
		}
	}

	if len(e.Sensitivity) > 0 {
		p("\nθ-sensitivity (+%.0f%% throughput):\n", 100*e.Sensitivity[0].Epsilon)
		p("  %-11s %12s %10s %12s\n", "parameter", "makespan", "Δ saved", "∂T/∂θ")
		for _, s := range e.Sensitivity {
			mark := ""
			if s.Best {
				mark = "  ← best"
			}
			p("  %-11s %11.1fs %9.1fs %11.1fs%s\n",
				s.Parameter, s.PerturbedS, s.DeltaS, s.GradientS, mark)
		}
	}
	return nil
}

func maxUtil(u map[string]float64) float64 {
	m := 0.0
	for _, v := range u {
		if v > m {
			m = v
		}
	}
	return m
}
