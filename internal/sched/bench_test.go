package sched

import (
	"fmt"
	"testing"
)

// benchRand is a tiny deterministic LCG — schedtest's generator lives
// downstream of this package, so the benchmarks roll their own.
type benchRand struct{ s uint64 }

func (r *benchRand) Intn(n int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(n))
}

// The allocator benchmarks pin the scheduling hot paths for the perf
// ledger (hack/bench_baseline.json): one hierarchical allocation round
// over a realistic multi-tenant tree with reclaim pressure, and one full
// arrival-stream replay per policy.

// benchHierarchy builds a 3-tenant × 4-subqueue tree with mixed quotas,
// weights, and limits.
func benchHierarchy(b *testing.B) *Hierarchy {
	b.Helper()
	specs := []QueueSpec{
		{Name: "prod", Quota: QueueLimit{Slots: 40}},
		{Name: "batch", Weight: 2},
		{Name: "adhoc", Weight: 1, Limit: QueueLimit{Slots: 64}},
	}
	for _, tenant := range []string{"prod", "batch", "adhoc"} {
		for i := 0; i < 4; i++ {
			specs = append(specs, QueueSpec{
				Name:   fmt.Sprintf("%s-%d", tenant, i),
				Parent: tenant,
				Weight: float64(1 + i%2),
			})
		}
	}
	h, err := NewHierarchy(specs)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// benchRequests spreads n jobs across the tree's leaves with varied
// shapes, gangs, and predictions, plus a held allocation that puts the
// pool over quota so the reclaim phase does real work.
func benchRequests(n int) ([]Request, Allocation) {
	r := &benchRand{s: 99}
	reqs := make([]Request, n)
	held := Allocation{}
	for i := range reqs {
		tenant := []string{"prod", "batch", "adhoc"}[i%3]
		reqs[i] = Request{
			JobID:     fmt.Sprintf("j%03d", i),
			MemoryMB:  512 * (1 + r.Intn(4)),
			VCores:    1,
			Pending:   1 + r.Intn(24),
			Order:     i,
			Queue:     fmt.Sprintf("%s-%d", tenant, i%4),
			Predicted: float64(10 + r.Intn(600)),
		}
		if i%7 == 0 {
			reqs[i].Gang = 2
		}
		if tenant != "prod" && i%2 == 0 {
			held[reqs[i].JobID] = 1 + r.Intn(3)
		}
	}
	return reqs, held
}

func BenchmarkHierarchicalAllocate(b *testing.B) {
	h := benchHierarchy(b)
	reqs, held := benchRequests(120)
	pool := Pool{MemoryMB: 1 << 19, VCores: 128, Slots: 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := AllocateHierarchy(pool, h, reqs, held)
		if len(res.Grants) == 0 {
			b.Fatal("empty allocation")
		}
	}
}

// BenchmarkStreamPolicySweep replays one seeded 200-job arrival stream
// under every policy (plus deadline admission) back to back — the cost
// of one policy-study cell times the full lineup.
func BenchmarkStreamPolicySweep(b *testing.B) {
	r := &benchRand{s: 7}
	pool := Pool{MemoryMB: 1 << 19, VCores: 128, Slots: 128}
	jobs := make([]StreamJob, 200)
	now := 0.0
	for i := range jobs {
		now += float64(r.Intn(20))
		predicted := float64(10 + r.Intn(600))
		jobs[i] = StreamJob{
			ID:             fmt.Sprintf("j%03d", i),
			Submit:         now,
			Work:           predicted * float64(4+r.Intn(60)),
			MaxParallelism: 4 + r.Intn(60),
			MemoryMB:       512,
			VCores:         1,
			Predicted:      predicted,
		}
		if i%2 == 0 {
			jobs[i].Deadline = now + predicted*2
		}
	}
	opts := []StreamOptions{
		{Policy: PolicyFIFO},
		{Policy: PolicyDRF},
		{Policy: PolicyFair},
		{Policy: PolicySPJF},
		{Policy: PolicySPJF, DeadlineAdmission: true},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, opt := range opts {
			res := RunStream(pool, jobs, opt)
			if res.Admitted == 0 {
				b.Fatal("nothing admitted")
			}
		}
	}
}
