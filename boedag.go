// Package boedag is a reproduction of "Performance Models of Data
// Parallel DAG Workflows for Large Scale Data Analytics" (Shi & Lu, ICDE
// 2021). It provides:
//
//   - the Bottleneck Oriented Estimation (BOE) task-level cost model,
//   - the state-based workflow-level estimator (Algorithm 1 of the paper)
//     with mean / median / normal-distribution skew handling,
//   - a discrete-event MapReduce cluster simulator that stands in for the
//     paper's eleven-node Hadoop testbed as ground truth,
//   - a DRF scheduler model, workload generators (Word Count, TeraSort
//     variants, HiBench KMeans and PageRank, TPC-H Q1–Q22), and
//     profile-replay baselines in the spirit of Starfish and MRTuner.
//
// The package re-exports the stable API; implementation lives under
// internal/. Start with Quickstart-style usage:
//
//	spec := boedag.PaperCluster()
//	model := boedag.NewBOE(spec)
//	est := model.TaskTime(boedag.WordCount(100*boedag.GB), boedag.Map, 12)
//
// and see examples/ for complete programs.
package boedag

import (
	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/sched"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Data sizes and rates.
type (
	// Bytes is a data size in bytes.
	Bytes = units.Bytes
	// Rate is a throughput in bytes per second.
	Rate = units.Rate
)

// Size constants.
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
	TB = units.TB
	// MBps is one megabyte per second.
	MBps = units.MBps
)

// Cluster description.
type (
	// ClusterSpec declares a homogeneous cluster.
	ClusterSpec = cluster.Spec
	// NodeSpec declares one server's capacities.
	NodeSpec = cluster.NodeSpec
	// Resource identifies a preemptable resource class.
	Resource = cluster.Resource
)

// Resource classes.
const (
	CPU       = cluster.CPU
	DiskRead  = cluster.DiskRead
	DiskWrite = cluster.DiskWrite
	Network   = cluster.Network
)

// PaperCluster returns the paper's evaluation cluster (§V-A).
func PaperCluster() ClusterSpec { return cluster.PaperCluster() }

// Workloads.
type (
	// JobProfile statically describes a MapReduce job.
	JobProfile = workload.JobProfile
	// Stage is Map or Reduce.
	Stage = workload.Stage
	// Compression configures map-output compression.
	Compression = workload.Compression
)

// Stages.
const (
	Map    = workload.Map
	Reduce = workload.Reduce
)

// Workload generators (Table I of the paper).
var (
	WordCount          = workload.WordCount
	TeraSort           = workload.TeraSort
	TeraSortCompressed = workload.TeraSortCompressed
	TeraSort2R         = workload.TeraSort2R
	TeraSort3R         = workload.TeraSort3R
)

// DAG workflows.
type (
	// Workflow is a DAG of jobs (Definition 1 of the paper).
	Workflow = dag.Workflow
	// Job is one vertex of a workflow.
	Job = dag.Job
)

// Workflow constructors.
var (
	// Single wraps one job into a workflow.
	Single = dag.Single
	// Chain builds a linear workflow.
	Chain = dag.Chain
	// ParallelFlows merges workflows to run side by side.
	ParallelFlows = dag.Parallel
)

// BOE task-level model.
type (
	// BOEModel estimates task execution times (paper §III).
	BOEModel = boe.Model
	// TaskGroup is a set of identical concurrent tasks.
	TaskGroup = boe.TaskGroup
	// TaskEstimate is a task-level prediction.
	TaskEstimate = boe.TaskEstimate
	// SubStageEstimate is a sub-stage-level prediction.
	SubStageEstimate = boe.SubStageEstimate
)

// NewBOE returns a BOE model for the cluster.
func NewBOE(spec ClusterSpec) *BOEModel { return boe.New(spec) }

// Scheduling.
type (
	// SchedRequest is one job's container appetite.
	SchedRequest = sched.Request
	// SchedPool is the capacity DRF divides.
	SchedPool = sched.Pool
)

// DRFParallelism estimates each job's steady-state degree of parallelism.
func DRFParallelism(spec ClusterSpec, reqs []SchedRequest) map[string]int {
	return sched.Parallelism(sched.PoolOf(spec), reqs)
}

// Simulation (ground truth).
type (
	// Simulator executes workflows on a simulated cluster.
	Simulator = simulator.Simulator
	// SimOptions tune a simulation run.
	SimOptions = simulator.Options
	// SimResult carries a run's measurements.
	SimResult = simulator.Result
	// TaskRecord is one task's measured execution.
	TaskRecord = simulator.TaskRecord
	// StageRecord is one job stage's measured execution.
	StageRecord = simulator.StageRecord
	// StateRecord is one workflow state's measured span.
	StateRecord = simulator.StateRecord
)

// NewSimulator returns a simulator for the cluster.
func NewSimulator(spec ClusterSpec, opt SimOptions) *Simulator {
	return simulator.New(spec, opt)
}
