package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTrace parses exporter output back into the object format.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var decoded struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	return decoded.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{Type: EvJobSubmit, Job: "j1", Time: 0},
		{Type: EvTaskStart, Job: "j1", Stage: "map", Task: 0, Time: 2},
		{Type: EvSubStageFinish, Job: "j1", Stage: "map", Sub: "read", Task: 0,
			Time: 2, Dur: 3, Resource: "disk-read"},
		{Type: EvTaskFinish, Job: "j1", Stage: "map", Task: 0, Time: 2, Dur: 10,
			Resource: "cpu", Value: -1},
		{Type: EvTaskRetry, Job: "j2", Stage: "reduce", Task: 3, Time: 6},
		{Type: EvStageFinish, Job: "j1", Stage: "map", Time: 2, Dur: 10},
		{Type: EvAllocGrant, Job: "j1", Time: 1, Value: 4, Detail: "drf"},
		{Type: EvStateClose, Seq: 1, Time: 0, Dur: 12, Detail: "j1/map",
			Resource: "cpu", Value: 0.8},
		{Type: EvEstimatorState, Seq: 1, Time: 0, Detail: "j1/map"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	tes := decodeTrace(t, buf.Bytes())

	cats := make(map[string]int)
	phases := make(map[string]int)
	for _, te := range tes {
		if c, ok := te["cat"].(string); ok {
			cats[c]++
		}
		phases[te["ph"].(string)]++
	}
	for _, want := range []string{"task", "substage", "stage", "state", "sched", "job", "estimator"} {
		if cats[want] == 0 {
			t.Errorf("no %q events in trace; cats = %v", want, cats)
		}
	}
	if phases["M"] == 0 {
		t.Error("no metadata (process_name) events")
	}
	if phases["X"] < 4 {
		t.Errorf("complete events = %d, want ≥ 4", phases["X"])
	}

	// The task span must be converted to microseconds.
	for _, te := range tes {
		if te["cat"] == "task" && te["ph"] == "X" {
			if ts := te["ts"].(float64); ts != 2*usPerSec {
				t.Errorf("task ts = %v, want %v", ts, 2*usPerSec)
			}
			if dur := te["dur"].(float64); dur != 10*usPerSec {
				t.Errorf("task dur = %v, want %v", dur, 10*usPerSec)
			}
		}
	}
}

func TestWriteChromeTraceDeterministicPIDs(t *testing.T) {
	events := []Event{
		{Type: EvTaskFinish, Job: "zeta", Stage: "map", Time: 0, Dur: 1},
		{Type: EvTaskFinish, Job: "alpha", Stage: "map", Time: 0, Dur: 1},
	}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, events); err != nil {
		t.Fatal(err)
	}
	// Reversed emission order must yield identical pid assignment (sorted
	// by job name), so traces diff cleanly across runs.
	if err := WriteChromeTrace(&b, []Event{events[1], events[0]}); err != nil {
		t.Fatal(err)
	}
	pidOf := func(data []byte, job string) float64 {
		for _, te := range decodeTrace(t, data) {
			if te["ph"] == "M" && te["name"] == "process_name" {
				if args := te["args"].(map[string]any); args["name"] == "job "+job {
					return te["pid"].(float64)
				}
			}
		}
		t.Fatalf("no process_name for %s", job)
		return -1
	}
	if pidOf(a.Bytes(), "alpha") != pidOf(b.Bytes(), "alpha") ||
		pidOf(a.Bytes(), "zeta") != pidOf(b.Bytes(), "zeta") {
		t.Error("pid assignment depends on emission order")
	}
	if pidOf(a.Bytes(), "alpha") >= pidOf(a.Bytes(), "zeta") {
		t.Error("pids not sorted by job name")
	}
}

// TestWriteChromeTraceAnnotated pins the arg-merge contract: annotations
// add args to stage, state, and run-metadata spans but never replace a
// recorded arg — on a key collision the recorded value wins.
func TestWriteChromeTraceAnnotated(t *testing.T) {
	events := []Event{
		{Type: EvRunStart, Job: "wc", Seq: 11, Value: 132, Detail: "", Time: 0},
		{Type: EvStageFinish, Job: "j1", Stage: "map", Time: 2, Dur: 10, Resource: "cpu"},
		{Type: EvStateClose, Seq: 1, Time: 0, Dur: 12, Detail: "j1/map",
			Resource: "cpu", Value: 0.8},
	}
	ann := &TraceAnnotations{
		Stage: map[string]map[string]any{
			"j1/map": {
				"critical":   true,
				"critical_s": 9.5,
				"bottleneck": "EVIL", // collides with the recorded arg
			},
		},
		State: map[int]map[string]any{
			1: {"explain_dominant": "slots", "dominant": "EVIL"},
		},
		Run: map[string]any{
			"bottleneck": "network",
			"workflow":   "EVIL", // collides with recorded run metadata
			"nodes":      999,
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceAnnotated(&buf, events, ann); err != nil {
		t.Fatal(err)
	}
	argsOf := func(cat string) map[string]any {
		for _, te := range decodeTrace(t, buf.Bytes()) {
			if te["cat"] == cat {
				args, _ := te["args"].(map[string]any)
				return args
			}
		}
		t.Fatalf("no %q event", cat)
		return nil
	}

	stage := argsOf("stage")
	if stage["critical"] != true || stage["critical_s"] != 9.5 {
		t.Errorf("stage annotations missing: %v", stage)
	}
	if stage["bottleneck"] != "cpu" {
		t.Errorf("recorded bottleneck overwritten: %v", stage["bottleneck"])
	}
	state := argsOf("state")
	if state["explain_dominant"] != "slots" {
		t.Errorf("state annotation missing: %v", state)
	}
	if state["dominant"] != "cpu" {
		t.Errorf("recorded dominant overwritten: %v", state["dominant"])
	}
	run := argsOf("meta")
	if run["bottleneck"] != "network" {
		t.Errorf("run annotation missing: %v", run)
	}
	if run["workflow"] != "wc" || run["nodes"] != float64(11) {
		t.Errorf("recorded run metadata overwritten: %v", run)
	}

	// The nil-annotation path must be byte-identical to WriteChromeTrace.
	var plain, annNil bytes.Buffer
	if err := WriteChromeTrace(&plain, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceAnnotated(&annNil, events, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), annNil.Bytes()) {
		t.Error("WriteChromeTraceAnnotated(nil) diverges from WriteChromeTrace")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if tes := decodeTrace(t, buf.Bytes()); len(tes) < 2 {
		// Still a valid trace with the workflow metadata track.
		t.Errorf("empty trace has %d events, want the metadata pair", len(tes))
	}
}
