package sched_test

// The property-based invariant suite: seeded random scenarios from
// schedtest, shared Check* assertions from the same package. Every
// policy — current and future — runs through the same tables; a new
// policy inherits the whole contract by joining Policies().

import (
	"reflect"
	"testing"

	"boedag/internal/sched"
	"boedag/internal/sched/schedtest"
)

const propertySeeds = 150

// TestPropertyFlatPolicies: every flat policy respects grants ≤ pending,
// caps, pool capacity — and leaves no fitting demand unmet (work
// conservation) — across the random scenario corpus.
func TestPropertyFlatPolicies(t *testing.T) {
	for _, p := range sched.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for seed := int64(0); seed < propertySeeds; seed++ {
				r := schedtest.New(seed)
				s := r.Scenario()
				grant := sched.Grant(p, s.Pool, s.Requests, s.Held)
				if err := schedtest.CheckGrants(s.Pool, s.Requests, s.Held, grant); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := schedtest.CheckWorkConservation(s.Pool, s.Requests, s.Held, grant); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestPropertyHierarchyInvariants: the hierarchical allocator respects
// the full contract — basics net of evictions, evictions only from held,
// chain hard limits, gang all-or-nothing — across random queue trees.
func TestPropertyHierarchyInvariants(t *testing.T) {
	for seed := int64(0); seed < propertySeeds*2; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		res := sched.AllocateHierarchy(s.Pool, s.Hierarchy, s.Requests, s.Held)
		if err := schedtest.CheckHierarchy(s, res); err != nil {
			t.Fatalf("seed %d (%d queues, %d jobs): %v", seed, len(s.Specs), len(s.Requests), err)
		}
	}
}

// TestPropertyQuotaSafeEviction: preemption never cuts into guaranteed
// work. Gang-free scenarios (gang zeroing happens after reclaim, so it
// can legitimately shrink usage below the quota line the eviction was
// judged against).
func TestPropertyQuotaSafeEviction(t *testing.T) {
	evictions := 0
	for seed := int64(0); seed < propertySeeds*2; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		for i := range s.Requests {
			s.Requests[i].Gang = 0
		}
		res := sched.AllocateHierarchy(s.Pool, s.Hierarchy, s.Requests, s.Held)
		evictions += len(res.Evict)
		if err := schedtest.CheckQuotaSafeEviction(s, res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if evictions == 0 {
		t.Fatal("corpus produced no evictions: the property is vacuous, tighten the generator")
	}
}

// TestPropertyWorkConservationHierarchy: with hard limits stripped, the
// hierarchical allocator leaves no fitting non-gang demand unmet (quotas
// are guarantees, not caps — they must never idle capacity).
func TestPropertyWorkConservationHierarchy(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		for i := range s.Specs {
			s.Specs[i].Limit = sched.QueueLimit{}
		}
		if s.Specs != nil {
			h, err := sched.NewHierarchy(s.Specs)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			s.Hierarchy = h
		}
		res := sched.AllocateHierarchy(s.Pool, s.Hierarchy, s.Requests, s.Held)
		net := sched.Allocation{}
		for id, h := range s.Held {
			net[id] = h - res.Evict[id]
		}
		// Banned gangs are exempt via CheckWorkConservation's Gang skip.
		if err := schedtest.CheckWorkConservation(s.Pool, s.Requests, net, res.Grants); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPropertyDRFOrdering: dominant-share ordering on identical-shape
// corpora — if a job still wants containers, no other job was granted
// more than one container past it (max-min fairness on holdings).
func TestPropertyDRFOrdering(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		for i := range s.Requests {
			s.Requests[i].MemoryMB = 2048
			s.Requests[i].VCores = 1
			s.Requests[i].Gang = 0
		}
		grant := sched.DRF(s.Pool, s.Requests, s.Held)
		have := func(id string) int { return grant[id] + s.Held[id] }
		for _, a := range s.Requests {
			unsat := grant[a.JobID] < a.Pending && (a.Cap == 0 || have(a.JobID) < a.Cap)
			if !unsat {
				continue
			}
			for _, b := range s.Requests {
				if b.JobID == a.JobID || grant[b.JobID] == 0 {
					continue
				}
				if have(b.JobID) > have(a.JobID)+1 {
					t.Fatalf("seed %d: DRF ordering violated: %s has %d while unsatisfied %s has %d",
						seed, b.JobID, have(b.JobID), a.JobID, have(a.JobID))
				}
			}
		}
	}
}

// TestPropertyPermutationDeterminism: every allocator is invariant under
// permutation of its request list.
func TestPropertyPermutationDeterminism(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		r := schedtest.New(seed)
		s := r.Scenario()
		perm := r.Permute(s.Requests)
		for _, p := range sched.Policies() {
			a := sched.Grant(p, s.Pool, s.Requests, s.Held)
			b := sched.Grant(p, s.Pool, perm, s.Held)
			if !allocEqual(a, b) {
				t.Fatalf("seed %d policy %s: permutation changed grants:\n  %s\n  %s",
					seed, p, schedtest.FormatAllocation(a), schedtest.FormatAllocation(b))
			}
		}
		ha := sched.AllocateHierarchy(s.Pool, s.Hierarchy, s.Requests, s.Held)
		hb := sched.AllocateHierarchy(s.Pool, s.Hierarchy, perm, s.Held)
		if !allocEqual(ha.Grants, hb.Grants) || !allocEqual(ha.Evict, hb.Evict) {
			t.Fatalf("seed %d: permutation changed hierarchical result", seed)
		}
	}
}

// TestPropertyRepeatDeterminism: same inputs, byte-identical outputs —
// including the stream simulator end to end.
func TestPropertyRepeatDeterminism(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r1 := schedtest.New(seed)
		r2 := schedtest.New(seed)
		pool1 := r1.Pool()
		pool2 := r2.Pool()
		jobs1 := r1.Stream(30, pool1)
		jobs2 := r2.Stream(30, pool2)
		if !reflect.DeepEqual(jobs1, jobs2) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
		for _, opt := range []sched.StreamOptions{
			{Policy: sched.PolicyFIFO},
			{Policy: sched.PolicySPJF, DeadlineAdmission: true},
		} {
			a := sched.RunStream(pool1, jobs1, opt)
			b := sched.RunStream(pool2, jobs2, opt)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: RunStream not deterministic under %v", seed, opt)
			}
		}
	}
}

func allocEqual(a, b sched.Allocation) bool {
	for id, v := range a {
		if b[id] != v {
			return false
		}
	}
	for id, v := range b {
		if a[id] != v {
			return false
		}
	}
	return true
}
