package experiments

import (
	"context"

	"boedag/internal/evalpool"
)

// runJobs evaluates independent experiment jobs through the parallel
// evaluation engine with the configured concurrency (Config.Workers;
// anything below 2 runs on one worker). Results come back in input
// order, so every experiment's output — and the tables rendered from it
// — is byte-identical at any worker count; only the wall clock and the
// interleaving of observability events vary.
func runJobs[T any](cfg Config, label string, jobs []func() (T, error)) ([]T, error) {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	return evalpool.RunObserved(context.Background(), jobs, evalpool.Options{
		Workers: workers,
		Label:   label,
		Observe: cfg.Observe,
	})
}
