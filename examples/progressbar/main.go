// Progressbar demonstrates the online progress indicator built on the
// state-based cost model — the ParaTimer-style application from the
// paper's introduction. It runs twice:
//
// First live: the simulator streams its observation events through a
// TraceStream while it runs, and a follower folds them into a rolling
// snapshot, re-estimating the remaining time with Algorithm 1 on every
// stage boundary and state transition — no access to the result, only
// to the event stream, exactly what a resource manager would expose.
//
// Then replayed: with the finished run in hand, it snapshots the truth
// at each 10% of completion and compares the prediction against the
// known remaining time.
//
// Run it with:
//
//	go run ./examples/progressbar
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"boedag"
)

func main() {
	spec := boedag.PaperCluster()
	flow := boedag.ParallelFlows("WC+TS",
		boedag.Single(boedag.WordCount(100*boedag.GB)),
		boedag.Single(boedag.TeraSort(100*boedag.GB)))

	// ---- Part 1: live estimation from the event stream ----
	//
	// The live indicator has nothing but the BOE model: no profiles, no
	// completed run. Its estimator must not share the observed stream
	// (estimator tracers emit predicted events that would corrupt the fold).
	live := &boedag.ProgressIndicator{
		Estimator: boedag.NewEstimator(spec, &boedag.BOETimer{
			Model: boedag.NewBOE(spec), TaskStartOverhead: time.Second,
		}, boedag.EstimatorOptions{}),
		Flow: flow,
	}
	stream := boedag.NewTraceStream()
	// Subscribe before the run: the simulator checks for subscribers once
	// at startup and keeps the zero-cost path when there are none.
	points := boedag.FollowProgress(stream, live, boedag.LiveProgressOptions{
		MinInterval: 10 * time.Second, // model time between task-driven updates
	})
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		fmt.Println("live estimates while the simulation runs:")
		for p := range points {
			if p.Err != nil {
				log.Println("live estimate:", p.Err)
				continue
			}
			fmt.Printf("  t=%7.1fs  %5.1f%% done  ~%.0fs remaining\n",
				p.Elapsed.Seconds(), p.PercentComplete, p.PredictedRemaining.Seconds())
		}
	}()

	opt := boedag.WithTracer(boedag.SimOptions{Seed: 1}, stream)
	res, err := boedag.NewSimulator(spec, opt).Run(flow)
	stream.Close() // flushes the tail and terminates the follower
	<-printed
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s ran for %.1fs — replaying it through the progress indicator\n\n",
		flow.Name, res.Makespan.Seconds())

	// ---- Part 2: replay against the truth ----
	//
	// The replay indicator predicts from profiles of the finished run plus
	// the BOE model as fallback — the realistic deployment (historical
	// profiles exist, the model covers the rest).
	timer := &boedag.ProfileTimer{
		Profiles: boedag.CaptureProfiles(res),
		Fallback: &boedag.BOETimer{Model: boedag.NewBOE(spec), TaskStartOverhead: time.Second},
	}
	indicator := &boedag.ProgressIndicator{
		Estimator: boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: boedag.NormalMode}),
		Flow:      flow,
	}

	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	curve, err := boedag.ProgressCurve(indicator, res, fractions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  done   bar                    predicted-left   actual-left   accuracy")
	for _, p := range curve {
		bar := strings.Repeat("█", int(p.PercentComplete/5)) +
			strings.Repeat("·", 20-int(p.PercentComplete/5))
		fmt.Printf("  %5.1f%%  %s  %9.1fs  %11.1fs  %8.1f%%\n",
			p.PercentComplete, bar,
			p.PredictedRemaining.Seconds(), p.ActualRemaining.Seconds(),
			100*p.Accuracy())
	}
}
