package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"boedag/internal/boe"
	"boedag/internal/dag"
	"boedag/internal/metrics"
	"boedag/internal/profile"
	"boedag/internal/sched"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/workload"
)

// SkewRow is one point of the skew-sensitivity study (the paper's
// follow-up work): estimation accuracy per skew mode as the task-size
// coefficient of variation grows.
type SkewRow struct {
	CV       float64
	Makespan time.Duration
	// Accuracy per skew mode, including the Ext-Empirical extension.
	Accuracy map[statemodel.SkewMode]float64
}

// SkewSweep runs WC+TS with the given task-size CVs forced onto every
// job and measures each estimator mode's end-to-end accuracy against the
// simulated truth, profiles captured per run (the Table III
// methodology).
func SkewSweep(cfg Config, cvs []float64) ([]SkewRow, error) {
	for _, cv := range cvs {
		if cv < 0 {
			return nil, fmt.Errorf("experiments: negative skew CV %v", cv)
		}
	}
	jobs := make([]func() (SkewRow, error), len(cvs))
	for i, cv := range cvs {
		cv := cv
		jobs[i] = func() (SkewRow, error) {
			wc := workload.WordCount(cfg.MicroInput)
			ts := workload.TeraSort(cfg.MicroInput)
			wc.SkewCV, ts.SkewCV = cv, cv
			flow := dag.Parallel(fmt.Sprintf("WC+TS cv=%.2f", cv),
				dag.Single(wc), dag.Single(ts))

			res, err := simulator.New(cfg.Spec, cfg.simOptions()).Run(flow)
			if err != nil {
				return SkewRow{}, fmt.Errorf("experiments: skew sweep cv=%v: %w", cv, err)
			}
			timer := &statemodel.ProfileTimer{Profiles: profile.Capture(res)}
			row := SkewRow{
				CV:       cv,
				Makespan: res.Makespan,
				Accuracy: make(map[statemodel.SkewMode]float64, 4),
			}
			for _, mode := range statemodel.AllModes() {
				est := statemodel.New(cfg.Spec, timer, statemodel.Options{
					Mode:              mode,
					JobSubmitOverhead: cfg.JobSubmitOverhead,
				})
				plan, err := est.Estimate(flow)
				if err != nil {
					return SkewRow{}, err
				}
				row.Accuracy[mode] = metrics.Accuracy(plan.Makespan, res.Makespan)
			}
			return row, nil
		}
	}
	return runJobs(cfg, "skew-sweep", jobs)
}

// RenderSkewSweep prints the sensitivity table.
func RenderSkewSweep(w io.Writer, rows []SkewRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "task-size CV\tmakespan")
	for _, m := range statemodel.AllModes() {
		fmt.Fprintf(tw, "\t%s", m)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.1fs", r.CV, r.Makespan.Seconds())
		for _, m := range statemodel.AllModes() {
			fmt.Fprintf(tw, "\t%.2f%%", 100*r.Accuracy[m])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// FailureRow is one point of the fault-tolerance study: estimation
// accuracy as the task-attempt failure rate grows, with and without the
// estimator's retry correction.
type FailureRow struct {
	FailureProb float64
	Makespan    time.Duration
	Retries     int
	// Corrected and Uncorrected are the end-to-end accuracies of the
	// estimator with and without the (1 + p/2) retry inflation.
	Corrected, Uncorrected float64
}

// FailureStudy injects task-attempt failures into the WC+TS run and
// measures how much the estimator's analytic retry correction recovers.
func FailureStudy(cfg Config, probs []float64) ([]FailureRow, error) {
	flow := dag.Parallel("WC+TS",
		dag.Single(workload.WordCount(cfg.MicroInput)),
		dag.Single(workload.TeraSort(cfg.MicroInput)))
	for _, p := range probs {
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("experiments: failure probability %v outside [0,1)", p)
		}
	}
	// Profiles come from a clean (p=0) run: historical profiles do not
	// know about today's failures, which is the realistic setting. The
	// clean run is identical for every probability, so it simulates once
	// and every probe shares its timer (ProfileTimer is read-only).
	clean, err := simulator.New(cfg.Spec, cfg.simOptions()).Run(flow)
	if err != nil {
		return nil, err
	}
	timer := &statemodel.ProfileTimer{Profiles: profile.Capture(clean)}

	jobs := make([]func() (FailureRow, error), len(probs))
	for i, p := range probs {
		p := p
		jobs[i] = func() (FailureRow, error) {
			opts := cfg.simOptions()
			opts.TaskFailureProb = p
			res, err := simulator.New(cfg.Spec, opts).Run(flow)
			if err != nil {
				return FailureRow{}, fmt.Errorf("experiments: failure study p=%v: %w", p, err)
			}
			row := FailureRow{FailureProb: p, Makespan: res.Makespan, Retries: res.TotalRetries()}
			for _, correct := range []bool{true, false} {
				o := statemodel.Options{
					Mode:              statemodel.NormalMode,
					JobSubmitOverhead: cfg.JobSubmitOverhead,
				}
				if correct {
					o.TaskFailureProb = p
				}
				plan, err := statemodel.New(cfg.Spec, timer, o).Estimate(flow)
				if err != nil {
					return FailureRow{}, err
				}
				acc := metrics.Accuracy(plan.Makespan, res.Makespan)
				if correct {
					row.Corrected = acc
				} else {
					row.Uncorrected = acc
				}
			}
			return row, nil
		}
	}
	return runJobs(cfg, "failure-study", jobs)
}

// RenderFailureStudy prints the fault-tolerance table.
func RenderFailureStudy(w io.Writer, rows []FailureRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "failure prob\tmakespan\tretries\taccuracy (corrected)\taccuracy (uncorrected)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.1fs\t%d\t%.2f%%\t%.2f%%\n",
			r.FailureProb, r.Makespan.Seconds(), r.Retries,
			100*r.Corrected, 100*r.Uncorrected)
	}
	tw.Flush()
}

// PolicyRow is one scheduler discipline's outcome in the policy study.
type PolicyRow struct {
	Policy sched.Policy
	// Makespan is the simulated WC+TS makespan under the policy.
	Makespan time.Duration
	// Accuracy is the estimator's end-to-end accuracy when it models the
	// same policy.
	Accuracy float64
	// CrossAccuracy is the accuracy when the estimator wrongly assumes
	// DRF — the penalty for mismodelling the scheduler.
	CrossAccuracy float64
}

// PolicyStudy runs WC+TS under every scheduler discipline and measures
// (a) how the discipline changes the workload's makespan and (b) how
// much estimation accuracy depends on modelling the right discipline.
func PolicyStudy(cfg Config) ([]PolicyRow, error) {
	flow := dag.Parallel("WC+TS",
		dag.Single(workload.WordCount(cfg.MicroInput)),
		dag.Single(workload.TeraSort(cfg.MicroInput)))
	policies := sched.Policies()
	jobs := make([]func() (PolicyRow, error), len(policies))
	for i, pol := range policies {
		pol := pol
		jobs[i] = func() (PolicyRow, error) {
			opts := cfg.simOptions()
			opts.Policy = pol
			res, err := simulator.New(cfg.Spec, opts).Run(flow)
			if err != nil {
				return PolicyRow{}, fmt.Errorf("experiments: policy %s: %w", pol, err)
			}
			timer := &statemodel.ProfileTimer{Profiles: profile.Capture(res)}
			row := PolicyRow{Policy: pol, Makespan: res.Makespan}
			for _, assume := range []sched.Policy{pol, sched.PolicyDRF} {
				est := statemodel.New(cfg.Spec, timer, statemodel.Options{
					Mode:              statemodel.NormalMode,
					JobSubmitOverhead: cfg.JobSubmitOverhead,
					Policy:            assume,
				})
				plan, err := est.Estimate(flow)
				if err != nil {
					return PolicyRow{}, err
				}
				acc := metrics.Accuracy(plan.Makespan, res.Makespan)
				if assume == pol {
					row.Accuracy = acc
				}
				if assume == sched.PolicyDRF {
					row.CrossAccuracy = acc
				}
			}
			return row, nil
		}
	}
	return runJobs(cfg, "policy-study", jobs)
}

// RenderPolicyStudy prints the scheduler study.
func RenderPolicyStudy(w io.Writer, rows []PolicyRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tmakespan\taccuracy (matched)\taccuracy (assuming DRF)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1fs\t%.2f%%\t%.2f%%\n",
			r.Policy, r.Makespan.Seconds(), 100*r.Accuracy, 100*r.CrossAccuracy)
	}
	tw.Flush()
}

// NodeAwareRow compares cluster-aggregate against per-node simulation
// for one workflow, and the purely model-driven estimator against both.
type NodeAwareRow struct {
	Label string
	// Aggregate and PerNode are the two simulators' makespans.
	Aggregate, PerNode time.Duration
	// AccAggregate and AccPerNode are the BOE estimator's accuracies
	// against each truth (the estimator always assumes aggregate pools).
	AccAggregate, AccPerNode float64
}

// NodeAwareStudy quantifies the aggregate-pool assumption: the BOE model
// (like the paper's) treats the cluster as one pool per resource class;
// the node-aware simulator gives every node private CPU/disk/NIC pools
// and places tasks least-loaded. The residual between the two columns is
// the modelling error attributable to placement imbalance.
func NodeAwareStudy(cfg Config, names []string) ([]NodeAwareRow, error) {
	jobs := make([]func() (NodeAwareRow, error), len(names))
	for i, name := range names {
		name := name
		jobs[i] = func() (NodeAwareRow, error) {
			flow, err := BuildNamed(name, cfg)
			if err != nil {
				return NodeAwareRow{}, err
			}
			agg, err := simulator.New(cfg.Spec, cfg.simOptions()).Run(flow)
			if err != nil {
				return NodeAwareRow{}, fmt.Errorf("experiments: node study %s: %w", name, err)
			}
			opts := cfg.simOptions()
			opts.NodeAware = true
			node, err := simulator.New(cfg.Spec, opts).Run(flow)
			if err != nil {
				return NodeAwareRow{}, fmt.Errorf("experiments: node study %s (per-node): %w", name, err)
			}
			timer := &statemodel.BOETimer{
				Model:             boe.New(cfg.Spec),
				TaskStartOverhead: cfg.TaskStartOverhead,
			}
			plan, err := statemodel.New(cfg.Spec, timer, statemodel.Options{
				Mode:              statemodel.NormalMode,
				JobSubmitOverhead: cfg.JobSubmitOverhead,
			}).Estimate(flow)
			if err != nil {
				return NodeAwareRow{}, err
			}
			return NodeAwareRow{
				Label:        flow.Name,
				Aggregate:    agg.Makespan,
				PerNode:      node.Makespan,
				AccAggregate: metrics.Accuracy(plan.Makespan, agg.Makespan),
				AccPerNode:   metrics.Accuracy(plan.Makespan, node.Makespan),
			}, nil
		}
	}
	return runJobs(cfg, "node-study", jobs)
}

// RenderNodeAwareStudy prints the node-awareness comparison.
func RenderNodeAwareStudy(w io.Writer, rows []NodeAwareRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workflow\taggregate sim\tper-node sim\tBOE acc (aggregate)\tBOE acc (per-node)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1fs\t%.1fs\t%.2f%%\t%.2f%%\n",
			r.Label, r.Aggregate.Seconds(), r.PerNode.Seconds(),
			100*r.AccAggregate, 100*r.AccPerNode)
	}
	tw.Flush()
}
