// Package fairshare implements progressive-filling max-min fair
// allocation of preemptable resources among groups of identical tasks.
// It is the resource usage law (paper §III-A2) that both the BOE cost
// model and the ground-truth simulator obey: within a computation stage,
// pipelined tasks consume resources uniformly, each resource is shared
// max-min fairly by the tasks demanding it, and a task's progress rate is
// bound by its bottleneck operation.
//
// The allocator answers: given resource capacities and task groups — each
// with a demand vector (bytes of each resource consumed per unit of task
// progress) and a per-task rate cap — what progress rate does each task
// sustain, and which resource binds it?
package fairshare

import (
	"math"

	"boedag/internal/cluster"
	"boedag/internal/units"
)

// Consumer is a group of Count identical tasks. Demand[r] is the bytes of
// resource r the task consumes per unit of progress; a task progressing at
// rate x uses Demand[r]·x of resource r. MaxRate caps a single task's
// progress independent of contention (e.g. one CPU core's worth); zero
// means uncapped. CapResource names the resource responsible for MaxRate,
// for bottleneck attribution.
type Consumer struct {
	Count       int
	Demand      [cluster.NumResources]float64
	MaxRate     float64
	CapResource cluster.Resource
}

// Result reports the outcome of an allocation.
type Result struct {
	// Rate[i] is the per-task progress rate of consumer i.
	Rate []float64
	// Bottleneck[i] is the resource that froze consumer i: the saturated
	// shared resource, or the consumer's CapResource when its own per-task
	// cap bound first.
	Bottleneck []cluster.Resource
	// Utilization[r] is the fraction of resource r's capacity in use.
	Utilization [cluster.NumResources]float64
	// Bound[i][r] is the progress-rate ceiling resource r alone imposes on
	// consumer i — the paper's per-operation t_X = D_X/(μ_X(Δ)·θ_X)
	// denominators. +Inf where r is not demanded; a consumer's rate is the
	// minimum of its bounds and its own cap.
	Bound [][cluster.NumResources]float64
}

// Allocate computes the fair-queueing equilibrium of usage-based max-min
// sharing. Each resource is shared max-min *in usage* among the tasks
// demanding it: a task bound elsewhere consumes only what its progress
// needs, releasing the rest — exactly how an OS scheduler treats an
// I/O-bound thread's tiny CPU slice, and the mechanism behind the paper's
// Figure 1 (a network-bound shuffle does not drag on a CPU-bound map's
// cores).
//
// The equilibrium satisfies, for every consumer i with finite rate not at
// its own cap: there is a bottleneck resource r where i's per-task usage
// equals the resource's water-fill level — the largest per-task usage of
// any consumer on r — and r is fully utilized. It is computed by
// Gauss-Seidel iteration: each resource water-fills usage among its
// demanders, where every demander brings the rate ceiling its *other*
// resources (and per-task cap) impose; ceilings and levels are iterated
// to a fixed point.
//
// Capacity entries that are zero mean "resource absent": any demand on an
// absent resource pins the consumer to rate zero.
func Allocate(capacity [cluster.NumResources]units.Rate, consumers []Consumer) Result {
	var a Arena
	return *a.Allocate(capacity, consumers)
}

// Arena holds an allocation's working buffers for reuse across calls —
// the hot path of repeated solves (the estimator calls an allocation per
// task-time solve). The Result returned by its methods aliases the arena
// and is only valid until the next call; the numbers are bit-identical
// to the package-level functions', which delegate here with a fresh
// arena.
type Arena struct {
	res  Result
	dead []bool
	ds   []demander
	srt  sortScratch
}

// grow resizes the result buffers for n consumers and clears the fields
// that are not unconditionally rewritten below.
func (a *Arena) grow(n int) *Result {
	res := &a.res
	if cap(res.Rate) < n {
		res.Rate = make([]float64, n)
		res.Bottleneck = make([]cluster.Resource, n)
		res.Bound = make([][cluster.NumResources]float64, n)
		a.dead = make([]bool, n)
	}
	res.Rate = res.Rate[:n]
	res.Bottleneck = res.Bottleneck[:n]
	res.Bound = res.Bound[:n]
	a.dead = a.dead[:n]
	res.Utilization = [cluster.NumResources]float64{}
	return res
}

// Allocate is the arena variant of the package-level Allocate.
func (a *Arena) Allocate(capacity [cluster.NumResources]units.Rate, consumers []Consumer) *Result {
	n := len(consumers)
	res := a.grow(n)

	// bound[i][r] is the rate ceiling resource r imposes on consumer i
	// (+Inf when r is not demanded or not yet constraining).
	bound := res.Bound
	dead := a.dead // demands an absent resource, or empty group
	for i, c := range consumers {
		res.Rate[i] = 0
		res.Bottleneck[i] = c.CapResource
		dead[i] = false
		for r := 0; r < cluster.NumResources; r++ {
			bound[i][r] = math.Inf(1)
		}
		if c.Count <= 0 {
			dead[i] = true
			continue
		}
		for r := 0; r < cluster.NumResources; r++ {
			if c.Demand[r] > 0 && float64(capacity[r]) <= 0 {
				dead[i] = true
				res.Bottleneck[i] = cluster.Resource(r)
				break
			}
		}
	}

	// ceiling(i, excluding r): the rate consumer i could sustain if
	// resource r were infinite.
	ceiling := func(i, excl int) float64 {
		c := consumers[i]
		lim := math.Inf(1)
		if c.MaxRate > 0 {
			lim = c.MaxRate
		}
		for r := 0; r < cluster.NumResources; r++ {
			if r == excl || c.Demand[r] <= 0 {
				continue
			}
			if b := bound[i][r]; b < lim {
				lim = b
			}
		}
		return lim
	}

	const maxIters = 200
	ds := a.ds[:0] // reused across iterations and calls: hot path
	for iter := 0; iter < maxIters; iter++ {
		change := 0.0
		for r := 0; r < cluster.NumResources; r++ {
			cap := float64(capacity[r])
			if cap <= 0 {
				continue
			}
			ds = ds[:0]
			for i, c := range consumers {
				if dead[i] || c.Demand[r] <= 0 {
					continue
				}
				ds = append(ds, demander{i, c.Demand[r] * ceiling(i, r)})
			}
			if len(ds) == 0 {
				continue
			}
			level := waterfill(cap, consumers, ds, &a.srt)
			for _, d := range ds {
				nb := level / consumers[d.idx].Demand[r]
				old := bound[d.idx][r]
				if diff := relDiff(nb, old); diff > change {
					change = diff
				}
				bound[d.idx][r] = nb
			}
		}
		if change < 1e-10 {
			break
		}
	}

	a.ds = ds
	for i, c := range consumers {
		if dead[i] {
			res.Rate[i] = 0
			continue
		}
		rate := math.Inf(1)
		bn := c.CapResource
		if c.MaxRate > 0 {
			rate = c.MaxRate
			res.Bound[i][cluster.CPU] = math.Min(res.Bound[i][cluster.CPU], c.MaxRate)
		}
		for r := 0; r < cluster.NumResources; r++ {
			if c.Demand[r] <= 0 {
				continue
			}
			if b := bound[i][r]; b < rate {
				rate, bn = b, cluster.Resource(r)
			}
		}
		res.Rate[i] = rate
		res.Bottleneck[i] = bn
	}

	for r := 0; r < cluster.NumResources; r++ {
		if capacity[r] <= 0 {
			continue
		}
		var use float64
		for i, c := range consumers {
			if res.Rate[i] > 0 && !math.IsInf(res.Rate[i], 1) {
				use += float64(c.Count) * c.Demand[r] * res.Rate[i]
			}
		}
		res.Utilization[r] = use / float64(capacity[r])
	}
	return res
}

// waterfill finds the usage level u such that every demander receives
// min(desired, u) per task and the resource is exactly full — or +Inf
// when even the full desires fit. Demanders are processed in ascending
// desired order, peeling off those satisfied below the level.
func waterfill(capacity float64, consumers []Consumer, ds []demander, srt *sortScratch) float64 {
	sortDemanders(ds, srt)
	remaining := capacity
	tasks := 0
	for _, d := range ds {
		tasks += consumers[d.idx].Count
	}
	for _, d := range ds {
		cnt := float64(consumers[d.idx].Count)
		level := remaining / float64(tasks)
		if math.IsInf(d.desired, 1) || d.desired > level {
			return level
		}
		remaining -= cnt * d.desired
		tasks -= consumers[d.idx].Count
		if tasks == 0 {
			break
		}
	}
	return math.Inf(1) // all desires fit: resource not contended
}

// demander pairs a consumer index with its desired per-task usage.
type demander struct {
	idx     int
	desired float64
}

// sortScratch holds one sort's working buffers for reuse across calls.
type sortScratch struct {
	buf  []demander
	runs []int
}

// sortDemanders stably sorts ds ascending by desired. Stability keeps
// ties in consumer-index order (the order ds is built in), which pins
// the float evaluation order of the fill loop; any stable sort
// therefore yields the same sequence. It is a natural-run merge sort
// (hand-rolled: sort.SliceStable's reflective swapper would allocate on
// every call of this hot path): large DAG states put hundreds of
// groups on one resource, but templated jobs produce equal desired
// values in long index-contiguous runs, so detecting non-decreasing
// runs first makes the common case near-linear instead of the
// quadratic insertion sort that used to dominate estimator profiles.
func sortDemanders(ds []demander, sc *sortScratch) {
	n := len(ds)
	if n < 16 {
		for i := 1; i < n; i++ {
			for k := i; k > 0 && ds[k].desired < ds[k-1].desired; k-- {
				ds[k], ds[k-1] = ds[k-1], ds[k]
			}
		}
		return
	}

	// Run boundaries: runs[k]..runs[k+1] is non-decreasing (equal values
	// extend a run, so an already-sorted or few-classes input is cheap).
	runs := sc.runs[:0]
	runs = append(runs, 0)
	for i := 1; i < n; i++ {
		if ds[i].desired < ds[i-1].desired {
			runs = append(runs, i)
		}
	}
	runs = append(runs, n)
	sc.runs = runs
	if len(runs) == 2 {
		return // single run: already sorted
	}

	if cap(sc.buf) < n {
		sc.buf = make([]demander, n)
	}
	src, dst := ds, sc.buf[:n]
	for len(runs) > 2 {
		w := 0
		for k := 0; k+2 < len(runs); k += 2 {
			lo, mid, hi := runs[k], runs[k+1], runs[k+2]
			i, j := lo, mid
			for p := lo; p < hi; p++ {
				// Strict < on the right keeps equal keys left-first: stable.
				if j >= hi || (i < mid && !(src[j].desired < src[i].desired)) {
					dst[p] = src[i]
					i++
				} else {
					dst[p] = src[j]
					j++
				}
			}
			runs[w] = lo
			w++
		}
		if len(runs)%2 == 0 { // odd number of runs: last one carries over
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			copy(dst[lo:hi], src[lo:hi])
			runs[w] = lo
			w++
		}
		runs[w] = n
		runs = runs[:w+1]
		src, dst = dst, src
	}
	if &src[0] != &ds[0] {
		copy(ds, src)
	}
}

func relDiff(a, b float64) float64 {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 0
	}
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return 1
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// EqualSplit is the naive μ(Δ)=1/Δ allocation used as an ablation
// baseline: each resource is split evenly among every task that demands
// it, regardless of whether the task can use its share. A task's rate is
// then the minimum over its demanded resources of share/demand, further
// clamped by its per-task cap.
func EqualSplit(capacity [cluster.NumResources]units.Rate, consumers []Consumer) Result {
	var a Arena
	return *a.EqualSplit(capacity, consumers)
}

// EqualSplit is the arena variant of the package-level EqualSplit.
func (a *Arena) EqualSplit(capacity [cluster.NumResources]units.Rate, consumers []Consumer) *Result {
	n := len(consumers)
	res := a.grow(n)
	var users [cluster.NumResources]int
	for _, c := range consumers {
		for r := 0; r < cluster.NumResources; r++ {
			if c.Demand[r] > 0 {
				users[r] += c.Count
			}
		}
	}
	for i, c := range consumers {
		res.Rate[i] = 0
		res.Bottleneck[i] = 0
		for r := range res.Bound[i] {
			res.Bound[i][r] = math.Inf(1)
		}
		if c.Count <= 0 {
			continue
		}
		rate := math.Inf(1)
		bottleneck := c.CapResource
		if c.MaxRate > 0 {
			rate = c.MaxRate
			res.Bound[i][cluster.CPU] = c.MaxRate
		}
		for r := 0; r < cluster.NumResources; r++ {
			if c.Demand[r] <= 0 {
				continue
			}
			if capacity[r] <= 0 {
				rate, bottleneck = 0, cluster.Resource(r)
				res.Bound[i][r] = 0
				break
			}
			share := float64(capacity[r]) / float64(users[r])
			v := share / c.Demand[r]
			res.Bound[i][r] = math.Min(res.Bound[i][r], v)
			if v < rate {
				rate, bottleneck = v, cluster.Resource(r)
			}
		}
		if math.IsInf(rate, 1) {
			rate = 0
		}
		res.Rate[i] = rate
		res.Bottleneck[i] = bottleneck
	}
	for r := 0; r < cluster.NumResources; r++ {
		if capacity[r] <= 0 {
			continue
		}
		var use float64
		for i, c := range consumers {
			use += float64(c.Count) * c.Demand[r] * res.Rate[i]
		}
		res.Utilization[r] = use / float64(capacity[r])
	}
	return res
}
