package perfledger

import (
	"path/filepath"
	"strings"
	"testing"
)

// validLedger is a fully populated, internally consistent ledger.
func validLedger() Ledger {
	return Ledger{
		Schema:    SchemaVersion,
		Label:     "test",
		CreatedAt: "2026-08-08T00:00:00Z",
		Source:    "boedagbench+go-bench",
		Build:     CurrentBuild(),
		Service: &ServiceRun{
			Target:      "in-process",
			Mode:        "closed",
			Seed:        1,
			Workflows:   []string{"wc", "ts"},
			SizesGB:     []float64{1, 2},
			Connections: 4,
			WarmupS:     0.5,
			DurationS:   2,
			Requests:    1000, Errors: 3,
			ThroughputRPS: 500,
			Latency: LatencySummary{
				Count: 1000, MeanS: 0.004,
				P50S: 0.003, P90S: 0.006, P99S: 0.012, MaxS: 0.05,
			},
			StatusCounts: map[string]int64{"200": 997, "503": 3},
			MixCounts:    map[string]int64{"wc": 500, "ts": 500},
		},
		Benchmarks: []Benchmark{
			{Name: "BenchmarkEstimatorAllocs", Iterations: 100,
				NsPerOp: 1.2e7, AllocsPerOp: 1045, BytesPerOp: 9e5},
			{Name: "BenchmarkFigure4BOEExample", Iterations: 100000,
				NsPerOp: 900, AllocsPerOp: 0},
		},
	}
}

func TestCurrentBuild(t *testing.T) {
	b := CurrentBuild()
	if b.GoVersion == "" || b.GOOS == "" || b.GOARCH == "" {
		t.Errorf("incomplete build info: %+v", b)
	}
	if b.GOMAXPROCS < 1 || b.NumCPU < 1 {
		t.Errorf("procs = %d/%d, want ≥ 1", b.GOMAXPROCS, b.NumCPU)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := validLedger()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != want.Label || got.Source != want.Source {
		t.Errorf("label/source round-trip: %q/%q", got.Label, got.Source)
	}
	if got.Service == nil || got.Service.Requests != 1000 ||
		got.Service.Latency.P99S != 0.012 {
		t.Errorf("service round-trip: %+v", got.Service)
	}
	if len(got.Benchmarks) != 2 || got.Benchmarks[0].AllocsPerOp != 1045 {
		t.Errorf("benchmarks round-trip: %+v", got.Benchmarks)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader(`{"schema":1,"sourze":"x"}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Ledger){
		"wrong schema":       func(l *Ledger) { l.Schema = 99 },
		"missing source":     func(l *Ledger) { l.Source = "" },
		"missing go version": func(l *Ledger) { l.Build.GoVersion = "" },
		"empty ledger":       func(l *Ledger) { l.Service = nil; l.Benchmarks = nil },
		"bad mode":           func(l *Ledger) { l.Service.Mode = "sideways" },
		"zero duration":      func(l *Ledger) { l.Service.DurationS = 0 },
		"errors > requests":  func(l *Ledger) { l.Service.Errors = l.Service.Requests + 1 },
		"unordered percentiles": func(l *Ledger) {
			l.Service.Latency.P50S = l.Service.Latency.P99S * 2
		},
		"no workflows":        func(l *Ledger) { l.Service.Workflows = nil },
		"unnamed benchmark":   func(l *Ledger) { l.Benchmarks[0].Name = "" },
		"duplicate benchmark": func(l *Ledger) { l.Benchmarks[1].Name = l.Benchmarks[0].Name },
		"zero iterations":     func(l *Ledger) { l.Benchmarks[0].Iterations = 0 },
	}
	for name, mutate := range cases {
		l := validLedger()
		mutate(&l)
		if err := Validate(l); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	if err := Validate(validLedger()); err != nil {
		t.Errorf("valid ledger rejected: %v", err)
	}
}

// TestCompareFlagsDoubledLatency is the acceptance property of the
// regression gate: a synthetic 2× latency regression must be flagged at
// any reasonable tolerance.
func TestCompareFlagsDoubledLatency(t *testing.T) {
	base := validLedger()
	fresh := validLedger()
	fresh.Service.Latency.P50S *= 2
	fresh.Service.Latency.P90S *= 2
	fresh.Service.Latency.P99S *= 2
	fresh.Service.ThroughputRPS /= 2
	fresh.Benchmarks[0].NsPerOp *= 2

	deltas := Compare(base, fresh, 0.75)
	regs := Regressions(deltas)
	wantRegressed := map[string]bool{
		"service.throughput_rps":                   true,
		"service.latency.p50_s":                    true,
		"service.latency.p90_s":                    true,
		"service.latency.p99_s":                    true,
		"bench.BenchmarkEstimatorAllocs.ns_per_op": true,
	}
	got := make(map[string]bool, len(regs))
	for _, d := range regs {
		got[d.Name] = true
	}
	for name := range wantRegressed {
		if !got[name] {
			t.Errorf("2× regression on %s not flagged", name)
		}
	}
	// Unchanged quantities must not be flagged.
	for _, d := range deltas {
		if d.Regressed && !wantRegressed[d.Name] {
			t.Errorf("unchanged quantity %s flagged as regression (ratio %.2f)", d.Name, d.Ratio)
		}
	}
}

func TestCompareWithinToleranceIsClean(t *testing.T) {
	base := validLedger()
	fresh := validLedger()
	fresh.Service.Latency.P99S *= 1.2 // inside a 30% band
	fresh.Benchmarks[0].NsPerOp *= 0.9
	if regs := Regressions(Compare(base, fresh, 0.3)); len(regs) != 0 {
		t.Errorf("in-band drift flagged: %+v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := validLedger()
	fresh := validLedger()
	fresh.Benchmarks = fresh.Benchmarks[:1]
	regs := Regressions(Compare(base, fresh, 0.5))
	found := false
	for _, d := range regs {
		if d.Missing && d.Name == "bench.BenchmarkFigure4BOEExample" {
			found = true
		}
	}
	if !found {
		t.Errorf("vanished benchmark not reported as regression: %+v", regs)
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: boedag
cpu: whatever
BenchmarkEstimatorAllocs-8   	     100	  11181844 ns/op	  345678 B/op	    1045 allocs/op
BenchmarkFigure6Sweep-8      	       1	1234567890 ns/op	      85.0 BOE-accuracy-%
BenchmarkEstimatorAllocs-8   	     300	  11000000 ns/op	  345678 B/op	    1045 allocs/op
PASS
ok  	boedag	2.492s
`
	benches, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(benches), benches)
	}
	ea := benches[0]
	if ea.Name != "BenchmarkEstimatorAllocs" {
		t.Errorf("name = %q (suffix not stripped?)", ea.Name)
	}
	if ea.Iterations != 400 {
		t.Errorf("iterations = %d, want 400 (two runs merged)", ea.Iterations)
	}
	// Weighted mean of 11181844 (×100) and 11000000 (×300).
	wantNs := (11181844.0*100 + 11000000.0*300) / 400
	if ea.NsPerOp != wantNs {
		t.Errorf("ns/op = %v, want weighted mean %v", ea.NsPerOp, wantNs)
	}
	if ea.AllocsPerOp != 1045 || ea.BytesPerOp != 345678 {
		t.Errorf("allocs/bytes = %v/%v", ea.AllocsPerOp, ea.BytesPerOp)
	}
	if got := benches[1].Metrics["BOE-accuracy-%"]; got != 85.0 {
		t.Errorf("custom metric = %v, want 85", got)
	}
}

func TestParseGoBenchErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":          "PASS\nok boedag 1s\n",
		"bad iterations": "BenchmarkX-8 zero 5 ns/op\n",
		"odd pairing":    "BenchmarkX-8 10 5 ns/op 3\n",
		"bad value":      "BenchmarkX-8 10 five ns/op\n",
	} {
		if _, err := ParseGoBench(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}
