package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/sched"
)

// This file is the scheduling side of the daemon's wire contract:
// POST /v1/schedule replays a client-supplied arrival stream through the
// estimator-in-the-loop scheduler (internal/sched.RunStream) — flat
// FIFO/DRF/Fair/SPJF or hierarchical queues with quotas, weights, and
// preemptive reclaim — and answers with per-job fates plus the aggregate
// policy metrics. Like the estimate endpoints, the response bytes are
// deterministic and pinned by goldens.

// maxScheduleJobs bounds one request's arrival stream.
const maxScheduleJobs = 10000

// ScheduleJobBody is one arriving job on the wire.
type ScheduleJobBody struct {
	// ID identifies the job (unique per request).
	ID string `json:"id"`
	// SubmitS is the arrival time in seconds.
	SubmitS float64 `json:"submit_s"`
	// WorkSlotS is the total demand in slot-seconds.
	WorkSlotS float64 `json:"work_slot_s"`
	// MaxParallelism caps the slots the job can use at once (0 = the
	// whole pool).
	MaxParallelism int `json:"max_parallelism,omitempty"`
	// MemoryMB and VCores are the per-container shape (DRF's axes).
	MemoryMB int `json:"memory_mb,omitempty"`
	VCores   int `json:"vcores,omitempty"`
	// PredictedS is the estimator's standalone makespan in seconds; the
	// prediction-guided policies order and admit by it (0 = none).
	PredictedS float64 `json:"predicted_s,omitempty"`
	// DeadlineS is the absolute SLO completion time in seconds (0 = none).
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// Queue names the job's hierarchy queue ("" = root).
	Queue string `json:"queue,omitempty"`
}

// QueueLimitBody is a capacity triple on the wire.
type QueueLimitBody struct {
	MemoryMB int `json:"memory_mb,omitempty"`
	VCores   int `json:"vcores,omitempty"`
	Slots    int `json:"slots,omitempty"`
}

// QueueSpecBody declares one hierarchy queue on the wire.
type QueueSpecBody struct {
	Name   string         `json:"name"`
	Parent string         `json:"parent,omitempty"`
	Quota  QueueLimitBody `json:"quota,omitempty"`
	Weight float64        `json:"weight,omitempty"`
	Limit  QueueLimitBody `json:"limit,omitempty"`
}

// ScheduleOptions tune one schedule replay.
type ScheduleOptions struct {
	// Policy orders the slot grants: "drf" (default), "fifo", "fair",
	// "spjf".
	Policy string `json:"policy,omitempty"`
	// DeadlineAdmission enables predictive admission control: jobs whose
	// predicted completion misses their deadline are rejected at submit
	// with a 503-style reason instead of admitted to miss.
	DeadlineAdmission bool `json:"deadline_admission,omitempty"`
	// Slots overrides the pool's slot count (0 = the cluster's total).
	Slots int `json:"slots,omitempty"`
	// TimeoutMS tightens this request's deadline below the server ceiling.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ScheduleRequest is the body of POST /v1/schedule.
type ScheduleRequest struct {
	// Jobs is the arrival stream (any submit order; the replay sorts).
	Jobs []ScheduleJobBody `json:"jobs"`
	// Queues declares the scheduling hierarchy; empty = flat scheduling.
	Queues []QueueSpecBody `json:"queues,omitempty"`
	// Cluster overrides the serving cluster spec for this request, in the
	// calibrate -spec-out JSON format.
	Cluster json.RawMessage `json:"cluster,omitempty"`
	// Options tune the replay.
	Options ScheduleOptions `json:"options,omitempty"`

	// Parsed forms, populated by validate.
	spec      *cluster.Spec
	policy    sched.Policy
	hierarchy *sched.Hierarchy
}

// ScheduleJobResultBody is one job's fate on the wire.
type ScheduleJobResultBody struct {
	ID      string  `json:"id"`
	SubmitS float64 `json:"submit_s"`
	// FinishS is the completion time; for rejected jobs it is the
	// rejection instant, and -1 when the job never completed (starved
	// with no future capacity).
	FinishS     float64 `json:"finish_s"`
	StandaloneS float64 `json:"standalone_s"`
	Slowdown    float64 `json:"slowdown,omitempty"`
	Rejected    bool    `json:"rejected,omitempty"`
	Reason      string  `json:"reason,omitempty"`
	Detail      string  `json:"detail,omitempty"`
	Missed      bool    `json:"missed,omitempty"`
	Preemptions int     `json:"preemptions,omitempty"`
}

// RejectionBody is one refused admission on the wire: the 503-style
// reason the deadline-aware policy gives instead of admitting work it
// predicts will miss its SLO.
type RejectionBody struct {
	JobID  string `json:"job_id"`
	Code   int    `json:"code"`
	Reason string `json:"reason"`
	Detail string `json:"detail"`
}

// ScheduleResponse is the 200 body of /v1/schedule. Jobs come back in
// submit order.
type ScheduleResponse struct {
	Policy       string                  `json:"policy"`
	MakespanS    float64                 `json:"makespan_s"`
	P95Slowdown  float64                 `json:"p95_slowdown"`
	MeanSlowdown float64                 `json:"mean_slowdown"`
	SLOMissRate  float64                 `json:"slo_miss_rate"`
	Admitted     int                     `json:"admitted"`
	Rejected     int                     `json:"rejected"`
	Missed       int                     `json:"missed"`
	Preemptions  int                     `json:"preemptions"`
	Jobs         []ScheduleJobResultBody `json:"jobs"`
	Rejections   []RejectionBody         `json:"rejections,omitempty"`
}

// DecodeScheduleRequest strictly parses one schedule request: unknown
// fields and trailing bytes are rejected, the queue tree is built and
// validated, and every job is range-checked. It never panics on any
// input (FuzzDecodeScheduleRequest holds that line) and every failure is
// a typed *APIError.
func DecodeScheduleRequest(r io.Reader) (*ScheduleRequest, *APIError) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ScheduleRequest
	if err := dec.Decode(&req); err != nil {
		return nil, decodeError(err)
	}
	if err := trailingData(dec); err != nil {
		return nil, err
	}
	if apiErr := req.validate(); apiErr != nil {
		return nil, apiErr
	}
	return &req, nil
}

// validate range-checks the request and builds its parsed forms.
func (req *ScheduleRequest) validate() *APIError {
	if len(req.Jobs) == 0 {
		return badRequest("schedule needs at least one job")
	}
	if len(req.Jobs) > maxScheduleJobs {
		return badRequest("stream holds %d jobs, limit is %d", len(req.Jobs), maxScheduleJobs)
	}
	if len(req.Cluster) > 0 && !bytes.Equal(req.Cluster, []byte("null")) {
		spec, err := cluster.ReadSpec(bytes.NewReader(req.Cluster))
		if err != nil {
			return badRequest("cluster: %v", err)
		}
		req.spec = &spec
	}
	pol, err := sched.ParsePolicy(req.Options.Policy)
	if req.Options.Policy == "" {
		pol = sched.PolicyDRF
	} else if err != nil {
		return badRequest("%v", err)
	}
	req.policy = pol
	if req.Options.Slots < 0 {
		return badRequest("slots must be non-negative")
	}
	if req.Options.TimeoutMS < 0 {
		return badRequest("timeout_ms must be non-negative")
	}
	queues := map[string]bool{}
	if len(req.Queues) > 0 {
		specs := make([]sched.QueueSpec, len(req.Queues))
		for i, q := range req.Queues {
			specs[i] = sched.QueueSpec{
				Name:   q.Name,
				Parent: q.Parent,
				Quota:  sched.QueueLimit{MemoryMB: q.Quota.MemoryMB, VCores: q.Quota.VCores, Slots: q.Quota.Slots},
				Weight: q.Weight,
				Limit:  sched.QueueLimit{MemoryMB: q.Limit.MemoryMB, VCores: q.Limit.VCores, Slots: q.Limit.Slots},
			}
			queues[q.Name] = true
		}
		h, err := sched.NewHierarchy(specs)
		if err != nil {
			return badRequest("queues: %v", err)
		}
		req.hierarchy = h
	}
	seen := make(map[string]bool, len(req.Jobs))
	for i, j := range req.Jobs {
		switch {
		case j.ID == "":
			return badRequest("job %d: \"id\" is required", i)
		case seen[j.ID]:
			return badRequest("job %d: duplicate id %q", i, j.ID)
		case j.SubmitS < 0 || math.IsNaN(j.SubmitS) || math.IsInf(j.SubmitS, 0):
			return badRequest("job %q: submit_s must be finite and non-negative", j.ID)
		case j.WorkSlotS <= 0 || math.IsNaN(j.WorkSlotS) || math.IsInf(j.WorkSlotS, 0):
			return badRequest("job %q: work_slot_s must be finite and positive", j.ID)
		case j.MaxParallelism < 0:
			return badRequest("job %q: max_parallelism must be non-negative", j.ID)
		case j.MemoryMB < 0 || j.VCores < 0:
			return badRequest("job %q: container shape must be non-negative", j.ID)
		case j.PredictedS < 0 || math.IsNaN(j.PredictedS) || math.IsInf(j.PredictedS, 0):
			return badRequest("job %q: predicted_s must be finite and non-negative", j.ID)
		case j.DeadlineS < 0 || math.IsNaN(j.DeadlineS) || math.IsInf(j.DeadlineS, 0):
			return badRequest("job %q: deadline_s must be finite and non-negative", j.ID)
		case j.Queue != "" && req.hierarchy == nil:
			return badRequest("job %q: queue %q without a \"queues\" declaration", j.ID, j.Queue)
		case j.Queue != "" && !queues[j.Queue]:
			return badRequest("job %q: unknown queue %q", j.ID, j.Queue)
		}
		seen[j.ID] = true
	}
	return nil
}

// handleSchedule serves POST /v1/schedule.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	req, apiErr := DecodeScheduleRequest(r.Body)
	s.phase(r.Context(), "decode", t0, s.phaseDecode)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	ctx := r.Context()
	if req.Options.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.Options.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if s.testHookEstimate != nil {
		s.testHookEstimate()
	}
	s.scheduled.Inc()
	ts := time.Now()
	res := req.replay(s.cfg.Spec)
	s.phase(ctx, "schedule", ts, s.phaseSchedule)
	if ctx.Err() != nil {
		writeError(w, timeoutError(ctx))
		return
	}
	tn := time.Now()
	body, err := encodeScheduleResponse(req.policy.String(), res)
	s.phase(ctx, "encode", tn, s.phaseEncode)
	if err != nil {
		writeError(w, &APIError{Status: http.StatusInternalServerError,
			Code: CodeInternal, Message: err.Error()})
		return
	}
	writeJSON(w, body)
}

// replay runs the validated request's arrival stream against the serving
// cluster (or the request's own cluster override): a pure deterministic
// function of (request, spec).
func (req *ScheduleRequest) replay(defaultSpec cluster.Spec) sched.StreamResult {
	spec := defaultSpec
	if req.spec != nil {
		spec = *req.spec
	}
	pool := sched.PoolOf(spec)
	if req.Options.Slots > 0 {
		pool = pool.WithSlotLimit(req.Options.Slots)
	}
	jobs := make([]sched.StreamJob, len(req.Jobs))
	for i, j := range req.Jobs {
		jobs[i] = sched.StreamJob{
			ID:             j.ID,
			Submit:         j.SubmitS,
			Work:           j.WorkSlotS,
			MaxParallelism: j.MaxParallelism,
			MemoryMB:       j.MemoryMB,
			VCores:         j.VCores,
			Predicted:      j.PredictedS,
			Deadline:       j.DeadlineS,
			Queue:          j.Queue,
		}
	}
	return sched.RunStream(pool, jobs, sched.StreamOptions{
		Policy:            req.policy,
		DeadlineAdmission: req.Options.DeadlineAdmission,
		Hierarchy:         req.hierarchy,
	})
}

// encodeScheduleResponse renders a stream result as the wire response.
// Byte-deterministic: field order is fixed and only slices appear.
// Non-finite floats (a job that never completed) encode as -1 so the
// body is always valid JSON.
func encodeScheduleResponse(policy string, res sched.StreamResult) ([]byte, error) {
	resp := ScheduleResponse{
		Policy:       policy,
		MakespanS:    finiteS(res.Makespan),
		P95Slowdown:  finiteS(res.P95Slowdown),
		MeanSlowdown: finiteS(res.MeanSlowdown),
		SLOMissRate:  finiteS(res.SLOMissRate),
		Admitted:     res.Admitted,
		Rejected:     res.Rejected,
		Missed:       res.Missed,
		Preemptions:  res.Preemptions,
		Jobs:         make([]ScheduleJobResultBody, 0, len(res.Jobs)),
	}
	for _, j := range res.Jobs {
		resp.Jobs = append(resp.Jobs, ScheduleJobResultBody{
			ID:          j.ID,
			SubmitS:     j.Submit,
			FinishS:     finiteS(j.Finish),
			StandaloneS: finiteS(j.Standalone),
			Slowdown:    finiteS(j.Slowdown),
			Rejected:    j.Rejected,
			Reason:      j.Reason,
			Detail:      j.Detail,
			Missed:      j.Missed,
			Preemptions: j.Preemptions,
		})
	}
	for _, r := range res.Rejections {
		resp.Rejections = append(resp.Rejections, RejectionBody{
			JobID: r.JobID, Code: r.Code, Reason: r.Reason, Detail: r.Detail,
		})
	}
	return marshalBody(resp)
}

// finiteS clamps non-finite values to the wire sentinel -1.
func finiteS(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}
