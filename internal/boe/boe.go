// Package boe implements the Bottleneck Oriented Estimation model of the
// paper (§III): task-level execution time estimation for data-parallel
// jobs. A task is a sequence of pipelined sub-stages; the sub-stage time
// is the time of its bottleneck operation,
//
//	t_σ = max_X  D_X / (μ_X(Δ)·θ_X)
//
// where D_X is the bytes operation X moves, θ_X the aggregate resource
// throughput and μ_X(Δ) the per-task share at degree of parallelism Δ.
// The share is computed by progressive-filling max-min fairness (package
// fairshare), which also yields the actual usage p_X < 1 of non-bottleneck
// resources. For parallel jobs the model takes every concurrently running
// task group into account, so a job's task time changes when a neighbour
// job's bottleneck moves — the Figure 1 phenomenon (27 s → 24 s → 20 s).
package boe

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/fairshare"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Model estimates task execution times on a given cluster.
type Model struct {
	// Spec is the cluster the jobs run on.
	Spec cluster.Spec
	// EqualSplit switches the μ(Δ) allocation from progressive-filling
	// max-min fairness to the naive 1/Δ split (ablation; see DESIGN.md §5).
	EqualSplit bool

	// stages memoizes the pure (profile, stage) → sub-stage derivation;
	// see stageInfoFor.
	mu     sync.RWMutex
	stages map[stageKey]*stageInfo
}

// New returns a Model for the cluster.
func New(spec cluster.Spec) *Model { return &Model{Spec: spec} }

// AggregateSubStage selects the steady-state view of a task group: its
// tasks are spread across sub-stages in proportion to sub-stage length,
// so the group's aggregate demand is the sum over sub-stages. This is the
// right environment model for a neighbouring job mid-stage, where waves of
// tasks pipeline through sub-stages continuously.
const AggregateSubStage = -1

// TaskGroup describes Δ identical tasks of one job stage running
// concurrently, currently executing the sub-stage with index SubStage
// (or AggregateSubStage for the steady-state mixture).
type TaskGroup struct {
	Profile     workload.JobProfile
	Stage       workload.Stage
	SubStage    int
	Parallelism int
}

// OpEstimate is the model's view of one pipelined operation: the bytes it
// moves, the per-task rate the allocation grants it, and the resulting
// non-overlapped time. The operation with the largest time is the
// sub-stage bottleneck.
type OpEstimate struct {
	Resource cluster.Resource
	Bytes    units.Bytes
	Rate     units.Rate
	Time     time.Duration
}

// SubStageEstimate is the model's output for one sub-stage of one group.
type SubStageEstimate struct {
	Name       string
	Duration   time.Duration
	Bottleneck cluster.Resource
	Ops        []OpEstimate
	// Utilization[r] is the estimated cluster-wide utilization of resource
	// r during this sub-stage (shared across all concurrent groups).
	Utilization [cluster.NumResources]float64
}

// TaskEstimate is the model's output for a complete task: the sequence of
// its sub-stage estimates and the total duration.
type TaskEstimate struct {
	Stage     workload.Stage
	SubStages []SubStageEstimate
	Duration  time.Duration
}

// Bottlenecks returns the distinct bottleneck resources across the task's
// sub-stages, in execution order.
func (t TaskEstimate) Bottlenecks() []cluster.Resource {
	var out []cluster.Resource
	seen := make(map[cluster.Resource]bool)
	for _, ss := range t.SubStages {
		if !seen[ss.Bottleneck] {
			seen[ss.Bottleneck] = true
			out = append(out, ss.Bottleneck)
		}
	}
	return out
}

// String renders a compact summary, e.g. "map 27.3s [cpu]".
func (t TaskEstimate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %.1fs [", t.Stage, t.Duration.Seconds())
	for i, r := range t.Bottlenecks() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(r.String())
	}
	b.WriteString("]")
	return b.String()
}

// capacities returns the cluster-aggregate throughput θ_X per resource.
func (m *Model) capacities() [cluster.NumResources]units.Rate {
	var caps [cluster.NumResources]units.Rate
	for _, r := range cluster.Resources() {
		caps[r] = m.Spec.TotalCapacity(r)
	}
	return caps
}

// consumerFor converts one task group's current sub-stage into a
// fairshare consumer: the demand vector is the sub-stage's op bytes
// (progress is measured in "sub-stage completions", so a rate of x means
// the task finishes the sub-stage in 1/x seconds), and the per-task cap
// encodes that a task is a single thread limited to one core's
// throughput.
func (m *Model) consumerFor(g TaskGroup, ss workload.SubStage) fairshare.Consumer {
	c := fairshare.Consumer{Count: g.Parallelism, CapResource: cluster.CPU}
	maxRate := 0.0
	for _, op := range ss.Ops {
		if op.Bytes <= 0 {
			continue
		}
		c.Demand[op.Resource] = float64(op.Bytes)
		// A single task cannot drive a resource past one node's device
		// rate (one core's compute, one NIC's line rate, one node's
		// disks), no matter how idle the cluster-wide pool is.
		r := float64(m.Spec.Node.PerTaskCap(op.Resource)) / float64(op.Bytes)
		if maxRate == 0 || r < maxRate {
			maxRate = r
			c.CapResource = op.Resource
		}
	}
	c.MaxRate = maxRate
	return c
}

// stageKey identifies one pure sub-stage derivation: JobProfile is a
// flat value type, so the key is comparable and collision-free.
type stageKey struct {
	p workload.JobProfile
	s workload.Stage
}

// stageInfo caches what a (profile, stage) pair contributes to every
// solve: its sub-stage list and the aggregate steady-state demand.
type stageInfo struct {
	subs []workload.SubStage
	agg  workload.SubStage
}

// stageCacheMax bounds the derivation cache. Long-lived models serve
// arbitrary caller-supplied profiles (the prediction service), so the
// cache clears wholesale at the cap instead of growing without bound.
const stageCacheMax = 1 << 12

// stageInfoFor memoizes p.SubStages(s, m.Spec) and its aggregate. Both
// are pure functions of the key and the model's spec (fixed after
// construction), so a hit returns the identical value a fresh
// derivation would.
func (m *Model) stageInfoFor(p workload.JobProfile, s workload.Stage) *stageInfo {
	k := stageKey{p, s}
	m.mu.RLock()
	si := m.stages[k]
	m.mu.RUnlock()
	if si != nil {
		return si
	}
	subs := p.SubStages(s, m.Spec)
	si = &stageInfo{subs: subs, agg: aggregate(subs)}
	m.mu.Lock()
	if m.stages == nil || len(m.stages) >= stageCacheMax {
		m.stages = make(map[stageKey]*stageInfo, 64)
	}
	m.stages[k] = si
	m.mu.Unlock()
	return si
}

// evalScratch holds one state solve's working buffers. Pooled because
// the workflow estimator performs hundreds of thousands of solves on
// large DAGs, and the per-solve garbage was the dominant cost at 10k
// jobs.
type evalScratch struct {
	subs      []workload.SubStage
	consumers []fairshare.Consumer
	groups    []TaskGroup
	arena     fairshare.Arena
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

// growRows sizes the scratch sub-stage and consumer rows for n groups.
func (sc *evalScratch) growRows(n int) {
	if cap(sc.subs) < n {
		sc.subs = make([]workload.SubStage, n)
		sc.consumers = make([]fairshare.Consumer, n)
	}
	sc.subs = sc.subs[:n]
	sc.consumers = sc.consumers[:n]
}

// fillRow derives group g's current sub-stage and consumer into row i.
func (m *Model) fillRow(sc *evalScratch, i int, g TaskGroup) {
	si := m.stageInfoFor(g.Profile, g.Stage)
	switch {
	case g.SubStage == AggregateSubStage:
		sc.subs[i] = si.agg
	case g.SubStage < 0 || g.SubStage >= len(si.subs):
		sc.subs[i] = workload.SubStage{Name: "done"}
	default:
		sc.subs[i] = si.subs[g.SubStage]
	}
	sc.consumers[i] = m.consumerFor(g, sc.subs[i])
}

// allocateRows runs the allocation over the filled consumer rows. The
// result aliases the scratch and is valid until the next allocation on it.
func (m *Model) allocateRows(sc *evalScratch) *fairshare.Result {
	if m.EqualSplit {
		return sc.arena.EqualSplit(m.capacities(), sc.consumers)
	}
	return sc.arena.Allocate(m.capacities(), sc.consumers)
}

// solve derives sub-stages and consumers for the groups and runs the
// allocation, all on scratch buffers.
func (m *Model) solve(sc *evalScratch, groups []TaskGroup) *fairshare.Result {
	sc.growRows(len(groups))
	for i, g := range groups {
		m.fillRow(sc, i, g)
	}
	return m.allocateRows(sc)
}

// usersOf counts the tasks demanding each resource, for the equal-share
// μ_X(Δ) = 1/Δ_X view the paper's per-operation times use.
func usersOf(sc *evalScratch, groups []TaskGroup) (users [cluster.NumResources]int) {
	for i, c := range sc.consumers {
		for r := 0; r < cluster.NumResources; r++ {
			if c.Demand[r] > 0 {
				users[r] += groups[i].Parallelism
			}
		}
	}
	return users
}

// render materializes the full estimate of group i from a solve.
func (m *Model) render(sc *evalScratch, alloc *fairshare.Result, users *[cluster.NumResources]int, i int) SubStageEstimate {
	est := SubStageEstimate{
		Name:        sc.subs[i].Name,
		Bottleneck:  alloc.Bottleneck[i],
		Utilization: alloc.Utilization,
	}
	rate := alloc.Rate[i]
	if rate > 0 && len(sc.subs[i].Ops) > 0 {
		est.Duration = units.Seconds(1 / rate)
		for _, op := range sc.subs[i].Ops {
			// The paper's t_X = D_X/(μ_X(Δ)·θ_X): the op's time at its
			// equal share of resource X among the Δ_X tasks demanding
			// it, capped by what a single task can drive. For a lone
			// group the largest of these equals the sub-stage duration;
			// their ratios are the Headroom report.
			share := m.Spec.TotalCapacity(op.Resource).PerTask(users[op.Resource])
			share = share.Min(m.Spec.Node.PerTaskCap(op.Resource))
			est.Ops = append(est.Ops, OpEstimate{
				Resource: op.Resource,
				Bytes:    op.Bytes,
				Rate:     share,
				Time:     units.Div(op.Bytes, share),
			})
		}
	}
	return est
}

// EstimateState estimates, for every group, the duration of its *current*
// sub-stage under contention from all the other groups. This is the
// primitive the state-based workflow model calls once per workflow state.
func (m *Model) EstimateState(groups []TaskGroup) []SubStageEstimate {
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	alloc := m.solve(sc, groups)
	users := usersOf(sc, groups)
	out := make([]SubStageEstimate, len(groups))
	for i := range groups {
		out[i] = m.render(sc, alloc, &users, i)
	}
	return out
}

// TaskTime estimates the full execution time of one task of (profile,
// stage) when Δ = parallelism sibling tasks run concurrently and no other
// job contends — the single-job setting of the paper's Figure 6. The task
// time is the sum of its sub-stage times, each estimated at parallelism Δ.
func (m *Model) TaskTime(p workload.JobProfile, s workload.Stage, parallelism int) TaskEstimate {
	return m.TaskTimeWith(p, s, parallelism, nil)
}

// TaskTimeWith estimates the task time of (p, s) at the given parallelism
// while the environment groups run alongside — the parallel-job setting of
// Table II. Each sub-stage of the target task is estimated against the
// environment held at its own current sub-stage.
func (m *Model) TaskTimeWith(p workload.JobProfile, s workload.Stage, parallelism int, env []TaskGroup) TaskEstimate {
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	g := append(sc.groups[:0], TaskGroup{Profile: p, Stage: s, Parallelism: parallelism})
	g = append(g, env...)
	sc.groups = g
	return m.taskTime(sc, g)
}

// TaskTimeAt estimates the task time of groups[self] under contention
// from the other groups — equivalent to TaskTimeWith with the self group
// removed from the environment, without materializing that intermediate
// slice. This is the estimator's hot path.
func (m *Model) TaskTimeAt(groups []TaskGroup, self int) TaskEstimate {
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	g := append(sc.groups[:0], groups[self])
	g = append(g, groups[:self]...)
	g = append(g, groups[self+1:]...)
	sc.groups = g
	return m.taskTime(sc, g)
}

// taskTime sums the sub-stage estimates of g[0] against the g[1:]
// environment, varying g[0]'s current sub-stage. The environment rows
// are identical across the sub-stage sweep, so they are derived once
// and only row 0 is refilled per iteration.
func (m *Model) taskTime(sc *evalScratch, g []TaskGroup) TaskEstimate {
	si := m.stageInfoFor(g[0].Profile, g[0].Stage)
	sc.growRows(len(g))
	for i := 1; i < len(g); i++ {
		m.fillRow(sc, i, g[i])
	}
	est := TaskEstimate{Stage: g[0].Stage}
	for k := range si.subs {
		g[0].SubStage = k
		sc.subs[0] = si.subs[k]
		sc.consumers[0] = m.consumerFor(g[0], si.subs[k])
		alloc := m.allocateRows(sc)
		users := usersOf(sc, g)
		ss := m.render(sc, alloc, &users, 0)
		est.SubStages = append(est.SubStages, ss)
		est.Duration += ss.Duration
	}
	return est
}

// aggregate folds a task's sub-stages into one demand vector summed per
// resource (see AggregateSubStage).
func aggregate(subs []workload.SubStage) workload.SubStage {
	var total [cluster.NumResources]units.Bytes
	for _, ss := range subs {
		for _, op := range ss.Ops {
			total[op.Resource] += op.Bytes
		}
	}
	out := workload.SubStage{Name: "aggregate"}
	for _, r := range cluster.Resources() {
		if total[r] > 0 {
			out.Ops = append(out.Ops, workload.OpDemand{Resource: r, Bytes: total[r]})
		}
	}
	return out
}

// StageTime estimates the wall-clock duration of an entire job stage run
// alone at the given parallelism: the tasks execute in ⌈N/Δ⌉ waves of
// TaskTime each (the discrete wave model; see DESIGN.md §5 for the fluid
// ablation).
func (m *Model) StageTime(p workload.JobProfile, s workload.Stage, parallelism int) time.Duration {
	n := p.Tasks(s)
	if n == 0 || parallelism <= 0 {
		return 0
	}
	task := m.TaskTime(p, s, min(parallelism, n))
	waves := (n + parallelism - 1) / parallelism
	return time.Duration(waves) * task.Duration
}

// Headroom reports how decisively the sub-stage's bottleneck wins: the
// ratio of the bottleneck operation's time to the runner-up's. A headroom
// of 1.6 means speeding the bottleneck resource up by more than 1.6×
// (hardware upgrade, compression, fewer replicas) moves the bottleneck
// elsewhere and further spending stops paying — the what-if question
// capacity planners ask. Sub-stages with fewer than two operations return
// +Inf (nothing to shift to).
func (ss SubStageEstimate) Headroom() float64 {
	if len(ss.Ops) < 2 {
		return math.Inf(1)
	}
	var first, second time.Duration
	for _, op := range ss.Ops {
		switch {
		case op.Time > first:
			second = first
			first = op.Time
		case op.Time > second:
			second = op.Time
		}
	}
	if second <= 0 {
		return math.Inf(1)
	}
	return first.Seconds() / second.Seconds()
}
