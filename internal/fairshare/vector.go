package fairshare

import (
	"math"
	"sort"
)

// VecConsumer is the variable-width counterpart of Consumer: demands are
// indexed by an arbitrary resource space (the node-aware simulator uses
// nodes × resource-classes). A nil/short Demand slice means zero demand
// on the missing indices.
type VecConsumer struct {
	Count   int
	Demand  []float64
	MaxRate float64
}

// VecResult reports a vector allocation.
type VecResult struct {
	// Rate[i] is the per-task progress rate of consumer i.
	Rate []float64
	// Bottleneck[i] is the index of the resource that binds consumer i,
	// or -1 when its own MaxRate does.
	Bottleneck []int
	// Utilization[r] is the fraction of resource r in use.
	Utilization []float64
}

// AllocateVec computes the same fair-queueing equilibrium as Allocate
// over an arbitrary number of resources: Gauss-Seidel iteration of
// per-resource usage water-fills with elsewhere-ceilings. Zero-capacity
// resources pin their demanders to rate zero.
func AllocateVec(capacity []float64, consumers []VecConsumer) VecResult {
	nRes := len(capacity)
	n := len(consumers)
	res := VecResult{
		Rate:        make([]float64, n),
		Bottleneck:  make([]int, n),
		Utilization: make([]float64, nRes),
	}

	demand := func(c VecConsumer, r int) float64 {
		if r < len(c.Demand) {
			return c.Demand[r]
		}
		return 0
	}

	bound := make([][]float64, n)
	dead := make([]bool, n)
	for i, c := range consumers {
		res.Bottleneck[i] = -1
		bound[i] = make([]float64, nRes)
		for r := range bound[i] {
			bound[i][r] = math.Inf(1)
		}
		if c.Count <= 0 {
			dead[i] = true
			continue
		}
		for r := 0; r < nRes; r++ {
			if demand(c, r) > 0 && capacity[r] <= 0 {
				dead[i] = true
				res.Bottleneck[i] = r
				break
			}
		}
	}

	ceiling := func(i, excl int) float64 {
		c := consumers[i]
		lim := math.Inf(1)
		if c.MaxRate > 0 {
			lim = c.MaxRate
		}
		for r := 0; r < nRes; r++ {
			if r == excl || demand(c, r) <= 0 {
				continue
			}
			if b := bound[i][r]; b < lim {
				lim = b
			}
		}
		return lim
	}

	// Precompute each resource's demander list once: the structure does
	// not change across iterations.
	demanders := make([][]int, nRes)
	for i, c := range consumers {
		if dead[i] {
			continue
		}
		for r := 0; r < nRes; r++ {
			if demand(c, r) > 0 && capacity[r] > 0 {
				demanders[r] = append(demanders[r], i)
			}
		}
	}

	type item struct {
		idx     int
		desired float64
	}
	const maxIters = 200
	items := make([]item, 0, n)
	for iter := 0; iter < maxIters; iter++ {
		change := 0.0
		for r := 0; r < nRes; r++ {
			if len(demanders[r]) == 0 {
				continue
			}
			items = items[:0]
			tasks := 0
			for _, i := range demanders[r] {
				items = append(items, item{i, demand(consumers[i], r) * ceiling(i, r)})
				tasks += consumers[i].Count
			}
			sort.Slice(items, func(a, b int) bool { return items[a].desired < items[b].desired })
			// Water-fill usage.
			remaining := capacity[r]
			level := math.Inf(1)
			for _, it := range items {
				lvl := remaining / float64(tasks)
				if math.IsInf(it.desired, 1) || it.desired > lvl {
					level = lvl
					break
				}
				remaining -= float64(consumers[it.idx].Count) * it.desired
				tasks -= consumers[it.idx].Count
				if tasks == 0 {
					break
				}
			}
			for _, i := range demanders[r] {
				nb := level / demand(consumers[i], r)
				if diff := relDiff(nb, bound[i][r]); diff > change {
					change = diff
				}
				bound[i][r] = nb
			}
		}
		if change < 1e-10 {
			break
		}
	}

	for i, c := range consumers {
		if dead[i] {
			res.Rate[i] = 0
			continue
		}
		rate := math.Inf(1)
		bn := -1
		if c.MaxRate > 0 {
			rate = c.MaxRate
		}
		for r := 0; r < nRes; r++ {
			if demand(c, r) <= 0 {
				continue
			}
			if b := bound[i][r]; b < rate {
				rate, bn = b, r
			}
		}
		res.Rate[i] = rate
		res.Bottleneck[i] = bn
	}

	for r := 0; r < nRes; r++ {
		if capacity[r] <= 0 {
			continue
		}
		var use float64
		for i, c := range consumers {
			if res.Rate[i] > 0 && !math.IsInf(res.Rate[i], 1) {
				use += float64(c.Count) * demand(c, r) * res.Rate[i]
			}
		}
		res.Utilization[r] = use / capacity[r]
	}
	return res
}
