package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// checkGoldenSSE compares a raw SSE transcript against
// testdata/<name>.golden.sse, rewriting it under the shared -update flag.
func checkGoldenSSE(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden.sse")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: stream diverged from golden.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestEstimateStreamGolden pins the SSE wire shape for two registry
// workflows: the transcript is byte-deterministic because every event
// field is model time, and the terminal result frame must agree with the
// plain /v1/estimate answer for the same scenario.
func TestEstimateStreamGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, name := range []string{"stream_wc_ts", "stream_q21"} {
		t.Run(name, func(t *testing.T) {
			body := readRequest(t, name)
			status, sse, hdr := post(t, ts.URL+"/v1/estimate?stream=1", body)
			if status != http.StatusOK {
				t.Fatalf("status = %d: %s", status, sse)
			}
			if ct := hdr.Get("Content-Type"); ct != "text/event-stream" {
				t.Errorf("Content-Type = %q, want text/event-stream", ct)
			}
			checkGoldenSSE(t, name, sse)

			// Cross-check: the stream's result frame carries the same numbers
			// as the non-streaming endpoint.
			status, plain, _ := post(t, ts.URL+"/v1/estimate", body)
			if status != http.StatusOK {
				t.Fatalf("plain estimate status = %d", status)
			}
			var want, got EstimateResponse
			if err := json.Unmarshal(plain, &want); err != nil {
				t.Fatalf("parse plain: %v", err)
			}
			result := lastSSEData(t, sse, "result")
			if err := json.Unmarshal(result, &got); err != nil {
				t.Fatalf("parse stream result: %v", err)
			}
			if got.MakespanS != want.MakespanS || got.Workflow != want.Workflow {
				t.Errorf("stream result %v/%q != estimate %v/%q",
					got.MakespanS, got.Workflow, want.MakespanS, want.Workflow)
			}
			// Every predicted state appears as a state frame, in order.
			if n := strings.Count(string(sse), "event: state\n"); n != len(want.States) {
				t.Errorf("stream carried %d state frames, estimate has %d states", n, len(want.States))
			}
		})
	}
}

// lastSSEData extracts the data payload of the final frame with the given
// event name.
func lastSSEData(t *testing.T, sse []byte, event string) []byte {
	t.Helper()
	var data []byte
	sc := bufio.NewScanner(bytes.NewReader(sse))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inEvent := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: "+event:
			inEvent = true
		case strings.HasPrefix(line, "event: "):
			inEvent = false
		case inEvent && strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if data == nil {
		t.Fatalf("no %q frame in stream:\n%s", event, sse)
	}
	return data
}

// TestEstimateStreamBadRequest keeps the error contract: a request that
// fails validation answers with the plain JSON error envelope, not SSE.
func TestEstimateStreamBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, hdr := post(t, ts.URL+"/v1/estimate?stream=1", []byte(`{"workflow":"nope"}`))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != CodeUnknownWorkflow {
		t.Errorf("error body = %s", body)
	}
}

// TestEstimateStreamClientDisconnect proves a mid-stream disconnect leaks
// nothing: the handler waits for the estimator goroutine, and the
// goroutine count returns to its baseline.
func TestEstimateStreamClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.testHookEstimate = func() {
		entered <- struct{}{}
		<-block
	}

	// A dedicated no-keep-alive client so every connection goroutine on
	// both sides unwinds once the request dies.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer client.CloseIdleConnections()

	baseline := runtime.NumGoroutine()
	req, err := http.NewRequest("POST", ts.URL+"/v1/estimate?stream=1",
		bytes.NewReader(readRequest(t, "stream_wc_ts")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	<-entered         // the estimator goroutine is now parked mid-run
	resp.Body.Close() // client walks away mid-stream
	close(block)      // let the estimator finish

	// The handler must notice the disconnect, wait out the estimator, and
	// unwind every goroutine it started.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked after disconnect: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
