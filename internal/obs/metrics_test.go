package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tasks")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("tasks") != c {
		t.Error("Counter not idempotent")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("util")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
	g.Set(-1.5)
	if got := g.Value(); got != -1.5 {
		t.Errorf("gauge = %v, want -1.5", got)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur")
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram stats not zero")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 10 {
		t.Errorf("sum = %v", h.Sum())
	}
	if h.Mean() != 2.5 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Quantiles are bucket-resolved: p50 of {1,2,3,4} lands in the bucket
	// holding 2, whose upper bound is ≤ max and ≥ min.
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 4 {
		t.Errorf("p50 = %v outside observed range", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 4 {
		t.Errorf("p99 = %v (p50 %v)", p99, p50)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)   // below the first bound: clamps to bucket 0
	h.Observe(1e9) // beyond the last bound: clamps to the overflow bucket
	h.Observe(-3)  // negative observations stay finite
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != -3 || h.Max() != 1e9 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(1); q != 1e9 {
		t.Errorf("p100 = %v, want max", q)
	}
	// Bucket-resolved quantiles stay inside the observed range.
	if q := h.Quantile(0.01); q < h.Min() || q > h.Max() {
		t.Errorf("p1 = %v outside [%v, %v]", q, h.Min(), h.Max())
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []float64{0.0005, 0.001, 0.01, 0.1, 1, 10, 100, 1000, 1e5, 1e9} {
		b := bucketOf(v)
		if b < prev {
			t.Errorf("bucketOf(%v) = %d < previous %d", v, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Errorf("bucketOf(%v) = %d out of range", v, b)
		}
		prev = b
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 1000 {
		t.Errorf("count = %d, want 1000", h.Count())
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("tasks_finished").Add(7)
	r.Gauge("util_cpu").Set(0.5)
	r.Histogram("task_duration_s").Observe(12.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Mean  float64 `json:"mean"`
			P95   float64 `json:"p95"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["tasks_finished"] != 7 {
		t.Errorf("counters = %v", decoded.Counters)
	}
	if decoded.Gauges["util_cpu"] != 0.5 {
		t.Errorf("gauges = %v", decoded.Gauges)
	}
	h := decoded.Histograms["task_duration_s"]
	if h.Count != 1 || math.Abs(h.Mean-12.5) > 1e-9 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("iters").Inc()
	r.Gauge("states").Set(3)
	r.Histogram("wait_s").Observe(1)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"counters:", "iters", "gauges:", "states", "histograms:", "wait_s", "p95"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}
