package calibrate

import (
	"fmt"
	"io"
	"math"
	"sort"

	"boedag/internal/cluster"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// Confidence qualifies one resource's recovered throughput: how many
// recorded sub-stage samples carried usable (D_X, t) pairs, the median
// θ_X those samples imply on their own, and how far the worst sample
// strays from that median. A large spread means the probe did not
// isolate the resource cleanly (interference, skew, or a truncated
// trace) and the estimate deserves suspicion.
type Confidence struct {
	// Samples counts sub-stage records with positive bytes and duration.
	Samples int
	// Implied is the median throughput implied by the samples alone
	// (bytes/duration, scaled to the pool). Zero when the trace carries
	// no byte counts for the resource.
	Implied units.Rate
	// Spread is max|θ_i − median|/median over the samples (0 = unanimous).
	Spread float64
}

// Calibration is the outcome of offline, trace-driven calibration: the
// recovered estimate plus the session facts and per-resource confidence
// that a live calibration gets for free but a recorded one must carry.
type Calibration struct {
	Estimate
	// Nodes and Slots are read back from the trace's run metadata.
	Nodes, Slots int
	// Skewed reports that the recorded runs had task-size skew enabled;
	// the inversion uses medians, which resist skew, and the report says
	// so explicitly.
	Skewed bool
	// Confidence is indexed by cluster.Resource.
	Confidence [cluster.NumResources]Confidence
}

// FromSession calibrates from a parsed trace session: the recorded probe
// measurements replay through the same inversion arithmetic as a live
// run (via TraceRunner), then the recorded D_X byte counts cross-check
// each recovered throughput.
func FromSession(s *Session) (*Calibration, error) {
	if s == nil {
		return nil, fmt.Errorf("calibrate: nil session")
	}
	est, err := Cluster(TraceRunner(s), s.Slots, s.Nodes)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{Estimate: *est, Nodes: s.Nodes, Slots: s.Slots, Skewed: s.Skewed}
	slots := float64(s.Slots)
	// Each resource's confidence comes from the probe that isolates it:
	// per-sample implied θ is D_X/t scaled to the pool (the saturating
	// probes split the pool across slots concurrent tasks; the CPU probe
	// runs one task on one core).
	type probeSrc struct {
		res   cluster.Resource
		job   string
		stage workload.Stage
		sub   string
		scale float64
	}
	for _, src := range []probeSrc{
		{cluster.CPU, ProbeCPU, workload.Map, "map", 1},
		{cluster.DiskRead, ProbeDiskRead, workload.Map, "map", slots},
		{cluster.DiskWrite, ProbeDiskWrite, workload.Map, "map", slots},
		{cluster.Network, ProbeNetwork, workload.Reduce, "shuffle", slots},
	} {
		var implied []float64
		for _, sample := range s.samples(src.job, src.stage, src.sub) {
			b := sample.Bytes[src.res]
			if b <= 0 || sample.Dur <= 0 {
				continue // zero-byte or degenerate sample: no information
			}
			implied = append(implied, src.scale*b/sample.Dur)
		}
		cal.Confidence[src.res] = summarize(implied)
	}
	return cal, nil
}

// summarize reduces per-sample implied throughputs to a Confidence.
func summarize(implied []float64) Confidence {
	c := Confidence{Samples: len(implied)}
	if len(implied) == 0 {
		return c
	}
	sort.Float64s(implied)
	med := implied[len(implied)/2]
	if len(implied)%2 == 0 {
		med = (implied[len(implied)/2-1] + implied[len(implied)/2]) / 2
	}
	c.Implied = units.Rate(med)
	if med > 0 {
		for _, v := range implied {
			if d := math.Abs(v-med) / med; d > c.Spread {
				c.Spread = d
			}
		}
	}
	return c
}

// FromTraceFiles parses one or more recorded trace files (a multi-file
// probe session), merges them, and calibrates.
func FromTraceFiles(paths ...string) (*Calibration, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("calibrate: no trace files given")
	}
	sessions := make([]*Session, len(paths))
	for i, p := range paths {
		s, err := ParseChromeTraceFile(p)
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}
	s, err := Merge(sessions...)
	if err != nil {
		return nil, err
	}
	return FromSession(s)
}

// WriteReport renders the calibration for an operator: recovered
// throughputs, the session shape, and the per-resource confidence table.
func (c *Calibration) WriteReport(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("Recovered cluster estimate (from trace, %d nodes, %d slots):\n", c.Nodes, c.Slots); err != nil {
		return err
	}
	rows := []struct {
		label string
		rate  units.Rate
		res   cluster.Resource
		has   bool
	}{
		{"core throughput", c.CoreThroughput, cluster.CPU, true},
		{"disk read pool", c.DiskReadPool, cluster.DiskRead, true},
		{"disk write pool", c.DiskWritePool, cluster.DiskWrite, true},
		{"network pool", c.NetworkPool, cluster.Network, true},
	}
	if err := p("  task overhead     %v\n", c.TaskOverhead); err != nil {
		return err
	}
	for _, r := range rows {
		cf := c.Confidence[r.res]
		line := fmt.Sprintf("  %-17s %v", r.label, r.rate)
		if cf.Samples > 0 {
			line += fmt.Sprintf("  (%d samples, implied %v, spread %.2f%%)",
				cf.Samples, cf.Implied, cf.Spread*100)
		} else {
			line += "  (no byte counts in trace; duration-only estimate)"
		}
		if err := p("%s\n", line); err != nil {
			return err
		}
	}
	if c.Skewed {
		if err := p("note: trace recorded with task-size skew enabled; " +
			"estimates use median task times, which resist skew\n"); err != nil {
			return err
		}
	}
	return nil
}
