package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"boedag/internal/obs"
	"boedag/internal/simulator"
	"boedag/internal/units"
)

// TestHybridWorkflowChromeTrace is the observability acceptance path: a
// TPC-H hybrid workflow runs with tracing on, and the exported Chrome
// trace must be valid trace_event JSON carrying task, state, and
// allocation events.
func TestHybridWorkflowChromeTrace(t *testing.T) {
	cfg := Default()
	cfg.TPCHScale = 10
	cfg.MicroInput = 10 * units.GB
	flow, err := BuildNamed("wc+q5", cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	reg := obs.NewRegistry()
	opt := simulator.Options{Seed: cfg.Seed, Observe: obs.Options{Tracer: rec, Metrics: reg}}
	res, err := simulator.New(cfg.Spec, opt).Run(flow)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	byCat := map[string]int{}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		byCat[ev.Cat]++
		if ev.Ph == "X" {
			pids[ev.Pid] = true
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("span %q has negative ts/dur", ev.Name)
			}
		}
	}
	if byCat["task"] != len(res.Tasks) {
		t.Errorf("task spans = %d, want %d", byCat["task"], len(res.Tasks))
	}
	if byCat["state"] != len(res.States) {
		t.Errorf("state spans = %d, want %d", byCat["state"], len(res.States))
	}
	if byCat["sched"] == 0 {
		t.Error("no allocation events in the trace")
	}
	// The hybrid runs WC next to Q5's multi-job subflow: each job gets
	// its own track, plus pid 0 for the workflow-level rows.
	if len(pids) < 3 {
		t.Errorf("only %d process tracks, want WC + Q5 jobs + workflow", len(pids))
	}

	if got := reg.Counter("sim_tasks_finished").Value(); got != int64(len(res.Tasks)) {
		t.Errorf("sim_tasks_finished = %d, want %d", got, len(res.Tasks))
	}
}
