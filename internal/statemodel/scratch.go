package statemodel

import (
	"math"
	"sort"
	"sync"
	"time"

	"boedag/internal/boe"
	"boedag/internal/sched"
	"boedag/internal/workload"
)

// Scratch is the arena behind the estimator's state loop: it owns every
// per-run buffer (the estJob slab, the running list, the scheduler
// request / task-group / distribution vectors, the submit event heap)
// plus the task-time distribution cache that makes repeated estimates
// incremental. A Scratch belongs to exactly one run at a time — it is
// not safe for concurrent use — but it is meant to be reused: the dist
// cache survives across runs, so a progress tick that re-estimates an
// advanced snapshot of the same workflow re-solves only the states its
// delta actually changed.
//
// Estimate and EstimateRemaining draw Scratches from an internal
// sync.Pool, which covers evalpool workers, tuning sweeps, /v1/batch
// fan-out and explain θ-sensitivity automatically. Callers that want
// deterministic cross-call reuse (progress indicators ticking the same
// workflow) hold their own via NewScratch and the *With variants.
type Scratch struct {
	slab    []estJob
	jobs    map[string]*estJob
	ordered []*estJob
	running []*estJob
	// heap is a min-heap of submitted-but-not-admitted jobs keyed by
	// (readyAt, submit order): the event queue that replaces the
	// per-iteration O(jobs) admit / idle-gap / next-submit scans.
	heap []*estJob

	reqs   []sched.Request
	groups []boe.TaskGroup
	delta  []int
	dists  []TaskTimeDist
	rates  []float64
	rests  []float64
	elems  []uint64
	envs   []uint64
	keys   []distKey
	hit    []bool
	// tasks backs EmpiricalMode's list-scheduling of the remaining
	// stage tasks.
	tasks []time.Duration

	dc distCache
}

// NewScratch returns an empty scratch arena. The zero cost of the first
// run grows the buffers to the workflow's size; later runs reuse them.
func NewScratch() *Scratch {
	return &Scratch{jobs: make(map[string]*estJob, 64)}
}

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// reset prepares the scratch for a run over n jobs. Buffers are
// re-sliced, not freed; the dist cache deliberately survives — carrying
// solved task-time distributions across calls is what makes re-estimates
// incremental.
func (s *Scratch) reset(n int) {
	if cap(s.slab) < n {
		s.slab = make([]estJob, 0, n)
	}
	s.slab = s.slab[:0]
	clear(s.jobs)
	s.ordered = s.ordered[:0]
	s.running = s.running[:0]
	s.heap = s.heap[:0]
	if cap(s.reqs) < n {
		s.reqs = make([]sched.Request, 0, n)
		s.groups = make([]boe.TaskGroup, 0, n)
		s.delta = make([]int, 0, n)
		s.dists = make([]TaskTimeDist, 0, n)
		s.rates = make([]float64, 0, n)
		s.rests = make([]float64, 0, n)
		s.elems = make([]uint64, 0, n)
		s.envs = make([]uint64, 0, n)
		s.keys = make([]distKey, 0, n)
		s.hit = make([]bool, 0, n)
	}
}

// newJob hands out a slab-backed estJob. The slab is pre-sized by reset,
// so pointers stay valid for the whole run.
func (s *Scratch) newJob(id string, p workload.JobProfile, deps int) *estJob {
	s.slab = append(s.slab, estJob{id: id, profile: p, waitingOn: deps})
	j := &s.slab[len(s.slab)-1]
	s.jobs[id] = j
	s.ordered = append(s.ordered, j)
	return j
}

// sortOrdered fixes the canonical job order (by ID). The running list is
// kept in this order too, which pins the floating-point evaluation order
// of the scheduler and the BOE model — the bedrock of the byte-identical
// incremental == from-scratch contract.
func (s *Scratch) sortOrdered() {
	sort.Slice(s.ordered, func(a, b int) bool { return s.ordered[a].id < s.ordered[b].id })
}

// insertRunning splices a newly admitted job into the running list at
// its sorted-by-ID position.
func (s *Scratch) insertRunning(j *estJob) {
	i := sort.Search(len(s.running), func(k int) bool { return s.running[k].id >= j.id })
	s.running = append(s.running, nil)
	copy(s.running[i+1:], s.running[i:])
	s.running[i] = j
}

// compactRunning drops jobs that finished this iteration, preserving
// order in place.
func (s *Scratch) compactRunning() {
	out := s.running[:0]
	for _, j := range s.running {
		if j.phase != phaseDone {
			out = append(out, j)
		}
	}
	for i := len(out); i < len(s.running); i++ {
		s.running[i] = nil
	}
	s.running = out
}

// submitsBefore orders the submit heap by readyAt, ties broken by the
// unique submit order — a total order, so pop order is deterministic.
func submitsBefore(a, b *estJob) bool {
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	return a.order < b.order
}

func (s *Scratch) heapPush(j *estJob) {
	h := append(s.heap, j)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !submitsBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.heap = h
}

func (s *Scratch) heapPop() *estJob {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h) && submitsBefore(h[l], h[m]) {
			m = l
		}
		if r < len(h) && submitsBefore(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.heap = h
	return top
}

// distKey identifies one task-time solve. Task times under the BOE
// model depend on the job's own (profile, stage, Δ) and on the ordered
// sequence of every other concurrently running group — contention is
// global (paper Figure 1), so the whole environment is part of the key.
// The env hash is order-sensitive on purpose: fair-share allocation
// consumes consumers in slice order and floating-point addition is not
// associative, so only an identical input sequence may share a cached
// result (the byte-identical contract). Adjacent identical groups still
// share naturally: dropping either occurrence of an equal pair yields
// the same remaining sequence.
type distKey struct {
	// conf fingerprints everything outside the state: the timer's
	// parameters and the dist-shaping options (TaskFailureProb).
	conf uint64
	// job is the job ID for job-sensitive timers, "" otherwise.
	job string
	// self hashes the job's own (profile fingerprint, stage, Δ).
	self uint64
	// env hashes the ordered element sequence with self removed; n is
	// its length.
	env uint64
	n   int32
}

// distCache memoizes failure-corrected task-time distributions. Like
// stateSig, it trusts 64-bit FNV hashes as identity — the collision risk
// is negligible next to the model's own error bars, and the equivalence
// suite holds the incremental path to byte-identical output.
type distCache struct {
	m map[distKey]TaskTimeDist
}

// distCacheMax bounds the cache; a 10k-job run solves well under this
// many distinct states, so in practice the wholesale clear never fires
// mid-run.
const distCacheMax = 1 << 17

func (c *distCache) get(k distKey) (TaskTimeDist, bool) {
	d, ok := c.m[k]
	return d, ok
}

func (c *distCache) put(k distKey, d TaskTimeDist) {
	if c.m == nil {
		c.m = make(map[distKey]TaskTimeDist, 256)
	}
	if len(c.m) >= distCacheMax {
		clear(c.m)
	}
	c.m[k] = d
}

// FNV-1a, the same constants the state signature uses.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix64 folds a 64-bit value into the hash in one round. The inputs at
// every call site are either small enums or already well-mixed hashes,
// so the single round keeps the per-iteration env hashing cheap.
func mix64(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

func mixStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return (h ^ 0xff) * fnvPrime // terminator: fields cannot bleed
}

func mixFloat(h uint64, f float64) uint64 { return mix64(h, math.Float64bits(f)) }

// envHash hashes the element sequence with index skip removed.
func envHash(elems []uint64, skip int) uint64 {
	h := uint64(fnvOffset)
	for i, e := range elems {
		if i == skip {
			continue
		}
		h = mix64(h, e)
	}
	return h
}

// profileFingerprint hashes every JobProfile field the BOE model (and
// the scheduler requests) can read — the per-job half of a dist key.
func profileFingerprint(p workload.JobProfile) uint64 {
	h := uint64(fnvOffset)
	h = mixStr(h, p.Name)
	h = mix64(h, uint64(p.InputBytes))
	h = mix64(h, uint64(p.SplitBytes))
	h = mix64(h, uint64(p.ReduceTasks))
	h = mixFloat(h, p.MapSelectivity)
	h = mixFloat(h, p.ReduceSelectivity)
	h = mixFloat(h, p.MapCPUCost)
	h = mixFloat(h, p.ReduceCPUCost)
	if p.Compression.Enabled {
		h = mix64(h, 1)
	} else {
		h = mix64(h, 0)
	}
	h = mixFloat(h, p.Compression.Ratio)
	h = mixFloat(h, p.Compression.CPUOverhead)
	h = mix64(h, uint64(p.Replicas))
	h = mix64(h, uint64(p.SortBufferBytes))
	h = mix64(h, uint64(p.MapMemoryMB))
	h = mix64(h, uint64(p.ReduceMemoryMB))
	h = mix64(h, uint64(p.MapVCores))
	h = mix64(h, uint64(p.ReduceVCores))
	h = mixFloat(h, p.SkewCV)
	return h
}
