package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/evalpool"
	"boedag/internal/experiments"
	"boedag/internal/explain"
	"boedag/internal/obs"
	"boedag/internal/perfledger"
	"boedag/internal/statemodel"
	"boedag/internal/units"
	"time"
)

// handleEstimate serves POST /v1/estimate, dispatching ?stream=1 to the
// SSE variant (stream.go).
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if wantsStream(r) {
		s.handleEstimateStream(w, r)
		return
	}
	t0 := time.Now()
	req, apiErr := DecodeEstimateRequest(r.Body)
	s.phase(r.Context(), "decode", t0, s.phaseDecode)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	ctx, cancel := scenarioContext(r.Context(), req)
	defer cancel()
	body, apiErr := s.estimate(ctx, req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, body)
}

// handleExplain serves POST /v1/explain: the same request shape as
// /v1/estimate, answered with the explained estimate — critical path,
// bottleneck attribution, per-state utilization, θ-sensitivity.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	req, apiErr := DecodeEstimateRequest(r.Body)
	s.phase(r.Context(), "decode", t0, s.phaseDecode)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	ctx, cancel := scenarioContext(r.Context(), req)
	defer cancel()
	body, apiErr := s.explain(ctx, req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, body)
}

// explain resolves one scenario to its explained-estimate bytes.
// Identical concurrent scenarios coalesce onto one explanation run via
// the single-flight cache (keyed separately from /v1/estimate), and the
// run itself memoizes its base and θ-perturbed plans through the
// server-lifetime plan cache, so explaining a scenario the service
// already estimated re-runs only the four perturbed estimates — and a
// repeat explanation re-runs nothing.
func (s *Server) explain(ctx context.Context, req *EstimateRequest) ([]byte, *APIError) {
	flow, est, apiErr := s.scenario(req)
	if apiErr != nil {
		return nil, apiErr
	}
	ran := false
	compute := func() ([]byte, error) {
		if s.testHookEstimate != nil {
			s.testHookEstimate()
		}
		ran = true
		s.explained.Inc()
		te := time.Now()
		e, err := explain.Explain(ctx, est, flow, explain.Options{
			Workers: s.cfg.Workers,
			Cache:   s.plans,
		})
		s.phase(ctx, "explain", te, s.phaseExplain)
		if err != nil {
			return nil, err
		}
		tn := time.Now()
		body, err := marshalBody(e)
		s.phase(ctx, "encode", tn, s.phaseEncode)
		return body, err
	}
	var body []byte
	var err error
	if key, ok := evalpool.PlanKey(est, flow); ok {
		t0 := time.Now()
		body, err = s.cache.DoContext(ctx, "explain|"+key, compute)
		if err == nil && !ran {
			s.coalesced.Inc()
			s.phase(ctx, "coalesce-wait", t0, s.coalescedWait)
		}
	} else {
		body, err = compute()
	}
	switch {
	case err == nil:
		return body, nil
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return nil, timeoutError(ctx)
	default:
		return nil, &APIError{Status: http.StatusInternalServerError,
			Code: CodeInternal, Message: err.Error()}
	}
}

// handleBatch serves POST /v1/batch: every scenario goes through the
// evalpool worker pool and the same coalescing cache as /v1/estimate,
// and results come back in input order — the response bytes are
// identical at any worker count.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	req, apiErr := DecodeBatchRequest(r.Body, s.cfg.MaxBatch)
	s.phase(r.Context(), "decode", t0, s.phaseDecode)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	jobs := make([]func() (BatchResult, error), len(req.Scenarios))
	for i := range req.Scenarios {
		sc := &req.Scenarios[i]
		jobs[i] = func() (BatchResult, error) {
			ctx, cancel := scenarioContext(r.Context(), sc)
			defer cancel()
			body, apiErr := s.estimate(ctx, sc)
			if apiErr != nil {
				return BatchResult{Error: apiErr}, nil
			}
			return BatchResult{Estimate: json.RawMessage(body)}, nil
		}
	}
	results, err := evalpool.Run(r.Context(), jobs, s.cfg.Workers)
	if err != nil {
		// Jobs never fail; only a done request context reaches here, marking
		// undispatched scenarios. Report those as per-scenario timeouts.
		for i := range results {
			if results[i].Estimate == nil && results[i].Error == nil {
				results[i].Error = timeoutError(r.Context())
			}
		}
	}
	body, merr := marshalBody(BatchResponse{Results: results})
	if merr != nil {
		writeError(w, &APIError{Status: http.StatusInternalServerError,
			Code: CodeInternal, Message: merr.Error()})
		return
	}
	writeJSON(w, body)
}

// estimate resolves one scenario to its response bytes, coalescing
// identical scenarios through the single-flight cache: the canonical
// evalpool plan signature (cluster spec + estimator options + timer +
// full workflow) keys the computation, so N concurrent identical
// requests run the estimator once and share the same bytes.
func (s *Server) estimate(ctx context.Context, req *EstimateRequest) ([]byte, *APIError) {
	flow, est, apiErr := s.scenario(req)
	if apiErr != nil {
		return nil, apiErr
	}
	ran := false
	compute := func() ([]byte, error) {
		if s.testHookEstimate != nil {
			s.testHookEstimate()
		}
		ran = true
		s.computed.Inc()
		te := time.Now()
		plan, err := est.Estimate(flow)
		s.phase(ctx, "estimate", te, s.phaseEstimate)
		if err != nil {
			return nil, err
		}
		tn := time.Now()
		body, err := encodeEstimateResponse(plan)
		s.phase(ctx, "encode", tn, s.phaseEncode)
		return body, err
	}
	var body []byte
	var err error
	if key, ok := evalpool.PlanKey(est, flow); ok {
		t0 := time.Now()
		body, err = s.cache.DoContext(ctx, key, compute)
		// Reading ran is race-free only on the err == nil path: our own
		// compute either completed before DoContext returned (leader) or
		// never started (coalesced onto another request's run / cache hit).
		// On error the computation may still be running in the background.
		if err == nil && !ran {
			s.coalesced.Inc()
			s.phase(ctx, "coalesce-wait", t0, s.coalescedWait)
		}
	} else {
		body, err = compute()
	}
	switch {
	case err == nil:
		return body, nil
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return nil, timeoutError(ctx)
	default:
		return nil, &APIError{Status: http.StatusInternalServerError,
			Code: CodeInternal, Message: err.Error()}
	}
}

// scenario materializes a validated request into its workflow and
// estimator, mirroring the boepredict CLI's defaults (the paper's
// overheads, BOE task timer).
func (s *Server) scenario(req *EstimateRequest) (*dag.Workflow, *statemodel.Estimator, *APIError) {
	return s.scenarioWith(req, nil)
}

// scenarioWith is scenario with a per-request tracer wired into the
// estimator — the SSE stream handler's hook for per-state progress.
func (s *Server) scenarioWith(req *EstimateRequest, tracer obs.Tracer) (*dag.Workflow, *statemodel.Estimator, *APIError) {
	spec := s.cfg.Spec
	if req.spec != nil {
		spec = *req.spec
	}
	cfg := experiments.Default()
	cfg.Spec = spec
	if req.Options.MicroGB > 0 {
		cfg.MicroInput = units.Bytes(req.Options.MicroGB) * units.GB
	}
	if req.Options.TPCHScale > 0 {
		cfg.TPCHScale = req.Options.TPCHScale
	}
	flow := req.flow
	if flow == nil {
		var err error
		flow, err = experiments.BuildNamed(req.Workflow, cfg)
		if err != nil {
			return nil, nil, &APIError{Status: http.StatusBadRequest,
				Code: CodeUnknownWorkflow, Message: err.Error()}
		}
	}
	// Observe routes the estimator's solver counters (est_iterations,
	// est_dist_solves, est_dist_reuse, …) into the server registry, so
	// /metrics shows how much work the incremental core is saving.
	opt := statemodel.Options{
		Mode:              req.mode,
		JobSubmitOverhead: cfg.JobSubmitOverhead,
		Observe:           obs.Options{Metrics: s.reg, Tracer: tracer},
	}
	if req.Options.PerNode > 0 {
		opt.SlotLimit = req.Options.PerNode * spec.Nodes
	}
	timer := &statemodel.BOETimer{Model: boe.New(spec), TaskStartOverhead: cfg.TaskStartOverhead}
	return flow, statemodel.New(spec, timer, opt), nil
}

// scenarioContext tightens the request context by the scenario's own
// timeout_ms, when set.
func scenarioContext(ctx context.Context, req *EstimateRequest) (context.Context, context.CancelFunc) {
	if req.Options.TimeoutMS > 0 {
		return context.WithTimeout(ctx, time.Duration(req.Options.TimeoutMS)*time.Millisecond)
	}
	return context.WithCancel(ctx)
}

// handleWorkflows serves GET /v1/workflows.
func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	body, err := marshalBody(WorkflowsResponse{Workflows: experiments.WorkflowNames()})
	if err != nil {
		writeError(w, &APIError{Status: http.StatusInternalServerError,
			Code: CodeInternal, Message: err.Error()})
		return
	}
	writeJSON(w, body)
}

// handleCluster serves GET /v1/cluster: the serving cluster spec in the
// calibrate -spec-out interchange format.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	cluster.WriteSpec(w, s.cfg.Spec)
}

// handleVersion serves GET /version: the daemon's build identity (Go
// toolchain, module version, VCS stamp, GOMAXPROCS) plus uptime, so a
// load harness can tag its ledger with the exact server it measured.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	body, err := marshalBody(VersionResponse{
		Build:   perfledger.CurrentBuild(),
		UptimeS: time.Since(s.start).Seconds(),
	})
	if err != nil {
		writeError(w, &APIError{Status: http.StatusInternalServerError,
			Code: CodeInternal, Message: err.Error()})
		return
	}
	writeJSON(w, body)
}

// handleHealthz serves GET /healthz: alive as long as it answers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body, _ := marshalBody(map[string]string{"status": "ok"})
	writeJSON(w, body)
}

// handleReadyz serves GET /readyz: ready until the drain starts, so load
// balancers stop routing before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, &APIError{Status: http.StatusServiceUnavailable,
			Code: CodeDraining, Message: "server is draining"})
		return
	}
	body, _ := marshalBody(map[string]string{"status": "ready"})
	writeJSON(w, body)
}

// handleMetrics serves GET /metrics from the obs registry: JSON by
// default, Prometheus text exposition with ?format=text — stable
// HELP/TYPE blocks, cumulative histogram buckets, escaped labels, so a
// Prometheus server can scrape the daemon directly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.reg.WriteJSON(w)
}
