package obs

import (
	"sync"
	"testing"
)

func TestStreamDisabledWithoutSubscribers(t *testing.T) {
	s := NewStream()
	if s.Enabled() {
		t.Error("empty stream reports enabled")
	}
	s.Emit(Event{Type: EvTaskFinish}) // must not panic or block
	sub := s.Subscribe(4)
	if !s.Enabled() {
		t.Error("stream with a subscriber reports disabled")
	}
	sub.Close()
	if s.Enabled() {
		t.Error("stream enabled after its only subscriber left")
	}
}

func TestStreamFanOut(t *testing.T) {
	s := NewStream()
	a := s.Subscribe(8)
	b := s.Subscribe(8)
	for i := 0; i < 5; i++ {
		s.Emit(Event{Type: EvTaskStart, Task: i})
	}
	s.Close()
	for name, sub := range map[string]*Subscriber{"a": a, "b": b} {
		var got []Event
		for ev := range sub.Events() {
			got = append(got, ev)
		}
		if len(got) != 5 {
			t.Errorf("%s received %d events, want 5", name, len(got))
		}
		for i, ev := range got {
			if ev.Task != i {
				t.Errorf("%s event %d out of order: %+v", name, i, ev)
			}
		}
		if sub.Drops() != 0 {
			t.Errorf("%s drops = %d, want 0", name, sub.Drops())
		}
	}
}

func TestStreamDropNewest(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(2)
	for i := 0; i < 5; i++ {
		s.Emit(Event{Seq: i})
	}
	if sub.Drops() != 3 {
		t.Errorf("drops = %d, want 3", sub.Drops())
	}
	s.Close()
	var seqs []int
	for ev := range sub.Events() {
		seqs = append(seqs, ev.Seq)
	}
	// DropNewest keeps the oldest window.
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Errorf("buffered window = %v, want [0 1]", seqs)
	}
}

func TestStreamDropOldest(t *testing.T) {
	s := NewStream()
	sub := s.SubscribeWith(2, DropOldest)
	if sub.Policy() != DropOldest {
		t.Fatalf("policy = %v", sub.Policy())
	}
	for i := 0; i < 5; i++ {
		s.Emit(Event{Seq: i})
	}
	if sub.Drops() != 3 {
		t.Errorf("drops = %d, want 3", sub.Drops())
	}
	s.Close()
	var seqs []int
	for ev := range sub.Events() {
		seqs = append(seqs, ev.Seq)
	}
	// DropOldest keeps the freshest window.
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Errorf("buffered window = %v, want [3 4]", seqs)
	}
}

func TestStreamEmitNeverBlocks(t *testing.T) {
	s := NewStream()
	s.Subscribe(1) // nobody ever reads this subscriber
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			s.Emit(Event{Seq: i})
		}
		close(done)
	}()
	<-done // would deadlock (and the test time out) if Emit blocked
	s.Close()
}

func TestStreamCloseTerminatesConsumers(t *testing.T) {
	s := NewStream()
	sub := s.Subscribe(16)
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() {
		defer wg.Done()
		for range sub.Events() {
			received++
		}
	}()
	s.Emit(Event{Seq: 1})
	s.Emit(Event{Seq: 2})
	s.Close()
	wg.Wait()
	if received != 2 {
		t.Errorf("consumer saw %d events before close, want 2", received)
	}
	s.Close()       // idempotent
	sub.Close()     // idempotent after stream close
	s.Emit(Event{}) // dropped silently
	if got := s.SubscribeWith(4, DropNewest); got != nil {
		if _, ok := <-got.Events(); ok {
			t.Error("subscriber on a closed stream received an event")
		}
	}
}

func TestStreamConcurrentEmitSubscribeClose(t *testing.T) {
	s := NewStream()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // producer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if s.Enabled() {
					s.Emit(Event{Seq: i})
				}
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() { // churning subscribers
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sub := s.SubscribeWith(4, DropPolicy(i%2))
				for j := 0; j < 3; j++ {
					select {
					case <-sub.Events():
					default:
					}
				}
				sub.Close()
			}
		}()
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	// Let the churn run, then shut down.
	for i := 0; i < 4; i++ {
		sub := s.Subscribe(64)
		for j := 0; j < 10; j++ {
			select {
			case <-sub.Events():
			default:
			}
		}
		sub.Close()
	}
	close(stop)
	<-wgDone
	s.Close()
}

func TestTee(t *testing.T) {
	if tr := Tee(); tr != Nop {
		t.Errorf("Tee() = %v, want Nop", tr)
	}
	if tr := Tee(nil, Nop); tr != Nop {
		t.Errorf("Tee(nil, Nop) = %v, want Nop", tr)
	}
	rec := NewRecorder()
	if tr := Tee(nil, rec); tr != Tracer(rec) {
		t.Errorf("Tee of one tracer did not collapse to it")
	}

	s := NewStream()
	sub := s.Subscribe(4)
	both := Tee(rec, s)
	if !both.Enabled() {
		t.Error("tee with a recorder reports disabled")
	}
	both.Emit(Event{Type: EvStateOpen, Seq: 7})
	if rec.Len() != 1 {
		t.Errorf("recorder saw %d events, want 1", rec.Len())
	}
	ev := <-sub.Events()
	if ev.Seq != 7 {
		t.Errorf("stream event = %+v", ev)
	}

	// A tee over only-disabled tracers is disabled and emits nowhere.
	empty := NewStream()
	disabled := Tee(empty, NewStream())
	if disabled.Enabled() {
		t.Error("tee over subscriber-less streams reports enabled")
	}
	s.Close()
	empty.Close()
}
