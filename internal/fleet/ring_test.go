package fleet

import (
	"fmt"
	"math"
	"testing"
)

// splitmix64 generates the deterministic key corpus: the i-th key of a
// seeded corpus is a pure function of (seed, i), so every run of the
// property tests examines the identical key population.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func corpus(seed uint64, k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", splitmix64(seed+uint64(i)))
	}
	return keys
}

func nodeSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%d", i)
	}
	return out
}

func mustRing(t *testing.T, nodes []string) *Ring {
	t.Helper()
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatalf("NewRing(%v): %v", nodes, err)
	}
	return r
}

// TestRingRebalance is the consistent-hashing property suite over seeded
// corpora: growing the fleet from N to N+1 nodes moves at most
// ceil(K/N)+ε of K keys, and — the exact invariant behind that bound —
// every moved key moves onto the joining node; shrinking moves exactly
// the departed node's keys and nothing else.
func TestRingRebalance(t *testing.T) {
	const K = 4096
	for _, seed := range []uint64{1, 42, 0xdecafbad} {
		keys := corpus(seed, K)
		for _, n := range []int{1, 2, 3, 5, 8} {
			t.Run(fmt.Sprintf("seed=%d/n=%d", seed, n), func(t *testing.T) {
				before := mustRing(t, nodeSet(n))
				after := mustRing(t, nodeSet(n+1)) // node<n> joins
				joined := fmt.Sprintf("node%d", n)

				moved := 0
				for _, key := range keys {
					oldOwner, newOwner := before.Owner(key), after.Owner(key)
					if oldOwner == newOwner {
						continue
					}
					moved++
					if newOwner != joined {
						t.Fatalf("key %s moved %s → %s, not to the joining node %s",
							key, oldOwner, newOwner, joined)
					}
				}
				// ceil(K/N) is what a perfectly uniform ring sheds to the new
				// node when growing from N of N+1 shares; ε absorbs vnode
				// placement variance.
				bound := int(math.Ceil(float64(K)/float64(n))) + K/8
				if moved > bound {
					t.Errorf("join moved %d of %d keys, bound %d", moved, K, bound)
				}
				if n > 1 && moved == 0 {
					t.Errorf("join moved no keys — the new node owns nothing")
				}

				// Leave is the mirror image: removing the node we just added
				// must disturb only the keys it owned.
				for _, key := range keys {
					if after.Owner(key) != joined && before.Owner(key) != after.Owner(key) {
						t.Fatalf("key %s owned by %s changed owner on leave of %s",
							key, after.Owner(key), joined)
					}
				}
			})
		}
	}
}

// TestRingDistribution keeps any single node's share within a sane factor
// of uniform so one replica cannot silently absorb most of the fleet's
// load.
func TestRingDistribution(t *testing.T) {
	const K = 8192
	keys := corpus(7, K)
	for _, n := range []int{2, 3, 5} {
		r := mustRing(t, nodeSet(n))
		counts := make(map[string]int)
		for _, key := range keys {
			counts[r.Owner(key)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own keys: %v", n, len(counts), counts)
		}
		uniform := float64(K) / float64(n)
		for node, got := range counts {
			if ratio := float64(got) / uniform; ratio < 0.5 || ratio > 2.0 {
				t.Errorf("n=%d: %s owns %d keys (%.2fx uniform), want within [0.5, 2.0]x",
					n, node, got, ratio)
			}
		}
	}
}

// TestRingOwners pins the fallback sequence contract: distinct nodes,
// owner first, deterministic, never longer than the fleet.
func TestRingOwners(t *testing.T) {
	r := mustRing(t, nodeSet(4))
	for _, key := range corpus(3, 64) {
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%s)[0] = %s, Owner = %s", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s) repeats %s: %v", key, o, owners)
			}
			seen[o] = true
		}
		// Deterministic: same ring, same key, same sequence.
		again := r.Owners(key, 3)
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("Owners(%s) not deterministic: %v vs %v", key, owners, again)
			}
		}
	}
	if got := r.Owners("k", 99); len(got) != 4 {
		t.Errorf("Owners(k, 99) = %d nodes, want all 4", len(got))
	}
}

// TestRingValidation pins constructor errors.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node ID accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate node ID accepted")
	}
}
