package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"boedag/internal/statemodel"
)

// RenderTable1 prints the workload overview in the paper's Table I
// layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Group\tWorkload\tC\tR\tBottleneck (measured)")
	for _, r := range rows {
		c := "N"
		if r.Compression {
			c = "Y"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Group, r.Workload, c, r.Replicas, r.BottleneckString())
	}
	tw.Flush()
}

// RenderFigure6 prints each panel of Figure 6 as a small table of task
// times per degree of parallelism, with the summary accuracies the paper
// quotes in §V-B1.
func RenderFigure6(w io.Writer, series []Fig6Series) {
	for _, s := range series {
		fmt.Fprintf(w, "Figure 6 — %s %s (avg accuracy BOE %.1f%%, baseline %.1f%%",
			s.Workload, s.Stage, 100*s.AvgAccuracyBOE(), 100*s.AvgAccuracyBaseline())
		if len(s.Points) > 0 {
			last := s.Points[len(s.Points)-1].PerNode
			switch f := s.ImprovementAt(last); {
			case f > 99:
				fmt.Fprintf(w, "; >99x better at Δ/node=%d", last)
			case f > 0:
				fmt.Fprintf(w, "; %.1fx better at Δ/node=%d", f, last)
			}
		}
		fmt.Fprintln(w, ")")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  Δ/node\tactual\tBOE\tbaseline\tacc(BOE)\tacc(base)")
		for _, p := range s.Points {
			fmt.Fprintf(tw, "  %d\t%.1fs\t%.1fs\t%.1fs\t%.1f%%\t%.1f%%\n",
				p.PerNode, p.Actual.Seconds(), p.BOE.Seconds(), p.Baseline.Seconds(),
				100*p.AccuracyBOE(), 100*p.AccuracyBaseline())
		}
		tw.Flush()
	}
}

// RenderTable2 prints the parallel-job task-level accuracy in the
// paper's Table II layout (jobs × states).
func RenderTable2(w io.Writer, rows []Table2Row) {
	maxState := 0
	for _, r := range rows {
		for _, c := range r.Cells {
			if c.State > maxState {
				maxState = c.State
			}
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "DAG\tJob")
	for s := 1; s <= maxState; s++ {
		fmt.Fprintf(tw, "\ts%d", s)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s", r.DAG, r.Job)
		for s := 1; s <= maxState; s++ {
			if c := r.Cell(s); c != nil {
				fmt.Fprintf(tw, "\t%.1f%%", 100*c.Accuracy())
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// RenderTable3 prints the 51-workflow accuracy table in the paper's
// Table III layout (three mode rows per workflow group), followed by the
// summary lines the paper quotes.
func RenderTable3(w io.Writer, sum *Table3Summary) {
	const perLine = 9
	for start := 0; start < len(sum.Rows); start += perLine {
		end := start + perLine
		if end > len(sum.Rows) {
			end = len(sum.Rows)
		}
		chunk := sum.Rows[start:end]
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "")
		for _, r := range chunk {
			fmt.Fprintf(tw, "\t%s", r.Label)
		}
		fmt.Fprintln(tw)
		for _, mode := range statemodel.Modes() {
			fmt.Fprint(tw, mode.String())
			for _, r := range chunk {
				fmt.Fprintf(tw, "\t%.4f", r.Accuracy[mode])
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	modes := statemodel.Modes()
	sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
	for _, mode := range modes {
		fmt.Fprintf(w, "%-12s avg accuracy %.2f%%  min %.2f%%\n",
			mode, 100*sum.AvgAccuracy[mode], 100*sum.MinAccuracy[mode])
	}
	fmt.Fprintf(w, "max estimation overhead: %s\n", sum.MaxEstimationTime)
}
