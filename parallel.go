package boedag

import (
	"context"

	"boedag/internal/evalpool"
)

// Parallel evaluation. The evalpool engine runs independent model
// evaluations — sweep points, tuning candidates, calibration probes —
// through a bounded worker pool with deterministic result ordering, and
// memoizes plans and simulation results by canonical input signature.
type (
	// PoolOptions configure a parallel run.
	PoolOptions = evalpool.Options
	// PlanCache memoizes estimator plans by workflow signature.
	PlanCache = evalpool.PlanCache
	// ResultCache memoizes simulation results by workflow signature.
	ResultCache = evalpool.ResultCache
)

// Cache constructors.
var (
	// NewPlanCache returns an empty estimator-plan cache.
	NewPlanCache = evalpool.NewPlanCache
	// NewResultCache returns an empty simulation-result cache.
	NewResultCache = evalpool.NewResultCache
)

// RunParallel executes the jobs on a bounded worker pool and returns
// their results in input order; errors are aggregated with the failing
// job's index. Workers < 1 means one worker per available CPU.
func RunParallel[T any](ctx context.Context, jobs []func() (T, error), workers int) ([]T, error) {
	return evalpool.Run(ctx, jobs, workers)
}
