package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"boedag/internal/simulator"
	"boedag/internal/statemodel"
)

// ExportTasksCSV writes a simulation result's task records as CSV, one
// row per task, timestamps in seconds — the format external plotting
// tools consume directly.
func ExportTasksCSV(w io.Writer, res *simulator.Result) error {
	cw := csv.NewWriter(w)
	header := []string{"job", "stage", "index", "start_s", "end_s", "duration_s",
		"bottleneck", "size_factor", "retries"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: export tasks: %w", err)
	}
	for _, t := range res.Tasks {
		row := []string{
			t.Job,
			t.Stage.String(),
			strconv.Itoa(t.Index),
			formatSec(t.Start.Seconds()),
			formatSec(t.End.Seconds()),
			formatSec(t.Duration().Seconds()),
			t.Bottleneck.String(),
			strconv.FormatFloat(t.SizeFactor, 'f', 4, 64),
			strconv.Itoa(t.Retries),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: export tasks: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: export tasks: %w", err)
	}
	return nil
}

// ExportStagesCSV writes a result's stage records as CSV.
func ExportStagesCSV(w io.Writer, res *simulator.Result) error {
	cw := csv.NewWriter(w)
	header := []string{"job", "stage", "start_s", "end_s", "duration_s",
		"tasks", "max_parallelism", "median_task_s", "mean_task_s", "bottleneck"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: export stages: %w", err)
	}
	for _, s := range res.Stages {
		row := []string{
			s.Job,
			s.Stage.String(),
			formatSec(s.Start.Seconds()),
			formatSec(s.End.Seconds()),
			formatSec(s.Duration().Seconds()),
			strconv.Itoa(len(s.TaskTimes)),
			strconv.Itoa(s.MaxParallelism),
			formatSec(s.MedianTaskTime().Seconds()),
			formatSec(s.MeanTaskTime().Seconds()),
			s.Bottleneck.String(),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: export stages: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: export stages: %w", err)
	}
	return nil
}

// resultJSON is the stable exported shape of a run (field names are the
// public contract, independent of internal struct layout).
type resultJSON struct {
	Workflow string      `json:"workflow"`
	Makespan float64     `json:"makespan_s"`
	Stages   []stageJSON `json:"stages"`
	States   []stateJSON `json:"states"`
	Tasks    int         `json:"tasks"`
	Retries  int         `json:"retries"`
}

type stageJSON struct {
	Job            string  `json:"job"`
	Stage          string  `json:"stage"`
	Start          float64 `json:"start_s"`
	End            float64 `json:"end_s"`
	Tasks          int     `json:"tasks"`
	MaxParallelism int     `json:"max_parallelism"`
	MedianTask     float64 `json:"median_task_s"`
	Bottleneck     string  `json:"bottleneck"`
}

type stateJSON struct {
	Seq     int      `json:"seq"`
	Start   float64  `json:"start_s"`
	End     float64  `json:"end_s"`
	Running []string `json:"running"`
}

// ExportResultJSON writes a run summary as indented JSON.
func ExportResultJSON(w io.Writer, res *simulator.Result) error {
	out := resultJSON{
		Workflow: res.Workflow,
		Makespan: res.Makespan.Seconds(),
		Tasks:    len(res.Tasks),
		Retries:  res.TotalRetries(),
	}
	for _, s := range res.Stages {
		out.Stages = append(out.Stages, stageJSON{
			Job:            s.Job,
			Stage:          s.Stage.String(),
			Start:          s.Start.Seconds(),
			End:            s.End.Seconds(),
			Tasks:          len(s.TaskTimes),
			MaxParallelism: s.MaxParallelism,
			MedianTask:     s.MedianTaskTime().Seconds(),
			Bottleneck:     s.Bottleneck.String(),
		})
	}
	for _, st := range res.States {
		out.States = append(out.States, stateJSON{
			Seq: st.Seq, Start: st.Start.Seconds(), End: st.End.Seconds(), Running: st.Running,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: export result: %w", err)
	}
	return nil
}

// planJSON mirrors resultJSON for estimated plans, so a prediction and a
// run diff cleanly.
type planJSON struct {
	Workflow string          `json:"workflow"`
	Makespan float64         `json:"makespan_s"`
	Stages   []planStageJSON `json:"stages"`
	States   []stateJSON     `json:"states"`
}

type planStageJSON struct {
	Job         string  `json:"job"`
	Stage       string  `json:"stage"`
	Start       float64 `json:"start_s"`
	End         float64 `json:"end_s"`
	TaskTime    float64 `json:"task_time_s"`
	Parallelism int     `json:"parallelism"`
}

// ExportPlanJSON writes an estimated plan as indented JSON.
func ExportPlanJSON(w io.Writer, plan *statemodel.Plan) error {
	out := planJSON{Workflow: plan.Workflow, Makespan: plan.Makespan.Seconds()}
	for _, s := range plan.Stages {
		out.Stages = append(out.Stages, planStageJSON{
			Job:         s.Job,
			Stage:       s.Stage.String(),
			Start:       s.Start.Seconds(),
			End:         s.End.Seconds(),
			TaskTime:    s.TaskTime.Seconds(),
			Parallelism: s.Parallelism,
		})
	}
	for _, st := range plan.States {
		out.States = append(out.States, stateJSON{
			Seq: st.Seq, Start: st.Start.Seconds(), End: st.End.Seconds(), Running: st.Running,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: export plan: %w", err)
	}
	return nil
}

func formatSec(s float64) string { return strconv.FormatFloat(s, 'f', 3, 64) }
