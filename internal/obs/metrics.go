package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric (tasks scheduled,
// estimator iterations, retries). Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0; negative deltas are ignored to keep the
// counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric (current utilization, live
// state count). Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of exponential histogram buckets: bounds are
// histBase·2^i, covering ~1 ms to ~9 h of seconds-valued observations
// (values outside the range clamp into the edge buckets).
const (
	histBuckets = 26
	histBase    = 0.001
)

// Histogram accumulates a distribution of float64 observations (queue
// waits, task durations, state spans) into exponential base-2 buckets
// plus exact count/sum/min/max. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// bucketOf maps a value to its exponential bucket index.
func bucketOf(v float64) int {
	if v <= histBase {
		return 0
	}
	i := int(math.Ceil(math.Log2(v / histBase)))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) float64 { return histBase * math.Pow(2, float64(i)) }

// Buckets snapshots the histogram's exponential buckets: counts holds
// every bucket's population (length histBuckets) and bounds the inclusive
// upper bound of each bucket but the overflow one (length histBuckets-1)
// — exactly the bucketCounts/explicitBounds split the OTLP histogram
// encoding wants.
func (h *Histogram) Buckets() (counts []int64, bounds []float64) {
	h.mu.Lock()
	counts = append(counts, h.buckets[:]...)
	h.mu.Unlock()
	bounds = make([]float64, histBuckets-1)
	for i := range bounds {
		bounds[i] = bucketUpper(i)
	}
	return counts, bounds
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (zero when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (zero when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (zero when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile approximates the q-quantile (0 < q ≤ 1) from the bucket
// counts: it returns the upper bound of the bucket holding the q·count-th
// observation, clamped to the observed min/max. Zero when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i]
		if seen >= rank {
			ub := bucketUpper(i)
			if i == histBuckets-1 || ub > h.max {
				// The overflow bucket has no meaningful upper bound.
				ub = h.max
			}
			if ub < h.min {
				ub = h.min
			}
			return ub
		}
	}
	return h.max
}

// Registry holds named metrics. Instruments are created on first use and
// shared thereafter: Counter("x") always returns the same *Counter.
// Safe for concurrent use; resolve instruments once outside hot loops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// snapshot freezes the registry into sorted name lists for export.
func (r *Registry) snapshot() (counters []string, gauges []string, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// histJSON is a histogram's exported summary.
type histJSON struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func (h *Histogram) summary() histJSON {
	return histJSON{
		Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
		Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90),
		P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
}

// sortedMap marshals its entries in explicit sorted-key order, so the
// metrics dump is byte-deterministic by construction rather than by
// relying on encoding/json's map-key sorting (and stays deterministic if
// structured label keys ever join the plain names).
type sortedMap[V any] struct {
	keys []string
	vals map[string]V
}

func (s sortedMap[V]) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range s.keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(s.vals[k])
		if err != nil {
			return nil, err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// WriteJSON dumps every metric as indented JSON, metric names sorted —
// the -metrics-out format of the command-line tools, pinned by the
// golden-file test in internal/trace.
func (r *Registry) WriteJSON(w io.Writer) error {
	cn, gn, hn := r.snapshot()
	out := struct {
		Counters   sortedMap[int64]    `json:"counters"`
		Gauges     sortedMap[float64]  `json:"gauges"`
		Histograms sortedMap[histJSON] `json:"histograms"`
	}{
		Counters:   sortedMap[int64]{keys: cn, vals: make(map[string]int64, len(cn))},
		Gauges:     sortedMap[float64]{keys: gn, vals: make(map[string]float64, len(gn))},
		Histograms: sortedMap[histJSON]{keys: hn, vals: make(map[string]histJSON, len(hn))},
	}
	for _, n := range cn {
		out.Counters.vals[n] = r.Counter(n).Value()
	}
	for _, n := range gn {
		out.Gauges.vals[n] = r.Gauge(n).Value()
	}
	for _, n := range hn {
		out.Histograms.vals[n] = r.Histogram(n).summary()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: write metrics json: %w", err)
	}
	return nil
}

// WriteText renders every metric as aligned plain text, sorted by name —
// the human half of the registry's two export formats.
func (r *Registry) WriteText(w io.Writer) error {
	cn, gn, hn := r.snapshot()
	if len(cn) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, n := range cn {
			fmt.Fprintf(w, "  %-36s %d\n", n, r.Counter(n).Value())
		}
	}
	if len(gn) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, n := range gn {
			fmt.Fprintf(w, "  %-36s %.4f\n", n, r.Gauge(n).Value())
		}
	}
	if len(hn) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, n := range hn {
			s := r.Histogram(n).summary()
			fmt.Fprintf(w, "  %-36s n=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f\n",
				n, s.Count, s.Mean, s.Min, s.P50, s.P90, s.P95, s.P99, s.Max)
		}
	}
	return nil
}
