package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startServing runs srv.Serve on an ephemeral listener and returns the
// base URL, the cancel that triggers the drain, and the channel carrying
// Serve's return value.
func startServing(t *testing.T, s *Server) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(ctx, ln) }()
	t.Cleanup(cancel)
	return "http://" + ln.Addr().String(), cancel, errCh
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	return env.Error.Code
}

// TestGracefulDrain exercises the full shutdown choreography over a real
// listener: cancelling the serve context flips readiness and refuses new
// /v1 requests with 503 while the in-flight request — still blocked in
// its estimator — runs to completion, and only then does the listener
// close, within the drain deadline.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.testHookEstimate = func() { <-release }
	url, cancel, errCh := startServing(t, s)

	// One request in flight, blocked inside the estimator.
	type outcome struct {
		status int
		body   []byte
		err    error
	}
	body := readRequest(t, "estimate_wc_ts")
	inflight := make(chan outcome, 1)
	go func() {
		status, b, _, err := tryPost(url+"/v1/estimate", body)
		inflight <- outcome{status, b, err}
	}()
	pollUntil(t, "in-flight request to reach the estimator", func() bool {
		_, misses := s.CacheStats()
		return misses == 1
	})

	// Start the drain; wait for readiness to flip.
	cancel()
	pollUntil(t, "readiness to flip", func() bool {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})

	// New prediction requests are refused — over a fresh connection, since
	// the listener stays open through the drain.
	status, resp, hdr := post(t, url+"/v1/estimate", body)
	if status != http.StatusServiceUnavailable || errCode(t, resp) != CodeDraining {
		t.Fatalf("during drain: status %d body %s", status, resp)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 misses Retry-After")
	}

	// The in-flight request must still complete once unblocked...
	close(release)
	res := <-inflight
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d err %v body %s", res.status, res.err, res.body)
	}

	// ...and Serve must return cleanly within the drain deadline, after
	// which the listener is gone.
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("Serve returned %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drain completed")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting connections after drain")
	}
}

// TestDrainDeadline: a request that never finishes forces Shutdown to
// give up at the drain deadline and report the stuck request.
func TestDrainDeadline(t *testing.T) {
	s, err := New(Config{DrainTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.testHookEstimate = func() { <-release }
	url, cancel, errCh := startServing(t, s)
	defer close(release)

	body := readRequest(t, "estimate_wc_ts")
	go tryPost(url+"/v1/estimate", body)
	pollUntil(t, "request to reach the estimator", func() bool {
		_, misses := s.CacheStats()
		return misses == 1
	})
	cancel()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "drain deadline exceeded") {
			t.Fatalf("Serve returned %v, want drain deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drain deadline")
	}
}

// TestQueueFull pins the admission queue: with one execution slot and a
// one-deep queue, a third concurrent request is refused with 503
// overloaded + Retry-After, while the admitted two eventually succeed.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1,
		RetryAfter: 2 * time.Second})
	s.testHookEstimate = func() { <-release }

	// Distinct scenarios so the second admitted request cannot ride the
	// first one's cache entry while queued.
	first := []byte(`{"workflow":"wc","options":{"micro_gb":2}}`)
	second := []byte(`{"workflow":"ts","options":{"micro_gb":2}}`)

	done := make(chan int, 2)
	go func() {
		status, _, _, _ := tryPost(ts.URL+"/v1/estimate", first)
		done <- status
	}()
	pollUntil(t, "first request to hold the slot", func() bool {
		_, misses := s.CacheStats()
		return misses == 1
	})
	go func() {
		status, _, _, _ := tryPost(ts.URL+"/v1/estimate", second)
		done <- status
	}()
	pollUntil(t, "second request to queue", func() bool {
		return counter(t, s, "http_queued") == 1
	})

	status, body, hdr := post(t, ts.URL+"/v1/estimate", second)
	if status != http.StatusServiceUnavailable || errCode(t, body) != CodeOverloaded {
		t.Fatalf("third request: status %d body %s", status, body)
	}
	if got := hdr.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if got := counter(t, s, "http_rejected"); got != 1 {
		t.Errorf("http_rejected = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if status := <-done; status != http.StatusOK {
			t.Errorf("admitted request finished with status %d", status)
		}
	}
}

// TestRequestTimeout covers both deadline sources: the server-wide
// ceiling and a scenario's own timeout_ms. The estimator is made slow;
// the caller must get its 504 at the deadline, not at completion.
func TestRequestTimeout(t *testing.T) {
	t.Run("per_scenario", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		s, ts := newTestServer(t, Config{})
		s.testHookEstimate = func() { <-release }
		body := []byte(`{"workflow":"wc","options":{"timeout_ms":50}}`)
		t0 := time.Now()
		status, resp, _ := post(t, ts.URL+"/v1/estimate", body)
		if status != http.StatusGatewayTimeout || errCode(t, resp) != CodeTimeout {
			t.Fatalf("status %d body %s", status, resp)
		}
		if waited := time.Since(t0); waited > 3*time.Second {
			t.Errorf("timeout answered after %v, deadline was 50ms", waited)
		}
	})
	t.Run("server_ceiling", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		s, ts := newTestServer(t, Config{RequestTimeout: 50 * time.Millisecond})
		s.testHookEstimate = func() { <-release }
		status, resp, _ := post(t, ts.URL+"/v1/estimate", readRequest(t, "estimate_wc_ts"))
		if status != http.StatusGatewayTimeout || errCode(t, resp) != CodeTimeout {
			t.Fatalf("status %d body %s", status, resp)
		}
	})
	t.Run("batch_scenario_timeout", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		s, ts := newTestServer(t, Config{Workers: 2})
		s.testHookEstimate = func() { <-release }
		body := []byte(`{"scenarios":[{"workflow":"wc","options":{"timeout_ms":50}}]}`)
		status, resp, _ := post(t, ts.URL+"/v1/batch", body)
		if status != http.StatusOK {
			t.Fatalf("status %d body %s", status, resp)
		}
		var out BatchResponse
		if err := json.Unmarshal(resp, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Results) != 1 || out.Results[0].Error == nil ||
			out.Results[0].Error.Code != CodeTimeout {
			t.Fatalf("batch result = %s", resp)
		}
	})
}

// TestPanicRecovery: a panicking estimator yields a JSON 500 on that
// request only; the daemon keeps serving.
func TestPanicRecovery(t *testing.T) {
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{})
	s.testHookEstimate = func() {
		if calls.Add(1) == 1 {
			panic("estimator exploded")
		}
	}
	status, body, _ := post(t, ts.URL+"/v1/estimate", readRequest(t, "estimate_wc_ts"))
	if status != http.StatusInternalServerError || errCode(t, body) != CodeInternal {
		t.Fatalf("panicking request: status %d body %s", status, body)
	}
	if got := counter(t, s, "http_panics"); got != 1 {
		t.Errorf("http_panics = %d, want 1", got)
	}
	// Same scenario again: the failed computation must not have poisoned
	// the cache.
	status, body, _ = post(t, ts.URL+"/v1/estimate", readRequest(t, "estimate_wc_ts"))
	if status != http.StatusOK {
		t.Fatalf("request after panic: status %d body %s", status, body)
	}
}
