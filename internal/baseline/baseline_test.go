package baseline

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"boedag/internal/boe"
	"boedag/internal/profile"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func profiledSet() *profile.Set {
	return &profile.Set{
		Workflow: "prof",
		Stages: map[string][]profile.StageProfile{
			"wc": {
				{
					Job: "wc", Stage: workload.Map, Parallelism: 22,
					TaskTimes: []time.Duration{9 * time.Second, 10 * time.Second, 11 * time.Second},
				},
				{
					Job: "wc", Stage: workload.Reduce, Parallelism: 22,
					TaskTimes: []time.Duration{20 * time.Second, 30 * time.Second, 40 * time.Second},
				},
			},
		},
	}
}

func TestReplayIgnoresParallelism(t *testing.T) {
	m := NewProfileReplay(profiledSet())
	var prev time.Duration
	for i, d := range []int{1, 6, 12, 66, 132} {
		got, err := m.TaskTime("wc", workload.Map, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != 10*time.Second {
			t.Errorf("replay at Δ=%d = %v, want the profiled 10s median", d, got)
		}
		if i > 0 && got != prev {
			t.Errorf("replay changed with parallelism: %v vs %v", got, prev)
		}
		prev = got
	}
}

func TestReplayMissingProfile(t *testing.T) {
	m := NewProfileReplay(profiledSet())
	if _, err := m.TaskTime("nope", workload.Map, 4); err == nil {
		t.Fatal("missing profile accepted")
	}
}

func TestReplayTaskDist(t *testing.T) {
	m := NewProfileReplay(profiledSet())
	groups := []boe.TaskGroup{{
		Profile: workload.WordCount(units.GB), Stage: workload.Reduce, Parallelism: 4,
	}}
	d := m.TaskDist("wc", groups, 0)
	if d.Mean != 30*time.Second || d.Median != 30*time.Second {
		t.Errorf("dist = %+v", d)
	}
	if d.Std != 10*time.Second {
		t.Errorf("std = %v, want 10s", d.Std)
	}
	if d2 := m.TaskDist("unknown", groups, 0); d2.Mean != 0 {
		t.Errorf("unknown job dist = %+v, want zero", d2)
	}
}

func TestErnestRecoversSyntheticLaw(t *testing.T) {
	// t(Δ) = 3 + 120/Δ + 0.25·Δ, sampled at 4 parallelisms.
	law := func(d int) time.Duration {
		return time.Duration((3 + 120/float64(d) + 0.25*float64(d)) * float64(time.Second))
	}
	var e Ernest
	var pts []TrainingPoint
	for _, d := range []int{1, 2, 8, 32} {
		pts = append(pts, TrainingPoint{Parallelism: d, TaskTime: law(d)})
	}
	if err := e.Fit(pts); err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{4, 16, 64} {
		got, err := e.Predict(d)
		if err != nil {
			t.Fatal(err)
		}
		want := law(d)
		if math.Abs(got.Seconds()-want.Seconds()) > 0.01*want.Seconds()+0.01 {
			t.Errorf("Predict(%d) = %v, want %v", d, got, want)
		}
	}
}

func TestErnestNeedsThreePoints(t *testing.T) {
	var e Ernest
	err := e.Fit([]TrainingPoint{
		{Parallelism: 1, TaskTime: time.Second},
		{Parallelism: 2, TaskTime: time.Second},
	})
	if err == nil {
		t.Fatal("two points accepted")
	}
}

func TestErnestRejectsSingularDesign(t *testing.T) {
	var e Ernest
	pts := []TrainingPoint{
		{Parallelism: 4, TaskTime: time.Second},
		{Parallelism: 4, TaskTime: 2 * time.Second},
		{Parallelism: 4, TaskTime: 3 * time.Second},
	}
	if err := e.Fit(pts); err == nil {
		t.Fatal("identical parallelisms accepted")
	}
}

func TestErnestRejectsBadInputs(t *testing.T) {
	var e Ernest
	if _, err := e.Predict(4); err == nil {
		t.Fatal("untrained predict accepted")
	}
	err := e.Fit([]TrainingPoint{
		{Parallelism: 0, TaskTime: time.Second},
		{Parallelism: 2, TaskTime: time.Second},
		{Parallelism: 3, TaskTime: time.Second},
	})
	if err == nil {
		t.Fatal("zero parallelism accepted")
	}
	pts := []TrainingPoint{
		{Parallelism: 1, TaskTime: time.Second},
		{Parallelism: 2, TaskTime: time.Second},
		{Parallelism: 3, TaskTime: time.Second},
	}
	if err := e.Fit(pts); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(0); err == nil {
		t.Fatal("Predict(0) accepted")
	}
}

func TestErnestClampsNegativePredictions(t *testing.T) {
	var e Ernest
	// A steeply falling line can extrapolate negative; Predict must clamp.
	pts := []TrainingPoint{
		{Parallelism: 1, TaskTime: 10 * time.Second},
		{Parallelism: 2, TaskTime: 4 * time.Second},
		{Parallelism: 3, TaskTime: 1 * time.Second},
	}
	if err := e.Fit(pts); err != nil {
		t.Fatal(err)
	}
	got, err := e.Predict(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 {
		t.Errorf("Predict extrapolated negative: %v", got)
	}
}

// Property: fitting exact samples of any well-conditioned law recovers
// the in-sample points.
func TestErnestInterpolatesTrainingPoints(t *testing.T) {
	f := func(a, b, c uint8) bool {
		law := func(d int) float64 {
			return 1 + float64(a%50) + float64(b)/float64(d) + float64(c%10)/10*float64(d)
		}
		var e Ernest
		var pts []TrainingPoint
		for _, d := range []int{1, 3, 9, 27} {
			pts = append(pts, TrainingPoint{d, time.Duration(law(d) * float64(time.Second))})
		}
		if err := e.Fit(pts); err != nil {
			return false
		}
		for _, p := range pts {
			got, err := e.Predict(p.Parallelism)
			if err != nil {
				return false
			}
			if math.Abs(got.Seconds()-p.TaskTime.Seconds()) > 0.01+0.01*p.TaskTime.Seconds() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolve3(t *testing.T) {
	// x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 → x=5, y=3, z=-2.
	a := [3][3]float64{{1, 1, 1}, {0, 2, 5}, {2, 5, -1}}
	b := [3]float64{6, -4, 27}
	x, ok := solve3(a, b)
	if !ok {
		t.Fatal("singular?")
	}
	want := [3]float64{5, 3, -2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if _, ok := solve3([3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}, b); ok {
		t.Error("singular matrix solved")
	}
}
