// Command otlpcheck validates the shape of an OTLP/JSON export produced
// with -otlp-out: it decodes the file with encoding/json into the
// resourceSpans / resourceMetrics structure an OTLP collector expects
// and asserts the invariants a consumer relies on (well-formed hex ids,
// timestamps on every span, resolvable parent links, populated metric
// data points). hack/verify.sh runs it against a fresh boepredict
// export.
//
// Usage: go run ./hack/otlpcheck <export.json>
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type export struct {
	ResourceSpans []struct {
		Resource struct {
			Attributes []struct {
				Key   string `json:"key"`
				Value struct {
					StringValue string `json:"stringValue"`
				} `json:"value"`
			} `json:"attributes"`
		} `json:"resource"`
		ScopeSpans []struct {
			Scope struct {
				Name string `json:"name"`
			} `json:"scope"`
			Spans []struct {
				TraceID           string `json:"traceId"`
				SpanID            string `json:"spanId"`
				ParentSpanID      string `json:"parentSpanId"`
				Name              string `json:"name"`
				StartTimeUnixNano string `json:"startTimeUnixNano"`
				EndTimeUnixNano   string `json:"endTimeUnixNano"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
	ResourceMetrics []struct {
		ScopeMetrics []struct {
			Metrics []struct {
				Name      string          `json:"name"`
				Sum       json.RawMessage `json:"sum"`
				Gauge     json.RawMessage `json:"gauge"`
				Histogram json.RawMessage `json:"histogram"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: otlpcheck <export.json>")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var e export
	if err := json.Unmarshal(raw, &e); err != nil {
		fail("export does not decode as OTLP/JSON: %v", err)
	}

	if len(e.ResourceSpans) == 0 {
		fail("no resourceSpans")
	}
	spans, ids := 0, map[string]bool{}
	for _, rs := range e.ResourceSpans {
		service := ""
		for _, a := range rs.Resource.Attributes {
			if a.Key == "service.name" {
				service = a.Value.StringValue
			}
		}
		if service == "" {
			fail("resource missing service.name attribute")
		}
		if len(rs.ScopeSpans) == 0 {
			fail("resourceSpans entry has no scopeSpans")
		}
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				spans++
				if !hexID(sp.TraceID, 32) {
					fail("span %q has malformed traceId %q", sp.Name, sp.TraceID)
				}
				if !hexID(sp.SpanID, 16) {
					fail("span %q has malformed spanId %q", sp.Name, sp.SpanID)
				}
				if sp.Name == "" || sp.StartTimeUnixNano == "" || sp.EndTimeUnixNano == "" {
					fail("span %+v missing name or timestamps", sp)
				}
				ids[sp.SpanID] = true
			}
		}
	}
	if spans == 0 {
		fail("export holds zero spans")
	}
	// Every parent link must resolve within the export.
	for _, rs := range e.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				if sp.ParentSpanID != "" && !ids[sp.ParentSpanID] {
					fail("span %q parent %s not in export", sp.Name, sp.ParentSpanID)
				}
			}
		}
	}

	metrics := 0
	for _, rm := range e.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				metrics++
				if m.Name == "" {
					fail("metric with empty name")
				}
				if m.Sum == nil && m.Gauge == nil && m.Histogram == nil {
					fail("metric %q has no data", m.Name)
				}
			}
		}
	}
	if len(e.ResourceMetrics) > 0 && metrics == 0 {
		fail("resourceMetrics present but empty")
	}

	fmt.Printf("otlpcheck OK: %d spans, %d metrics\n", spans, metrics)
}

func hexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "otlpcheck: "+format+"\n", args...)
	os.Exit(1)
}
