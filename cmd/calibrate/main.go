// Command calibrate recovers a cluster's resource throughputs — the θ_X
// constants the BOE model consumes — either by probing a simulated
// cluster live, or offline from a recorded Chrome trace of a probe
// session. Against the built-in simulator it demonstrates the closed
// loop: probing the simulated paper cluster recovers the paper cluster's
// specification.
//
// Usage:
//
//	calibrate                     # probe the default paper cluster
//	calibrate -nodes 20 -cores 8  # probe a custom-sized simulated cluster
//	calibrate -from-trace probes.trace.json            # offline, from a recording
//	calibrate -from-trace a.json,b.json -spec-out c.json  # multi-probe session
//
// Record a probe session with either tool:
//
//	calibrate -trace-out probes.trace.json
//	dagsim -workflow cal-overhead,cal-cpu,cal-read,cal-write,cal-net -trace-out probes.trace.json
//
// -spec-out writes the recovered specification as cluster JSON that
// `dagsim -cluster` accepts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"boedag/internal/calibrate"
	"boedag/internal/cliobs"
	"boedag/internal/cluster"
	"boedag/internal/units"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 11, "cluster node count")
		cores     = flag.Int("cores", 6, "cores per node (operator-known; not recoverable from probes)")
		coreMB    = flag.Float64("core-mbps", 50, "true per-core throughput (MB/s) of the simulated cluster")
		netMB     = flag.Float64("net-mbps", 125, "true NIC rate (MB/s)")
		diskMB    = flag.Float64("disk-mbps", 100, "true per-disk rate (MB/s)")
		disks     = flag.Int("disks", 2, "disks per node")
		slotsPN   = flag.Int("slots", 12, "task slots per node")
		memoryMB  = flag.Int("memory-mb", 32*1024, "memory per node (MB; operator-known)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent probe executions (1 = serial)")
		fromTrace = flag.String("from-trace", "", "calibrate offline from recorded Chrome trace file(s), comma-separated")
		specOut   = flag.String("spec-out", "", "write the recovered cluster spec as JSON for `dagsim -cluster`")
	)
	var ob cliobs.Flags
	ob.Register(nil)
	flag.Parse()

	if *fromTrace != "" {
		if err := runFromTrace(*fromTrace, *specOut, *cores, *memoryMB); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		return
	}

	observe, err := ob.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	spec := cluster.Spec{
		Nodes:        *nodes,
		SlotsPerNode: *slotsPN,
		Node: cluster.NodeSpec{
			Cores:          *cores,
			CoreThroughput: units.Rate(*coreMB) * units.MBps,
			Disks:          *disks,
			DiskReadRate:   units.Rate(*diskMB) * units.MBps,
			DiskWriteRate:  units.Rate(*diskMB) * units.MBps,
			NetworkRate:    units.Rate(*netMB) * units.MBps,
			MemoryMB:       *memoryMB,
		},
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	est, err := calibrate.ClusterWith(calibrate.SimulatorRunner(spec, observe), spec.TotalSlots(), spec.Nodes,
		calibrate.Options{Workers: *workers, Observe: observe})
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("probed %d nodes (%d slots):\n", spec.Nodes, spec.TotalSlots())
	fmt.Printf("  task launch overhead: %v\n", est.TaskOverhead)
	fmt.Printf("  core throughput:      %v   (true %v)\n",
		est.CoreThroughput, spec.Node.CoreThroughput)
	fmt.Printf("  disk read pool:       %v   (true %v)\n",
		est.DiskReadPool, spec.TotalCapacity(cluster.DiskRead))
	fmt.Printf("  disk write pool:      %v   (true %v)\n",
		est.DiskWritePool, spec.TotalCapacity(cluster.DiskWrite))
	fmt.Printf("  network pool:         %v   (true %v)\n",
		est.NetworkPool, spec.TotalCapacity(cluster.Network))
	node := est.NodeSpec(spec.Nodes, spec.Node.Cores, spec.Node.MemoryMB)
	fmt.Printf("\nrecovered per-node spec: %d cores × %v, disk %v/%v, NIC %v\n",
		node.Cores, node.CoreThroughput, node.DiskReadRate, node.DiskWriteRate, node.NetworkRate)
	if *specOut != "" {
		if err := writeRecoveredSpec(*specOut, est.NodeSpec(spec.Nodes, *cores, *memoryMB), spec.Nodes, spec.SlotsPerNode); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote recovered spec to %s\n", *specOut)
	}
	if err := ob.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

// runFromTrace is the offline path: parse the recorded session(s),
// replay the inversion, report with per-resource confidence.
func runFromTrace(files, specOut string, cores, memoryMB int) error {
	paths := strings.Split(files, ",")
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}
	cal, err := calibrate.FromTraceFiles(paths...)
	if err != nil {
		return err
	}
	if err := cal.WriteReport(os.Stdout); err != nil {
		return err
	}
	if specOut != "" {
		slotsPerNode := cal.Slots / cal.Nodes
		if err := writeRecoveredSpec(specOut, cal.NodeSpec(cal.Nodes, cores, memoryMB), cal.Nodes, slotsPerNode); err != nil {
			return err
		}
		fmt.Printf("wrote recovered spec to %s\n", specOut)
	}
	return nil
}

func writeRecoveredSpec(path string, node cluster.NodeSpec, nodes, slotsPerNode int) error {
	return cluster.WriteSpecFile(path, cluster.Spec{
		Nodes: nodes, SlotsPerNode: slotsPerNode, Node: node,
	})
}
