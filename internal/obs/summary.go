package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// WriteSummary renders a plain-text report over a recorded event stream:
// event counts by type, per-job task statistics, and the workflow state
// timeline — the quick look before reaching for chrome://tracing.
func WriteSummary(w io.Writer, events []Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events recorded)")
		return
	}

	byType := make(map[EventType]int)
	type jobStat struct {
		tasks   int
		retries int
		taskSum float64
	}
	jobs := make(map[string]*jobStat)
	durs := make(map[EventType][]float64)
	span := 0.0
	var states []Event
	for _, ev := range events {
		byType[ev.Type]++
		if end := ev.Time + ev.Dur; end > span {
			span = end
		}
		if spanEvent(ev) {
			durs[ev.Type] = append(durs[ev.Type], ev.Dur)
		}
		switch ev.Type {
		case EvTaskFinish:
			js := jobs[ev.Job]
			if js == nil {
				js = &jobStat{}
				jobs[ev.Job] = js
			}
			js.tasks++
			js.taskSum += ev.Dur
		case EvTaskRetry:
			js := jobs[ev.Job]
			if js == nil {
				js = &jobStat{}
				jobs[ev.Job] = js
			}
			js.retries++
		case EvStateClose:
			states = append(states, ev)
		}
	}

	fmt.Fprintf(w, "observability summary: %d events over %.1fs\n", len(events), span)

	fmt.Fprintln(w, "events by type:")
	types := make([]EventType, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(a, b int) bool { return types[a] < types[b] })
	for _, t := range types {
		fmt.Fprintf(w, "  %-18s %d\n", t, byType[t])
	}

	if len(durs) > 0 {
		fmt.Fprintln(w, "duration quantiles:")
		dtypes := make([]EventType, 0, len(durs))
		for t := range durs {
			dtypes = append(dtypes, t)
		}
		sort.Slice(dtypes, func(a, b int) bool { return dtypes[a] < dtypes[b] })
		for _, t := range dtypes {
			samples := durs[t]
			fmt.Fprintf(w, "  %-18s n=%-5d p50=%6.1fs p90=%6.1fs p99=%6.1fs\n",
				t, len(samples),
				Percentile(samples, 0.50), Percentile(samples, 0.90), Percentile(samples, 0.99))
		}
	}

	if len(jobs) > 0 {
		fmt.Fprintln(w, "tasks by job:")
		names := make([]string, 0, len(jobs))
		for j := range jobs {
			names = append(names, j)
		}
		sort.Strings(names)
		for _, j := range names {
			js := jobs[j]
			mean := 0.0
			if js.tasks > 0 {
				mean = js.taskSum / float64(js.tasks)
			}
			fmt.Fprintf(w, "  %-12s %4d tasks, mean %6.1fs, %d retries\n",
				j, js.tasks, mean, js.retries)
		}
	}

	if len(states) > 0 {
		fmt.Fprintln(w, "workflow states:")
		for _, st := range states {
			fmt.Fprintf(w, "  state %2d [%7.1fs .. %7.1fs] %s — bound on %s (%.0f%%)\n",
				st.Seq, st.Time, st.Time+st.Dur, st.Detail, st.Resource, 100*st.Value)
		}
	}
}

// Percentile returns the exact nearest-rank q-quantile (0 < q ≤ 1) of
// the samples — unlike Histogram.Quantile there is no bucket rounding,
// since the summary holds the raw durations anyway. Zero when empty.
// The input is not modified.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
