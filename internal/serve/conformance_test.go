package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The conformance suite pins the daemon's wire contract black-box: every
// request goes over a real httptest listener and the response bytes are
// compared against the golden files in testdata/ (regenerate with
// `go test ./internal/serve -run TestConformance -update`).

var update = flag.Bool("update", false, "rewrite golden files")

// newTestServer builds a server plus its HTTP front end. The returned
// *Server gives tests in-process access to metrics and cache counters;
// everything else goes over the wire.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns status + body bytes.
func post(t *testing.T, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	status, b, hdr, err := tryPost(url, body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return status, b, hdr
}

// tryPost is post without the test dependency, safe from any goroutine.
func tryPost(url string, body []byte) (int, []byte, http.Header, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, b, resp.Header, nil
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b, resp.Header
}

// checkGolden compares got against testdata/<name>.golden.json,
// rewriting it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: response diverged from golden.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// readRequest loads a canned request body from testdata; these files
// double as the fuzz seed corpus.
func readRequest(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name+".req.json"))
	if err != nil {
		t.Fatalf("read request %s: %v", name, err)
	}
	return b
}

func TestConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	cases := []struct {
		name     string // testdata basename
		path     string
		status   int
		wantCode string // expected error code for non-200s
	}{
		{"estimate_wc_ts", "/v1/estimate", http.StatusOK, ""},
		{"estimate_inline_spec", "/v1/estimate", http.StatusOK, ""},
		{"estimate_options", "/v1/estimate", http.StatusOK, ""},
		{"estimate_cluster_override", "/v1/estimate", http.StatusOK, ""},
		{"explain_wc_ts", "/v1/explain", http.StatusOK, ""},
		{"explain_unknown_workflow", "/v1/explain", http.StatusBadRequest, CodeUnknownWorkflow},
		{"batch_mixed", "/v1/batch", http.StatusOK, ""},
		{"estimate_unknown_workflow", "/v1/estimate", http.StatusBadRequest, CodeUnknownWorkflow},
		{"estimate_unknown_field", "/v1/estimate", http.StatusBadRequest, CodeBadRequest},
		{"estimate_bad_json", "/v1/estimate", http.StatusBadRequest, CodeBadRequest},
		{"estimate_no_target", "/v1/estimate", http.StatusBadRequest, CodeBadRequest},
		{"estimate_both_targets", "/v1/estimate", http.StatusBadRequest, CodeBadRequest},
		{"estimate_bad_mode", "/v1/estimate", http.StatusBadRequest, CodeBadRequest},
		{"batch_empty", "/v1/batch", http.StatusBadRequest, CodeBadRequest},
		{"batch_bad_scenario", "/v1/batch", http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, hdr := post(t, ts.URL+tc.path, readRequest(t, tc.name))
			if status != tc.status {
				t.Fatalf("status = %d, want %d; body: %s", status, tc.status, body)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if tc.wantCode != "" {
				var env errorEnvelope
				if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
					t.Fatalf("error body does not parse: %s", body)
				}
				if env.Error.Code != tc.wantCode {
					t.Errorf("error code = %q, want %q", env.Error.Code, tc.wantCode)
				}
			}
			checkGolden(t, tc.name, body)
		})
	}
}

func TestConformanceGET(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	t.Run("cluster", func(t *testing.T) {
		status, body, _ := get(t, ts.URL+"/v1/cluster")
		if status != http.StatusOK {
			t.Fatalf("status = %d", status)
		}
		checkGolden(t, "cluster", body)
	})
	t.Run("workflows", func(t *testing.T) {
		status, body, _ := get(t, ts.URL+"/v1/workflows")
		if status != http.StatusOK {
			t.Fatalf("status = %d", status)
		}
		var out WorkflowsResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("parse: %v", err)
		}
		if len(out.Workflows) < 20 {
			t.Errorf("only %d workflows listed", len(out.Workflows))
		}
		for _, want := range []string{"wc", "ts", "wc+ts", "q21", "webanalytics"} {
			found := false
			for _, n := range out.Workflows {
				if n == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("registry listing misses %q", want)
			}
		}
	})
	t.Run("healthz", func(t *testing.T) {
		status, body, _ := get(t, ts.URL+"/healthz")
		if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
			t.Errorf("healthz = %d %s", status, body)
		}
	})
	t.Run("readyz", func(t *testing.T) {
		status, body, _ := get(t, ts.URL+"/readyz")
		if status != http.StatusOK || !strings.Contains(string(body), `"ready"`) {
			t.Errorf("readyz = %d %s", status, body)
		}
	})
	t.Run("metrics_json", func(t *testing.T) {
		status, body, _ := get(t, ts.URL+"/metrics")
		if status != http.StatusOK {
			t.Fatalf("status = %d", status)
		}
		var out struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("metrics do not parse: %v", err)
		}
		for _, name := range []string{"http_requests", "estimate_cache_hits", "estimate_cache_misses"} {
			if _, ok := out.Counters[name]; !ok {
				t.Errorf("metrics miss counter %q", name)
			}
		}
	})
	t.Run("metrics_text", func(t *testing.T) {
		status, body, hdr := get(t, ts.URL+"/metrics?format=text")
		if status != http.StatusOK || !strings.Contains(string(body), "http_requests") {
			t.Errorf("text metrics = %d %s", status, body)
		}
		// ?format=text is Prometheus exposition now: versioned content
		// type, HELP/TYPE blocks, cumulative histogram series.
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("Content-Type = %q, want exposition format 0.0.4", ct)
		}
		for _, want := range []string{
			"# HELP http_requests ",
			"# TYPE http_requests counter",
			"# TYPE request_duration_s histogram",
			`request_duration_s_bucket{route="/metrics",le="+Inf"}`,
			"request_duration_s_count ",
		} {
			if !strings.Contains(string(body), want) {
				t.Errorf("exposition misses %q in:\n%s", want, body)
			}
		}
	})
	t.Run("method_not_allowed", func(t *testing.T) {
		status, body, hdr := get(t, ts.URL+"/v1/estimate")
		if status != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d", status)
		}
		if hdr.Get("Allow") != "POST" {
			t.Errorf("Allow = %q, want POST", hdr.Get("Allow"))
		}
		checkGolden(t, "method_not_allowed", body)
	})
}

// TestBodyTooLarge pins the 413 path with a tiny body limit.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := []byte(`{"workflow":"` + strings.Repeat("x", 256) + `"}`)
	status, body, _ := post(t, ts.URL+"/v1/estimate", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != CodeBodyTooLarge {
		t.Errorf("error body = %s", body)
	}
}

// TestEstimateMatchesLibrary ties the wire numbers to the library: the
// served makespan must equal a direct estimator run byte-for-float.
func TestEstimateMatchesLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts.URL+"/v1/estimate", readRequest(t, "estimate_wc_ts"))
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var got EstimateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("parse: %v", err)
	}
	req, apiErr := DecodeEstimateRequest(bytes.NewReader(readRequest(t, "estimate_wc_ts")))
	if apiErr != nil {
		t.Fatalf("decode: %v", apiErr)
	}
	flow, est, apiErr := s.scenario(req)
	if apiErr != nil {
		t.Fatalf("scenario: %v", apiErr)
	}
	plan, err := est.Estimate(flow)
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if got.MakespanS != plan.Makespan.Seconds() {
		t.Errorf("served makespan %v != library %v", got.MakespanS, plan.Makespan.Seconds())
	}
	if got.Workflow != plan.Workflow {
		t.Errorf("served workflow %q != library %q", got.Workflow, plan.Workflow)
	}
	if len(got.Stages) != len(plan.Stages) || len(got.States) != len(plan.States) {
		t.Errorf("served breakdown %d stages/%d states != library %d/%d",
			len(got.Stages), len(got.States), len(plan.Stages), len(plan.States))
	}
}
