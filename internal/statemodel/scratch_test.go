package statemodel

import (
	"math/rand"
	"testing"
	"time"

	"boedag/internal/workload"
)

// TestSubmitHeapPopsTotalOrder drives the manual heap with randomized
// readyAt values (including ties) and checks pops come out in the
// deterministic (readyAt, order) total order.
func TestSubmitHeapPopsTotalOrder(t *testing.T) {
	s := NewScratch()
	s.reset(64)
	rng := rand.New(rand.NewSource(7))
	var want []*estJob
	for i := 0; i < 64; i++ {
		j := s.newJob(string(rune('a'+i%26))+string(rune('0'+i/26)), workload.JobProfile{}, 0)
		j.order = i
		j.readyAt = float64(rng.Intn(8)) // dense values force ties
		want = append(want, j)
		s.heapPush(j)
	}
	for i := 1; i < len(want); i++ {
		for k := i; k > 0 && submitsBefore(want[k], want[k-1]); k-- {
			want[k], want[k-1] = want[k-1], want[k]
		}
	}
	for i, w := range want {
		if len(s.heap) == 0 {
			t.Fatalf("heap empty after %d pops, want %d", i, len(want))
		}
		if got := s.heapPop(); got != w {
			t.Fatalf("pop %d: got order=%d ready=%v, want order=%d ready=%v",
				i, got.order, got.readyAt, w.order, w.readyAt)
		}
	}
	if len(s.heap) != 0 {
		t.Fatalf("%d jobs left on heap", len(s.heap))
	}
}

// TestInsertAndCompactRunningKeepSortedOrder checks the running-list
// index operations preserve the sorted-by-ID invariant that pins the
// float evaluation order.
func TestInsertAndCompactRunningKeepSortedOrder(t *testing.T) {
	s := NewScratch()
	s.reset(16)
	ids := []string{"j07", "j03", "j11", "j01", "j09", "j05"}
	for _, id := range ids {
		s.insertRunning(s.newJob(id, workload.JobProfile{}, 0))
	}
	assertSorted := func() {
		t.Helper()
		for i := 1; i < len(s.running); i++ {
			if s.running[i-1].id >= s.running[i].id {
				t.Fatalf("running list out of order at %d: %s ≥ %s",
					i, s.running[i-1].id, s.running[i].id)
			}
		}
	}
	assertSorted()
	s.running[1].phase = phaseDone
	s.running[4].phase = phaseDone
	s.compactRunning()
	if len(s.running) != 4 {
		t.Fatalf("%d running after compact, want 4", len(s.running))
	}
	assertSorted()
}

// TestDistCacheEvictsWholesaleAtCap fills the cache past its bound and
// checks the overflow clear fires instead of growing without limit.
func TestDistCacheEvictsWholesaleAtCap(t *testing.T) {
	var c distCache
	d := TaskTimeDist{Mean: time.Second, Median: time.Second}
	for i := 0; i < distCacheMax+10; i++ {
		c.put(distKey{self: uint64(i)}, d)
		if len(c.m) > distCacheMax {
			t.Fatalf("cache grew to %d entries, cap is %d", len(c.m), distCacheMax)
		}
	}
	// The wholesale clear must have fired exactly once by now.
	if got, want := len(c.m), distCacheMax+10-distCacheMax; got != want {
		t.Fatalf("cache holds %d entries after overflow, want %d", got, want)
	}
	if _, ok := c.get(distKey{self: uint64(distCacheMax + 9)}); !ok {
		t.Error("entry inserted after the clear is missing")
	}
}

// TestScratchResetPreservesDistCache is the incremental contract at the
// scratch level: reset clears per-run state but carries the dist cache.
func TestScratchResetPreservesDistCache(t *testing.T) {
	s := NewScratch()
	s.reset(4)
	s.newJob("a", workload.JobProfile{}, 0)
	s.dc.put(distKey{self: 42}, TaskTimeDist{Mean: time.Second})
	s.reset(4)
	if len(s.jobs) != 0 || len(s.ordered) != 0 || len(s.running) != 0 || len(s.heap) != 0 {
		t.Fatal("reset left per-run state behind")
	}
	if _, ok := s.dc.get(distKey{self: 42}); !ok {
		t.Error("reset dropped the dist cache")
	}
}
