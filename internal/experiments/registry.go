package experiments

import (
	"fmt"
	"sort"
	"strings"

	"boedag/internal/calibrate"
	"boedag/internal/dag"
	"boedag/internal/hibench"
	"boedag/internal/spark"
	"boedag/internal/synthdag"
	"boedag/internal/tpch"
	"boedag/internal/workload"
)

// WorkflowNames lists every name BuildNamed accepts, sorted.
func WorkflowNames() []string {
	names := []string{
		"wc", "ts", "tsc", "ts2r", "ts3r",
		"wc+ts", "wc+ts2r", "wc+ts3r", "webanalytics", "kmeans", "pagerank",
		"wc+kmeans", "wc+pagerank", "ts+kmeans", "ts+pagerank",
		"hbsort", "hbagg", "hbjoin", "bayes", "sparkwc", "sparkpr",
		// Canonical synthetic scale points; any "synth-lL-wW-fF-sS"
		// spelling builds too (see internal/synthdag).
		"synth-1k", "synth-10k",
	}
	for _, pr := range calibrate.ProbeSuite(1) {
		names = append(names, pr.Profile.Name)
	}
	for q := 1; q <= tpch.NumQueries; q++ {
		names = append(names,
			fmt.Sprintf("q%d", q),
			fmt.Sprintf("wc+q%d", q),
			fmt.Sprintf("ts+q%d", q))
	}
	sort.Strings(names)
	return names
}

// BuildNamed constructs the workflow behind one of the registry names:
// micro benchmarks ("wc", "ts3r", …), TPC-H queries ("q21"), HiBench
// DAGs ("kmeans"), the Figure 1 DAG ("webanalytics"), and the hybrid
// parallel combinations ("wc+q5", "ts+pagerank", "wc+ts3r", …).
func BuildNamed(name string, cfg Config) (*dag.Workflow, error) {
	schema := tpch.Schema{ScaleFactor: cfg.TPCHScale}
	micro := cfg.MicroInput
	lower := strings.ToLower(strings.TrimSpace(name))

	single := map[string]func() *dag.Workflow{
		"wc":           func() *dag.Workflow { return dag.Single(workload.WordCount(micro)) },
		"ts":           func() *dag.Workflow { return dag.Single(workload.TeraSort(micro)) },
		"tsc":          func() *dag.Workflow { return dag.Single(workload.TeraSortCompressed(micro)) },
		"ts2r":         func() *dag.Workflow { return dag.Single(workload.TeraSort2R(micro)) },
		"ts3r":         func() *dag.Workflow { return dag.Single(workload.TeraSort3R(micro)) },
		"webanalytics": func() *dag.Workflow { return WebAnalytics(micro / 2) },
		"kmeans":       func() *dag.Workflow { return hibench.KMeans(hibench.DefaultKMeans()) },
		"pagerank":     func() *dag.Workflow { return hibench.PageRank(hibench.DefaultPageRank()) },
		"hbsort":       func() *dag.Workflow { return dag.Single(hibench.Sort(0)) },
		"hbagg":        func() *dag.Workflow { return dag.Single(hibench.Aggregation(0)) },
		"hbjoin":       func() *dag.Workflow { return hibench.Join(0, 0) },
		"bayes":        func() *dag.Workflow { return hibench.Bayes(hibench.BayesConfig{}) },
	}
	sparkFlows := map[string]func() (*dag.Workflow, error){
		"sparkwc": func() (*dag.Workflow, error) { return spark.Translate(spark.WordCountLineage(micro)) },
		"sparkpr": func() (*dag.Workflow, error) {
			return spark.Translate(spark.PageRankLineage(micro/10, 3))
		},
	}
	if build, ok := sparkFlows[lower]; ok {
		return build()
	}
	if build, ok := single[lower]; ok {
		return build(), nil
	}
	// Calibration probes run as ordinary workflows so `dagsim -workflow
	// cal-read -trace-out` records a probe session that `calibrate
	// -from-trace` can invert offline. Sized for the configured cluster.
	if strings.HasPrefix(lower, "cal-") {
		for _, pr := range calibrate.ProbeSuite(cfg.Spec.TotalSlots()) {
			if pr.Profile.Name == lower {
				return dag.Single(pr.Profile), nil
			}
		}
	}
	if q, ok := parseQueryName(lower); ok {
		return tpch.Query(q, schema)
	}
	// Synthetic layered scale DAGs: seeded, so a name is a reproducible
	// corpus point ("synth-10k", "synth-l20-w50-f3-s7", …).
	if c, ok := synthdag.Parse(lower); ok {
		return synthdag.Generate(c), nil
	}

	left, right, ok := strings.Cut(lower, "+")
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workflow %q", name)
	}
	lflow, err := BuildNamed(left, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: workflow %q: %w", name, err)
	}
	rflow, err := BuildNamed(right, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: workflow %q: %w", name, err)
	}
	label := strings.ToUpper(left) + "-" + strings.ToUpper(right)
	return dag.Parallel(label, lflow, rflow), nil
}

func parseQueryName(s string) (int, bool) {
	if !strings.HasPrefix(s, "q") {
		return 0, false
	}
	var q int
	if _, err := fmt.Sscanf(s, "q%d", &q); err != nil || q < 1 || q > tpch.NumQueries {
		return 0, false
	}
	return q, true
}
