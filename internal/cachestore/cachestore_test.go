package cachestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() []Entry {
	return []Entry{
		{Key: "plan|abc", Val: []byte(`{"makespan_s": 12.5}`)},
		{Key: "plan|def", Val: []byte{}},
		{Key: "explain|abc", Val: []byte("x\x00\xffbinary ok")},
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	data := Encode(in)
	out, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || !bytes.Equal(out[i].Val, in[i].Val) {
			t.Errorf("entry %d: got %q/%q, want %q/%q", i, out[i].Key, out[i].Val, in[i].Key, in[i].Val)
		}
	}
	// Encoding is deterministic: same entries, same bytes.
	if !bytes.Equal(data, Encode(sample())) {
		t.Errorf("Encode is not deterministic")
	}
	// Empty snapshots round-trip too.
	if out, err := Decode(Encode(nil)); err != nil || len(out) != 0 {
		t.Errorf("empty snapshot: %v entries, err %v", out, err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "estimate_cache.snap")
	if err := Write(path, sample()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("read %d entries, want 3", len(out))
	}
	// Atomic replace: no temp files left behind, old content replaced.
	if err := Write(path, sample()[:1]); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if strings.Contains(f.Name(), ".tmp-") {
			t.Errorf("temporary file %s left behind", f.Name())
		}
	}
	if out, _ := Read(path); len(out) != 1 {
		t.Errorf("rewrite kept %d entries, want 1", len(out))
	}
}

func TestReadMissingFile(t *testing.T) {
	_, err := Read(filepath.Join(t.TempDir(), "nope.snap"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error = %v, want ErrNotExist", err)
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	good := Encode(sample())
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadMagic},
		{"not a snapshot", []byte("hello world, definitely not a snapshot"), ErrBadMagic},
		{"magic only", []byte(magic), ErrCorrupt},
		{"unknown version", flip(good, len(magic)), ErrUnknownVersion},
		{"truncated mid-record", good[:len(good)-12], ErrCorrupt},
		{"checksum flip", flip(good, len(good)-1), ErrCorrupt},
		{"payload flip", flip(good, len(magic)+8), ErrCorrupt},
		{"trailing garbage", append(append([]byte{}, good...), 0xAA), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data); !errors.Is(err, tc.want) {
				t.Errorf("Decode(%s) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

// TestDecodeRejectsHugeClaims pins the allocation bound: a tiny file
// claiming an enormous record must fail cleanly, not allocate.
func TestDecodeRejectsHugeClaims(t *testing.T) {
	// Hand-build: magic, version, count=1, keylen=2^40.
	data := []byte(magic)
	data = append(data, Version)
	data = append(data, 0x01)                               // count 1
	data = append(data, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40) // huge uvarint
	sum := fnv64a(fnvOffset, data)
	data = append(data, byte(sum>>56), byte(sum>>48), byte(sum>>40), byte(sum>>32),
		byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length claim: %v, want ErrCorrupt", err)
	}
}

func TestReadFrom(t *testing.T) {
	out, err := ReadFrom(bytes.NewReader(Encode(sample())))
	if err != nil || len(out) != 3 {
		t.Fatalf("ReadFrom: %d entries, err %v", len(out), err)
	}
}

// flip returns a copy of data with one byte inverted.
func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xFF
	return out
}
