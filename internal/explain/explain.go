// Package explain turns a point estimate into an explained estimate: from
// a single run of the state-based estimator it reconstructs the predicted
// state timeline and derives
//
//   - the critical path — the chain of submit/stage intervals whose
//     durations sum exactly to the makespan, each tagged with the dominant
//     resource (cpu / disk-read / disk-write / network / slots) binding it;
//   - bottleneck attribution — makespan time attributed to each resource
//     class and to each job, covering 100% of the makespan, plus the
//     time-weighted utilization of every predicted state;
//   - θ-sensitivity — finite-difference ∂makespan/∂θ_X for every cluster
//     throughput parameter, obtained by re-running the estimator with each
//     rate perturbed by ε, flagging the parameter whose improvement buys
//     the most.
//
// The critical path is exact by construction: it is built backward from
// the latest-ending stage as a contiguous chain of intervals over shared
// boundaries — a reduce starts where its map ends, a map's submit gap
// starts where its latest dependency ends, a root's submit gap starts at
// zero — so the interval durations telescope to the makespan in integer
// time.Duration arithmetic, with no float residue.
package explain

import (
	"context"
	"sort"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/evalpool"
	"boedag/internal/statemodel"
	"boedag/internal/workload"
)

// A state is considered slot-bound when essentially every task slot is
// granted yet the dominant resource still has headroom: the workflow is
// limited by admission (parallelism), not by any throughput θ_X.
const (
	slotBoundShare = 0.999
	slotBoundUtil  = 0.95
)

// ResourceSlots and ResourceSubmit are the two interval tags beyond the
// cluster resource classes: slot-bound execution and job submit overhead.
const (
	ResourceSlots  = "slots"
	ResourceSubmit = "submit"
)

// Interval is one link of the critical path: a span of the makespan
// attributed to one job (or its submit overhead) under one dominant
// resource. Start and End are exact model-time offsets; consecutive
// intervals share boundaries, so durations sum exactly to the makespan.
type Interval struct {
	// Job is the job the interval belongs to (submit gaps carry the
	// waiting job).
	Job string `json:"job"`
	// Stage is "map", "reduce", or "submit" for the submit-overhead gap
	// before a job's first stage.
	Stage string `json:"stage"`
	// Start and End are exact offsets from workflow submission.
	Start time.Duration `json:"-"`
	End   time.Duration `json:"-"`
	// StartS, EndS and DurationS are the wire form, in seconds.
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	DurationS float64 `json:"duration_s"`
	// Resource is the dominant resource binding the interval: a cluster
	// resource class name, "slots" when the span is parallelism-bound, or
	// "submit" for submit-overhead gaps.
	Resource string `json:"resource"`
}

// Duration is the interval's exact span.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// ResourceShare attributes part of the makespan to one resource tag.
type ResourceShare struct {
	Resource string `json:"resource"`
	// Dur is the exact attributed time; Seconds/Fraction are the wire form.
	Dur      time.Duration `json:"-"`
	Seconds  float64       `json:"seconds"`
	Fraction float64       `json:"fraction"`
}

// JobShare attributes part of the critical path to one job (its stage
// time plus its submit gaps).
type JobShare struct {
	Job      string        `json:"job"`
	Dur      time.Duration `json:"-"`
	Seconds  float64       `json:"seconds"`
	Fraction float64       `json:"fraction"`
}

// StateUtil is one predicted state's resource view: the time-weighted
// utilization of every resource class, the dominant tag, and the slot
// share.
type StateUtil struct {
	Seq       int     `json:"seq"`
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	DurationS float64 `json:"duration_s"`
	// Dominant is the state's resource tag: the highest-utilization
	// resource class, or "slots" when the state is slot-bound.
	Dominant string `json:"dominant"`
	// Utilization maps resource class name to predicted cluster-wide
	// utilization during the state.
	Utilization map[string]float64 `json:"utilization"`
	// SlotShare is the fraction of the scheduling pool's slots granted.
	SlotShare float64 `json:"slot_share"`
}

// Sensitivity is one row of the θ-sensitivity table: the makespan change
// from improving one cluster throughput parameter by ε.
type Sensitivity struct {
	// Parameter names the perturbed θ_X (a cluster resource class).
	Parameter string `json:"parameter"`
	// Epsilon is the relative throughput perturbation applied (+ε).
	Epsilon float64 `json:"epsilon"`
	// BaseS and PerturbedS are the makespans before and after.
	BaseS      float64 `json:"base_makespan_s"`
	PerturbedS float64 `json:"perturbed_makespan_s"`
	// DeltaS = base − perturbed: the seconds saved by the improvement.
	DeltaS float64 `json:"delta_s"`
	// GradientS ≈ ∂makespan/∂(θ_X/θ_X⁰) = (perturbed − base)/ε, in
	// seconds per unit of relative throughput (negative when the
	// parameter pays).
	GradientS float64 `json:"gradient_s"`
	// Best marks the parameter whose improvement buys the most.
	Best bool `json:"best,omitempty"`
}

// Explanation is the full explained estimate. Its JSON form is the wire
// contract of POST /v1/explain (field order fixed, maps marshalled in
// sorted-key order), byte-deterministic for deterministic inputs.
type Explanation struct {
	Workflow string `json:"workflow"`
	// Makespan is the exact estimated makespan; MakespanS the wire form.
	Makespan  time.Duration `json:"-"`
	MakespanS float64       `json:"makespan_s"`
	// CriticalPath is the chain of intervals summing to the makespan.
	CriticalPath []Interval `json:"critical_path"`
	// Resources attributes 100% of the makespan across resource tags
	// (fixed order: cpu, disk-read, disk-write, network, slots, submit).
	Resources []ResourceShare `json:"resources"`
	// Jobs attributes the critical path across jobs, largest share first.
	Jobs []JobShare `json:"jobs"`
	// States is the per-state utilization breakdown.
	States []StateUtil `json:"states"`
	// Sensitivity is the θ-sensitivity table (empty when the estimator's
	// timer is not the BOE model — profiles carry no θ to perturb).
	Sensitivity []Sensitivity `json:"sensitivity,omitempty"`
}

// Options tune an explanation.
type Options struct {
	// Epsilon is the relative throughput perturbation of the
	// θ-sensitivity runs (default 0.10).
	Epsilon float64
	// Workers bounds the perturbed re-runs' fan-out (default: one worker
	// per cluster resource class). Results are order-deterministic at any
	// value.
	Workers int
	// NoSensitivity skips the θ perturbation re-runs.
	NoSensitivity bool
	// Cache, when set, memoizes the base and perturbed plans across
	// calls through the single-flight plan cache, so repeated
	// explanations of the same scenario re-run nothing.
	Cache *evalpool.PlanCache
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.10
	}
	if o.Workers < 1 {
		o.Workers = cluster.NumResources
	}
	return o
}

// Explain runs the estimator once and explains the resulting plan.
func Explain(ctx context.Context, est *statemodel.Estimator, flow *dag.Workflow, opt Options) (*Explanation, error) {
	opt = opt.withDefaults()
	var plan *statemodel.Plan
	var err error
	if opt.Cache != nil {
		plan, err = opt.Cache.Estimate(est, flow)
	} else {
		plan, err = est.Estimate(flow)
	}
	if err != nil {
		return nil, err
	}
	return ExplainPlan(ctx, est, flow, plan, opt)
}

// ExplainPlan explains an already-computed plan of (est, flow) without
// re-running the base estimate. The θ-sensitivity runs still execute
// (unless disabled) with each cluster rate perturbed by ε.
func ExplainPlan(ctx context.Context, est *statemodel.Estimator, flow *dag.Workflow, plan *statemodel.Plan, opt Options) (*Explanation, error) {
	opt = opt.withDefaults()
	e := &Explanation{
		Workflow:  plan.Workflow,
		Makespan:  plan.Makespan,
		MakespanS: plan.Makespan.Seconds(),
	}
	e.CriticalPath = criticalPath(plan, flow)
	e.Resources = resourceShares(plan)
	e.Jobs = jobShares(plan.Makespan, e.CriticalPath)
	e.States = stateUtils(plan)
	if !opt.NoSensitivity {
		sens, err := sensitivity(ctx, est, flow, plan, opt)
		if err != nil {
			return nil, err
		}
		e.Sensitivity = sens
	}
	return e, nil
}

// finalStage returns the last stage a job runs: its reduce when it has
// one, its map otherwise.
func finalStage(plan *statemodel.Plan, job string) *statemodel.StageEstimate {
	if se := plan.StageOf(job, workload.Reduce); se != nil {
		return se
	}
	return plan.StageOf(job, workload.Map)
}

// criticalPath walks backward from the latest-ending stage, chaining each
// stage to what released it: a reduce to its own map (they share a
// boundary), a map to its latest-ending dependency across a submit gap,
// and a root map to time zero across its submit gap. All boundaries are
// shared between consecutive intervals, so the durations telescope
// exactly to the makespan. Stage intervals are then split at state
// boundaries and tagged with the job's per-state dominant resource
// (adjacent same-resource pieces merged back).
func criticalPath(plan *statemodel.Plan, flow *dag.Workflow) []Interval {
	if len(plan.Stages) == 0 {
		return nil
	}
	deps := make(map[string][]string, len(flow.Jobs))
	for _, j := range flow.Jobs {
		deps[j.ID] = j.Deps
	}
	// Latest-ending stage anchors the path (first winner on ties: the
	// stage slice is in deterministic job order).
	cur := &plan.Stages[0]
	for i := range plan.Stages[1:] {
		if s := &plan.Stages[i+1]; s.End > cur.End {
			cur = s
		}
	}
	// Backward walk over (stage, upper-boundary) links plus submit gaps.
	type link struct {
		stage        *statemodel.StageEstimate
		lower, upper time.Duration
		submit       bool
		job          string
	}
	upper := plan.Makespan
	if cur.End > upper {
		upper = cur.End // defensive: the makespan is the latest stage end
	}
	var rev []link
	for {
		lower := cur.Start
		if lower > upper {
			lower = upper
		}
		rev = append(rev, link{stage: cur, lower: lower, upper: upper})
		upper = lower
		if cur.Stage == workload.Reduce {
			if m := plan.StageOf(cur.Job, workload.Map); m != nil {
				cur = m
				continue
			}
		}
		// A map stage (or an orphan reduce): cross the submit gap to the
		// latest-ending dependency, or to time zero for a root.
		var prev *statemodel.StageEstimate
		for _, d := range deps[cur.Job] {
			if f := finalStage(plan, d); f != nil && (prev == nil || f.End > prev.End) {
				prev = f
			}
		}
		lower = 0
		if prev != nil {
			lower = prev.End
		}
		if lower > upper {
			lower = upper
		}
		rev = append(rev, link{submit: true, job: cur.Job, lower: lower, upper: upper})
		if prev == nil {
			break
		}
		upper = lower
		cur = prev
	}
	// Expand forward: submit gaps become one interval, stage runs split
	// at state boundaries with per-state resource tags.
	var out []Interval
	for i := len(rev) - 1; i >= 0; i-- {
		l := rev[i]
		if l.upper <= l.lower {
			continue // zero-length link (e.g. zero submit overhead)
		}
		if l.submit {
			out = append(out, Interval{
				Job: l.job, Stage: ResourceSubmit,
				Start: l.lower, End: l.upper,
				Resource: ResourceSubmit,
			})
			continue
		}
		out = append(out, splitByStates(plan, l.stage, l.lower, l.upper)...)
	}
	for i := range out {
		out[i].StartS = out[i].Start.Seconds()
		out[i].EndS = out[i].End.Seconds()
		out[i].DurationS = out[i].Duration().Seconds()
	}
	return out
}

// splitByStates cuts a stage's critical-path span at the predicted state
// boundaries falling inside it, tags each piece with the job's dominant
// resource during the covering state, and merges adjacent pieces sharing
// a tag. The cuts are interior boundaries, so the pieces tile
// [lower, upper] exactly.
func splitByStates(plan *statemodel.Plan, se *statemodel.StageEstimate, lower, upper time.Duration) []Interval {
	cuts := []time.Duration{lower}
	for i := range plan.States {
		if end := plan.States[i].End; end > lower && end < upper {
			cuts = append(cuts, end)
		}
	}
	cuts = append(cuts, upper)
	var out []Interval
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b <= a {
			continue
		}
		res := resourceAt(plan, se, a+(b-a)/2)
		if n := len(out); n > 0 && out[n-1].Resource == res {
			out[n-1].End = b
			continue
		}
		out = append(out, Interval{
			Job: se.Job, Stage: se.Stage.String(),
			Start: a, End: b, Resource: res,
		})
	}
	return out
}

// resourceAt resolves the dominant resource binding a job at instant t:
// the job's per-state task bottleneck, overridden to "slots" when the
// covering state is slot-bound with headroom on that resource. Falls back
// to the stage's overall bottleneck outside any state.
func resourceAt(plan *statemodel.Plan, se *statemodel.StageEstimate, t time.Duration) string {
	for i := range plan.States {
		st := &plan.States[i]
		if t < st.Start || t >= st.End {
			continue
		}
		r, ok := st.Bottleneck[se.Job]
		if !ok {
			break
		}
		if st.SlotShare >= slotBoundShare && st.Utilization[r] < slotBoundUtil {
			return ResourceSlots
		}
		return r.String()
	}
	return se.Bottleneck.String()
}

// stateTag is the state's resource tag: its highest-utilization resource
// class (ties to the lowest index), or "slots" when the state is
// slot-bound with resource headroom.
func stateTag(st *statemodel.StateEstimate) string {
	dom := cluster.CPU
	for _, r := range cluster.Resources() {
		if st.Utilization[r] > st.Utilization[dom] {
			dom = r
		}
	}
	if st.SlotShare >= slotBoundShare && st.Utilization[dom] < slotBoundUtil {
		return ResourceSlots
	}
	return dom.String()
}

// resourceTags lists every attribution tag in fixed order: the cluster
// resource classes, then slots, then submit.
func resourceTags() []string {
	tags := make([]string, 0, cluster.NumResources+2)
	for _, r := range cluster.Resources() {
		tags = append(tags, r.String())
	}
	return append(tags, ResourceSlots, ResourceSubmit)
}

// resourceShares attributes the whole makespan across resource tags from
// the state timeline: each state's span goes to its dominant tag, the gap
// before the first state (the root submit overhead) and any residue after
// the last state go to "submit". States tile [firstStart, makespan]
// contiguously, so the shares telescope exactly to the makespan.
func resourceShares(plan *statemodel.Plan) []ResourceShare {
	acc := make(map[string]time.Duration, cluster.NumResources+2)
	switch {
	case len(plan.States) == 0:
		acc[ResourceSubmit] = plan.Makespan
	default:
		acc[ResourceSubmit] = plan.States[0].Start
		for i := range plan.States {
			st := &plan.States[i]
			end := st.End
			if i == len(plan.States)-1 {
				end = plan.Makespan // shared boundary: last state closes at makespan
			}
			acc[stateTag(st)] += end - st.Start
		}
	}
	out := make([]ResourceShare, 0, cluster.NumResources+2)
	for _, tag := range resourceTags() {
		d := acc[tag]
		share := ResourceShare{Resource: tag, Dur: d, Seconds: d.Seconds()}
		if plan.Makespan > 0 {
			share.Fraction = float64(d) / float64(plan.Makespan)
		}
		out = append(out, share)
	}
	return out
}

// jobShares attributes the critical path across jobs (submit gaps count
// toward the waiting job), largest share first, ties by name.
func jobShares(makespan time.Duration, path []Interval) []JobShare {
	acc := make(map[string]time.Duration)
	order := make([]string, 0, 4)
	for _, iv := range path {
		if _, ok := acc[iv.Job]; !ok {
			order = append(order, iv.Job)
		}
		acc[iv.Job] += iv.Duration()
	}
	sort.SliceStable(order, func(a, b int) bool {
		if acc[order[a]] != acc[order[b]] {
			return acc[order[a]] > acc[order[b]]
		}
		return order[a] < order[b]
	})
	out := make([]JobShare, 0, len(order))
	for _, j := range order {
		share := JobShare{Job: j, Dur: acc[j], Seconds: acc[j].Seconds()}
		if makespan > 0 {
			share.Fraction = float64(acc[j]) / float64(makespan)
		}
		out = append(out, share)
	}
	return out
}

// stateUtils renders the per-state utilization table.
func stateUtils(plan *statemodel.Plan) []StateUtil {
	out := make([]StateUtil, 0, len(plan.States))
	for i := range plan.States {
		st := &plan.States[i]
		u := make(map[string]float64, cluster.NumResources)
		for _, r := range cluster.Resources() {
			u[r.String()] = st.Utilization[r]
		}
		out = append(out, StateUtil{
			Seq:         st.Seq,
			StartS:      st.Start.Seconds(),
			EndS:        st.End.Seconds(),
			DurationS:   st.Duration().Seconds(),
			Dominant:    stateTag(st),
			Utilization: u,
			SlotShare:   st.SlotShare,
		})
	}
	return out
}
