package statemodel

import (
	"testing"
	"time"

	"boedag/internal/boe"
	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/metrics"
	"boedag/internal/profile"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func spec() cluster.Spec { return cluster.PaperCluster() }

func boeTimer() *BOETimer {
	return &BOETimer{Model: boe.New(spec()), TaskStartOverhead: time.Second}
}

func estimate(t *testing.T, flow *dag.Workflow, opt Options) *Plan {
	t.Helper()
	plan, err := New(spec(), boeTimer(), opt).Estimate(flow)
	if err != nil {
		t.Fatalf("Estimate(%s): %v", flow.Name, err)
	}
	return plan
}

func simulate(t *testing.T, flow *dag.Workflow) *simulator.Result {
	t.Helper()
	res, err := simulator.New(spec(), simulator.Options{Seed: 1}).Run(flow)
	if err != nil {
		t.Fatalf("simulate(%s): %v", flow.Name, err)
	}
	return res
}

func TestRejectsInvalidWorkflow(t *testing.T) {
	if _, err := New(spec(), boeTimer(), Options{}).Estimate(&dag.Workflow{Name: "x"}); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestPlanInvariants(t *testing.T) {
	flow := dag.Parallel("WC+TS",
		dag.Single(workload.WordCount(20*units.GB)),
		dag.Single(workload.TeraSort(20*units.GB)))
	plan := estimate(t, flow, Options{})
	if plan.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	if len(plan.Stages) != 4 {
		t.Fatalf("plan has %d stages, want 4", len(plan.Stages))
	}
	for _, s := range plan.Stages {
		if s.End <= s.Start {
			t.Errorf("stage %s/%s: End <= Start", s.Job, s.Stage)
		}
		if s.TaskTime <= 0 {
			t.Errorf("stage %s/%s: no task time", s.Job, s.Stage)
		}
		if s.Parallelism <= 0 {
			t.Errorf("stage %s/%s: no parallelism", s.Job, s.Stage)
		}
		if s.End > plan.Makespan {
			t.Errorf("stage %s/%s ends after makespan", s.Job, s.Stage)
		}
	}
	for i, st := range plan.States {
		if st.Seq != i+1 {
			t.Errorf("state %d has seq %d", i, st.Seq)
		}
		if st.Duration() < 0 {
			t.Errorf("state %d has negative duration", st.Seq)
		}
		if len(st.Running) == 0 || len(st.Parallelism) == 0 {
			t.Errorf("state %d is empty", st.Seq)
		}
	}
	if got := plan.StageOf("WC/WC", workload.Map); got == nil {
		t.Error("StageOf(WC/WC, map) = nil")
	}
	if got := plan.StageOf("nope", workload.Map); got != nil {
		t.Error("StageOf(nope) found something")
	}
}

// TestBOEAccuracySingleJobs: the BOE-driven estimator must land close to
// the simulator for solo micro jobs.
func TestBOEAccuracySingleJobs(t *testing.T) {
	for _, p := range []workload.JobProfile{
		workload.WordCount(20 * units.GB),
		workload.TeraSort(20 * units.GB),
		workload.TeraSort3R(20 * units.GB),
	} {
		flow := dag.Single(p)
		plan := estimate(t, flow, Options{})
		res := simulate(t, flow)
		acc := metrics.Accuracy(plan.Makespan, res.Makespan)
		if acc < 0.80 {
			t.Errorf("%s: BOE end-to-end accuracy %.2f (est %v, actual %v), want ≥ 0.80",
				p.Name, acc, plan.Makespan, res.Makespan)
		}
	}
}

// TestProfileAccuracyParallelJobs mirrors the Table III methodology on
// one hybrid workflow: profile-driven estimation within ~15% end to end.
func TestProfileAccuracyParallelJobs(t *testing.T) {
	flow := dag.Parallel("WC+TS",
		dag.Single(workload.WordCount(30*units.GB)),
		dag.Single(workload.TeraSort(30*units.GB)))
	res := simulate(t, flow)
	timer := &ProfileTimer{Profiles: profile.Capture(res)}
	for _, mode := range Modes() {
		plan, err := New(spec(), timer, Options{Mode: mode}).Estimate(flow)
		if err != nil {
			t.Fatal(err)
		}
		acc := metrics.Accuracy(plan.Makespan, res.Makespan)
		if acc < 0.85 {
			t.Errorf("%s: accuracy %.3f (est %v, actual %v), want ≥ 0.85",
				mode, acc, plan.Makespan, res.Makespan)
		}
	}
}

func TestSlotLimitLowersParallelism(t *testing.T) {
	flow := dag.Single(workload.WordCount(20 * units.GB))
	full := estimate(t, flow, Options{})
	limited := estimate(t, flow, Options{SlotLimit: 22})
	if limited.Makespan <= full.Makespan {
		t.Errorf("slot-limited estimate %v not slower than full %v",
			limited.Makespan, full.Makespan)
	}
	for _, s := range limited.Stages {
		if s.Parallelism > 22 {
			t.Errorf("stage %s/%s parallelism %d exceeds slot limit", s.Job, s.Stage, s.Parallelism)
		}
	}
}

func TestParallelismCaps(t *testing.T) {
	flow := dag.Single(workload.WordCount(20 * units.GB))
	plan := estimate(t, flow, Options{ParallelismCaps: map[string]int{"WC": 7}})
	for _, s := range plan.Stages {
		if s.Parallelism > 7 {
			t.Errorf("stage %s/%s parallelism %d exceeds cap 7", s.Job, s.Stage, s.Parallelism)
		}
	}
}

func TestDiscreteWavesAtLeastFluid(t *testing.T) {
	flow := dag.Single(workload.WordCount(20 * units.GB))
	fluid := estimate(t, flow, Options{})
	waves := estimate(t, flow, Options{DiscreteWaves: true})
	if waves.Makespan < fluid.Makespan-time.Millisecond {
		t.Errorf("discrete waves (%v) predicted less than fluid (%v)",
			waves.Makespan, fluid.Makespan)
	}
}

func TestNormalModeAddsStragglerTail(t *testing.T) {
	flow := dag.Single(workload.TeraSort(20 * units.GB))
	mean := estimate(t, flow, Options{Mode: MeanMode})
	normal := estimate(t, flow, Options{Mode: NormalMode})
	if normal.Makespan <= mean.Makespan {
		t.Errorf("normal mode (%v) should exceed mean mode (%v) under skew",
			normal.Makespan, mean.Makespan)
	}
}

func TestDependentJobsSequenced(t *testing.T) {
	a := workload.WordCount(5 * units.GB)
	a.Name = "A"
	b := workload.TeraSort(5 * units.GB)
	b.Name = "B"
	flow := &dag.Workflow{Name: "chain", Jobs: []dag.Job{
		{ID: "A", Profile: a},
		{ID: "B", Profile: b, Deps: []string{"A"}},
	}}
	plan := estimate(t, flow, Options{})
	aEnd := plan.StageOf("A", workload.Reduce).End
	bStart := plan.StageOf("B", workload.Map).Start
	if bStart < aEnd {
		t.Errorf("B map starts %v before A ends %v", bStart, aEnd)
	}
	if gap := bStart - aEnd; gap < 1900*time.Millisecond {
		t.Errorf("submit overhead gap %v, want ≈ 2s", gap)
	}
}

func TestExpectedMaxNormal(t *testing.T) {
	mean := 10 * time.Second
	std := 2 * time.Second
	if got := ExpectedMaxNormal(mean, std, 1); got != mean {
		t.Errorf("n=1: %v, want mean", got)
	}
	if got := ExpectedMaxNormal(mean, 0, 50); got != mean {
		t.Errorf("σ=0: %v, want mean", got)
	}
	// Known constants: E[max of 2] = μ + 0.5642σ.
	want := mean + time.Duration(0.5642*float64(std))
	if got := ExpectedMaxNormal(mean, std, 2); got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("n=2: %v, want %v", got, want)
	}
	// Monotone in n.
	prev := time.Duration(0)
	for _, n := range []int{1, 2, 3, 4, 8, 16, 64, 256} {
		got := ExpectedMaxNormal(mean, std, n)
		if got < prev {
			t.Errorf("ExpectedMaxNormal not monotone at n=%d: %v < %v", n, got, prev)
		}
		prev = got
	}
	// Roughly √(2 ln n) growth: for n=100, ≈ μ + 2.5σ.
	got := ExpectedMaxNormal(mean, std, 100)
	if got < mean+2*std || got > mean+3*std {
		t.Errorf("n=100: %v, want within [μ+2σ, μ+3σ]", got)
	}
}

func TestSkewModeStrings(t *testing.T) {
	want := map[SkewMode]string{
		MeanMode:   "Alg1-Mean",
		MedianMode: "Alg1-Mid",
		NormalMode: "Alg2-Normal",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if len(Modes()) != 3 {
		t.Errorf("Modes() has %d entries", len(Modes()))
	}
}

func TestTaskTimeDistByMode(t *testing.T) {
	d := TaskTimeDist{Mean: 10 * time.Second, Median: 8 * time.Second, Std: time.Second}
	if d.ByMode(MeanMode) != 10*time.Second {
		t.Error("mean mode wrong")
	}
	if d.ByMode(MedianMode) != 8*time.Second {
		t.Error("median mode wrong")
	}
	if d.ByMode(NormalMode) != 10*time.Second {
		t.Error("normal mode should use the mean")
	}
}

func TestProfileTimerFallback(t *testing.T) {
	p := workload.WordCount(5 * units.GB)
	groups := []boe.TaskGroup{{Profile: p, Stage: workload.Map, SubStage: boe.AggregateSubStage, Parallelism: 10}}

	empty := &ProfileTimer{Profiles: &profile.Set{}}
	if d := empty.TaskDist("WC", groups, 0); d.Mean != 0 {
		t.Errorf("no profile, no fallback: dist = %+v, want zero", d)
	}
	withFallback := &ProfileTimer{Profiles: &profile.Set{}, Fallback: boeTimer()}
	if d := withFallback.TaskDist("WC", groups, 0); d.Mean <= 0 {
		t.Error("fallback not consulted")
	}
}

func TestPendingTasksHoldsWaveContainers(t *testing.T) {
	j := &estJob{profile: workload.WordCount(100 * units.GB), stage: workload.Reduce}
	j.tasksLeft = 33 // half a 66-task wave drained fluidly
	j.lastDelta = 66
	if got := j.pendingTasks(); got != 66 {
		t.Errorf("pendingTasks = %d, want 66 (running containers still held)", got)
	}
	j.lastDelta = 0
	if got := j.pendingTasks(); got != 33 {
		t.Errorf("pendingTasks = %d, want 33", got)
	}
	j.tasksLeft = 0.2
	if got := j.pendingTasks(); got != 1 {
		t.Errorf("pendingTasks = %d, want minimum 1", got)
	}
}

func TestEstimationIsFast(t *testing.T) {
	flow := dag.Parallel("big",
		dag.Single(workload.WordCount(100*units.GB)),
		dag.Single(workload.TeraSort(100*units.GB)))
	start := time.Now()
	estimate(t, flow, Options{})
	if d := time.Since(start); d > time.Second {
		t.Errorf("estimation took %v, paper requires < 1s", d)
	}
}

func TestEstimateRemainingDirect(t *testing.T) {
	flow := dag.Parallel("WC+TS",
		dag.Single(workload.WordCount(20*units.GB)),
		dag.Single(workload.TeraSort(20*units.GB)))
	est := New(spec(), boeTimer(), Options{})
	full, err := est.Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}

	// Half of WC's maps done and a wave in flight; TS untouched.
	snap := Snapshot{Jobs: map[string]JobSnapshot{
		"WC/WC": {Phase: JobMapping, TasksDone: 80, TasksRunning: 40, RunningProgress: 0.5},
	}}
	left, plan, err := est.EstimateRemaining(flow, snap)
	if err != nil {
		t.Fatal(err)
	}
	if left <= 0 || left >= full.Makespan {
		t.Errorf("remaining %v should be positive and below the full %v", left, full.Makespan)
	}
	if plan.StageOf("TS/TS", workload.Map) == nil {
		t.Error("pending job missing from the remaining plan")
	}

	// All finished → zero.
	done := Snapshot{Jobs: map[string]JobSnapshot{
		"WC/WC": {Phase: JobFinished},
		"TS/TS": {Phase: JobFinished},
	}}
	left, _, err = est.EstimateRemaining(flow, done)
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Errorf("remaining after completion = %v", left)
	}

	// Reducing phase snapshot.
	reducing := Snapshot{Jobs: map[string]JobSnapshot{
		"WC/WC": {Phase: JobFinished},
		"TS/TS": {Phase: JobReducing, TasksDone: 10, TasksRunning: 56},
	}}
	left2, _, err := est.EstimateRemaining(flow, reducing)
	if err != nil {
		t.Fatal(err)
	}
	if left2 <= 0 || left2 >= left+full.Makespan {
		t.Errorf("reducing-phase remaining = %v", left2)
	}

	// Impossible snapshot rejected.
	bad := Snapshot{Jobs: map[string]JobSnapshot{
		"WC/WC": {Phase: JobMapping, TasksDone: 1 << 20},
	}}
	if _, _, err := est.EstimateRemaining(flow, bad); err == nil {
		t.Error("over-done snapshot accepted")
	}
	if _, _, err := est.EstimateRemaining(&dag.Workflow{Name: "x"}, Snapshot{}); err == nil {
		t.Error("invalid workflow accepted")
	}
}

func TestEmpiricalModeUsesSample(t *testing.T) {
	flow := dag.Single(workload.TeraSort(20 * units.GB))
	res := simulate(t, flow)
	timer := &ProfileTimer{Profiles: profile.Capture(res)}

	emp, err := New(spec(), timer, Options{Mode: EmpiricalMode}).Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.Accuracy(emp.Makespan, res.Makespan)
	if acc < 0.7 {
		t.Errorf("empirical-mode accuracy %.2f (est %v, actual %v)", acc, emp.Makespan, res.Makespan)
	}

	// Without a sample the mode degrades to the normal fit and still works.
	noSample, err := New(spec(), boeTimer(), Options{Mode: EmpiricalMode}).Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}
	if noSample.Makespan <= 0 {
		t.Error("sample-less empirical estimate empty")
	}
}

func TestAllModesAndStrings(t *testing.T) {
	all := AllModes()
	if len(all) != 4 || all[3] != EmpiricalMode {
		t.Errorf("AllModes = %v", all)
	}
	if EmpiricalMode.String() != "Ext-Empirical" {
		t.Errorf("empirical mode string = %q", EmpiricalMode.String())
	}
	if s := SkewMode(99).String(); s != "SkewMode(?)" {
		t.Errorf("unknown mode string = %q", s)
	}
	if s := JobPhase(99).String(); s != "phase(?)" {
		t.Errorf("unknown phase string = %q", s)
	}
}

func TestStateEstimateDuration(t *testing.T) {
	st := StateEstimate{Start: 2 * time.Second, End: 5 * time.Second}
	if st.Duration() != 3*time.Second {
		t.Errorf("Duration = %v", st.Duration())
	}
}

func TestFailureCorrectionInflatesEstimate(t *testing.T) {
	flow := dag.Single(workload.WordCount(20 * units.GB))
	clean, err := New(spec(), boeTimer(), Options{}).Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := New(spec(), boeTimer(), Options{TaskFailureProb: 0.4}).Estimate(flow)
	if err != nil {
		t.Fatal(err)
	}
	ratio := faulty.Makespan.Seconds() / clean.Makespan.Seconds()
	if ratio < 1.1 || ratio > 1.3 {
		t.Errorf("retry inflation ratio = %.2f, want ≈ 1.2 (1 + p/2)", ratio)
	}
}

func TestPlanCriticalPath(t *testing.T) {
	a := workload.WordCount(10 * units.GB)
	a.Name = "A"
	b := workload.TeraSort(10 * units.GB)
	b.Name = "B"
	flow := &dag.Workflow{Name: "chain", Jobs: []dag.Job{
		{ID: "A", Profile: a},
		{ID: "B", Profile: b, Deps: []string{"A"}},
	}}
	plan := estimate(t, flow, Options{})
	path := plan.CriticalPath()
	if len(path) != 4 {
		t.Fatalf("critical path has %d stages, want 4 (A map→A reduce→B map→B reduce): %+v",
			len(path), path)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Start < path[i-1].End-time.Millisecond {
			t.Errorf("path not in execution order at %d", i)
		}
	}
	last := path[len(path)-1]
	if last.End != plan.Makespan {
		t.Errorf("path does not end at the makespan: %v vs %v", last.End, plan.Makespan)
	}
	if (&Plan{}).CriticalPath() != nil {
		t.Error("empty plan has a critical path")
	}
}
