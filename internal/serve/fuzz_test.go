package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzDecodeEstimateRequest holds the decoder's safety line: whatever the
// bytes, it never panics, and it either returns a fully validated request
// or a well-formed typed error — never both, never neither. The canned
// request bodies in testdata double as the seed corpus, so the fuzzer
// starts from every shape the conformance suite exercises.
func FuzzDecodeEstimateRequest(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.req.json"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v", err)
	}
	for _, path := range seeds {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Hand-picked seeds for shapes the corpus misses.
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"workflow":"wc","options":{"micro_gb":-1}}`))
	f.Add([]byte(`{"workflow":"wc","spec":null}`))
	f.Add([]byte(`{"workflow":"wc"}{"workflow":"ts"}`))
	f.Add([]byte(`{"cluster":{"Nodes":0},"workflow":"wc"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, apiErr := DecodeEstimateRequest(bytes.NewReader(data))
		switch {
		case req == nil && apiErr == nil:
			t.Fatal("neither request nor error returned")
		case req != nil && apiErr != nil:
			t.Fatal("both request and error returned")
		case apiErr != nil:
			if apiErr.Status < 400 || apiErr.Status > 599 {
				t.Fatalf("error status %d out of range", apiErr.Status)
			}
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("untyped error: %+v", apiErr)
			}
			// The envelope must always marshal: the handler path depends on it.
			if _, err := json.Marshal(errorEnvelope{Error: apiErr}); err != nil {
				t.Fatalf("error envelope does not marshal: %v", err)
			}
		default:
			// Accepted requests uphold the documented invariants.
			hasSpec := len(req.Spec) > 0 && !bytes.Equal(req.Spec, []byte("null"))
			if (req.Workflow == "") == !hasSpec {
				t.Fatalf("accepted request violates exactly-one-of: %+v", req)
			}
			if hasSpec && req.flow == nil {
				t.Fatal("inline spec accepted but not parsed")
			}
			if req.Options.MicroGB < 0 || req.Options.TPCHScale < 0 ||
				req.Options.PerNode < 0 || req.Options.TimeoutMS < 0 {
				t.Fatalf("accepted request with negative option: %+v", req.Options)
			}
		}
	})
}

// FuzzDecodeEstimateRequest catches panics; this companion pins the two
// strictness guarantees on crafted inputs, where the fuzzer only checks
// "no crash".
func TestDecodeStrictness(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"unknown_top_level_field", `{"workflow":"wc","bogus":1}`},
		{"unknown_option_field", `{"workflow":"wc","options":{"p99":true}}`},
		{"trailing_garbage", `{"workflow":"wc"} tail`},
		{"second_json_value", `{"workflow":"wc"}{"workflow":"ts"}`},
		{"bare_array", `[1,2,3]`},
		{"unknown_spec_field", `{"spec":{"name":"x","jobs":[{"id":"a","input_mb":1,"bogus":2}]}}`},
		{"unknown_cluster_field", `{"workflow":"wc","cluster":{"Nodes":1,"Bogus":2}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, apiErr := DecodeEstimateRequest(strings.NewReader(tc.body))
			if apiErr == nil {
				t.Fatalf("accepted %q as %+v", tc.body, req)
			}
			if apiErr.Code != CodeBadRequest {
				t.Errorf("code = %q, want %q", apiErr.Code, CodeBadRequest)
			}
		})
	}
}
