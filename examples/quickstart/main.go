// Quickstart walks the public API end to end on the paper's own worked
// example (Figure 4) and on a single Word Count job:
//
//  1. ask the BOE model for a task time at several degrees of parallelism
//     and watch the bottleneck move,
//  2. simulate the job on the paper's eleven-node cluster,
//  3. predict the whole job with the state-based estimator and compare.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"boedag"
)

func main() {
	spec := boedag.PaperCluster()
	model := boedag.NewBOE(spec)

	// --- 1. Task-level estimation (the BOE model, paper §III) ---------
	wc := boedag.WordCount(100 * boedag.GB)
	fmt.Println("BOE task-time estimates for Word Count maps (100 GB):")
	for _, perNode := range []int{1, 6, 12} {
		parallelism := perNode * spec.Nodes
		est := model.TaskTime(wc, boedag.Map, parallelism)
		fmt.Printf("  %2d tasks/node → %s\n", perNode, est)
	}
	fmt.Println("The bottleneck stays CPU, but past 6 tasks per node the six")
	fmt.Println("physical cores saturate and the task time grows — exactly the")
	fmt.Println("effect the profile-replay baselines cannot see.")
	fmt.Println()

	// --- 2. Ground truth: simulate the job ----------------------------
	// A trace recorder captures every task, state, and scheduling event
	// of the run; we export it as a Chrome trace below.
	rec := boedag.NewTraceRecorder()
	sim := boedag.NewSimulator(spec, boedag.WithTracer(boedag.SimOptions{Seed: 1}, rec))
	flow := boedag.Single(wc)
	res, err := sim.Run(flow)
	if err != nil {
		log.Fatal(err)
	}
	boedag.RenderGantt(os.Stdout, res)
	fmt.Println()

	// --- 3. Workflow-level prediction (Algorithm 1, paper §IV) --------
	timer := &boedag.BOETimer{Model: model, TaskStartOverhead: time.Second}
	est := boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: boedag.NormalMode})
	plan, err := est.Estimate(flow)
	if err != nil {
		log.Fatal(err)
	}
	boedag.RenderPlan(os.Stdout, plan)
	fmt.Printf("\npredicted %.1fs, simulated %.1fs — accuracy %.1f%%\n",
		plan.Makespan.Seconds(), res.Makespan.Seconds(),
		100*boedag.Accuracy(plan.Makespan, res.Makespan))

	// --- 4. Export the simulation trace for chrome://tracing ----------
	tf, err := os.CreateTemp("", "boedag-quickstart-*.trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := boedag.ExportChromeTrace(tf, rec.Events()); err != nil {
		log.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nChrome trace written to %s — open chrome://tracing or https://ui.perfetto.dev\n", tf.Name())
}
