#!/usr/bin/env bash
# verify.sh — the repo's full verification gate:
#   gofmt cleanliness, go vet, the race-enabled test suite with the
#   per-package coverage gate (hack/coverage_baseline.txt), the trace
#   parser / request decoder / hierarchical allocator / cache snapshot
#   fuzz smokes, the scheduler property suite under -race, the fleet
#   smoke (sharded-tier race suites plus a zero-error 3-node load run),
#   the boedagbench ledger smoke, the perf regression
#   gate (hack/bench_baseline.json, with an injected-slowdown
#   self-check), the instrumentation-overhead guard (disabled-path
#   observability must stay within 5% of an uninstrumented run), the
#   OTLP export shape check, and the explainability smoke (explain suite
#   under -race, /v1/explain conformance, Prometheus exposition golden).
#
# Usage: hack/verify.sh [-quick]
#   -quick skips the full race detector run, the regression gate, and
#   the overhead benchmark (the streaming-bus tests and the incremental
#   equivalence suite still run under -race, and the coverage, fuzz,
#   10k-estimate, ledger and OTLP checks still run).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "-quick" ]] && quick=1

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# otlp_check exports a real boepredict run as OTLP/JSON and validates
# the resourceSpans/resourceMetrics shape with hack/otlpcheck (hex ids,
# timestamps, resolvable parent links, populated metrics).
otlp_check() {
    echo "== OTLP export shape check =="
    local tmp
    tmp=$(mktemp -d)
    go run ./cmd/boepredict -workflow wc+ts -micro-gb 5 -otlp-out "$tmp/otlp.json" > /dev/null
    go run ./hack/otlpcheck "$tmp/otlp.json"
    rm -rf "$tmp"
}

# coverage_gate compares the per-package coverage printed by a
# `go test -cover` run (captured in $1) against the floors in
# hack/coverage_baseline.txt, printing each package's delta and failing
# if any package slips under its floor.
coverage_gate() {
    echo "== coverage gate (vs hack/coverage_baseline.txt) =="
    awk '
        NR==FNR { if ($1 !~ /^#/ && NF == 2) { base[$1] = $2; order[++nb] = $1 }; next }
        $1 == "ok" {
            for (i = 3; i <= NF; i++) if ($i == "coverage:") {
                pct = $(i + 1); sub(/%/, "", pct); cur[$2] = pct
            }
        }
        END {
            fail = 0
            for (k = 1; k <= nb; k++) {
                p = order[k]
                if (!(p in cur)) {
                    printf "  %-34s floor %5.1f%%  NO COVERAGE REPORTED\n", p, base[p]
                    fail = 1; continue
                }
                printf "  %-34s %5.1f%%  (floor %5.1f%%, %+5.1f)\n", p, cur[p], base[p], cur[p] - base[p]
                if (cur[p] + 0 < base[p] + 0) fail = 1
            }
            for (p in cur) if (!(p in base))
                printf "  %-34s %5.1f%%  (new package: add a floor to the baseline)\n", p, cur[p]
            if (fail) { print "FAIL: coverage fell below baseline"; exit 1 }
        }
    ' hack/coverage_baseline.txt "$1"
}

# fuzz_smoke runs the input-boundary fuzzers briefly: the seed corpus
# plus a few seconds of mutation must finish without a crasher (the
# never-panic contracts of the trace parser and the serve request
# decoder).
fuzz_smoke() {
    echo "== trace parser fuzz smoke =="
    go test ./internal/calibrate -run '^$' \
        -fuzz '^FuzzParseChromeTrace$' -fuzztime "${FUZZTIME:-5s}"
    echo "== serve request decoder fuzz smoke =="
    go test ./internal/serve -run '^$' \
        -fuzz '^FuzzDecodeEstimateRequest$' -fuzztime "${FUZZTIME:-5s}"
    echo "== schedule decoder fuzz smoke =="
    go test ./internal/serve -run '^$' \
        -fuzz '^FuzzDecodeScheduleRequest$' -fuzztime "${FUZZTIME:-5s}"
    echo "== hierarchical allocator fuzz smoke =="
    go test ./internal/sched -run '^$' \
        -fuzz '^FuzzHierarchyAllocate$' -fuzztime "${FUZZTIME:-5s}"
    echo "== cache snapshot reader fuzz smoke =="
    go test ./internal/cachestore -run '^$' \
        -fuzz '^FuzzReadSnapshot$' -fuzztime "${FUZZTIME:-5s}"
}

# fleet_smoke pins the sharded-fleet tier: the ring/proxy/fleettest
# suites under -race (byte-identity, fault injection, warm restart, SSE
# through the proxy), then a short boedagbench run against an in-process
# 3-node fleet that must complete without a single failed request.
fleet_smoke() {
    echo "== fleet race check =="
    go test -race -count=1 ./internal/fleet/...
    echo "== fleet load smoke (3 nodes, zero errors required) =="
    local out
    out=$(go run ./cmd/boedagbench -inprocess -fleet 3 -duration 2s -warmup 500ms -seed 1)
    echo "$out" | sed 's/^/  /'
    if ! echo "$out" | grep -q '(0 errors)'; then
        echo "FAIL: fleet load smoke saw request errors" >&2
        exit 1
    fi
}

# explain_smoke pins the explainability surface: the internal/explain
# suite under -race (critical-path exactness, worker-count determinism,
# annotation projection), the /v1/explain conformance goldens, and the
# Prometheus exposition golden.
explain_smoke() {
    echo "== explain race check =="
    go test -race -count=1 ./internal/explain
    echo "== explain + prometheus golden check =="
    go test -count=1 -run 'TestConformance|TestExplainMatchesLibrary' ./internal/serve
    go test -count=1 -run 'TestWritePrometheus' ./internal/obs
}

# bench_smoke compiles and runs the parallel-sweep benchmark once per
# sub-benchmark — a cheap guard that the evalpool fan-out path stays
# runnable; real speedup numbers need a longer -benchtime on a
# multi-core machine.
bench_smoke() {
    echo "== parallel sweep benchmark smoke =="
    go test ./internal/experiments -run '^$' -bench BenchmarkSweepParallel -benchtime 1x
}

# incremental_smoke pins the incremental estimator's contract: the
# equivalence suite (incremental byte-identical to from-scratch across
# the registry, synthetic DAGs, and concurrent pooled-scratch use) under
# the race detector, and one estimate of the 10k-job synthetic workflow
# so the scale path stays runnable. The full gate covers the former via
# the whole-suite race run and the latter via fresh_ledger.
incremental_smoke() {
    echo "== incremental equivalence race check =="
    go test -race -count=1 -run 'Incremental|SharePool|RepeatEstimate' \
        ./internal/statemodel
    echo "== 10k-job estimate smoke =="
    go test ./internal/statemodel -run '^$' \
        -bench 'BenchmarkEstimate10kJobs$' -benchtime 1x
}

# ledger_smoke runs a short boedagbench load against an in-process
# server, checks the written BENCH_*.json validates, and validates the
# committed ledgers too (baseline and the repo-root trajectory points).
ledger_smoke() {
    echo "== boedagbench ledger smoke =="
    local tmp
    tmp=$(mktemp -d)
    go run ./cmd/boedagbench -inprocess -duration 2s -warmup 500ms -seed 1 \
        -label smoke -out "$tmp/BENCH_smoke.json"
    go run ./hack/benchgate -validate "$tmp/BENCH_smoke.json" \
        hack/bench_baseline.json BENCH_*.json
    rm -rf "$tmp"
}

# fresh_ledger produces a gate-comparable ledger at $1: the same seeded
# service load and the same micro-benchmarks the committed baseline
# records (see hack/bench_baseline.json — regenerate both the same way).
fresh_ledger() {
    local tmp
    tmp=$(dirname "$1")
    go test -run '^$' -bench 'BenchmarkEstimatorAllocs$' -benchtime 100x \
        ./internal/statemodel > "$tmp/gobench.txt"
    go test -run '^$' -bench 'BenchmarkFigure4BOEExample$' -benchtime 100x \
        . >> "$tmp/gobench.txt"
    go test -run '^$' -bench 'BenchmarkEstimate10kJobs$' -benchtime 1x \
        ./internal/statemodel >> "$tmp/gobench.txt"
    go test -run '^$' -bench 'Reestimate$' -benchtime 5x \
        ./internal/statemodel >> "$tmp/gobench.txt"
    go test -run '^$' -bench 'BenchmarkHierarchicalAllocate$' -benchtime 100x \
        ./internal/sched >> "$tmp/gobench.txt"
    go test -run '^$' -bench 'BenchmarkStreamPolicySweep$' -benchtime 3x \
        ./internal/sched >> "$tmp/gobench.txt"
    go test -run '^$' -bench 'BenchmarkFleetEstimate$' -benchtime 50x \
        ./internal/fleet >> "$tmp/gobench.txt"
    go run ./cmd/boedagbench -inprocess -duration 3s -warmup 1s -seed 1 \
        -gobench "$tmp/gobench.txt" -label verify -out "$1"
}

# regression_gate holds a fresh measurement against the committed
# baseline with a generous tolerance band (machine-to-machine noise is
# real; sustained regressions are not), then proves the gate can fail at
# all by injecting a synthetic 2x slowdown and requiring a non-zero exit.
regression_gate() {
    echo "== perf regression gate (vs hack/bench_baseline.json) =="
    local tmp
    tmp=$(mktemp -d)
    fresh_ledger "$tmp/BENCH_fresh.json"
    go run ./hack/benchgate -base hack/bench_baseline.json \
        -new "$tmp/BENCH_fresh.json" -tol 0.75
    echo "== regression gate self-check (injected 2x slowdown must fail) =="
    if go run ./hack/benchgate -base hack/bench_baseline.json \
        -new "$tmp/BENCH_fresh.json" -tol 0.75 -inject 2.0 > /dev/null; then
        echo "FAIL: the gate passed an injected 2x regression" >&2
        rm -rf "$tmp"
        exit 1
    fi
    echo "  gate correctly rejected the injected regression"
    rm -rf "$tmp"
}

cover_out=$(mktemp)
trap 'rm -f "$cover_out"' EXIT

if [[ $quick -eq 1 ]]; then
    echo "== go test (quick, with coverage) =="
    go test -cover ./... | tee "$cover_out"
    coverage_gate "$cover_out"
    # The streaming bus and the evalpool engine are the genuinely
    # concurrent pieces: even the quick gate runs their tests under the
    # race detector.
    echo "== streaming race check =="
    go test -race -count=1 -run 'TestStream|TestTee|TestFollow|TestTracker' \
        ./internal/obs ./internal/progress
    echo "== evalpool race check =="
    go test -race -count=1 ./internal/evalpool
    go test -race -count=1 -run 'Parallel|Cache' \
        ./internal/experiments ./internal/tuning ./internal/calibrate
    # The prediction daemon is concurrency all the way down (coalescing,
    # admission queue, drain): its whole suite runs under -race even in
    # quick mode.
    echo "== serve race check =="
    go test -race -count=1 ./internal/serve
    # The scheduler's property/metamorphic suites and the shared
    # stateless allocator back both engines: they run under -race too.
    echo "== sched race check =="
    go test -race -count=1 ./internal/sched ./internal/sched/schedtest
    explain_smoke
    incremental_smoke
    fleet_smoke
    fuzz_smoke
    bench_smoke
    ledger_smoke
    otlp_check
    echo "verify OK (quick)"
    exit 0
fi

echo "== go test -race (with coverage) =="
go test -race -cover ./... | tee "$cover_out"
coverage_gate "$cover_out"

explain_smoke
fleet_smoke
fuzz_smoke
bench_smoke
ledger_smoke
otlp_check
regression_gate

echo "== instrumentation overhead guard =="
# The observability layer must be ~free when disabled: the disabled-path
# benchmark has to land within 5% of the fully instrumented one (and the
# enabled path itself is required to be cheap relative to simulation
# work, so the two bracket the uninstrumented baseline). Take the best
# of three runs of each to suppress scheduler noise; 40 iterations per
# run keeps the minimum stable enough for the 5% bound.
bench() {
    go test ./internal/simulator -run '^$' -bench "$1\$" -benchtime "${BENCHTIME:-40x}" -count 3 \
        | awk '/^Benchmark/ {if (min == "" || $3 < min) min = $3} END {print min}'
}
off=$(bench BenchmarkSimulatorInstrumentationOff)
on=$(bench BenchmarkSimulatorInstrumentationOn)
echo "  disabled: ${off} ns/op    enabled: ${on} ns/op"
# If the disabled path runs >5% slower than the enabled one, someone put
# work outside an enabled-check and the zero-cost contract is broken.
awk -v off="$off" -v on="$on" 'BEGIN {
    if (off > on * 1.05) {
        printf "FAIL: disabled-path instrumentation overhead: %s ns/op vs %s ns/op enabled\n", off, on
        exit 1
    }
}'

echo "verify OK"
