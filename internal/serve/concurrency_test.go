package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// pollUntil spins until cond holds or the deadline passes.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// counter reads one counter from the server registry via its JSON dump,
// keeping the test on the same path /metrics consumers use.
func counter(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Metrics().WriteJSON(&buf); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var out struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("metrics parse: %v", err)
	}
	return out.Counters[name]
}

// TestCoalescing is the coalescing proof: N identical concurrent requests
// run the estimator exactly once — asserted via the cache counters and
// the estimates_computed counter — and every caller observes the same
// response bytes.
func TestCoalescing(t *testing.T) {
	const n = 32
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxConcurrent: n, QueueDepth: n})
	s.testHookEstimate = func() { <-release }

	body := readRequest(t, "estimate_wc_ts")
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i], _, errs[i] = tryPost(ts.URL+"/v1/estimate", body)
		}(i)
	}

	// Every request must reach the cache (one will be computing, the rest
	// waiting on its single-flight entry) before we let the computation
	// finish; that closes the "requests arrived sequentially" loophole.
	pollUntil(t, "all requests in the cache", func() bool {
		hits, misses := s.CacheStats()
		return hits+misses == n
	})
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d observed different bytes than request 0", i)
		}
	}
	hits, misses := s.CacheStats()
	if misses != 1 || hits != n-1 {
		t.Errorf("cache stats = %d hits / %d misses, want %d / 1", hits, misses, n-1)
	}
	if got := counter(t, s, "estimates_computed"); got != 1 {
		t.Errorf("estimator ran %d times, want exactly 1", got)
	}
	if got := counter(t, s, "estimate_cache_misses"); got != 1 {
		t.Errorf("estimate_cache_misses metric = %d, want 1", got)
	}
}

// TestHammer drives 100 goroutines with a mix of identical and distinct
// scenarios (run under -race). Every scenario's responses must be
// byte-identical across goroutines, the estimator must run once per
// distinct scenario, and no request may be dropped.
func TestHammer(t *testing.T) {
	scenarios := []string{
		`{"workflow":"wc","options":{"micro_gb":2}}`,
		`{"workflow":"ts","options":{"micro_gb":2}}`,
		`{"workflow":"wc+ts","options":{"micro_gb":2}}`,
		`{"workflow":"wc","options":{"micro_gb":2,"mode":"median"}}`,
	}
	const n = 100
	s, ts := newTestServer(t, Config{MaxConcurrent: 16, QueueDepth: n})

	var wg sync.WaitGroup
	type result struct {
		scenario int
		status   int
		body     []byte
		err      error
	}
	results := make([]result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := i % len(scenarios)
			status, body, _, err := tryPost(ts.URL+"/v1/estimate", []byte(scenarios[sc]))
			results[i] = result{sc, status, body, err}
		}(i)
	}
	wg.Wait()

	first := make(map[int][]byte)
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if prev, ok := first[r.scenario]; ok {
			if !bytes.Equal(r.body, prev) {
				t.Errorf("scenario %d: divergent response bytes across goroutines", r.scenario)
			}
		} else {
			first[r.scenario] = r.body
		}
	}
	if got := counter(t, s, "http_requests"); got != n {
		t.Errorf("http_requests = %d, want %d", got, n)
	}
	if got := counter(t, s, "estimates_computed"); got != int64(len(scenarios)) {
		t.Errorf("estimator ran %d times for %d distinct scenarios", got, len(scenarios))
	}
	hits, misses := s.CacheStats()
	if hits+misses != n || misses != int64(len(scenarios)) {
		t.Errorf("cache stats = %d hits / %d misses, want %d total with %d misses",
			hits, misses, n, len(scenarios))
	}
}

// TestBatchDeterminism proves /v1/batch is byte-deterministic in the
// worker count: the same request against a 1-worker and an 8-worker
// server yields identical bodies, in input order.
func TestBatchDeterminism(t *testing.T) {
	var reqs []string
	for i := 0; i < 4; i++ {
		reqs = append(reqs,
			fmt.Sprintf(`{"workflow":"wc","options":{"micro_gb":%d}}`, i+1),
			fmt.Sprintf(`{"workflow":"ts","options":{"micro_gb":%d}}`, i+1),
			`{"workflow":"wc+ts","options":{"micro_gb":3}}`, // repeated: exercises the cache
		)
	}
	reqs = append(reqs, `{"spec":{"name":"solo","jobs":[{"id":"a","input_mb":1024}]}}`)
	body := []byte(`{"scenarios":[` + joinJSON(reqs) + `]}`)

	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		_, ts := newTestServer(t, Config{Workers: workers})
		status, got, _ := post(t, ts.URL+"/v1/batch", body)
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, status, got)
		}
		bodies = append(bodies, got)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("batch response differs between 1 and 8 workers:\n1: %s\n8: %s",
			bodies[0], bodies[1])
	}

	// Input order: result i must be exactly what /v1/estimate answers for
	// scenario i on its own.
	var out BatchResponse
	if err := json.Unmarshal(bodies[0], &out); err != nil {
		t.Fatalf("parse batch: %v", err)
	}
	if len(out.Results) != len(reqs) {
		t.Fatalf("%d results for %d scenarios", len(out.Results), len(reqs))
	}
	_, single := newTestServer(t, Config{})
	for i, req := range reqs {
		status, want, _ := post(t, single.URL+"/v1/estimate", []byte(req))
		if status != http.StatusOK {
			t.Fatalf("scenario %d alone: status %d: %s", i, status, want)
		}
		// Indentation depth differs between the nested and standalone
		// renderings; compare the compacted JSON.
		if !bytes.Equal(compactJSON(t, out.Results[i].Estimate), compactJSON(t, want)) {
			t.Errorf("result %d differs from a standalone estimate of scenario %d", i, i)
		}
	}
}

func compactJSON(t *testing.T, in []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, in); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.Bytes()
}

func joinJSON(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// TestBatchCoalescesWithinRequest: duplicated scenarios inside one batch
// share one estimator run and identical estimate bytes.
func TestBatchCoalescesWithinRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	body := []byte(`{"scenarios":[
		{"workflow":"wc","options":{"micro_gb":2}},
		{"workflow":"wc","options":{"micro_gb":2}},
		{"workflow":"wc","options":{"micro_gb":2}}
	]}`)
	status, got, _ := post(t, ts.URL+"/v1/batch", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	var out BatchResponse
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results", len(out.Results))
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(out.Results[i].Estimate, out.Results[0].Estimate) {
			t.Errorf("result %d diverged from result 0", i)
		}
	}
	if got := counter(t, s, "estimates_computed"); got != 1 {
		t.Errorf("estimator ran %d times for 3 identical scenarios", got)
	}
}
