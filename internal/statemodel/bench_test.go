package statemodel

import (
	"testing"

	"boedag/internal/dag"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// benchFlow is a DAG wide and deep enough to exercise many workflow
// states: two parallel chains feeding the estimator's state loop.
func benchFlow() *dag.Workflow {
	return dag.Parallel("bench",
		dag.Chain("etl",
			workload.WordCount(40*units.GB),
			workload.TeraSort(20*units.GB),
			workload.WordCount(10*units.GB)),
		dag.Chain("report",
			workload.TeraSort(40*units.GB),
			workload.WordCount(20*units.GB)),
	)
}

// BenchmarkEstimatorAllocs guards the estimator's hot path: the state
// loop must reuse its scratch buffers instead of reallocating per
// iteration. Run with -benchmem and watch allocs/op.
func BenchmarkEstimatorAllocs(b *testing.B) {
	flow := benchFlow()
	est := New(spec(), boeTimer(), Options{})
	if _, err := est.Estimate(flow); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(flow); err != nil {
			b.Fatal(err)
		}
	}
}
