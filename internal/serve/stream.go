package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"boedag/internal/obs"
	"boedag/internal/statemodel"
)

// This file implements /v1/estimate?stream=1: the same scenario contract
// as /v1/estimate, answered as a Server-Sent Events stream. The estimator
// runs once with a per-request obs.Stream as its tracer; every
// EvEstimatorState event — the estimator opening one predicted workflow
// state — is pushed to the client as it happens, and the final frame
// carries the complete estimate (or the error envelope). All event
// payloads are functions of model time only, so the stream is
// byte-deterministic for a deterministic scenario (the SSE goldens in
// testdata/ pin it).
//
// Wire shape, one frame per predicted state:
//
//	event: state
//	id: <state seq>
//	data: {"seq":N,"start_s":T,"running":["job/stage",...]}
//
// terminated by exactly one of:
//
//	event: result
//	data: <compact EstimateResponse JSON>
//
//	event: error
//	data: {"error":{"code":...,"message":...}}

// stateEvent is the data payload of one "state" SSE frame.
type stateEvent struct {
	Seq     int      `json:"seq"`
	StartS  float64  `json:"start_s"`
	Running []string `json:"running"`
}

// wantsStream reports whether the request asked for the SSE variant.
func wantsStream(r *http.Request) bool {
	return r.URL.Query().Get("stream") == "1"
}

// handleEstimateStream serves POST /v1/estimate?stream=1.
func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	req, apiErr := DecodeEstimateRequest(r.Body)
	s.phase(r.Context(), "decode", t0, s.phaseDecode)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	ctx, cancel := scenarioContext(r.Context(), req)
	defer cancel()

	// The estimator traces into a stream private to this request; the
	// handler is its only subscriber. DropOldest keeps the freshest states
	// if the client reads slowly — the final result frame is always exact.
	stream := obs.NewStream()
	sub := stream.SubscribeWith(0, obs.DropOldest)
	defer sub.Close()
	flow, est, apiErr := s.scenarioWith(req, stream)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers now so the client sees the stream open before
		// the first state lands (the estimator may think for a while).
		flusher.Flush()
	}
	s.streamed.Inc()

	// The estimator runs in its own goroutine and closes the stream when
	// done, which ends the event loop below. The done channel is buffered
	// so the goroutine can never block on a departed handler — the seam
	// TestEstimateStreamClientDisconnect leans on.
	type outcome struct {
		plan *statemodel.Plan
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		defer stream.Close()
		if s.testHookEstimate != nil {
			s.testHookEstimate()
		}
		s.computed.Inc()
		te := time.Now()
		plan, err := est.Estimate(flow)
		s.phase(ctx, "estimate", te, s.phaseEstimate)
		done <- outcome{plan, err}
	}()

	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				// Stream closed: the run is over and the buffered tail has
				// drained. Emit the terminal frame.
				o := <-done
				s.writeStreamResult(w, flusher, ctx, o.plan, o.err)
				return
			}
			if ev.Type != obs.EvEstimatorState {
				continue
			}
			writeSSE(w, flusher, "state", fmt.Sprintf("id: %d\n", ev.Seq), stateEvent{
				Seq:     ev.Seq,
				StartS:  ev.Time,
				Running: splitRunning(ev.Detail),
			})
		case <-ctx.Done():
			// Client gone (or deadline hit): stop writing, but wait for the
			// estimator goroutine so the handler never leaks it.
			sub.Close()
			<-done
			return
		}
	}
}

// writeStreamResult emits the terminal SSE frame: the compact estimate on
// success, the error envelope otherwise.
func (s *Server) writeStreamResult(w http.ResponseWriter, flusher http.Flusher,
	ctx context.Context, plan *statemodel.Plan, err error) {
	if err == nil && plan != nil {
		writeSSE(w, flusher, "result", "", buildEstimateResponse(plan))
		return
	}
	apiErr := &APIError{Status: http.StatusInternalServerError,
		Code: CodeInternal, Message: "estimate failed"}
	if err != nil {
		apiErr.Message = err.Error()
	}
	if ctx.Err() != nil {
		apiErr = timeoutError(ctx)
	}
	writeSSE(w, flusher, "error", "", errorEnvelope{Error: apiErr})
}

// writeSSE writes one SSE frame (event line, optional extra header lines,
// compact JSON data line, blank separator) and flushes it.
func writeSSE(w http.ResponseWriter, flusher http.Flusher, event, extra string, data any) {
	payload, err := json.Marshal(data)
	if err != nil { // cannot happen: all payloads marshal cleanly
		return
	}
	fmt.Fprintf(w, "event: %s\n%sdata: %s\n\n", event, extra, payload)
	if flusher != nil {
		flusher.Flush()
	}
}

// splitRunning parses EvEstimatorState's comma-joined running set back
// into the slice shape the JSON payload carries.
func splitRunning(detail string) []string {
	if detail == "" {
		return []string{}
	}
	return strings.Split(detail, ",")
}
