package calibrate

import (
	"bytes"
	"math"
	"testing"

	"boedag/internal/cluster"
)

// FuzzParseChromeTrace holds the parser's contract under arbitrary
// input: it must either return an error or a structurally sane session —
// never panic, never fabricate NaN/negative measurements. The seed
// corpus covers the boundary shapes the edge-case tests exercise plus a
// genuine recorded probe session, so mutations explore realistic traces
// rather than only random bytes.
func FuzzParseChromeTrace(f *testing.F) {
	seeds := []string{
		"",
		"{",
		"[1,2,3]",
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"name":"map[0]","cat":"task","ph":"X","ts":0,"dur":1}]}`,
		`{"traceEvents":[{"name":"run","cat":"meta","ph":"i","ts":0,"args":{"nodes":2,"slots":4}}]}`,
		`{"traceEvents":[{"name":"run","cat":"meta","ph":"i","ts":0,"args":{"nodes":2,"slots":4,"skew":true}},` +
			`{"name":"map[0]","cat":"task","ph":"X","ts":0,"dur":1e6,"args":{"job":"j","stage":"map","task":0}},` +
			`{"name":"map","cat":"substage","ph":"X","ts":0,"dur":1e6,"args":{"job":"j","stage":"map","task":0,"sub":"map","bytes":{"cpu":5}}}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// One real recorded session (truncated: a fuzz seed does not need all
	// five probes, and the full trace would bloat the corpus).
	real := recordProbeTrace(f, cluster.PaperCluster())
	if len(real) > 1<<16 {
		real = real[:1<<16]
	}
	f.Add(real)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseChromeTrace(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatal("non-nil session alongside error")
			}
			return
		}
		if s.Nodes <= 0 || s.Slots <= 0 {
			t.Fatalf("accepted session with nodes=%d slots=%d", s.Nodes, s.Slots)
		}
		for _, job := range s.Jobs() {
			res, err := s.Result(job)
			if err != nil {
				continue // a job can lack completed tasks; that is an error, not a panic
			}
			for _, task := range res.Tasks {
				if task.End < task.Start {
					t.Fatalf("task %s[%d] ends before it starts", task.Job, task.Index)
				}
				for _, d := range task.SubStages {
					if d < 0 {
						t.Fatalf("negative sub-stage duration in %s[%d]", task.Job, task.Index)
					}
				}
			}
		}
		// Calibration on an accepted session may fail (missing probes) but
		// must not panic or emit non-finite numbers.
		cal, err := FromSession(s)
		if err != nil {
			return
		}
		for _, v := range []float64{
			float64(cal.CoreThroughput), float64(cal.DiskReadPool),
			float64(cal.DiskWritePool), float64(cal.NetworkPool),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("non-finite recovered throughput %v", v)
			}
		}
		for _, cf := range cal.Confidence {
			if math.IsNaN(cf.Spread) || math.IsInf(cf.Spread, 0) || cf.Spread < 0 {
				t.Fatalf("non-finite confidence spread %v", cf.Spread)
			}
		}
	})
}
