package boedag

import (
	"boedag/internal/explain"
)

// Estimate explainability. A single estimator run can be unfolded into an
// explained estimate: the critical path through the predicted plan (a
// chain of intervals whose durations sum exactly to the makespan, each
// tagged with its dominant resource), per-resource and per-job bottleneck
// attribution, the time-weighted utilization of every predicted state,
// and a θ-sensitivity table answering "which cluster parameter should we
// upgrade first".
type (
	// Explanation is a fully explained estimate; its JSON form is the
	// wire contract of the prediction service's POST /v1/explain.
	Explanation = explain.Explanation
	// ExplainOptions tune an explanation (ε, worker fan-out, plan cache).
	ExplainOptions = explain.Options
	// CriticalInterval is one link of the critical path.
	CriticalInterval = explain.Interval
	// ExplainResourceShare attributes part of the makespan to a resource.
	ExplainResourceShare = explain.ResourceShare
	// ExplainJobShare attributes part of the critical path to a job.
	ExplainJobShare = explain.JobShare
	// ExplainStateUtil is one predicted state's utilization view.
	ExplainStateUtil = explain.StateUtil
	// ThetaSensitivity is one row of the θ-sensitivity table.
	ThetaSensitivity = explain.Sensitivity
)

// Interval tags beyond the cluster resource classes.
const (
	// ExplainResourceSlots tags parallelism-bound (slot-bound) intervals.
	ExplainResourceSlots = explain.ResourceSlots
	// ExplainResourceSubmit tags job-submit-overhead gaps.
	ExplainResourceSubmit = explain.ResourceSubmit
)

var (
	// Explain runs the estimator once and explains the resulting plan.
	Explain = explain.Explain
	// ExplainEstimatedPlan explains an already-computed plan without
	// re-running the base estimate (the θ-sensitivity runs still execute).
	ExplainEstimatedPlan = explain.ExplainPlan
)
