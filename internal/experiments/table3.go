package experiments

import (
	"fmt"
	"time"

	"boedag/internal/metrics"
	"boedag/internal/profile"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
)

// Table3Row is one workflow column of the paper's Table III: the
// end-to-end estimation accuracy of the state-based approach under each
// skew mode, plus the stage-breakdown accuracy the paper reports in
// prose.
type Table3Row struct {
	Label    string
	Actual   time.Duration
	Estimate map[statemodel.SkewMode]time.Duration
	// Accuracy is 1 − |est−act|/act of the workflow makespan, per mode.
	Accuracy map[statemodel.SkewMode]float64
	// StageAccuracy is the mean per-stage duration accuracy, per mode.
	StageAccuracy map[statemodel.SkewMode]float64
	// EstimationTime is the wall-clock cost of one estimation (the paper's
	// "Execution time" paragraph: must stay well under a second).
	EstimationTime time.Duration
	// Jobs and States record the workflow's size for the report.
	Jobs, States int
}

// Table3Summary aggregates rows the way the paper quotes them.
type Table3Summary struct {
	Rows []Table3Row
	// AvgAccuracy per mode over all workflows.
	AvgAccuracy map[statemodel.SkewMode]float64
	// MinAccuracy per mode (the paper: "> 81.13% for all workflows").
	MinAccuracy map[statemodel.SkewMode]float64
	// MaxEstimationTime is the slowest single estimation.
	MaxEstimationTime time.Duration
}

// Table3 reproduces the paper's Table III over all 51 workflows: each is
// executed once in the simulator (ground truth + task-time profiles),
// then the state-based estimator predicts its makespan from the profiles
// under the three skew modes (§V-C: profiles at the matching degree of
// parallelism isolate the state-model's own error).
func Table3(cfg Config) (*Table3Summary, error) {
	flows, err := TableIIIWorkflows(cfg)
	if err != nil {
		return nil, err
	}
	return Table3For(cfg, flows)
}

// Table3For runs the Table III methodology over an arbitrary workflow
// list (used by tests with reduced inputs). Each workflow's
// simulate-profile-estimate pipeline is one pool job, so the 51-workflow
// table parallelizes across rows.
func Table3For(cfg Config, flows []NamedWorkflow) (*Table3Summary, error) {
	jobs := make([]func() (*Table3Row, error), len(flows))
	for i, nw := range flows {
		nw := nw
		jobs[i] = func() (*Table3Row, error) { return table3Row(cfg, nw) }
	}
	rows, err := runJobs(cfg, "table3", jobs)
	if err != nil {
		return nil, err
	}

	sum := &Table3Summary{
		AvgAccuracy: make(map[statemodel.SkewMode]float64),
		MinAccuracy: make(map[statemodel.SkewMode]float64),
	}
	accs := make(map[statemodel.SkewMode][]float64)
	for _, row := range rows {
		sum.Rows = append(sum.Rows, *row)
		for mode, a := range row.Accuracy {
			accs[mode] = append(accs[mode], a)
		}
		if row.EstimationTime > sum.MaxEstimationTime {
			sum.MaxEstimationTime = row.EstimationTime
		}
	}
	for mode, xs := range accs {
		sum.AvgAccuracy[mode] = metrics.Mean(xs)
		sum.MinAccuracy[mode] = metrics.Min(xs)
	}
	return sum, nil
}

func table3Row(cfg Config, nw NamedWorkflow) (*Table3Row, error) {
	sim := simulator.New(cfg.Spec, cfg.simOptions())
	res, err := sim.Run(nw.Flow)
	if err != nil {
		return nil, fmt.Errorf("experiments: table3 %s: %w", nw.Label, err)
	}
	profs := profile.Capture(res)
	timer := &statemodel.ProfileTimer{Profiles: profs}

	row := &Table3Row{
		Label:         nw.Label,
		Actual:        res.Makespan,
		Estimate:      make(map[statemodel.SkewMode]time.Duration, 3),
		Accuracy:      make(map[statemodel.SkewMode]float64, 3),
		StageAccuracy: make(map[statemodel.SkewMode]float64, 3),
		Jobs:          len(nw.Flow.Jobs),
		States:        len(res.States),
	}
	for _, mode := range statemodel.Modes() {
		est := statemodel.New(cfg.Spec, timer, statemodel.Options{
			Mode:              mode,
			JobSubmitOverhead: cfg.JobSubmitOverhead,
		})
		start := time.Now()
		plan, err := est.Estimate(nw.Flow)
		if err != nil {
			return nil, fmt.Errorf("experiments: table3 %s (%s): %w", nw.Label, mode, err)
		}
		if d := time.Since(start); d > row.EstimationTime {
			row.EstimationTime = d
		}
		row.Estimate[mode] = plan.Makespan
		row.Accuracy[mode] = metrics.Accuracy(plan.Makespan, res.Makespan)
		row.StageAccuracy[mode] = stageBreakdownAccuracy(plan, res)
	}
	return row, nil
}

// stageBreakdownAccuracy compares each job stage's predicted duration to
// its measured one and averages the accuracy — the paper's "Stage
// Break-downs" metric.
func stageBreakdownAccuracy(plan *statemodel.Plan, res *simulator.Result) float64 {
	var accs []float64
	for _, ps := range plan.Stages {
		ms := res.StageOf(ps.Job, ps.Stage)
		if ms == nil {
			continue
		}
		accs = append(accs, metrics.Accuracy(ps.Duration(), ms.Duration()))
	}
	return metrics.Mean(accs)
}
