package simulator

import (
	"math"
	"math/rand"
)

// sizeFactors draws n per-task data-size multipliers with the given
// coefficient of variation, normalized so they sum to n (total job data is
// preserved). Draws come from a truncated normal around 1.0; the RNG is
// seeded deterministically per (workflow seed, job, stage) so repeated
// runs and profiling runs see identical skew.
func sizeFactors(n int, cv float64, seed int64) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if cv <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	for i := range out {
		f := 1 + rng.NormFloat64()*cv
		// Truncate: no task smaller than 20% or larger than 3x the mean.
		f = math.Max(0.2, math.Min(3, f))
		out[i] = f
		sum += f
	}
	scale := float64(n) / sum
	for i := range out {
		out[i] *= scale
	}
	return out
}

// hashSeed derives a stable per-job-stage RNG seed from a base seed and a
// label, using FNV-1a so the mapping is platform-independent.
func hashSeed(base int64, label string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ uint64(base)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return int64(h & math.MaxInt64)
}
