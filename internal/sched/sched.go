// Package sched models the YARN resource manager's Dominant Resource
// Fairness (DRF) allocation of containers among parallel jobs (paper
// §II-B). Both the ground-truth simulator and the state-based estimator
// call it to answer the same question: with this set of jobs wanting
// containers of these sizes, how many tasks does each job get to run
// simultaneously — its degree of parallelism Δ_i?
package sched

import (
	"boedag/internal/cluster"
)

// Request describes one job's appetite during a workflow state.
type Request struct {
	// JobID identifies the job (unique per call).
	JobID string
	// MemoryMB and VCores are the per-container resource requests of the
	// stage the job is currently running.
	MemoryMB int
	VCores   int
	// Pending is the number of tasks still wanting containers.
	Pending int
	// Cap optionally limits the containers granted to this job (0 = no
	// cap); used to sweep the degree of parallelism in experiments.
	Cap int
	// Order is the job's submission sequence number, consumed by the FIFO
	// policy (lower is earlier); DRF and Fair ignore it.
	Order int
	// Queue names the job's leaf queue in the hierarchy ("" = root/flat).
	// Only AllocateHierarchy consults it.
	Queue string
	// Gang is the all-or-nothing minimum: a job holding fewer than Gang
	// containers after allocation holds none (0 = no gang constraint).
	// Only AllocateHierarchy enforces it.
	Gang int
	// Predicted is the estimator's predicted (remaining) runtime in
	// seconds, consumed by PolicySPJF ordering and the hierarchical
	// reclaim victim order. Zero means "no prediction".
	Predicted float64
}

// Pool is the cluster-aggregate capacity DRF divides.
type Pool struct {
	MemoryMB int
	VCores   int
	Slots    int
}

// PoolOf derives the allocation pool from a cluster spec. The vcore pool
// follows the configured task slots, not the physical cores: YARN's
// yarn.nodemanager.resource.cpu-vcores is an operator setting that
// clusters routinely set above the hardware to over-subscribe CPU (the
// paper's sweeps reach 12 tasks per 6-core node). Physical cores still
// bind in the resource model — an over-subscribed CPU slows every task —
// just not in admission.
func PoolOf(spec cluster.Spec) Pool {
	return Pool{
		MemoryMB: spec.TotalMemoryMB(),
		VCores:   spec.TotalSlots(),
		Slots:    spec.TotalSlots(),
	}
}

// WithSlotLimit returns a copy of the pool with both the slot and vcore
// admission scaled to the override — the knob experiments use to sweep
// the degree of parallelism.
func (p Pool) WithSlotLimit(slots int) Pool {
	if slots <= 0 {
		return p
	}
	p.Slots = slots
	p.VCores = slots
	return p
}

// Allocation maps JobID to the number of containers granted.
type Allocation map[string]int

// Total returns the number of containers granted across all jobs.
func (a Allocation) Total() int {
	n := 0
	for _, v := range a {
		n += v
	}
	return n
}

// DRF grants containers one at a time, always to the job with the lowest
// dominant share (its maximum share across memory and vcores), until
// capacity, slots, caps, or demand is exhausted. Held is the set of
// containers jobs already hold (e.g. running tasks in the simulator);
// held containers count toward shares and consume pool capacity but are
// not re-granted. Ties break deterministically by JobID.
func DRF(pool Pool, reqs []Request, held Allocation) Allocation {
	grant := make(Allocation, len(reqs))
	memUsed, cpuUsed, slotsUsed := 0, 0, 0

	// Account for held containers first.
	for _, r := range reqs {
		h := held[r.JobID]
		if h == 0 {
			continue
		}
		grant[r.JobID] = 0
		memUsed += h * r.MemoryMB
		cpuUsed += h * r.VCores
		slotsUsed += h
	}

	idx := make([]int, len(reqs))
	for i := range reqs {
		idx[i] = i
	}
	// Insertion sort: reqs is one entry per job and both the estimator and
	// the simulator call DRF once per state iteration — sort.Slice's
	// reflective swapper would allocate every time.
	for i := 1; i < len(idx); i++ {
		for k := i; k > 0 && reqs[idx[k]].JobID < reqs[idx[k-1]].JobID; k-- {
			idx[k], idx[k-1] = idx[k-1], idx[k]
		}
	}

	dominant := func(r Request, n int) float64 {
		memShare, cpuShare := 0.0, 0.0
		if pool.MemoryMB > 0 {
			memShare = float64(n*r.MemoryMB) / float64(pool.MemoryMB)
		}
		if pool.VCores > 0 {
			cpuShare = float64(n*r.VCores) / float64(pool.VCores)
		}
		if memShare > cpuShare {
			return memShare
		}
		return cpuShare
	}

	for {
		best, bestShare := -1, 0.0
		for _, i := range idx {
			r := reqs[i]
			have := grant[r.JobID] + held[r.JobID]
			if grant[r.JobID] >= r.Pending {
				continue
			}
			if r.Cap > 0 && have >= r.Cap {
				continue
			}
			if memUsed+r.MemoryMB > pool.MemoryMB && pool.MemoryMB > 0 {
				continue
			}
			if cpuUsed+r.VCores > pool.VCores && pool.VCores > 0 {
				continue
			}
			if pool.Slots > 0 && slotsUsed+1 > pool.Slots {
				continue
			}
			share := dominant(r, have)
			if best == -1 || share < bestShare {
				best, bestShare = i, share
			}
		}
		if best == -1 {
			break
		}
		r := reqs[best]
		grant[r.JobID]++
		memUsed += r.MemoryMB
		cpuUsed += r.VCores
		slotsUsed++
	}
	return grant
}

// Parallelism answers the estimator's question directly: the steady-state
// degree of parallelism per job in a state where the given jobs have
// effectively unbounded pending tasks (a stage mid-flight). It is DRF
// with each job's Pending set high enough not to bind.
func Parallelism(pool Pool, reqs []Request) Allocation {
	boosted := make([]Request, len(reqs))
	for i, r := range reqs {
		boosted[i] = r
		if maxSlots := pool.Slots; maxSlots > 0 && (r.Pending == 0 || r.Pending > maxSlots) {
			boosted[i].Pending = maxSlots
		}
	}
	return DRF(pool, boosted, nil)
}
