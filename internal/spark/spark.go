// Package spark translates Spark-style stage lineages into the MapReduce
// workflow model, backing the paper's claim that "the result is easy to
// be extended to other cluster-based distributed systems such as Spark
// and Tez, of which the key mechanisms for execution model, task
// distribution and fault-tolerance are similar" (§I).
//
// A Spark job is a DAG of stages separated by shuffle boundaries; narrow
// dependencies fuse into a single stage. The translation maps every
// shuffle boundary onto one MapReduce job: the upstream stage's fused
// pipeline becomes the map side (scan + compute + shuffle write) and the
// downstream stage's shuffle read becomes the reduce side. Stages that
// feed an action directly (no shuffle below them) become map-only jobs.
// The resulting dag.Workflow runs on the same simulator and cost models
// as everything else in this repository.
package spark

import (
	"fmt"

	"boedag/internal/dag"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// StageID names a stage within a lineage.
type StageID string

// Stage is one Spark stage: a fused pipeline of narrow transformations
// bounded by shuffles (or the data source / action).
type Stage struct {
	// ID must be unique within the lineage.
	ID StageID
	// InputBytes is the source data volume for stages that read storage
	// (leave zero for stages fed purely by parent shuffles).
	InputBytes units.Bytes
	// Parents are the stages whose shuffle output this stage reads.
	Parents []StageID
	// Selectivity is output bytes per input byte of the fused pipeline.
	Selectivity float64
	// CPUCost is unit-cost compute per input byte of the fused pipeline
	// (1.0 ≈ a plain scan).
	CPUCost float64
	// Partitions is the stage's task count; 0 derives it from the input
	// (one task per 128 MB).
	Partitions int
	// CacheOutput marks stages whose output is persisted (adds a storage
	// write like an HDFS materialization with one replica).
	CacheOutput bool
}

// Lineage is a Spark job: a DAG of stages. The last stages (those nobody
// consumes) feed the action.
type Lineage struct {
	Name   string
	Stages []Stage
}

// Validate reports structural problems: duplicate IDs, unknown parents,
// sourceless stages, or non-positive shapes.
func (l *Lineage) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("spark: lineage needs a name")
	}
	if len(l.Stages) == 0 {
		return fmt.Errorf("spark: lineage %q has no stages", l.Name)
	}
	seen := map[StageID]bool{}
	for _, s := range l.Stages {
		if s.ID == "" {
			return fmt.Errorf("spark: lineage %q: stage with empty ID", l.Name)
		}
		if seen[s.ID] {
			return fmt.Errorf("spark: lineage %q: duplicate stage %q", l.Name, s.ID)
		}
		seen[s.ID] = true
		if s.InputBytes == 0 && len(s.Parents) == 0 {
			return fmt.Errorf("spark: lineage %q: stage %q has no input and no parents", l.Name, s.ID)
		}
		if s.InputBytes < 0 {
			return fmt.Errorf("spark: lineage %q: stage %q has negative input", l.Name, s.ID)
		}
		if s.Selectivity < 0 || s.CPUCost < 0 {
			return fmt.Errorf("spark: lineage %q: stage %q has negative shape", l.Name, s.ID)
		}
	}
	for _, s := range l.Stages {
		for _, p := range s.Parents {
			if !seen[p] {
				return fmt.Errorf("spark: lineage %q: stage %q reads unknown stage %q", l.Name, s.ID, p)
			}
			if p == s.ID {
				return fmt.Errorf("spark: lineage %q: stage %q reads itself", l.Name, s.ID)
			}
		}
	}
	return nil
}

// Translate compiles the lineage into a workflow of MapReduce jobs: one
// job per stage. A stage with children becomes the map+shuffle side and
// its children consume its output; a terminal stage becomes a map-only
// job writing the action's result. Output sizes propagate through the
// DAG the way the TPC-H planner's do.
func Translate(l *Lineage) (*dag.Workflow, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	hasChild := map[StageID]bool{}
	for _, s := range l.Stages {
		for _, p := range s.Parents {
			hasChild[p] = true
		}
	}

	w := &dag.Workflow{Name: l.Name}
	outBytes := map[StageID]units.Bytes{}

	// Stages are processed in lineage order; parents must come first for
	// sizes to propagate. Validate that as we go.
	done := map[StageID]bool{}
	for _, s := range l.Stages {
		in := s.InputBytes
		for _, p := range s.Parents {
			if !done[p] {
				return nil, fmt.Errorf("spark: lineage %q: stage %q listed before its parent %q",
					l.Name, s.ID, p)
			}
			in += outBytes[p]
		}
		if in <= 0 {
			return nil, fmt.Errorf("spark: lineage %q: stage %q receives no data", l.Name, s.ID)
		}

		sel := s.Selectivity
		if sel == 0 {
			sel = 1
		}
		cpu := s.CPUCost
		if cpu == 0 {
			cpu = 1
		}
		partitions := s.Partitions
		if partitions <= 0 {
			partitions = int(in/(128*units.MB)) + 1
		}

		p := workload.JobProfile{
			Name:            l.Name + "/" + string(s.ID),
			InputBytes:      in,
			SplitBytes:      splitFor(in, partitions),
			MapSelectivity:  sel,
			MapCPUCost:      cpu,
			Replicas:        1, // shuffle files and cached RDDs are unreplicated
			SortBufferBytes: 100 * units.MB,
			SkewCV:          0.1,
		}
		switch {
		case hasChild[s.ID]:
			// Shuffle boundary below: the downstream exchange is this job's
			// reduce side, sized like Spark's default partitioning.
			p.ReduceTasks = reducePartitions(in.Scale(sel))
			p.ReduceSelectivity = 1.0
			p.ReduceCPUCost = 0.5 // exchange only; the child does the work
		default:
			// Terminal stage: action result (collect/save).
			p.ReduceTasks = 0
			if s.CacheOutput {
				p.Replicas = 1
			}
		}

		job := dag.Job{ID: string(s.ID), Profile: p}
		for _, parent := range s.Parents {
			job.Deps = append(job.Deps, string(parent))
		}
		w.Jobs = append(w.Jobs, job)
		outBytes[s.ID] = p.OutputBytes()
		done[s.ID] = true
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("spark: translated workflow invalid: %w", err)
	}
	return w, nil
}

// splitFor sizes map splits so the stage gets the requested partition
// count.
func splitFor(in units.Bytes, partitions int) units.Bytes {
	s := in / units.Bytes(partitions)
	if s < units.MB {
		return units.MB
	}
	return s
}

// reducePartitions mimics spark.sql.shuffle.partitions-style sizing: one
// partition per 128 MB of exchange data, within [2, 200].
func reducePartitions(exchange units.Bytes) int {
	n := int(exchange / (128 * units.MB))
	if n < 2 {
		return 2
	}
	if n > 200 {
		return 200
	}
	return n
}

// WordCountLineage is a canonical example: read → flatMap/map (fused) →
// reduceByKey → save.
func WordCountLineage(input units.Bytes) *Lineage {
	return &Lineage{
		Name: "spark-wc",
		Stages: []Stage{
			{ID: "tokenize", InputBytes: input, Selectivity: 0.25, CPUCost: 3},
			{ID: "counts", Parents: []StageID{"tokenize"}, Selectivity: 0.5, CPUCost: 1.2},
		},
	}
}

// PageRankLineage models the classic iterative PageRank: an edge scan
// followed by `iters` contribution-exchange stages.
func PageRankLineage(edges units.Bytes, iters int) *Lineage {
	l := &Lineage{Name: "spark-pr"}
	l.Stages = append(l.Stages, Stage{ID: "edges", InputBytes: edges, Selectivity: 1.1, CPUCost: 1.4})
	prev := StageID("edges")
	for i := 1; i <= iters; i++ {
		id := StageID(fmt.Sprintf("rank%d", i))
		l.Stages = append(l.Stages, Stage{
			ID: id, Parents: []StageID{prev}, Selectivity: 1.0, CPUCost: 1.3,
		})
		prev = id
	}
	return l
}
