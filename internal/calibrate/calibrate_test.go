package calibrate

import (
	"errors"
	"math"
	"testing"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/simulator"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// TestRecoversPaperCluster is the closed loop: probing the simulated
// PaperCluster must recover its own specification.
func TestRecoversPaperCluster(t *testing.T) {
	spec := cluster.PaperCluster()
	est, err := Cluster(SimulatorRunner(spec), spec.TotalSlots(), spec.Nodes)
	if err != nil {
		t.Fatal(err)
	}

	within := func(name string, got, want float64, tol float64) {
		t.Helper()
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s = %.1f, want %.1f (±%.0f%%)", name, got, want, 100*tol)
		}
	}
	mbps := float64(units.MBps)
	within("core throughput", float64(est.CoreThroughput)/mbps,
		float64(spec.Node.CoreThroughput)/mbps, 0.05)
	within("disk read pool", float64(est.DiskReadPool)/mbps,
		float64(spec.TotalCapacity(cluster.DiskRead))/mbps, 0.10)
	within("network pool", float64(est.NetworkPool)/mbps,
		float64(spec.TotalCapacity(cluster.Network))/mbps, 0.15)
	// The write probe's read and write legs are pipelined, so on this
	// symmetric cluster the estimate recovers the full write pool.
	within("disk write pool", float64(est.DiskWritePool)/mbps,
		float64(spec.TotalCapacity(cluster.DiskWrite))/mbps, 0.10)
	// Overhead is the simulator's 1 s container launch.
	if d := est.TaskOverhead - time.Second; d < -100*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("task overhead = %v, want ≈ 1s", est.TaskOverhead)
	}
}

func TestCalibrationTransfersAcrossClusters(t *testing.T) {
	// A faster cluster must calibrate to proportionally larger pools. The
	// disks are boosted even more so the network probe's shuffle stays
	// NIC-bound (otherwise the network estimate is only a lower bound).
	fast := cluster.PaperCluster()
	fast.Node.CoreThroughput *= 2
	fast.Node.NetworkRate *= 2
	fast.Node.DiskReadRate *= 4
	fast.Node.DiskWriteRate *= 4

	base, err := Cluster(SimulatorRunner(cluster.PaperCluster()),
		cluster.PaperCluster().TotalSlots(), 11)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Cluster(SimulatorRunner(fast), fast.TotalSlots(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(boosted.CoreThroughput) / float64(base.CoreThroughput); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("core throughput ratio = %.2f, want ≈ 2", ratio)
	}
	if ratio := float64(boosted.NetworkPool) / float64(base.NetworkPool); ratio < 1.6 || ratio > 2.4 {
		t.Errorf("network ratio = %.2f, want ≈ 2", ratio)
	}
}

func TestNodeSpecConversion(t *testing.T) {
	est := Estimate{
		TaskOverhead:   time.Second,
		CoreThroughput: 50 * units.MBps,
		DiskReadPool:   2200 * units.MBps,
		DiskWritePool:  1100 * units.MBps,
		NetworkPool:    1375 * units.MBps,
	}
	node := est.NodeSpec(11, 6, 32*1024)
	if err := node.Validate(); err != nil {
		t.Fatal(err)
	}
	if node.DiskReadRate != 200*units.MBps {
		t.Errorf("per-node read = %v, want 200MB/s", node.DiskReadRate)
	}
	if node.NetworkRate != 125*units.MBps {
		t.Errorf("per-node network = %v, want 125MB/s", node.NetworkRate)
	}
}

func TestClusterRejectsBadArgs(t *testing.T) {
	r := SimulatorRunner(cluster.PaperCluster())
	if _, err := Cluster(r, 0, 11); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := Cluster(r, 132, 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestClusterPropagatesRunnerErrors(t *testing.T) {
	boom := errors.New("cluster on fire")
	r := func(p workload.JobProfile, slots int) (*simulator.Result, error) {
		return nil, boom
	}
	if _, err := Cluster(r, 132, 11); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped runner error", err)
	}
}

func TestEffectiveFloors(t *testing.T) {
	if got := effective(time.Second, 2*time.Second); got != 1e-3 {
		t.Errorf("effective floored = %v", got)
	}
	if got := effective(3*time.Second, time.Second); got != 2 {
		t.Errorf("effective = %v, want 2", got)
	}
}

func TestSortDurations(t *testing.T) {
	ts := []time.Duration{3, 1, 2}
	sortDurations(ts)
	if ts[0] != 1 || ts[2] != 3 {
		t.Errorf("sorted = %v", ts)
	}
}

// TestClusterWithParallelProbesDeterministic: the five probes are
// independent runs, so the estimate is identical at any worker count.
func TestClusterWithParallelProbesDeterministic(t *testing.T) {
	spec := cluster.PaperCluster()
	run := SimulatorRunner(spec)
	serial, err := ClusterWith(run, spec.TotalSlots(), spec.Nodes, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ClusterWith(run, spec.TotalSlots(), spec.Nodes, Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if *serial != *parallel {
		t.Errorf("estimates differ:\nserial   %+v\nparallel %+v", *serial, *parallel)
	}
}
