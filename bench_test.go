// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V), plus ablations of the design choices called out in
// DESIGN.md §5 and micro-benchmarks of the hot paths. Experiment benches
// run at one tenth of the paper's data scale so `go test -bench=.` stays
// interactive; `cmd/benchtables` regenerates everything at full scale.
//
// Accuracy-style results are attached to the benchmark output as custom
// metrics (accuracy%, improvement-x), so `go test -bench` output doubles
// as the reproduction record; EXPERIMENTS.md interprets them against the
// paper's numbers.
package boedag_test

import (
	"testing"
	"time"

	"boedag"
	"boedag/internal/baseline"
	"boedag/internal/boe"
	"boedag/internal/calibrate"
	"boedag/internal/cluster"
	"boedag/internal/experiments"
	"boedag/internal/fairshare"
	"boedag/internal/metrics"
	"boedag/internal/profile"
	"boedag/internal/progress"
	"boedag/internal/sched"
	"boedag/internal/simulator"
	"boedag/internal/spark"
	"boedag/internal/statemodel"
	"boedag/internal/tuning"
	"boedag/internal/units"
	"boedag/internal/workload"
)

func benchConfig() experiments.Config { return experiments.Scaled(10) }

// BenchmarkFigure1WebAnalytics simulates the paper's Figure 1 four-job
// web-analytics DAG and reports how far the same job's map-task time
// drifts across contention regimes (the paper: 27 s → 24 s → 20 s).
func BenchmarkFigure1WebAnalytics(b *testing.B) {
	cfg := experiments.Default() // full size: the drift needs real waves
	flow := experiments.WebAnalytics(cfg.MicroInput / 2)
	var drift float64
	for i := 0; i < b.N; i++ {
		res, err := simulator.New(cfg.Spec, cfg.SimOptions(int64(i))).Run(flow)
		if err != nil {
			b.Fatal(err)
		}
		drift = mapTimeDrift(res)
	}
	b.ReportMetric(drift*100, "task-drift-%")
}

// mapTimeDrift compares j2's map-task mean before and after j3 leaves its
// map stage.
func mapTimeDrift(res *simulator.Result) float64 {
	j3 := res.StageOf("j3", workload.Map)
	if j3 == nil {
		return 0
	}
	var early, late time.Duration
	var nEarly, nLate int
	for _, task := range res.Tasks {
		if task.Job != "j2" || task.Stage != workload.Map {
			continue
		}
		if task.Start < j3.End {
			early += task.Duration()
			nEarly++
		} else {
			late += task.Duration()
			nLate++
		}
	}
	if nEarly == 0 || nLate == 0 {
		return 0
	}
	e := early.Seconds() / float64(nEarly)
	l := late.Seconds() / float64(nLate)
	return (e - l) / e
}

// BenchmarkFigure4BOEExample measures the task-level BOE model itself on
// the paper's worked example shape: it must be microseconds, not
// milliseconds, to be usable inside optimizers.
func BenchmarkFigure4BOEExample(b *testing.B) {
	model := boe.New(cluster.SingleNode(cluster.ExampleNode()))
	p := workload.JobProfile{
		Name:       "fig4",
		InputBytes: 10000 * units.MB, SplitBytes: 2000 * units.MB,
		MapSelectivity: 0, MapCPUCost: 1, Replicas: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est := model.TaskTime(p, workload.Map, 5)
		if est.Duration <= 0 {
			b.Fatal("no estimate")
		}
	}
}

// BenchmarkTable1Workloads regenerates the Table I workload overview.
func BenchmarkTable1Workloads(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure6Sweep regenerates the Figure 6 degree-of-parallelism
// sweep and reports the paper's headline numbers: the BOE model's average
// accuracy and its improvement factor over the Starfish/MRTuner-style
// baseline at 12 tasks per node (paper: 4.1x–10.6x).
func BenchmarkFigure6Sweep(b *testing.B) {
	cfg := benchConfig()
	var accBOE, accBase, factor float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure6(cfg, experiments.Figure6Options{})
		if err != nil {
			b.Fatal(err)
		}
		var boeAccs, baseAccs, factors []float64
		for _, s := range series {
			boeAccs = append(boeAccs, s.AvgAccuracyBOE())
			baseAccs = append(baseAccs, s.AvgAccuracyBaseline())
			if f := s.ImprovementAt(12); f > 0 && f < 1e6 {
				factors = append(factors, f)
			}
		}
		accBOE, accBase, factor = metrics.Mean(boeAccs), metrics.Mean(baseAccs), metrics.Mean(factors)
	}
	b.ReportMetric(accBOE*100, "BOE-accuracy-%")
	b.ReportMetric(accBase*100, "baseline-accuracy-%")
	b.ReportMetric(factor, "improvement-x")
}

// BenchmarkTable2ParallelJobs regenerates the Table II task-level
// accuracy for the two-job DAGs and reports the first-state average
// (paper: 99.7 % / 99.9 %).
func BenchmarkTable2ParallelJobs(b *testing.B) {
	cfg := benchConfig()
	var s1 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var accs []float64
		for _, r := range rows {
			if c := r.Cell(1); c != nil {
				accs = append(accs, c.Accuracy())
			}
		}
		s1 = metrics.Mean(accs)
	}
	b.ReportMetric(s1*100, "state1-accuracy-%")
}

// BenchmarkTable3Workflows regenerates the full 51-workflow Table III
// (simulate → profile → estimate under all three skew modes) and reports
// each mode's average accuracy (paper: 95.00 / 93.50 / 96.38 %).
func BenchmarkTable3Workflows(b *testing.B) {
	cfg := benchConfig()
	var sum *experiments.Table3Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.AvgAccuracy[statemodel.MeanMode]*100, "mean-accuracy-%")
	b.ReportMetric(sum.AvgAccuracy[statemodel.MedianMode]*100, "median-accuracy-%")
	b.ReportMetric(sum.AvgAccuracy[statemodel.NormalMode]*100, "normal-accuracy-%")
	b.ReportMetric(sum.MinAccuracy[statemodel.NormalMode]*100, "normal-min-accuracy-%")
}

// BenchmarkEstimatorOverhead measures the cost of one state-based
// estimation of the deepest workflow (WC+Q21: 10 jobs, ~20 states). The
// paper requires well under a second; this is the §V-C "Execution time"
// experiment.
func BenchmarkEstimatorOverhead(b *testing.B) {
	cfg := experiments.Default() // full scale: overhead must not depend on it
	flow, err := experiments.BuildNamed("wc+q21", cfg)
	if err != nil {
		b.Fatal(err)
	}
	timer := &statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead}
	est := statemodel.New(cfg.Spec, timer, statemodel.Options{Mode: statemodel.NormalMode})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(flow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulator throughput on the WC+TS
// hybrid (≈ 350 tasks at bench scale): the substrate every experiment
// rests on.
func BenchmarkSimulator(b *testing.B) {
	cfg := benchConfig()
	flow, err := experiments.BuildNamed("wc+ts", cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simulator.New(cfg.Spec, cfg.SimOptions(int64(i))).Run(flow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllocator compares the progressive-filling max-min
// allocation against the naive equal-split μ(Δ)=1/Δ rule (DESIGN.md §5):
// it reports each variant's end-to-end accuracy on WC+TS.
func BenchmarkAblationAllocator(b *testing.B) {
	cfg := benchConfig()
	flow, err := experiments.BuildNamed("wc+ts", cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := simulator.New(cfg.Spec, cfg.SimOptions(0)).Run(flow)
	if err != nil {
		b.Fatal(err)
	}
	var accFair, accNaive float64
	for i := 0; i < b.N; i++ {
		for _, equalSplit := range []bool{false, true} {
			model := &boe.Model{Spec: cfg.Spec, EqualSplit: equalSplit}
			timer := &statemodel.BOETimer{Model: model, TaskStartOverhead: cfg.TaskStartOverhead}
			plan, err := statemodel.New(cfg.Spec, timer,
				statemodel.Options{Mode: statemodel.MeanMode}).Estimate(flow)
			if err != nil {
				b.Fatal(err)
			}
			acc := metrics.Accuracy(plan.Makespan, res.Makespan)
			if equalSplit {
				accNaive = acc
			} else {
				accFair = acc
			}
		}
	}
	b.ReportMetric(accFair*100, "maxmin-accuracy-%")
	b.ReportMetric(accNaive*100, "equalsplit-accuracy-%")
}

// BenchmarkAblationWaves compares the fluid stage-duration rule against
// discrete ⌈N/Δ⌉ waves (DESIGN.md §5) on a single Word Count.
func BenchmarkAblationWaves(b *testing.B) {
	cfg := benchConfig()
	flow, err := experiments.BuildNamed("wc", cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := simulator.New(cfg.Spec, cfg.SimOptions(0)).Run(flow)
	if err != nil {
		b.Fatal(err)
	}
	timer := &statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead}
	var accFluid, accWaves float64
	for i := 0; i < b.N; i++ {
		for _, discrete := range []bool{false, true} {
			plan, err := statemodel.New(cfg.Spec, timer, statemodel.Options{
				Mode: statemodel.MeanMode, DiscreteWaves: discrete,
			}).Estimate(flow)
			if err != nil {
				b.Fatal(err)
			}
			acc := metrics.Accuracy(plan.Makespan, res.Makespan)
			if discrete {
				accWaves = acc
			} else {
				accFluid = acc
			}
		}
	}
	b.ReportMetric(accFluid*100, "fluid-accuracy-%")
	b.ReportMetric(accWaves*100, "waves-accuracy-%")
}

// BenchmarkAblationSkewModes compares the three skew rules on the
// highest-skew workflow (TS+PageRank): the normal-mode straggler
// correction is the paper's "skew-aware" claim.
func BenchmarkAblationSkewModes(b *testing.B) {
	cfg := benchConfig()
	flow, err := experiments.BuildNamed("ts+pagerank", cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := simulator.New(cfg.Spec, cfg.SimOptions(0)).Run(flow)
	if err != nil {
		b.Fatal(err)
	}
	timer := &statemodel.ProfileTimer{Profiles: profile.Capture(res)}
	accs := map[statemodel.SkewMode]float64{}
	for i := 0; i < b.N; i++ {
		for _, mode := range statemodel.Modes() {
			plan, err := statemodel.New(cfg.Spec, timer,
				statemodel.Options{Mode: mode}).Estimate(flow)
			if err != nil {
				b.Fatal(err)
			}
			accs[mode] = metrics.Accuracy(plan.Makespan, res.Makespan)
		}
	}
	b.ReportMetric(accs[statemodel.MeanMode]*100, "mean-accuracy-%")
	b.ReportMetric(accs[statemodel.MedianMode]*100, "median-accuracy-%")
	b.ReportMetric(accs[statemodel.NormalMode]*100, "normal-accuracy-%")
}

// BenchmarkAblationErnest measures the Ernest-style single-job regression
// against the BOE model on the Figure 6 setting it was built for: predict
// WC map task time at Δ/node = 12 after training on 1, 2 and 4.
func BenchmarkAblationErnest(b *testing.B) {
	cfg := experiments.Default() // full scale: Δ=132 must not exceed the task count
	wc := workload.WordCount(cfg.MicroInput)
	actualAt := func(perNode int) time.Duration {
		opts := simulator.Options{Seed: 1, SlotLimit: perNode * cfg.Spec.Nodes}
		res, err := simulator.New(cfg.Spec, opts).Run(boedag.Single(wc))
		if err != nil {
			b.Fatal(err)
		}
		return res.StageOf("WC", workload.Map).MedianTaskTime()
	}
	var pts []baseline.TrainingPoint
	for _, d := range []int{1, 2, 4} {
		pts = append(pts, baseline.TrainingPoint{Parallelism: d * cfg.Spec.Nodes, TaskTime: actualAt(d)})
	}
	actual12 := actualAt(12)
	model := boe.New(cfg.Spec)

	var accErnest, accBOE float64
	for i := 0; i < b.N; i++ {
		var e baseline.Ernest
		if err := e.Fit(pts); err != nil {
			b.Fatal(err)
		}
		pred, err := e.Predict(12 * cfg.Spec.Nodes)
		if err != nil {
			b.Fatal(err)
		}
		accErnest = metrics.Accuracy(pred, actual12)
		est := model.TaskTime(wc, workload.Map, 12*cfg.Spec.Nodes)
		accBOE = metrics.Accuracy(est.Duration+cfg.TaskStartOverhead, actual12)
	}
	b.ReportMetric(accErnest*100, "ernest-accuracy-%")
	b.ReportMetric(accBOE*100, "BOE-accuracy-%")
}

// BenchmarkFairshareAllocate measures the progressive-filling allocator —
// the simulator's innermost loop — at a realistic population (132 tasks
// in 4 groups).
func BenchmarkFairshareAllocate(b *testing.B) {
	spec := cluster.PaperCluster()
	var caps [cluster.NumResources]units.Rate
	for _, r := range cluster.Resources() {
		caps[r] = spec.TotalCapacity(r)
	}
	var consumers []fairshare.Consumer
	for g := 0; g < 4; g++ {
		c := fairshare.Consumer{Count: 33, MaxRate: 0.4, CapResource: cluster.CPU}
		c.Demand[cluster.CPU] = float64(100+g*50) * float64(units.MB)
		c.Demand[cluster.DiskRead] = float64(128) * float64(units.MB)
		c.Demand[cluster.Network] = float64(g*40) * float64(units.MB)
		consumers = append(consumers, c)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := fairshare.Allocate(caps, consumers)
		if res.Rate[0] <= 0 {
			b.Fatal("starved")
		}
	}
}

// BenchmarkDRF measures the scheduler model at the evaluation's job
// counts.
func BenchmarkDRF(b *testing.B) {
	pool := sched.PoolOf(cluster.PaperCluster())
	reqs := []sched.Request{
		{JobID: "a", MemoryMB: 1024, VCores: 1, Pending: 400},
		{JobID: "b", MemoryMB: 2048, VCores: 1, Pending: 100},
		{JobID: "c", MemoryMB: 1024, VCores: 2, Pending: 50},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := sched.DRF(pool, reqs, nil); got.Total() == 0 {
			b.Fatal("nothing granted")
		}
	}
}

// BenchmarkExtensionSkewSweep runs the skew-sensitivity study (the
// paper's named follow-up work): as task-size CV grows, the mean/median
// rules degrade while the normal and empirical corrections hold.
func BenchmarkExtensionSkewSweep(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.SkewRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.SkewSweep(cfg, []float64{0, 0.2, 0.4})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Accuracy[statemodel.MeanMode]*100, "mean@cv0.4-%")
	b.ReportMetric(last.Accuracy[statemodel.NormalMode]*100, "normal@cv0.4-%")
	b.ReportMetric(last.Accuracy[statemodel.EmpiricalMode]*100, "empirical@cv0.4-%")
}

// BenchmarkExtensionSchedulerPolicies runs the scheduler-policy study:
// how much the discipline changes the makespan and how well the models
// track each.
func BenchmarkExtensionSchedulerPolicies(b *testing.B) {
	cfg := benchConfig()
	var rows []experiments.PolicyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PolicyStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Accuracy*100, r.Policy.String()+"-accuracy-%")
	}
}

// BenchmarkExtensionProgress measures the online progress indicator: the
// mean accuracy of the predicted remaining time across the run.
func BenchmarkExtensionProgress(b *testing.B) {
	cfg := benchConfig()
	flow, err := experiments.BuildNamed("wc+ts", cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := simulator.New(cfg.Spec, cfg.SimOptions(0)).Run(flow)
	if err != nil {
		b.Fatal(err)
	}
	timer := &statemodel.ProfileTimer{
		Profiles: profile.Capture(res),
		Fallback: &statemodel.BOETimer{Model: boe.New(cfg.Spec), TaskStartOverhead: cfg.TaskStartOverhead},
	}
	in := &progress.Indicator{
		Estimator: statemodel.New(cfg.Spec, timer, statemodel.Options{Mode: statemodel.NormalMode}),
		Flow:      flow,
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		points, err := progress.Curve(in, res, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		var accs []float64
		for _, p := range points {
			accs = append(accs, p.Accuracy())
		}
		mean = metrics.Mean(accs)
	}
	b.ReportMetric(mean*100, "remaining-accuracy-%")
}

// BenchmarkExtensionTuner measures the auto-tuner end to end on a
// misconfigured TeraSort and reports the improvement it finds.
func BenchmarkExtensionTuner(b *testing.B) {
	cfg := benchConfig()
	bad := workload.TeraSort(cfg.MicroInput)
	bad.ReduceTasks = 4
	bad.SortBufferBytes = 10 * units.MB
	flow := boedag.Single(bad)
	var improvement float64
	for i := 0; i < b.N; i++ {
		rec, err := tuning.New(cfg.Spec, tuning.Options{}).Tune(flow)
		if err != nil {
			b.Fatal(err)
		}
		improvement = rec.Improvement()
	}
	b.ReportMetric(improvement*100, "improvement-%")
}

// BenchmarkExtensionSparkTranslate measures the Spark lineage adapter:
// translate + simulate a 3-iteration PageRank lineage.
func BenchmarkExtensionSparkTranslate(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		flow, err := spark.Translate(spark.PageRankLineage(cfg.MicroInput/10, 3))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := simulator.New(cfg.Spec, cfg.SimOptions(int64(i))).Run(flow); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionCalibration measures the full probe suite against the
// simulated PaperCluster and reports the recovered core throughput (spec:
// 50 MB/s).
func BenchmarkExtensionCalibration(b *testing.B) {
	spec := cluster.PaperCluster()
	var est *calibrate.Estimate
	for i := 0; i < b.N; i++ {
		var err error
		est, err = calibrate.Cluster(calibrate.SimulatorRunner(spec), spec.TotalSlots(), spec.Nodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(est.CoreThroughput)/float64(units.MBps), "core-MBps")
}
