// Package serve is the concurrent prediction service: a long-running
// HTTP/JSON daemon that answers "how long will this DAG take on this
// cluster?" with the state-based BOE estimator — the paper's cheap
// analytic model exposed as an online primitive for schedulers and
// what-if tuning, in the spirit of Starfish's what-if engine.
//
// Endpoints:
//
//	POST /v1/estimate   one scenario → makespan, per-state breakdown,
//	                    per-job stage times
//	POST /v1/explain    one scenario → explained estimate: critical
//	                    path, bottleneck attribution, θ-sensitivity
//	POST /v1/batch      many scenarios fanned out through the evalpool
//	                    worker pool, results in input order
//	POST /v1/schedule   an arrival stream of jobs → per-job fates and
//	                    aggregate policy metrics under FIFO/DRF/Fair/
//	                    SPJF or hierarchical queues with preemptive
//	                    reclaim and deadline-aware admission
//	GET  /v1/workflows  the workflow registry names
//	GET  /v1/cluster    the serving cluster specification
//	GET  /healthz       liveness (200 while the process runs)
//	GET  /readyz        readiness (503 once draining)
//	GET  /metrics       the obs metrics registry (JSON; ?format=text
//	                    serves Prometheus exposition)
//
// Identical scenarios coalesce: responses are cached by the canonical
// evalpool signature of (cluster, options, workflow), and concurrent
// requests for the same key share one single-flight estimator run. The
// server protects itself with a bounded admission queue (503 +
// Retry-After on overload), per-request timeouts, a body-size limit, and
// panic-to-500 recovery; SIGTERM handling in cmd/boedagd drains
// gracefully through Shutdown.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/evalpool"
	"boedag/internal/obs"
)

// Config tunes a Server. The zero value serves the paper cluster with
// sensible production defaults.
type Config struct {
	// Spec is the serving cluster (default: the paper's eleven nodes).
	// Per-request "cluster" bodies override it scenario by scenario.
	Spec cluster.Spec
	// Workers bounds the evalpool fan-out of one /v1/batch request
	// (default GOMAXPROCS). Results are input-ordered at any value.
	Workers int
	// MaxConcurrent bounds how many /v1/* requests execute at once
	// (default 64).
	MaxConcurrent int
	// QueueDepth bounds how many admitted requests may wait for an
	// execution slot before the server answers 503 (default 128).
	QueueDepth int
	// MaxBatch bounds the scenarios of one batch request (default 256).
	MaxBatch int
	// RequestTimeout is the per-request deadline ceiling (default 30s);
	// a scenario's timeout_ms can only tighten it.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain on shutdown (default 10s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint on 503 responses (default 1s).
	RetryAfter time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's own handler (boedagd -debug-pprof) for live CPU, heap and
	// goroutine profiles of the serving process. Off by default: the
	// profile endpoints bypass admission control.
	EnablePprof bool
	// CacheDir enables the disk-backed warm cache: on startup the server
	// restores the response cache from <CacheDir>/estimate_cache.snap (a
	// missing snapshot is a clean cold start, a corrupt one is counted in
	// cache_restore_failed and ignored), and Serve writes a fresh snapshot
	// after the graceful drain — so a restarted daemon answers repeat
	// scenarios as cache hits instead of re-running the estimator.
	CacheDir string
	// CacheMaxEntries bounds the response cache; beyond it the least
	// recently used entries are evicted (estimate_cache_evictions counts
	// them). 0 means the 65536 default; negative means unbounded.
	CacheMaxEntries int
	// Observe wires the observability layer: Tracer receives one
	// EvRequest event per served request (point a TraceStream here for
	// structured request logging); Metrics receives the server's
	// counters, gauges, and histograms and backs GET /metrics. A nil
	// registry is allocated internally so /metrics always works.
	Observe obs.Options
}

func (c Config) withDefaults() Config {
	if c.Spec.Nodes == 0 {
		c.Spec = cluster.PaperCluster()
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 64
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 128
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheMaxEntries == 0 {
		c.CacheMaxEntries = 65536
	}
	if c.Observe.Metrics == nil {
		c.Observe.Metrics = obs.NewRegistry()
	}
	return c
}

// Server is the prediction daemon. Create one with New; it serves via
// Handler (for tests and embedding) or Serve/ListenAndServe (which add
// graceful drain).
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	reg   *obs.Registry
	cache *evalpool.Cache[[]byte]
	// plans memoizes estimator plans across /v1/explain requests: the
	// base plan and every θ-perturbed re-run coalesce through it, so
	// repeated explanations re-run nothing.
	plans *evalpool.PlanCache
	start time.Time

	// Admission: slots bounds concurrent execution, queue bounds waiters.
	slots chan struct{}
	queue chan struct{}

	// Drain state: once draining, /v1/* requests are refused with 503
	// while requests already past admission run to completion.
	mu       sync.Mutex
	inflight int
	draining bool
	drained  chan struct{}

	// Instruments, resolved once. routeDur holds one latency histogram
	// per endpoint (request_duration_s{route=…}); it is written only
	// during New's route registration and read-only thereafter.
	requests, errors, rejected, queued, panics, computed, coalesced *obs.Counter
	explained, scheduled, streamed                                  *obs.Counter
	restored, restoreFailed                                         *obs.Counter
	reqDur, queueWait                                               *obs.Histogram
	phaseDecode, phaseEstimate, phaseEncode, coalescedWait          *obs.Histogram
	phaseExplain, phaseSchedule                                     *obs.Histogram
	inflightG, queueG                                               *obs.Gauge
	routeDur                                                        map[string]*obs.Histogram

	// reqSeq numbers served requests; the ordinal ties a request's
	// EvRequest span to its EvRequestPhase children in exported traces.
	reqSeq atomic.Int64

	// testHookEstimate, when set, runs inside every estimator execution —
	// the test seam that makes computations observably slow or faulty
	// without touching the wire contract.
	testHookEstimate func()
}

// New returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	reg := cfg.Observe.Metrics
	capacity := cfg.CacheMaxEntries
	if capacity < 0 { // negative means unbounded, which WithCapacity spells 0
		capacity = 0
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		cache: evalpool.NewCache[[]byte]().WithCapacity(capacity).WithMetrics(reg, "estimate_cache"),
		plans: evalpool.NewPlanCache().WithMetrics(reg),
		start: time.Now(),
		slots: make(chan struct{}, cfg.MaxConcurrent),
		queue: make(chan struct{}, cfg.QueueDepth),

		requests:      reg.Counter("http_requests"),
		errors:        reg.Counter("http_errors"),
		rejected:      reg.Counter("http_rejected"),
		queued:        reg.Counter("http_queued"),
		panics:        reg.Counter("http_panics"),
		computed:      reg.Counter("estimates_computed"),
		coalesced:     reg.Counter("estimates_coalesced"),
		explained:     reg.Counter("explains_computed"),
		scheduled:     reg.Counter("schedules_computed"),
		streamed:      reg.Counter("estimates_streamed"),
		restored:      reg.Counter("cache_restored_entries"),
		restoreFailed: reg.Counter("cache_restore_failed"),
		reqDur:        reg.Histogram("request_duration_s"),
		queueWait:     reg.Histogram("queue_wait_s"),
		phaseDecode:   reg.Histogram("phase_decode_s"),
		phaseEstimate: reg.Histogram("phase_estimate_s"),
		phaseEncode:   reg.Histogram("phase_encode_s"),
		phaseExplain:  reg.Histogram("phase_explain_s"),
		phaseSchedule: reg.Histogram("phase_schedule_s"),
		coalescedWait: reg.Histogram("coalesced_wait_s"),
		inflightG:     reg.Gauge("requests_inflight"),
		queueG:        reg.Gauge("requests_queued"),
		routeDur:      make(map[string]*obs.Histogram),
	}
	obs.SetMetricHelp("http_requests", "HTTP requests served, all routes.")
	obs.SetMetricHelp("request_duration_s", "End-to-end request latency in seconds.")
	obs.SetMetricHelp("estimates_computed", "Estimator runs executed (cache misses).")
	obs.SetMetricHelp("estimates_coalesced", "Requests that shared another request's run or its cached bytes.")
	obs.SetMetricHelp("explains_computed", "Explanation runs executed (cache misses).")
	obs.SetMetricHelp("schedules_computed", "Arrival-stream schedule replays executed.")
	obs.SetMetricHelp("estimates_streamed", "Estimates served over SSE (stream=1).")
	obs.SetMetricHelp("estimate_cache_evictions", "Response-cache entries evicted by the LRU size bound.")
	obs.SetMetricHelp("cache_restored_entries", "Response-cache entries restored from the disk snapshot at boot.")
	obs.SetMetricHelp("cache_restore_failed", "Snapshot restore attempts rejected (corrupt or unreadable file).")
	if err := s.restoreCache(); err != nil {
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.route("POST", "/v1/estimate", true, s.handleEstimate)
	s.route("POST", "/v1/explain", true, s.handleExplain)
	s.route("POST", "/v1/batch", true, s.handleBatch)
	s.route("POST", "/v1/schedule", true, s.handleSchedule)
	s.route("GET", "/v1/workflows", false, s.handleWorkflows)
	s.route("GET", "/v1/cluster", false, s.handleCluster)
	s.route("GET", "/version", false, s.handleVersion)
	s.route("GET", "/healthz", false, s.handleHealthz)
	s.route("GET", "/readyz", false, s.handleReadyz)
	s.route("GET", "/metrics", false, s.handleMetrics)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the server's HTTP handler, middleware included.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry (the /metrics backing store).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// CacheStats reports how many estimate lookups hit respectively missed
// the coalescing cache.
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// route registers one endpoint under the middleware chain: method
// dispatch (JSON 405 with Allow set), panic recovery, request logging
// and metrics, then — for the heavy /v1 endpoints — admission control,
// body limiting, and the per-request timeout.
func (s *Server) route(method, path string, admitted bool, h http.HandlerFunc) {
	s.routeDur[path] = s.reg.Histogram("request_duration_s{route=" + path + "}")
	wrapped := h
	if admitted {
		wrapped = s.withTimeout(s.withAdmission(wrapped))
	}
	wrapped = s.withObserved(path, s.withRecovery(wrapped))
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, &APIError{Status: http.StatusMethodNotAllowed,
				Code: CodeMethodNotAllowed, Message: method + " only"})
			return
		}
		if admitted {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		wrapped(w, r)
	})
}

// statusWriter records the response status for logging and recovery.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the middleware chain (embedding the interface would hide the method).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqIDKey carries the server-assigned request ordinal through a
// request's context so phase spans can name their parent.
type reqIDKey struct{}

// requestID returns the ordinal withObserved assigned, or 0 outside a
// served request (tests driving handlers directly).
func requestID(ctx context.Context) int {
	id, _ := ctx.Value(reqIDKey{}).(int)
	return id
}

// phase records one request phase — decode, coalesce-wait, estimate,
// encode — as a histogram observation and, when a tracer listens, an
// EvRequestPhase span nested under the request's EvRequest span via the
// shared request ordinal.
func (s *Server) phase(ctx context.Context, name string, t0 time.Time, h *obs.Histogram) {
	d := time.Since(t0)
	h.Observe(d.Seconds())
	if s.cfg.Observe.TracerOn() {
		s.cfg.Observe.Tracer.Emit(obs.Event{
			Type:   obs.EvRequestPhase,
			Time:   t0.Sub(s.start).Seconds(),
			Dur:    d.Seconds(),
			Detail: name,
			Seq:    requestID(ctx),
			Task:   -1,
		})
	}
}

// withObserved counts, times, and (when a tracer listens) logs every
// request as one EvRequest event. It also assigns the request its
// ordinal and resolves the per-endpoint latency histogram
// (request_duration_s{route=…}) alongside the aggregate one.
func (s *Server) withObserved(path string, next http.HandlerFunc) http.HandlerFunc {
	routeDur := s.routeDur[path]
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		id := int(s.reqSeq.Add(1))
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))
		t0 := time.Now()
		next(sw, r)
		dur := time.Since(t0)
		s.requests.Inc()
		if sw.status >= 400 {
			s.errors.Inc()
		}
		s.reqDur.Observe(dur.Seconds())
		routeDur.Observe(dur.Seconds())
		if s.cfg.Observe.TracerOn() {
			s.cfg.Observe.Tracer.Emit(obs.Event{
				Type:   obs.EvRequest,
				Time:   t0.Sub(s.start).Seconds(),
				Dur:    dur.Seconds(),
				Detail: r.Method + " " + r.URL.Path,
				Seq:    id,
				Task:   -1,
				Value:  float64(sw.status),
			})
		}
	}
}

// withRecovery converts a handler panic into a JSON 500 instead of
// killing the connection (and, under http.Server, only the connection —
// the daemon itself must outlive any one bad request).
func (s *Server) withRecovery(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				if sw, ok := w.(*statusWriter); !ok || sw.status == 0 {
					writeError(w, &APIError{Status: http.StatusInternalServerError,
						Code: CodeInternal, Message: fmt.Sprintf("panic: %v", p)})
				}
			}
		}()
		next(w, r)
	}
}

// withAdmission implements the bounded admission queue. A request either
// takes an execution slot immediately, waits in the bounded queue for
// one, or — queue full — is refused with 503 and a Retry-After hint.
// Draining servers refuse before queuing so in-flight work can finish.
func (s *Server) withAdmission(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.enter() {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, &APIError{Status: http.StatusServiceUnavailable,
				Code: CodeDraining, Message: "server is draining"})
			return
		}
		defer s.leave()
		select {
		case s.slots <- struct{}{}:
		default:
			select {
			case s.queue <- struct{}{}:
			default:
				s.rejected.Inc()
				w.Header().Set("Retry-After", s.retryAfterSeconds())
				writeError(w, &APIError{Status: http.StatusServiceUnavailable,
					Code: CodeOverloaded, Message: "admission queue full"})
				return
			}
			s.queued.Inc()
			s.queueG.Set(float64(len(s.queue)))
			t0 := time.Now()
			select {
			case s.slots <- struct{}{}:
				<-s.queue
				s.queueWait.Observe(time.Since(t0).Seconds())
			case <-r.Context().Done():
				<-s.queue
				writeError(w, timeoutError(r.Context()))
				return
			}
			s.queueG.Set(float64(len(s.queue)))
		}
		defer func() { <-s.slots }()
		s.inflightG.Set(float64(len(s.slots)))
		next(w, r)
	}
}

// withTimeout applies the server-wide request deadline ceiling.
func (s *Server) withTimeout(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// enter registers one admitted request; false once draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// leave retires one admitted request, completing the drain when it was
// the last.
func (s *Server) leave() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if s.draining && s.inflight == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
}

// Shutdown starts the graceful drain: new /v1 requests are refused with
// 503 immediately, requests already admitted run to completion, and
// Shutdown returns once the last finishes — or with an error when ctx
// expires first. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
	}
	done := s.drained
	if done == nil {
		if s.inflight == 0 {
			s.mu.Unlock()
			return nil
		}
		done = make(chan struct{})
		s.drained = done
	}
	s.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("serve: drain deadline exceeded with %d requests in flight", n)
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains:
// readiness flips, new /v1 requests get 503 while in-flight ones finish
// (bounded by DrainTimeout), finally the listener closes and — when a
// CacheDir is configured — the response cache snapshots to disk. The
// returned error is the drain outcome (nil on a clean drain).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return s.ServeWith(ctx, ln, s.mux)
}

// ServeWith is Serve with a caller-supplied handler in front of the
// server — the fleet tier wraps the local mux with shard routing while
// keeping this server's graceful drain and snapshot-on-shutdown.
func (s *Server) ServeWith(ctx context.Context, ln net.Listener, handler http.Handler) error {
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.Shutdown(dctx)
	// The drain already ran (or timed out): close the listener and any
	// remaining connections promptly.
	hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
	defer hcancel()
	if err := srv.Shutdown(hctx); err != nil {
		srv.Close()
	}
	<-errCh // http.ErrServerClosed
	if err := s.SaveCacheSnapshot(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return s.Serve(ctx, ln)
}

// writeJSON writes a 200 response body produced by marshalBody.
func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// writeError writes the typed error envelope.
func writeError(w http.ResponseWriter, e *APIError) {
	body, err := marshalBody(errorEnvelope{Error: e})
	if err != nil { // cannot happen: APIError marshals cleanly
		http.Error(w, e.Message, e.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	w.Write(body)
}

// timeoutError maps a done context to the wire error.
func timeoutError(ctx context.Context) *APIError {
	msg := "request deadline exceeded"
	if ctx.Err() == context.Canceled {
		msg = "request cancelled"
	}
	return &APIError{Status: http.StatusGatewayTimeout, Code: CodeTimeout, Message: msg}
}
