package schedtest

import (
	"fmt"
	"sort"

	"boedag/internal/sched"
)

// The Check helpers assert the allocator invariants every policy must
// satisfy. They are deliberately independent re-derivations — they
// recompute usage from the specs and the result, never peeking at the
// allocator's internals — so a bug in the allocator cannot hide in a
// shared helper. Both the property suite and FuzzHierarchyAllocate call
// them; a future policy inherits the whole contract by being run
// through the same checks.

// CheckGrants asserts the basics every allocation must satisfy:
// non-negative grants, grants ≤ pending, held+grant ≤ cap, and total
// usage (held + granted) within the pool on every axis.
func CheckGrants(pool sched.Pool, reqs []sched.Request, held, grant sched.Allocation) error {
	byID := make(map[string]sched.Request, len(reqs))
	for _, r := range reqs {
		byID[r.JobID] = r
	}
	mem, cpu, slots := 0, 0, 0
	for id, g := range grant {
		r, ok := byID[id]
		if !ok {
			return fmt.Errorf("grant for unknown job %q", id)
		}
		if g < 0 {
			return fmt.Errorf("job %s: negative grant %d", id, g)
		}
		if g > r.Pending {
			return fmt.Errorf("job %s: grant %d exceeds pending %d", id, g, r.Pending)
		}
		if r.Cap > 0 && g+held[id] > r.Cap {
			return fmt.Errorf("job %s: held %d + grant %d exceeds cap %d", id, held[id], g, r.Cap)
		}
	}
	for _, r := range reqs {
		n := grant[r.JobID] + held[r.JobID]
		mem += n * r.MemoryMB
		cpu += n * r.VCores
		slots += n
	}
	if pool.MemoryMB > 0 && mem > pool.MemoryMB {
		return fmt.Errorf("memory over-committed: %d > %d", mem, pool.MemoryMB)
	}
	if pool.VCores > 0 && cpu > pool.VCores {
		return fmt.Errorf("vcores over-committed: %d > %d", cpu, pool.VCores)
	}
	if pool.Slots > 0 && slots > pool.Slots {
		return fmt.Errorf("slots over-committed: %d > %d", slots, pool.Slots)
	}
	return nil
}

// CheckWorkConservation asserts no capacity sits idle while a flat
// (non-gang) request still wants a container that would fit. Gang jobs
// are exempt: an all-or-nothing job may legitimately hold zero while
// capacity is free.
func CheckWorkConservation(pool sched.Pool, reqs []sched.Request, held, grant sched.Allocation) error {
	mem, cpu, slots := 0, 0, 0
	for _, r := range reqs {
		n := grant[r.JobID] + held[r.JobID]
		mem += n * r.MemoryMB
		cpu += n * r.VCores
		slots += n
	}
	for _, r := range reqs {
		if r.Gang > 0 {
			continue
		}
		g := grant[r.JobID]
		if g >= r.Pending {
			continue
		}
		if r.Cap > 0 && g+held[r.JobID] >= r.Cap {
			continue
		}
		fits := true
		if pool.MemoryMB > 0 && mem+r.MemoryMB > pool.MemoryMB {
			fits = false
		}
		if pool.VCores > 0 && cpu+r.VCores > pool.VCores {
			fits = false
		}
		if pool.Slots > 0 && slots+1 > pool.Slots {
			fits = false
		}
		if fits {
			return fmt.Errorf("job %s wants a container that fits (grant %d < pending %d) yet capacity idles",
				r.JobID, g, r.Pending)
		}
	}
	return nil
}

// chain resolves a queue's parent chain (leaf first) from the raw specs.
func chain(specs []sched.QueueSpec, queue string) []sched.QueueSpec {
	byName := make(map[string]sched.QueueSpec, len(specs))
	for _, sp := range specs {
		byName[sp.Name] = sp
	}
	var out []sched.QueueSpec
	for name := queue; name != ""; {
		sp, ok := byName[name]
		if !ok {
			break // unknown queue → root
		}
		out = append(out, sp)
		name = sp.Parent
	}
	return out
}

// CheckHierarchy asserts the hierarchical contract over a full result:
// the CheckGrants basics net of evictions, evictions only of held
// containers (and none at all without a hierarchy), chain hard limits
// respected by the final usage, and gang all-or-nothing.
func CheckHierarchy(s Scenario, res sched.HierResult) error {
	// Net holdings: held − evicted (evictions free capacity).
	net := sched.Allocation{}
	for id, h := range s.Held {
		net[id] = h
	}
	for id, ev := range res.Evict {
		if ev < 0 {
			return fmt.Errorf("job %s: negative eviction %d", id, ev)
		}
		if ev > s.Held[id] {
			return fmt.Errorf("job %s: evicted %d > held %d", id, ev, s.Held[id])
		}
		if s.Hierarchy == nil {
			return fmt.Errorf("flat scheduling evicted job %s", id)
		}
		net[id] -= ev
	}
	if err := CheckGrants(s.Pool, s.Requests, net, res.Grants); err != nil {
		return err
	}
	// Chain hard limits: limits gate new grants, not containers already
	// held before the call (an operator can lower a limit under running
	// work; the allocator must not grant past it, but reclaiming it is
	// the quota machinery's job, not the limit's). So final usage must
	// stay within max(limit, held usage) on every axis.
	usage := map[string][3]int{}
	heldUsage := map[string][3]int{}
	for _, r := range s.Requests {
		n := res.Grants[r.JobID] + net[r.JobID]
		h := net[r.JobID]
		for _, sp := range chain(s.Specs, r.Queue) {
			u := usage[sp.Name]
			usage[sp.Name] = [3]int{u[0] + n*r.MemoryMB, u[1] + n*r.VCores, u[2] + n}
			hu := heldUsage[sp.Name]
			heldUsage[sp.Name] = [3]int{hu[0] + h*r.MemoryMB, hu[1] + h*r.VCores, hu[2] + h}
		}
	}
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	for _, sp := range s.Specs {
		u, hu := usage[sp.Name], heldUsage[sp.Name]
		if sp.Limit.MemoryMB > 0 && u[0] > max(sp.Limit.MemoryMB, hu[0]) {
			return fmt.Errorf("queue %s: memory %d over limit %d", sp.Name, u[0], sp.Limit.MemoryMB)
		}
		if sp.Limit.VCores > 0 && u[1] > max(sp.Limit.VCores, hu[1]) {
			return fmt.Errorf("queue %s: vcores %d over limit %d", sp.Name, u[1], sp.Limit.VCores)
		}
		if sp.Limit.Slots > 0 && u[2] > max(sp.Limit.Slots, hu[2]) {
			return fmt.Errorf("queue %s: slots %d over limit %d", sp.Name, u[2], sp.Limit.Slots)
		}
	}
	// Gang all-or-nothing over newly granted jobs (held-only jobs predate
	// the gang decision and are the simulator's to reconcile).
	for _, r := range s.Requests {
		if r.Gang > 0 && res.Grants[r.JobID] > 0 && res.Grants[r.JobID]+net[r.JobID] < r.Gang {
			return fmt.Errorf("job %s: partial gang %d < %d", r.JobID, res.Grants[r.JobID]+net[r.JobID], r.Gang)
		}
	}
	return nil
}

// CheckQuotaSafeEviction asserts preemption never cut into guaranteed
// work. Work is guaranteed only when *every* queue on its chain declares
// a quota and holds headroom (a quota-less queue's demand is over-quota
// by definition, even under a quota'd parent — the allocator's
// quotaHeadroom semantics). So for every evicted job, either some chain
// queue lacks a quota, or restoring one container would push some chain
// queue over its quota. Only meaningful for gang-free scenarios: gang
// zeroing after reclaim can shrink a chain's usage below the quota line
// the eviction was judged against.
func CheckQuotaSafeEviction(s Scenario, res sched.HierResult) error {
	usage := map[string][3]int{}
	for _, r := range s.Requests {
		n := res.Grants[r.JobID] + s.Held[r.JobID] - res.Evict[r.JobID]
		for _, sp := range chain(s.Specs, r.Queue) {
			u := usage[sp.Name]
			usage[sp.Name] = [3]int{u[0] + n*r.MemoryMB, u[1] + n*r.VCores, u[2] + n}
		}
	}
	for _, r := range s.Requests {
		if res.Evict[r.JobID] == 0 {
			continue
		}
		ch := chain(s.Specs, r.Queue)
		if len(ch) == 0 {
			return fmt.Errorf("job %s: root-held container evicted", r.JobID)
		}
		protected := true
		for _, sp := range ch {
			q := sp.Quota
			if q.MemoryMB == 0 && q.VCores == 0 && q.Slots == 0 {
				protected = false // quota-less queue: over-quota by definition
				break
			}
			u := usage[sp.Name]
			if q.MemoryMB > 0 && u[0]+r.MemoryMB > q.MemoryMB ||
				q.VCores > 0 && u[1]+r.VCores > q.VCores ||
				q.Slots > 0 && u[2]+1 > q.Slots {
				protected = false // restoring would breach this quota
				break
			}
		}
		if protected {
			return fmt.Errorf("job %s: eviction cut into quota (restoring one container stays in quota)", r.JobID)
		}
	}
	return nil
}

// Permute returns a deterministic permutation of the requests drawn from
// the generator — for the determinism-across-input-orders property.
func (r *Rand) Permute(reqs []sched.Request) []sched.Request {
	out := append([]sched.Request(nil), reqs...)
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// FormatAllocation renders an allocation deterministically for equality
// messages.
func FormatAllocation(a sched.Allocation) string {
	ids := make([]string, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	s := ""
	for _, id := range ids {
		s += fmt.Sprintf("%s=%d ", id, a[id])
	}
	return s
}
