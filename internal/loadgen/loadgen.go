// Package loadgen is the deterministic load half of boedagbench: it
// drives a prediction server (a live boedagd or an in-process httptest
// front end) with a seeded request mix and measures throughput and
// exact latency percentiles.
//
// Determinism is the design center. The i-th request of a run is a pure
// function of (seed, i, workflows, sizes) — no generator state, no
// dependence on timing or on how many requests earlier workers got
// through — so two runs with the same seed issue the identical request
// sequence even when they complete different prefixes of it. That is
// what makes committed BENCH_*.json ledgers reproducible: the mix is
// replayable from four recorded fields, and only the wall-clock numbers
// vary within tolerance.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boedag/internal/obs"
	"boedag/internal/perfledger"
	"boedag/internal/serve"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the server to drive (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// BaseURLs drives a fleet: request i goes to BaseURLs[i mod n], so
	// the target of every request is as deterministic as its body. When
	// set, BaseURL is optional and used only as the ledger label.
	BaseURLs []string
	// Client is the HTTP client (default: a dedicated client with an
	// idle-connection pool sized to the run's concurrency).
	Client *http.Client
	// Mode is "closed" (Connections workers, next request on completion)
	// or "open" (requests dispatched at RatePerSec regardless of
	// completions). Default "closed"; "open" requires RatePerSec > 0.
	Mode string
	// Connections is the closed-loop concurrency (default 4).
	Connections int
	// RatePerSec is the open-loop target arrival rate.
	RatePerSec float64
	// Warmup requests are issued but not measured (default 0).
	Warmup time.Duration
	// Duration is the measured window (required).
	Duration time.Duration
	// Seed keys the request mix.
	Seed int64
	// Workflows and SizesGB span the mix: request i runs
	// Pick(Seed, i, Workflows, SizesGB). Workflows is required; an empty
	// SizesGB leaves every scenario at the server's default input size.
	Workflows []string
	SizesGB   []float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if len(c.BaseURLs) == 0 && c.BaseURL != "" {
		c.BaseURLs = []string{c.BaseURL}
	}
	switch {
	case len(c.BaseURLs) == 0:
		return c, errors.New("loadgen: no BaseURL")
	case c.Mode != "closed" && c.Mode != "open":
		return c, fmt.Errorf("loadgen: mode %q (closed | open)", c.Mode)
	case c.Mode == "open" && c.RatePerSec <= 0:
		return c, errors.New("loadgen: open loop requires RatePerSec > 0")
	case c.Duration <= 0:
		return c, errors.New("loadgen: no Duration")
	case len(c.Workflows) == 0:
		return c, errors.New("loadgen: no Workflows")
	}
	if c.Connections < 1 {
		c.Connections = 4
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: c.Connections + 4,
		}}
	}
	return c, nil
}

// splitmix64 is the mix hash: cheap, stateless, and identical across
// platforms and Go versions — unlike math/rand, whose stream is not a
// compatibility promise.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Pick returns the i-th request of the seeded mix: which workflow to
// ask about and at what input size (0 when sizes is empty). Pure in all
// arguments.
func Pick(seed, i int64, workflows []string, sizes []float64) (workflow string, sizeGB float64) {
	h := splitmix64(uint64(seed)*0x2545f4914f6cdd1d + splitmix64(uint64(i)))
	workflow = workflows[int(h%uint64(len(workflows)))]
	if len(sizes) > 0 {
		sizeGB = sizes[int((h>>32)%uint64(len(sizes)))]
	}
	return workflow, sizeGB
}

// Body renders the i-th request as a /v1/estimate JSON body, via the
// server's own wire types so the harness can never drift from the
// contract.
func Body(seed, i int64, workflows []string, sizes []float64) (workflow string, body []byte) {
	workflow, sizeGB := Pick(seed, i, workflows, sizes)
	req := serve.EstimateRequest{Workflow: workflow}
	if sizeGB > 0 {
		req.Options.MicroGB = sizeGB
	}
	b, err := json.Marshal(req)
	if err != nil { // cannot happen: the request is plain data
		panic(err)
	}
	return workflow, b
}

// Result is one run's measured outcome. Only requests issued inside the
// measured window (after warmup) are counted.
type Result struct {
	// Requests counts measured requests that completed; Errors the
	// subset that failed (non-2xx status or transport error).
	Requests int64
	Errors   int64
	// MeasuredS is the actual measured-window length.
	MeasuredS float64
	// ThroughputRPS is Requests / MeasuredS.
	ThroughputRPS float64
	// Latencies holds every measured request's wall time in seconds, in
	// no particular order — raw samples for exact percentiles.
	Latencies []float64
	// StatusCounts tallies by HTTP status ("200", …; transport errors
	// count under "error"). MixCounts tallies by workflow name.
	StatusCounts map[string]int64
	MixCounts    map[string]int64
}

// worker-local tallies, merged once at the end so the hot path is
// lock-free.
type tally struct {
	requests, errors int64
	latencies        []float64
	status           map[string]int64
	mix              map[string]int64
}

func newTally() *tally {
	return &tally{status: make(map[string]int64), mix: make(map[string]int64)}
}

// Run drives the server until warmup+duration elapse (or ctx is
// cancelled, which ends the run early but still reports what was
// measured).
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	deadline := measureFrom.Add(cfg.Duration)
	// In-flight requests get a grace period past the dispatch deadline so
	// a request issued at the window's edge is measured, not cancelled
	// into a spurious error.
	rctx, cancel := context.WithDeadline(ctx, deadline.Add(10*time.Second))
	defer cancel()

	var next atomic.Int64
	shoot := func(t *tally) {
		i := next.Add(1) - 1
		workflow, body := Body(cfg.Seed, i, cfg.Workflows, cfg.SizesGB)
		target := cfg.BaseURLs[int(i)%len(cfg.BaseURLs)]
		t0 := time.Now()
		status, err := fire(rctx, cfg.Client, target+"/v1/estimate", body)
		lat := time.Since(t0).Seconds()
		if t0.Before(measureFrom) {
			return // warmup request: issued, not measured
		}
		t.requests++
		t.latencies = append(t.latencies, lat)
		t.mix[workflow]++
		if err != nil {
			t.errors++
			t.status["error"]++
			return
		}
		t.status[strconv.Itoa(status)]++
		if status < 200 || status > 299 {
			t.errors++
		}
	}

	tallies := make([]*tally, 0, cfg.Connections)
	var wg sync.WaitGroup
	switch cfg.Mode {
	case "closed":
		for c := 0; c < cfg.Connections; c++ {
			t := newTally()
			tallies = append(tallies, t)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) && rctx.Err() == nil {
					shoot(t)
				}
			}()
		}
	case "open":
		// One dispatcher paces arrivals; each request gets its own
		// goroutine so a slow response never stalls the arrival process.
		t := newTally()
		tallies = append(tallies, t)
		var mu sync.Mutex
		interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) && rctx.Err() == nil {
				wg.Add(1)
				go func() {
					defer wg.Done()
					local := newTally()
					shoot(local)
					mu.Lock()
					merge(t, local)
					mu.Unlock()
				}()
				select {
				case <-tick.C:
				case <-rctx.Done():
				}
			}
		}()
	}
	wg.Wait()

	out := newTally()
	for _, t := range tallies {
		merge(out, t)
	}
	measured := time.Since(measureFrom).Seconds()
	if until := deadline.Sub(measureFrom).Seconds(); measured > until {
		measured = until
	}
	res := Result{
		Requests:     out.requests,
		Errors:       out.errors,
		MeasuredS:    measured,
		Latencies:    out.latencies,
		StatusCounts: out.status,
		MixCounts:    out.mix,
	}
	if measured > 0 {
		res.ThroughputRPS = float64(res.Requests) / measured
	}
	return res, nil
}

func merge(dst, src *tally) {
	dst.requests += src.requests
	dst.errors += src.errors
	dst.latencies = append(dst.latencies, src.latencies...)
	for k, v := range src.status {
		dst.status[k] += v
	}
	for k, v := range src.mix {
		dst.mix[k] += v
	}
}

// fire sends one estimate request and drains the response.
func fire(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// Summarize folds a run into the perfledger interchange shape, with
// exact nearest-rank percentiles over the raw samples.
func Summarize(cfg Config, res Result) perfledger.ServiceRun {
	target := cfg.BaseURL
	if target == "" && len(cfg.BaseURLs) > 0 {
		target = strings.Join(cfg.BaseURLs, ",")
	}
	run := perfledger.ServiceRun{
		Target:        target,
		Mode:          cfg.Mode,
		Seed:          cfg.Seed,
		Workflows:     cfg.Workflows,
		SizesGB:       cfg.SizesGB,
		Connections:   cfg.Connections,
		RatePerSec:    cfg.RatePerSec,
		WarmupS:       cfg.Warmup.Seconds(),
		DurationS:     res.MeasuredS,
		Requests:      res.Requests,
		Errors:        res.Errors,
		ThroughputRPS: res.ThroughputRPS,
		StatusCounts:  res.StatusCounts,
		MixCounts:     res.MixCounts,
	}
	if run.Mode == "" {
		run.Mode = "closed"
	}
	if n := len(res.Latencies); n > 0 {
		var sum, max float64
		for _, v := range res.Latencies {
			sum += v
			if v > max {
				max = v
			}
		}
		run.Latency = perfledger.LatencySummary{
			Count: int64(n),
			MeanS: sum / float64(n),
			P50S:  obs.Percentile(res.Latencies, 0.50),
			P90S:  obs.Percentile(res.Latencies, 0.90),
			P99S:  obs.Percentile(res.Latencies, 0.99),
			MaxS:  max,
		}
	}
	return run
}
