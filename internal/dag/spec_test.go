package dag

import (
	"bytes"
	"strings"
	"testing"

	"boedag/internal/units"
	"boedag/internal/workload"
)

const sampleSpec = `{
  "name": "etl",
  "jobs": [
    {"id": "extract", "input_mb": 51200, "map_selectivity": 0.4,
     "map_cpu_cost": 1.5, "reduce_tasks": 33, "reduce_selectivity": 0.8,
     "compress": true, "skew_cv": 0.1},
    {"id": "load", "deps": ["extract"], "input_mb": 16384, "reduce_tasks": 8}
  ]
}`

func TestLoadWorkflow(t *testing.T) {
	w, err := LoadWorkflow(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "etl" || len(w.Jobs) != 2 {
		t.Fatalf("loaded %+v", w)
	}
	ex := w.Job("extract")
	if ex.Profile.InputBytes != 50*units.GB {
		t.Errorf("input = %v, want 50GB", ex.Profile.InputBytes)
	}
	if ex.Profile.MapSelectivity != 0.4 || ex.Profile.MapCPUCost != 1.5 {
		t.Errorf("selectivity/cost = %v/%v", ex.Profile.MapSelectivity, ex.Profile.MapCPUCost)
	}
	if !ex.Profile.Compression.Enabled || ex.Profile.Compression.Ratio != 0.4 {
		t.Errorf("compression default = %+v", ex.Profile.Compression)
	}
	// Defaults fill in.
	ld := w.Job("load")
	if ld.Profile.SplitBytes != 128*units.MB {
		t.Errorf("default split = %v", ld.Profile.SplitBytes)
	}
	if ld.Profile.MapSelectivity != 1 || ld.Profile.ReduceSelectivity != 1 {
		t.Error("default selectivities wrong")
	}
	if len(ld.Deps) != 1 || ld.Deps[0] != "extract" {
		t.Errorf("deps = %v", ld.Deps)
	}
}

func TestLoadWorkflowRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "{nope"},
		{"unknown field", `{"name":"x","jobs":[{"id":"a","input_mb":1,"bogus":2}]}`},
		{"missing input", `{"name":"x","jobs":[{"id":"a"}]}`},
		{"unknown dep", `{"name":"x","jobs":[{"id":"a","input_mb":1,"deps":["z"]}]}`},
		{"cycle", `{"name":"x","jobs":[
			{"id":"a","input_mb":1,"deps":["b"]},
			{"id":"b","input_mb":1,"deps":["a"]}]}`},
		{"no name", `{"jobs":[{"id":"a","input_mb":1}]}`},
	}
	for _, c := range cases {
		if _, err := LoadWorkflow(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := LoadWorkflow(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveWorkflow(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkflow(&buf)
	if err != nil {
		t.Fatalf("reload: %v\nspec:\n%s", err, buf.String())
	}
	if back.Name != orig.Name || len(back.Jobs) != len(orig.Jobs) {
		t.Fatal("shape changed in round trip")
	}
	for i := range orig.Jobs {
		a, b := orig.Jobs[i].Profile, back.Jobs[i].Profile
		if a.InputBytes != b.InputBytes || a.MapSelectivity != b.MapSelectivity ||
			a.ReduceTasks != b.ReduceTasks || a.Compression.Enabled != b.Compression.Enabled {
			t.Errorf("job %s changed: %+v vs %+v", orig.Jobs[i].ID, a, b)
		}
	}
}

func TestSaveWorkflowRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveWorkflow(&buf, &Workflow{Name: "empty"}); err == nil {
		t.Fatal("invalid workflow saved")
	}
}

func TestSaveGeneratedWorkflow(t *testing.T) {
	// A programmatically built workflow with real profiles survives the
	// spec format.
	flow := Parallel("mix",
		Single(workload.WordCount(10*units.GB)),
		Single(workload.TeraSort(10*units.GB)))
	var buf bytes.Buffer
	if err := SaveWorkflow(&buf, flow); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkflow(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(back.Jobs))
	}
}
