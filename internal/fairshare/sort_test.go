package fairshare

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSortDemandersMatchesStableReference pins the natural-run merge
// sort against sort.SliceStable across input shapes: short inputs (the
// insertion path), already-sorted, reverse-sorted, heavy ties in long
// runs (the templated-DAG shape the algorithm targets), and uniform
// random. Identical permutations — including tie order — are required,
// because the waterfill float evaluation order follows the sorted
// sequence.
func TestSortDemandersMatchesStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := map[string]func(n int) []demander{
		"random": func(n int) []demander {
			ds := make([]demander, n)
			for i := range ds {
				ds[i] = demander{idx: i, desired: rng.Float64()}
			}
			return ds
		},
		"sorted": func(n int) []demander {
			ds := make([]demander, n)
			for i := range ds {
				ds[i] = demander{idx: i, desired: float64(i)}
			}
			return ds
		},
		"reversed": func(n int) []demander {
			ds := make([]demander, n)
			for i := range ds {
				ds[i] = demander{idx: i, desired: float64(n - i)}
			}
			return ds
		},
		"runs-of-ties": func(n int) []demander {
			// A few distinct values in contiguous runs, like identical
			// job classes adjacent in the running order.
			ds := make([]demander, n)
			vals := []float64{3, 1, 4, 1, 5}
			for i := range ds {
				ds[i] = demander{idx: i, desired: vals[(i*len(vals))/max(n, 1)]}
			}
			return ds
		},
		"all-equal": func(n int) []demander {
			ds := make([]demander, n)
			for i := range ds {
				ds[i] = demander{idx: i, desired: 7}
			}
			return ds
		},
	}
	var sc sortScratch
	for name, gen := range shapes {
		for _, n := range []int{0, 1, 2, 15, 16, 17, 31, 64, 100, 257} {
			ds := gen(n)
			want := append([]demander(nil), ds...)
			sort.SliceStable(want, func(a, b int) bool { return want[a].desired < want[b].desired })
			sortDemanders(ds, &sc)
			for i := range ds {
				if ds[i] != want[i] {
					t.Fatalf("%s n=%d: position %d = %+v, want %+v", name, n, i, ds[i], want[i])
				}
			}
		}
	}
}
