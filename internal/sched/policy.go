package sched

import (
	"fmt"
	"sort"
)

// Policy selects the scheduler's allocation discipline. The paper
// evaluates under YARN's DRF (§II-B); FIFO and slot-fair are the other
// two schedulers Hadoop ships, provided here so the models can be
// validated under every discipline a deployment might run (DESIGN.md §5
// lists the scheduler as an ablation axis).
type Policy int

const (
	// PolicyDRF is Dominant Resource Fairness (the default, as the paper).
	PolicyDRF Policy = iota
	// PolicyFIFO grants everything to the earliest-submitted job first —
	// Hadoop's original scheduler.
	PolicyFIFO
	// PolicyFair splits slots evenly across jobs regardless of container
	// sizes — the Fair Scheduler's slot view.
	PolicyFair
	// PolicySPJF is shortest-predicted-job-first: FIFO's drain discipline
	// ordered by Request.Predicted (the estimator-in-the-loop policy).
	// With equal predictions it degrades to exactly FIFO — the metamorphic
	// contract the policy suite enforces.
	PolicySPJF
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyDRF:
		return "drf"
	case PolicyFIFO:
		return "fifo"
	case PolicyFair:
		return "fair"
	case PolicySPJF:
		return "spjf"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Policies lists all scheduling disciplines.
func Policies() []Policy { return []Policy{PolicyDRF, PolicyFIFO, PolicyFair, PolicySPJF} }

// ParsePolicy resolves a policy name as printed by String.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return PolicyDRF, fmt.Errorf("sched: unknown policy %q", name)
}

// Grant allocates containers under the chosen policy. Request.Order
// carries submission order for FIFO (lower is earlier; ties break by
// JobID). DRF and Fair ignore Order.
func Grant(policy Policy, pool Pool, reqs []Request, held Allocation) Allocation {
	switch policy {
	case PolicyFIFO:
		return fifo(pool, reqs, held)
	case PolicyFair:
		return fair(pool, reqs, held)
	case PolicySPJF:
		return spjf(pool, reqs, held)
	default:
		return DRF(pool, reqs, held)
	}
}

// fifo drains the pool into jobs in submission order.
func fifo(pool Pool, reqs []Request, held Allocation) Allocation {
	ordered := append([]Request(nil), reqs...)
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].Order != ordered[b].Order {
			return ordered[a].Order < ordered[b].Order
		}
		return ordered[a].JobID < ordered[b].JobID
	})
	return drain(pool, ordered, reqs, held)
}

// spjf drains the pool shortest-predicted-job-first: FIFO's discipline
// with Predicted as the primary key, so equal predictions reproduce
// FIFO exactly (Order, then JobID, break ties).
func spjf(pool Pool, reqs []Request, held Allocation) Allocation {
	ordered := append([]Request(nil), reqs...)
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].Predicted != ordered[b].Predicted {
			return ordered[a].Predicted < ordered[b].Predicted
		}
		if ordered[a].Order != ordered[b].Order {
			return ordered[a].Order < ordered[b].Order
		}
		return ordered[a].JobID < ordered[b].JobID
	})
	return drain(pool, ordered, reqs, held)
}

// drain gives each job, in the given priority order, every container it
// can take before moving to the next.
func drain(pool Pool, ordered, reqs []Request, held Allocation) Allocation {
	grant := make(Allocation, len(reqs))
	memUsed, cpuUsed, slotsUsed := heldUsage(reqs, held)
	for _, r := range ordered {
		for {
			have := grant[r.JobID] + held[r.JobID]
			if grant[r.JobID] >= r.Pending {
				break
			}
			if r.Cap > 0 && have >= r.Cap {
				break
			}
			if !fits(pool, memUsed+r.MemoryMB, cpuUsed+r.VCores, slotsUsed+1) {
				break
			}
			grant[r.JobID]++
			memUsed += r.MemoryMB
			cpuUsed += r.VCores
			slotsUsed++
		}
	}
	return grant
}

// fair hands out slots round-robin, one at a time, to every job that can
// still take one — equal slot counts regardless of container sizes.
func fair(pool Pool, reqs []Request, held Allocation) Allocation {
	ordered := append([]Request(nil), reqs...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].JobID < ordered[b].JobID })
	grant := make(Allocation, len(reqs))
	memUsed, cpuUsed, slotsUsed := heldUsage(reqs, held)
	for {
		progress := false
		// Round-robin by current holdings: grant to jobs with the fewest
		// containers first.
		sort.SliceStable(ordered, func(a, b int) bool {
			ha := grant[ordered[a].JobID] + held[ordered[a].JobID]
			hb := grant[ordered[b].JobID] + held[ordered[b].JobID]
			if ha != hb {
				return ha < hb
			}
			return ordered[a].JobID < ordered[b].JobID
		})
		for _, r := range ordered {
			have := grant[r.JobID] + held[r.JobID]
			if grant[r.JobID] >= r.Pending {
				continue
			}
			if r.Cap > 0 && have >= r.Cap {
				continue
			}
			if !fits(pool, memUsed+r.MemoryMB, cpuUsed+r.VCores, slotsUsed+1) {
				continue
			}
			grant[r.JobID]++
			memUsed += r.MemoryMB
			cpuUsed += r.VCores
			slotsUsed++
			progress = true
			break // re-sort by holdings
		}
		if !progress {
			return grant
		}
	}
}

func heldUsage(reqs []Request, held Allocation) (mem, cpu, slots int) {
	for _, r := range reqs {
		h := held[r.JobID]
		mem += h * r.MemoryMB
		cpu += h * r.VCores
		slots += h
	}
	return mem, cpu, slots
}

func fits(pool Pool, mem, cpu, slots int) bool {
	if pool.MemoryMB > 0 && mem > pool.MemoryMB {
		return false
	}
	if pool.VCores > 0 && cpu > pool.VCores {
		return false
	}
	if pool.Slots > 0 && slots > pool.Slots {
		return false
	}
	return true
}
