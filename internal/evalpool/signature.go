package evalpool

import (
	"math"
	"sort"
	"strconv"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/dag"
	"boedag/internal/sched"
	"boedag/internal/simulator"
	"boedag/internal/statemodel"
	"boedag/internal/workload"
)

// Hasher accumulates an FNV-1a 64-bit hash over typed fields. It exists
// so every cache key is built from the same canonical encoding: each
// field is hashed with a separator byte, so adjacent fields cannot alias
// ("ab","c" vs "a","bc") and a zero field still advances the state.
type Hasher struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHasher returns a Hasher at the FNV offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

func (h *Hasher) byte(b byte) {
	h.h = (h.h ^ uint64(b)) * fnvPrime
}

// Str hashes a string field.
func (h *Hasher) Str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(0xff) // field separator
}

// Uint hashes an unsigned integer field.
func (h *Hasher) Uint(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// Int hashes a signed integer field.
func (h *Hasher) Int(v int64) { h.Uint(uint64(v)) }

// Float hashes a float field by its IEEE-754 bits.
func (h *Hasher) Float(v float64) { h.Uint(math.Float64bits(v)) }

// Bool hashes a boolean field.
func (h *Hasher) Bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
	h.byte(0xff)
}

// Dur hashes a duration field.
func (h *Hasher) Dur(d time.Duration) { h.Int(int64(d)) }

// Sum returns the accumulated hash.
func (h *Hasher) Sum() uint64 { return h.h }

// Key renders the accumulated hash as a compact cache key.
func (h *Hasher) Key() string { return strconv.FormatUint(h.h, 16) }

// Workflow folds a workflow's full identity into the hash: name, job IDs
// and dependencies in declaration order (declaration order is submission
// order under FIFO, so it is semantically significant), and every
// JobProfile field.
func (h *Hasher) Workflow(w *dag.Workflow) {
	h.Str(w.Name)
	h.Int(int64(len(w.Jobs)))
	for _, j := range w.Jobs {
		h.Str(j.ID)
		h.Int(int64(len(j.Deps)))
		for _, d := range j.Deps {
			h.Str(d)
		}
		h.Profile(j.Profile)
	}
}

// Profile folds every field of a job profile into the hash.
func (h *Hasher) Profile(p workload.JobProfile) {
	h.Str(p.Name)
	h.Int(int64(p.InputBytes))
	h.Int(int64(p.SplitBytes))
	h.Int(int64(p.ReduceTasks))
	h.Float(p.MapSelectivity)
	h.Float(p.ReduceSelectivity)
	h.Float(p.MapCPUCost)
	h.Float(p.ReduceCPUCost)
	h.Bool(p.Compression.Enabled)
	h.Float(p.Compression.Ratio)
	h.Float(p.Compression.CPUOverhead)
	h.Int(int64(p.Replicas))
	h.Int(int64(p.SortBufferBytes))
	h.Int(int64(p.MapMemoryMB))
	h.Int(int64(p.ReduceMemoryMB))
	h.Int(int64(p.MapVCores))
	h.Int(int64(p.ReduceVCores))
	h.Float(p.SkewCV)
}

// Spec folds a cluster specification into the hash.
func (h *Hasher) Spec(s cluster.Spec) {
	h.Int(int64(s.Nodes))
	h.Int(int64(s.SlotsPerNode))
	h.Int(int64(s.Node.Cores))
	h.Float(float64(s.Node.CoreThroughput))
	h.Int(int64(s.Node.Disks))
	h.Float(float64(s.Node.DiskReadRate))
	h.Float(float64(s.Node.DiskWriteRate))
	h.Float(float64(s.Node.NetworkRate))
	h.Int(int64(s.Node.MemoryMB))
}

// caps folds a parallelism-cap map in sorted-key order.
func (h *Hasher) caps(caps map[string]int) {
	h.Int(int64(len(caps)))
	if len(caps) == 0 {
		return
	}
	keys := make([]string, 0, len(caps))
	for k := range caps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Str(k)
		h.Int(int64(caps[k]))
	}
}

// floats folds a string→float64 map in sorted-key order.
func (h *Hasher) floats(m map[string]float64) {
	h.Int(int64(len(m)))
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Str(k)
		h.Float(m[k])
	}
}

// strs folds a string→string map in sorted-key order.
func (h *Hasher) strs(m map[string]string) {
	h.Int(int64(len(m)))
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Str(k)
		h.Str(m[k])
	}
}

// Hierarchy folds a queue tree's canonical spec list (nil = flat).
func (h *Hasher) Hierarchy(t *sched.Hierarchy) {
	if t == nil {
		h.Int(-1)
		return
	}
	specs := t.Specs()
	h.Int(int64(len(specs)))
	for _, sp := range specs {
		h.Str(sp.Name)
		h.Str(sp.Parent)
		h.Int(int64(sp.Quota.MemoryMB))
		h.Int(int64(sp.Quota.VCores))
		h.Int(int64(sp.Quota.Slots))
		h.Float(sp.Weight)
		h.Int(int64(sp.Limit.MemoryMB))
		h.Int(int64(sp.Limit.VCores))
		h.Int(int64(sp.Limit.Slots))
	}
}

// EstimatorOptions folds every semantically significant estimator option
// (Observe is excluded: sinks do not change the plan).
func (h *Hasher) EstimatorOptions(o statemodel.Options) {
	h.Int(int64(o.Mode))
	h.Dur(o.JobSubmitOverhead)
	h.caps(o.ParallelismCaps)
	h.Int(int64(o.SlotLimit))
	h.Int(int64(o.Policy))
	h.Hierarchy(o.Hierarchy)
	h.strs(o.Queues)
	h.caps(o.Gangs)
	h.floats(o.Predictions)
	h.Float(o.TaskFailureProb)
	h.Bool(o.DiscreteWaves)
	// Incremental vs from-scratch plans are byte-identical by contract,
	// but the reference path must never share cache lines with the
	// default path — a shared entry would mask an equivalence divergence.
	h.Bool(o.DisableIncremental)
}

// SimulatorOptions folds every semantically significant simulator option
// — including the skew Seed, so two runs differing only in their skew
// draw never share a cache line (Observe is excluded).
func (h *Hasher) SimulatorOptions(o simulator.Options) {
	h.Int(o.Seed)
	h.Dur(o.TaskStartOverhead)
	h.Dur(o.JobSubmitOverhead)
	h.caps(o.ParallelismCaps)
	h.Int(int64(o.SlotLimit))
	h.Int(int64(o.Policy))
	h.Hierarchy(o.Hierarchy)
	h.strs(o.Queues)
	h.caps(o.Gangs)
	h.floats(o.Predictions)
	h.Float(o.TaskFailureProb)
	h.Bool(o.NodeAware)
	h.Bool(o.DisableSkew)
	h.Int(int64(o.MaxEvents))
}

// Timer folds a TaskTimer's identity into the hash. It understands the
// two timers this repository ships; unknown implementations report
// ok=false, which makes the enclosing key uncacheable (correctness over
// speed: an opaque timer may close over anything).
func (h *Hasher) Timer(t statemodel.TaskTimer) (ok bool) {
	switch tt := t.(type) {
	case nil:
		h.Str("timer:nil")
		return true
	case *statemodel.BOETimer:
		h.Str("timer:boe")
		h.Spec(tt.Model.Spec)
		h.Bool(tt.Model.EqualSplit)
		h.Dur(tt.TaskStartOverhead)
		return true
	case *statemodel.ProfileTimer:
		h.Str("timer:profile")
		h.Str(tt.Profiles.Workflow)
		jobs := make([]string, 0, len(tt.Profiles.Stages))
		for j := range tt.Profiles.Stages {
			jobs = append(jobs, j)
		}
		sort.Strings(jobs)
		for _, j := range jobs {
			h.Str(j)
			for _, sp := range tt.Profiles.Stages[j] {
				h.Int(int64(sp.Stage))
				h.Int(int64(sp.Parallelism))
				h.Int(int64(len(sp.TaskTimes)))
				for _, d := range sp.TaskTimes {
					h.Dur(d)
				}
			}
		}
		if tt.Fallback != nil {
			return h.Timer(tt.Fallback)
		}
		h.Str("fallback:none")
		return true
	default:
		return false
	}
}

// PlanKey builds the canonical cache key for one estimator invocation:
// cluster spec + options + timer identity + full workflow. ok is false
// when the estimator's timer is not canonically hashable, in which case
// the caller must compute without caching.
func PlanKey(est *statemodel.Estimator, w *dag.Workflow) (key string, ok bool) {
	h := NewHasher()
	h.Str("plan")
	h.Spec(est.Spec)
	h.EstimatorOptions(est.Opt)
	if !h.Timer(est.Timer) {
		return "", false
	}
	h.Workflow(w)
	return h.Key(), true
}

// ResultKey builds the canonical cache key for one simulation run:
// cluster spec + options (skew seed included) + full workflow.
func ResultKey(spec cluster.Spec, opt simulator.Options, w *dag.Workflow) string {
	h := NewHasher()
	h.Str("sim")
	h.Spec(spec)
	h.SimulatorOptions(opt)
	h.Workflow(w)
	return h.Key()
}
