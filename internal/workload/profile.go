// Package workload describes MapReduce jobs as profiles: data volumes,
// selectivities, per-byte CPU costs, compression and replication settings.
// From a profile and a cluster topology it derives the tuple-level
// operation demands (read, transfer, compute, write) of each task
// sub-stage — the inputs both the BOE cost model and the ground-truth
// simulator consume.
package workload

import (
	"errors"
	"fmt"
	"math"

	"boedag/internal/cluster"
	"boedag/internal/units"
)

// Stage identifies the two task stages of a MapReduce job. The shuffle is
// modelled, as in Hadoop, as the first sub-stage of the reduce task.
type Stage int

const (
	// Map is the record-reading, user-map-function stage.
	Map Stage = iota
	// Reduce covers shuffle, merge and the user reduce function.
	Reduce
)

// String returns "map" or "reduce".
func (s Stage) String() string {
	if s == Map {
		return "map"
	}
	return "reduce"
}

// OpDemand is the amount of one resource a task sub-stage must move, e.g.
// "read 128 MB from disk". Compute demand is expressed in bytes of
// unit-cost work: a map function with CPUCost 2.0 over a 128 MB split
// demands 256 MB of compute, processed at the core's unit throughput.
type OpDemand struct {
	Resource cluster.Resource
	Bytes    units.Bytes
}

// SubStage is one pipelined phase of a task: a set of operations executed
// tuple by tuple, with bulk synchronization at its end (Figure 3 of the
// paper). The sub-stage's duration is governed by its bottleneck
// operation.
type SubStage struct {
	// Name is a short label for traces, e.g. "map", "spill", "shuffle".
	Name string
	// Ops are the pipelined operations. At most one demand per resource.
	Ops []OpDemand
}

// Demand returns the bytes this sub-stage moves on resource r (zero when
// the resource is unused).
func (ss SubStage) Demand(r cluster.Resource) units.Bytes {
	for _, op := range ss.Ops {
		if op.Resource == r {
			return op.Bytes
		}
	}
	return 0
}

// TotalDemand sums demands across sub-stages per resource.
func TotalDemand(subs []SubStage, r cluster.Resource) units.Bytes {
	var sum units.Bytes
	for _, ss := range subs {
		sum += ss.Demand(r)
	}
	return sum
}

// Compression describes optional map-output compression: it shrinks
// shuffle and spill bytes by Ratio at the price of extra CPU on both the
// map (compress) and reduce (decompress) side.
type Compression struct {
	// Enabled mirrors the paper's "C" column in Table I.
	Enabled bool
	// Ratio is compressed size / raw size, e.g. 0.35 for text word counts.
	Ratio float64
	// CPUOverhead is the extra unit-cost compute per raw byte spent
	// compressing (map side) or decompressing (reduce side).
	CPUOverhead float64
}

// factor returns the effective size multiplier for map output bytes.
func (c Compression) factor() float64 {
	if !c.Enabled {
		return 1
	}
	return c.Ratio
}

// JobProfile is the static description of one MapReduce job: enough to
// derive every task's sub-stages without running the job. Profiles come
// from generators (word count, sort, TPC-H operators) or from measuring a
// profiling run.
type JobProfile struct {
	// Name identifies the job in traces and experiment tables.
	Name string

	// InputBytes is the total input the map stage reads.
	InputBytes units.Bytes
	// SplitBytes is the input per map task (HDFS block / split size).
	SplitBytes units.Bytes
	// ReduceTasks is the configured reduce-task count; 0 means map-only.
	ReduceTasks int

	// MapSelectivity is map-output bytes per input byte, before
	// compression.
	MapSelectivity float64
	// ReduceSelectivity is reduce-output bytes per reduce-input byte.
	ReduceSelectivity float64

	// MapCPUCost and ReduceCPUCost are unit-cost compute bytes demanded per
	// byte processed by the user map / reduce function. 1.0 is the
	// calibration workload (identity-like scan).
	MapCPUCost    float64
	ReduceCPUCost float64

	// Compression applies to map output (spill + shuffle).
	Compression Compression

	// Replicas is the HDFS replication factor of the reduce (or map-only)
	// output; the paper's "R" column. Zero defaults to 3.
	Replicas int

	// SortBufferBytes is the in-memory sort buffer of a map task; map
	// outputs larger than this spill and pay an extra merge pass.
	SortBufferBytes units.Bytes

	// MapMemoryMB / ReduceMemoryMB are container memory requests, the
	// denominator of DRF dominant shares.
	MapMemoryMB    int
	ReduceMemoryMB int
	// MapVCores / ReduceVCores are container CPU requests.
	MapVCores    int
	ReduceVCores int

	// SkewCV is the coefficient of variation of per-task data sizes the
	// simulator applies (0 = perfectly even partitions).
	SkewCV float64
}

// Validate reports the first inconsistent field, if any.
func (p JobProfile) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("workload: job profile needs a name")
	case p.InputBytes <= 0:
		return fmt.Errorf("workload: %s: input bytes must be positive", p.Name)
	case p.SplitBytes <= 0:
		return fmt.Errorf("workload: %s: split bytes must be positive", p.Name)
	case p.ReduceTasks < 0:
		return fmt.Errorf("workload: %s: reduce tasks cannot be negative", p.Name)
	case p.MapSelectivity < 0 || p.ReduceSelectivity < 0:
		return fmt.Errorf("workload: %s: selectivities cannot be negative", p.Name)
	case p.MapCPUCost < 0 || p.ReduceCPUCost < 0:
		return fmt.Errorf("workload: %s: CPU costs cannot be negative", p.Name)
	case p.Replicas < 0:
		return fmt.Errorf("workload: %s: replicas cannot be negative", p.Name)
	case p.Compression.Enabled && (p.Compression.Ratio <= 0 || p.Compression.Ratio > 1):
		return fmt.Errorf("workload: %s: compression ratio must be in (0,1]", p.Name)
	case p.SkewCV < 0:
		return fmt.Errorf("workload: %s: skew CV cannot be negative", p.Name)
	}
	return nil
}

// replicas returns the effective replication factor (default 3, as HDFS).
func (p JobProfile) replicas() int {
	if p.Replicas == 0 {
		return 3
	}
	return p.Replicas
}

// MapTasks returns the number of map tasks: one per input split.
func (p JobProfile) MapTasks() int {
	n := int(math.Ceil(float64(p.InputBytes) / float64(p.SplitBytes)))
	if n < 1 {
		n = 1
	}
	return n
}

// Tasks returns the task count of the given stage.
func (p JobProfile) Tasks(s Stage) int {
	if s == Map {
		return p.MapTasks()
	}
	return p.ReduceTasks
}

// MapOutputBytes is the total (post-compression) map output of the job.
func (p JobProfile) MapOutputBytes() units.Bytes {
	return p.InputBytes.Scale(p.MapSelectivity * p.Compression.factor())
}

// OutputBytes is the job's final output size: reduce output for jobs with
// a reduce stage, map output (uncompressed, written to HDFS) otherwise.
func (p JobProfile) OutputBytes() units.Bytes {
	if p.ReduceTasks == 0 {
		return p.InputBytes.Scale(p.MapSelectivity)
	}
	raw := p.InputBytes.Scale(p.MapSelectivity) // reduce consumes logical bytes
	return raw.Scale(p.ReduceSelectivity)
}

// MapTaskInput is the input size of one (average) map task.
func (p JobProfile) MapTaskInput() units.Bytes {
	return p.InputBytes / units.Bytes(p.MapTasks())
}

// ReduceTaskInput is the (post-compression) shuffle input of one reduce
// task.
func (p JobProfile) ReduceTaskInput() units.Bytes {
	if p.ReduceTasks == 0 {
		return 0
	}
	return p.MapOutputBytes() / units.Bytes(p.ReduceTasks)
}

// MemoryMB returns the container memory request for the stage (with a
// 1 GB default, YARN's minimum allocation).
func (p JobProfile) MemoryMB(s Stage) int {
	mb := p.MapMemoryMB
	if s == Reduce {
		mb = p.ReduceMemoryMB
	}
	if mb <= 0 {
		return 1024
	}
	return mb
}

// VCores returns the container vcore request for the stage (default 1).
func (p JobProfile) VCores(s Stage) int {
	v := p.MapVCores
	if s == Reduce {
		v = p.ReduceVCores
	}
	if v <= 0 {
		return 1
	}
	return v
}

// MapSubStages derives the pipelined sub-stages of one map task, given the
// cluster the job runs on. The spec matters for data locality: the
// fraction of HDFS reads and replica writes that traverse the network.
//
// Sub-stage 1 ("map"): disk read of the split, user map compute (plus
// compression CPU), disk write of the (compressed) map output.
// Sub-stage 2 ("spill", only when output exceeds the sort buffer): an
// external merge pass that re-reads and re-writes the output.
// Map-only jobs instead write their output to HDFS with replication.
func (p JobProfile) MapSubStages(spec cluster.Spec) []SubStage {
	in := p.MapTaskInput()
	rawOut := in.Scale(p.MapSelectivity)
	out := rawOut.Scale(p.Compression.factor())

	compute := in.Scale(p.MapCPUCost)
	if p.Compression.Enabled {
		compute += rawOut.Scale(p.Compression.CPUOverhead)
	}

	if p.ReduceTasks == 0 {
		// Map-only job: output goes straight to HDFS with replication.
		rep := p.replicas()
		remote := remoteFraction(spec, rep)
		main := SubStage{Name: "map", Ops: trimOps([]OpDemand{
			{Resource: cluster.DiskRead, Bytes: in},
			{Resource: cluster.CPU, Bytes: compute},
			{Resource: cluster.DiskWrite, Bytes: rawOut.Scale(float64(rep))},
			{Resource: cluster.Network, Bytes: rawOut.Scale(remote)},
		})}
		return []SubStage{main}
	}

	subs := []SubStage{{Name: "map", Ops: trimOps([]OpDemand{
		{Resource: cluster.DiskRead, Bytes: in},
		{Resource: cluster.CPU, Bytes: compute},
		{Resource: cluster.DiskWrite, Bytes: out},
	})}}

	if p.SortBufferBytes > 0 && out > p.SortBufferBytes {
		// External merge & sort: one extra read+write pass over the spills.
		subs = append(subs, SubStage{Name: "spill-merge", Ops: trimOps([]OpDemand{
			{Resource: cluster.DiskRead, Bytes: out},
			{Resource: cluster.CPU, Bytes: out.Scale(0.2)},
			{Resource: cluster.DiskWrite, Bytes: out},
		})})
	}
	return subs
}

// ReduceSubStages derives the pipelined sub-stages of one reduce task.
//
// Sub-stage 1 ("shuffle"): network transfer of the remote share of the
// task's map-output partition plus a disk write materializing the reduce
// input (the paper's §II-A: input is spilled to reserve memory for the
// user reduce function). The map-side read is served from the OS buffer
// cache and therefore demands no disk read.
// Sub-stage 2 ("reduce"): disk read of the materialized input,
// decompression + user reduce compute, and the HDFS write of the output
// with R replicas — one local disk write plus R-1 replica transfers, and
// the replica disk writes land on this cluster's aggregate disk pool too.
func (p JobProfile) ReduceSubStages(spec cluster.Spec) []SubStage {
	if p.ReduceTasks == 0 {
		return nil
	}
	in := p.ReduceTaskInput()                           // compressed bytes pulled
	logical := in / units.Bytes(p.Compression.factor()) // decompressed bytes
	out := logical.Scale(p.ReduceSelectivity)
	rep := p.replicas()

	remoteIn := 1 - 1/float64(spec.Nodes) // map outputs are spread evenly

	shuffle := SubStage{Name: "shuffle", Ops: trimOps([]OpDemand{
		{Resource: cluster.Network, Bytes: in.Scale(remoteIn)},
		{Resource: cluster.DiskWrite, Bytes: in},
		{Resource: cluster.CPU, Bytes: in.Scale(0.1)}, // copier/merger threads
	})}

	compute := logical.Scale(p.ReduceCPUCost)
	if p.Compression.Enabled {
		compute += logical.Scale(p.Compression.CPUOverhead)
	}
	remoteOut := remoteFraction(spec, rep)
	reduce := SubStage{Name: "reduce", Ops: trimOps([]OpDemand{
		{Resource: cluster.DiskRead, Bytes: in},
		{Resource: cluster.CPU, Bytes: compute},
		{Resource: cluster.DiskWrite, Bytes: out.Scale(float64(rep))},
		{Resource: cluster.Network, Bytes: out.Scale(remoteOut)},
	})}
	return []SubStage{shuffle, reduce}
}

// SubStages returns the sub-stages of a task of the given stage.
func (p JobProfile) SubStages(s Stage, spec cluster.Spec) []SubStage {
	if s == Map {
		return p.MapSubStages(spec)
	}
	return p.ReduceSubStages(spec)
}

// remoteFraction is the share of HDFS replica bytes that cross the
// network: the first replica is local, the remaining rep-1 are remote
// (when the cluster has more than one node to hold them).
func remoteFraction(spec cluster.Spec, rep int) float64 {
	if spec.Nodes <= 1 || rep <= 1 {
		return 0
	}
	return float64(rep - 1)
}

// trimOps drops zero-byte operations so sub-stage bottleneck scans only
// see resources the task actually touches.
func trimOps(ops []OpDemand) []OpDemand {
	out := ops[:0]
	for _, op := range ops {
		if op.Bytes > 0 {
			out = append(out, op)
		}
	}
	return out
}
