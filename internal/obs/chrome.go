package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// Object Format of the Trace Event specification, consumed by
// chrome://tracing and Perfetto). Timestamps and durations are in
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object format envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track assignment: pid 0 is the workflow-global track (states, scheduler
// decisions, estimator iterations); each job gets its own pid ≥ 1 with
// one thread row per task index, so the task execution plan reads like
// the paper's Figure 1 when opened in Perfetto.
const (
	workflowPID  = 0
	statesTID    = 0
	schedTID     = 1
	estimatorTID = 2
	evalpoolTID  = 3
	runMetaTID   = 4
)

// demandArgs renders a non-zero Event.Demand as a bytes-by-resource map,
// nil when the event moved no data. The keys are DemandResourceNames —
// the load-bearing half of the trace schema contract: offline
// calibration (internal/calibrate) reads these fields back to recover
// θ_X from recorded runs.
func demandArgs(ev Event) map[string]any {
	var out map[string]any
	for i, b := range ev.Demand {
		if b <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]any, NumDemandResources)
		}
		out[DemandResourceNames[i]] = b
	}
	return out
}

const usPerSec = 1e6

// WriteChromeTrace exports recorded events as Chrome trace_event JSON.
// Load the file in chrome://tracing or https://ui.perfetto.dev: task and
// sub-stage spans appear on per-job tracks, workflow states and
// scheduler allocation decisions on the workflow track.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return WriteChromeTraceAnnotated(w, events, nil)
}

// WriteChromeTraceAnnotated is WriteChromeTrace with derived analysis
// annotations merged into the matching spans' args. Annotations never
// replace recorded args: on a key collision the recorded value wins
// (see mergeArgs), so e.g. a sub-stage's "bytes" map and the run
// metadata the calibration parser depends on survive annotation.
func WriteChromeTraceAnnotated(w io.Writer, events []Event, ann *TraceAnnotations) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Deterministic pid per job: sorted job names, starting at 1.
	jobSet := make(map[string]bool)
	for _, ev := range events {
		// EvRunStart's Job is the workflow name, not a job: it renders on
		// the workflow track, not a per-job one.
		if ev.Job != "" && ev.Type != EvRunStart {
			jobSet[ev.Job] = true
		}
	}
	jobNames := make([]string, 0, len(jobSet))
	for j := range jobSet {
		jobNames = append(jobNames, j)
	}
	sort.Strings(jobNames)
	jobPID := make(map[string]int, len(jobNames))
	for i, j := range jobNames {
		jobPID[j] = i + 1
	}

	// Service requests (the prediction daemon's EvRequest/EvRequestPhase
	// spans) get their own process track after the jobs; each request's
	// ordinal is its thread row, so concurrent requests stack and a
	// request's phases nest inside its span like sub-stages in a task.
	servicePID := len(jobNames) + 1
	hasRequests := false
	for _, ev := range events {
		if ev.Type == EvRequest || ev.Type == EvRequestPhase {
			hasRequests = true
			break
		}
	}

	meta := func(pid int, name string) {
		trace.TraceEvents = append(trace.TraceEvents,
			chromeEvent{Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "process_sort_index", Phase: "M", PID: pid,
				Args: map[string]any{"sort_index": pid}},
		)
	}
	meta(workflowPID, "workflow")
	for _, j := range jobNames {
		meta(jobPID[j], "job "+j)
	}
	if hasRequests {
		meta(servicePID, "service")
	}

	for _, ev := range events {
		switch ev.Type {
		case EvTaskFinish:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s[%d]", ev.Stage, ev.Task), Cat: "task",
				Phase: "X", TS: ev.Time * usPerSec, Dur: ev.Dur * usPerSec,
				PID: jobPID[ev.Job], TID: ev.Task,
				Args: map[string]any{
					"bottleneck": ev.Resource, "node": int(ev.Value),
					"job": ev.Job, "stage": ev.Stage, "task": ev.Task,
				},
			})
		case EvSubStageFinish:
			args := map[string]any{
				"bottleneck": ev.Resource,
				"job":        ev.Job, "stage": ev.Stage, "task": ev.Task, "sub": ev.Sub,
			}
			if d := demandArgs(ev); d != nil {
				args["bytes"] = d
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: ev.Sub, Cat: "substage",
				Phase: "X", TS: ev.Time * usPerSec, Dur: ev.Dur * usPerSec,
				PID: jobPID[ev.Job], TID: ev.Task,
				Args: args,
			})
		case EvStageFinish:
			args := map[string]any{
				"job": ev.Job, "stage": ev.Stage, "bottleneck": ev.Resource,
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: ev.Job + "/" + ev.Stage, Cat: "stage",
				Phase: "X", TS: ev.Time * usPerSec, Dur: ev.Dur * usPerSec,
				PID: jobPID[ev.Job], TID: -1,
				Args: mergeArgs(args, ann.stageArgs(ev.Job, ev.Stage)),
			})
		case EvStateClose:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("state %d", ev.Seq), Cat: "state",
				Phase: "X", TS: ev.Time * usPerSec, Dur: ev.Dur * usPerSec,
				PID: workflowPID, TID: statesTID,
				Args: mergeArgs(map[string]any{
					"running": ev.Detail, "dominant": ev.Resource,
					"utilization": ev.Value,
				}, ann.stateArgs(ev.Seq)),
			})
		case EvAllocGrant:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "grant " + ev.Job, Cat: "sched",
				Phase: "i", TS: ev.Time * usPerSec,
				PID: workflowPID, TID: schedTID, Scope: "t",
				Args: map[string]any{
					"job": ev.Job, "granted": int(ev.Value), "policy": ev.Detail,
				},
			})
		case EvTaskRetry:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("retry %s[%d]", ev.Stage, ev.Task), Cat: "task",
				Phase: "i", TS: ev.Time * usPerSec,
				PID: jobPID[ev.Job], TID: ev.Task, Scope: "t",
			})
		case EvTaskPreempt:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("preempt %s[%d]", ev.Stage, ev.Task), Cat: "task",
				Phase: "i", TS: ev.Time * usPerSec,
				PID: jobPID[ev.Job], TID: ev.Task, Scope: "t",
			})
		case EvJobSubmit:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "submit " + ev.Job, Cat: "job",
				Phase: "i", TS: ev.Time * usPerSec,
				PID: jobPID[ev.Job], TID: -1, Scope: "p",
			})
		case EvEstimatorState:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("est state %d", ev.Seq), Cat: "estimator",
				Phase: "i", TS: ev.Time * usPerSec,
				PID: workflowPID, TID: estimatorTID, Scope: "t",
				Args: map[string]any{"running": ev.Detail},
			})
		case EvRunStart:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "run", Cat: "meta",
				Phase: "i", TS: ev.Time * usPerSec,
				PID: workflowPID, TID: runMetaTID, Scope: "g",
				Args: mergeArgs(map[string]any{
					"workflow": ev.Job,
					"nodes":    ev.Seq,
					"slots":    int(ev.Value),
					"skew":     ev.Detail == "skew",
				}, ann.runArgs()),
			})
		case EvPoolJob:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s[%d]", ev.Detail, ev.Seq), Cat: "evalpool",
				Phase: "X", TS: ev.Time * usPerSec, Dur: ev.Dur * usPerSec,
				PID: workflowPID, TID: evalpoolTID,
				Args: map[string]any{"index": ev.Seq, "failed": ev.Value > 0},
			})
		case EvRequest:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: ev.Detail, Cat: "request",
				Phase: "X", TS: ev.Time * usPerSec, Dur: ev.Dur * usPerSec,
				PID: servicePID, TID: ev.Seq,
				Args: map[string]any{"request": ev.Seq, "status": int(ev.Value)},
			})
		case EvRequestPhase:
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: ev.Detail, Cat: "reqphase",
				Phase: "X", TS: ev.Time * usPerSec, Dur: ev.Dur * usPerSec,
				PID: servicePID, TID: ev.Seq,
				Args: map[string]any{"request": ev.Seq, "phase": ev.Detail},
			})
		// EvTaskStart, EvStageStart, EvStateOpen and EvEstimatorIter are
		// redundant with the span events above in the Chrome view; they
		// stay in the raw stream for programmatic consumers.
		default:
		}
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(trace); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}
