package statemodel_test

import (
	"sync"
	"testing"

	"boedag/internal/dag"
	"boedag/internal/statemodel"
	"boedag/internal/synthdag"
)

// BenchmarkEstimate10kJobs is the scale target: one full estimate of
// the canonical synth-10k workflow (100 layers × 100 jobs) on a warm
// scratch. The first iteration pays the cold dist solves; steady state
// measures the heap-driven loop plus cache lookups.
func BenchmarkEstimate10kJobs(b *testing.B) {
	flow := synthdag.Generate(synthdag.Config{Layers: 100, Width: 100, FanIn: 3, Seed: 1})
	est := newEstimator(statemodel.NormalMode, false)
	scratch := statemodel.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateWith(scratch, flow); err != nil {
			b.Fatal(err)
		}
	}
}

// The re-estimate benchmarks model a progress indicator ticking a
// 1000-job run: two snapshots differing in a single job's task count,
// estimated alternately. Incremental keeps one warm scratch across
// ticks; the from-scratch variant is the reference path on the same
// scratch.
var reestimateFixture struct {
	once  sync.Once
	flow  *dag.Workflow
	snaps [2]statemodel.Snapshot
}

func reestimateSetup(b *testing.B) (*dag.Workflow, [2]statemodel.Snapshot) {
	f := &reestimateFixture
	f.once.Do(func() {
		f.flow = synthdag.Generate(synthdag.Config{Layers: 20, Width: 50, FanIn: 3, Seed: 1})
		plan, err := newEstimator(statemodel.NormalMode, false).Estimate(f.flow)
		if err != nil {
			b.Fatal(err)
		}
		f.snaps[0] = snapshotFromPlan(f.flow, plan, plan.Makespan/2)
		// The delta: one mapping job one task further along.
		second := statemodel.Snapshot{Elapsed: f.snaps[0].Elapsed,
			Jobs: make(map[string]statemodel.JobSnapshot, len(f.snaps[0].Jobs))}
		touched := false
		for id, js := range f.snaps[0].Jobs {
			if !touched && js.Phase == statemodel.JobMapping {
				js.TasksDone++
				touched = true
			}
			second.Jobs[id] = js
		}
		if !touched {
			b.Fatal("no mapping job at the snapshot instant")
		}
		f.snaps[1] = second
	})
	return f.flow, f.snaps
}

func benchReestimate(b *testing.B, disable bool) {
	flow, snaps := reestimateSetup(b)
	est := newEstimator(statemodel.NormalMode, disable)
	scratch := statemodel.NewScratch()
	if _, _, err := est.EstimateRemainingWith(scratch, flow, snaps[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := est.EstimateRemainingWith(scratch, flow, snaps[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalReestimate(b *testing.B) { benchReestimate(b, false) }

func BenchmarkFromScratchReestimate(b *testing.B) { benchReestimate(b, true) }
