package obs

import (
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	oneToTen := []float64{5, 3, 9, 1, 7, 2, 10, 8, 4, 6} // deliberately unsorted
	tests := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		{"empty", nil, 0.5, 0},
		{"single p50", []float64{7}, 0.5, 7},
		{"single p99", []float64{7}, 0.99, 7},
		{"ten p50", oneToTen, 0.50, 5},
		{"ten p90", oneToTen, 0.90, 9},
		{"ten p99", oneToTen, 0.99, 10},
		{"ten max", oneToTen, 1.0, 10},
		{"ten tiny q", oneToTen, 0.001, 1},
		{"pair p50", []float64{2, 4}, 0.5, 2},
		{"pair p90", []float64{2, 4}, 0.9, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Percentile(tt.samples, tt.q); got != tt.want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tt.samples, tt.q, got, tt.want)
			}
		})
	}
	// The input slice must survive unsorted.
	if oneToTen[0] != 5 || oneToTen[9] != 6 {
		t.Errorf("Percentile reordered its input: %v", oneToTen)
	}
}

func TestWriteSummaryQuantileLines(t *testing.T) {
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, Event{
			Type: EvTaskFinish, Job: "j1", Stage: "map", Task: i,
			Time: float64(i), Dur: float64(i + 1), // durations 1..10
		})
	}
	events = append(events,
		Event{Type: EvSubStageFinish, Job: "j1", Stage: "map", Sub: "read", Task: 0, Time: 0, Dur: 2},
		Event{Type: EvStageFinish, Job: "j1", Stage: "map", Time: 0, Dur: 11},
		Event{Type: EvStateClose, Seq: 1, Time: 0, Dur: 11, Detail: "j1/map", Resource: "cpu", Value: 1},
		Event{Type: EvTaskStart, Job: "j1", Stage: "map", Task: 0, Time: 0}, // instant: no quantile line
	)
	var sb strings.Builder
	WriteSummary(&sb, events)
	out := sb.String()

	if !strings.Contains(out, "duration quantiles:") {
		t.Fatalf("summary missing quantile section:\n%s", out)
	}
	// One line per span-shaped event family present in the stream.
	for _, want := range []string{
		"task_finish        n=10    p50=   5.0s p90=   9.0s p99=  10.0s",
		"substage_finish    n=1",
		"stage_finish       n=1",
		"state_close        n=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "task_start         n=") {
		t.Errorf("instant event grew a quantile line:\n%s", out)
	}
}
