package workload

import "boedag/internal/units"

// Default sizing shared by the micro-benchmarks (paper §V-A: 100 GB input
// for Word Count and TeraSort, 128 MB HDFS splits, one reduce wave on the
// eleven-node cluster).
const (
	microInput   = 100 * units.GB
	defaultSplit = 128 * units.MB
	microReduces = 66 // 6 cores × 11 nodes: one full reduce wave
)

// WordCount returns the profile of the HiBench Word Count job ("WC" in
// Table I): compression on, three replicas, CPU-bound. The map function
// tokenizes text (expensive per byte) and a combiner collapses the output
// to a small fraction of the input.
func WordCount(input units.Bytes) JobProfile {
	return JobProfile{
		Name:              "WC",
		InputBytes:        input,
		SplitBytes:        defaultSplit,
		ReduceTasks:       microReduces,
		MapSelectivity:    0.22, // combiner output / input
		ReduceSelectivity: 0.45, // counts per distinct word
		MapCPUCost:        3.0,  // tokenize + hash per byte
		ReduceCPUCost:     1.2,
		Compression:       Compression{Enabled: true, Ratio: 0.35, CPUOverhead: 0.4},
		Replicas:          3,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.08,
	}
}

// teraSort is the shared shape of all TeraSort variants: identity map
// (selectivity 1), identity reduce, modest CPU cost dominated by the
// comparator, large shuffles.
func teraSort(name string, input units.Bytes, replicas int, comp Compression) JobProfile {
	return JobProfile{
		Name:              name,
		InputBytes:        input,
		SplitBytes:        defaultSplit,
		ReduceTasks:       microReduces,
		MapSelectivity:    1.0,
		ReduceSelectivity: 1.0,
		MapCPUCost:        1.1, // partition + serialize
		ReduceCPUCost:     1.0, // merge + write
		Compression:       comp,
		Replicas:          replicas,
		SortBufferBytes:   100 * units.MB,
		SkewCV:            0.06,
	}
}

// TeraSort returns the "TS" row of Table I: no compression, one replica;
// the map stage is disk-bound and the shuffle network-bound.
func TeraSort(input units.Bytes) JobProfile {
	return teraSort("TS", input, 1, Compression{})
}

// TeraSortCompressed returns the "TSC" row of Table I: compression on,
// one replica, which shifts the bottleneck to CPU.
func TeraSortCompressed(input units.Bytes) JobProfile {
	return teraSort("TSC", input, 1,
		Compression{Enabled: true, Ratio: 0.4, CPUOverhead: 0.6})
}

// TeraSort2R returns the two-replica variant used by Table III's WC-TS2R
// workflow.
func TeraSort2R(input units.Bytes) JobProfile {
	return teraSort("TS2R", input, 2, Compression{})
}

// TeraSort3R returns the "TS3R" row of Table I: no compression, three
// replicas, which makes the reduce stage network-bound on HDFS writes.
func TeraSort3R(input units.Bytes) JobProfile {
	return teraSort("TS3R", input, 3, Compression{})
}

// MicroInput is the paper's 100 GB micro-benchmark input size.
func MicroInput() units.Bytes { return microInput }
