// Command boedagd is the prediction daemon: a long-running HTTP/JSON
// service answering DAG makespan queries with the state-based BOE
// estimator. Identical concurrent requests coalesce onto one estimator
// run; a bounded admission queue sheds overload with 503 + Retry-After;
// SIGTERM drains gracefully.
//
// Usage:
//
//	boedagd                               # serve :8080, paper cluster
//	boedagd -addr :9000 -cluster spec.json  # serve a calibrated cluster
//	boedagd -max-concurrent 16 -queue 64  # tighter admission control
//	boedagd -quiet                        # suppress per-request log lines
//	boedagd -debug-pprof                  # live profiles at /debug/pprof/
//	boedagd -cache-dir /var/lib/boedag    # warm-restart estimate cache
//
//	# a two-node fleet sharding PlanKey space over a consistent-hash ring:
//	boedagd -addr :8080 -node-id a -peers a=http://h1:8080,b=http://h2:8080
//	boedagd -addr :8080 -node-id b -peers a=http://h1:8080,b=http://h2:8080
//
//	curl -s localhost:8080/v1/estimate -d '{"workflow":"wc+ts"}'
//	curl -s localhost:8080/v1/estimate?stream=1 -d '{"workflow":"wc+ts"}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"boedag/internal/cliobs"
	"boedag/internal/cluster"
	"boedag/internal/fleet"
	"boedag/internal/obs"
	"boedag/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		clusterIn = flag.String("cluster", "", "serve this cluster spec JSON (e.g. from `calibrate -spec-out`) instead of the paper cluster")
		workers   = flag.Int("workers", 0, "evalpool fan-out per batch request (0 = GOMAXPROCS)")
		maxConc   = flag.Int("max-concurrent", 0, "max concurrently executing /v1 requests (0 = default 64)")
		queue     = flag.Int("queue", 0, "admission queue depth before 503 (0 = default 128)")
		maxBatch  = flag.Int("max-batch", 0, "max scenarios per batch request (0 = default 256)")
		timeout   = flag.Duration("timeout", 0, "per-request deadline ceiling (0 = default 30s)")
		drain     = flag.Duration("drain-timeout", 0, "graceful drain deadline on SIGTERM (0 = default 10s)")
		maxBody   = flag.Int64("max-body", 0, "request body limit in bytes (0 = default 1 MiB)")
		quiet     = flag.Bool("quiet", false, "suppress per-request log lines")
		debugProf = flag.Bool("debug-pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving mux (bypasses admission control)")
		cacheDir  = flag.String("cache-dir", "", "persist the estimate cache here: snapshot on drain, restore on boot")
		cacheMax  = flag.Int("cache-max", 0, "estimate cache capacity in entries before LRU eviction (0 = default 65536, negative = unbounded)")
		nodeID    = flag.String("node-id", "", "this node's fleet identity (requires -peers)")
		peersFlag = flag.String("peers", "", "fleet membership as id=url pairs, e.g. a=http://h1:8080,b=http://h2:8080 (requires -node-id)")
	)
	var ob cliobs.Flags
	ob.Register(nil)
	flag.Parse()

	observe, err := ob.Options()
	if err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Workers:         *workers,
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queue,
		MaxBatch:        *maxBatch,
		RequestTimeout:  *timeout,
		DrainTimeout:    *drain,
		MaxBodyBytes:    *maxBody,
		EnablePprof:     *debugProf,
		CacheDir:        *cacheDir,
		CacheMaxEntries: *cacheMax,
		// Share the cliobs registry when one exists so -metrics-out /
		// -otlp-out snapshots written at shutdown include the server's
		// runtime counters.
		Observe: obs.Options{Metrics: ob.Registry()},
	}
	if *clusterIn != "" {
		spec, err := cluster.ReadSpecFile(*clusterIn)
		if err != nil {
			fatal(err)
		}
		cfg.Spec = spec
	}

	// Structured request logging: the server emits one EvRequest event per
	// served request into a stream; a subscriber prints them. The stream
	// tees with any tracer the observability flags configured.
	var logDone chan struct{}
	if !*quiet {
		stream := obs.NewStream()
		sub := stream.Subscribe(0)
		logDone = make(chan struct{})
		go func() {
			defer close(logDone)
			for ev := range sub.Events() {
				if ev.Type != obs.EvRequest {
					continue
				}
				fmt.Printf("%s %s %d %.1fms\n",
					time.Now().Format(time.RFC3339), ev.Detail, int(ev.Value), ev.Dur*1000)
			}
		}()
		cfg.Observe.Tracer = obs.Tee(observe.Tracer, stream)
		defer func() {
			stream.Close()
			<-logDone
		}()
	} else {
		cfg.Observe.Tracer = observe.Tracer
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}

	// SIGTERM/SIGINT cancels the serving context; Serve then drains
	// in-flight requests (readiness flips, new requests get 503) before
	// closing the listener.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if (*nodeID == "") != (*peersFlag == "") {
		fatal(fmt.Errorf("-node-id and -peers must be set together"))
	}
	if *peersFlag != "" {
		dir, peers, err := parsePeers(*peersFlag)
		if err != nil {
			fatal(err)
		}
		// No Observe: NewNode defaults to the server's registry, so the
		// fleet_* counters land in /metrics (and in any -metrics-out
		// snapshot, which shares that registry).
		node, err := fleet.NewNode(srv, fleet.Config{
			NodeID:    *nodeID,
			Peers:     peers,
			Directory: dir,
		})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("boedagd %s listening on %s, fleet of %d\n", *nodeID, *addr, len(peers))
		if err := srv.ServeWith(ctx, ln, node.Handler()); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("boedagd listening on %s\n", *addr)
		if err := srv.ListenAndServe(ctx, *addr); err != nil {
			fatal(err)
		}
	}
	fmt.Println("boedagd drained cleanly")
	if err := ob.Finish(); err != nil {
		fatal(err)
	}
}

// parsePeers turns "a=http://h1:8080,b=http://h2:8080" into a fleet
// directory plus the sorted membership list.
func parsePeers(s string) (fleet.StaticDirectory, []string, error) {
	dir := fleet.StaticDirectory{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return nil, nil, fmt.Errorf("bad -peers entry %q: want id=url", pair)
		}
		if _, dup := dir[id]; dup {
			return nil, nil, fmt.Errorf("duplicate -peers node ID %q", id)
		}
		dir[id] = strings.TrimRight(url, "/")
	}
	if len(dir) == 0 {
		return nil, nil, fmt.Errorf("empty -peers")
	}
	peers := make([]string, 0, len(dir))
	for id := range dir {
		peers = append(peers, id)
	}
	sort.Strings(peers)
	return dir, peers, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boedagd:", err)
	os.Exit(1)
}
