package explain

import "boedag/internal/obs"

// TraceAnnotations renders the explanation as exporter annotations:
// every stage on the critical path gets args.critical=true with its
// critical seconds and dominant resource, every state gets its dominant
// tag and slot share, and the run carries the overall bottleneck plus
// the best-paying θ parameter. Merge semantics are the exporters'
// (recorded args always win, see obs.WriteChromeTraceAnnotated and
// obs.OTLPOptions.Annotations).
func (e *Explanation) TraceAnnotations() *obs.TraceAnnotations {
	a := &obs.TraceAnnotations{
		Stage: make(map[string]map[string]any),
		State: make(map[int]map[string]any, len(e.States)),
		Run:   make(map[string]any, 3),
	}
	for _, iv := range e.CriticalPath {
		if iv.Stage == ResourceSubmit {
			continue
		}
		key := iv.Job + "/" + iv.Stage
		m := a.Stage[key]
		if m == nil {
			m = map[string]any{"critical": true, "critical_s": 0.0, "critical_resource": iv.Resource}
			a.Stage[key] = m
		}
		m["critical_s"] = m["critical_s"].(float64) + iv.DurationS
		// The resource of the stage's longest critical piece wins the tag.
		if best, ok := m["critical_piece_s"].(float64); !ok || iv.DurationS > best {
			m["critical_piece_s"] = iv.DurationS
			m["critical_resource"] = iv.Resource
		}
	}
	for _, m := range a.Stage {
		delete(m, "critical_piece_s")
	}
	for _, st := range e.States {
		a.State[st.Seq] = map[string]any{
			"explain_dominant": st.Dominant,
			"slot_share":       st.SlotShare,
		}
	}
	var top *ResourceShare
	for i := range e.Resources {
		if top == nil || e.Resources[i].Dur > top.Dur {
			top = &e.Resources[i]
		}
	}
	if top != nil {
		a.Run["bottleneck"] = top.Resource
		a.Run["bottleneck_fraction"] = top.Fraction
	}
	for _, s := range e.Sensitivity {
		if s.Best {
			a.Run["best_parameter"] = s.Parameter
			a.Run["best_delta_s"] = s.DeltaS
		}
	}
	return a
}
