// Package skew implements the skew-aware extensions the paper's
// conclusion names as follow-up work: generators for realistically skewed
// partition-size distributions (Zipfian reduce keys, power-law graph
// degrees) and an empirical stage-duration predictor that replaces the
// fitted-normal straggler correction of Alg2-Normal with the measured
// task-time distribution itself.
//
// The central quantity is the makespan of N tasks executed by Δ parallel
// slots when task durations are drawn from a distribution F. The
// statemodel's NormalMode approximates it with E[max of Δ normal draws]
// on the final wave; EmpiricalStageDuration computes it directly by
// list-scheduling the drawn durations — exact for the simulator's
// greedy-slot execution model, and distribution-free.
package skew

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"boedag/internal/units"
)

// Zipf draws n partition weights following a Zipf(s) law over k distinct
// keys hashed into the n partitions, normalized to sum to n — the shape
// of reduce-side skew under power-law key popularity (the paper's future
// work names exactly this regime). Determinism follows the seed.
func Zipf(n int, s float64, keys int, seed int64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("skew: need at least one partition, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("skew: zipf exponent must be non-negative, got %g", s)
	}
	if keys < n {
		keys = n * 16 // enough keys that every partition gets some mass
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, n)
	// Key i (1-based) carries mass i^-s; keys land on partitions by a
	// pseudo-random hash.
	for i := 1; i <= keys; i++ {
		mass := math.Pow(float64(i), -s)
		weights[rng.Intn(n)] += mass
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("skew: degenerate zipf mass")
	}
	scale := float64(n) / total
	for i := range weights {
		weights[i] *= scale
	}
	return weights, nil
}

// CV returns the coefficient of variation of the weights (σ/μ) — the
// knob the simulator's SkewCV consumes, so Zipf output can calibrate a
// workload profile.
func CV(weights []float64) float64 {
	n := len(weights)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, w := range weights {
		mean += w
	}
	mean /= float64(n)
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, w := range weights {
		d := w - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(n-1)) / mean
}

// EmpiricalStageDuration computes the wall-clock duration of a stage with
// the given per-task durations executed by `slots` greedy parallel slots
// (each slot takes the next task as it frees — exactly the simulator's
// and YARN's behaviour). It is the distribution-free replacement for the
// wave arithmetic: correct for any skew, including multimodal ones where
// the normal fit of Alg2-Normal breaks down.
func EmpiricalStageDuration(tasks []time.Duration, slots int) time.Duration {
	if len(tasks) == 0 || slots <= 0 {
		return 0
	}
	if slots > len(tasks) {
		slots = len(tasks)
	}
	// Greedy list scheduling with a flat slot array: with slot counts in
	// the hundreds a linear min-scan beats heap bookkeeping.
	free := make([]float64, slots)
	for _, task := range tasks {
		minIdx := 0
		for i := 1; i < slots; i++ {
			if free[i] < free[minIdx] {
				minIdx = i
			}
		}
		free[minIdx] += task.Seconds()
	}
	makespan := 0.0
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	return units.Seconds(makespan)
}

// LPTStageDuration is EmpiricalStageDuration with longest-processing-time
// ordering — the lower envelope a skew-aware scheduler could reach by
// launching the largest partitions first. The gap between the two bounds
// quantifies how much a straggler-aware scheduler could recover, the
// optimization the paper's future work points at.
func LPTStageDuration(tasks []time.Duration, slots int) time.Duration {
	sorted := append([]time.Duration(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	return EmpiricalStageDuration(sorted, slots)
}

// Quantiles summarizes a set of task durations at the given fractions,
// interpolating between order statistics.
func Quantiles(tasks []time.Duration, qs []float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	n := len(tasks)
	if n == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		switch {
		case q <= 0:
			out[i] = sorted[0]
		case q >= 1:
			out[i] = sorted[n-1]
		default:
			pos := q * float64(n-1)
			lo := int(pos)
			frac := pos - float64(lo)
			if lo+1 >= n {
				out[i] = sorted[n-1]
			} else {
				out[i] = sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
			}
		}
	}
	return out
}

// StragglerIndex is the ratio of the p99 to the median task duration — a
// one-number skew severity indicator for reports.
func StragglerIndex(tasks []time.Duration) float64 {
	if len(tasks) == 0 {
		return 0
	}
	qs := Quantiles(tasks, []float64{0.5, 0.99})
	if qs[0] <= 0 {
		return 0
	}
	return qs[1].Seconds() / qs[0].Seconds()
}
