package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"boedag/internal/obs"
	"boedag/internal/serve"
)

// ForwardedHeader marks a request as already forwarded once. A node
// receiving it always serves locally — forwarding is single-hop by
// construction, so a stale or disagreeing ring can never loop a request.
const ForwardedHeader = "X-Boedag-Forwarded"

// Directory resolves node IDs to base URLs ("http://host:port"). The
// fleettest harness backs it with a mutable map so a restarted node can
// come back under a fresh address; boedagd uses a StaticDirectory parsed
// from -peers.
type Directory interface {
	URL(nodeID string) (string, bool)
}

// StaticDirectory is a fixed nodeID → base URL map.
type StaticDirectory map[string]string

// URL implements Directory.
func (d StaticDirectory) URL(nodeID string) (string, bool) {
	u, ok := d[nodeID]
	return u, ok
}

// MutableDirectory is a Directory whose entries can change at runtime —
// the seam that lets a test (or a future membership protocol) move a node
// to a new address without rebuilding the fleet.
type MutableDirectory struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewMutableDirectory returns an empty mutable directory.
func NewMutableDirectory() *MutableDirectory {
	return &MutableDirectory{m: make(map[string]string)}
}

// Set maps nodeID to baseURL.
func (d *MutableDirectory) Set(nodeID, baseURL string) {
	d.mu.Lock()
	d.m[nodeID] = baseURL
	d.mu.Unlock()
}

// URL implements Directory.
func (d *MutableDirectory) URL(nodeID string) (string, bool) {
	d.mu.RLock()
	u, ok := d.m[nodeID]
	d.mu.RUnlock()
	return u, ok
}

// Config describes one fleet node.
type Config struct {
	// NodeID is this node's identity on the ring (required).
	NodeID string
	// Peers are all fleet node IDs, this node included (required). Order
	// does not matter; every replica must agree on the set.
	Peers []string
	// Directory resolves peer IDs to URLs (required for fleets larger
	// than one node).
	Directory Directory
	// VirtualNodes is the ring points per node (DefaultVirtualNodes
	// when <= 0).
	VirtualNodes int
	// MaxHops bounds how many owners are tried before the node computes
	// locally: the owner plus MaxHops-1 fallbacks (default 2).
	MaxHops int
	// RetryBackoff is the pause before each retry after a failed forward
	// (default 25ms).
	RetryBackoff time.Duration
	// Client issues forwarded requests (default: a dedicated client with
	// a 30s timeout).
	Client *http.Client
	// Observe supplies the metrics registry for the fleet counters
	// (default: the wrapped server's own registry, so fleet_* counters
	// show up in its /metrics).
	Observe obs.Options
}

func (c Config) withDefaults() (Config, error) {
	if c.NodeID == "" {
		return c, fmt.Errorf("fleet: NodeID is required")
	}
	if len(c.Peers) == 0 {
		return c, fmt.Errorf("fleet: Peers is required")
	}
	found := false
	for _, p := range c.Peers {
		if p == c.NodeID {
			found = true
			break
		}
	}
	if !found {
		return c, fmt.Errorf("fleet: NodeID %q is not in Peers", c.NodeID)
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c, nil
}

// Node fronts one serve.Server with shard routing: requests whose shard
// key this node owns (and every non-sharded request) go to the local
// server; the rest are proxied to the owning peer, responses copied
// byte-for-byte so a fleet answer is indistinguishable from a single-node
// answer.
type Node struct {
	cfg  Config
	ring *Ring
	srv  *serve.Server

	localServed, forwarded, received  *obs.Counter
	forwardRetries, fallbackLocal     *obs.Counter
	forwardErrors, unroutableRequests *obs.Counter
}

// NewNode wraps srv in fleet routing.
func NewNode(srv *serve.Server, cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Observe.Metrics == nil {
		cfg.Observe.Metrics = srv.Metrics()
	}
	peers := append([]string(nil), cfg.Peers...)
	sort.Strings(peers) // ring identity is the set, not the flag order
	ring, err := NewRing(peers, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	reg := cfg.Observe.Metrics
	n := &Node{
		cfg:  cfg,
		ring: ring,
		srv:  srv,

		localServed:        reg.Counter("fleet_local_served"),
		forwarded:          reg.Counter("fleet_forwarded"),
		received:           reg.Counter("fleet_received"),
		forwardRetries:     reg.Counter("fleet_forward_retries"),
		fallbackLocal:      reg.Counter("fleet_fallback_local"),
		forwardErrors:      reg.Counter("fleet_forward_errors"),
		unroutableRequests: reg.Counter("fleet_unroutable"),
	}
	obs.SetMetricHelp("fleet_local_served", "Sharded requests this node owned and served locally.")
	obs.SetMetricHelp("fleet_forwarded", "Sharded requests proxied to their owning peer.")
	obs.SetMetricHelp("fleet_received", "Forwarded requests received from peers (hop header present).")
	obs.SetMetricHelp("fleet_forward_retries", "Forward attempts retried against a fallback owner.")
	obs.SetMetricHelp("fleet_fallback_local", "Sharded requests computed locally because every owner was unreachable.")
	obs.SetMetricHelp("fleet_forward_errors", "Forward attempts that failed at the transport level.")
	obs.SetMetricHelp("fleet_unroutable", "Sharded-path requests served locally because no shard key could be derived.")
	return n, nil
}

// Ring exposes the node's ring (read-only) for tests and tooling.
func (n *Node) Ring() *Ring { return n.ring }

// Metrics returns the registry holding the fleet_* counters.
func (n *Node) Metrics() *obs.Registry { return n.cfg.Observe.Metrics }

// Handler returns the fleet front end: shard routing over the wrapped
// server's own handler.
func (n *Node) Handler() http.Handler {
	local := n.srv.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !sharded(r) {
			local.ServeHTTP(w, r)
			return
		}
		if r.Header.Get(ForwardedHeader) != "" {
			// Already forwarded once: serve here no matter what our ring
			// says, so disagreement can never loop.
			n.received.Inc()
			local.ServeHTTP(w, r)
			return
		}
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		key, ok := n.srv.RouteKey(r.URL.Path, body)
		if !ok {
			// No shard key — invalid bodies answer the same 4xx everywhere.
			n.unroutableRequests.Inc()
			n.serveLocal(local, w, r, body)
			return
		}
		owners := n.ring.Owners(key, n.cfg.MaxHops)
		for i, owner := range owners {
			if owner == n.cfg.NodeID {
				n.localServed.Inc()
				n.serveLocal(local, w, r, body)
				return
			}
			if i > 0 {
				n.forwardRetries.Inc()
				time.Sleep(n.cfg.RetryBackoff)
			}
			if n.forward(w, r, owner, body) {
				n.forwarded.Inc()
				return
			}
			n.forwardErrors.Inc()
		}
		// Every owner unreachable: degrade to local compute. Slower and
		// cache-cold, but the request still gets its answer.
		n.fallbackLocal.Inc()
		n.serveLocal(local, w, r, body)
	})
}

// sharded reports whether the request routes by shard key.
func sharded(r *http.Request) bool {
	if r.Method != http.MethodPost {
		return false
	}
	switch r.URL.Path {
	case "/v1/estimate", "/v1/explain", "/v1/schedule":
		return true
	}
	return false
}

// serveLocal replays the buffered body into the wrapped server.
func (n *Node) serveLocal(local http.Handler, w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	local.ServeHTTP(w, r2)
}

// forward proxies the request to the peer and streams the response back
// verbatim. Returns false — retry — only when no response was produced
// (unresolvable peer or transport failure before response headers); once
// a peer answers, its response is authoritative, whatever the status.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, peer string, body []byte) bool {
	base, ok := n.cfg.Directory.URL(peer)
	if !ok {
		return false
	}
	url := base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardedHeader, n.cfg.NodeID)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	copyFlushing(w, resp.Body)
	return true
}

// copyFlushing relays the peer's response body, flushing after every read
// so SSE frames stream through the proxy instead of buffering until EOF.
func copyFlushing(w http.ResponseWriter, r io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		nr, err := r.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
