package hibench

import (
	"strings"
	"testing"

	"boedag/internal/units"
)

func TestKMeansStructure(t *testing.T) {
	w := KMeans(KMeansConfig{InputBytes: 10 * units.GB, Iterations: 4})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 5 {
		t.Fatalf("KMeans(4 iters) has %d jobs, want 5 (4 iters + classify)", len(w.Jobs))
	}
	// Iterations chain: each depends on the previous one.
	for i := 1; i < 4; i++ {
		j := w.Jobs[i]
		if len(j.Deps) != 1 || j.Deps[0] != w.Jobs[i-1].ID {
			t.Errorf("iteration %d deps = %v", i+1, j.Deps)
		}
	}
	last := w.Jobs[len(w.Jobs)-1]
	if last.ID != "classify" {
		t.Errorf("last job = %q, want classify", last.ID)
	}
	if last.Profile.ReduceTasks != 0 {
		t.Error("classify should be map-only")
	}
	// Every iteration scans the full input with a heavy map.
	for _, j := range w.Jobs[:4] {
		if j.Profile.InputBytes != 10*units.GB {
			t.Errorf("%s input = %v, want full 10 GB scan", j.ID, j.Profile.InputBytes)
		}
		if j.Profile.MapCPUCost < 3 {
			t.Errorf("%s map CPU cost %v — KMeans iterations are CPU-bound", j.ID, j.Profile.MapCPUCost)
		}
		if j.Profile.MapSelectivity > 0.01 {
			t.Errorf("%s selectivity %v — combiner should collapse output", j.ID, j.Profile.MapSelectivity)
		}
	}
}

func TestKMeansDefaults(t *testing.T) {
	cfg := DefaultKMeans()
	if cfg.InputBytes != 20*units.GB || cfg.Iterations != 5 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Zero config falls back to the defaults.
	w := KMeans(KMeansConfig{})
	if len(w.Jobs) != 6 {
		t.Errorf("KMeans(zero cfg) has %d jobs, want 6", len(w.Jobs))
	}
	if w.Name != "KM" {
		t.Errorf("name = %q", w.Name)
	}
}

func TestPageRankStructure(t *testing.T) {
	w := PageRank(PageRankConfig{EdgeBytes: 4 * units.GB, Iterations: 3})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 4 {
		t.Fatalf("PageRank(3 iters) has %d jobs, want 4 (init + 3)", len(w.Jobs))
	}
	if w.Jobs[0].ID != "init" || len(w.Jobs[0].Deps) != 0 {
		t.Errorf("first job = %+v, want dependency-free init", w.Jobs[0])
	}
	for i := 1; i < len(w.Jobs); i++ {
		if len(w.Jobs[i].Deps) != 1 {
			t.Errorf("job %s deps = %v, want exactly one", w.Jobs[i].ID, w.Jobs[i].Deps)
		}
	}
	// PageRank iterations shuffle the full edge volume (selectivity ≈ 1)
	// with heavy key skew.
	for _, j := range w.Jobs[1:] {
		if j.Profile.MapSelectivity < 0.9 {
			t.Errorf("%s selectivity %v — PageRank shuffles everything", j.ID, j.Profile.MapSelectivity)
		}
		if j.Profile.SkewCV < 0.2 {
			t.Errorf("%s skew %v — power-law degrees should skew partitions", j.ID, j.Profile.SkewCV)
		}
		if !strings.HasPrefix(j.Profile.Name, "PR-") {
			t.Errorf("%s profile name = %q", j.ID, j.Profile.Name)
		}
	}
}

func TestPageRankDefaults(t *testing.T) {
	cfg := DefaultPageRank()
	if cfg.EdgeBytes != 5*units.GB || cfg.Iterations != 3 {
		t.Errorf("defaults = %+v", cfg)
	}
	w := PageRank(PageRankConfig{})
	if len(w.Jobs) != 4 {
		t.Errorf("PageRank(zero cfg) has %d jobs, want 4", len(w.Jobs))
	}
}

func TestWorkloadContrast(t *testing.T) {
	// The two HiBench workloads must sit on opposite ends of the
	// CPU-vs-shuffle spectrum — that is why the paper pairs both with the
	// micro jobs.
	km := KMeans(DefaultKMeans())
	pr := PageRank(DefaultPageRank())
	kmIter := km.Jobs[0].Profile
	prIter := pr.Jobs[1].Profile
	if kmIter.MapCPUCost <= prIter.MapCPUCost {
		t.Error("KMeans iterations should be more CPU-intensive than PageRank's")
	}
	if kmIter.MapOutputBytes() >= prIter.MapOutputBytes() {
		t.Error("PageRank iterations should shuffle far more than KMeans'")
	}
}

func TestSortProfile(t *testing.T) {
	p := Sort(0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.InputBytes != 30*units.GB {
		t.Errorf("default Sort input = %v", p.InputBytes)
	}
	if p.MapSelectivity != 1.0 || p.ReduceSelectivity != 1.0 {
		t.Error("Sort should be an identity shuffle")
	}
	if !p.Compression.Enabled {
		t.Error("HiBench Sort compresses by default")
	}
	custom := Sort(5 * units.GB)
	if custom.InputBytes != 5*units.GB {
		t.Errorf("explicit input ignored: %v", custom.InputBytes)
	}
}

func TestAggregationProfile(t *testing.T) {
	p := Aggregation(0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MapSelectivity > 0.1 {
		t.Error("Aggregation's combiner should collapse the map output")
	}
	if p.MapCPUCost <= 1.5 {
		t.Error("Aggregation maps are scan+parse heavy")
	}
}

func TestJoinWorkflow(t *testing.T) {
	w := Join(0, 0)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2 {
		t.Fatalf("Join has %d jobs, want 2 (join + agg)", len(w.Jobs))
	}
	if w.Jobs[1].Deps[0] != "join" {
		t.Errorf("agg deps = %v", w.Jobs[1].Deps)
	}
	// The aggregation consumes the join's output.
	if w.Jobs[1].Profile.InputBytes != w.Jobs[0].Profile.OutputBytes() {
		t.Error("join output does not feed the aggregation")
	}
	if w.Jobs[0].Profile.SkewCV < 0.15 {
		t.Error("join keys should be skewed")
	}
}

func TestBayesWorkflow(t *testing.T) {
	w := Bayes(BayesConfig{})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 3 {
		t.Fatalf("Bayes has %d jobs, want 3", len(w.Jobs))
	}
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "terms" || order[2] != "normalize" {
		t.Errorf("order = %v", order)
	}
	// The chain shrinks: each job's input is smaller than the previous.
	for i := 1; i < 3; i++ {
		if w.Jobs[i].Profile.InputBytes >= w.Jobs[i-1].Profile.InputBytes {
			t.Errorf("job %d input did not shrink", i)
		}
	}
	// Class count bounds the weight reducers.
	small := Bayes(BayesConfig{InputBytes: units.GB, Classes: 5})
	if got := small.Jobs[1].Profile.ReduceTasks; got != 5 {
		t.Errorf("weights reducers = %d, want 5 (class-bound)", got)
	}
}
