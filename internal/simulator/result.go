// Package simulator is the ground-truth substrate of this reproduction: a
// discrete-event simulator of a MapReduce cluster executing a DAG
// workflow. It stands in for the paper's eleven-node Hadoop testbed (see
// DESIGN.md §2). Tasks progress through pipelined sub-stages at rates set
// by progressive-filling max-min fair sharing of the cluster's disk,
// network and CPU pools; containers are granted by a DRF scheduler; task
// sizes carry configurable skew. Every model in this repository is
// evaluated against the task, stage and workflow times measured here.
package simulator

import (
	"fmt"
	"sort"
	"time"

	"boedag/internal/cluster"
	"boedag/internal/workload"
)

// TaskRecord is the measured execution of one task.
type TaskRecord struct {
	Job   string
	Stage workload.Stage
	// Index is the task's ordinal within its stage.
	Index int
	// Start and End are offsets from workflow submission.
	Start, End time.Duration
	// SubStages holds the measured duration of each pipelined sub-stage.
	SubStages []time.Duration
	// Bottleneck is the resource the task spent the most time bound by.
	Bottleneck cluster.Resource
	// SizeFactor is the skew multiplier applied to this task's data.
	SizeFactor float64
	// Retries counts failed attempts re-executed before this record's
	// successful run.
	Retries int
}

// Duration is the task's total execution time.
func (t TaskRecord) Duration() time.Duration { return t.End - t.Start }

// StageRecord aggregates the measured execution of one job stage.
type StageRecord struct {
	Job        string
	Stage      workload.Stage
	Start, End time.Duration
	// TaskTimes are the durations of the stage's tasks, in task order.
	TaskTimes []time.Duration
	// MaxParallelism is the peak number of this stage's tasks running at
	// once — the observed degree of parallelism.
	MaxParallelism int
	// Bottleneck is the stage's dominant task bottleneck.
	Bottleneck cluster.Resource
}

// Duration is the stage's wall-clock span.
func (s StageRecord) Duration() time.Duration { return s.End - s.Start }

// MedianTaskTime returns the median task duration (zero if no tasks).
func (s StageRecord) MedianTaskTime() time.Duration {
	n := len(s.TaskTimes)
	if n == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.TaskTimes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MeanTaskTime returns the mean task duration (zero if no tasks).
func (s StageRecord) MeanTaskTime() time.Duration {
	if len(s.TaskTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range s.TaskTimes {
		sum += t
	}
	return sum / time.Duration(len(s.TaskTimes))
}

// StateRecord is one workflow state (paper §IV-A1): a maximal interval
// during which no job transitions between map and reduce stages, so every
// job's degree of parallelism is constant.
type StateRecord struct {
	// Seq numbers states from 1, as in the paper's figures.
	Seq        int
	Start, End time.Duration
	// Running lists "job/stage" labels active during the state, sorted.
	Running []string
	// Utilization is the time-averaged cluster utilization of each
	// resource class during the state.
	Utilization [cluster.NumResources]float64
}

// DominantResource is the resource class with the highest average
// utilization during the state — the state's system bottleneck in the
// paper's sense.
func (s StateRecord) DominantResource() cluster.Resource {
	best := cluster.CPU
	for _, r := range cluster.Resources() {
		if s.Utilization[r] > s.Utilization[best] {
			best = r
		}
	}
	return best
}

// Duration is the state's wall-clock span.
func (s StateRecord) Duration() time.Duration { return s.End - s.Start }

// Result is everything a simulation run measured.
type Result struct {
	Workflow string
	Makespan time.Duration
	Tasks    []TaskRecord
	Stages   []StageRecord
	States   []StateRecord
	// Preemptions counts running tasks evicted by the hierarchical
	// scheduler's reclaim phase (always zero under flat policies).
	Preemptions int
}

// TotalRetries sums failed attempts across all tasks.
func (r *Result) TotalRetries() int {
	n := 0
	for _, t := range r.Tasks {
		n += t.Retries
	}
	return n
}

// StageOf returns the record of (job, stage), or nil if the stage never
// ran (e.g. a map-only job's reduce).
func (r *Result) StageOf(job string, s workload.Stage) *StageRecord {
	for i := range r.Stages {
		if r.Stages[i].Job == job && r.Stages[i].Stage == s {
			return &r.Stages[i]
		}
	}
	return nil
}

// TasksOf returns the task records of (job, stage) in task order.
func (r *Result) TasksOf(job string, s workload.Stage) []TaskRecord {
	var out []TaskRecord
	for _, t := range r.Tasks {
		if t.Job == job && t.Stage == s {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// JobSpan returns the start and end of a job across both stages.
func (r *Result) JobSpan(job string) (start, end time.Duration, ok bool) {
	first := true
	for _, s := range r.Stages {
		if s.Job != job {
			continue
		}
		if first || s.Start < start {
			start = s.Start
		}
		if first || s.End > end {
			end = s.End
		}
		first = false
	}
	return start, end, !first
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s: makespan %.1fs, %d tasks, %d stages, %d states",
		r.Workflow, r.Makespan.Seconds(), len(r.Tasks), len(r.Stages), len(r.States))
}
