package simulator

import (
	"reflect"
	"strings"
	"testing"

	"boedag/internal/dag"
	"boedag/internal/sched"
	"boedag/internal/units"
	"boedag/internal/workload"
)

// The simulator executes hierarchical scheduling with the same pure
// allocator the estimator models. Beyond the shared contract (a hierarchy
// that declares nothing is flat scheduling, byte for byte), the simulator
// owns the one effect the fluid estimator cannot express: reclaim
// evictions preempt running tasks, which restart from scratch.

func hierPair() *dag.Workflow {
	a := workload.WordCount(10 * units.GB)
	a.Name = "A"
	b := workload.TeraSort(10 * units.GB)
	b.Name = "B"
	return &dag.Workflow{Name: "pair", Jobs: []dag.Job{
		{ID: "A", Profile: a},
		{ID: "B", Profile: b},
	}}
}

func TestSimulatorNeuteredHierarchyMatchesFlat(t *testing.T) {
	flow := hierPair()
	flat := run(t, flow, Options{Seed: 3})

	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "qa", Weight: 1},
		{Name: "qb", Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	hier := run(t, flow, Options{
		Seed:      3,
		Hierarchy: h,
		Queues:    map[string]string{"A": "qa", "B": "qb"},
	})
	if hier.Preemptions != 0 {
		t.Fatalf("neutered hierarchy preempted %d tasks", hier.Preemptions)
	}
	if !reflect.DeepEqual(flat, hier) {
		t.Fatalf("neutered hierarchy changed the run: flat %v, hier %v",
			flat.Makespan, hier.Makespan)
	}
}

func TestSimulatorHierarchyLimitCapsParallelism(t *testing.T) {
	flow := hierPair()
	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "capped", Limit: sched.QueueLimit{Slots: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, flow, Options{
		Seed:      3,
		Hierarchy: h,
		Queues:    map[string]string{"A": "capped"},
	})
	for _, st := range res.Stages {
		if st.Job == "A" && st.MaxParallelism > 4 {
			t.Fatalf("A %s peaked at %d > limit 4", st.Stage, st.MaxParallelism)
		}
	}
}

// TestSimulatorHierarchyReclaimPreempts builds the canonical reclaim
// scenario: a best-effort job absorbs the whole (slot-limited) cluster
// while the guaranteed queue is empty; when a production job lands in
// the quota'd queue, reclaim must evict running best-effort tasks — and
// every task of both jobs must still complete exactly once.
func TestSimulatorHierarchyReclaimPreempts(t *testing.T) {
	be := workload.WordCount(20 * units.GB)
	be.Name = "be"
	tiny := workload.WordCount(1 * units.GB)
	tiny.Name = "tiny"
	prod := workload.WordCount(10 * units.GB)
	prod.Name = "prod"
	flow := &dag.Workflow{Name: "reclaim", Jobs: []dag.Job{
		{ID: "be", Profile: be},
		{ID: "tiny", Profile: tiny},
		{ID: "prod", Profile: prod, Deps: []string{"tiny"}},
	}}
	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "guaranteed", Quota: sched.QueueLimit{Slots: 6}},
		{Name: "best-effort"},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Seed:      3,
		SlotLimit: 8,
		Hierarchy: h,
		Queues:    map[string]string{"be": "best-effort", "prod": "guaranteed", "tiny": "guaranteed"},
	}
	res := run(t, flow, opt)
	if res.Preemptions == 0 {
		t.Fatal("quota reclaim over a saturated pool evicted nothing")
	}
	for _, j := range flow.Jobs {
		if got := len(res.TasksOf(j.ID, workload.Map)); got != j.Profile.MapTasks() {
			t.Fatalf("%s: %d map tasks recorded, want %d", j.ID, got, j.Profile.MapTasks())
		}
		if got := len(res.TasksOf(j.ID, workload.Reduce)); got != j.Profile.ReduceTasks {
			t.Fatalf("%s: %d reduce tasks recorded, want %d", j.ID, got, j.Profile.ReduceTasks)
		}
	}
	// Determinism holds through preemption.
	again := run(t, flow, opt)
	if !reflect.DeepEqual(res, again) {
		t.Fatal("preempting run is not deterministic")
	}
	// The same flow without the hierarchy never preempts.
	flat := run(t, flow, Options{Seed: 3, SlotLimit: 8})
	if flat.Preemptions != 0 {
		t.Fatalf("flat run reported %d preemptions", flat.Preemptions)
	}
}

func TestSimulatorHierarchyGangDeadlockDetected(t *testing.T) {
	flow := dag.Single(workload.WordCount(5 * units.GB))
	h, err := sched.NewHierarchy([]sched.QueueSpec{
		{Name: "narrow", Limit: sched.QueueLimit{Slots: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(spec(), Options{
		Hierarchy: h,
		Queues:    map[string]string{flow.Jobs[0].ID: "narrow"},
		Gangs:     map[string]int{flow.Jobs[0].ID: 5},
	}).Run(flow)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("gang wider than its queue limit: err = %v, want deadlock", err)
	}
}
