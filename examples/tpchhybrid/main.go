// Tpchhybrid reproduces one column of the paper's Table III: a hybrid
// workload running a 100 GB Word Count in parallel with TPC-H Q5 (the
// five-way local-supplier-volume join) on the 80 GB database.
//
// It simulates the hybrid DAG for ground truth, captures the task-time
// profiles the paper's §V-C methodology prescribes, then predicts the
// workflow's makespan with all three skew modes (Alg1-Mean, Alg1-Mid,
// Alg2-Normal) and reports the paper's accuracy metric for each.
//
// Run it with:
//
//	go run ./examples/tpchhybrid
package main

import (
	"fmt"
	"log"
	"os"

	"boedag"
)

func main() {
	spec := boedag.PaperCluster()
	schema := boedag.PaperTPCHSchema()

	q5, err := boedag.TPCHQuery(5, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H Q5 compiles to %d MapReduce jobs on the %v database\n",
		len(q5.Jobs), schema.TotalBytes())

	flow := boedag.ParallelFlows("WC-Q5",
		boedag.Single(boedag.WordCount(100*boedag.GB)), q5)

	sim := boedag.NewSimulator(spec, boedag.SimOptions{Seed: 1})
	res, err := sim.Run(flow)
	if err != nil {
		log.Fatal(err)
	}
	boedag.RenderGantt(os.Stdout, res)

	// Table III methodology: profiles from the run drive the estimator,
	// isolating the state-based model's own error.
	profiles := boedag.CaptureProfiles(res)
	timer := &boedag.ProfileTimer{Profiles: profiles}
	fmt.Println("\nstate-based estimation accuracy (paper Table III metric):")
	for _, mode := range boedag.SkewModes() {
		est := boedag.NewEstimator(spec, timer, boedag.EstimatorOptions{Mode: mode})
		plan, err := est.Estimate(flow)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s estimated %6.1fs  actual %6.1fs  accuracy %.2f%%\n",
			mode, plan.Makespan.Seconds(), res.Makespan.Seconds(),
			100*boedag.Accuracy(plan.Makespan, res.Makespan))
	}

	// The Starfish/MRTuner-style baseline drives the same estimator but
	// replays profiled task times blind to contention changes.
	replay := boedag.NewProfileReplay(profiles)
	est := boedag.NewEstimator(spec, replay, boedag.EstimatorOptions{Mode: boedag.MedianMode})
	plan, err := est.Estimate(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s estimated %6.1fs  actual %6.1fs  accuracy %.2f%%\n",
		"replay", plan.Makespan.Seconds(), res.Makespan.Seconds(),
		100*boedag.Accuracy(plan.Makespan, res.Makespan))
}
