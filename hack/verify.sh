#!/usr/bin/env bash
# verify.sh — the repo's full verification gate:
#   gofmt cleanliness, go vet, the race-enabled test suite, the
#   instrumentation-overhead guard (disabled-path observability must stay
#   within 5% of an uninstrumented run), and the OTLP export shape check.
#
# Usage: hack/verify.sh [-quick]
#   -quick skips the full race detector run and the overhead benchmark
#   (the streaming-bus tests still run under -race, and the OTLP check
#   still runs).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "-quick" ]] && quick=1

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# otlp_check exports a real boepredict run as OTLP/JSON and validates
# the resourceSpans/resourceMetrics shape with hack/otlpcheck (hex ids,
# timestamps, resolvable parent links, populated metrics).
otlp_check() {
    echo "== OTLP export shape check =="
    local tmp
    tmp=$(mktemp -d)
    go run ./cmd/boepredict -workflow wc+ts -micro-gb 5 -otlp-out "$tmp/otlp.json" > /dev/null
    go run ./hack/otlpcheck "$tmp/otlp.json"
    rm -rf "$tmp"
}

# bench_smoke compiles and runs the parallel-sweep benchmark once per
# sub-benchmark — a cheap guard that the evalpool fan-out path stays
# runnable; real speedup numbers need a longer -benchtime on a
# multi-core machine.
bench_smoke() {
    echo "== parallel sweep benchmark smoke =="
    go test ./internal/experiments -run '^$' -bench BenchmarkSweepParallel -benchtime 1x
}

if [[ $quick -eq 1 ]]; then
    echo "== go test (quick) =="
    go test ./...
    # The streaming bus and the evalpool engine are the genuinely
    # concurrent pieces: even the quick gate runs their tests under the
    # race detector.
    echo "== streaming race check =="
    go test -race -count=1 -run 'TestStream|TestTee|TestFollow|TestTracker' \
        ./internal/obs ./internal/progress
    echo "== evalpool race check =="
    go test -race -count=1 ./internal/evalpool
    go test -race -count=1 -run 'Parallel|Cache' \
        ./internal/experiments ./internal/tuning ./internal/calibrate
    bench_smoke
    otlp_check
    echo "verify OK (quick)"
    exit 0
fi

echo "== go test -race =="
go test -race ./...

bench_smoke
otlp_check

echo "== instrumentation overhead guard =="
# The observability layer must be ~free when disabled: the disabled-path
# benchmark has to land within 5% of the fully instrumented one (and the
# enabled path itself is required to be cheap relative to simulation
# work, so the two bracket the uninstrumented baseline). Take the best
# of three runs of each to suppress scheduler noise; 40 iterations per
# run keeps the minimum stable enough for the 5% bound.
bench() {
    go test ./internal/simulator -run '^$' -bench "$1\$" -benchtime "${BENCHTIME:-40x}" -count 3 \
        | awk '/^Benchmark/ {if (min == "" || $3 < min) min = $3} END {print min}'
}
off=$(bench BenchmarkSimulatorInstrumentationOff)
on=$(bench BenchmarkSimulatorInstrumentationOn)
echo "  disabled: ${off} ns/op    enabled: ${on} ns/op"
# If the disabled path runs >5% slower than the enabled one, someone put
# work outside an enabled-check and the zero-cost contract is broken.
awk -v off="$off" -v on="$on" 'BEGIN {
    if (off > on * 1.05) {
        printf "FAIL: disabled-path instrumentation overhead: %s ns/op vs %s ns/op enabled\n", off, on
        exit 1
    }
}'

echo "verify OK"
